# Developer entry points; CI runs the same targets (.github/workflows/ci.yml).

GO ?= go
BIN := bin

.PHONY: build test race lint bench-smoke fig-hotring fig-scan fault-sweep corruption-sweep clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint = the repo's own invariant checkers (cmd/unikvlint run through the
# `go vet -vettool` protocol) plus staticcheck/govulncheck when installed.
# The external tools are optional so `make lint` works offline. unikvlint
# fails on findings AND on stale //unikv:allow suppressions — delete an
# annotation once the violation it excused is gone.
lint: $(BIN)/unikvlint
	$(GO) vet ./...
	$(GO) vet -vettool=$(BIN)/unikvlint ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "govulncheck not installed; skipping"; fi

$(BIN)/unikvlint: FORCE
	$(GO) build -o $(BIN)/unikvlint ./cmd/unikvlint

# One iteration per benchmark: compiles and runs them without measuring.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x . ./internal/bench/

# The hot-key read layer experiment at full scale, regenerating the
# committed trajectory artifact (bench/BENCH_fig-hotring.json). CI runs
# the same experiment at smoke scale gated against the conservative
# baseline bench/BENCH_smoke_fig-hotring.json (see bench/README.md).
fig-hotring:
	$(GO) run ./cmd/unikv-bench -exp fig-hotring -n 20000 -ops 30000 -json -json-dir bench

# The sorted-view scan experiment at full scale, regenerating the committed
# trajectory artifact (bench/BENCH_fig-scan.json). CI runs the same
# experiment at smoke scale gated against the conservative baseline
# bench/BENCH_smoke_fig-scan.json (see bench/README.md).
fig-scan:
	$(GO) run ./cmd/unikv-bench -exp fig-scan -n 20000 -ops 3000 -json -json-dir bench

# The systematic fault-injection sweep (short, strided profile), including
# the open-snapshot campaigns (faults armed while a pinned snapshot reads).
# Set UNIKV_FAULT_SWEEP=full to arm a fault at every op index (minutes).
fault-sweep:
	$(GO) test -race -run 'TestFaultSweep|TestCorrupt|TestBackgroundTransient|TestBackgroundSticky' ./internal/core/

# The corruption campaign: persistent byte flips and read-time CorruptPlans
# across file classes and offsets; each point must be detected (scrub or
# foreground read), quarantined with partition scope, repaired offline, and
# reopen with every surviving key byte-identical. Includes the scrub/GC/
# snapshot race storm and the offline repair suite.
corruption-sweep:
	$(GO) test -race -run 'TestCorruptionSweep|TestScrub|TestForeground|TestRepair' ./internal/core/
	$(GO) test -race -run 'TestFailFSCorrupt' ./internal/vfs/

clean:
	rm -rf $(BIN)

.PHONY: FORCE
FORCE:
