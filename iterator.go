package unikv

// Iterator streams key-ordered pairs. It pages through the store with
// bounded Scans and resumes after the last returned key, so it never pins
// partition locks between Next calls — long iterations cannot stall
// writers, merges, or splits. The trade-off is a relaxed isolation level:
// concurrent writes behind the cursor are not observed; writes ahead of it
// may be.
//
//	it := db.NewIterator([]byte("user:"), []byte("user;"))
//	for it.Next() {
//	    use(it.Key(), it.Value())
//	}
//	if err := it.Err(); err != nil { ... }
type Iterator struct {
	db        *DB
	end       []byte
	page      []KV
	idx       int
	nextStart []byte
	err       error
	done      bool
}

// iterPageSize bounds one paging Scan.
const iterPageSize = 256

// NewIterator returns an iterator over [start, end); a nil end means "to
// the end of the key space". The iterator starts before the first pair:
// call Next to advance.
func (db *DB) NewIterator(start, end []byte) *Iterator {
	return &Iterator{
		db:        db,
		end:       append([]byte(nil), end...),
		nextStart: append([]byte(nil), start...),
	}
}

// Next advances to the following pair and reports whether one exists.
func (it *Iterator) Next() bool {
	if it.err != nil {
		return false
	}
	it.idx++
	if it.idx < len(it.page) {
		return true
	}
	if it.done {
		return false
	}
	end := it.end
	if len(end) == 0 {
		end = nil
	}
	page, err := it.db.Scan(it.nextStart, end, iterPageSize)
	if err != nil {
		it.err = err
		return false
	}
	it.page = page
	it.idx = 0
	if len(page) < iterPageSize {
		it.done = true
	}
	if len(page) == 0 {
		return false
	}
	// Resume after the last key of this page: its immediate successor is
	// lastKey + 0x00.
	last := page[len(page)-1].Key
	it.nextStart = append(append(it.nextStart[:0], last...), 0)
	return true
}

// Key returns the current pair's key. Valid after Next returned true; the
// slice is owned by the iterator's current page.
func (it *Iterator) Key() []byte { return it.page[it.idx].Key }

// Value returns the current pair's value. Valid after Next returned true.
func (it *Iterator) Value() []byte { return it.page[it.idx].Value }

// Err returns the first error the iterator encountered, if any.
func (it *Iterator) Err() error { return it.err }
