// Partitiontour demonstrates UniKV's scale-out machinery end to end:
// dynamic range partitioning (watch partitions split as the store grows),
// value-log garbage collection under overwrites, and crash recovery
// (reopen the store and verify every key).
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"os"

	"unikv"
)

func main() {
	dir, err := os.MkdirTemp("", "unikv-tour-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Tiny limits so the tour shows several splits with ~50k keys.
	opts := &unikv.Options{
		MemtableSize:       64 << 10,
		UnsortedLimit:      512 << 10,
		PartitionSizeLimit: 4 << 20,
		GCRatio:            0.3,
	}
	db, err := unikv.Open(dir, opts)
	if err != nil {
		log.Fatal(err)
	}

	key := func(i int) []byte { return []byte(fmt.Sprintf("item:%08d", i)) }
	value := func(i, rev int) []byte {
		return []byte(fmt.Sprintf("rev%06d:%0192d", rev, i))
	}

	// Act 1: grow until the store splits, narrating each split.
	fmt.Println("act 1: dynamic range partitioning")
	lastParts := int(1)
	const n = 50000
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), value(i, 0)); err != nil {
			log.Fatal(err)
		}
		if m := db.Metrics(); m.Partitions != lastParts {
			fmt.Printf("  after %6d keys: split #%d -> %d partitions\n",
				i+1, m.Splits, m.Partitions)
			lastParts = m.Partitions
		}
	}
	m := db.Metrics()
	fmt.Printf("  final: %d partitions after %d splits\n\n", m.Partitions, m.Splits)

	// Act 2: overwrite a hot band until GC reclaims log space.
	fmt.Println("act 2: value-log garbage collection")
	before := db.Metrics()
	rnd := rand.New(rand.NewSource(1))
	for rev := 1; rev <= 20; rev++ {
		for j := 0; j < 2000; j++ {
			i := rnd.Intn(5000)
			if err := db.Put(key(i), value(i, rev)); err != nil {
				log.Fatal(err)
			}
		}
	}
	after := db.Metrics()
	fmt.Printf("  overwrites triggered %d GC runs, rewrote %d KiB of live values\n",
		after.GCs-before.GCs, (after.GCBytesRewritten-before.GCBytesRewritten)/1024)
	fmt.Printf("  value logs now hold %d KiB (live working set ≈ %d KiB)\n\n",
		after.ValueLogBytes/1024, int64(n)*200/1024)

	// Act 3: crash recovery — close, reopen, verify everything.
	fmt.Println("act 3: recovery")
	wantParts := db.Metrics().Partitions
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}
	db, err = unikv.Open(dir, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if got := db.Metrics().Partitions; got != wantParts {
		log.Fatalf("partitions lost: %d vs %d", got, wantParts)
	}
	missing := 0
	for i := 0; i < n; i += 97 {
		v, err := db.Get(key(i))
		if err != nil || !bytes.HasPrefix(v, []byte("rev")) {
			missing++
		}
	}
	if missing > 0 {
		log.Fatalf("%d keys lost at recovery", missing)
	}
	kvs, err := db.Scan(key(0), nil, 5)
	if err != nil || len(kvs) != 5 {
		log.Fatalf("scan after recovery: %d results, %v", len(kvs), err)
	}
	fmt.Printf("  reopened with %d partitions; spot-checked %d keys and a scan: all good\n",
		db.Metrics().Partitions, n/97+1)
}
