// Mixedworkload runs the paper's motivating scenario on the public API: a
// skewed read/write mix with periodic range scans over a session-store-like
// dataset, then prints how the unified index laid the data out — hot keys
// served by the hash-indexed UnsortedStore, cold data KV-separated in the
// SortedStore.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"unikv"
)

func main() {
	dir, err := os.MkdirTemp("", "unikv-mixed-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := unikv.Open(dir, &unikv.Options{
		MemtableSize:       256 << 10,
		UnsortedLimit:      2 << 20,
		PartitionSizeLimit: 16 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	const nSessions = 50000
	key := func(i int) []byte { return []byte(fmt.Sprintf("session:%08d", i)) }
	value := func(i, rev int) []byte {
		return []byte(fmt.Sprintf(`{"session":%d,"rev":%d,"state":"%060d"}`, i, rev, i*rev))
	}

	// Phase 1: load the session table.
	start := time.Now()
	for i := 0; i < nSessions; i++ {
		if err := db.Put(key(i), value(i, 0)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loaded %d sessions in %v (%.0f ops/s)\n",
		nSessions, time.Since(start).Round(time.Millisecond),
		nSessions/time.Since(start).Seconds())

	// Phase 2: the mixed workload — 50 % reads, 45 % updates on a hot 10 %
	// of sessions (zipf-style skew), 5 % scans (e.g. "list my recent
	// sessions").
	rnd := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rnd, 1.2, 8, nSessions-1)
	const ops = 100000
	var reads, updates, scans, hits int
	start = time.Now()
	for i := 0; i < ops; i++ {
		id := int(zipf.Uint64())
		switch {
		case i%20 == 19: // 5% scans
			scans++
			kvs, err := db.Scan(key(id), nil, 20)
			if err != nil {
				log.Fatal(err)
			}
			if len(kvs) == 0 {
				log.Fatalf("scan from %s returned nothing", key(id))
			}
		case i%2 == 0: // reads
			reads++
			if _, err := db.Get(key(id)); err == nil {
				hits++
			} else if err != unikv.ErrNotFound {
				log.Fatal(err)
			}
		default: // updates
			updates++
			if err := db.Put(key(id), value(id, i)); err != nil {
				log.Fatal(err)
			}
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("mixed workload: %d ops in %v (%.0f ops/s) — %d reads (%d hits), %d updates, %d scans\n",
		ops, elapsed.Round(time.Millisecond), ops/elapsed.Seconds(),
		reads, hits, updates, scans)

	// Phase 3: where did the data end up?
	m := db.Metrics()
	fmt.Println("\nunified-index layout:")
	fmt.Printf("  partitions:          %d (splits: %d)\n", m.Partitions, m.Splits)
	fmt.Printf("  hot tier (hash-indexed UnsortedStore): %d tables, %d KiB, index %d KiB RAM\n",
		m.UnsortedTables, m.UnsortedBytes/1024, m.HashIndexBytes/1024)
	fmt.Printf("  cold tier (SortedStore keys+ptrs):     %d tables, %d KiB\n",
		m.SortedTables, m.SortedBytes/1024)
	fmt.Printf("  value logs (KV-separated values):      %d logs, %d KiB\n",
		m.ValueLogs, m.ValueLogBytes/1024)
	fmt.Printf("  background work: %d flushes, %d merges, %d scan-merges, %d GCs (%d KiB rewritten)\n",
		m.Flushes, m.Merges, m.ScanMerges, m.GCs, m.GCBytesRewritten/1024)
}
