// Quickstart: the essential UniKV public API — open, put, get, delete,
// scan, metrics.
package main

import (
	"fmt"
	"log"
	"os"

	"unikv"
)

func main() {
	dir, err := os.MkdirTemp("", "unikv-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// nil options = defaults (4 MiB memtable, 32 MiB UnsortedStore per
	// partition, WAL on).
	db, err := unikv.Open(dir, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Writes.
	if err := db.Put([]byte("user:alice"), []byte("alice@example.com")); err != nil {
		log.Fatal(err)
	}
	db.Put([]byte("user:bob"), []byte("bob@example.com"))
	db.Put([]byte("user:carol"), []byte("carol@example.com"))
	db.Put([]byte("post:001"), []byte("hello world"))

	// Point read.
	v, err := db.Get([]byte("user:bob"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user:bob -> %s\n", v)

	// Missing keys return unikv.ErrNotFound.
	if _, err := db.Get([]byte("user:zoe")); err == unikv.ErrNotFound {
		fmt.Println("user:zoe -> not found (as expected)")
	}

	// Overwrite and delete.
	db.Put([]byte("user:bob"), []byte("bob@new.example.com"))
	db.Delete([]byte("post:001"))

	// Range scan: every key in ["user:", "user;") — i.e., the user: prefix.
	kvs, err := db.Scan([]byte("user:"), []byte("user;"), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("users:")
	for _, kv := range kvs {
		fmt.Printf("  %s -> %s\n", kv.Key, kv.Value)
	}

	// Engine statistics.
	m := db.Metrics()
	fmt.Printf("partitions=%d puts=%d gets=%d scans=%d\n",
		m.Partitions, m.Puts, m.Gets, m.Scans)
}
