// Benchmarks: one testing.B target per table/figure of the paper's
// evaluation (see DESIGN.md's experiment index). Each sub-benchmark drives
// the measured operation of that experiment through the engine-neutral
// Store interface over an in-memory file system; derived quantities
// (amplification, access shares, index overhead) surface as custom metrics.
//
// For the full printed tables/series, run:
//
//	go run ./cmd/unikv-bench -exp all
package unikv

import (
	"fmt"
	"testing"

	"unikv/internal/bench"
	"unikv/internal/core"
	"unikv/internal/lsm"
	"unikv/internal/vfs"
	"unikv/internal/ycsb"
)

const (
	benchN     = 20000
	benchValue = 256
)

// openBench opens a fresh store of the given kind sized for n records.
func openBench(b *testing.B, kind string, n int, tweak func(*core.Options)) (bench.Store, vfs.FS) {
	b.Helper()
	fs := vfs.NewMem()
	env := bench.Env{FS: fs, DatasetBytes: int64(n) * int64(benchValue+20), UniKVTweak: tweak}
	s, err := bench.OpenStore(kind, env)
	if err != nil {
		b.Fatal(err)
	}
	return s, fs
}

// loadBench inserts n records.
func loadBench(b *testing.B, s bench.Store, n, valueSize int) {
	b.Helper()
	for i := 0; i < n; i++ {
		if err := s.Put(ycsb.Key(i), ycsb.Value(i, valueSize)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1HashVsLSM (paper Fig. 1): random reads on a hash-indexed
// log store vs a leveled LSM at two dataset sizes. The hash store's
// ns/op must degrade with N while the LSM's stays near-flat.
func BenchmarkFig1HashVsLSM(b *testing.B) {
	for _, kind := range []string{bench.KindHashStore, bench.KindLevelDB} {
		for _, n := range []int{benchN / 8, benchN} {
			b.Run(fmt.Sprintf("%s/n=%d", kind, n), func(b *testing.B) {
				s, _ := openBench(b, kind, n, nil)
				defer s.Close()
				loadBench(b, s, n, benchValue)
				c := ycsb.NewClient(ycsb.Workload{ReadProp: 1, Dist: ycsb.Uniform}, n, 1)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Get(c.Next().Key)
				}
			})
		}
	}
}

// BenchmarkFig2AccessSkew (paper Fig. 2): zipfian reads on a leveled LSM;
// the custom metrics report the last level's share of tables vs accesses.
func BenchmarkFig2AccessSkew(b *testing.B) {
	s, _ := openBench(b, bench.KindLevelDB, benchN, nil)
	defer s.Close()
	loadBench(b, s, benchN, benchValue)
	// Latest distribution: real workloads skew toward recently written
	// keys, which is what produces the paper's per-level access skew.
	c := ycsb.NewClient(ycsb.Workload{ReadProp: 1, Dist: ycsb.Latest}, benchN, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(c.Next().Key)
	}
	b.StopTimer()
	stats := s.(interface{ DB() *lsm.DB }).DB().Stats()
	var tables, lastTables int
	var accesses, lastAccesses int64
	last := 0
	for _, ls := range stats.Levels {
		tables += ls.Tables
		accesses += ls.Accesses
		if ls.Tables > 0 {
			last = ls.Level
		}
	}
	lastTables = stats.Levels[last].Tables
	lastAccesses = stats.Levels[last].Accesses
	if tables > 0 && accesses > 0 {
		b.ReportMetric(100*float64(lastTables)/float64(tables), "lastlvl-tables-%")
		b.ReportMetric(100*float64(lastAccesses)/float64(accesses), "lastlvl-accesses-%")
	}
}

// BenchmarkTabIOAmplification (paper's I/O-cost analysis): loads per store
// and reports measured write amplification as a metric.
func BenchmarkTabIOAmplification(b *testing.B) {
	for _, kind := range bench.AllKinds() {
		b.Run(kind, func(b *testing.B) {
			s, fs := openBench(b, kind, benchN, nil)
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Put(ycsb.Key(i), ycsb.Value(i, benchValue)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			user := float64(b.N) * float64(benchValue+20)
			b.ReportMetric(float64(fs.Counters().BytesWritten.Load())/user, "write-amp")
		})
	}
}

// BenchmarkFig7Load (paper Fig. 7a): random-order load throughput.
func BenchmarkFig7Load(b *testing.B) {
	for _, kind := range bench.AllKinds() {
		b.Run(kind, func(b *testing.B) {
			s, _ := openBench(b, kind, benchN, nil)
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Put(ycsb.Key(i), ycsb.Value(i, benchValue)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7Read (paper Fig. 7b): uniform point reads on the post-load
// state.
func BenchmarkFig7Read(b *testing.B) {
	for _, kind := range bench.AllKinds() {
		b.Run(kind, func(b *testing.B) {
			s, _ := openBench(b, kind, benchN, nil)
			defer s.Close()
			loadBench(b, s, benchN, benchValue)
			c := ycsb.NewClient(ycsb.Workload{ReadProp: 1, Dist: ycsb.Uniform}, benchN, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Get(c.Next().Key); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7Scan (paper Fig. 7c): 50-entry scans from random starts.
func BenchmarkFig7Scan(b *testing.B) {
	for _, kind := range bench.AllKinds() {
		b.Run(kind, func(b *testing.B) {
			s, _ := openBench(b, kind, benchN, nil)
			defer s.Close()
			loadBench(b, s, benchN, benchValue)
			c := ycsb.NewClient(ycsb.Workload{ReadProp: 1, Dist: ycsb.Uniform}, benchN, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Scan(c.Next().Key, 50); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7Update (paper Fig. 7d): zipfian overwrites including
// compaction/merge/GC work.
func BenchmarkFig7Update(b *testing.B) {
	for _, kind := range bench.AllKinds() {
		b.Run(kind, func(b *testing.B) {
			s, _ := openBench(b, kind, benchN, nil)
			defer s.Close()
			loadBench(b, s, benchN, benchValue)
			c := ycsb.NewClient(ycsb.Workload{UpdateProp: 1, Dist: ycsb.Zipfian}, benchN, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Put(c.Next().Key, ycsb.Value(i, benchValue)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8YCSB (paper Fig. 8): the six YCSB core workloads.
func BenchmarkFig8YCSB(b *testing.B) {
	for _, w := range ycsb.CoreWorkloads() {
		for _, kind := range bench.AllKinds() {
			b.Run(fmt.Sprintf("%s/%s", w.Name, kind), func(b *testing.B) {
				s, _ := openBench(b, kind, benchN, nil)
				defer s.Close()
				loadBench(b, s, benchN, benchValue)
				c := ycsb.NewClient(w, benchN, 1)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					op := c.Next()
					switch op.Type {
					case ycsb.OpRead:
						s.Get(op.Key)
					case ycsb.OpUpdate, ycsb.OpInsert:
						if err := s.Put(op.Key, ycsb.Value(i, benchValue)); err != nil {
							b.Fatal(err)
						}
					case ycsb.OpScan:
						if _, err := s.Scan(op.Key, op.ScanLen); err != nil && err != bench.ErrScanUnsupported {
							b.Fatal(err)
						}
					case ycsb.OpReadModifyWrite:
						s.Get(op.Key)
						if err := s.Put(op.Key, ycsb.Value(i, benchValue)); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

// BenchmarkFig8BackgroundA: YCSB workload A (50/50 zipfian read/update) on
// UniKV with maintenance inline vs offloaded to the background scheduler.
// The background rows should show lower ns/op: flush/merge/GC/split leave
// the foreground path, so the zipfian update stream no longer pays for them
// synchronously.
func BenchmarkFig8BackgroundA(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		workers int
	}{{"inline", 0}, {"background", 4}} {
		b.Run(cfg.name, func(b *testing.B) {
			s, _ := openBench(b, bench.KindUniKV, benchN, func(o *core.Options) {
				o.BackgroundWorkers = cfg.workers
			})
			defer s.Close()
			loadBench(b, s, benchN, benchValue)
			c := ycsb.NewClient(ycsb.WorkloadA, benchN, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op := c.Next()
				switch op.Type {
				case ycsb.OpRead:
					s.Get(op.Key)
				case ycsb.OpUpdate:
					if err := s.Put(op.Key, ycsb.Value(i, benchValue)); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkFig9Scalability (paper Fig. 9): point reads at growing dataset
// sizes; compare ns/op growth across engines.
func BenchmarkFig9Scalability(b *testing.B) {
	for _, n := range []int{benchN / 4, benchN, benchN * 4} {
		for _, kind := range bench.AllKinds() {
			b.Run(fmt.Sprintf("n=%d/%s", n, kind), func(b *testing.B) {
				s, _ := openBench(b, kind, n, nil)
				defer s.Close()
				loadBench(b, s, n, benchValue)
				c := ycsb.NewClient(ycsb.Workload{ReadProp: 1, Dist: ycsb.Uniform}, n, 1)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Get(c.Next().Key)
				}
			})
		}
	}
}

// BenchmarkFig10ValueSize (paper Fig. 10): load throughput across value
// sizes (bytes/op scales; compare MB/s across engines).
func BenchmarkFig10ValueSize(b *testing.B) {
	for _, vs := range []int{256, 1024, 4096} {
		for _, kind := range bench.AllKinds() {
			b.Run(fmt.Sprintf("v=%d/%s", vs, kind), func(b *testing.B) {
				n := benchN * benchValue / vs
				s, _ := openBench(b, kind, n, nil)
				defer s.Close()
				b.SetBytes(int64(vs))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := s.Put(ycsb.Key(i), ycsb.Value(i, vs)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig11Ablation (paper Fig. 11 / technique analysis): UniKV's
// read and update paths with each technique disabled.
func BenchmarkFig11Ablation(b *testing.B) {
	variants := []struct {
		name  string
		tweak func(*core.Options)
	}{
		{"full", nil},
		{"no-hash-index", func(o *core.Options) { o.DisableHashIndex = true }},
		{"no-kv-separation", func(o *core.Options) { o.DisableKVSeparation = true }},
		{"no-partitioning", func(o *core.Options) { o.DisablePartitioning = true }},
		{"no-scan-merge", func(o *core.Options) { o.DisableScanMerge = true }},
	}
	for _, v := range variants {
		b.Run("read/"+v.name, func(b *testing.B) {
			s, _ := openBench(b, bench.KindUniKV, benchN, v.tweak)
			defer s.Close()
			loadBench(b, s, benchN, benchValue)
			c := ycsb.NewClient(ycsb.Workload{ReadProp: 1, Dist: ycsb.Zipfian}, benchN, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Get(c.Next().Key)
			}
		})
		b.Run("update/"+v.name, func(b *testing.B) {
			s, _ := openBench(b, bench.KindUniKV, benchN, v.tweak)
			defer s.Close()
			loadBench(b, s, benchN, benchValue)
			c := ycsb.NewClient(ycsb.Workload{UpdateProp: 1, Dist: ycsb.Zipfian}, benchN, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Put(c.Next().Key, ycsb.Value(i, benchValue)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTabMemOverhead (paper's memory analysis): loads the UnsortedStore
// and reports hash-index bytes per KV entry and per data byte.
func BenchmarkTabMemOverhead(b *testing.B) {
	s, _ := openBench(b, bench.KindUniKV, benchN, func(o *core.Options) {
		o.UnsortedLimit = 1 << 40
		o.PartitionSizeLimit = 1 << 40
		o.ScanMergeLimit = 1 << 30
		o.HashBuckets = benchN
	})
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(ycsb.Key(i%benchN), ycsb.Value(i, benchValue)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	type metricser interface{ Metrics() core.StatsSnapshot }
	s.(interface{ DB() *core.DB }).DB().Flush()
	m := s.(metricser).Metrics()
	if m.UnsortedBytes > 0 {
		b.ReportMetric(100*float64(m.HashIndexBytes)/float64(m.UnsortedBytes), "index-overhead-%")
	}
}

// BenchmarkTabRecovery (paper's recovery analysis): full reopen cycles with
// and without hash-index checkpoints.
func BenchmarkTabRecovery(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		disable bool
	}{{"with-checkpoint", false}, {"without-checkpoint", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			fs := vfs.NewMem()
			opts := core.Options{
				FS:                  fs,
				MemtableSize:        64 << 10,
				UnsortedLimit:       1 << 40,
				PartitionSizeLimit:  1 << 40,
				ScanMergeLimit:      1 << 30,
				DisableHashCkpt:     cfg.disable,
				HashCheckpointEvery: 2,
				HashBuckets:         benchN,
			}
			db, err := core.Open("db", opts)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < benchN; i++ {
				db.Put(ycsb.Key(i), ycsb.Value(i, benchValue))
			}
			db.Flush()
			// Release the directory lock so each iteration can reopen; the
			// recovery cost measured here — hash-index rebuild vs checkpoint
			// load — is the same after a clean close (the WAL is already
			// empty after Flush).
			if err := db.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db2, err := core.Open("db", opts)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				db2.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkFigGC (GC overhead): zipfian overwrites with GC enabled vs
// KV separation disabled (no GC at all), metrics report GC bytes moved.
func BenchmarkFigGC(b *testing.B) {
	for _, cfg := range []struct {
		name  string
		tweak func(*core.Options)
	}{
		{"gc-0.15", func(o *core.Options) { o.GCRatio = 0.15; o.DisablePartitioning = true }},
		{"gc-0.30", func(o *core.Options) { o.GCRatio = 0.30; o.DisablePartitioning = true }},
		{"gc-0.60", func(o *core.Options) { o.GCRatio = 0.60; o.DisablePartitioning = true }},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			n := benchN / 4
			s, _ := openBench(b, bench.KindUniKV, n, cfg.tweak)
			defer s.Close()
			loadBench(b, s, n, benchValue)
			c := ycsb.NewClient(ycsb.Workload{UpdateProp: 1, Dist: ycsb.Zipfian}, n, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Put(c.Next().Key, ycsb.Value(i, benchValue)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			m := s.(interface{ Metrics() core.StatsSnapshot }).Metrics()
			b.ReportMetric(float64(m.GCBytesRewritten)/float64(b.N), "gc-bytes/op")
		})
	}
}

// BenchmarkFigParamUnsorted (UnsortedLimit sensitivity): zipfian reads
// with the hot tier capped at different sizes.
func BenchmarkFigParamUnsorted(b *testing.B) {
	base := int64(benchN) * int64(benchValue+20)
	for _, frac := range []int64{32, 16, 8, 4} {
		limit := base / frac
		b.Run(fmt.Sprintf("limit=1_%d", frac), func(b *testing.B) {
			s, _ := openBench(b, bench.KindUniKV, benchN, func(o *core.Options) {
				o.UnsortedLimit = limit
				o.PartitionSizeLimit = base / 2
			})
			defer s.Close()
			loadBench(b, s, benchN, benchValue)
			c := ycsb.NewClient(ycsb.Workload{ReadProp: 1, Dist: ycsb.Zipfian}, benchN, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Get(c.Next().Key)
			}
		})
	}
}

// BenchmarkFigParamPartition (PartitionSizeLimit sensitivity): loads with
// different split thresholds; metrics report the final partition count.
func BenchmarkFigParamPartition(b *testing.B) {
	base := int64(benchN) * int64(benchValue+20)
	for _, frac := range []int64{8, 4, 2, 1} {
		limit := base / frac
		b.Run(fmt.Sprintf("limit=1_%d", frac), func(b *testing.B) {
			s, _ := openBench(b, bench.KindUniKV, benchN, func(o *core.Options) {
				o.PartitionSizeLimit = limit
			})
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Put(ycsb.Key(i), ycsb.Value(i, benchValue)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			m := s.(interface{ Metrics() core.StatsSnapshot }).Metrics()
			b.ReportMetric(float64(m.Partitions), "partitions")
		})
	}
}

// BenchmarkFigScanOpt (scan optimization breakdown): 100-entry scans with
// the optimizations toggled.
func BenchmarkFigScanOpt(b *testing.B) {
	variants := []struct {
		name  string
		tweak func(*core.Options)
	}{
		{"all", nil},
		{"no-size-merge", func(o *core.Options) { o.DisableScanMerge = true }},
		{"no-parallel", func(o *core.Options) { o.DisableScanParallel = true }},
		{"no-prefetch", func(o *core.Options) { o.DisableScanPrefetch = true }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			s, _ := openBench(b, bench.KindUniKV, benchN, v.tweak)
			defer s.Close()
			loadBench(b, s, benchN, benchValue)
			// Overwrite a stripe so the unsorted tier holds overlapping
			// tables when the size-based merge is off.
			for i := 0; i < benchN/4; i++ {
				s.Put(ycsb.Key(i*4), ycsb.Value(i, benchValue))
			}
			c := ycsb.NewClient(ycsb.Workload{ReadProp: 1, Dist: ycsb.Uniform}, benchN, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Scan(c.Next().Key, 100); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7ReadParallel runs the fig7b read comparison with parallel
// clients (the paper's clients are multi-threaded; UniKV's per-partition
// RWMutex admits concurrent readers).
func BenchmarkFig7ReadParallel(b *testing.B) {
	for _, kind := range bench.AllKinds() {
		b.Run(kind, func(b *testing.B) {
			s, _ := openBench(b, kind, benchN, nil)
			defer s.Close()
			loadBench(b, s, benchN, benchValue)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					s.Get(ycsb.Key((i * 7919) % benchN))
					i++
				}
			})
		})
	}
}
