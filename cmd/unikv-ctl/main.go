// Command unikv-ctl inspects a UniKV database directory: the manifest
// state (partitions, boundary keys, table and log lists), per-table
// metadata, value-log inventory, and hash-index statistics.
//
// Usage:
//
//	unikv-ctl -dir /path/to/db manifest
//	unikv-ctl -dir /path/to/db tables
//	unikv-ctl -dir /path/to/db stats
//	unikv-ctl -dir /path/to/db get user0000000000000042
//	unikv-ctl -dir /path/to/db scan user00 10
//	unikv-ctl -dir /path/to/db [-verify] backup /path/to/backup
//	unikv-ctl -dir /path/to/db verify
//	unikv-ctl -dir /path/to/db repair
//
// backup writes a point-in-time checkpoint (hard-linking immutable table
// files when possible) that opens as an independent database; -verify
// additionally restore-opens the checkpoint afterwards and runs a full
// checksum verification over it. verify lists every corrupt file; repair
// salvages a damaged database offline (torn log tails truncated, corrupt
// tables moved to lost/, manifest rebuilt) and prints an explicit loss
// report. unikv-ctl takes the directory's exclusive
// lock while it runs; to checkpoint a database that is being served, call
// DB.Backup from the owning process instead.
//
// unikv-ctl opens the database directly and is for offline inspection;
// to serve a database over the network use unikv-server (`unikv-ctl
// serve` prints a pointer). See the README's "Serving" section.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"unikv/internal/core"
	"unikv/internal/manifest"
	"unikv/internal/sstable"
	"unikv/internal/vfs"
	"unikv/internal/vlog"
)

func main() {
	dir := flag.String("dir", "", "database directory")
	verifyBackup := flag.Bool("verify", false, "backup: restore-open the checkpoint and verify all checksums")
	flag.Parse()
	cmd := flag.Arg(0)
	if (*dir == "" || flag.NArg() < 1) && cmd != "serve" {
		fmt.Fprintln(os.Stderr, "usage: unikv-ctl -dir <db> [-verify] manifest|tables|stats|verify|repair|get <key>|scan <start> <n>|backup <dest>")
		fmt.Fprintln(os.Stderr, "       (to serve a db over TCP, see `unikv-ctl serve` / unikv-server)")
		os.Exit(2)
	}
	switch cmd {
	case "manifest", "tables":
		showManifest(*dir, cmd == "tables")
	case "verify":
		verify(*dir)
	case "repair":
		repair(*dir)
	case "stats":
		withDB(*dir, func(db *core.DB) {
			m := db.Metrics()
			fmt.Printf("partitions:        %d\n", m.Partitions)
			fmt.Printf("unsorted tables:   %d (%d bytes)\n", m.UnsortedTables, m.UnsortedBytes)
			fmt.Printf("sorted tables:     %d (%d bytes)\n", m.SortedTables, m.SortedBytes)
			fmt.Printf("value logs:        %d (%d bytes)\n", m.ValueLogs, m.ValueLogBytes)
			fmt.Printf("hash index memory: %d bytes\n", m.HashIndexBytes)
			fmt.Println("maintenance:")
			fmt.Printf("  pending jobs:        %d\n", m.PendingJobs)
			fmt.Printf("  immutable memtables: %d\n", m.ImmutableMemtables)
			fmt.Printf("  flushes:             %d\n", m.Flushes)
			fmt.Printf("  merges:              %d\n", m.Merges)
			fmt.Printf("  scan merges:         %d\n", m.ScanMerges)
			fmt.Printf("  gcs:                 %d (%d bytes rewritten)\n", m.GCs, m.GCBytesRewritten)
			fmt.Printf("  splits:              %d\n", m.Splits)
			fmt.Printf("  write stalls:        %d (%d ns stalled, %d ns slowed)\n", m.Stalls, m.StallNanos, m.SlowdownNanos)
			fmt.Printf("  background errors:   %d\n", m.BackgroundErrors)
			fmt.Printf("  background retries:  %d\n", m.BackgroundRetries)
			if m.Degraded {
				fmt.Printf("  DEGRADED (read-only) since %s\n", time.Unix(0, m.DegradedSince).Format(time.RFC3339))
				fmt.Printf("    cause: %s\n", m.DegradedCause)
			}
			fmt.Println("scrub:")
			fmt.Printf("  passes:              %d\n", m.ScrubPasses)
			fmt.Printf("  verified:            %d tables, %d logs (%d bytes)\n", m.ScrubbedTables, m.ScrubbedLogs, m.ScrubbedBytes)
			fmt.Printf("  corruptions found:   %d\n", m.ScrubCorruptions)
			if m.QuarantinedPartitions > 0 {
				fmt.Printf("  QUARANTINED partitions: %d (run unikv-ctl repair)\n", m.QuarantinedPartitions)
			}
			fmt.Println("read cache:")
			fmt.Printf("  resident:            %d entries (%d bytes)\n", m.CacheEntries, m.CacheBytes)
			fmt.Printf("  block hits/misses:   %d / %d\n", m.CacheBlockHits, m.CacheBlockMisses)
			fmt.Printf("  value hits/misses:   %d / %d\n", m.CacheValueHits, m.CacheValueMisses)
			fmt.Printf("  evictions:           %d\n", m.CacheEvictions)
			fmt.Println("hot ring:")
			fmt.Printf("  resident:            %d keys (%d bytes)\n", m.HotRingResident, m.HotRingResidentBytes)
			fmt.Printf("  hits/misses:         %d / %d\n", m.HotRingHits, m.HotRingMisses)
			fmt.Printf("  promotions:          %d\n", m.HotRingPromotions)
			fmt.Printf("  invalidations:       %d\n", m.HotRingInvalidations)
			fmt.Println("sorted view:")
			fmt.Printf("  entries:             %d (%d bytes)\n", m.SortedViewEntries, m.SortedViewBytes)
			fmt.Printf("  builds/rebuilds:     %d / %d\n", m.SortedViewBuilds, m.SortedViewRebuilds)
			fmt.Println("scan prefetch:")
			fmt.Printf("  spans issued/wasted: %d / %d\n", m.ScanPrefetchIssued, m.ScanPrefetchWasted)
		})
	case "get":
		if flag.NArg() < 2 {
			fmt.Fprintln(os.Stderr, "get needs a key")
			os.Exit(2)
		}
		withDB(*dir, func(db *core.DB) {
			v, err := db.Get([]byte(flag.Arg(1)))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			os.Stdout.Write(v)
			fmt.Println()
		})
	case "scan":
		if flag.NArg() < 3 {
			fmt.Fprintln(os.Stderr, "scan needs a start key and a count")
			os.Exit(2)
		}
		n, err := strconv.Atoi(flag.Arg(2))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		withDB(*dir, func(db *core.DB) {
			kvs, err := db.Scan([]byte(flag.Arg(1)), nil, n)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			for _, kv := range kvs {
				fmt.Printf("%s\t%s\n", kv.Key, kv.Value)
			}
		})
	case "backup":
		if flag.NArg() < 2 {
			fmt.Fprintln(os.Stderr, "backup needs a destination directory")
			os.Exit(2)
		}
		dest := flag.Arg(1)
		withDB(*dir, func(db *core.DB) {
			if err := db.Backup(dest); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("backup written to %s\n", dest)
		})
		if *verifyBackup {
			restoreAndVerify(dest)
		}
	case "serve":
		fmt.Fprintln(os.Stderr, "unikv-ctl inspects a database offline; serving is unikv-server's job:")
		fmt.Fprintf(os.Stderr, "\n  unikv-server -dir %s -addr :4090 [-http :4091] [-sync]\n\n", orDefault(*dir, "/path/to/db"))
		fmt.Fprintln(os.Stderr, "then talk to it with unikv/pkg/client (see README, section \"Serving\").")
		os.Exit(2)
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", cmd)
		os.Exit(2)
	}
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// restoreAndVerify opens the freshly written checkpoint — replaying its
// WAL cut, exactly what a restore does — and checksum-verifies everything
// it references.
func restoreAndVerify(dest string) {
	db, err := core.Open(dest, core.Options{DisableOrphanCleanup: true})
	if err != nil {
		fmt.Fprintf(os.Stderr, "restore-open of backup failed: %v\n", err)
		os.Exit(1)
	}
	err = db.VerifyIntegrity()
	if cerr := db.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "backup verification failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("backup restore-opened and verified: all checksums ok")
}

// withDB opens the database read-mostly and runs fn.
func withDB(dir string, fn func(*core.DB)) {
	db, err := core.Open(dir, core.Options{DisableOrphanCleanup: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer db.Close()
	fn(db)
}

// showManifest prints the recovered metadata without opening the engine.
func showManifest(dir string, tables bool) {
	fs := vfs.NewOS()
	man, err := manifest.Open(fs, dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer man.Close()
	state := man.State()
	fmt.Printf("next file: %d  last seq: %d  next log: %d  next partition: %d\n",
		state.NextFileNum, state.LastSeq, state.NextLogNum, state.NextPartID)
	for _, p := range state.SortedPartitions() {
		fmt.Printf("partition %d  lower=%q  wal=%d  hash-ckpt=%d  logs=%v\n",
			p.ID, p.Lower, p.WALNum, p.HashCkpt, p.Logs)
		fmt.Printf("  unsorted: %d tables  sorted: %d tables\n", len(p.Unsorted), len(p.Sorted))
		if tables {
			for _, t := range p.Unsorted {
				printTable(dir, p.ID, "U", t)
			}
			for _, t := range p.Sorted {
				printTable(dir, p.ID, "S", t)
			}
		}
	}
}

// repair salvages the database offline (see core.Repair): torn value-log
// tails are truncated, unreadable tables move to lost/, dangling value
// pointers are dropped, and the manifest is rebuilt from what survives.
// The loss report prints to stdout.
func repair(dir string) {
	report, err := core.Repair(dir, core.Options{})
	if report != nil {
		fmt.Print(report.String())
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "repair failed: %v\n", err)
		os.Exit(1)
	}
	if report.DataLost() {
		fmt.Println("repair complete: some committed data was lost (see above; originals in lost/)")
		return
	}
	fmt.Println("repair complete: no committed data lost")
}

// verify checks every table block and value-log record checksum,
// reporting every corrupt file (not just the first). The engine-level
// report is used when the database opens; a database too damaged to open
// falls back to an offline per-file walk.
func verify(dir string) {
	db, err := core.Open(dir, core.Options{DisableOrphanCleanup: true})
	if err == nil {
		reports, verr := db.VerifyIntegrityReport()
		if cerr := db.Close(); verr == nil {
			verr = cerr
		}
		if verr != nil {
			fmt.Fprintln(os.Stderr, verr)
			os.Exit(1)
		}
		for _, r := range reports {
			fmt.Printf("BAD  %s\n", r.String())
		}
		if len(reports) > 0 {
			fmt.Printf("%d corrupt files\n", len(reports))
			os.Exit(1)
		}
		fmt.Println("all checksums ok")
		return
	}
	fmt.Fprintf(os.Stderr, "open failed (%v); walking files offline\n", err)
	verifyOffline(dir)
}

// verifyOffline walks the manifest's file inventory directly, without
// recovering the engine — the path of last resort for a database whose
// recovery itself fails.
func verifyOffline(dir string) {
	fs := vfs.NewOS()
	man, err := manifest.Open(fs, dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	state := man.State()
	man.Close()

	bad := 0
	checkTable := func(pid uint32, tm manifest.TableMeta) {
		name := filepath.Join(dir, fmt.Sprintf("p%d", pid), fmt.Sprintf("%08d.sst", tm.FileNum))
		f, err := fs.Open(name)
		if err != nil {
			fmt.Printf("BAD  %s: %v\n", name, err)
			bad++
			return
		}
		rdr, err := sstable.Open(f)
		if err != nil {
			f.Close()
			fmt.Printf("BAD  %s: %v\n", name, err)
			bad++
			return
		}
		if err := rdr.VerifyChecksums(); err != nil {
			fmt.Printf("BAD  %s: %v\n", name, err)
			bad++
		} else {
			fmt.Printf("ok   %s (%d records)\n", name, rdr.Count())
		}
		rdr.Close()
	}
	logsSeen := map[uint32]bool{}
	for _, p := range state.SortedPartitions() {
		for _, tm := range p.Unsorted {
			checkTable(p.ID, tm)
		}
		for _, tm := range p.Sorted {
			checkTable(p.ID, tm)
		}
		for _, l := range p.Logs {
			logsSeen[l] = true
		}
	}
	vl, err := vlog.Open(fs, filepath.Join(dir, "vlog"), vlog.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer vl.Close()
	for l := range logsSeen {
		n, err := vl.VerifyLog(l)
		if err != nil {
			fmt.Printf("BAD  %s (after %d values): %v\n", vlog.LogName(l), n, err)
			bad++
		} else {
			fmt.Printf("ok   %s (%d values)\n", vlog.LogName(l), n)
		}
	}
	if bad > 0 {
		fmt.Printf("%d corrupt files\n", bad)
		os.Exit(1)
	}
	fmt.Println("all checksums ok")
}

func printTable(dir string, pid uint32, tier string, t manifest.TableMeta) {
	name := filepath.Join(dir, fmt.Sprintf("p%d", pid), fmt.Sprintf("%08d.sst", t.FileNum))
	fmt.Printf("  [%s] %s  %d records  %d bytes  [%q .. %q]  seq %d..%d\n",
		tier, name, t.Count, t.Size, t.Smallest, t.Largest, t.MinSeq, t.MaxSeq)
}
