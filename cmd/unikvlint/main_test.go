package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles unikvlint into dir and returns the binary path.
func buildTool(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "unikvlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building unikvlint: %v\n%s", err, out)
	}
	return bin
}

// writeModule materializes files (path -> content) under dir.
func writeModule(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for name, content := range files {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// govet runs `go vet -vettool=bin ./...` in dir and returns combined
// output plus whether it succeeded.
func govet(t *testing.T, bin, dir string) (string, bool) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=")
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	return out.String(), err == nil
}

const goMod = "module tmpmod\n\ngo 1.22\n"

// TestVetToolProtocol exercises the full cmd/go handshake: -flags, -V=full,
// then a real `go vet -vettool` run over seeded modules.
func TestVetToolProtocol(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go not on PATH")
	}
	tmp := t.TempDir()
	bin := buildTool(t, tmp)

	t.Run("flags", func(t *testing.T) {
		out, err := exec.Command(bin, "-flags").Output()
		if err != nil {
			t.Fatalf("-flags: %v", err)
		}
		if got := strings.TrimSpace(string(out)); got != "[]" {
			t.Fatalf("-flags = %q, want []", got)
		}
	})

	t.Run("version", func(t *testing.T) {
		out, err := exec.Command(bin, "-V=full").Output()
		if err != nil {
			t.Fatalf("-V=full: %v", err)
		}
		f := strings.Fields(string(out))
		// cmd/go requires: name, "version", and for devel a trailing buildID=.
		if len(f) < 3 || f[1] != "version" || f[2] != "devel" || !strings.HasPrefix(f[len(f)-1], "buildID=") {
			t.Fatalf("-V=full = %q, want `unikvlint version devel ... buildID=...`", out)
		}
	})

	t.Run("clean module passes", func(t *testing.T) {
		dir := filepath.Join(tmp, "clean")
		writeModule(t, dir, map[string]string{
			"go.mod": goMod,
			"internal/core/clean.go": `package core

import "errors"

var ErrGone = errors.New("gone")

func Add(a, b int) int { return a + b }
`,
		})
		out, ok := govet(t, bin, dir)
		if !ok {
			t.Fatalf("go vet failed on clean module:\n%s", out)
		}
	})

	t.Run("seeded violations fail", func(t *testing.T) {
		dir := filepath.Join(tmp, "bad")
		writeModule(t, dir, map[string]string{
			"go.mod": goMod,
			// vfsonly: package os used inside internal/core.
			"internal/core/io.go": `package core

import "os"

func Slurp(p string) ([]byte, error) { return os.ReadFile(p) }
`,
			// lockorder: flushMu held while taking maintMu, plus a leak.
			"internal/core/locks.go": `package core

type mu struct{}

func (m *mu) Lock()   {}
func (m *mu) Unlock() {}

type DB struct {
	maintMu mu
	flushMu mu
}

func (db *DB) Inverted() {
	db.flushMu.Lock()
	db.maintMu.Lock()
	db.maintMu.Unlock()
	db.flushMu.Unlock()
}

func (db *DB) Leaky() {
	db.maintMu.Lock()
}
`,
			// atomiccounter: n is both atomic and plain.
			"internal/core/counter.go": `package core

import "sync/atomic"

var n int64

func Inc() { atomic.AddInt64(&n, 1) }
func Racy() int64 { return n }
`,
			// syncpublish: rename on a SyncDir-capable fs, never synced.
			"internal/core/publish.go": `package core

type FS interface {
	Rename(oldname, newname string) error
	SyncDir(dir string) error
}

func Swap(fs FS) error { return fs.Rename("CURRENT.tmp", "CURRENT") }
`,
		})
		out, ok := govet(t, bin, dir)
		if ok {
			t.Fatalf("go vet unexpectedly passed on seeded module:\n%s", out)
		}
		for _, want := range []string{
			"unikvlint:vfsonly",
			"unikvlint:lockorder",
			"unikvlint:atomiccounter",
			"unikvlint:syncpublish",
			"inverts the documented lock order",
			"never unlocked",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})
}
