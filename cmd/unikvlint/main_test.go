package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles unikvlint into dir and returns the binary path.
func buildTool(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "unikvlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building unikvlint: %v\n%s", err, out)
	}
	return bin
}

// writeModule materializes files (path -> content) under dir.
func writeModule(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for name, content := range files {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// govet runs `go vet -vettool=bin ./...` in dir and returns combined
// output plus whether it succeeded.
func govet(t *testing.T, bin, dir string) (string, bool) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=")
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	return out.String(), err == nil
}

const goMod = "module tmpmod\n\ngo 1.22\n"

// TestVetToolProtocol exercises the full cmd/go handshake: -flags, -V=full,
// then a real `go vet -vettool` run over seeded modules.
func TestVetToolProtocol(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go not on PATH")
	}
	tmp := t.TempDir()
	bin := buildTool(t, tmp)

	t.Run("flags", func(t *testing.T) {
		out, err := exec.Command(bin, "-flags").Output()
		if err != nil {
			t.Fatalf("-flags: %v", err)
		}
		if got := strings.TrimSpace(string(out)); got != "[]" {
			t.Fatalf("-flags = %q, want []", got)
		}
	})

	t.Run("version", func(t *testing.T) {
		out, err := exec.Command(bin, "-V=full").Output()
		if err != nil {
			t.Fatalf("-V=full: %v", err)
		}
		f := strings.Fields(string(out))
		// cmd/go requires: name, "version", and for devel a trailing buildID=.
		if len(f) < 3 || f[1] != "version" || f[2] != "devel" || !strings.HasPrefix(f[len(f)-1], "buildID=") {
			t.Fatalf("-V=full = %q, want `unikvlint version devel ... buildID=...`", out)
		}
	})

	t.Run("clean module passes", func(t *testing.T) {
		dir := filepath.Join(tmp, "clean")
		writeModule(t, dir, map[string]string{
			"go.mod": goMod,
			"internal/core/clean.go": `package core

import "errors"

var ErrGone = errors.New("gone")

func Add(a, b int) int { return a + b }
`,
		})
		out, ok := govet(t, bin, dir)
		if !ok {
			t.Fatalf("go vet failed on clean module:\n%s", out)
		}
	})

	t.Run("live allow suppresses", func(t *testing.T) {
		dir := filepath.Join(tmp, "allowed")
		writeModule(t, dir, map[string]string{
			"go.mod": goMod,
			// The os.ReadFile would be a vfsonly finding; the annotation
			// suppresses it, and because it suppresses something it is not
			// reported as stale either.
			"internal/core/raw.go": `package core

import "os"

func ReadRaw(p string) ([]byte, error) {
	//unikv:allow(vfsonly) exercising the suppression path end to end
	return os.ReadFile(p)
}
`,
		})
		out, ok := govet(t, bin, dir)
		if !ok {
			t.Fatalf("go vet failed despite a live allow:\n%s", out)
		}
	})

	t.Run("stale allow fails", func(t *testing.T) {
		dir := filepath.Join(tmp, "stale")
		writeModule(t, dir, map[string]string{
			"go.mod": goMod,
			// Nothing on the annotated line violates vfsonly: the comment
			// outlived whatever it once excused and must be reported.
			"internal/core/stale.go": `package core

import "errors"

var errDone = errors.New("done")

//unikv:allow(vfsonly) the os call this excused is long gone
func Done() error { return errDone }
`,
		})
		out, ok := govet(t, bin, dir)
		if ok {
			t.Fatalf("go vet passed despite a stale allow:\n%s", out)
		}
		for _, want := range []string{"unikvlint:staleallow", "stale suppression"} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("seeded violations fail", func(t *testing.T) {
		dir := filepath.Join(tmp, "bad")
		writeModule(t, dir, map[string]string{
			"go.mod": goMod,
			// vfsonly: package os used inside internal/core.
			"internal/core/io.go": `package core

import "os"

func Slurp(p string) ([]byte, error) { return os.ReadFile(p) }
`,
			// lockorder: flushMu held while taking maintMu, plus a leak.
			"internal/core/locks.go": `package core

type mu struct{}

func (m *mu) Lock()   {}
func (m *mu) Unlock() {}

type DB struct {
	maintMu mu
	flushMu mu
}

func (db *DB) Inverted() {
	db.flushMu.Lock()
	db.maintMu.Lock()
	db.maintMu.Unlock()
	db.flushMu.Unlock()
}

func (db *DB) Leaky() {
	db.maintMu.Lock()
}
`,
			// atomiccounter: n is both atomic and plain.
			"internal/core/counter.go": `package core

import "sync/atomic"

var n int64

func Inc() { atomic.AddInt64(&n, 1) }
func Racy() int64 { return n }
`,
			// syncpublish: rename on a SyncDir-capable fs, never synced.
			"internal/core/publish.go": `package core

type FS interface {
	Rename(oldname, newname string) error
	SyncDir(dir string) error
}

func Swap(fs FS) error { return fs.Rename("CURRENT.tmp", "CURRENT") }
`,
			// refpair: the ref leaks on the error return.
			"internal/core/refs.go": `package core

import "errors"

type Reader struct{ refs int }

func (r *Reader) Ref()         { r.refs++ }
func (r *Reader) Close() error { r.refs--; return nil }

func step() error { return errors.New("boom") }

func LeakRef(r *Reader) error {
	r.Ref()
	if err := step(); err != nil {
		return err
	}
	return r.Close()
}
`,
			// errclass: a bare errors.New on the background-job path.
			"internal/core/retry.go": `package core

import "errors"

func runWithRetry() error { return gcJob() }

func gcJob() error { return errors.New("checksum mismatch") }
`,
			// atomicpublish: mutated after the Store published it.
			"internal/core/pub.go": `package core

import "sync/atomic"

type snapState struct{ seq uint64 }

type holder struct{ cur atomic.Pointer[snapState] }

func Publish(h *holder, seq uint64) {
	s := &snapState{}
	h.cur.Store(s)
	s.seq = seq
}
`,
		})
		out, ok := govet(t, bin, dir)
		if ok {
			t.Fatalf("go vet unexpectedly passed on seeded module:\n%s", out)
		}
		for _, want := range []string{
			"unikvlint:vfsonly",
			"unikvlint:lockorder",
			"unikvlint:atomiccounter",
			"unikvlint:syncpublish",
			"unikvlint:refpair",
			"unikvlint:errclass",
			"unikvlint:atomicpublish",
			"inverts the documented lock order",
			"never unlocked",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})
}
