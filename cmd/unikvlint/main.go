// Command unikvlint runs the unikv invariant checkers (lockorder, vfsonly,
// syncpublish, atomiccounter, refpair, errclass, atomicpublish) as a
// `go vet -vettool` backend:
//
//	go build -o bin/unikvlint ./cmd/unikvlint
//	go vet -vettool=bin/unikvlint ./...
//
// It speaks the cmd/go vet-tool protocol by hand (the container that grows
// this repo has no network, so golang.org/x/tools/go/analysis/unitchecker is
// not available):
//
//   - `unikvlint -flags` prints the tool's analyzer flags as JSON; cmd/go
//     uses the list to validate its command line. We expose none.
//   - `unikvlint -V=full` prints "unikvlint version devel ... buildID=<id>";
//     cmd/go folds the ID into its action cache key so edited checkers
//     re-vet everything.
//   - `unikvlint path/to/vet.cfg` analyzes one package described by the JSON
//     config, printing findings to stderr and exiting 2 if there are any.
//
// Dependencies' type information is loaded from the export data (.a) files
// listed in the config's PackageFile map, so no source re-typechecking and
// no network are needed. The checkers keep no cross-package facts, which
// makes the VetxOnly fast path trivial: write an empty facts file and exit.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"go/version"
	"io"
	"os"
	"runtime"
	"strings"

	"unikv/internal/analysis"
	"unikv/internal/analysis/unikvlint"
)

// vetConfig mirrors the JSON written by cmd/go/internal/work.buildVetConfig.
// Fields the checkers don't need (NonGoFiles, module info, ...) are omitted;
// encoding/json ignores them.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	IgnoredFiles []string

	ImportMap   map[string]string // source import path -> canonical package path
	PackageFile map[string]string // canonical package path -> export data file
	Standard    map[string]bool

	VetxOnly   bool
	VetxOutput string
	GoVersion  string

	SucceedOnTypecheckFailure bool
}

func main() {
	printFlags := flag.Bool("flags", false, "print analyzer flags in JSON")
	versionFlag := flag.String("V", "", "print version and exit (use -V=full)")
	flag.Parse()

	switch {
	case *printFlags:
		// No tool-specific flags; cmd/go just needs valid JSON.
		fmt.Println("[]")
		return
	case *versionFlag != "":
		printVersion()
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: unikvlint [-flags] [-V=full] vet.cfg")
		os.Exit(1)
	}
	res, err := run(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "unikvlint: %v\n", err)
		os.Exit(1)
	}
	for _, f := range res.Findings {
		fmt.Fprintf(os.Stderr, "%s: %s [unikvlint:%s]\n", f.Pos, f.Message, f.Analyzer)
	}
	// A suppression that suppressed nothing reads as "this line violates the
	// invariant on purpose" when the violation is long gone — report it like
	// any other finding. Satisfying one means deleting the comment; stale
	// reports are themselves unsuppressable.
	for _, s := range res.StaleAllows {
		fmt.Fprintf(os.Stderr, "%s [unikvlint:staleallow]\n", s)
	}
	if len(res.Findings)+len(res.StaleAllows) > 0 {
		os.Exit(2)
	}
}

// printVersion emits the -V=full line cmd/go parses for its action cache:
// fields[1] must be "version" and, for a "devel" version, the last field
// must be "buildID=<content-id>". Hashing our own executable means any
// rebuild of the tool invalidates cached vet results.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("unikvlint version devel buildID=%x\n", h.Sum(nil))
}

func run(cfgPath string) (analysis.Result, error) {
	var none analysis.Result
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return none, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return none, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}

	// No cross-package facts: downstream packages never read our vetx, so
	// fact-only runs are complete the moment the (empty) file exists.
	if cfg.VetxOnly {
		return none, writeVetx(&cfg)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return none, writeVetx(&cfg)
			}
			return none, err
		}
		files = append(files, f)
	}

	tcfg := types.Config{
		Importer: &mapImporter{
			cfg: &cfg,
			gc:  importer.ForCompiler(fset, cfg.Compiler, exportLookup(&cfg)),
		},
		Sizes:     types.SizesFor(cfg.Compiler, envOr("GOARCH", runtime.GOARCH)),
		GoVersion: version.Lang(cfg.GoVersion),
		Error:     func(error) {}, // collect nothing; first hard error aborts Check
	}
	info := analysis.NewInfo()
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return none, writeVetx(&cfg)
		}
		return none, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	res, err := analysis.RunAll(fset, files, pkg, info, unikvlint.Analyzers())
	if err != nil {
		return none, err
	}
	if err := writeVetx(&cfg); err != nil {
		return none, err
	}
	return res, nil
}

// writeVetx records the (empty) fact set so cmd/go can cache the action.
func writeVetx(cfg *vetConfig) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	return os.WriteFile(cfg.VetxOutput, []byte("unikvlint facts v1\n"), 0o666)
}

// mapImporter resolves source-level import paths through the config's
// ImportMap (vendoring, test variants) before handing them to the gc
// export-data importer.
type mapImporter struct {
	cfg *vetConfig
	gc  types.Importer
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, m.cfg.Dir, 0)
}

func (m *mapImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := m.cfg.ImportMap[path]; ok {
		path = mapped
	}
	from, ok := m.gc.(types.ImporterFrom)
	if !ok {
		return m.gc.Import(path)
	}
	return from.ImportFrom(path, dir, 0)
}

// exportLookup opens the export-data file cmd/go compiled for a dependency.
func exportLookup(cfg *vetConfig) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (not in vet.cfg PackageFile)", path)
		}
		return os.Open(file)
	}
}

func envOr(key, fallback string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return strings.TrimSpace(fallback)
}
