// Command unikv-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	unikv-bench -list
//	unikv-bench -exp fig7 [-n 200000] [-value 1024] [-ops 100000]
//	unikv-bench -exp all
//	unikv-bench -exp fig-hotring -json [-json-dir bench]
//	unikv-bench -exp fig-hotring -baseline bench/BENCH_fig-hotring.json
//	unikv-bench -net [-net-clients 8] [-net-sync] [-net-addr host:port]
//
// -json persists each experiment's machine-readable metrics as
// BENCH_<experiment>.json (throughput and latency percentiles) — the
// perf-trajectory artifacts committed under bench/. -baseline loads such
// an artifact and exits non-zero if any current metric regressed more
// than -baseline-tol (default 20%) against it; CI runs the smoke benches
// under this gate. A missing/unreadable baseline or one with an empty
// metric trajectory degrades the gate to "record, don't gate" — the run
// proceeds (still writing -json artifacts) and logs why it is not gating.
//
// -net switches to the networked client-mode benchmark: concurrent
// clients drive a unikv-server (in-process unless -net-addr points at a
// running one) through pkg/client, measuring wire throughput and the
// group-commit coalescing the serving layer achieves.
//
// Every experiment runs each engine over a fresh in-memory file system with
// I/O accounting; see EXPERIMENTS.md for the interpretation contract.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"unikv/internal/bench"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list      = flag.Bool("list", false, "list experiments")
		n         = flag.Int("n", 0, "records to load (default per experiment)")
		value     = flag.Int("value", 0, "value size in bytes")
		ops       = flag.Int("ops", 0, "measured operations per phase")
		seed      = flag.Int64("seed", 1, "workload seed")
		stores    = flag.String("stores", "", "comma-separated store subset (default all)")
		quiet     = flag.Bool("q", false, "suppress progress output")
		bgWorkers = flag.Int("bg-workers", 0, "UniKV background maintenance workers (0 = inline)")

		jsonOut  = flag.Bool("json", false, "write BENCH_<experiment>.json artifacts")
		jsonDir  = flag.String("json-dir", ".", "directory for -json artifacts")
		baseline = flag.String("baseline", "", "baseline BENCH_*.json to gate against")
		baseTol  = flag.Float64("baseline-tol", 0.20, "fractional regression tolerance for -baseline")

		netMode    = flag.Bool("net", false, "run the networked client benchmark instead of -exp")
		netAddr    = flag.String("net-addr", "", "benchmark a running unikv-server ('' = in-process)")
		netClients = flag.Int("net-clients", 8, "concurrent clients for -net")
		netSync    = flag.Bool("net-sync", false, "SyncWrites for the in-process -net server")
	)
	flag.Parse()

	if *netMode {
		p := bench.Params{N: *n, ValueSize: *value, Ops: *ops, Seed: *seed, BackgroundWorkers: *bgWorkers}
		if !*quiet {
			p.Progress = os.Stderr
		}
		if err := runNetBench(p, *netAddr, *netClients, *netSync); err != nil {
			fmt.Fprintln(os.Stderr, "netbench:", err)
			os.Exit(1)
		}
		return
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-20s %s\n", e.ID, e.Brief)
		}
		if *exp == "" {
			fmt.Println("\nrun with -exp <id> (or -exp all)")
		}
		return
	}

	p := bench.Params{N: *n, ValueSize: *value, Ops: *ops, Seed: *seed, BackgroundWorkers: *bgWorkers}
	if *stores != "" {
		p.Stores = strings.Split(*stores, ",")
	}
	if !*quiet {
		p.Progress = os.Stderr
	}

	var exps []bench.Experiment
	if *exp == "all" {
		exps = bench.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := bench.Lookup(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			exps = append(exps, e)
		}
	}
	// Load the gate once: a missing or metric-less baseline degrades to
	// "record, don't gate" (the run proceeds and -json still writes fresh
	// artifacts) instead of dying before measuring anything.
	var base bench.Artifact
	gating := false
	if *baseline != "" {
		var note string
		base, note = bench.LoadBaseline(*baseline)
		if note != "" {
			fmt.Fprintln(os.Stderr, note)
		} else {
			gating = true
		}
	}

	var failed bool
	for _, e := range exps {
		tables := e.Run(p)
		for _, t := range tables {
			fmt.Println(t.String())
		}
		metrics := bench.CollectMetrics(tables)
		if len(metrics) == 0 {
			continue
		}
		pd := p.WithDefaults()
		if *jsonOut {
			if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "json dir:", err)
				os.Exit(1)
			}
			path := filepath.Join(*jsonDir, "BENCH_"+e.ID+".json")
			art := bench.Artifact{
				Experiment: e.ID, N: pd.N, ValueSize: pd.ValueSize,
				Ops: pd.Ops, Seed: pd.Seed, Metrics: metrics,
			}
			if err := bench.WriteArtifact(path, art); err != nil {
				fmt.Fprintln(os.Stderr, "write artifact:", err)
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "wrote", path)
		}
		if gating {
			if base.Experiment != e.ID {
				continue // the baseline gates a different experiment
			}
			if regs := bench.CompareBaseline(base.Metrics, metrics, *baseTol); len(regs) > 0 {
				failed = true
				fmt.Fprintf(os.Stderr, "REGRESSION vs %s:\n", *baseline)
				for _, r := range regs {
					fmt.Fprintln(os.Stderr, "  "+r)
				}
			} else {
				fmt.Fprintf(os.Stderr, "baseline gate passed: %s within %.0f%% of %s\n",
					e.ID, 100**baseTol, *baseline)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
