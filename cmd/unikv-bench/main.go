// Command unikv-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	unikv-bench -list
//	unikv-bench -exp fig7 [-n 200000] [-value 1024] [-ops 100000]
//	unikv-bench -exp all
//	unikv-bench -net [-net-clients 8] [-net-sync] [-net-addr host:port]
//
// -net switches to the networked client-mode benchmark: concurrent
// clients drive a unikv-server (in-process unless -net-addr points at a
// running one) through pkg/client, measuring wire throughput and the
// group-commit coalescing the serving layer achieves.
//
// Every experiment runs each engine over a fresh in-memory file system with
// I/O accounting; see EXPERIMENTS.md for the interpretation contract.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"unikv/internal/bench"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list      = flag.Bool("list", false, "list experiments")
		n         = flag.Int("n", 0, "records to load (default per experiment)")
		value     = flag.Int("value", 0, "value size in bytes")
		ops       = flag.Int("ops", 0, "measured operations per phase")
		seed      = flag.Int64("seed", 1, "workload seed")
		stores    = flag.String("stores", "", "comma-separated store subset (default all)")
		quiet     = flag.Bool("q", false, "suppress progress output")
		bgWorkers = flag.Int("bg-workers", 0, "UniKV background maintenance workers (0 = inline)")

		netMode    = flag.Bool("net", false, "run the networked client benchmark instead of -exp")
		netAddr    = flag.String("net-addr", "", "benchmark a running unikv-server ('' = in-process)")
		netClients = flag.Int("net-clients", 8, "concurrent clients for -net")
		netSync    = flag.Bool("net-sync", false, "SyncWrites for the in-process -net server")
	)
	flag.Parse()

	if *netMode {
		p := bench.Params{N: *n, ValueSize: *value, Ops: *ops, Seed: *seed, BackgroundWorkers: *bgWorkers}
		if !*quiet {
			p.Progress = os.Stderr
		}
		if err := runNetBench(p, *netAddr, *netClients, *netSync); err != nil {
			fmt.Fprintln(os.Stderr, "netbench:", err)
			os.Exit(1)
		}
		return
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-20s %s\n", e.ID, e.Brief)
		}
		if *exp == "" {
			fmt.Println("\nrun with -exp <id> (or -exp all)")
		}
		return
	}

	p := bench.Params{N: *n, ValueSize: *value, Ops: *ops, Seed: *seed, BackgroundWorkers: *bgWorkers}
	if *stores != "" {
		p.Stores = strings.Split(*stores, ",")
	}
	if !*quiet {
		p.Progress = os.Stderr
	}

	var exps []bench.Experiment
	if *exp == "all" {
		exps = bench.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := bench.Lookup(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			exps = append(exps, e)
		}
	}
	for _, e := range exps {
		for _, t := range e.Run(p) {
			fmt.Println(t.String())
		}
	}
}
