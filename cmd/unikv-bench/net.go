package main

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"

	"unikv"
	"unikv/internal/bench"
	"unikv/internal/server"
	"unikv/pkg/client"
)

// runNetBench measures networked throughput: N records loaded over the
// wire with BATCH requests, then a mixed GET/PUT/SCAN phase driven by
// `clients` concurrent clients. With no -net-addr it spins an in-process
// unikv-server over a temp directory, so the numbers include the full
// protocol + group-commit path; pointing it at a remote server measures
// the real deployment instead.
func runNetBench(p bench.Params, addr string, clients int, syncWrites bool) error {
	p = p.WithDefaults()
	if clients <= 0 {
		clients = 8
	}

	var srv *server.Server
	if addr == "" {
		dir, err := os.MkdirTemp("", "unikv-netbench-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		db, err := unikv.Open(dir, &unikv.Options{
			SyncWrites:        syncWrites,
			BackgroundWorkers: p.BackgroundWorkers,
		})
		if err != nil {
			return err
		}
		defer db.Close()
		srv = server.New(db, server.Options{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go srv.Serve(ln)
		defer srv.Close()
		addr = ln.Addr().String()
		fmt.Fprintf(progressOf(p), "netbench: in-process server on %s (sync=%v bg-workers=%d)\n",
			addr, syncWrites, p.BackgroundWorkers)
	}

	key := func(i int) []byte { return []byte(fmt.Sprintf("net%016d", i)) }
	value := make([]byte, p.ValueSize)
	rand.New(rand.NewSource(p.Seed)).Read(value)

	// Per-client latency histograms, merged after each phase (a Hist is
	// not safe for concurrent Record).
	loadHists := make([]bench.Hist, clients)
	getHists := make([]bench.Hist, clients)
	putHists := make([]bench.Hist, clients)
	scanHists := make([]bench.Hist, clients)

	// Load phase: each client streams its shard in BATCH requests.
	loadStart := time.Now()
	if err := eachClient(addr, clients, func(g int, c *client.Client) error {
		h := &loadHists[g]
		apply := func(b *client.Batch) error {
			t0 := time.Now()
			err := c.Apply(b)
			h.Record(time.Since(t0))
			return err
		}
		b := client.NewBatch()
		for i := g; i < p.N; i += clients {
			b.Put(key(i), value)
			if b.Len() >= 100 {
				if err := apply(b); err != nil {
					return err
				}
				b.Reset()
			}
		}
		if b.Len() > 0 {
			return apply(b)
		}
		return nil
	}); err != nil {
		return fmt.Errorf("load: %w", err)
	}
	loadSecs := time.Since(loadStart).Seconds()

	// Mixed phase: 50% GET / 40% PUT / 10% SCAN(10), uniform keys.
	mixStart := time.Now()
	if err := eachClient(addr, clients, func(g int, c *client.Client) error {
		rng := rand.New(rand.NewSource(p.Seed + int64(g)))
		for i := 0; i < p.Ops/clients; i++ {
			k := key(rng.Intn(p.N))
			t0 := time.Now()
			switch r := rng.Intn(10); {
			case r < 5:
				if _, err := c.Get(k); err != nil {
					return fmt.Errorf("get %s: %w", k, err)
				}
				getHists[g].Record(time.Since(t0))
			case r < 9:
				if err := c.Put(k, value); err != nil {
					return fmt.Errorf("put %s: %w", k, err)
				}
				putHists[g].Record(time.Since(t0))
			default:
				if _, err := c.Scan(k, nil, 10); err != nil {
					return fmt.Errorf("scan %s: %w", k, err)
				}
				scanHists[g].Record(time.Since(t0))
			}
		}
		return nil
	}); err != nil {
		return fmt.Errorf("mixed: %w", err)
	}
	mixSecs := time.Since(mixStart).Seconds()

	merge := func(hs []bench.Hist) *bench.Hist {
		var out bench.Hist
		for i := range hs {
			out.Merge(&hs[i])
		}
		return &out
	}
	hLoad, hGet, hPut, hScan := merge(loadHists), merge(getHists), merge(putHists), merge(scanHists)

	// One coherent snapshot over the wire, same as any operator would get.
	statsClient, err := client.Dial(addr, nil)
	if err != nil {
		return err
	}
	defer statsClient.Close()
	m, err := statsClient.Stats()
	if err != nil {
		return err
	}

	t := bench.Table{
		Title: "networked throughput (client mode)",
		Note: fmt.Sprintf("%d clients, %d records x %dB values, %d mixed ops (50/40/10 get/put/scan)",
			clients, p.N, p.ValueSize, p.Ops),
		Header: []string{"phase", "ops", "secs", "kops/s"},
		Rows: [][]string{
			{"load (batched)", fmt.Sprint(p.N), fmt.Sprintf("%.2f", loadSecs), fmt.Sprintf("%.1f", float64(p.N)/loadSecs/1e3)},
			{"mixed", fmt.Sprint(p.Ops / clients * clients), fmt.Sprintf("%.2f", mixSecs), fmt.Sprintf("%.1f", float64(p.Ops/clients*clients)/mixSecs/1e3)},
		},
	}
	fmt.Println(t.String())

	lat := bench.Table{
		Title:  "client-observed latency",
		Note:   "load rows are per 100-op BATCH request; mixed rows are per operation",
		Header: append([]string{"op", "count"}, bench.LatencyHeader()...),
	}
	for _, row := range []struct {
		name string
		h    *bench.Hist
	}{
		{"batch-put (load)", hLoad},
		{"get (mixed)", hGet},
		{"put (mixed)", hPut},
		{"scan10 (mixed)", hScan},
	} {
		lat.Rows = append(lat.Rows,
			append([]string{row.name, fmt.Sprint(row.h.Count())}, row.h.LatencyRow()...))
	}
	fmt.Println(lat.String())

	coalesce := "n/a"
	if m.WriteRequests > 0 {
		coalesce = fmt.Sprintf("%.1fx", float64(m.WriteRequests)/float64(m.GroupCommits))
	}
	s := bench.Table{
		Title:  "server counters after run",
		Header: []string{"requests", "write reqs", "group commits", "coalescing", "max group", "MB in", "MB out"},
		Rows: [][]string{{
			fmt.Sprint(m.Requests), fmt.Sprint(m.WriteRequests), fmt.Sprint(m.GroupCommits),
			coalesce, fmt.Sprint(m.MaxGroupOps),
			fmt.Sprintf("%.1f", float64(m.BytesIn)/1e6), fmt.Sprintf("%.1f", float64(m.BytesOut)/1e6),
		}},
	}
	fmt.Println(s.String())
	return nil
}

// eachClient runs fn concurrently with one pooled client per worker,
// returning the first error.
func eachClient(addr string, clients int, fn func(g int, c *client.Client) error) error {
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := client.Dial(addr, &client.Options{PoolSize: 2})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			if err := fn(g, c); err != nil {
				errs <- err
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	return <-errs
}

func progressOf(p bench.Params) io.Writer {
	if p.Progress != nil {
		return p.Progress
	}
	return io.Discard
}
