// Command unikv-ycsb runs a YCSB workload against one engine.
//
// Usage:
//
//	unikv-ycsb -store unikv -workload A -n 100000 -ops 100000 -value 1024
//	unikv-ycsb -store leveldb -workload E -dir /tmp/db -disk
//
// By default the engine runs over an in-memory file system; -disk uses the
// real file system under -dir.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"unikv/internal/bench"
	"unikv/internal/vfs"
	"unikv/internal/ycsb"
)

func main() {
	var (
		store    = flag.String("store", "unikv", "engine: unikv|leveldb|rocksdb|hyperleveldb|pebblesdb|hashstore")
		workload = flag.String("workload", "A", "YCSB workload A-F")
		n        = flag.Int("n", 50000, "records to load")
		ops      = flag.Int("ops", 50000, "measured operations")
		value    = flag.Int("value", 256, "value size in bytes")
		seed     = flag.Int64("seed", 1, "workload seed")
		dir      = flag.String("dir", "ycsb-db", "database directory")
		disk     = flag.Bool("disk", false, "use the real file system instead of memory")
	)
	flag.Parse()

	var w ycsb.Workload
	found := false
	for _, cw := range ycsb.CoreWorkloads() {
		if cw.Name == *workload {
			w, found = cw, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown workload %q (A-F)\n", *workload)
		os.Exit(1)
	}

	env := bench.Env{Dir: *dir, DatasetBytes: int64(*n) * int64(*value+20)}
	if *disk {
		env.FS = vfs.NewOS()
	}
	s, err := bench.OpenStore(*store, env)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer s.Close()

	fmt.Fprintf(os.Stderr, "loading %d records x %dB into %s...\n", *n, *value, s.Name())
	start := time.Now()
	for i := 0; i < *n; i++ {
		if err := s.Put(ycsb.Key(i), ycsb.Value(i, *value)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	loadDur := time.Since(start)
	fmt.Printf("load: %d ops in %v (%.0f ops/s)\n", *n, loadDur.Round(time.Millisecond),
		float64(*n)/loadDur.Seconds())
	s.Compact()

	fmt.Fprintf(os.Stderr, "running workload %s: %d ops...\n", w.Name, *ops)
	c := ycsb.NewClient(w, *n, *seed)
	counts := map[ycsb.OpType]int{}
	start = time.Now()
	for i := 0; i < *ops; i++ {
		op := c.Next()
		counts[op.Type]++
		switch op.Type {
		case ycsb.OpRead:
			s.Get(op.Key)
		case ycsb.OpUpdate, ycsb.OpInsert:
			if err := s.Put(op.Key, ycsb.Value(i, *value)); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		case ycsb.OpScan:
			s.Scan(op.Key, op.ScanLen)
		case ycsb.OpReadModifyWrite:
			s.Get(op.Key)
			if err := s.Put(op.Key, ycsb.Value(i, *value)); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	runDur := time.Since(start)
	fmt.Printf("workload %s on %s: %d ops in %v (%.0f ops/s)\n",
		w.Name, s.Name(), *ops, runDur.Round(time.Millisecond), float64(*ops)/runDur.Seconds())
	for _, typ := range []ycsb.OpType{ycsb.OpRead, ycsb.OpUpdate, ycsb.OpInsert, ycsb.OpScan, ycsb.OpReadModifyWrite} {
		if counts[typ] > 0 {
			fmt.Printf("  %-7s %d\n", typ, counts[typ])
		}
	}
}
