// Command unikv-server serves a UniKV database over TCP using the
// internal/protocol wire format, with an optional HTTP debug listener
// exposing engine and serving-layer metrics via expvar.
//
// Usage:
//
//	unikv-server -dir /var/lib/unikv -addr :4090 -http :4091
//
// Flags:
//
//	-dir            database directory (required; created if absent)
//	-addr           TCP listen address for the KV protocol (default :4090)
//	-http           HTTP debug listen address exposing /metrics (the same
//	                JSON snapshot as the STATS opcode), /healthz (503 once
//	                the engine is degraded, for load-balancer drains), and
//	                /debug/vars (expvar). Empty disables the listener.
//	-sync           fsync the WAL on every commit (group commit amortizes
//	                the cost across concurrent writers)
//	-bg-workers     background maintenance workers; the server defaults to
//	                background mode (GOMAXPROCS workers) so flushes and
//	                merges never run inside a client request. 0 forces the
//	                inline scheduling used by the embedded API's default.
//	-max-conns      connection limit (default 1024)
//	-idle-timeout   drop connections idle this long (default 5m, 0 = never)
//	-write-timeout  per-response write deadline (default 30s, 0 = none)
//	-max-group-ops  cap on operations coalesced per group commit
//
// SIGINT/SIGTERM trigger a graceful drain: in-flight requests finish and
// their responses flush before the database closes.
//
// Talk to it with pkg/client, or inspect the offline database with
// unikv-ctl.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"unikv"
	"unikv/internal/server"
)

func main() {
	var (
		dir          = flag.String("dir", "", "database directory (required)")
		addr         = flag.String("addr", ":4090", "TCP listen address")
		httpAddr     = flag.String("http", "", "HTTP debug listen address ('' = disabled)")
		sync         = flag.Bool("sync", false, "fsync the WAL on every commit")
		maxConns     = flag.Int("max-conns", 1024, "simultaneous connection limit")
		idleTimeout  = flag.Duration("idle-timeout", 5*time.Minute, "close idle connections after this (0 = never)")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "per-response write deadline (0 = none)")
		maxGroupOps  = flag.Int("max-group-ops", 0, "max operations per group commit (0 = default)")
		bgWorkers    = flag.Int("bg-workers", runtime.GOMAXPROCS(0), "background maintenance workers (0 = inline maintenance)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "usage: unikv-server -dir <db> [-addr :4090] [-http :4091] [-sync]")
		os.Exit(2)
	}

	db, err := unikv.Open(*dir, &unikv.Options{
		SyncWrites:        *sync,
		BackgroundWorkers: *bgWorkers,
	})
	if err != nil {
		log.Fatalf("open %s: %v", *dir, err)
	}

	srv := server.New(db, server.Options{
		MaxConns:     *maxConns,
		IdleTimeout:  *idleTimeout,
		WriteTimeout: *writeTimeout,
		MaxGroupOps:  *maxGroupOps,
		Logf:         log.Printf,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen %s: %v", *addr, err)
	}
	log.Printf("unikv-server: serving %s on %s (sync=%v bg-workers=%d)", *dir, ln.Addr(), *sync, *bgWorkers)

	if *httpAddr != "" {
		// One coherent snapshot on both surfaces: /metrics serves the
		// STATS JSON, /debug/vars carries it under the "unikv" var.
		expvar.Publish("unikv", expvar.Func(func() any { return srv.Metrics() }))
		http.Handle("/metrics", srv.MetricsHandler())
		// /healthz flips to 503 when the engine degrades (read-only mode),
		// so load balancers drain writes off the node.
		http.Handle("/healthz", srv.HealthHandler())
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatalf("http listen %s: %v", *httpAddr, err)
		}
		log.Printf("unikv-server: metrics on http://%s/metrics", hln.Addr())
		go func() {
			if err := http.Serve(hln, nil); err != nil {
				log.Printf("http: %v", err)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("unikv-server: %s, draining", sig)
	case err := <-errc:
		if err != nil {
			log.Printf("unikv-server: serve: %v", err)
		}
	}
	if err := srv.Close(); err != nil {
		log.Printf("unikv-server: close: %v", err)
	}
	m := srv.Metrics()
	log.Printf("unikv-server: served %d requests (%d group commits for %d write requests)",
		m.Requests, m.GroupCommits, m.WriteRequests)
	if err := db.Close(); err != nil {
		log.Fatalf("unikv-server: db close: %v", err)
	}
}
