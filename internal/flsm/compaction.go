package flsm

import (
	"unikv/internal/codec"
	"unikv/internal/memtable"
	"unikv/internal/mergeiter"
	"unikv/internal/record"
	"unikv/internal/sstable"
)

// flushLocked writes the memtable as a fresh single-table run in L0.
func (db *DB) flushLocked() error {
	it := db.mem.NewIterator()
	var recs []record.Record
	var last []byte
	for ok := it.First(); ok; ok = it.Next() {
		rec := it.Record()
		if last != nil && codec.Compare(rec.Key, last) == 0 {
			continue
		}
		last = rec.Key
		recs = append(recs, rec)
	}
	if len(recs) == 0 {
		return nil
	}
	t, err := db.writeTable(recs)
	if err != nil {
		return err
	}
	// Newest run first.
	db.levels[0] = append([]run{{t}}, db.levels[0]...)
	db.mem = memtable.New()
	db.flushes.Add(1)
	if db.logw != nil {
		if err := db.newWALLocked(); err != nil {
			return err
		}
	}
	return db.saveVersion()
}

func (db *DB) writeTable(recs []record.Record) (*table, error) {
	num := db.nextFile
	db.nextFile++
	f, err := db.fs.Create(db.tableName(num))
	if err != nil {
		return nil, err
	}
	b := sstable.NewBuilder(f, sstable.BuilderOptions{
		BloomBitsPerKey: db.cfg.BloomBitsPerKey,
		BlockSize:       db.cfg.BlockSize,
	})
	for _, rec := range recs {
		b.Add(rec)
	}
	props, err := b.Finish()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return db.openTable(num, props)
}

func (db *DB) openTable(num uint64, props sstable.Props) (*table, error) {
	rf, err := db.fs.Open(db.tableName(num))
	if err != nil {
		return nil, err
	}
	rdr, err := sstable.Open(rf)
	if err != nil {
		rf.Close()
		return nil, err
	}
	return &table{
		fileNum: num, size: props.Size, count: props.Count,
		smallest: props.Smallest, largest: props.Largest, rdr: rdr,
	}, nil
}

// maybeCompactLocked merges any level holding RunsPerLevel runs into a
// single run appended to the next level, never touching that level's
// existing runs (fragmented compaction).
func (db *DB) maybeCompactLocked() error {
	for {
		compacted := false
		for lev := 0; lev < NumLevels-1; lev++ {
			if len(db.levels[lev]) >= db.cfg.RunsPerLevel {
				if err := db.compactLevelLocked(lev); err != nil {
					return err
				}
				compacted = true
				break
			}
		}
		if !compacted {
			return nil
		}
	}
}

// compactLevelLocked merge-sorts all runs of lev into one run at lev+1.
// Tombstones are dropped only when no deeper level holds data.
func (db *DB) compactLevelLocked(lev int) error {
	runs := db.levels[lev]
	if len(runs) == 0 {
		return nil
	}
	dropTombstones := true
	for l := lev + 1; l < NumLevels; l++ {
		if len(db.levels[l]) > 0 {
			dropTombstones = false
			break
		}
	}

	var iters []mergeiter.RecIter
	for _, r := range runs {
		iters = append(iters, newRunIter(r))
	}
	d := mergeiter.NewDedup(mergeiter.New(iters))

	var out run
	var batch []record.Record
	var batchBytes int64
	emit := func() error {
		if len(batch) == 0 {
			return nil
		}
		t, err := db.writeTable(batch)
		if err != nil {
			return err
		}
		out = append(out, t)
		batch = batch[:0]
		batchBytes = 0
		return nil
	}
	for ok := d.First(); ok; ok = d.Next() {
		rec := d.Record()
		if rec.Kind == record.KindDelete && dropTombstones {
			continue
		}
		batch = append(batch, rec.Clone())
		batchBytes += int64(len(rec.Key) + len(rec.Value) + 16)
		if batchBytes >= db.cfg.TargetTableSize {
			if err := emit(); err != nil {
				return err
			}
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	if err := emit(); err != nil {
		return err
	}

	// Install. Data flows down a whole level at a time, so the merged run
	// is newer than every run already at lev+1 (those arrived from earlier
	// compactions): prepend to keep newest-first probe order.
	if len(out) > 0 {
		db.levels[lev+1] = append([]run{out}, db.levels[lev+1]...)
	}
	db.levels[lev] = nil
	if err := db.saveVersion(); err != nil {
		return err
	}
	for _, r := range runs {
		for _, t := range r {
			t.rdr.Close()
			db.fs.Remove(db.tableName(t.fileNum))
		}
	}
	db.compactions.Add(1)
	return nil
}
