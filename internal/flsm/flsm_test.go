package flsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"unikv/internal/vfs"
)

func smallCfg(fs vfs.FS) Config {
	return Config{
		Name:            "test",
		MemtableSize:    2 << 10,
		RunsPerLevel:    3,
		TargetTableSize: 8 << 10,
		BloomBitsPerKey: 10,
		FS:              fs,
	}
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func val(i int) []byte {
	return []byte(fmt.Sprintf("value-%06d-%s", i, bytes.Repeat([]byte("f"), 40)))
}

func TestPutGet(t *testing.T) {
	fs := vfs.NewMem()
	db, err := Open("flsm", smallCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const n = 1500
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	s := db.Stats()
	if s.Flushes == 0 || s.Compactions == 0 {
		t.Fatalf("no activity: %+v", s)
	}
	for i := 0; i < n; i++ {
		got, err := db.Get(key(i))
		if err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("key %d: %v", i, err)
		}
	}
	if _, err := db.Get([]byte("nope")); err != ErrNotFound {
		t.Fatalf("%v", err)
	}
}

func TestOverwriteDeleteScan(t *testing.T) {
	fs := vfs.NewMem()
	db, _ := Open("flsm", smallCfg(fs))
	defer db.Close()
	for round := 0; round < 3; round++ {
		for i := 0; i < 400; i++ {
			db.Put(key(i), []byte(fmt.Sprintf("r%d-%d", round, i)))
		}
	}
	for i := 0; i < 400; i += 4 {
		db.Delete(key(i))
	}
	kvs, err := db.Scan(key(0), key(100), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 100; i++ {
		if i%4 != 0 {
			want++
		}
	}
	if len(kvs) != want {
		t.Fatalf("scan got %d want %d", len(kvs), want)
	}
	for _, kv := range kvs {
		if !bytes.HasPrefix(kv.Value, []byte("r2-")) {
			t.Fatalf("stale value %q for %q", kv.Value, kv.Key)
		}
	}
}

func TestReopen(t *testing.T) {
	fs := vfs.NewMem()
	db, _ := Open("flsm", smallCfg(fs))
	for i := 0; i < 800; i++ {
		db.Put(key(i), val(i))
	}
	db.Close()
	db2, err := Open("flsm", smallCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 800; i++ {
		got, err := db2.Get(key(i))
		if err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("key %d: %v", i, err)
		}
	}
}

func TestFragmentedCompactionDoesNotRewriteNextLevel(t *testing.T) {
	fs := vfs.NewMem()
	db, _ := Open("flsm", smallCfg(fs))
	defer db.Close()
	// Load enough to push several runs into L1+; count bytes written by
	// compaction vs a leveled tree's behaviour indirectly: each level must
	// be able to hold MULTIPLE runs (that's the design).
	for i := 0; i < 3000; i++ {
		db.Put(key(i%1000), val(i))
	}
	s := db.Stats()
	multi := false
	for lev := 1; lev < NumLevels; lev++ {
		if s.RunsPerLev[lev] > 1 {
			multi = true
		}
	}
	if !multi {
		t.Fatalf("no level accumulated multiple runs: %v", s.RunsPerLev)
	}
}

func TestQuickModel(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		fs := vfs.NewMem()
		db, err := Open("flsm", smallCfg(fs))
		if err != nil {
			return false
		}
		defer db.Close()
		model := map[string]string{}
		for op := 0; op < 2000; op++ {
			k := fmt.Sprintf("key-%04d", rnd.Intn(250))
			if rnd.Intn(8) == 0 {
				db.Delete([]byte(k))
				delete(model, k)
			} else {
				v := fmt.Sprintf("v-%d", op)
				db.Put([]byte(k), []byte(v))
				model[k] = v
			}
		}
		for k, v := range model {
			got, err := db.Get([]byte(k))
			if err != nil || string(got) != v {
				return false
			}
		}
		kvs, err := db.Scan([]byte(""), nil, 0)
		if err != nil || len(kvs) != len(model) {
			return false
		}
		var keys []string
		for k := range model {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, kv := range kvs {
			if string(kv.Key) != keys[i] || string(kv.Value) != model[keys[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptVersionRejected(t *testing.T) {
	fs := vfs.NewMem()
	db, _ := Open("flsm", smallCfg(fs))
	for i := 0; i < 200; i++ {
		db.Put(key(i), val(i))
	}
	db.Close()
	data, _ := fs.ReadFile("flsm/VERSION")
	data[10] ^= 0xff
	fs.WriteFile("flsm/VERSION", data)
	if _, err := Open("flsm", smallCfg(fs)); err == nil {
		t.Fatal("corrupt VERSION accepted")
	}
}

func TestWALRecovery(t *testing.T) {
	fs := vfs.NewMem()
	cfg := smallCfg(fs)
	cfg.MemtableSize = 1 << 20
	cfg.SyncWrites = true
	db, _ := Open("flsm", cfg)
	for i := 0; i < 40; i++ {
		db.Put(key(i), val(i))
	}
	db2, err := Open("flsm", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 40; i++ {
		got, err := db2.Get(key(i))
		if err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("key %d: %v", i, err)
		}
	}
}

func TestClosedOps(t *testing.T) {
	fs := vfs.NewMem()
	db, _ := Open("flsm", smallCfg(fs))
	db.Close()
	if err := db.Put(key(1), val(1)); err != ErrClosed {
		t.Fatalf("%v", err)
	}
	if _, err := db.Get(key(1)); err != ErrClosed {
		t.Fatalf("%v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestFlushEmpty(t *testing.T) {
	fs := vfs.NewMem()
	db, _ := Open("flsm", smallCfg(fs))
	defer db.Close()
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
}
