package flsm

import (
	"io"

	"unikv/internal/codec"
	"unikv/internal/record"
	"unikv/internal/sstable"
	"unikv/internal/wal"
)

// runIter concatenates one run's non-overlapping tables into a stream.
type runIter struct {
	r   run
	ti  int
	it  *sstable.Iterator
	err error
}

func newRunIter(r run) *runIter { return &runIter{r: r, ti: -1} }

func (l *runIter) Valid() bool           { return l.it != nil && l.it.Valid() }
func (l *runIter) Record() record.Record { return l.it.Record() }
func (l *runIter) Err() error            { return l.err }

func (l *runIter) First() bool {
	l.ti = -1
	l.it = nil
	return l.Next()
}

func (l *runIter) Next() bool {
	if l.err != nil {
		return false
	}
	if l.it != nil && l.it.Next() {
		return true
	}
	for {
		if l.it != nil {
			if err := l.it.Err(); err != nil {
				l.err = err
				return false
			}
		}
		l.ti++
		if l.ti >= len(l.r) {
			l.it = nil
			return false
		}
		l.it = l.r[l.ti].rdr.NewIterator()
		if l.it.First() {
			return true
		}
	}
}

func (l *runIter) Seek(target []byte) bool {
	if l.err != nil {
		return false
	}
	lo, hi := 0, len(l.r)
	for lo < hi {
		mid := (lo + hi) / 2
		if codec.Compare(l.r[mid].largest, target) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(l.r) {
		l.it = nil
		l.ti = len(l.r)
		return false
	}
	l.ti = lo
	l.it = l.r[lo].rdr.NewIterator()
	if l.it.Seek(target) {
		return true
	}
	if err := l.it.Err(); err != nil {
		l.err = err
		return false
	}
	return l.Next()
}

// ---------------------------------------------------------------------------
// WAL + version persistence.

func (db *DB) newWALLocked() error {
	old := db.walNum
	if db.logw != nil {
		db.logw.Sync()
		db.logw.Close()
		db.logw = nil
	}
	num := db.nextFile
	db.nextFile++
	f, err := db.fs.Create(db.walName(num))
	if err != nil {
		return err
	}
	db.logw = wal.NewWriter(f)
	db.walNum = num
	if old != 0 {
		db.fs.Remove(db.walName(old))
	}
	return nil
}

func (db *DB) replayWAL() error {
	f, err := db.fs.Open(db.walName(db.walNum))
	if err != nil {
		return err
	}
	defer f.Close()
	r := wal.NewReader(f)
	for {
		data, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		for len(data) > 0 {
			var rec record.Record
			rec, data, err = record.Decode(data)
			if err != nil {
				return nil
			}
			rec = rec.Clone()
			db.mem.Put(rec)
			if rec.Seq > db.seq {
				db.seq = rec.Seq
			}
		}
	}
}

const versionMagic uint64 = 0x756e696b76666c73 // "unikvfls"

func (db *DB) saveVersion() error {
	var buf []byte
	buf = codec.PutUint64(buf, versionMagic)
	buf = codec.PutUvarint(buf, db.nextFile)
	buf = codec.PutUvarint(buf, db.seq)
	buf = codec.PutUvarint(buf, db.walNum)
	for lev := 0; lev < NumLevels; lev++ {
		buf = codec.PutUvarint(buf, uint64(len(db.levels[lev])))
		for _, r := range db.levels[lev] {
			buf = codec.PutUvarint(buf, uint64(len(r)))
			for _, t := range r {
				buf = codec.PutUvarint(buf, t.fileNum)
				buf = codec.PutUvarint(buf, uint64(t.size))
				buf = codec.PutUvarint(buf, uint64(t.count))
				buf = codec.PutBytes(buf, t.smallest)
				buf = codec.PutBytes(buf, t.largest)
			}
		}
	}
	buf = codec.PutUint32(buf, codec.MaskChecksum(codec.Checksum(buf)))
	return db.fs.WriteFile(db.versionName(), buf)
}

func (db *DB) loadVersion() error {
	data, err := db.fs.ReadFile(db.versionName())
	if err != nil {
		return err
	}
	if len(data) < 12 {
		return codec.ErrCorrupt
	}
	body, crcB := data[:len(data)-4], data[len(data)-4:]
	want, _, _ := codec.Uint32(crcB)
	if codec.MaskChecksum(codec.Checksum(body)) != want {
		return codec.ErrCorrupt
	}
	var magic uint64
	if magic, body, err = codec.Uint64(body); err != nil || magic != versionMagic {
		return codec.ErrCorrupt
	}
	if db.nextFile, body, err = codec.Uvarint(body); err != nil {
		return err
	}
	if db.seq, body, err = codec.Uvarint(body); err != nil {
		return err
	}
	if db.walNum, body, err = codec.Uvarint(body); err != nil {
		return err
	}
	for lev := 0; lev < NumLevels; lev++ {
		var nRuns uint64
		if nRuns, body, err = codec.Uvarint(body); err != nil {
			return err
		}
		for ri := uint64(0); ri < nRuns; ri++ {
			var nTables uint64
			if nTables, body, err = codec.Uvarint(body); err != nil {
				return err
			}
			var r run
			for ti := uint64(0); ti < nTables; ti++ {
				var fileNum, size, count uint64
				var smallest, largest []byte
				if fileNum, body, err = codec.Uvarint(body); err != nil {
					return err
				}
				if size, body, err = codec.Uvarint(body); err != nil {
					return err
				}
				if count, body, err = codec.Uvarint(body); err != nil {
					return err
				}
				if smallest, body, err = codec.Bytes(body); err != nil {
					return err
				}
				if largest, body, err = codec.Bytes(body); err != nil {
					return err
				}
				t, err := db.openTable(fileNum, sstable.Props{
					Size: int64(size), Count: int(count),
					Smallest: append([]byte(nil), smallest...),
					Largest:  append([]byte(nil), largest...),
				})
				if err != nil {
					return err
				}
				r = append(r, t)
			}
			db.levels[lev] = append(db.levels[lev], r)
		}
	}
	return nil
}
