// Package flsm implements a fragmented LSM-tree — the PebblesDB-class
// baseline. Like PebblesDB's guarded levels, compaction never rewrites the
// next level: when level i accumulates K sorted runs they are merge-sorted
// into a single new run *appended* to level i+1. Write amplification drops
// (each key is rewritten once per level instead of once per overlap), but
// levels hold multiple overlapping runs, so reads probe more tables and
// scans must merge more iterators — exactly the trade-off the paper's
// evaluation attributes to PebblesDB.
package flsm

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"unikv/internal/codec"
	"unikv/internal/memtable"
	"unikv/internal/mergeiter"
	"unikv/internal/record"
	"unikv/internal/sstable"
	"unikv/internal/vfs"
	"unikv/internal/wal"
)

// ErrNotFound is returned by Get for absent keys.
var ErrNotFound = errors.New("flsm: key not found")

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("flsm: closed")

// NumLevels is the fixed level count.
const NumLevels = 7

// Config tunes the tree.
type Config struct {
	Name string
	// MemtableSize flushes the write buffer at this many bytes.
	MemtableSize int64
	// RunsPerLevel compacts a level once it holds this many sorted runs.
	RunsPerLevel int
	// TargetTableSize bounds output tables within a run.
	TargetTableSize int64
	// BloomBitsPerKey configures per-table Bloom filters.
	BloomBitsPerKey int
	// BlockSize overrides the SSTable block size.
	BlockSize int
	// SyncWrites fsyncs the WAL per write.
	SyncWrites bool
	// DisableWAL skips write-ahead logging.
	DisableWAL bool
	// FS overrides the file system.
	FS vfs.FS
}

// ConfigPebblesDB approximates PebblesDB at the given scale.
func ConfigPebblesDB(scale float64) Config {
	return Config{
		Name:            "pebblesdb",
		MemtableSize:    int64(4 << 20 * scale),
		RunsPerLevel:    4,
		TargetTableSize: int64(2 << 20 * scale),
		BloomBitsPerKey: 10,
	}
}

func (c Config) sanitize() Config {
	if c.MemtableSize <= 0 {
		c.MemtableSize = 4 << 20
	}
	if c.RunsPerLevel <= 0 {
		c.RunsPerLevel = 4
	}
	if c.TargetTableSize <= 0 {
		c.TargetTableSize = 2 << 20
	}
	if c.FS == nil {
		c.FS = vfs.NewOS()
	}
	return c
}

// table is one SSTable file.
type table struct {
	fileNum  uint64
	size     int64
	count    int
	smallest []byte
	largest  []byte
	rdr      *sstable.Reader
}

// run is one sorted run: key-ordered non-overlapping tables.
type run []*table

// DB is a fragmented LSM-tree store.
type DB struct {
	cfg Config
	fs  vfs.FS
	dir string

	mu       sync.Mutex
	mem      *memtable.Memtable
	logw     *wal.Writer
	walNum   uint64
	levels   [NumLevels][]run // runs newest-first within a level
	nextFile uint64
	seq      uint64

	flushes     atomic.Int64
	compactions atomic.Int64
	closed      bool
}

// Open opens (creating if necessary) a store in dir.
func Open(dir string, cfg Config) (*DB, error) {
	cfg = cfg.sanitize()
	db := &DB{cfg: cfg, fs: cfg.FS, dir: dir, nextFile: 1}
	if err := db.fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	db.mem = memtable.New()
	if db.fs.Exists(db.versionName()) {
		if err := db.loadVersion(); err != nil {
			return nil, err
		}
	}
	if db.walNum != 0 && db.fs.Exists(db.walName(db.walNum)) {
		if err := db.replayWAL(); err != nil {
			return nil, err
		}
	}
	if !db.mem.Empty() {
		if err := db.flushLocked(); err != nil {
			return nil, err
		}
	}
	if !cfg.DisableWAL {
		if err := db.newWALLocked(); err != nil {
			return nil, err
		}
		if err := db.saveVersion(); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func (db *DB) versionName() string { return filepath.Join(db.dir, "VERSION") }
func (db *DB) walName(n uint64) string {
	return filepath.Join(db.dir, fmt.Sprintf("%08d.wal", n))
}
func (db *DB) tableName(n uint64) string {
	return filepath.Join(db.dir, fmt.Sprintf("%08d.sst", n))
}

// Put inserts or overwrites a key.
func (db *DB) Put(key, value []byte) error {
	return db.apply(record.Record{Key: append([]byte(nil), key...),
		Kind: record.KindSet, Value: append([]byte(nil), value...)})
}

// Delete writes a tombstone.
func (db *DB) Delete(key []byte) error {
	return db.apply(record.Record{Key: append([]byte(nil), key...), Kind: record.KindDelete})
}

func (db *DB) apply(rec record.Record) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	db.seq++
	rec.Seq = db.seq
	if db.logw != nil {
		if err := db.logw.AddRecord(rec.Encode(nil)); err != nil {
			return err
		}
		if db.cfg.SyncWrites {
			if err := db.logw.Sync(); err != nil {
				return err
			}
		}
	}
	db.mem.Put(rec)
	if db.mem.Size() >= db.cfg.MemtableSize {
		if err := db.flushLocked(); err != nil {
			return err
		}
		if err := db.maybeCompactLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Get probes the memtable, then every run of every level, newest first —
// the fragmented design's read cost.
func (db *DB) Get(key []byte) ([]byte, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	if rec, ok := db.mem.Get(key); ok {
		return resolve(rec)
	}
	for lev := 0; lev < NumLevels; lev++ {
		for _, r := range db.levels[lev] {
			t := findTable(r, key)
			if t == nil || !t.rdr.MayContain(key) {
				continue
			}
			rec, ok, err := t.rdr.Get(key)
			if err != nil {
				return nil, err
			}
			if ok {
				return resolve(rec)
			}
		}
	}
	return nil, ErrNotFound
}

func resolve(rec record.Record) ([]byte, error) {
	if rec.Kind == record.KindDelete {
		return nil, ErrNotFound
	}
	return append([]byte(nil), rec.Value...), nil
}

func findTable(r run, key []byte) *table {
	lo, hi := 0, len(r)
	for lo < hi {
		mid := (lo + hi) / 2
		if codec.Compare(r[mid].largest, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r) || codec.Compare(key, r[lo].smallest) < 0 {
		return nil
	}
	return r[lo]
}

// KV is one scan result.
type KV struct {
	Key   []byte
	Value []byte
}

// Scan merges the memtable and every run of every level (many more
// iterators than a leveled tree — the fragmented design's scan cost).
func (db *DB) Scan(start, end []byte, limit int) ([]KV, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	if limit <= 0 && end == nil {
		limit = 1 << 30
	}
	var iters []mergeiter.RecIter
	iters = append(iters, db.mem.NewIterator())
	for lev := 0; lev < NumLevels; lev++ {
		for _, r := range db.levels[lev] {
			iters = append(iters, newRunIter(r))
		}
	}
	d := mergeiter.NewDedup(mergeiter.New(iters))
	var out []KV
	for ok := d.Seek(start); ok; ok = d.Next() {
		rec := d.Record()
		if end != nil && codec.Compare(rec.Key, end) >= 0 {
			break
		}
		if rec.Kind == record.KindDelete {
			continue
		}
		out = append(out, KV{
			Key:   append([]byte(nil), rec.Key...),
			Value: append([]byte(nil), rec.Value...),
		})
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Flush forces the memtable to L0.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.mem.Empty() {
		return nil
	}
	if err := db.flushLocked(); err != nil {
		return err
	}
	return db.maybeCompactLocked()
}

// Close flushes and releases everything.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	var first error
	if !db.mem.Empty() {
		if err := db.flushLocked(); err != nil {
			first = err
		}
	}
	if db.logw != nil {
		db.logw.Sync()
		db.logw.Close()
		db.logw = nil
	}
	for lev := range db.levels {
		for _, r := range db.levels[lev] {
			for _, t := range r {
				t.rdr.Close()
			}
		}
	}
	db.closed = true
	return first
}

// Stats reports tree shape.
type Stats struct {
	Name        string
	Flushes     int64
	Compactions int64
	RunsPerLev  []int
}

// Stats returns a snapshot.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := Stats{Name: db.cfg.Name, Flushes: db.flushes.Load(), Compactions: db.compactions.Load()}
	for lev := range db.levels {
		s.RunsPerLev = append(s.RunsPerLev, len(db.levels[lev]))
	}
	return s
}
