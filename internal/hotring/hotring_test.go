package hotring

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// promote drives key through the miss→candidate→install cycle until it is
// resident (or the attempt budget runs out).
func promote(t *testing.T, r *Ring, key, value []byte) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		if _, ok := r.Get(key); ok {
			return
		}
		tok := r.BeginMiss(key)
		if tok.Promote {
			r.Install(tok, key, value)
		}
	}
	t.Fatalf("key %q never promoted", key)
}

func TestGetMissThenPromote(t *testing.T) {
	r := New(Config{Entries: 64, Shards: 2, SampleEvery: 1, PromoteAfter: 2})
	key, val := []byte("k1"), []byte("v1")
	if _, ok := r.Get(key); ok {
		t.Fatal("hit on empty ring")
	}
	tok := r.BeginMiss(key)
	if tok.Promote {
		t.Fatal("promoted on first sampled miss with PromoteAfter=2")
	}
	tok = r.BeginMiss(key)
	if !tok.Promote || !tok.Warm {
		t.Fatalf("second sampled miss should promote and be warm: %+v", tok)
	}
	if !r.Install(tok, key, val) {
		t.Fatal("install failed")
	}
	got, ok := r.Get(key)
	if !ok || string(got) != "v1" {
		t.Fatalf("got %q %v", got, ok)
	}
	// The returned slice must be a private copy.
	got[0] = 'X'
	got2, _ := r.Get(key)
	if string(got2) != "v1" {
		t.Fatal("Get returned an aliased buffer")
	}
	s := r.Snapshot()
	if s.Hits < 2 || s.Promotions != 1 || s.Resident != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestInvalidateDropsEntryAndAbortsInflightPromotion(t *testing.T) {
	r := New(Config{Entries: 64, Shards: 1, SampleEvery: 1, PromoteAfter: 1})
	key := []byte("k")
	promote(t, r, key, []byte("v1"))
	r.Invalidate(key)
	if _, ok := r.Get(key); ok {
		t.Fatal("stale hit after invalidate")
	}
	// A token taken before an invalidation must not install afterwards.
	tok := r.BeginMiss(key)
	if !tok.Promote {
		t.Fatalf("expected promotion token, got %+v", tok)
	}
	r.Invalidate(key) // concurrent write lands between read and install
	if r.Install(tok, key, []byte("stale")) {
		t.Fatal("install succeeded despite invalidation after token")
	}
	if _, ok := r.Get(key); ok {
		t.Fatal("stale value resident")
	}
}

func TestMaxValueNotAdmitted(t *testing.T) {
	r := New(Config{Entries: 64, Shards: 1, MaxValue: 8, SampleEvery: 1, PromoteAfter: 1})
	key := []byte("big")
	tok := r.BeginMiss(key)
	tok = r.BeginMiss(key)
	if r.Install(tok, key, make([]byte, 9)) {
		t.Fatal("oversized value admitted")
	}
	if r.Install(Token{}, key, []byte("x")) {
		t.Fatal("zero token installed")
	}
}

func TestSlotDuelAgesResident(t *testing.T) {
	r := New(Config{Entries: 1, Shards: 1, SampleEvery: 1, PromoteAfter: 1})
	// Two keys share the single slot. The first wins it; the challenger
	// must out-count it, which aging guarantees eventually.
	a, b := []byte("aa"), []byte("bb")
	promote(t, r, a, []byte("va"))
	for i := 0; i < 1000; i++ {
		if _, ok := r.Get(b); ok {
			return
		}
		tok := r.BeginMiss(b)
		if tok.Promote {
			r.Install(tok, b, []byte("vb"))
		}
	}
	t.Fatal("challenger never displaced a cold resident")
}

func TestInvalidateRange(t *testing.T) {
	r := New(Config{Entries: 256, Shards: 4, SampleEvery: 1, PromoteAfter: 1})
	keys := [][]byte{[]byte("a1"), []byte("m1"), []byte("z1")}
	for _, k := range keys {
		promote(t, r, k, append([]byte("v-"), k...))
	}
	r.InvalidateRange([]byte("m"), []byte("n"))
	if _, ok := r.Get([]byte("m1")); ok {
		t.Fatal("ranged key survived InvalidateRange")
	}
	for _, k := range [][]byte{[]byte("a1"), []byte("z1")} {
		if _, ok := r.Get(k); !ok {
			t.Fatalf("key %q outside range was dropped", k)
		}
	}
	r.InvalidateRange(nil, nil) // whole keyspace
	if s := r.Snapshot(); s.Resident != 0 || s.ResidentBytes != 0 {
		t.Fatalf("resident after full-range invalidation: %+v", s)
	}
}

func TestNilRingIsDisabled(t *testing.T) {
	var r *Ring
	if _, ok := r.Get([]byte("k")); ok {
		t.Fatal("nil ring hit")
	}
	tok := r.BeginMiss([]byte("k"))
	if tok.Promote || tok.Warm {
		t.Fatal("nil ring promoted")
	}
	if r.Install(tok, []byte("k"), []byte("v")) {
		t.Fatal("nil ring installed")
	}
	r.Invalidate([]byte("k"))
	r.InvalidateRange(nil, nil)
	if s := r.Snapshot(); s != (Stats{}) {
		t.Fatalf("nil ring stats %+v", s)
	}
}

// TestRaceNoStaleHit is the protocol stress: every key's authoritative
// value lives in a mutex-guarded map (standing in for the engine's tiered
// store). Writers update the map then Invalidate; readers consult the ring
// first and fall back to the map, threading the token exactly like
// DB.Get. After every writer has finished, any hit must return the final
// value — a stale hit means the version fence is broken. Run with -race.
func TestRaceNoStaleHit(t *testing.T) {
	r := New(Config{Entries: 256, Shards: 4, SampleEvery: 1, PromoteAfter: 1})

	const nKeys = 32
	var authMu sync.RWMutex
	auth := make(map[string][]byte, nKeys)
	key := func(i int) []byte { return []byte(fmt.Sprintf("key%02d", i)) }
	for i := 0; i < nKeys; i++ {
		auth[string(key(i))] = []byte(fmt.Sprintf("val%02d-gen0", i))
	}

	read := func(k []byte) []byte {
		if v, ok := r.Get(k); ok {
			return v
		}
		tok := r.BeginMiss(k)
		authMu.RLock()
		v := append([]byte(nil), auth[string(k)]...)
		authMu.RUnlock()
		if tok.Promote {
			r.Install(tok, k, v)
		}
		return v
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(seed))
			for gen := 1; !stop.Load(); gen++ {
				k := key(rnd.Intn(nKeys))
				v := []byte(fmt.Sprintf("%s-w%d-gen%d", k, seed, gen))
				authMu.Lock()
				auth[string(k)] = v
				authMu.Unlock()
				r.Invalidate(k)
			}
		}(int64(w))
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(seed))
			for i := 0; i < 20000; i++ {
				k := key(rnd.Intn(nKeys))
				read(k)
			}
			stop.Store(true)
		}(int64(100 + g))
	}
	wg.Wait()

	// Quiesced: every resident entry must now match the authoritative map.
	for i := 0; i < nKeys; i++ {
		k := key(i)
		if v, ok := r.Get(k); ok {
			if want := auth[string(k)]; string(v) != string(want) {
				t.Fatalf("stale hit for %q: got %q want %q", k, v, want)
			}
		}
	}
}
