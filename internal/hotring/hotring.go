// Package hotring is the hot-key read layer: a sharded, direct-mapped hash
// structure that serves the hottest keys of a skewed workload in a single
// memory probe, before the engine's tiered lookup (partition router →
// memtable → hash index → sorted run → value log) is even entered.
//
// The design follows the observation behind HotRing and the F2/FASTER line
// of work: real traffic is zipfian, so a small resident set absorbs most
// reads if it can be served in O(1) without locks. Readers never take a
// lock — resident entries are published through atomic pointers and are
// immutable once published (RCU-style: writers replace, never mutate).
// Per-shard writer mutexes serialize only the mutators (promotion,
// invalidation), which are orders of magnitude rarer than hits.
//
// # Frequency tracking and promotion
//
// Every miss ticks a per-shard sampled counter; every sampleEvery-th miss
// records the key in a small bounded candidate table. A key whose sampled
// count reaches promoteAfter is promoted: the *next* miss for it carries a
// promotion token through the slow-path read and installs the freshly read
// value. Slots are direct-mapped (hash → one slot), so a promotion into an
// occupied slot is a frequency duel: the challenger must out-count the
// resident, and a failed challenge halves the resident's count (aging), so
// a shifted hot set converges instead of wedging.
//
// # Invalidation protocol (why a stale hit is impossible)
//
// The engine invalidates a key on every write or delete of that key after
// the write is applied and before it is acknowledged. Invalidation bumps
// the key's slot version and clears the slot — under the shard's writer
// mutex. Promotion is tagged: the token captures the slot version BEFORE
// the slow-path read begins, and the install re-checks it under the same
// mutex. The two orders that exist are therefore both safe:
//
//   - invalidation before install: the version changed, the install aborts;
//   - install before invalidation: the invalidation clears the entry.
//
// If the version still matches at install time, the bump (and hence the
// conflicting write's apply, which happens-before its invalidation) had
// not happened when the token was taken, so the slow-path read — which
// starts after the token — ran strictly before or after the write, and a
// racing write's invalidation lands after the install and clears it.
// Background maintenance (merge, scan merge, GC) moves values between
// files but never changes the logical key→value mapping, and entries hold
// materialized values — not file or log pointers — so maintenance cannot
// make an entry stale; a partition split hands a key range to a new
// partition, and the engine drops that range from the ring (the range's
// heat belongs to the new owner — and once shards migrate between nodes,
// the handoff must not leave hits behind).
package hotring

import (
	"bytes"
	"sync"
	"sync/atomic"
)

// Config sizes a Ring. The zero value is completed by New.
type Config struct {
	// Entries is the total slot count across all shards (rounded up so
	// each shard holds a power-of-two number of slots). Default 4096.
	Entries int
	// Shards is the number of independently locked shards. Default 16,
	// rounded up to a power of two.
	Shards int
	// MaxValue is the largest value (bytes) admitted to the ring; larger
	// values always take the slow path. Default 4096.
	MaxValue int
	// SampleEvery is the miss-sampling period: every SampleEvery-th miss
	// in a shard records its key in the candidate table. Default 8.
	SampleEvery int
	// PromoteAfter is the sampled count at which a candidate key starts
	// carrying promotion tokens. Default 2.
	PromoteAfter int
}

func (c Config) withDefaults() Config {
	if c.Entries <= 0 {
		c.Entries = 4096
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.MaxValue <= 0 {
		c.MaxValue = 4096
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 8
	}
	if c.PromoteAfter <= 0 {
		c.PromoteAfter = 2
	}
	return c
}

// entry is one resident hot key. Immutable after publication: mutators
// replace the slot pointer, never the fields (freq is the one exception —
// it is atomic and purely advisory).
type entry struct {
	key   []byte
	value []byte
	freq  atomic.Int64
}

// maxCandidates bounds each shard's candidate table; at the default 16
// shards that is 1024 tracked keys, plenty above any realistic slot count
// per shard. When full, the table is decayed rather than grown.
const maxCandidates = 64

// shard is one independently locked region of the ring. Readers touch only
// slots and versions (atomics); writerMu serializes promotion,
// invalidation, and the candidate table.
type shard struct {
	slots    []atomic.Pointer[entry]
	versions []atomic.Uint64 // bumped on invalidation of the slot
	missTick atomic.Uint64   // sampling clock

	// writerMu is the last rank of the engine's documented lock order (held
	// after any core mutex, never while acquiring one; see
	// internal/core/db.go and DESIGN.md §5h).
	writerMu sync.Mutex
	cand     map[string]int // sampled miss counts (under writerMu)
}

// Ring is the hot-key layer shared by one DB. A nil *Ring is valid and
// behaves as "always miss, never promote" — the disabled state.
type Ring struct {
	shards    []shard
	shardMask uint64
	slotMask  uint64 // per-shard slot index mask

	maxValue     int
	sampleEvery  uint64
	promoteAfter int

	hits          atomic.Int64
	misses        atomic.Int64
	promotions    atomic.Int64
	invalidations atomic.Int64
	resident      atomic.Int64
	residentBytes atomic.Int64
}

// New builds a Ring for cfg. Entries <= 0 after defaulting is impossible,
// so New never returns nil; callers model "off" with a nil *Ring.
func New(cfg Config) *Ring {
	cfg = cfg.withDefaults()
	nShards := 1
	for nShards < cfg.Shards {
		nShards <<= 1
	}
	perShard := 1
	for perShard*nShards < cfg.Entries {
		perShard <<= 1
	}
	r := &Ring{
		shards:       make([]shard, nShards),
		shardMask:    uint64(nShards - 1),
		slotMask:     uint64(perShard - 1),
		maxValue:     cfg.MaxValue,
		sampleEvery:  uint64(cfg.SampleEvery),
		promoteAfter: cfg.PromoteAfter,
	}
	for i := range r.shards {
		r.shards[i].slots = make([]atomic.Pointer[entry], perShard)
		r.shards[i].versions = make([]atomic.Uint64, perShard)
		r.shards[i].cand = make(map[string]int, maxCandidates)
	}
	return r
}

// hash is the 64-bit FNV-1a of key (inlined; this is the single probe's
// only arithmetic).
func hash(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// locate splits a key's hash into its shard and slot index.
func (r *Ring) locate(key []byte) (*shard, uint64) {
	h := hash(key)
	return &r.shards[h&r.shardMask], (h >> 16) & r.slotMask
}

// Get serves key from the ring if it is resident. The returned slice is a
// private copy. This is the single-probe fast path: one hash, one atomic
// load, one key compare.
func (r *Ring) Get(key []byte) ([]byte, bool) {
	if r == nil {
		return nil, false
	}
	s, slot := r.locate(key)
	e := s.slots[slot].Load()
	if e == nil || !bytes.Equal(e.key, key) {
		r.misses.Add(1)
		return nil, false
	}
	e.freq.Add(1)
	r.hits.Add(1)
	return append([]byte(nil), e.value...), true
}

// Token carries a miss's promotion state through the slow-path read. The
// zero Token never promotes (and is what a nil Ring hands out).
type Token struct {
	// Promote is set when the key's sampled frequency crossed the
	// promotion threshold: the caller should offer the value it reads to
	// Install.
	Promote bool
	// Warm is set when the key has been sampled before — the cache
	// admission hint (a warm key's value is worth keeping resident even
	// if it has not yet earned a ring slot).
	Warm bool
	// version is the key's slot version before the slow-path read began;
	// Install re-checks it so a concurrent write aborts the promotion.
	version uint64
	// freq is the sampled count backing a promotion duel.
	freq int
}

// BeginMiss records a miss for key and returns the token the caller
// threads through its slow-path read. Must be called BEFORE the slow-path
// lookup reads any engine state: the token's version fence is what makes a
// later Install safe.
func (r *Ring) BeginMiss(key []byte) Token {
	if r == nil {
		return Token{}
	}
	s, slot := r.locate(key)
	tok := Token{version: s.versions[slot].Load()}
	if s.missTick.Add(1)%r.sampleEvery != 0 {
		return tok
	}
	s.writerMu.Lock()
	if len(s.cand) >= maxCandidates {
		// Decay instead of evicting: halve every count, drop the cold.
		for k, c := range s.cand {
			if c /= 2; c == 0 {
				delete(s.cand, k)
			} else {
				s.cand[k] = c
			}
		}
	}
	s.cand[string(key)]++
	tok.freq = s.cand[string(key)]
	tok.Warm = tok.freq >= 2
	tok.Promote = tok.freq >= r.promoteAfter
	s.writerMu.Unlock()
	return tok
}

// Install publishes value for key if the promotion is still safe (no
// invalidation hit the slot since tok was taken) and the key wins its
// slot. value must be the result of the slow-path read that tok was
// threaded through; it is copied. Reports whether the entry was installed.
func (r *Ring) Install(tok Token, key, value []byte) bool {
	if r == nil || !tok.Promote || len(value) > r.maxValue {
		return false
	}
	s, slot := r.locate(key)
	s.writerMu.Lock()
	defer s.writerMu.Unlock()
	if s.versions[slot].Load() != tok.version {
		return false // a write raced the slow-path read; its value may be stale
	}
	if cur := s.slots[slot].Load(); cur != nil && !bytes.Equal(cur.key, key) {
		// Frequency duel for the slot; losing ages the resident so a
		// shifted hot set eventually displaces it.
		if int64(tok.freq) <= cur.freq.Load() {
			cur.freq.Store(cur.freq.Load() / 2)
			return false
		}
	}
	e := &entry{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	}
	e.freq.Store(int64(tok.freq))
	r.accountReplace(s.slots[slot].Swap(e), e)
	r.promotions.Add(1)
	delete(s.cand, string(key))
	return true
}

// Invalidate drops key's resident entry (if any) and bumps its slot
// version so any in-flight promotion of a concurrently read value aborts.
// The engine calls it after applying a write or delete of key, before
// acknowledging it.
func (r *Ring) Invalidate(key []byte) {
	if r == nil {
		return
	}
	s, slot := r.locate(key)
	s.writerMu.Lock()
	s.versions[slot].Add(1)
	if cur := s.slots[slot].Load(); cur != nil && bytes.Equal(cur.key, key) {
		r.accountReplace(s.slots[slot].Swap(nil), nil)
		r.invalidations.Add(1)
	}
	s.writerMu.Unlock()
}

// InvalidateRange drops every resident entry with lower <= key < upper
// (nil upper = +inf), bumping each dropped entry's slot version. The
// engine calls it when a partition split hands [lower, upper) to a new
// partition: the range's heat belongs to the new owner, and once shards
// migrate between nodes a handoff must not leave hits behind.
func (r *Ring) InvalidateRange(lower, upper []byte) {
	if r == nil {
		return
	}
	for i := range r.shards {
		s := &r.shards[i]
		s.writerMu.Lock()
		for slot := range s.slots {
			cur := s.slots[slot].Load()
			if cur == nil {
				continue
			}
			if bytes.Compare(cur.key, lower) < 0 {
				continue
			}
			if upper != nil && bytes.Compare(cur.key, upper) >= 0 {
				continue
			}
			s.versions[slot].Add(1)
			r.accountReplace(s.slots[slot].Swap(nil), nil)
			r.invalidations.Add(1)
		}
		s.writerMu.Unlock()
	}
}

// accountReplace maintains the residency gauges across a slot swap.
// Requires the shard's writerMu.
func (r *Ring) accountReplace(old, new *entry) {
	if old != nil {
		r.resident.Add(-1)
		r.residentBytes.Add(-int64(len(old.key) + len(old.value)))
	}
	if new != nil {
		r.resident.Add(1)
		r.residentBytes.Add(int64(len(new.key) + len(new.value)))
	}
}

// Stats is a point-in-time copy of the ring counters and gauges.
type Stats struct {
	Hits, Misses  int64
	Promotions    int64
	Invalidations int64
	Resident      int64
	ResidentBytes int64
}

// Snapshot returns the counters; a nil Ring reports zeros.
func (r *Ring) Snapshot() Stats {
	if r == nil {
		return Stats{}
	}
	return Stats{
		Hits:          r.hits.Load(),
		Misses:        r.misses.Load(),
		Promotions:    r.promotions.Load(),
		Invalidations: r.invalidations.Load(),
		Resident:      r.resident.Load(),
		ResidentBytes: r.residentBytes.Load(),
	}
}
