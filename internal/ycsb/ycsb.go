// Package ycsb generates YCSB-style workloads: the key-choice
// distributions (uniform, zipfian, scrambled zipfian, latest) and the six
// core workload mixes A–F used by the paper's mixed-workload experiments
// (fig8), plus the microbenchmark drivers (load / read / scan / update).
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
)

// OpType enumerates YCSB operations.
type OpType int

// Operation kinds.
const (
	OpRead OpType = iota
	OpUpdate
	OpInsert
	OpScan
	OpReadModifyWrite
)

func (t OpType) String() string {
	switch t {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	case OpScan:
		return "scan"
	case OpReadModifyWrite:
		return "rmw"
	}
	return "?"
}

// Op is one generated operation.
type Op struct {
	Type    OpType
	Key     []byte
	ScanLen int
}

// Distribution selects keys.
type Distribution int

// Key distributions.
const (
	Uniform Distribution = iota
	Zipfian
	ScrambledZipfian
	Latest
)

// Workload is a YCSB operation mix.
type Workload struct {
	Name       string
	ReadProp   float64
	UpdateProp float64
	InsertProp float64
	ScanProp   float64
	RMWProp    float64
	Dist       Distribution
	MaxScanLen int
}

// The six core workloads, as defined by the YCSB distribution.
var (
	WorkloadA = Workload{Name: "A", ReadProp: 0.5, UpdateProp: 0.5, Dist: Zipfian}
	WorkloadB = Workload{Name: "B", ReadProp: 0.95, UpdateProp: 0.05, Dist: Zipfian}
	WorkloadC = Workload{Name: "C", ReadProp: 1.0, Dist: Zipfian}
	WorkloadD = Workload{Name: "D", ReadProp: 0.95, InsertProp: 0.05, Dist: Latest}
	WorkloadE = Workload{Name: "E", ScanProp: 0.95, InsertProp: 0.05, Dist: Zipfian, MaxScanLen: 100}
	WorkloadF = Workload{Name: "F", ReadProp: 0.5, RMWProp: 0.5, Dist: Zipfian}
)

// CoreWorkloads lists A–F in order.
func CoreWorkloads() []Workload {
	return []Workload{WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadE, WorkloadF}
}

// Key formats record number i as its YCSB-style key. fnv-scrambling keeps
// the on-disk key order uncorrelated with insertion order.
func Key(i int) []byte {
	return []byte(fmt.Sprintf("user%016x", fnv64(uint64(i))))
}

// OrderedKey formats record number i preserving numeric order (sequential
// loads, range partition demos).
func OrderedKey(i int) []byte {
	return []byte(fmt.Sprintf("user%012d", i))
}

func fnv64(v uint64) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime64
		v >>= 8
	}
	return h
}

// Value builds a deterministic value of the given size for record i.
func Value(i, size int) []byte {
	v := make([]byte, size)
	pattern := fmt.Sprintf("v%010d-", i)
	for off := 0; off < size; off += len(pattern) {
		copy(v[off:], pattern)
	}
	return v
}

// zipfGen draws ranks 0..n-1 with the YCSB zipfian constant 0.99, using
// the Gray et al. rejection method (same as YCSB's ZipfianGenerator).
type zipfGen struct {
	n              uint64
	theta          float64
	alpha          float64
	zetan, zeta2   float64
	eta            float64
	countForZeta   uint64
	allowItemCount bool
}

func newZipf(n uint64) *zipfGen {
	const theta = 0.99
	z := &zipfGen{n: n, theta: theta}
	z.zeta2 = zetaStatic(2, theta)
	z.zetan = zetaStatic(n, theta)
	z.countForZeta = n
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zetaStatic(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// next draws a rank in [0, n).
func (z *zipfGen) next(rnd *rand.Rand) uint64 {
	u := rnd.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// Client generates a stream of operations for a workload over a growing
// record space.
type Client struct {
	w           Workload
	rnd         *rand.Rand
	recordCount int
	zipf        *zipfGen
	zipfN       int
}

// NewClient creates a generator over recordCount pre-loaded records.
func NewClient(w Workload, recordCount int, seed int64) *Client {
	c := &Client{w: w, rnd: rand.New(rand.NewSource(seed)), recordCount: recordCount}
	c.ensureZipf()
	return c
}

func (c *Client) ensureZipf() {
	if c.zipf == nil || c.zipfN < c.recordCount {
		// Rebuild when the record space grew noticeably (inserts).
		n := c.recordCount
		if n < 1 {
			n = 1
		}
		c.zipf = newZipf(uint64(n))
		c.zipfN = n
	}
}

// chooseKeyNum picks a record number per the workload's distribution.
func (c *Client) chooseKeyNum() int {
	switch c.w.Dist {
	case Uniform:
		return c.rnd.Intn(c.recordCount)
	case Latest:
		// Skew toward the most recently inserted records.
		c.ensureZipf()
		r := int(c.zipf.next(c.rnd))
		k := c.recordCount - 1 - r
		if k < 0 {
			k = 0
		}
		return k
	case ScrambledZipfian:
		c.ensureZipf()
		r := c.zipf.next(c.rnd)
		return int(fnv64(r) % uint64(c.recordCount))
	default: // Zipfian
		c.ensureZipf()
		r := int(c.zipf.next(c.rnd))
		if r >= c.recordCount {
			r = c.recordCount - 1
		}
		return r
	}
}

// Next generates one operation.
func (c *Client) Next() Op {
	p := c.rnd.Float64()
	w := c.w
	switch {
	case p < w.ReadProp:
		return Op{Type: OpRead, Key: Key(c.chooseKeyNum())}
	case p < w.ReadProp+w.UpdateProp:
		return Op{Type: OpUpdate, Key: Key(c.chooseKeyNum())}
	case p < w.ReadProp+w.UpdateProp+w.InsertProp:
		k := Key(c.recordCount)
		c.recordCount++
		return Op{Type: OpInsert, Key: k}
	case p < w.ReadProp+w.UpdateProp+w.InsertProp+w.ScanProp:
		n := 1
		if w.MaxScanLen > 1 {
			n = c.rnd.Intn(w.MaxScanLen) + 1
		}
		return Op{Type: OpScan, Key: Key(c.chooseKeyNum()), ScanLen: n}
	default:
		return Op{Type: OpReadModifyWrite, Key: Key(c.chooseKeyNum())}
	}
}

// RecordCount returns the current record space size (grows with inserts).
func (c *Client) RecordCount() int { return c.recordCount }
