package ycsb

import (
	"bytes"
	"math"
	"testing"
)

func TestKeyDeterministicUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 10000; i++ {
		k := string(Key(i))
		if seen[k] {
			t.Fatalf("duplicate key for %d", i)
		}
		seen[k] = true
	}
	if !bytes.Equal(Key(42), Key(42)) {
		t.Fatal("Key not deterministic")
	}
}

func TestOrderedKeySorted(t *testing.T) {
	for i := 1; i < 1000; i++ {
		if bytes.Compare(OrderedKey(i-1), OrderedKey(i)) >= 0 {
			t.Fatalf("OrderedKey not monotone at %d", i)
		}
	}
}

func TestValueSizeAndDeterminism(t *testing.T) {
	for _, size := range []int{1, 10, 100, 1024, 4096} {
		v := Value(7, size)
		if len(v) != size {
			t.Fatalf("size %d: got %d", size, len(v))
		}
	}
	if !bytes.Equal(Value(3, 100), Value(3, 100)) {
		t.Fatal("Value not deterministic")
	}
	if bytes.Equal(Value(3, 100), Value(4, 100)) {
		t.Fatal("Values should differ per record")
	}
}

func TestZipfSkew(t *testing.T) {
	c := NewClient(WorkloadC, 10000, 1)
	counts := map[int]int{}
	const draws = 50000
	for i := 0; i < draws; i++ {
		counts[c.chooseKeyNum()]++
	}
	// Head concentration: top-10 ranks should take a large share.
	head := 0
	for r := 0; r < 10; r++ {
		head += counts[r]
	}
	if float64(head)/draws < 0.2 {
		t.Fatalf("zipfian head share too small: %f", float64(head)/draws)
	}
	// But the tail is not empty.
	tail := 0
	for r, n := range counts {
		if r > 5000 {
			tail += n
		}
	}
	if tail == 0 {
		t.Fatal("zipfian never samples the tail")
	}
}

func TestUniformCoverage(t *testing.T) {
	w := WorkloadC
	w.Dist = Uniform
	c := NewClient(w, 100, 2)
	counts := map[int]int{}
	for i := 0; i < 20000; i++ {
		counts[c.chooseKeyNum()]++
	}
	for r := 0; r < 100; r++ {
		if counts[r] == 0 {
			t.Fatalf("uniform missed rank %d", r)
		}
		if math.Abs(float64(counts[r])-200) > 120 {
			t.Fatalf("uniform rank %d count %d implausible", r, counts[r])
		}
	}
}

func TestLatestSkewsToRecent(t *testing.T) {
	w := WorkloadD
	c := NewClient(w, 1000, 3)
	recent, old := 0, 0
	for i := 0; i < 20000; i++ {
		k := c.chooseKeyNum()
		if k >= 900 {
			recent++
		}
		if k < 500 {
			old++
		}
	}
	if recent <= old {
		t.Fatalf("latest distribution not recency-skewed: recent=%d old=%d", recent, old)
	}
}

func TestWorkloadMixes(t *testing.T) {
	for _, w := range CoreWorkloads() {
		total := w.ReadProp + w.UpdateProp + w.InsertProp + w.ScanProp + w.RMWProp
		if math.Abs(total-1.0) > 1e-9 {
			t.Fatalf("workload %s proportions sum to %f", w.Name, total)
		}
		c := NewClient(w, 1000, 4)
		counts := map[OpType]int{}
		for i := 0; i < 10000; i++ {
			op := c.Next()
			counts[op.Type]++
			if op.Type == OpScan && (op.ScanLen < 1 || op.ScanLen > w.MaxScanLen) {
				t.Fatalf("workload %s scan len %d", w.Name, op.ScanLen)
			}
			if len(op.Key) == 0 {
				t.Fatalf("workload %s empty key", w.Name)
			}
		}
		check := func(typ OpType, prop float64) {
			got := float64(counts[typ]) / 10000
			if math.Abs(got-prop) > 0.03 {
				t.Fatalf("workload %s: %v proportion %f want %f", w.Name, typ, got, prop)
			}
		}
		check(OpRead, w.ReadProp)
		check(OpUpdate, w.UpdateProp)
		check(OpInsert, w.InsertProp)
		check(OpScan, w.ScanProp)
		check(OpReadModifyWrite, w.RMWProp)
	}
}

func TestInsertGrowsRecordSpace(t *testing.T) {
	c := NewClient(WorkloadD, 100, 5)
	start := c.RecordCount()
	inserts := 0
	for i := 0; i < 5000; i++ {
		if c.Next().Type == OpInsert {
			inserts++
		}
	}
	if c.RecordCount() != start+inserts {
		t.Fatalf("record count %d want %d", c.RecordCount(), start+inserts)
	}
	if inserts == 0 {
		t.Fatal("workload D generated no inserts")
	}
}

func TestOpTypeString(t *testing.T) {
	for _, typ := range []OpType{OpRead, OpUpdate, OpInsert, OpScan, OpReadModifyWrite} {
		if typ.String() == "?" {
			t.Fatalf("missing name for %d", typ)
		}
	}
}

func TestScrambledZipfianSpreadsHotKeys(t *testing.T) {
	// Plain zipfian concentrates on the lowest ranks; scrambling must keep
	// the skew (few keys dominate) while spreading those keys across the
	// whole record space.
	w := WorkloadC
	w.Dist = ScrambledZipfian
	c := NewClient(w, 10000, 9)
	counts := map[int]int{}
	for i := 0; i < 40000; i++ {
		counts[c.chooseKeyNum()]++
	}
	// Skew preserved: some key drew far more than uniform share.
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	if max < 40 { // uniform share would be 4
		t.Fatalf("scrambling destroyed the skew: max=%d", max)
	}
	// Spread: the hot keys are not clustered in the low ranks.
	lowRank := 0
	for k, n := range counts {
		if k < 100 {
			lowRank += n
		}
	}
	if float64(lowRank)/40000 > 0.2 {
		t.Fatalf("scrambled hot keys still clustered low: %d/40000", lowRank)
	}
}
