package sorted

import (
	"fmt"
	"testing"

	"unikv/internal/manifest"
	"unikv/internal/record"
	"unikv/internal/sstable"
	"unikv/internal/vfs"
)

// buildRun writes keys (already sorted) into tables of at most perTable
// records each and installs them in a Store.
func buildRun(t *testing.T, fs vfs.FS, keys []string, perTable int) *Store {
	t.Helper()
	s := New()
	var tables []*Table
	fileNum := uint64(1)
	for start := 0; start < len(keys); start += perTable {
		end := start + perTable
		if end > len(keys) {
			end = len(keys)
		}
		name := fmt.Sprintf("db/%06d.sst", fileNum)
		f, err := fs.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		b := sstable.NewBuilder(f, sstable.BuilderOptions{})
		for i, k := range keys[start:end] {
			ptr := record.ValuePtr{Partition: 1, LogNum: 0, Offset: uint32(start + i), Length: 8}
			b.Add(record.Record{Key: []byte(k), Seq: uint64(start + i + 1), Kind: record.KindSetPtr, Value: ptr.Encode(nil)})
		}
		props, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
		rf, _ := fs.Open(name)
		rdr, err := sstable.Open(rf)
		if err != nil {
			t.Fatal(err)
		}
		tables = append(tables, &Table{
			Meta: manifest.TableMeta{
				FileNum: fileNum, Size: props.Size, Count: props.Count,
				Smallest: props.Smallest, Largest: props.Largest,
			},
			Reader: rdr,
		})
		fileNum++
	}
	s.ReplaceAll(tables)
	return s
}

func seqKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("key-%05d", i)
	}
	return out
}

func TestGetSingleTablePerLookup(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("db")
	keys := seqKeys(1000)
	s := buildRun(t, fs, keys, 100)
	if s.NumTables() != 10 {
		t.Fatalf("NumTables=%d", s.NumTables())
	}
	for _, i := range []int{0, 99, 100, 555, 999} {
		rec, ok, err := s.Get([]byte(keys[i]))
		if err != nil || !ok {
			t.Fatalf("Get(%s): ok=%v err=%v", keys[i], ok, err)
		}
		ptr, err := record.DecodePtr(rec.Value)
		if err != nil || ptr.Offset != uint32(i) {
			t.Fatalf("pointer mismatch for %s: %v", keys[i], ptr)
		}
	}
	// Misses: before, between tables, after.
	for _, miss := range []string{"a", "key-00099x", "zzz"} {
		if _, ok, _ := s.Get([]byte(miss)); ok {
			t.Fatalf("phantom %q", miss)
		}
	}
}

func TestGetChecksExactlyOneTable(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("db")
	s := buildRun(t, fs, seqKeys(1000), 100)
	var before int64
	for _, tab := range s.Tables() {
		before += tab.Reader.BlockReads.Load()
	}
	s.Get([]byte("key-00555"))
	var after int64
	for _, tab := range s.Tables() {
		after += tab.Reader.BlockReads.Load()
	}
	if after-before != 1 {
		t.Fatalf("lookup touched %d blocks, want 1", after-before)
	}
	// A missing key still touches at most one block (the paper's
	// "one additional I/O to confirm a non-existent key").
	before = after
	s.Get([]byte("key-00555x"))
	after = 0
	for _, tab := range s.Tables() {
		after += tab.Reader.BlockReads.Load()
	}
	if after-before > 1 {
		t.Fatalf("missing-key lookup touched %d blocks", after-before)
	}
}

func TestEmptyStore(t *testing.T) {
	s := New()
	if _, ok, err := s.Get([]byte("k")); ok || err != nil {
		t.Fatal("empty store returned a record")
	}
	it := s.NewIterator()
	if it.First() {
		t.Fatal("empty iterator valid")
	}
	if it.Seek([]byte("a")) {
		t.Fatal("empty Seek valid")
	}
	if s.SizeBytes() != 0 || s.NumTables() != 0 {
		t.Fatal("empty store reports size")
	}
}

func TestIteratorFullScan(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("db")
	keys := seqKeys(777)
	s := buildRun(t, fs, keys, 50)
	it := s.NewIterator()
	i := 0
	for ok := it.First(); ok; ok = it.Next() {
		if string(it.Record().Key) != keys[i] {
			t.Fatalf("at %d: %q want %q", i, it.Record().Key, keys[i])
		}
		i++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if i != len(keys) {
		t.Fatalf("scanned %d of %d", i, len(keys))
	}
}

func TestIteratorSeekAcrossTables(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("db")
	keys := seqKeys(300)
	s := buildRun(t, fs, keys, 30)
	it := s.NewIterator()

	if !it.Seek([]byte("key-00150")) || string(it.Record().Key) != "key-00150" {
		t.Fatalf("Seek mid: %q", it.Record().Key)
	}
	// Crossing a table boundary while scanning.
	n := 0
	for ok := it.Seek([]byte("key-00025")); ok && n < 10; ok = it.Next() {
		want := fmt.Sprintf("key-%05d", 25+n)
		if string(it.Record().Key) != want {
			t.Fatalf("at +%d: %q want %q", n, it.Record().Key, want)
		}
		n++
	}
	if n != 10 {
		t.Fatalf("scanned %d", n)
	}
	// Seek before first and past last.
	if !it.Seek([]byte("a")) || string(it.Record().Key) != "key-00000" {
		t.Fatal("Seek before-start")
	}
	if it.Seek([]byte("zzzz")) {
		t.Fatal("Seek past-end valid")
	}
}

func TestSingleTableRun(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("db")
	keys := seqKeys(10)
	s := buildRun(t, fs, keys, 100)
	if s.NumTables() != 1 {
		t.Fatalf("NumTables=%d", s.NumTables())
	}
	for _, k := range keys {
		if _, ok, _ := s.Get([]byte(k)); !ok {
			t.Fatalf("%s missing", k)
		}
	}
}
