// Package sorted implements UniKV's SortedStore: one fully sorted run of
// SSTables per partition, holding keys and value pointers after partial KV
// separation. There are no Bloom filters and no levels: a point lookup
// binary-searches the in-memory table boundary keys, touching at most one
// table and (index blocks being memory-resident) one data-block I/O — the
// paper's headline read-path property.
package sorted

import (
	"unikv/internal/codec"
	"unikv/internal/manifest"
	"unikv/internal/record"
	"unikv/internal/sstable"
)

// Table is one SortedStore table.
type Table struct {
	Meta   manifest.TableMeta
	Reader *sstable.Reader
}

// Store is the SortedStore of one partition. The caller serializes
// mutations (ReplaceAll); reads are safe concurrently with each other.
type Store struct {
	tables []*Table // key order, non-overlapping
	size   int64
}

// New returns an empty store.
func New() *Store { return &Store{} }

// ReplaceAll installs a new sorted run (the merge and GC paths always
// rewrite the run wholesale).
func (s *Store) ReplaceAll(tables []*Table) {
	s.tables = tables
	s.size = 0
	for _, t := range tables {
		s.size += t.Meta.Size
	}
}

// Tables returns the run's tables in key order.
func (s *Store) Tables() []*Table { return s.tables }

// NumTables returns the number of tables.
func (s *Store) NumTables() int { return len(s.tables) }

// SizeBytes returns the total table bytes (keys + pointers only; values
// live in the value logs).
func (s *Store) SizeBytes() int64 { return s.size }

// tableFor returns the index of the single table that may contain key, or
// -1. Because tables are non-overlapping and sorted, this is a binary
// search over boundary keys.
func (s *Store) tableFor(key []byte) int {
	lo, hi := 0, len(s.tables)
	for lo < hi {
		mid := (lo + hi) / 2
		if codec.Compare(s.tables[mid].Meta.Largest, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(s.tables) {
		return -1
	}
	if codec.Compare(key, s.tables[lo].Meta.Smallest) < 0 {
		return -1
	}
	return lo
}

// Get returns the record for key (typically a KindSetPtr whose value is an
// encoded record.ValuePtr, or a tombstone).
func (s *Store) Get(key []byte) (record.Record, bool, error) {
	i := s.tableFor(key)
	if i < 0 {
		return record.Record{}, false, nil
	}
	return s.tables[i].Reader.Get(key)
}

// Iterator walks the sorted run across table boundaries.
type Iterator struct {
	s   *Store
	ti  int
	it  *sstable.Iterator
	err error
}

// NewIterator returns an iterator positioned before the first record.
func (s *Store) NewIterator() *Iterator {
	return &Iterator{s: s, ti: -1}
}

// Valid reports whether the iterator is on a record.
func (it *Iterator) Valid() bool { return it.it != nil && it.it.Valid() }

// Record returns the current record.
func (it *Iterator) Record() record.Record { return it.it.Record() }

// Err returns the first error encountered.
func (it *Iterator) Err() error { return it.err }

// First positions at the run's first record.
func (it *Iterator) First() bool {
	it.ti = -1
	it.it = nil
	return it.Next()
}

// Next advances to the following record.
func (it *Iterator) Next() bool {
	if it.err != nil {
		return false
	}
	if it.it != nil && it.it.Next() {
		return true
	}
	for {
		if it.it != nil {
			if err := it.it.Err(); err != nil {
				it.err = err
				return false
			}
		}
		it.ti++
		if it.ti >= len(it.s.tables) {
			it.it = nil
			return false
		}
		it.it = it.s.tables[it.ti].Reader.NewIterator()
		if it.it.First() {
			return true
		}
	}
}

// Seek positions at the first record with key >= target.
func (it *Iterator) Seek(target []byte) bool {
	if it.err != nil {
		return false
	}
	// Find the first table whose largest >= target.
	lo, hi := 0, len(it.s.tables)
	for lo < hi {
		mid := (lo + hi) / 2
		if codec.Compare(it.s.tables[mid].Meta.Largest, target) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(it.s.tables) {
		it.it = nil
		it.ti = len(it.s.tables)
		return false
	}
	it.ti = lo
	it.it = it.s.tables[lo].Reader.NewIterator()
	if it.it.Seek(target) {
		return true
	}
	if err := it.it.Err(); err != nil {
		it.err = err
		return false
	}
	// target is past this table's data (can't happen with consistent
	// metadata, but stay safe): continue into the next table.
	return it.Next()
}
