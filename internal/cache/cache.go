// Package cache implements the engine-wide read cache: a sharded,
// capacity-bounded LRU holding two pools of entries — SSTable data blocks
// keyed by (tableID, blockIdx) and hot value-log entries keyed by
// (logNum, offset).
//
// UniKV drops Bloom filters, so a SortedStore point lookup costs exactly
// one table check and one data-block read (paper §Design). Under the
// skewed mixed workloads the paper targets that block read *is* the hot
// path; an in-memory cache over the hot set absorbs it (F2 makes the same
// observation for large skewed workloads, REMIX for repeated ranges).
//
// Correctness notes:
//
//   - Table file numbers and value-log numbers are allocated monotonically
//     and never reused, so a stale entry can never be re-keyed to new
//     data. Invalidation (EvictTable/EvictLog, called when merge/GC/split
//     retire a table or collect a log) exists to reclaim memory promptly
//     and to keep the "no stale entry is ever served" property independent
//     of that allocation detail.
//   - Cached byte slices are immutable. Block-pool entries are only read
//     inside the sstable package (records parsed from them are copied
//     before leaving the engine); value-pool hits are copied before being
//     returned, because vlog.Read hands its buffer to the caller.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Pool discriminates the two entry namespaces.
type Pool uint8

const (
	// PoolBlock holds SSTable data blocks keyed by (tableID, blockIdx).
	PoolBlock Pool = iota
	// PoolValue holds value-log entries keyed by (logNum, offset).
	PoolValue
)

// Key identifies one cached entry.
type Key struct {
	Pool Pool
	ID   uint64 // table file number or value-log number
	Off  uint64 // block index or log offset
}

// entryOverhead approximates the per-entry bookkeeping bytes charged on
// top of the payload (map bucket + list element + key + slice header).
const entryOverhead = 96

// entry is one resident payload.
type entry struct {
	key  Key
	data []byte
}

// shard is one independently locked LRU.
type shard struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	table    map[Key]*list.Element
	lru      list.List // front = most recently used
}

// Stats is a point-in-time copy of the cache counters.
type Stats struct {
	BlockHits, BlockMisses int64
	ValueHits, ValueMisses int64
	Evictions              int64
	Bytes                  int64
	Entries                int64
}

// Cache is a sharded LRU shared by every table reader and the value-log
// manager of one DB. The zero value is not usable; call New. A nil *Cache
// is valid and behaves as "always miss, never store".
type Cache struct {
	shards []shard
	mask   uint64

	blockHits, blockMisses atomic.Int64
	valueHits, valueMisses atomic.Int64
	evictions              atomic.Int64
	bytes                  atomic.Int64
	entries                atomic.Int64
}

// New returns a cache bounded at capacityBytes, split over nShards
// power-of-two shards (nShards <= 0 picks 16). capacityBytes <= 0 returns
// nil — the disabled cache.
func New(capacityBytes int64, nShards int) *Cache {
	if capacityBytes <= 0 {
		return nil
	}
	if nShards <= 0 {
		nShards = 16
	}
	// Round up to a power of two for mask indexing.
	n := 1
	for n < nShards {
		n <<= 1
	}
	c := &Cache{shards: make([]shard, n), mask: uint64(n - 1)}
	per := capacityBytes / int64(n)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].capacity = per
		c.shards[i].table = make(map[Key]*list.Element)
	}
	return c
}

// hash mixes a key into a shard index (fmix64 finalizer over the fields).
func (k Key) hash() uint64 {
	h := k.ID*0x9e3779b97f4a7c15 ^ k.Off ^ uint64(k.Pool)<<56
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func (c *Cache) shardFor(k Key) *shard { return &c.shards[k.hash()&c.mask] }

// Get returns the payload cached under k. The returned slice aliases the
// cache and MUST NOT be modified; callers that pass it onward copy first.
func (c *Cache) Get(k Key) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shardFor(k)
	s.mu.Lock()
	el, ok := s.table[k]
	if ok {
		s.lru.MoveToFront(el)
	}
	var data []byte
	if ok {
		data = el.Value.(*entry).data
	}
	s.mu.Unlock()
	if k.Pool == PoolBlock {
		if ok {
			c.blockHits.Add(1)
		} else {
			c.blockMisses.Add(1)
		}
	} else {
		if ok {
			c.valueHits.Add(1)
		} else {
			c.valueMisses.Add(1)
		}
	}
	return data, ok
}

// Add inserts data under k, evicting LRU entries as needed. Entries larger
// than half a shard's capacity are not admitted (they would evict the
// whole shard for one resident). data is retained as-is; the caller must
// not modify it afterwards.
func (c *Cache) Add(k Key, data []byte) {
	if c == nil {
		return
	}
	charge := int64(len(data)) + entryOverhead
	s := c.shardFor(k)
	if charge > s.capacity/2 {
		return
	}
	s.mu.Lock()
	if el, ok := s.table[k]; ok {
		// Same key re-inserted (two racing misses): keep the resident copy.
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	var evicted int64
	for s.used+charge > s.capacity {
		back := s.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.table, e.key)
		s.used -= int64(len(e.data)) + entryOverhead
		c.bytes.Add(-(int64(len(e.data)) + entryOverhead))
		evicted++
	}
	s.table[k] = s.lru.PushFront(&entry{key: k, data: data})
	s.used += charge
	s.mu.Unlock()
	c.bytes.Add(charge)
	c.entries.Add(1 - evicted)
	c.evictions.Add(evicted)
}

// AddCold inserts data under k only if the shard has free space for it —
// unlike Add, it never evicts a resident entry to make room. This is the
// admission-filter half of the hot-ring feedback loop: a point read whose
// key carries no frequency signal yet (not sampled twice by the hot ring)
// admits cold, so a pass over rarely-read keys fills spare capacity but
// cannot flush the established hot set out of the LRU.
func (c *Cache) AddCold(k Key, data []byte) {
	if c == nil {
		return
	}
	charge := int64(len(data)) + entryOverhead
	s := c.shardFor(k)
	if charge > s.capacity/2 {
		return
	}
	s.mu.Lock()
	if el, ok := s.table[k]; ok {
		// Same key re-inserted (two racing misses): keep the resident copy.
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	if s.used+charge > s.capacity {
		s.mu.Unlock()
		return
	}
	s.table[k] = s.lru.PushFront(&entry{key: k, data: data})
	s.used += charge
	s.mu.Unlock()
	c.bytes.Add(charge)
	c.entries.Add(1)
}

// evictMatching removes every entry for which match returns true.
func (c *Cache) evictMatching(match func(Key) bool) {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		var dropped, droppedBytes int64
		for k, el := range s.table {
			if !match(k) {
				continue
			}
			e := el.Value.(*entry)
			s.lru.Remove(el)
			delete(s.table, k)
			s.used -= int64(len(e.data)) + entryOverhead
			droppedBytes += int64(len(e.data)) + entryOverhead
			dropped++
		}
		s.mu.Unlock()
		c.bytes.Add(-droppedBytes)
		c.entries.Add(-dropped)
	}
}

// EvictTable drops every block cached for table id (called when a merge,
// scan merge, GC, or split retires the table file).
func (c *Cache) EvictTable(id uint64) {
	c.evictMatching(func(k Key) bool { return k.Pool == PoolBlock && k.ID == id })
}

// EvictLog drops every value cached for log n (called when GC or the lazy
// value split collects the log).
func (c *Cache) EvictLog(n uint32) {
	c.evictMatching(func(k Key) bool { return k.Pool == PoolValue && k.ID == uint64(n) })
}

// Snapshot returns a copy of the counters and occupancy gauges.
func (c *Cache) Snapshot() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		BlockHits:   c.blockHits.Load(),
		BlockMisses: c.blockMisses.Load(),
		ValueHits:   c.valueHits.Load(),
		ValueMisses: c.valueMisses.Load(),
		Evictions:   c.evictions.Load(),
		Bytes:       c.bytes.Load(),
		Entries:     c.entries.Load(),
	}
}
