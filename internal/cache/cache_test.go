package cache

import (
	"fmt"
	"sync"
	"testing"
)

func blockKey(id uint64, idx uint64) Key { return Key{Pool: PoolBlock, ID: id, Off: idx} }
func valueKey(n uint64, off uint64) Key  { return Key{Pool: PoolValue, ID: n, Off: off} }

func TestGetAddBasic(t *testing.T) {
	c := New(1<<20, 4)
	if _, ok := c.Get(blockKey(1, 0)); ok {
		t.Fatal("hit on empty cache")
	}
	c.Add(blockKey(1, 0), []byte("blockdata"))
	got, ok := c.Get(blockKey(1, 0))
	if !ok || string(got) != "blockdata" {
		t.Fatalf("got %q ok=%v", got, ok)
	}
	// Pools are disjoint namespaces.
	if _, ok := c.Get(valueKey(1, 0)); ok {
		t.Fatal("value pool hit for block entry")
	}
	s := c.Snapshot()
	if s.BlockHits != 1 || s.BlockMisses != 1 || s.ValueMisses != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.Entries != 1 || s.Bytes <= 0 {
		t.Fatalf("occupancy %+v", s)
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	c.Add(blockKey(1, 1), []byte("x"))
	if _, ok := c.Get(blockKey(1, 1)); ok {
		t.Fatal("nil cache returned a hit")
	}
	c.EvictTable(1)
	c.EvictLog(1)
	if s := c.Snapshot(); s != (Stats{}) {
		t.Fatalf("nil snapshot %+v", s)
	}
	if New(0, 4) != nil || New(-1, 4) != nil {
		t.Fatal("New with non-positive capacity must return nil")
	}
}

func TestLRUEviction(t *testing.T) {
	// One shard so the LRU order is deterministic.
	c := New(4*(128+entryOverhead), 1)
	payload := make([]byte, 128)
	for i := uint64(0); i < 4; i++ {
		c.Add(blockKey(1, i), payload)
	}
	// Touch block 0 so it is MRU, then insert two more: 1 and 2 evict.
	c.Get(blockKey(1, 0))
	c.Add(blockKey(1, 4), payload)
	c.Add(blockKey(1, 5), payload)
	if _, ok := c.Get(blockKey(1, 0)); !ok {
		t.Fatal("MRU entry evicted")
	}
	if _, ok := c.Get(blockKey(1, 1)); ok {
		t.Fatal("LRU entry survived")
	}
	s := c.Snapshot()
	if s.Evictions != 2 {
		t.Fatalf("evictions = %d want 2", s.Evictions)
	}
	if s.Bytes > 4*(128+entryOverhead) {
		t.Fatalf("over capacity: %d", s.Bytes)
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	c := New(1024, 1)
	c.Add(blockKey(1, 0), make([]byte, 2048))
	if _, ok := c.Get(blockKey(1, 0)); ok {
		t.Fatal("oversized entry admitted")
	}
	if s := c.Snapshot(); s.Entries != 0 {
		t.Fatalf("entries = %d", s.Entries)
	}
}

func TestEvictTableAndLog(t *testing.T) {
	c := New(1<<20, 4)
	for i := uint64(0); i < 10; i++ {
		c.Add(blockKey(7, i), []byte("b"))
		c.Add(blockKey(8, i), []byte("b"))
		c.Add(valueKey(3, i*16), []byte("v"))
	}
	c.EvictTable(7)
	for i := uint64(0); i < 10; i++ {
		if _, ok := c.Get(blockKey(7, i)); ok {
			t.Fatal("table 7 entry survived eviction")
		}
		if _, ok := c.Get(blockKey(8, i)); !ok {
			t.Fatal("table 8 entry wrongly evicted")
		}
	}
	c.EvictLog(3)
	for i := uint64(0); i < 10; i++ {
		if _, ok := c.Get(valueKey(3, i*16)); ok {
			t.Fatal("log 3 entry survived eviction")
		}
	}
	if s := c.Snapshot(); s.Entries != 10 {
		t.Fatalf("entries = %d want 10", s.Entries)
	}
}

func TestDuplicateAddKeepsResident(t *testing.T) {
	c := New(1<<20, 1)
	c.Add(blockKey(1, 0), []byte("first"))
	c.Add(blockKey(1, 0), []byte("second"))
	got, _ := c.Get(blockKey(1, 0))
	if string(got) != "first" {
		t.Fatalf("resident copy replaced: %q", got)
	}
	if s := c.Snapshot(); s.Entries != 1 {
		t.Fatalf("entries = %d", s.Entries)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(64<<10, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := blockKey(uint64(g%4), uint64(i%64))
				if d, ok := c.Get(k); ok {
					if string(d) != fmt.Sprintf("t%d-b%d", g%4, i%64) {
						t.Errorf("wrong payload for %v: %q", k, d)
						return
					}
				} else {
					c.Add(k, []byte(fmt.Sprintf("t%d-b%d", g%4, i%64)))
				}
				if i%97 == 0 {
					c.EvictTable(uint64(g % 4))
				}
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.BlockHits+s.BlockMisses == 0 {
		t.Fatal("no traffic recorded")
	}
}
