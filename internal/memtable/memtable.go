// Package memtable implements the in-memory write buffer: a skiplist keyed
// by (user key ascending, sequence number descending), as in LevelDB. A full
// memtable is flushed to an SSTable in the UnsortedStore.
package memtable

import (
	"math/rand"
	"sync"

	"unikv/internal/codec"
	"unikv/internal/record"
)

const (
	maxHeight = 12
	branching = 4
)

type node struct {
	rec  record.Record
	next []*node
}

// Memtable is a concurrency-safe skiplist of records. Readers and the
// single writer are serialized with an RWMutex; at the scales this engine
// targets the mutex is never the bottleneck (flushes cap the table at a few
// MiB).
type Memtable struct {
	mu     sync.RWMutex
	head   *node
	height int
	rnd    *rand.Rand
	size   int64
	count  int
	maxSeq uint64
}

// New returns an empty memtable.
func New() *Memtable {
	return &Memtable{
		head:   &node{next: make([]*node, maxHeight)},
		height: 1,
		rnd:    rand.New(rand.NewSource(0xdecafbad)),
	}
}

// compare orders by key ascending then sequence descending, so the newest
// version of a key sorts first among its versions.
func compare(aKey []byte, aSeq uint64, bKey []byte, bSeq uint64) int {
	if c := codec.Compare(aKey, bKey); c != 0 {
		return c
	}
	switch {
	case aSeq > bSeq:
		return -1
	case aSeq < bSeq:
		return 1
	}
	return 0
}

func (m *Memtable) randomHeight() int {
	h := 1
	for h < maxHeight && m.rnd.Intn(branching) == 0 {
		h++
	}
	return h
}

// Put inserts a record. Records with equal (key, seq) replace each other,
// which cannot occur in normal operation since sequences are unique.
func (m *Memtable) Put(r record.Record) {
	m.mu.Lock()
	defer m.mu.Unlock()

	var prev [maxHeight]*node
	x := m.head
	for level := m.height - 1; level >= 0; level-- {
		for x.next[level] != nil && compare(x.next[level].rec.Key, x.next[level].rec.Seq, r.Key, r.Seq) < 0 {
			x = x.next[level]
		}
		prev[level] = x
	}

	h := m.randomHeight()
	if h > m.height {
		for level := m.height; level < h; level++ {
			prev[level] = m.head
		}
		m.height = h
	}

	n := &node{rec: r, next: make([]*node, h)}
	for level := 0; level < h; level++ {
		n.next[level] = prev[level].next[level]
		prev[level].next[level] = n
	}
	m.count++
	m.size += int64(len(r.Key) + len(r.Value) + 32)
	if r.Seq > m.maxSeq {
		m.maxSeq = r.Seq
	}
}

// findGE returns the first node whose (key, seq) is >= (key, seq) in
// skiplist order. With seq = ^uint64(0) this is the newest version of key
// (or the first node of a later key).
func (m *Memtable) findGE(key []byte, seq uint64) *node {
	x := m.head
	for level := m.height - 1; level >= 0; level-- {
		for x.next[level] != nil && compare(x.next[level].rec.Key, x.next[level].rec.Seq, key, seq) < 0 {
			x = x.next[level]
		}
	}
	return x.next[0]
}

// Get returns the newest record for key, if any. The returned record
// aliases memtable-owned memory; it is immutable while the memtable lives.
func (m *Memtable) Get(key []byte) (record.Record, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := m.findGE(key, ^uint64(0))
	if n == nil || codec.Compare(n.rec.Key, key) != 0 {
		return record.Record{}, false
	}
	return n.rec, true
}

// GetAtSeq returns the newest record for key whose sequence number is
// <= seq, if any — the MVCC read used by snapshot handles pinned at seq.
// The returned record aliases memtable-owned memory.
func (m *Memtable) GetAtSeq(key []byte, seq uint64) (record.Record, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := m.findGE(key, seq)
	if n == nil || codec.Compare(n.rec.Key, key) != 0 {
		return record.Record{}, false
	}
	return n.rec, true
}

// Size returns the approximate memory footprint in bytes.
func (m *Memtable) Size() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.size
}

// Len returns the number of stored records (all versions).
func (m *Memtable) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.count
}

// MaxSeq returns the largest sequence number inserted.
func (m *Memtable) MaxSeq() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.maxSeq
}

// Empty reports whether the memtable holds no records.
func (m *Memtable) Empty() bool { return m.Len() == 0 }

// Iterator walks records in (key asc, seq desc) order. Each positioning
// step takes the table's read lock, and inserted nodes are never removed
// or mutated, so iteration is safe concurrently with writers — snapshot
// reads rely on this, filtering out records sequenced after their pin.
type Iterator struct {
	m *Memtable
	n *node
}

// NewIterator returns an iterator positioned before the first record.
func (m *Memtable) NewIterator() *Iterator {
	return &Iterator{m: m}
}

// First moves to the first record and reports validity.
func (it *Iterator) First() bool {
	it.m.mu.RLock()
	it.n = it.m.head.next[0]
	it.m.mu.RUnlock()
	return it.n != nil
}

// Seek moves to the first record with key >= target (newest version first).
func (it *Iterator) Seek(target []byte) bool {
	it.m.mu.RLock()
	it.n = it.m.findGE(target, ^uint64(0))
	it.m.mu.RUnlock()
	return it.n != nil
}

// Next advances to the following record and reports validity.
func (it *Iterator) Next() bool {
	if it.n == nil {
		return false
	}
	it.m.mu.RLock()
	it.n = it.n.next[0]
	it.m.mu.RUnlock()
	return it.n != nil
}

// Valid reports whether the iterator is positioned on a record.
func (it *Iterator) Valid() bool { return it.n != nil }

// Record returns the current record. Only valid while Valid() is true.
func (it *Iterator) Record() record.Record { return it.n.rec }
