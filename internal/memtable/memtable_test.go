package memtable

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"unikv/internal/record"
)

func rec(key string, seq uint64, val string) record.Record {
	return record.Record{Key: []byte(key), Seq: seq, Kind: record.KindSet, Value: []byte(val)}
}

func TestPutGet(t *testing.T) {
	m := New()
	m.Put(rec("b", 1, "v1"))
	m.Put(rec("a", 2, "v2"))
	m.Put(rec("c", 3, "v3"))

	for _, c := range []struct{ k, v string }{{"a", "v2"}, {"b", "v1"}, {"c", "v3"}} {
		got, ok := m.Get([]byte(c.k))
		if !ok || string(got.Value) != c.v {
			t.Fatalf("Get(%q) = %q, %v", c.k, got.Value, ok)
		}
	}
	if _, ok := m.Get([]byte("zz")); ok {
		t.Fatal("found missing key")
	}
}

func TestNewestVersionWins(t *testing.T) {
	m := New()
	m.Put(rec("k", 1, "old"))
	m.Put(rec("k", 5, "new"))
	m.Put(rec("k", 3, "mid"))
	got, ok := m.Get([]byte("k"))
	if !ok || string(got.Value) != "new" || got.Seq != 5 {
		t.Fatalf("got %+v", got)
	}
}

func TestDeleteRecord(t *testing.T) {
	m := New()
	m.Put(rec("k", 1, "v"))
	m.Put(record.Record{Key: []byte("k"), Seq: 2, Kind: record.KindDelete})
	got, ok := m.Get([]byte("k"))
	if !ok || got.Kind != record.KindDelete {
		t.Fatalf("expected tombstone, got %+v ok=%v", got, ok)
	}
}

func TestIteratorOrder(t *testing.T) {
	m := New()
	keys := []string{"delta", "alpha", "charlie", "bravo", "echo"}
	for i, k := range keys {
		m.Put(rec(k, uint64(i+1), "v-"+k))
	}
	it := m.NewIterator()
	var got []string
	for ok := it.First(); ok; ok = it.Next() {
		got = append(got, string(it.Record().Key))
	}
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order mismatch at %d: %v vs %v", i, got, want)
		}
	}
}

func TestIteratorVersionsNewestFirst(t *testing.T) {
	m := New()
	m.Put(rec("k", 1, "v1"))
	m.Put(rec("k", 2, "v2"))
	it := m.NewIterator()
	if !it.First() {
		t.Fatal("empty iterator")
	}
	if it.Record().Seq != 2 {
		t.Fatalf("first version seq=%d want 2", it.Record().Seq)
	}
	if !it.Next() || it.Record().Seq != 1 {
		t.Fatalf("second version wrong")
	}
}

func TestIteratorSeek(t *testing.T) {
	m := New()
	for _, k := range []string{"a", "c", "e"} {
		m.Put(rec(k, 1, "v"))
	}
	it := m.NewIterator()
	if !it.Seek([]byte("b")) || string(it.Record().Key) != "c" {
		t.Fatalf("Seek(b) -> %q", it.Record().Key)
	}
	if !it.Seek([]byte("c")) || string(it.Record().Key) != "c" {
		t.Fatalf("Seek(c) -> %q", it.Record().Key)
	}
	if it.Seek([]byte("f")) {
		t.Fatal("Seek past end should be invalid")
	}
}

func TestSizeAndLen(t *testing.T) {
	m := New()
	if !m.Empty() {
		t.Fatal("new memtable not empty")
	}
	m.Put(rec("a", 1, "0123456789"))
	if m.Len() != 1 {
		t.Fatalf("Len=%d", m.Len())
	}
	if m.Size() < 11 {
		t.Fatalf("Size=%d too small", m.Size())
	}
	if m.MaxSeq() != 1 {
		t.Fatalf("MaxSeq=%d", m.MaxSeq())
	}
	if m.Empty() {
		t.Fatal("memtable with data reported empty")
	}
}

// TestAgainstModel is the property test: a random op sequence applied to the
// skiplist and a Go map must agree on every lookup.
func TestAgainstModel(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		m := New()
		model := map[string]string{}
		seq := uint64(0)
		for i := 0; i < 500; i++ {
			k := fmt.Sprintf("key-%03d", rnd.Intn(80))
			v := fmt.Sprintf("val-%d", rnd.Int63())
			seq++
			m.Put(rec(k, seq, v))
			model[k] = v
		}
		for k, v := range model {
			got, ok := m.Get([]byte(k))
			if !ok || string(got.Value) != v {
				return false
			}
		}
		// Iteration yields keys in sorted order with newest version first
		// per key.
		it := m.NewIterator()
		var prevKey []byte
		var prevSeq uint64
		for ok := it.First(); ok; ok = it.Next() {
			r := it.Record()
			if prevKey != nil {
				c := bytes.Compare(prevKey, r.Key)
				if c > 0 {
					return false
				}
				if c == 0 && prevSeq <= r.Seq {
					return false
				}
			}
			prevKey = append(prevKey[:0], r.Key...)
			prevSeq = r.Seq
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReaders(t *testing.T) {
	m := New()
	for i := 0; i < 1000; i++ {
		m.Put(rec(fmt.Sprintf("k%04d", i), uint64(i+1), "v"))
	}
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 1000; i++ {
				if _, ok := m.Get([]byte(fmt.Sprintf("k%04d", i))); !ok {
					t.Error("missing key during concurrent read")
					break
				}
			}
			done <- true
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
