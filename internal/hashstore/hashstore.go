// Package hashstore implements a SkimpyStash-class hash-indexed log store:
// the motivation baseline for the paper's Fig. 1. All data lives in one
// append-only log; an in-memory directory of hash buckets holds only the
// head offset of a per-bucket chain whose links are embedded in the log
// records themselves (SkimpyStash's trick for ~1 byte of RAM per key).
//
// The design point it demonstrates: point reads cost one random I/O per
// chain hop, and chains grow linearly with dataset size over a fixed
// bucket directory — so read (and with read-modify checks, write)
// throughput degrades as the store grows, which is why a hash index alone
// does not scale and UniKV pairs it with an LSM-organized cold tier. Range
// scans are unsupported, the other motivating limitation.
package hashstore

import (
	"errors"
	"io"
	"path/filepath"
	"sync"

	"unikv/internal/codec"
	"unikv/internal/vfs"
)

// ErrNotFound is returned by Get for absent keys.
var ErrNotFound = errors.New("hashstore: key not found")

// ErrNoScan is returned by range operations: hash indexes cannot scan.
var ErrNoScan = errors.New("hashstore: range scans unsupported")

// ErrClosed is returned after Close.
var ErrClosed = errors.New("hashstore: closed")

// Config tunes the store.
type Config struct {
	// Buckets fixes the directory size; chain length ≈ keys/Buckets.
	Buckets int
	// SyncWrites fsyncs the log per write.
	SyncWrites bool
	// FS overrides the file system.
	FS vfs.FS
}

func (c Config) sanitize() Config {
	if c.Buckets <= 0 {
		c.Buckets = 1 << 15
	}
	if c.FS == nil {
		c.FS = vfs.NewOS()
	}
	return c
}

// DB is a hash-indexed log store.
type DB struct {
	cfg Config
	fs  vfs.FS
	dir string

	mu      sync.RWMutex
	logw    vfs.File
	logr    vfs.File
	off     int64
	buckets []int64 // head offset per bucket; -1 = empty
	count   int
	closed  bool

	// pending holds rebuilt key→value data between rebuild and rewrite at
	// open time.
	pending map[string][]byte
}

const logName = "store.log"

// record framing:
//
//	prevOffset (8B; ^0 = end of chain) | tombstone (1B) |
//	keyLen (uvarint) | key | valLen (uvarint) | value | crc (4B)
const endOfChain = int64(-1)

// Open opens the store, rebuilding the directory by scanning the log.
func Open(dir string, cfg Config) (*DB, error) {
	cfg = cfg.sanitize()
	db := &DB{cfg: cfg, fs: cfg.FS, dir: dir}
	if err := db.fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	db.buckets = make([]int64, cfg.Buckets)
	for i := range db.buckets {
		db.buckets[i] = endOfChain
	}
	name := filepath.Join(dir, logName)
	if db.fs.Exists(name) {
		if err := db.rebuild(name); err != nil {
			return nil, err
		}
		// Continue appending: copy surviving log into a fresh file would
		// be wasteful; instead reopen for append by rewriting is not
		// supported by vfs.Create (truncates). Rebuild into memory and
		// rewrite compactly (the store is a motivation baseline; reopening
		// is rare and this doubles as its compaction).
		if err := db.rewrite(name); err != nil {
			return nil, err
		}
		return db, nil
	}
	f, err := db.fs.Create(name)
	if err != nil {
		return nil, err
	}
	db.logw = f
	// Make the log's directory entry durable now: records are fsynced on
	// write, but without this a crash could drop the file itself and with
	// it every synced record (DESIGN.md §5c).
	if err := db.fs.SyncDir(dir); err != nil {
		return nil, err
	}
	r, err := db.fs.Open(name)
	if err != nil {
		return nil, err
	}
	db.logr = r
	return db, nil
}

// hash picks the bucket for key.
func (db *DB) hash(key []byte) int {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % uint64(len(db.buckets)))
}

// encodeRecord frames one record.
func encodeRecord(prev int64, tombstone bool, key, value []byte) []byte {
	var buf []byte
	buf = codec.PutUint64(buf, uint64(prev))
	t := byte(0)
	if tombstone {
		t = 1
	}
	buf = append(buf, t)
	buf = codec.PutBytes(buf, key)
	buf = codec.PutBytes(buf, value)
	return codec.PutUint32(buf, codec.MaskChecksum(codec.Checksum(buf)))
}

// Put appends a record and repoints the bucket head.
func (db *DB) Put(key, value []byte) error { return db.append(key, value, false) }

// Delete appends a tombstone.
func (db *DB) Delete(key []byte) error { return db.append(key, nil, true) }

func (db *DB) append(key, value []byte, tombstone bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	b := db.hash(key)
	rec := encodeRecord(db.buckets[b], tombstone, key, value)
	if _, err := db.logw.Write(rec); err != nil {
		return err
	}
	if db.cfg.SyncWrites {
		if err := db.logw.Sync(); err != nil {
			return err
		}
	}
	db.buckets[b] = db.off
	db.off += int64(len(rec))
	db.count++
	return nil
}

// Get walks the bucket chain newest-first; each hop is one random log read.
func (db *DB) Get(key []byte) ([]byte, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	off := db.buckets[db.hash(key)]
	for off != endOfChain {
		prev, tombstone, k, v, err := db.readRecord(off)
		if err != nil {
			return nil, err
		}
		if codec.Compare(k, key) == 0 {
			if tombstone {
				return nil, ErrNotFound
			}
			return append([]byte(nil), v...), nil
		}
		off = prev
	}
	return nil, ErrNotFound
}

// readRecord decodes the record at off.
func (db *DB) readRecord(off int64) (prev int64, tombstone bool, key, value []byte, err error) {
	// Read a generous fixed chunk, then decode; re-read larger if the
	// value did not fit (values are usually ≤ 4 KiB here).
	buf := make([]byte, 4096)
	n, rerr := db.logr.ReadAt(buf, off)
	if rerr != nil && rerr != io.EOF {
		return 0, false, nil, nil, rerr
	}
	buf = buf[:n]
	dec := func(buf []byte) (int64, bool, []byte, []byte, bool) {
		if len(buf) < 9 {
			return 0, false, nil, nil, false
		}
		p, rest, _ := codec.Uint64(buf)
		t := rest[0] == 1
		rest = rest[1:]
		k, rest, err := codec.Bytes(rest)
		if err != nil {
			return 0, false, nil, nil, false
		}
		v, _, err := codec.Bytes(rest)
		if err != nil {
			return 0, false, nil, nil, false
		}
		return int64(p), t, k, v, true
	}
	if p, t, k, v, ok := dec(buf); ok {
		return p, t, k, v, nil
	}
	// Retry with a larger window (oversized value).
	size, err := db.logr.Size()
	if err != nil {
		return 0, false, nil, nil, err
	}
	big := make([]byte, size-off)
	if _, err := db.logr.ReadAt(big, off); err != nil && err != io.EOF {
		return 0, false, nil, nil, err
	}
	if p, t, k, v, ok := dec(big); ok {
		return p, t, k, v, nil
	}
	return 0, false, nil, nil, codec.ErrCorrupt
}

// Scan is unsupported: the motivating limitation of pure hash indexes.
func (db *DB) Scan(start, end []byte, limit int) ([]struct{ Key, Value []byte }, error) {
	return nil, ErrNoScan
}

// Count returns the number of appended records (all versions).
func (db *DB) Count() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.count
}

// ChainStats returns the mean chain length — the degradation driver.
func (db *DB) ChainStats() float64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	used := 0
	for _, h := range db.buckets {
		if h != endOfChain {
			used++
		}
	}
	if used == 0 {
		return 0
	}
	return float64(db.count) / float64(used)
}

// Close releases the store.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	var first error
	if db.logw != nil {
		if err := db.logw.Sync(); err != nil {
			first = err
		}
		db.logw.Close()
	}
	if db.logr != nil {
		db.logr.Close()
	}
	return first
}

// rebuild scans an existing log into memory (key → latest value).
func (db *DB) rebuild(name string) error {
	data, err := db.fs.ReadFile(name)
	if err != nil {
		return err
	}
	db.pending = map[string][]byte{}
	for len(data) > 0 {
		if len(data) < 13 {
			break // torn tail
		}
		start := data
		_, rest, _ := codec.Uint64(data)
		tomb := rest[0] == 1
		rest = rest[1:]
		k, rest, err := codec.Bytes(rest)
		if err != nil {
			break
		}
		v, rest, err := codec.Bytes(rest)
		if err != nil {
			break
		}
		if len(rest) < 4 {
			break
		}
		recLen := len(start) - len(rest) + 4
		body := start[:recLen-4]
		want, _, _ := codec.Uint32(rest)
		if codec.MaskChecksum(codec.Checksum(body)) != want {
			break
		}
		if tomb {
			delete(db.pending, string(k))
		} else {
			db.pending[string(k)] = append([]byte(nil), v...)
		}
		data = rest[4:]
	}
	return nil
}

// rewrite compacts the rebuilt data into a fresh log.
func (db *DB) rewrite(name string) error {
	f, err := db.fs.Create(name)
	if err != nil {
		return err
	}
	db.logw = f
	db.off = 0
	db.count = 0
	for k, v := range db.pending {
		b := db.hash([]byte(k))
		rec := encodeRecord(db.buckets[b], false, []byte(k), v)
		if _, err := db.logw.Write(rec); err != nil {
			return err
		}
		db.buckets[b] = db.off
		db.off += int64(len(rec))
		db.count++
	}
	db.pending = nil
	if err := db.logw.Sync(); err != nil {
		return err
	}
	// Create truncates in place so the entry usually pre-exists, but a vfs
	// may implement truncation as replace-by-new-file; sync the entry too.
	if err := db.fs.SyncDir(db.dir); err != nil {
		return err
	}
	r, err := db.fs.Open(name)
	if err != nil {
		return err
	}
	db.logr = r
	return nil
}
