package hashstore

import (
	"bytes"
	"fmt"
	"testing"

	"unikv/internal/vfs"
)

func openTestStore(t *testing.T, fs vfs.FS, buckets int) *DB {
	t.Helper()
	db, err := Open("hs", Config{Buckets: buckets, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPutGet(t *testing.T) {
	fs := vfs.NewMem()
	db := openTestStore(t, fs, 64)
	defer db.Close()
	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		v := []byte(fmt.Sprintf("val-%04d", i))
		if err := db.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		got, err := db.Get(k)
		if err != nil || string(got) != fmt.Sprintf("val-%04d", i) {
			t.Fatalf("%s: %q %v", k, got, err)
		}
	}
	if _, err := db.Get([]byte("missing")); err != ErrNotFound {
		t.Fatalf("%v", err)
	}
	if db.Count() != 500 {
		t.Fatalf("Count=%d", db.Count())
	}
}

func TestOverwriteNewestWins(t *testing.T) {
	fs := vfs.NewMem()
	db := openTestStore(t, fs, 8)
	defer db.Close()
	for i := 0; i < 10; i++ {
		db.Put([]byte("k"), []byte(fmt.Sprintf("v%d", i)))
	}
	got, err := db.Get([]byte("k"))
	if err != nil || string(got) != "v9" {
		t.Fatalf("%q %v", got, err)
	}
}

func TestDelete(t *testing.T) {
	fs := vfs.NewMem()
	db := openTestStore(t, fs, 8)
	defer db.Close()
	db.Put([]byte("k"), []byte("v"))
	db.Delete([]byte("k"))
	if _, err := db.Get([]byte("k")); err != ErrNotFound {
		t.Fatalf("%v", err)
	}
}

func TestChainGrowth(t *testing.T) {
	fs := vfs.NewMem()
	db := openTestStore(t, fs, 16)
	defer db.Close()
	for i := 0; i < 1600; i++ {
		db.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte("v"))
	}
	if db.ChainStats() < 50 {
		t.Fatalf("chains should be ~100 long: %f", db.ChainStats())
	}
	// Reads still correct despite long chains.
	for _, i := range []int{0, 799, 1599} {
		if _, err := db.Get([]byte(fmt.Sprintf("key-%05d", i))); err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
	}
}

// TestReadCostGrowsWithSize is the Fig.1 mechanism in miniature: the bytes
// read per lookup grow with the dataset over a fixed directory.
func TestReadCostGrowsWithSize(t *testing.T) {
	cost := func(n int) int64 {
		fs := vfs.NewMem()
		db := openTestStore(t, fs, 32)
		defer db.Close()
		for i := 0; i < n; i++ {
			db.Put([]byte(fmt.Sprintf("key-%06d", i)), bytes.Repeat([]byte("v"), 100))
		}
		before := fs.Counters().BytesRead.Load()
		for i := 0; i < 200; i++ {
			db.Get([]byte(fmt.Sprintf("key-%06d", i*n/200)))
		}
		return fs.Counters().BytesRead.Load() - before
	}
	small, large := cost(200), cost(3200)
	if large < 4*small {
		t.Fatalf("lookup cost should grow with N: small=%d large=%d", small, large)
	}
}

func TestNoScan(t *testing.T) {
	fs := vfs.NewMem()
	db := openTestStore(t, fs, 8)
	defer db.Close()
	if _, err := db.Scan([]byte("a"), []byte("z"), 10); err != ErrNoScan {
		t.Fatalf("%v", err)
	}
}

func TestReopenCompacts(t *testing.T) {
	fs := vfs.NewMem()
	db := openTestStore(t, fs, 32)
	for i := 0; i < 300; i++ {
		db.Put([]byte(fmt.Sprintf("key-%04d", i%50)), []byte(fmt.Sprintf("v%d", i)))
	}
	for i := 0; i < 10; i++ {
		db.Delete([]byte(fmt.Sprintf("key-%04d", i)))
	}
	db.Close()

	db2 := openTestStore(t, fs, 32)
	defer db2.Close()
	// Compacted: only live keys remain.
	if db2.Count() != 40 {
		t.Fatalf("Count=%d want 40", db2.Count())
	}
	for i := 10; i < 50; i++ {
		got, err := db2.Get([]byte(fmt.Sprintf("key-%04d", i)))
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		if len(got) == 0 {
			t.Fatalf("key %d empty", i)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := db2.Get([]byte(fmt.Sprintf("key-%04d", i))); err != ErrNotFound {
			t.Fatalf("deleted key %d resurrected", i)
		}
	}
}

func TestClosed(t *testing.T) {
	fs := vfs.NewMem()
	db := openTestStore(t, fs, 8)
	db.Close()
	if err := db.Put([]byte("k"), []byte("v")); err != ErrClosed {
		t.Fatalf("%v", err)
	}
	if _, err := db.Get([]byte("k")); err != ErrClosed {
		t.Fatalf("%v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestLargeValues(t *testing.T) {
	fs := vfs.NewMem()
	db := openTestStore(t, fs, 8)
	defer db.Close()
	big := bytes.Repeat([]byte("x"), 10000) // larger than the 4 KiB read window
	db.Put([]byte("big"), big)
	db.Put([]byte("after"), []byte("small"))
	got, err := db.Get([]byte("big"))
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("large value: len=%d err=%v", len(got), err)
	}
}

func TestReopenTornLog(t *testing.T) {
	fs := vfs.NewMem()
	db := openTestStore(t, fs, 32)
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Close()
	// Tear bytes off the log tail: recovery keeps the intact prefix.
	data, _ := fs.ReadFile("hs/store.log")
	fs.WriteFile("hs/store.log", data[:len(data)-7])
	db2 := openTestStore(t, fs, 32)
	defer db2.Close()
	if db2.Count() < 90 {
		t.Fatalf("recovered only %d records", db2.Count())
	}
	for i := 0; i < db2.Count()-5; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		if _, err := db2.Get(k); err != nil {
			t.Fatalf("%s: %v", k, err)
		}
	}
}
