// Package hashindex implements UniKV's lightweight two-level in-memory hash
// index over the UnsortedStore (paper §Design, "Hash indexing").
//
// The index maps a key to the UnsortedStore table that holds its newest
// version. Each bucket has one direct slot plus an overflow chain; an insert
// probes buckets h_1(key)%N .. h_n(key)%N (cuckoo-style multi-choice) for a
// free direct slot and otherwise chains an overflow entry onto bucket
// h_n(key)%N. A lookup probes in the reverse order, h_n .. h_1, checking
// chain entries newest-first before the direct slot, so the most recently
// inserted version of a key is always found first (slot occupancy is
// monotone between rebuilds, so newer entries can only land at
// higher-numbered probes or in chains).
//
// Each entry costs 8 bytes — <keyTag(2B), tableID(2B), pointer(4B)> — the
// paper's budget. keyTag is the top 16 bits of an (n+1)-th hash and filters
// candidates; false positives are resolved by reading the key from the
// candidate table. The pointer is the chain link (an arena index here; the
// paper chains file-format entries the same way).
//
// For crash recovery the index is checkpointed to disk (paper: every
// UnsortedLimit/2 flushes) and reloaded + replayed on open.
package hashindex

import (
	"errors"
	"sync"

	"unikv/internal/codec"
	"unikv/internal/vfs"
)

// DefaultNumHash is the number of candidate buckets probed per key.
const DefaultNumHash = 4

// ErrBadCheckpoint reports an unreadable checkpoint file.
var ErrBadCheckpoint = errors.New("hashindex: corrupt checkpoint")

// bucket is the first level: one inline entry plus an overflow chain head.
type bucket struct {
	used  bool
	tag   uint16
	table uint16
	head  uint32 // 1-based arena index; 0 = nil
}

// overflow is a chained (second-level) entry.
type overflow struct {
	tag   uint16
	table uint16
	next  uint32 // 1-based arena index; 0 = nil
}

// Index is the two-level hash index. It is safe for concurrent use.
type Index struct {
	mu      sync.RWMutex
	buckets []bucket
	arena   []overflow
	numHash int
	count   int
}

// New creates an index with nBuckets first-level buckets and numHash probe
// functions (DefaultNumHash if numHash <= 0). Size nBuckets near the
// expected number of live entries for ~80 % direct-slot utilization.
func New(nBuckets, numHash int) *Index {
	if nBuckets < 16 {
		nBuckets = 16
	}
	if numHash <= 0 {
		numHash = DefaultNumHash
	}
	if numHash > maxNumHash {
		numHash = maxNumHash
	}
	return &Index{buckets: make([]bucket, nBuckets), numHash: numHash}
}

// hashSeeds provides independent 64-bit mixes; seed i drives h_{i+1}.
var hashSeeds = [...]uint64{
	0x9e3779b97f4a7c15, 0xbf58476d1ce4e5b9, 0x94d049bb133111eb,
	0xd6e8feb86659fd93, 0xa5a5a5a5a5a5a5a5, 0xc2b2ae3d27d4eb4f,
	0x165667b19e3779f9, 0x27d4eb2f165667c5,
}

// baseHash is an FNV-1a 64 over the key.
func baseHash(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// mix finalizes base with a seed (splitmix64 finalizer).
func mix(base, seed uint64) uint64 {
	z := base ^ seed
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// maxNumHash bounds the probe count so hash results fit a stack array.
const maxNumHash = len(hashSeeds) - 1

// hashes fills bs with the n bucket indices (h_1..h_n) and returns the
// probe slice and the keyTag (h_{n+1}). bs must have maxNumHash capacity.
func (x *Index) hashes(key []byte, bs *[maxNumHash]uint32) ([]uint32, uint16) {
	base := baseHash(key)
	n := x.numHash
	for i := 0; i < n; i++ {
		bs[i] = uint32(mix(base, hashSeeds[i]) % uint64(len(x.buckets)))
	}
	tag := uint16(mix(base, hashSeeds[n]) >> 48)
	return bs[:n], tag
}

// Insert records that key's newest version lives in table.
func (x *Index) Insert(key []byte, table uint16) {
	var arr [maxNumHash]uint32
	bs, tag := x.hashes(key, &arr)
	x.mu.Lock()
	defer x.mu.Unlock()
	// Probe h_1..h_n for a free direct slot.
	for _, bi := range bs {
		b := &x.buckets[bi]
		if !b.used {
			b.used = true
			b.tag = tag
			b.table = table
			x.count++
			return
		}
	}
	// All full: chain onto bucket h_n, newest at the head.
	bi := bs[len(bs)-1]
	x.arena = append(x.arena, overflow{tag: tag, table: table, next: x.buckets[bi].head})
	x.buckets[bi].head = uint32(len(x.arena)) // 1-based
	x.count++
}

// Lookup calls fn with each candidate tableID, newest insertion first,
// until fn returns true (found) or candidates are exhausted. It returns
// whether fn stopped the search.
func (x *Index) Lookup(key []byte, fn func(table uint16) bool) bool {
	var arr [maxNumHash]uint32
	bs, tag := x.hashes(key, &arr)
	x.mu.RLock()
	defer x.mu.RUnlock()
	for i := len(bs) - 1; i >= 0; i-- {
		b := &x.buckets[bs[i]]
		// Overflow chain first (strictly newer than any direct slot probed
		// at or below this bucket), newest-first.
		for ai := b.head; ai != 0; ai = x.arena[ai-1].next {
			e := &x.arena[ai-1]
			if e.tag == tag && fn(e.table) {
				return true
			}
		}
		if b.used && b.tag == tag && fn(b.table) {
			return true
		}
	}
	return false
}

// Reset drops all entries (used when the UnsortedStore drains into the
// SortedStore and all tables disappear at once).
func (x *Index) Reset() {
	x.mu.Lock()
	defer x.mu.Unlock()
	for i := range x.buckets {
		x.buckets[i] = bucket{}
	}
	x.arena = x.arena[:0]
	x.count = 0
}

// Count returns the number of live entries.
func (x *Index) Count() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.count
}

// MemoryBytes reports the index's memory footprint: 8 bytes per bucket and
// per overflow entry (the tab-mem experiment's metric).
func (x *Index) MemoryBytes() int64 {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return int64(len(x.buckets))*8 + int64(len(x.arena))*8
}

// Utilization returns the fraction of direct slots in use.
func (x *Index) Utilization() float64 {
	x.mu.RLock()
	defer x.mu.RUnlock()
	used := 0
	for i := range x.buckets {
		if x.buckets[i].used {
			used++
		}
	}
	return float64(used) / float64(len(x.buckets))
}

// OverflowLen returns the number of chained entries.
func (x *Index) OverflowLen() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.arena)
}

// ---------------------------------------------------------------------------
// Checkpointing.

const checkpointMagic uint64 = 0x756e696b76686169 // "unikvhai"

// Marshal serializes the index (with a trailing checksum) for embedding in
// a larger checkpoint file.
func (x *Index) Marshal() []byte {
	buf := x.marshalBody()
	return codec.PutUint32(buf, codec.MaskChecksum(codec.Checksum(buf)))
}

// Unmarshal restores an index serialized by Marshal.
func Unmarshal(data []byte) (*Index, error) {
	return unmarshalChecked(data)
}

// Save writes an atomic checkpoint of the index to name.
func (x *Index) Save(fs vfs.FS, name string) error {
	return fs.WriteFile(name, x.Marshal())
}

// marshalBody serializes the index without the checksum.
func (x *Index) marshalBody() []byte {
	x.mu.RLock()
	var buf []byte
	buf = codec.PutUint64(buf, checkpointMagic)
	buf = codec.PutUvarint(buf, uint64(x.numHash))
	buf = codec.PutUvarint(buf, uint64(len(x.buckets)))
	buf = codec.PutUvarint(buf, uint64(len(x.arena)))
	for i := range x.buckets {
		b := &x.buckets[i]
		u := byte(0)
		if b.used {
			u = 1
		}
		buf = append(buf, u)
		buf = codec.PutUint32(buf, uint32(b.tag)|uint32(b.table)<<16)
		buf = codec.PutUint32(buf, b.head)
	}
	for i := range x.arena {
		e := &x.arena[i]
		buf = codec.PutUint32(buf, uint32(e.tag)|uint32(e.table)<<16)
		buf = codec.PutUint32(buf, e.next)
	}
	x.mu.RUnlock()
	return buf
}

// Load restores an index from a checkpoint written by Save.
func Load(fs vfs.FS, name string) (*Index, error) {
	data, err := fs.ReadFile(name)
	if err != nil {
		return nil, err
	}
	return unmarshalChecked(data)
}

// unmarshalChecked validates the checksum and decodes the index.
func unmarshalChecked(data []byte) (*Index, error) {
	var err error
	if len(data) < 12 {
		return nil, ErrBadCheckpoint
	}
	body, crcB := data[:len(data)-4], data[len(data)-4:]
	want, _, _ := codec.Uint32(crcB)
	if codec.MaskChecksum(codec.Checksum(body)) != want {
		return nil, ErrBadCheckpoint
	}
	var magic uint64
	if magic, body, err = codec.Uint64(body); err != nil || magic != checkpointMagic {
		return nil, ErrBadCheckpoint
	}
	var numHash, nBuckets, nArena uint64
	if numHash, body, err = codec.Uvarint(body); err != nil {
		return nil, ErrBadCheckpoint
	}
	if nBuckets, body, err = codec.Uvarint(body); err != nil {
		return nil, ErrBadCheckpoint
	}
	if nArena, body, err = codec.Uvarint(body); err != nil {
		return nil, ErrBadCheckpoint
	}
	x := &Index{
		buckets: make([]bucket, nBuckets),
		arena:   make([]overflow, nArena),
		numHash: int(numHash),
	}
	for i := range x.buckets {
		if len(body) < 9 {
			return nil, ErrBadCheckpoint
		}
		used := body[0] == 1
		body = body[1:]
		var packed, head uint32
		if packed, body, err = codec.Uint32(body); err != nil {
			return nil, ErrBadCheckpoint
		}
		if head, body, err = codec.Uint32(body); err != nil {
			return nil, ErrBadCheckpoint
		}
		x.buckets[i] = bucket{used: used, tag: uint16(packed), table: uint16(packed >> 16), head: head}
		if used {
			x.count++
		}
	}
	for i := range x.arena {
		var packed, next uint32
		if packed, body, err = codec.Uint32(body); err != nil {
			return nil, ErrBadCheckpoint
		}
		if next, body, err = codec.Uint32(body); err != nil {
			return nil, ErrBadCheckpoint
		}
		x.arena[i] = overflow{tag: uint16(packed), table: uint16(packed >> 16), next: next}
		x.count++
	}
	if len(body) != 0 {
		return nil, ErrBadCheckpoint
	}
	return x, nil
}
