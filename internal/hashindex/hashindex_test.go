package hashindex

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"unikv/internal/vfs"
)

// lookupFirst returns the first candidate table for key, or -1.
func lookupFirst(x *Index, key []byte) int {
	found := -1
	x.Lookup(key, func(t uint16) bool {
		found = int(t)
		return true
	})
	return found
}

// candidates collects every candidate table for key in order.
func candidates(x *Index, key []byte) []uint16 {
	var out []uint16
	x.Lookup(key, func(t uint16) bool {
		out = append(out, t)
		return false
	})
	return out
}

func TestInsertLookup(t *testing.T) {
	x := New(1024, 4)
	for i := 0; i < 500; i++ {
		x.Insert([]byte(fmt.Sprintf("key-%04d", i)), uint16(i%100))
	}
	if x.Count() != 500 {
		t.Fatalf("Count=%d", x.Count())
	}
	for i := 0; i < 500; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		cands := candidates(x, key)
		ok := false
		for _, c := range cands {
			if c == uint16(i%100) {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("key %q: table %d not among candidates %v", key, i%100, cands)
		}
	}
}

// TestNewestFirst is the crucial recency invariant: re-inserting a key must
// surface the newest tableID before older ones.
func TestNewestFirst(t *testing.T) {
	x := New(256, 4)
	key := []byte("hot-key")
	// Interleave with other keys to force varying slot occupancy.
	rnd := rand.New(rand.NewSource(7))
	for version := 1; version <= 30; version++ {
		x.Insert(key, uint16(version))
		for j := 0; j < 20; j++ {
			x.Insert([]byte(fmt.Sprintf("filler-%d-%d", version, rnd.Intn(1000))), uint16(version))
		}
		cands := candidates(x, key)
		// The newest version must appear before any older version of the
		// same key (tags always match for the same key).
		seen := map[uint16]int{}
		for pos, c := range cands {
			if _, dup := seen[c]; !dup {
				seen[c] = pos
			}
		}
		newestPos, ok := seen[uint16(version)]
		if !ok {
			t.Fatalf("version %d missing from candidates %v", version, cands)
		}
		for v := 1; v < version; v++ {
			if pos, ok := seen[uint16(v)]; ok && pos < newestPos {
				t.Fatalf("older version %d at pos %d precedes newest %d at pos %d",
					v, pos, version, newestPos)
			}
		}
	}
}

func TestLookupMissing(t *testing.T) {
	x := New(128, 4)
	for i := 0; i < 50; i++ {
		x.Insert([]byte(fmt.Sprintf("k%d", i)), 1)
	}
	// A missing key may produce keyTag false positives but must never stop
	// the search unless the callback says so.
	n := 0
	stopped := x.Lookup([]byte("definitely-absent-key"), func(t uint16) bool {
		n++
		return false
	})
	if stopped {
		t.Fatal("Lookup reported stopped without fn returning true")
	}
	// With 16-bit tags, false positives should be rare.
	if n > 3 {
		t.Fatalf("%d tag collisions for one key is implausible", n)
	}
}

func TestOverflowChains(t *testing.T) {
	// Tiny bucket array forces chaining.
	x := New(16, 2)
	for i := 0; i < 200; i++ {
		x.Insert([]byte(fmt.Sprintf("key-%04d", i)), uint16(i))
	}
	if x.OverflowLen() == 0 {
		t.Fatal("expected overflow entries with 16 buckets and 200 keys")
	}
	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		found := false
		for _, c := range candidates(x, key) {
			if c == uint16(i) {
				found = true
			}
		}
		if !found {
			t.Fatalf("key %q lost in overflow", key)
		}
	}
}

func TestReset(t *testing.T) {
	x := New(64, 4)
	for i := 0; i < 100; i++ {
		x.Insert([]byte(fmt.Sprintf("k%d", i)), 3)
	}
	x.Reset()
	if x.Count() != 0 || x.OverflowLen() != 0 {
		t.Fatalf("after reset: count=%d overflow=%d", x.Count(), x.OverflowLen())
	}
	if got := lookupFirst(x, []byte("k5")); got != -1 {
		t.Fatalf("found %d after reset", got)
	}
	// Reusable after reset.
	x.Insert([]byte("fresh"), 9)
	if got := lookupFirst(x, []byte("fresh")); got != 9 {
		t.Fatalf("got %d", got)
	}
}

func TestMemoryBytes(t *testing.T) {
	x := New(1000, 4)
	base := x.MemoryBytes()
	if base != 8000 {
		t.Fatalf("bucket footprint=%d want 8000", base)
	}
	// Fill direct slots + overflow: memory grows by 8 B per overflow entry.
	for i := 0; i < 3000; i++ {
		x.Insert([]byte(fmt.Sprintf("key-%05d", i)), 1)
	}
	got := x.MemoryBytes()
	want := base + int64(x.OverflowLen())*8
	if got != want {
		t.Fatalf("MemoryBytes=%d want %d", got, want)
	}
	if x.Utilization() < 0.9 {
		t.Fatalf("utilization=%f too low after overfill", x.Utilization())
	}
}

func TestSaveLoad(t *testing.T) {
	fs := vfs.NewMem()
	x := New(64, 3)
	for i := 0; i < 300; i++ {
		x.Insert([]byte(fmt.Sprintf("key-%04d", i)), uint16(i%40))
	}
	if err := x.Save(fs, "idx.ckpt"); err != nil {
		t.Fatal(err)
	}
	y, err := Load(fs, "idx.ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if y.Count() != x.Count() {
		t.Fatalf("count %d vs %d", y.Count(), x.Count())
	}
	for i := 0; i < 300; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		a := candidates(x, key)
		b := candidates(y, key)
		if len(a) != len(b) {
			t.Fatalf("candidate sets differ for %q: %v vs %v", key, a, b)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("candidate order differs for %q: %v vs %v", key, a, b)
			}
		}
	}
}

func TestLoadCorrupt(t *testing.T) {
	fs := vfs.NewMem()
	x := New(64, 3)
	x.Insert([]byte("k"), 1)
	x.Save(fs, "idx.ckpt")
	data, _ := fs.ReadFile("idx.ckpt")

	flipped := append([]byte(nil), data...)
	flipped[5] ^= 0xff
	fs.WriteFile("bad.ckpt", flipped)
	if _, err := Load(fs, "bad.ckpt"); err == nil {
		t.Fatal("corrupt checkpoint loaded")
	}

	fs.WriteFile("short.ckpt", data[:6])
	if _, err := Load(fs, "short.ckpt"); err == nil {
		t.Fatal("short checkpoint loaded")
	}

	if _, err := Load(fs, "missing.ckpt"); err == nil {
		t.Fatal("missing checkpoint loaded")
	}
}

// TestQuickModel checks the index against a model map: after arbitrary
// insert sequences, the newest tableID for every key is the first candidate
// whose value matches the model (tag collisions may interleave, but the
// newest entry for the key itself must precede older ones — verified via
// TestNewestFirst; here we check presence).
func TestQuickModel(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		x := New(512, 4)
		model := map[string]uint16{}
		for i := 0; i < 800; i++ {
			k := fmt.Sprintf("key-%03d", rnd.Intn(200))
			v := uint16(rnd.Intn(1 << 16))
			x.Insert([]byte(k), v)
			model[k] = v
		}
		for k, want := range model {
			found := false
			x.Lookup([]byte(k), func(tab uint16) bool {
				if tab == want {
					found = true
					return true
				}
				return false
			})
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultsAndSmallSizes(t *testing.T) {
	x := New(0, 0) // clamps
	x.Insert([]byte("a"), 1)
	if got := lookupFirst(x, []byte("a")); got != 1 {
		t.Fatalf("got %d", got)
	}
}
