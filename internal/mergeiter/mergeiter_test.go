package mergeiter

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"unikv/internal/record"
)

// sliceIter is an in-memory RecIter over pre-sorted records.
type sliceIter struct {
	recs []record.Record
	pos  int
}

func (s *sliceIter) First() bool { s.pos = 0; return s.pos < len(s.recs) }
func (s *sliceIter) Next() bool  { s.pos++; return s.pos < len(s.recs) }
func (s *sliceIter) Valid() bool { return s.pos >= 0 && s.pos < len(s.recs) }
func (s *sliceIter) Seek(t []byte) bool {
	s.pos = sort.Search(len(s.recs), func(i int) bool {
		return bytes.Compare(s.recs[i].Key, t) >= 0
	})
	return s.pos < len(s.recs)
}
func (s *sliceIter) Record() record.Record { return s.recs[s.pos] }

func mk(key string, seq uint64) record.Record {
	return record.Record{Key: []byte(key), Seq: seq, Kind: record.KindSet,
		Value: []byte(fmt.Sprintf("%s@%d", key, seq))}
}

func TestMergeOrder(t *testing.T) {
	a := &sliceIter{recs: []record.Record{mk("a", 1), mk("c", 3), mk("e", 5)}}
	b := &sliceIter{recs: []record.Record{mk("b", 2), mk("c", 9), mk("d", 4)}}
	m := New([]RecIter{a, b})
	var got []string
	for ok := m.First(); ok; ok = m.Next() {
		got = append(got, fmt.Sprintf("%s@%d", m.Record().Key, m.Record().Seq))
	}
	want := []string{"a@1", "b@2", "c@9", "c@3", "d@4", "e@5"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("at %d: %v want %v", i, got, want)
		}
	}
}

func TestMergeSeek(t *testing.T) {
	a := &sliceIter{recs: []record.Record{mk("a", 1), mk("m", 2), mk("z", 3)}}
	b := &sliceIter{recs: []record.Record{mk("c", 4), mk("n", 5)}}
	m := New([]RecIter{a, b})
	if !m.Seek([]byte("m")) || string(m.Record().Key) != "m" {
		t.Fatalf("Seek(m): %q", m.Record().Key)
	}
	if !m.Next() || string(m.Record().Key) != "n" {
		t.Fatalf("next after seek")
	}
	if m.Seek([]byte("zz")) {
		t.Fatal("seek past end")
	}
}

func TestDedupNewestWins(t *testing.T) {
	a := &sliceIter{recs: []record.Record{mk("k", 5), mk("x", 1)}}
	b := &sliceIter{recs: []record.Record{mk("k", 9), mk("k", 2)}}
	d := NewDedup(New([]RecIter{a, b}))
	if !d.First() {
		t.Fatal("empty")
	}
	if d.Record().Seq != 9 || string(d.Record().Key) != "k" {
		t.Fatalf("first: %s@%d", d.Record().Key, d.Record().Seq)
	}
	if !d.Next() || string(d.Record().Key) != "x" {
		t.Fatalf("second")
	}
	if d.Next() {
		t.Fatal("phantom third")
	}
}

func TestEmptyInputs(t *testing.T) {
	m := New([]RecIter{&sliceIter{}, &sliceIter{}})
	if m.First() || m.Valid() {
		t.Fatal("empty merge valid")
	}
	m2 := New(nil)
	if m2.First() {
		t.Fatal("no-input merge valid")
	}
	d := NewDedup(New([]RecIter{&sliceIter{}}))
	if d.First() {
		t.Fatal("empty dedup valid")
	}
}

// TestQuickAgainstSort merges random pre-sorted runs and checks against a
// globally sorted reference, both raw and deduped.
func TestQuickAgainstSort(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		nIters := rnd.Intn(6) + 1
		var all []record.Record
		var iters []RecIter
		seq := uint64(1)
		for i := 0; i < nIters; i++ {
			n := rnd.Intn(50)
			var recs []record.Record
			for j := 0; j < n; j++ {
				recs = append(recs, mk(fmt.Sprintf("key-%03d", rnd.Intn(60)), seq))
				seq++
			}
			sort.Slice(recs, func(a, b int) bool {
				return Less(recs[a].Key, recs[a].Seq, recs[b].Key, recs[b].Seq)
			})
			iters = append(iters, &sliceIter{recs: recs})
			all = append(all, recs...)
		}
		sort.Slice(all, func(a, b int) bool {
			return Less(all[a].Key, all[a].Seq, all[b].Key, all[b].Seq)
		})
		m := New(iters)
		i := 0
		for ok := m.First(); ok; ok = m.Next() {
			r := m.Record()
			if i >= len(all) || !bytes.Equal(r.Key, all[i].Key) || r.Seq != all[i].Seq {
				return false
			}
			i++
		}
		if i != len(all) || m.Err() != nil {
			return false
		}
		// Dedup: newest per key.
		want := map[string]uint64{}
		for _, r := range all {
			if s, ok := want[string(r.Key)]; !ok || r.Seq > s {
				want[string(r.Key)] = r.Seq
			}
		}
		for _, it := range iters {
			it.(*sliceIter).pos = 0
		}
		d := NewDedup(New(iters))
		n := 0
		for ok := d.First(); ok; ok = d.Next() {
			if want[string(d.Record().Key)] != d.Record().Seq {
				return false
			}
			n++
		}
		return n == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
