package mergeiter

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"unikv/internal/record"
)

// sliceIter is an in-memory RecIter over pre-sorted records.
type sliceIter struct {
	recs []record.Record
	pos  int
}

func (s *sliceIter) First() bool { s.pos = 0; return s.pos < len(s.recs) }
func (s *sliceIter) Next() bool  { s.pos++; return s.pos < len(s.recs) }
func (s *sliceIter) Valid() bool { return s.pos >= 0 && s.pos < len(s.recs) }
func (s *sliceIter) Seek(t []byte) bool {
	s.pos = sort.Search(len(s.recs), func(i int) bool {
		return bytes.Compare(s.recs[i].Key, t) >= 0
	})
	return s.pos < len(s.recs)
}
func (s *sliceIter) Record() record.Record { return s.recs[s.pos] }

func mk(key string, seq uint64) record.Record {
	return record.Record{Key: []byte(key), Seq: seq, Kind: record.KindSet,
		Value: []byte(fmt.Sprintf("%s@%d", key, seq))}
}

func TestMergeOrder(t *testing.T) {
	a := &sliceIter{recs: []record.Record{mk("a", 1), mk("c", 3), mk("e", 5)}}
	b := &sliceIter{recs: []record.Record{mk("b", 2), mk("c", 9), mk("d", 4)}}
	m := New([]RecIter{a, b})
	var got []string
	for ok := m.First(); ok; ok = m.Next() {
		got = append(got, fmt.Sprintf("%s@%d", m.Record().Key, m.Record().Seq))
	}
	want := []string{"a@1", "b@2", "c@9", "c@3", "d@4", "e@5"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("at %d: %v want %v", i, got, want)
		}
	}
}

func TestMergeSeek(t *testing.T) {
	a := &sliceIter{recs: []record.Record{mk("a", 1), mk("m", 2), mk("z", 3)}}
	b := &sliceIter{recs: []record.Record{mk("c", 4), mk("n", 5)}}
	m := New([]RecIter{a, b})
	if !m.Seek([]byte("m")) || string(m.Record().Key) != "m" {
		t.Fatalf("Seek(m): %q", m.Record().Key)
	}
	if !m.Next() || string(m.Record().Key) != "n" {
		t.Fatalf("next after seek")
	}
	if m.Seek([]byte("zz")) {
		t.Fatal("seek past end")
	}
}

func TestDedupNewestWins(t *testing.T) {
	a := &sliceIter{recs: []record.Record{mk("k", 5), mk("x", 1)}}
	b := &sliceIter{recs: []record.Record{mk("k", 9), mk("k", 2)}}
	d := NewDedup(New([]RecIter{a, b}))
	if !d.First() {
		t.Fatal("empty")
	}
	if d.Record().Seq != 9 || string(d.Record().Key) != "k" {
		t.Fatalf("first: %s@%d", d.Record().Key, d.Record().Seq)
	}
	if !d.Next() || string(d.Record().Key) != "x" {
		t.Fatalf("second")
	}
	if d.Next() {
		t.Fatal("phantom third")
	}
}

func TestEmptyInputs(t *testing.T) {
	m := New([]RecIter{&sliceIter{}, &sliceIter{}})
	if m.First() || m.Valid() {
		t.Fatal("empty merge valid")
	}
	m2 := New(nil)
	if m2.First() {
		t.Fatal("no-input merge valid")
	}
	d := NewDedup(New([]RecIter{&sliceIter{}}))
	if d.First() {
		t.Fatal("empty dedup valid")
	}
}

func mkDel(key string, seq uint64) record.Record {
	return record.Record{Key: []byte(key), Seq: seq, Kind: record.KindDelete}
}

// TestManyTables merges 40 heavily overlapping tables — the UnsortedStore
// shape the engine's scans hit at high table counts — and cross-checks the
// full versioned stream against a reference sort, record for record.
func TestManyTables(t *testing.T) {
	const nTables = 40
	rnd := rand.New(rand.NewSource(7))
	var all []record.Record
	var iters []RecIter
	seq := uint64(1)
	for i := 0; i < nTables; i++ {
		var recs []record.Record
		// Every table draws from the same 64-key space, so nearly every
		// key appears in many tables.
		for j := 0; j < 24; j++ {
			recs = append(recs, mk(fmt.Sprintf("key-%03d", rnd.Intn(64)), seq))
			seq++
		}
		sort.Slice(recs, func(a, b int) bool {
			return Less(recs[a].Key, recs[a].Seq, recs[b].Key, recs[b].Seq)
		})
		iters = append(iters, &sliceIter{recs: recs})
		all = append(all, recs...)
	}
	sort.Slice(all, func(a, b int) bool {
		return Less(all[a].Key, all[a].Seq, all[b].Key, all[b].Seq)
	})
	m := New(iters)
	i := 0
	for ok := m.First(); ok; ok = m.Next() {
		r := m.Record()
		if !bytes.Equal(r.Key, all[i].Key) || r.Seq != all[i].Seq {
			t.Fatalf("record %d: got %s@%d want %s@%d", i, r.Key, r.Seq, all[i].Key, all[i].Seq)
		}
		i++
	}
	if i != len(all) {
		t.Fatalf("merged %d of %d records", i, len(all))
	}

	// Newest-wins across all 40 tables: dedup must yield exactly the
	// highest sequence per key.
	want := map[string]uint64{}
	for _, r := range all {
		if s, ok := want[string(r.Key)]; !ok || r.Seq > s {
			want[string(r.Key)] = r.Seq
		}
	}
	for _, it := range iters {
		it.(*sliceIter).pos = 0
	}
	d := NewDedup(New(iters))
	n := 0
	for ok := d.First(); ok; ok = d.Next() {
		if want[string(d.Record().Key)] != d.Record().Seq {
			t.Fatalf("dedup %s: got seq %d want %d", d.Record().Key, d.Record().Seq, want[string(d.Record().Key)])
		}
		n++
	}
	if n != len(want) {
		t.Fatalf("dedup yielded %d keys, want %d", n, len(want))
	}
}

// TestDeleteShadowing: a newer tombstone must surface before (and via
// dedup, instead of) every older live version of its key, across tables.
func TestDeleteShadowing(t *testing.T) {
	a := &sliceIter{recs: []record.Record{mk("k", 3), mk("m", 1)}}
	b := &sliceIter{recs: []record.Record{mkDel("k", 7), mk("n", 2)}}
	c := &sliceIter{recs: []record.Record{mk("k", 5)}}

	// Raw merge: k@7(del), k@5, k@3, m@1, n@2.
	m := New([]RecIter{a, b, c})
	type kv struct {
		key  string
		seq  uint64
		kind record.Kind
	}
	var got []kv
	for ok := m.First(); ok; ok = m.Next() {
		r := m.Record()
		got = append(got, kv{string(r.Key), r.Seq, r.Kind})
	}
	want := []kv{
		{"k", 7, record.KindDelete},
		{"k", 5, record.KindSet},
		{"k", 3, record.KindSet},
		{"m", 1, record.KindSet},
		{"n", 2, record.KindSet},
	}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("at %d: got %v want %v", i, got[i], want[i])
		}
	}

	// Dedup: the tombstone is the surviving version of k — a scanner
	// consuming this stream drops the key entirely.
	for _, it := range []*sliceIter{a, b, c} {
		it.pos = 0
	}
	d := NewDedup(New([]RecIter{a, b, c}))
	if !d.First() || string(d.Record().Key) != "k" || d.Record().Kind != record.KindDelete || d.Record().Seq != 7 {
		t.Fatalf("dedup first: %s@%d kind=%d", d.Record().Key, d.Record().Seq, d.Record().Kind)
	}
	if !d.Next() || string(d.Record().Key) != "m" {
		t.Fatal("dedup second")
	}
	if !d.Next() || string(d.Record().Key) != "n" {
		t.Fatal("dedup third")
	}
	if d.Next() {
		t.Fatal("phantom after n")
	}
}

// TestQuickAgainstSort merges random pre-sorted runs and checks against a
// globally sorted reference, both raw and deduped.
func TestQuickAgainstSort(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		nIters := rnd.Intn(6) + 1
		var all []record.Record
		var iters []RecIter
		seq := uint64(1)
		for i := 0; i < nIters; i++ {
			n := rnd.Intn(50)
			var recs []record.Record
			for j := 0; j < n; j++ {
				recs = append(recs, mk(fmt.Sprintf("key-%03d", rnd.Intn(60)), seq))
				seq++
			}
			sort.Slice(recs, func(a, b int) bool {
				return Less(recs[a].Key, recs[a].Seq, recs[b].Key, recs[b].Seq)
			})
			iters = append(iters, &sliceIter{recs: recs})
			all = append(all, recs...)
		}
		sort.Slice(all, func(a, b int) bool {
			return Less(all[a].Key, all[a].Seq, all[b].Key, all[b].Seq)
		})
		m := New(iters)
		i := 0
		for ok := m.First(); ok; ok = m.Next() {
			r := m.Record()
			if i >= len(all) || !bytes.Equal(r.Key, all[i].Key) || r.Seq != all[i].Seq {
				return false
			}
			i++
		}
		if i != len(all) || m.Err() != nil {
			return false
		}
		// Dedup: newest per key.
		want := map[string]uint64{}
		for _, r := range all {
			if s, ok := want[string(r.Key)]; !ok || r.Seq > s {
				want[string(r.Key)] = r.Seq
			}
		}
		for _, it := range iters {
			it.(*sliceIter).pos = 0
		}
		d := NewDedup(New(iters))
		n := 0
		for ok := d.First(); ok; ok = d.Next() {
			if want[string(d.Record().Key)] != d.Record().Seq {
				return false
			}
			n++
		}
		return n == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// FuzzMergeRandomOverlap drives the merge with fuzzer-chosen table counts,
// key-space widths, and tombstone rates, so table overlap ranges from
// disjoint (wide key space, few tables) to total (narrow space, many
// tables). Checks the full stream, a Seek from a random point, and dedup
// against references computed independently.
func FuzzMergeRandomOverlap(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(8), uint8(0))
	f.Add(int64(2), uint8(33), uint8(16), uint8(30))
	f.Add(int64(3), uint8(64), uint8(4), uint8(80))
	f.Add(int64(4), uint8(1), uint8(1), uint8(100))
	f.Fuzz(func(t *testing.T, seed int64, nTables, keySpace, delPct uint8) {
		if nTables == 0 {
			nTables = 1
		}
		if keySpace == 0 {
			keySpace = 1
		}
		rnd := rand.New(rand.NewSource(seed))
		var all []record.Record
		var iters []RecIter
		seq := uint64(1)
		for i := 0; i < int(nTables); i++ {
			n := rnd.Intn(20)
			var recs []record.Record
			for j := 0; j < n; j++ {
				key := fmt.Sprintf("key-%03d", rnd.Intn(int(keySpace)))
				if rnd.Intn(100) < int(delPct) {
					recs = append(recs, mkDel(key, seq))
				} else {
					recs = append(recs, mk(key, seq))
				}
				seq++
			}
			sort.Slice(recs, func(a, b int) bool {
				return Less(recs[a].Key, recs[a].Seq, recs[b].Key, recs[b].Seq)
			})
			iters = append(iters, &sliceIter{recs: recs})
			all = append(all, recs...)
		}
		sort.Slice(all, func(a, b int) bool {
			return Less(all[a].Key, all[a].Seq, all[b].Key, all[b].Seq)
		})

		m := New(iters)
		i := 0
		for ok := m.First(); ok; ok = m.Next() {
			r := m.Record()
			if i >= len(all) {
				t.Fatalf("merge yielded more than %d records", len(all))
			}
			if !bytes.Equal(r.Key, all[i].Key) || r.Seq != all[i].Seq || r.Kind != all[i].Kind {
				t.Fatalf("record %d: got %s@%d/%d want %s@%d/%d",
					i, r.Key, r.Seq, r.Kind, all[i].Key, all[i].Seq, all[i].Kind)
			}
			i++
		}
		if i != len(all) {
			t.Fatalf("merged %d of %d records", i, len(all))
		}

		// Seek from a random target must land on the reference suffix.
		target := []byte(fmt.Sprintf("key-%03d", rnd.Intn(int(keySpace))))
		j := sort.Search(len(all), func(i int) bool {
			return bytes.Compare(all[i].Key, target) >= 0
		})
		for ok := m.Seek(target); ok; ok = m.Next() {
			r := m.Record()
			if j >= len(all) || !bytes.Equal(r.Key, all[j].Key) || r.Seq != all[j].Seq {
				t.Fatalf("seek(%s) diverged at reference index %d", target, j)
			}
			j++
		}
		if j != len(all) {
			t.Fatalf("seek walk stopped at %d of %d", j, len(all))
		}

		// Dedup: newest version per key, tombstones included.
		newest := map[string]record.Record{}
		for _, r := range all {
			if prev, ok := newest[string(r.Key)]; !ok || r.Seq > prev.Seq {
				newest[string(r.Key)] = r
			}
		}
		for _, it := range iters {
			it.(*sliceIter).pos = 0
		}
		d := NewDedup(New(iters))
		n := 0
		for ok := d.First(); ok; ok = d.Next() {
			r := d.Record()
			w := newest[string(r.Key)]
			if r.Seq != w.Seq || r.Kind != w.Kind {
				t.Fatalf("dedup %s: got @%d/%d want @%d/%d", r.Key, r.Seq, r.Kind, w.Seq, w.Kind)
			}
			n++
		}
		if n != len(newest) {
			t.Fatalf("dedup yielded %d keys, want %d", n, len(newest))
		}
	})
}
