// Package mergeiter provides the k-way merging iterator shared by the
// UniKV engine and the baseline LSM engines: it interleaves several
// (key asc, seq desc)-ordered record streams into one globally ordered
// stream. The first record per key is therefore always the newest version.
package mergeiter

import (
	"unikv/internal/codec"
	"unikv/internal/record"
)

// RecIter is the common shape of memtable, sstable, and run iterators.
type RecIter interface {
	First() bool
	Seek(target []byte) bool
	Next() bool
	Valid() bool
	Record() record.Record
}

// Iter merges several RecIters. With the handful of inputs typical here a
// linear selection per step beats heap bookkeeping.
type Iter struct {
	iters []RecIter
	cur   int
}

// New builds a merging iterator over iters.
func New(iters []RecIter) *Iter { return &Iter{iters: iters, cur: -1} }

// Less orders (ka, sa) before (kb, sb) in merge order: key ascending,
// sequence descending.
func Less(ka []byte, sa uint64, kb []byte, sb uint64) bool {
	if c := codec.Compare(ka, kb); c != 0 {
		return c < 0
	}
	return sa > sb
}

func (m *Iter) pick() bool {
	m.cur = -1
	for i, it := range m.iters {
		if !it.Valid() {
			continue
		}
		if m.cur < 0 {
			m.cur = i
			continue
		}
		a, b := it.Record(), m.iters[m.cur].Record()
		if Less(a.Key, a.Seq, b.Key, b.Seq) {
			m.cur = i
		}
	}
	return m.cur >= 0
}

// First positions at the globally smallest record.
func (m *Iter) First() bool {
	for _, it := range m.iters {
		it.First()
	}
	return m.pick()
}

// Seek positions at the first record with key >= target.
func (m *Iter) Seek(target []byte) bool {
	for _, it := range m.iters {
		it.Seek(target)
	}
	return m.pick()
}

// Next advances to the following record.
func (m *Iter) Next() bool {
	if m.cur >= 0 {
		m.iters[m.cur].Next()
	}
	return m.pick()
}

// Valid reports whether the iterator is on a record.
func (m *Iter) Valid() bool { return m.cur >= 0 }

// Record returns the current record.
func (m *Iter) Record() record.Record { return m.iters[m.cur].Record() }

// Err returns the first error any input iterator reported (inputs that
// don't expose Err are assumed infallible).
func (m *Iter) Err() error {
	for _, it := range m.iters {
		if e, ok := it.(interface{ Err() error }); ok {
			if err := e.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Dedup wraps an Iter, yielding only the newest version of each key.
type Dedup struct {
	m        *Iter
	lastKey  []byte
	haveLast bool
}

// NewDedup wraps m.
func NewDedup(m *Iter) *Dedup { return &Dedup{m: m} }

// First positions at the newest version of the smallest key.
func (d *Dedup) First() bool {
	d.haveLast = false
	if !d.m.First() {
		return false
	}
	d.remember()
	return true
}

// Seek positions at the newest version of the first key >= target.
func (d *Dedup) Seek(target []byte) bool {
	d.haveLast = false
	if !d.m.Seek(target) {
		return false
	}
	d.remember()
	return true
}

// Next advances to the newest version of the next distinct key.
func (d *Dedup) Next() bool {
	for d.m.Next() {
		if !d.haveLast || codec.Compare(d.m.Record().Key, d.lastKey) != 0 {
			d.remember()
			return true
		}
	}
	return false
}

func (d *Dedup) remember() {
	d.lastKey = append(d.lastKey[:0], d.m.Record().Key...)
	d.haveLast = true
}

// Valid reports whether the iterator is on a record.
func (d *Dedup) Valid() bool { return d.m.Valid() }

// Record returns the current record.
func (d *Dedup) Record() record.Record { return d.m.Record() }

// Err propagates input errors.
func (d *Dedup) Err() error { return d.m.Err() }
