//go:build unix

package vfs

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"syscall"
)

// TryLockDir takes a non-blocking flock(2) on dir/LOCK. flock locks belong
// to the open file description, so a second handle — same process or not —
// gets EWOULDBLOCK, and a crashed owner's lock vanishes with its fds: no
// stale-lockfile recovery is ever needed.
func (fs *osFS) TryLockDir(dir string) (DirLock, error) {
	f, err := os.OpenFile(filepath.Join(dir, LockFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if err == syscall.EWOULDBLOCK || err == syscall.EAGAIN {
			return nil, fmt.Errorf("%w: %s", ErrLocked, dir)
		}
		return nil, &os.PathError{Op: "flock", Path: dir, Err: err}
	}
	return &osDirLock{f: f}, nil
}

type osDirLock struct {
	mu       sync.Mutex
	f        *os.File
	released bool
}

// Release drops the flock by closing the fd. The LOCK file itself stays in
// the directory (LevelDB convention); it carries no state.
func (l *osDirLock) Release() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.released {
		return nil
	}
	l.released = true
	return l.f.Close()
}
