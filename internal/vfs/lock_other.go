//go:build !unix

package vfs

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// TryLockDir on platforms without flock falls back to an O_EXCL lock file.
// Unlike the flock variant this can leave a stale LOCK behind after a crash
// (delete it by hand to recover); the supported serving platforms are all
// unix, so the fallback only keeps builds working elsewhere.
func (fs *osFS) TryLockDir(dir string) (DirLock, error) {
	path := filepath.Join(dir, LockFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("%w: %s (stale after a crash? remove %s)", ErrLocked, dir, path)
		}
		return nil, err
	}
	return &osDirLock{f: f, path: path}, nil
}

type osDirLock struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	released bool
}

func (l *osDirLock) Release() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.released {
		return nil
	}
	l.released = true
	err := l.f.Close()
	if rerr := os.Remove(l.path); err == nil {
		err = rerr
	}
	return err
}
