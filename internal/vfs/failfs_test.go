package vfs

import (
	"errors"
	"path/filepath"
	"testing"
)

// failFixture returns an armed-ready FailFS over a memFS with one file
// already on "disk" so read-path tests have something to open.
func failFixture(t *testing.T) (*FailFS, string) {
	t.Helper()
	mem := NewMem()
	if err := mem.MkdirAll("db"); err != nil {
		t.Fatal(err)
	}
	ffs := NewFail(mem)
	name := filepath.Join("db", "seed.sst")
	if err := ffs.WriteFile(name, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	return ffs, name
}

func TestFailFSSticky(t *testing.T) {
	ffs, name := failFixture(t)
	f, err := ffs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Skip 2 writes, then fail forever.
	ffs.ArmPlan(FailPlan{Skip: 2, Fail: -1, Kinds: OpWrite})
	w, err := ffs.Create(filepath.Join("db", "out.dat"))
	if err != nil {
		t.Fatalf("create should not match OpWrite: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := w.Write([]byte("x")); err != nil {
			t.Fatalf("write %d within Skip: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
			t.Fatalf("sticky write %d: err=%v, want ErrInjected", i, err)
		}
	}
	// Reads are outside the plan's kind set and keep working.
	if _, err := f.ReadAt(make([]byte, 4), 0); err != nil {
		t.Fatalf("read during write-only plan: %v", err)
	}
	if got := ffs.MatchedOps(); got != 5 {
		t.Fatalf("MatchedOps=%d want 5", got)
	}
	if got := ffs.InjectedOps(); got != 3 {
		t.Fatalf("InjectedOps=%d want 3", got)
	}
	if !ffs.Failed() {
		t.Fatal("Failed()=false after injection")
	}

	// Disarm keeps counters until the next arm.
	ffs.Disarm()
	if _, err := w.Write([]byte("x")); err != nil {
		t.Fatalf("write after Disarm: %v", err)
	}
	if got := ffs.InjectedOps(); got != 3 {
		t.Fatalf("InjectedOps after Disarm=%d want 3", got)
	}
}

func TestFailFSTransient(t *testing.T) {
	ffs, _ := failFixture(t)
	ffs.ArmPlan(FailPlan{Fail: 2, Kinds: OpCreate})
	for i := 0; i < 2; i++ {
		if _, err := ffs.Create(filepath.Join("db", "t.dat")); !errors.Is(err, ErrInjected) {
			t.Fatalf("create %d: err=%v, want ErrInjected", i, err)
		}
	}
	// The fault window is exhausted: the file system has "recovered".
	f, err := ffs.Create(filepath.Join("db", "t.dat"))
	if err != nil {
		t.Fatalf("create after transient window: %v", err)
	}
	f.Close()
	if got := ffs.InjectedOps(); got != 2 {
		t.Fatalf("InjectedOps=%d want 2", got)
	}
}

func TestFailFSCountOnly(t *testing.T) {
	ffs, name := failFixture(t)
	ffs.ArmPlan(FailPlan{Fail: 0, Kinds: OpAll})
	f, err := ffs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(make([]byte, 4), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := ffs.ReadFile(name); err != nil {
		t.Fatal(err)
	}
	// Open + ReadAt + ReadFile all matched, none injected.
	if got := ffs.MatchedOps(); got != 3 {
		t.Fatalf("MatchedOps=%d want 3", got)
	}
	if ffs.Failed() {
		t.Fatal("count-only plan injected a failure")
	}
}

func TestFailFSReadPath(t *testing.T) {
	ffs, name := failFixture(t)

	ffs.ArmPlan(FailPlan{Fail: -1, Kinds: OpOpen})
	if _, err := ffs.Open(name); !errors.Is(err, ErrInjected) {
		t.Fatalf("open: err=%v, want ErrInjected", err)
	}

	ffs.Disarm()
	f, err := ffs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ffs.ArmPlan(FailPlan{Fail: -1, Kinds: OpReadAt})
	if _, err := f.ReadAt(make([]byte, 4), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("readat: err=%v, want ErrInjected", err)
	}
	// Writes are untouched by a read-only plan.
	if err := ffs.WriteFile(filepath.Join("db", "w.dat"), []byte("ok")); err != nil {
		t.Fatalf("write during read-only plan: %v", err)
	}

	ffs.ArmPlan(FailPlan{Fail: -1, Kinds: OpReadFile})
	if _, err := ffs.ReadFile(name); !errors.Is(err, ErrInjected) {
		t.Fatalf("readfile: err=%v, want ErrInjected", err)
	}
}

func TestFailFSPattern(t *testing.T) {
	ffs, _ := failFixture(t)
	ffs.ArmPlan(FailPlan{Fail: -1, Kinds: OpWriteFile, Pattern: "*.sst"})
	if err := ffs.WriteFile(filepath.Join("db", "000001.log"), []byte("x")); err != nil {
		t.Fatalf("non-matching name failed: %v", err)
	}
	if err := ffs.WriteFile(filepath.Join("db", "000001.sst"), []byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("matching name: err=%v, want ErrInjected", err)
	}
	if got := ffs.MatchedOps(); got != 1 {
		t.Fatalf("MatchedOps=%d want 1 (pattern should gate counting)", got)
	}
}

func TestFailFSCustomErr(t *testing.T) {
	ffs, _ := failFixture(t)
	boom := errors.New("boom")
	ffs.ArmPlan(FailPlan{Fail: -1, Kinds: OpWriteFile, Err: boom})
	if err := ffs.WriteFile(filepath.Join("db", "x.dat"), []byte("x")); !errors.Is(err, boom) {
		t.Fatalf("err=%v, want custom error", err)
	}
}

// TestFailFSArmCompat pins the historical Arm(n) semantics: n mutating
// operations pass, then every mutating op fails stickily, and reads are
// never injected.
func TestFailFSArmCompat(t *testing.T) {
	ffs, name := failFixture(t)
	ffs.Arm(1)
	if err := ffs.WriteFile(filepath.Join("db", "a.dat"), []byte("x")); err != nil {
		t.Fatalf("op within budget: %v", err)
	}
	if err := ffs.WriteFile(filepath.Join("db", "b.dat"), []byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("op past budget: err=%v, want ErrInjected", err)
	}
	if err := ffs.Remove(name); !errors.Is(err, ErrInjected) {
		t.Fatalf("remove past budget: err=%v, want ErrInjected", err)
	}
	if _, err := ffs.ReadFile(name); err != nil {
		t.Fatalf("read while armed (mutating-only): %v", err)
	}
	if !ffs.Failed() {
		t.Fatal("Failed()=false")
	}
}
