package vfs

import (
	"errors"
	"path/filepath"
	"testing"
)

// failFixture returns an armed-ready FailFS over a memFS with one file
// already on "disk" so read-path tests have something to open.
func failFixture(t *testing.T) (*FailFS, string) {
	t.Helper()
	mem := NewMem()
	if err := mem.MkdirAll("db"); err != nil {
		t.Fatal(err)
	}
	ffs := NewFail(mem)
	name := filepath.Join("db", "seed.sst")
	if err := ffs.WriteFile(name, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	return ffs, name
}

func TestFailFSSticky(t *testing.T) {
	ffs, name := failFixture(t)
	f, err := ffs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Skip 2 writes, then fail forever.
	ffs.ArmPlan(FailPlan{Skip: 2, Fail: -1, Kinds: OpWrite})
	w, err := ffs.Create(filepath.Join("db", "out.dat"))
	if err != nil {
		t.Fatalf("create should not match OpWrite: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := w.Write([]byte("x")); err != nil {
			t.Fatalf("write %d within Skip: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
			t.Fatalf("sticky write %d: err=%v, want ErrInjected", i, err)
		}
	}
	// Reads are outside the plan's kind set and keep working.
	if _, err := f.ReadAt(make([]byte, 4), 0); err != nil {
		t.Fatalf("read during write-only plan: %v", err)
	}
	if got := ffs.MatchedOps(); got != 5 {
		t.Fatalf("MatchedOps=%d want 5", got)
	}
	if got := ffs.InjectedOps(); got != 3 {
		t.Fatalf("InjectedOps=%d want 3", got)
	}
	if !ffs.Failed() {
		t.Fatal("Failed()=false after injection")
	}

	// Disarm keeps counters until the next arm.
	ffs.Disarm()
	if _, err := w.Write([]byte("x")); err != nil {
		t.Fatalf("write after Disarm: %v", err)
	}
	if got := ffs.InjectedOps(); got != 3 {
		t.Fatalf("InjectedOps after Disarm=%d want 3", got)
	}
}

func TestFailFSTransient(t *testing.T) {
	ffs, _ := failFixture(t)
	ffs.ArmPlan(FailPlan{Fail: 2, Kinds: OpCreate})
	for i := 0; i < 2; i++ {
		if _, err := ffs.Create(filepath.Join("db", "t.dat")); !errors.Is(err, ErrInjected) {
			t.Fatalf("create %d: err=%v, want ErrInjected", i, err)
		}
	}
	// The fault window is exhausted: the file system has "recovered".
	f, err := ffs.Create(filepath.Join("db", "t.dat"))
	if err != nil {
		t.Fatalf("create after transient window: %v", err)
	}
	f.Close()
	if got := ffs.InjectedOps(); got != 2 {
		t.Fatalf("InjectedOps=%d want 2", got)
	}
}

func TestFailFSCountOnly(t *testing.T) {
	ffs, name := failFixture(t)
	ffs.ArmPlan(FailPlan{Fail: 0, Kinds: OpAll})
	f, err := ffs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(make([]byte, 4), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := ffs.ReadFile(name); err != nil {
		t.Fatal(err)
	}
	// Open + ReadAt + ReadFile all matched, none injected.
	if got := ffs.MatchedOps(); got != 3 {
		t.Fatalf("MatchedOps=%d want 3", got)
	}
	if ffs.Failed() {
		t.Fatal("count-only plan injected a failure")
	}
}

func TestFailFSReadPath(t *testing.T) {
	ffs, name := failFixture(t)

	ffs.ArmPlan(FailPlan{Fail: -1, Kinds: OpOpen})
	if _, err := ffs.Open(name); !errors.Is(err, ErrInjected) {
		t.Fatalf("open: err=%v, want ErrInjected", err)
	}

	ffs.Disarm()
	f, err := ffs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ffs.ArmPlan(FailPlan{Fail: -1, Kinds: OpReadAt})
	if _, err := f.ReadAt(make([]byte, 4), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("readat: err=%v, want ErrInjected", err)
	}
	// Writes are untouched by a read-only plan.
	if err := ffs.WriteFile(filepath.Join("db", "w.dat"), []byte("ok")); err != nil {
		t.Fatalf("write during read-only plan: %v", err)
	}

	ffs.ArmPlan(FailPlan{Fail: -1, Kinds: OpReadFile})
	if _, err := ffs.ReadFile(name); !errors.Is(err, ErrInjected) {
		t.Fatalf("readfile: err=%v, want ErrInjected", err)
	}
}

func TestFailFSPattern(t *testing.T) {
	ffs, _ := failFixture(t)
	ffs.ArmPlan(FailPlan{Fail: -1, Kinds: OpWriteFile, Pattern: "*.sst"})
	if err := ffs.WriteFile(filepath.Join("db", "000001.log"), []byte("x")); err != nil {
		t.Fatalf("non-matching name failed: %v", err)
	}
	if err := ffs.WriteFile(filepath.Join("db", "000001.sst"), []byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("matching name: err=%v, want ErrInjected", err)
	}
	if got := ffs.MatchedOps(); got != 1 {
		t.Fatalf("MatchedOps=%d want 1 (pattern should gate counting)", got)
	}
}

func TestFailFSCustomErr(t *testing.T) {
	ffs, _ := failFixture(t)
	boom := errors.New("boom")
	ffs.ArmPlan(FailPlan{Fail: -1, Kinds: OpWriteFile, Err: boom})
	if err := ffs.WriteFile(filepath.Join("db", "x.dat"), []byte("x")); !errors.Is(err, boom) {
		t.Fatalf("err=%v, want custom error", err)
	}
}

// TestFailFSArmCompat pins the historical Arm(n) semantics: n mutating
// operations pass, then every mutating op fails stickily, and reads are
// never injected.
func TestFailFSArmCompat(t *testing.T) {
	ffs, name := failFixture(t)
	ffs.Arm(1)
	if err := ffs.WriteFile(filepath.Join("db", "a.dat"), []byte("x")); err != nil {
		t.Fatalf("op within budget: %v", err)
	}
	if err := ffs.WriteFile(filepath.Join("db", "b.dat"), []byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("op past budget: err=%v, want ErrInjected", err)
	}
	if err := ffs.Remove(name); !errors.Is(err, ErrInjected) {
		t.Fatalf("remove past budget: err=%v, want ErrInjected", err)
	}
	if _, err := ffs.ReadFile(name); err != nil {
		t.Fatalf("read while armed (mutating-only): %v", err)
	}
	if !ffs.Failed() {
		t.Fatal("Failed()=false")
	}
}

func TestFailFSCorruptPlan(t *testing.T) {
	ffs, name := failFixture(t) // file holds "0123456789"
	ffs.ArmCorrupt(CorruptPlan{Pattern: "*.sst", Start: 2, Stride: 3, Count: 2})

	// ReadAt observes flipped bytes at offsets 2 and 5; disk is untouched.
	f, err := ffs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	want := []byte("0123456789")
	want[2] ^= 0xFF
	want[5] ^= 0xFF
	if string(buf) != string(want) {
		t.Fatalf("ReadAt=%q want %q", buf, want)
	}
	f.Close()
	if got := ffs.CorruptedReads(); got != 1 {
		t.Fatalf("CorruptedReads=%d want 1", got)
	}

	// ReadFile applies the same plan.
	data, err := ffs.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(want) {
		t.Fatalf("ReadFile=%q want %q", data, want)
	}

	// A read that misses every flipped offset is clean and uncounted.
	before := ffs.CorruptedReads()
	f, _ = ffs.Open(name)
	one := make([]byte, 1)
	if _, err := f.ReadAt(one, 0); err != nil || one[0] != '0' {
		t.Fatalf("clean byte read: %q err=%v", one, err)
	}
	f.Close()
	if got := ffs.CorruptedReads(); got != before {
		t.Fatalf("CorruptedReads advanced on a clean read: %d -> %d", before, got)
	}

	// Non-matching files are untouched.
	other := filepath.Join("db", "seed.log")
	if err := ffs.WriteFile(other, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	if data, _ := ffs.ReadFile(other); string(data) != "abcdef" {
		t.Fatalf("pattern leak: %q", data)
	}

	// Disarm restores clean reads — the corruption never reached disk.
	ffs.DisarmCorrupt()
	if data, _ := ffs.ReadFile(name); string(data) != "0123456789" {
		t.Fatalf("post-disarm read=%q, corruption leaked to disk", data)
	}
}

func TestFailFSCorruptTruncate(t *testing.T) {
	ffs, name := failFixture(t) // 10 bytes
	ffs.ArmCorrupt(CorruptPlan{TruncateAt: 6})

	f, err := ffs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if size, err := f.Size(); err != nil || size != 6 {
		t.Fatalf("Size=%d err=%v, want 6", size, err)
	}
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 0)
	if n != 6 {
		t.Fatalf("ReadAt n=%d want 6 (err=%v)", n, err)
	}
	if string(buf[:n]) != "012345" {
		t.Fatalf("ReadAt=%q want %q", buf[:n], "012345")
	}
	// Reads entirely past the clamp observe an empty tail.
	if n, _ := f.ReadAt(buf, 8); n != 0 {
		t.Fatalf("read past truncation: n=%d want 0", n)
	}
	if data, _ := ffs.ReadFile(name); len(data) != 6 {
		t.Fatalf("ReadFile len=%d want 6", len(data))
	}
	ffs.DisarmCorrupt()
	if size, _ := f.Size(); size != 10 {
		t.Fatalf("post-disarm Size=%d want 10", size)
	}
}
