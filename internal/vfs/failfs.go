package vfs

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInjected is returned by a FailFS once its failure point has been
// reached. Everything after the failure point behaves as if the process
// had crashed: writes fail and nothing further reaches "disk".
var ErrInjected = errors.New("vfs: injected failure")

// FailFS wraps another FS and fails every mutating operation after a
// configured number of write operations has been performed. The crash tests
// use it to stop the engine mid-flush / mid-GC deterministically, then
// reopen the underlying FS and check recovery.
type FailFS struct {
	inner FS

	mu        sync.Mutex
	remaining int64 // mutating ops allowed before failure; <0 = unlimited
	failed    bool
	locked    map[string]bool // dirs locked through this wrapper
}

// NewFail wraps inner; the file system operates normally until Arm is
// called.
func NewFail(inner FS) *FailFS {
	return &FailFS{inner: inner, remaining: -1, locked: make(map[string]bool)}
}

// Arm allows n more mutating operations (writes, syncs, creates, renames,
// removes), then fails everything.
func (fs *FailFS) Arm(n int64) {
	fs.mu.Lock()
	fs.remaining = n
	fs.failed = false
	fs.mu.Unlock()
}

// Disarm restores normal operation.
func (fs *FailFS) Disarm() {
	fs.mu.Lock()
	fs.remaining = -1
	fs.failed = false
	fs.mu.Unlock()
}

// Failed reports whether the failure point has been reached.
func (fs *FailFS) Failed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.failed
}

// step consumes one mutating-op credit; it returns ErrInjected once the
// budget is exhausted.
func (fs *FailFS) step() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.failed {
		return ErrInjected
	}
	if fs.remaining < 0 {
		return nil
	}
	if fs.remaining == 0 {
		fs.failed = true
		return ErrInjected
	}
	fs.remaining--
	return nil
}

func (fs *FailFS) Counters() *Counters { return fs.inner.Counters() }

func (fs *FailFS) Create(name string) (File, error) {
	if err := fs.step(); err != nil {
		return nil, err
	}
	f, err := fs.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &failFile{f: f, fs: fs}, nil
}

func (fs *FailFS) Open(name string) (File, error) { return fs.inner.Open(name) }

func (fs *FailFS) Remove(name string) error {
	if err := fs.step(); err != nil {
		return err
	}
	return fs.inner.Remove(name)
}

func (fs *FailFS) Rename(oldname, newname string) error {
	if err := fs.step(); err != nil {
		return err
	}
	return fs.inner.Rename(oldname, newname)
}

func (fs *FailFS) List(dir string) ([]string, error) { return fs.inner.List(dir) }
func (fs *FailFS) MkdirAll(dir string) error         { return fs.inner.MkdirAll(dir) }
func (fs *FailFS) Exists(name string) bool           { return fs.inner.Exists(name) }

func (fs *FailFS) ReadFile(name string) ([]byte, error) { return fs.inner.ReadFile(name) }

func (fs *FailFS) WriteFile(name string, data []byte) error {
	if err := fs.step(); err != nil {
		return err
	}
	return fs.inner.WriteFile(name, data)
}

// SyncDir is a mutating op for failure-injection purposes: it publishes
// directory entries, so the crash sweeps must be able to kill the engine
// right before one.
func (fs *FailFS) SyncDir(dir string) error {
	if err := fs.step(); err != nil {
		return err
	}
	return fs.inner.SyncDir(dir)
}

// TryLockDir keeps its own lock table instead of forwarding to the inner
// FS: a FailFS models one process, and the crash tests "kill" it by
// abandoning the handle and reopening through the inner FS (or a fresh
// wrapper) — the dead process's locks must not survive it, exactly like
// flock. Two opens through the same wrapper still conflict.
func (fs *FailFS) TryLockDir(dir string) (DirLock, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.locked[dir] {
		return nil, fmt.Errorf("%w: %s", ErrLocked, dir)
	}
	fs.locked[dir] = true
	return &failDirLock{fs: fs, dir: dir}, nil
}

// DropLocks implements LockDropper: it releases the locks held through this
// wrapper and, when the inner FS supports it, those held directly on it.
func (fs *FailFS) DropLocks() {
	fs.mu.Lock()
	fs.locked = make(map[string]bool)
	fs.mu.Unlock()
	if ld, ok := fs.inner.(LockDropper); ok {
		ld.DropLocks()
	}
}

type failDirLock struct {
	fs       *FailFS
	dir      string
	released bool
}

func (l *failDirLock) Release() error {
	l.fs.mu.Lock()
	defer l.fs.mu.Unlock()
	if !l.released {
		delete(l.fs.locked, l.dir)
		l.released = true
	}
	return nil
}

type failFile struct {
	f  File
	fs *FailFS
}

func (f *failFile) Write(p []byte) (int, error) {
	if err := f.fs.step(); err != nil {
		return 0, err
	}
	return f.f.Write(p)
}

func (f *failFile) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }
func (f *failFile) Close() error                            { return f.f.Close() }

func (f *failFile) Sync() error {
	if err := f.fs.step(); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *failFile) Size() (int64, error) { return f.f.Size() }
