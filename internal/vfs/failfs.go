package vfs

import (
	"errors"
	"fmt"
	"io"
	"path"
	"path/filepath"
	"sync"
)

// ErrInjected is returned by a FailFS at its armed failure points. In
// sticky mode everything after the first failure behaves as if the process
// had crashed: writes fail and nothing further reaches "disk". In
// transient mode a bounded number of operations fail and then the file
// system recovers — the shape of an EINTR/ENOSPC-class hiccup.
var ErrInjected = errors.New("vfs: injected failure")

// OpKind is a bitmask of FailFS operation kinds used to target injection.
type OpKind uint16

const (
	OpCreate OpKind = 1 << iota
	OpWrite
	OpSync
	OpSyncDir
	OpRemove
	OpRename
	OpWriteFile
	OpOpen
	OpReadAt
	OpReadFile
)

const (
	// OpMutating covers every operation that changes disk state — the
	// historical Arm(n) target set.
	OpMutating = OpCreate | OpWrite | OpSync | OpSyncDir | OpRemove | OpRename | OpWriteFile
	// OpReads covers the read path (table/log/WAL reads and file opens).
	OpReads = OpOpen | OpReadAt | OpReadFile
	// OpAll covers everything FailFS can intercept.
	OpAll = OpMutating | OpReads
)

// String names the kind set for test failure messages.
func (k OpKind) String() string {
	names := []struct {
		bit  OpKind
		name string
	}{
		{OpCreate, "create"}, {OpWrite, "write"}, {OpSync, "sync"},
		{OpSyncDir, "syncdir"}, {OpRemove, "remove"}, {OpRename, "rename"},
		{OpWriteFile, "writefile"}, {OpOpen, "open"}, {OpReadAt, "readat"},
		{OpReadFile, "readfile"},
	}
	out := ""
	for _, n := range names {
		if k&n.bit != 0 {
			if out != "" {
				out += "|"
			}
			out += n.name
		}
	}
	if out == "" {
		return "none"
	}
	return out
}

// FailPlan describes one injection campaign. Operations that match Kinds
// and Pattern are counted; the first Skip matches pass through, then Fail
// of them fail with Err. Fail < 0 is sticky: every match from Skip on
// fails (a crashed disk). Fail = k > 0 is transient: k matches fail, then
// the file system recovers (a retryable hiccup). Fail = 0 injects nothing
// and just counts matches (used to size sweep campaigns).
type FailPlan struct {
	// Skip is the number of matching operations allowed before injection.
	Skip int64
	// Fail is how many matching operations fail after Skip; < 0 = all.
	Fail int64
	// Kinds selects the targeted operations; 0 means OpMutating (the
	// historical Arm behavior).
	Kinds OpKind
	// Pattern, when non-empty, restricts matching to files whose base name
	// matches this path.Match pattern (e.g. "*.sst"). Directory operations
	// (SyncDir) match against the directory's base name.
	Pattern string
	// Err overrides the injected error; nil means ErrInjected.
	Err error
}

// CorruptPlan describes deterministic read-time corruption: reads of
// matching files observe flipped bytes (and optionally a truncated tail)
// while the bytes on "disk" stay intact. The corruption sweeps use it to
// model latent media errors — silent bit rot the engine only notices when
// a read or scrub lands on the damaged range — without mutating state, so
// one seeded directory serves an entire campaign of corruption points.
type CorruptPlan struct {
	// Pattern restricts corruption to files whose base name matches this
	// path.Match pattern (e.g. "*.sst"); empty matches every file.
	Pattern string
	// Start is the offset of the first corrupted byte within each
	// matching file.
	Start int64
	// Stride is the distance between corrupted bytes; <= 0 corrupts only
	// the byte at Start.
	Stride int64
	// Count is how many bytes are flipped per file; <= 0 flips nothing
	// (a truncation-only plan).
	Count int
	// TruncateAt, when > 0, makes reads behave as if matching files ended
	// at this offset (a torn tail), in addition to any byte flips.
	TruncateAt int64
}

// FailFS wraps another FS and injects failures according to an armed
// FailPlan, and/or read-time corruption according to an armed CorruptPlan.
// The crash tests use sticky plans to stop the engine mid-flush / mid-GC
// deterministically, then reopen the underlying FS and check recovery; the
// fault sweeps additionally use transient plans and read-path targeting;
// the corruption sweeps arm CorruptPlans to model bit rot.
type FailFS struct {
	inner FS

	mu       sync.Mutex
	armed    bool
	plan     FailPlan
	matched  int64           // matching ops observed since the last arm
	injected int64           // ops failed since the last arm
	locked   map[string]bool // dirs locked through this wrapper

	corruptArmed bool
	corrupt      CorruptPlan
	corrupted    int64 // reads that observed corrupt bytes since last arm
}

// NewFail wraps inner; the file system operates normally until Arm or
// ArmPlan is called.
func NewFail(inner FS) *FailFS {
	return &FailFS{inner: inner, locked: make(map[string]bool)}
}

// Arm allows n more mutating operations (writes, syncs, creates, renames,
// removes), then fails everything mutating — the sticky crash model.
// Equivalent to ArmPlan(FailPlan{Skip: n, Fail: -1}).
func (fs *FailFS) Arm(n int64) {
	fs.ArmPlan(FailPlan{Skip: n, Fail: -1})
}

// ArmPlan installs plan and resets the matched/injected counters.
func (fs *FailFS) ArmPlan(plan FailPlan) {
	if plan.Kinds == 0 {
		plan.Kinds = OpMutating
	}
	fs.mu.Lock()
	fs.armed = true
	fs.plan = plan
	fs.matched = 0
	fs.injected = 0
	fs.mu.Unlock()
}

// Disarm restores normal operation. Counters keep their values until the
// next arm, so a sweep can read them after stopping the campaign.
func (fs *FailFS) Disarm() {
	fs.mu.Lock()
	fs.armed = false
	fs.mu.Unlock()
}

// Failed reports whether at least one failure has been injected since the
// last arm.
func (fs *FailFS) Failed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.injected > 0
}

// MatchedOps returns how many operations matched the armed plan's Kinds
// and Pattern since the last arm (failed or not). A counting pass with
// Fail = 0 uses this to size a sweep.
func (fs *FailFS) MatchedOps() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.matched
}

// InjectedOps returns how many operations have failed since the last arm.
func (fs *FailFS) InjectedOps() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.injected
}

// ArmCorrupt installs plan: subsequent reads of matching files observe
// the flipped bytes (and truncated tail) it describes. The underlying
// bytes are untouched — DisarmCorrupt restores clean reads.
func (fs *FailFS) ArmCorrupt(plan CorruptPlan) {
	fs.mu.Lock()
	fs.corruptArmed = true
	fs.corrupt = plan
	fs.corrupted = 0
	fs.mu.Unlock()
}

// DisarmCorrupt restores clean reads. The CorruptedReads counter keeps
// its value until the next ArmCorrupt.
func (fs *FailFS) DisarmCorrupt() {
	fs.mu.Lock()
	fs.corruptArmed = false
	fs.mu.Unlock()
}

// CorruptedReads returns how many reads observed corrupt bytes since the
// last ArmCorrupt — zero means the armed corruption sat in a range no
// read touched (a sweep uses this to tell "not detected" from "not read").
func (fs *FailFS) CorruptedReads() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.corrupted
}

// corruptRange applies the armed corruption to p, which was read from
// name at offset off with n valid bytes. It returns the (possibly
// reduced) length and whether a truncation clamp makes the read end
// early.
func (fs *FailFS) corruptRange(name string, p []byte, off int64, n int) (int, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if !fs.corruptArmed || n <= 0 {
		return n, false
	}
	cp := fs.corrupt
	if cp.Pattern != "" {
		if ok, err := path.Match(cp.Pattern, filepath.Base(name)); err != nil || !ok {
			return n, false
		}
	}
	touched := false
	truncated := false
	if cp.TruncateAt > 0 && off+int64(n) > cp.TruncateAt {
		n = int(cp.TruncateAt - off)
		if n < 0 {
			n = 0
		}
		touched = true
		truncated = true
	}
	stride := cp.Stride
	if stride <= 0 {
		stride = 1
	}
	for k := 0; k < cp.Count; k++ {
		t := cp.Start + int64(k)*stride
		if t >= off && t < off+int64(n) {
			p[t-off] ^= 0xFF
			touched = true
		}
		if cp.Stride <= 0 {
			break
		}
	}
	if touched {
		fs.corrupted++
	}
	return n, truncated
}

// corruptSize clamps a reported file size to the armed truncation point.
func (fs *FailFS) corruptSize(name string, size int64) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if !fs.corruptArmed || fs.corrupt.TruncateAt <= 0 || size <= fs.corrupt.TruncateAt {
		return size
	}
	cp := fs.corrupt
	if cp.Pattern != "" {
		if ok, err := path.Match(cp.Pattern, filepath.Base(name)); err != nil || !ok {
			return size
		}
	}
	return cp.TruncateAt
}

// step runs one operation through the armed plan, returning the injected
// error when the operation falls inside the plan's failure window.
func (fs *FailFS) step(kind OpKind, name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if !fs.armed || fs.plan.Kinds&kind == 0 {
		return nil
	}
	if fs.plan.Pattern != "" {
		if ok, err := path.Match(fs.plan.Pattern, filepath.Base(name)); err != nil || !ok {
			return nil
		}
	}
	idx := fs.matched
	fs.matched++
	if idx < fs.plan.Skip {
		return nil
	}
	if fs.plan.Fail < 0 || idx-fs.plan.Skip < fs.plan.Fail {
		fs.injected++
		if fs.plan.Err != nil {
			return fs.plan.Err
		}
		return ErrInjected
	}
	return nil
}

func (fs *FailFS) Counters() *Counters { return fs.inner.Counters() }

func (fs *FailFS) Create(name string) (File, error) {
	if err := fs.step(OpCreate, name); err != nil {
		return nil, err
	}
	f, err := fs.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &failFile{f: f, fs: fs, name: name}, nil
}

func (fs *FailFS) Open(name string) (File, error) {
	if err := fs.step(OpOpen, name); err != nil {
		return nil, err
	}
	f, err := fs.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &failFile{f: f, fs: fs, name: name}, nil
}

func (fs *FailFS) Remove(name string) error {
	if err := fs.step(OpRemove, name); err != nil {
		return err
	}
	return fs.inner.Remove(name)
}

func (fs *FailFS) Rename(oldname, newname string) error {
	if err := fs.step(OpRename, newname); err != nil {
		return err
	}
	return fs.inner.Rename(oldname, newname)
}

func (fs *FailFS) List(dir string) ([]string, error) { return fs.inner.List(dir) }
func (fs *FailFS) MkdirAll(dir string) error         { return fs.inner.MkdirAll(dir) }
func (fs *FailFS) Exists(name string) bool           { return fs.inner.Exists(name) }

func (fs *FailFS) ReadFile(name string) ([]byte, error) {
	if err := fs.step(OpReadFile, name); err != nil {
		return nil, err
	}
	data, err := fs.inner.ReadFile(name)
	if err == nil {
		n, _ := fs.corruptRange(name, data, 0, len(data))
		data = data[:n]
	}
	return data, err
}

func (fs *FailFS) WriteFile(name string, data []byte) error {
	if err := fs.step(OpWriteFile, name); err != nil {
		return err
	}
	return fs.inner.WriteFile(name, data)
}

// SyncDir is a mutating op for failure-injection purposes: it publishes
// directory entries, so the crash sweeps must be able to kill the engine
// right before one.
func (fs *FailFS) SyncDir(dir string) error {
	if err := fs.step(OpSyncDir, dir); err != nil {
		return err
	}
	return fs.inner.SyncDir(dir)
}

// TryLockDir keeps its own lock table instead of forwarding to the inner
// FS: a FailFS models one process, and the crash tests "kill" it by
// abandoning the handle and reopening through the inner FS (or a fresh
// wrapper) — the dead process's locks must not survive it, exactly like
// flock. Two opens through the same wrapper still conflict.
func (fs *FailFS) TryLockDir(dir string) (DirLock, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.locked[dir] {
		return nil, fmt.Errorf("%w: %s", ErrLocked, dir)
	}
	fs.locked[dir] = true
	return &failDirLock{fs: fs, dir: dir}, nil
}

// DropLocks implements LockDropper: it releases the locks held through this
// wrapper and, when the inner FS supports it, those held directly on it.
func (fs *FailFS) DropLocks() {
	fs.mu.Lock()
	fs.locked = make(map[string]bool)
	fs.mu.Unlock()
	if ld, ok := fs.inner.(LockDropper); ok {
		ld.DropLocks()
	}
}

type failDirLock struct {
	fs       *FailFS
	dir      string
	released bool
}

func (l *failDirLock) Release() error {
	l.fs.mu.Lock()
	defer l.fs.mu.Unlock()
	if !l.released {
		delete(l.fs.locked, l.dir)
		l.released = true
	}
	return nil
}

type failFile struct {
	f    File
	fs   *FailFS
	name string
}

func (f *failFile) Write(p []byte) (int, error) {
	if err := f.fs.step(OpWrite, f.name); err != nil {
		return 0, err
	}
	return f.f.Write(p)
}

func (f *failFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.fs.step(OpReadAt, f.name); err != nil {
		return 0, err
	}
	n, err := f.f.ReadAt(p, off)
	n, truncated := f.fs.corruptRange(f.name, p, off, n)
	if truncated && err == nil {
		err = io.EOF
	}
	return n, err
}

func (f *failFile) Close() error { return f.f.Close() }

func (f *failFile) Sync() error {
	if err := f.fs.step(OpSync, f.name); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *failFile) Size() (int64, error) {
	size, err := f.f.Size()
	if err == nil {
		size = f.fs.corruptSize(f.name, size)
	}
	return size, err
}
