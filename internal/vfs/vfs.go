// Package vfs provides a minimal file-system abstraction used by every
// storage component in this repository.
//
// Two concerns motivate the indirection instead of calling package os
// directly:
//
//   - I/O accounting: the write/read-amplification experiments (DESIGN.md,
//     tab-io) need the logical bytes moved by the engine, independent of the
//     page cache, so every File counts its traffic into shared Counters.
//   - Failure injection: the crash-consistency tests kill the engine at a
//     chosen write and verify recovery; FailFS implements that determinism.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Counters accumulates logical I/O performed through a FS. All fields are
// manipulated atomically and may be read while the FS is in use.
type Counters struct {
	BytesWritten atomic.Int64
	BytesRead    atomic.Int64
	WriteOps     atomic.Int64
	ReadOps      atomic.Int64
	Syncs        atomic.Int64
	DirSyncs     atomic.Int64
	FilesCreated atomic.Int64
	FilesDeleted atomic.Int64
}

// Snapshot returns a plain-value copy of the counters.
func (c *Counters) Snapshot() CounterSnapshot {
	return CounterSnapshot{
		BytesWritten: c.BytesWritten.Load(),
		BytesRead:    c.BytesRead.Load(),
		WriteOps:     c.WriteOps.Load(),
		ReadOps:      c.ReadOps.Load(),
		Syncs:        c.Syncs.Load(),
		DirSyncs:     c.DirSyncs.Load(),
		FilesCreated: c.FilesCreated.Load(),
		FilesDeleted: c.FilesDeleted.Load(),
	}
}

// CounterSnapshot is an immutable copy of Counters.
type CounterSnapshot struct {
	BytesWritten int64
	BytesRead    int64
	WriteOps     int64
	ReadOps      int64
	Syncs        int64
	DirSyncs     int64
	FilesCreated int64
	FilesDeleted int64
}

// Sub returns the delta s - old, field by field.
func (s CounterSnapshot) Sub(old CounterSnapshot) CounterSnapshot {
	return CounterSnapshot{
		BytesWritten: s.BytesWritten - old.BytesWritten,
		BytesRead:    s.BytesRead - old.BytesRead,
		WriteOps:     s.WriteOps - old.WriteOps,
		ReadOps:      s.ReadOps - old.ReadOps,
		Syncs:        s.Syncs - old.Syncs,
		DirSyncs:     s.DirSyncs - old.DirSyncs,
		FilesCreated: s.FilesCreated - old.FilesCreated,
		FilesDeleted: s.FilesDeleted - old.FilesDeleted,
	}
}

func (s CounterSnapshot) String() string {
	return fmt.Sprintf("written=%d read=%d wops=%d rops=%d syncs=%d dirsyncs=%d",
		s.BytesWritten, s.BytesRead, s.WriteOps, s.ReadOps, s.Syncs, s.DirSyncs)
}

// File is the subset of *os.File behaviour the storage layers need.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	// Sync flushes the file's contents to stable storage.
	Sync() error
	// Size reports the current file length in bytes.
	Size() (int64, error)
}

// FS abstracts a directory-tree file system.
type FS interface {
	// Create truncates/creates the named file for appending writes.
	Create(name string) (File, error)
	// Open opens the named file for random reads.
	Open(name string) (File, error)
	// Remove deletes the named file.
	Remove(name string) error
	// Rename atomically renames oldname to newname.
	Rename(oldname, newname string) error
	// List returns the sorted base names of entries in dir.
	List(dir string) ([]string, error)
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Exists reports whether the named file exists.
	Exists(name string) bool
	// ReadFile reads the whole named file.
	ReadFile(name string) ([]byte, error)
	// WriteFile atomically replaces the named file with data
	// (write temp + fsync + rename).
	WriteFile(name string, data []byte) error
	// SyncDir fsyncs the directory itself, making the Create/Rename/Remove
	// of entries inside it durable. Fsyncing a file persists its contents
	// but not the directory entry pointing at it; every publish point
	// (manifest swap, table publish, WAL rotation, log finish) must call
	// this before declaring the new file durable.
	SyncDir(dir string) error
	// TryLockDir acquires an exclusive advisory lock on dir (creating a
	// LOCK file inside it on real file systems), so that at most one live
	// database handle owns the directory at a time. It returns ErrLocked —
	// without blocking — when the lock is already held. The lock dies with
	// the owning process (flock semantics); Release frees it earlier.
	TryLockDir(dir string) (DirLock, error)
	// Counters exposes the accumulated I/O statistics of this FS.
	Counters() *Counters
}

// LockFileName is the name of the lock file TryLockDir maintains inside the
// locked directory on OS-backed file systems (LevelDB's convention).
const LockFileName = "LOCK"

// ErrLocked is returned by TryLockDir when another live FS handle (for the
// OS file system: another process or another open handle) already holds the
// named directory's lock.
var ErrLocked = errors.New("vfs: directory already locked")

// DirLock is an exclusive advisory lock on a directory, obtained from
// FS.TryLockDir. Release frees it; releasing twice is a no-op.
type DirLock interface {
	Release() error
}

// Linker is optionally implemented by file systems that support hard links.
// Backup uses it to publish immutable table files into a checkpoint directory
// without copying; callers must fall back to a byte copy when the FS does not
// implement it (or when Link fails, e.g. across devices).
type Linker interface {
	Link(oldname, newname string) error
}

// Crasher is implemented by file systems that can simulate a power loss:
// Crash discards every directory entry that was not made durable via
// SyncDir and truncates surviving files to their last Sync'd length.
type Crasher interface {
	Crash()
}

// LockDropper is implemented by the test file systems. DropLocks releases
// every directory lock held through this handle — simulating the death of
// the process(es) that acquired them (flocks die with their owner) without
// altering any file data the way Crash does. Crash tests that abandon a DB
// handle and reopen the same FS call this at the simulated kill point.
type LockDropper interface {
	DropLocks()
}

// ---------------------------------------------------------------------------
// OS-backed implementation.

// osFS implements FS over the real file system.
type osFS struct {
	counters Counters
}

// NewOS returns an FS backed by the operating system.
func NewOS() FS { return &osFS{} }

func (fs *osFS) Counters() *Counters { return &fs.counters }

func (fs *osFS) Create(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	fs.counters.FilesCreated.Add(1)
	return &osFile{f: f, c: &fs.counters}, nil
}

func (fs *osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return &osFile{f: f, c: &fs.counters}, nil
}

func (fs *osFS) Remove(name string) error {
	if err := os.Remove(name); err != nil {
		return err
	}
	fs.counters.FilesDeleted.Add(1)
	return nil
}

func (fs *osFS) Rename(oldname, newname string) error {
	return os.Rename(oldname, newname)
}

// Link implements Linker via hard links (immutable-file checkpoints).
func (fs *osFS) Link(oldname, newname string) error {
	return os.Link(oldname, newname)
}

func (fs *osFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (fs *osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (fs *osFS) Exists(name string) bool {
	_, err := os.Stat(name)
	return err == nil
}

func (fs *osFS) ReadFile(name string) ([]byte, error) {
	b, err := os.ReadFile(name)
	if err == nil {
		fs.counters.BytesRead.Add(int64(len(b)))
		fs.counters.ReadOps.Add(1)
	}
	return b, err
}

func (fs *osFS) WriteFile(name string, data []byte) error {
	tmp := name + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	fs.counters.BytesWritten.Add(int64(len(data)))
	fs.counters.WriteOps.Add(1)
	fs.counters.Syncs.Add(1)
	return os.Rename(tmp, name)
}

func (fs *osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fs.counters.DirSyncs.Add(1)
	return nil
}

type osFile struct {
	f *os.File
	c *Counters
}

func (f *osFile) Write(p []byte) (int, error) {
	n, err := f.f.Write(p)
	f.c.BytesWritten.Add(int64(n))
	f.c.WriteOps.Add(1)
	return n, err
}

func (f *osFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.f.ReadAt(p, off)
	f.c.BytesRead.Add(int64(n))
	f.c.ReadOps.Add(1)
	return n, err
}

func (f *osFile) Close() error { return f.f.Close() }

func (f *osFile) Sync() error {
	f.c.Syncs.Add(1)
	return f.f.Sync()
}

func (f *osFile) Size() (int64, error) {
	st, err := f.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// ---------------------------------------------------------------------------
// In-memory implementation (tests and benchmarks that should not touch disk).

// memFS implements FS in process memory. It is safe for concurrent use.
//
// It models directory-entry durability: the live files map reflects what an
// uncrashed process observes, while durable records the entries captured by
// SyncDir. Crash rebuilds files from durable and truncates each survivor to
// its last Sync'd length, simulating a power loss.
type memFS struct {
	mu       sync.Mutex
	files    map[string]*memData
	durable  map[string]*memData
	dirs     map[string]bool
	locked   map[string]bool // dirs with a live TryLockDir lock
	counters Counters
}

type memData struct {
	mu     sync.Mutex
	data   []byte
	synced int // length that has been "fsynced"
}

// NewMem returns an FS that keeps all files in memory.
func NewMem() FS {
	return &memFS{
		files:   make(map[string]*memData),
		durable: make(map[string]*memData),
		dirs:    map[string]bool{".": true, "/": true},
		locked:  make(map[string]bool),
	}
}

// TryLockDir records the lock in an in-process table: handles sharing this
// memFS (two "processes" pointed at one directory) conflict, while a fresh
// wrapper over the same files — how the crash tests model a process death —
// starts with a clean table, matching flock's die-with-the-process behavior.
func (fs *memFS) TryLockDir(dir string) (DirLock, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir = filepath.Clean(dir)
	if fs.locked[dir] {
		return nil, fmt.Errorf("%w: %s", ErrLocked, dir)
	}
	fs.locked[dir] = true
	return &memDirLock{fs: fs, dir: dir}, nil
}

// DropLocks implements LockDropper.
func (fs *memFS) DropLocks() {
	fs.mu.Lock()
	fs.locked = make(map[string]bool)
	fs.mu.Unlock()
}

type memDirLock struct {
	fs       *memFS
	dir      string
	released bool
}

func (l *memDirLock) Release() error {
	l.fs.mu.Lock()
	defer l.fs.mu.Unlock()
	if !l.released {
		delete(l.fs.locked, l.dir)
		l.released = true
	}
	return nil
}

func (fs *memFS) Counters() *Counters { return &fs.counters }

func (fs *memFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d := &memData{}
	fs.files[filepath.Clean(name)] = d
	fs.counters.FilesCreated.Add(1)
	return &memFile{d: d, c: &fs.counters, writable: true}, nil
}

func (fs *memFS) Open(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, ok := fs.files[filepath.Clean(name)]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return &memFile{d: d, c: &fs.counters}, nil
}

func (fs *memFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	name = filepath.Clean(name)
	if _, ok := fs.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(fs.files, name)
	fs.counters.FilesDeleted.Add(1)
	return nil
}

func (fs *memFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	oldname, newname = filepath.Clean(oldname), filepath.Clean(newname)
	d, ok := fs.files[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	fs.files[newname] = d
	delete(fs.files, oldname)
	return nil
}

func (fs *memFS) List(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir = filepath.Clean(dir)
	var names []string
	seen := map[string]bool{}
	for name := range fs.files {
		if filepath.Dir(name) == dir {
			base := filepath.Base(name)
			if !seen[base] {
				seen[base] = true
				names = append(names, base)
			}
		}
	}
	for d := range fs.dirs {
		if filepath.Dir(d) == dir && d != dir {
			base := filepath.Base(d)
			if !seen[base] {
				seen[base] = true
				names = append(names, base)
			}
		}
	}
	sort.Strings(names)
	return names, nil
}

func (fs *memFS) MkdirAll(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir = filepath.Clean(dir)
	for dir != "." && dir != "/" && dir != "" {
		fs.dirs[dir] = true
		dir = filepath.Dir(dir)
	}
	return nil
}

func (fs *memFS) Exists(name string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	name = filepath.Clean(name)
	if _, ok := fs.files[name]; ok {
		return true
	}
	return fs.dirs[name]
}

func (fs *memFS) ReadFile(name string) ([]byte, error) {
	fs.mu.Lock()
	d, ok := fs.files[filepath.Clean(name)]
	fs.mu.Unlock()
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]byte, len(d.data))
	copy(out, d.data)
	fs.counters.BytesRead.Add(int64(len(out)))
	fs.counters.ReadOps.Add(1)
	return out, nil
}

func (fs *memFS) WriteFile(name string, data []byte) error {
	f, err := fs.Create(name)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

func (fs *memFS) SyncDir(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir = filepath.Clean(dir)
	for name, d := range fs.files {
		if filepath.Dir(name) == dir {
			fs.durable[name] = d
		}
	}
	for name := range fs.durable {
		if filepath.Dir(name) == dir {
			if _, live := fs.files[name]; !live {
				delete(fs.durable, name)
			}
		}
	}
	fs.counters.DirSyncs.Add(1)
	return nil
}

// Crash simulates a power loss: only entries captured by SyncDir survive,
// and each survivor keeps only the bytes covered by its last file Sync.
// Directories themselves are kept (MkdirAll is treated as durable; the
// engine creates its directory tree once at open).
func (fs *memFS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	files := make(map[string]*memData, len(fs.durable))
	for name, d := range fs.durable {
		d.mu.Lock()
		nd := &memData{data: append([]byte(nil), d.data[:d.synced]...)}
		nd.synced = len(nd.data)
		d.mu.Unlock()
		files[name] = nd
	}
	fs.files = files
	fs.durable = make(map[string]*memData, len(files))
	for name, d := range files {
		fs.durable[name] = d
	}
	// Power loss kills every process holding a lock; flocks die with them.
	fs.locked = make(map[string]bool)
}

type memFile struct {
	d        *memData
	c        *Counters
	writable bool
	closed   bool
}

func (f *memFile) Write(p []byte) (int, error) {
	if f.closed {
		return 0, os.ErrClosed
	}
	if !f.writable {
		return 0, errors.New("vfs: file opened read-only")
	}
	f.d.mu.Lock()
	f.d.data = append(f.d.data, p...)
	f.d.mu.Unlock()
	f.c.BytesWritten.Add(int64(len(p)))
	f.c.WriteOps.Add(1)
	return len(p), nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if off >= int64(len(f.d.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.d.data[off:])
	f.c.BytesRead.Add(int64(n))
	f.c.ReadOps.Add(1)
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Close() error { f.closed = true; return nil }

func (f *memFile) Sync() error {
	f.d.mu.Lock()
	f.d.synced = len(f.d.data)
	f.d.mu.Unlock()
	f.c.Syncs.Add(1)
	return nil
}

func (f *memFile) Size() (int64, error) {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	return int64(len(f.d.data)), nil
}
