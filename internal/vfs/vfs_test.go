package vfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// fsCases runs f against both implementations.
func fsCases(t *testing.T, f func(t *testing.T, fs FS, dir string)) {
	t.Run("mem", func(t *testing.T) {
		fs := NewMem()
		if err := fs.MkdirAll("db"); err != nil {
			t.Fatal(err)
		}
		f(t, fs, "db")
	})
	t.Run("os", func(t *testing.T) {
		f(t, NewOS(), t.TempDir())
	})
}

func TestCreateWriteRead(t *testing.T) {
	fsCases(t, func(t *testing.T, fs FS, dir string) {
		name := filepath.Join(dir, "a.dat")
		f, err := fs.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("hello ")); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("world")); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if sz, _ := f.Size(); sz != 11 {
			t.Fatalf("size=%d want 11", sz)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}

		r, err := fs.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		buf := make([]byte, 5)
		if _, err := r.ReadAt(buf, 6); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if string(buf) != "world" {
			t.Fatalf("got %q", buf)
		}
	})
}

func TestReadAtPastEOF(t *testing.T) {
	fsCases(t, func(t *testing.T, fs FS, dir string) {
		name := filepath.Join(dir, "b.dat")
		f, _ := fs.Create(name)
		f.Write([]byte("abc"))
		f.Close()
		r, _ := fs.Open(name)
		defer r.Close()
		buf := make([]byte, 10)
		n, err := r.ReadAt(buf, 1)
		if n != 2 || err != io.EOF {
			t.Fatalf("n=%d err=%v, want 2, io.EOF", n, err)
		}
		if _, err := r.ReadAt(buf, 100); err != io.EOF {
			t.Fatalf("err=%v want io.EOF", err)
		}
	})
}

func TestRenameRemoveExistsList(t *testing.T) {
	fsCases(t, func(t *testing.T, fs FS, dir string) {
		a := filepath.Join(dir, "a")
		b := filepath.Join(dir, "b")
		f, _ := fs.Create(a)
		f.Write([]byte("x"))
		f.Close()
		if !fs.Exists(a) {
			t.Fatal("a should exist")
		}
		if err := fs.Rename(a, b); err != nil {
			t.Fatal(err)
		}
		if fs.Exists(a) || !fs.Exists(b) {
			t.Fatal("rename did not move the file")
		}
		names, err := fs.List(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(names) != 1 || names[0] != "b" {
			t.Fatalf("List=%v", names)
		}
		if err := fs.Remove(b); err != nil {
			t.Fatal(err)
		}
		if fs.Exists(b) {
			t.Fatal("b should be gone")
		}
		if err := fs.Remove(b); err == nil {
			t.Fatal("double-remove should fail")
		}
	})
}

func TestWriteFileReadFile(t *testing.T) {
	fsCases(t, func(t *testing.T, fs FS, dir string) {
		name := filepath.Join(dir, "c")
		if err := fs.WriteFile(name, []byte("payload")); err != nil {
			t.Fatal(err)
		}
		got, err := fs.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "payload" {
			t.Fatalf("got %q", got)
		}
		if _, err := fs.ReadFile(filepath.Join(dir, "missing")); !os.IsNotExist(err) {
			t.Fatalf("want not-exist, got %v", err)
		}
	})
}

func TestCounters(t *testing.T) {
	fs := NewMem()
	fs.MkdirAll("d")
	before := fs.Counters().Snapshot()
	f, _ := fs.Create("d/x")
	f.Write(make([]byte, 100))
	f.Sync()
	f.Close()
	r, _ := fs.Open("d/x")
	buf := make([]byte, 40)
	r.ReadAt(buf, 0)
	r.Close()
	delta := fs.Counters().Snapshot().Sub(before)
	if delta.BytesWritten != 100 {
		t.Fatalf("BytesWritten=%d", delta.BytesWritten)
	}
	if delta.BytesRead != 40 {
		t.Fatalf("BytesRead=%d", delta.BytesRead)
	}
	if delta.Syncs != 1 || delta.FilesCreated != 1 {
		t.Fatalf("delta=%v", delta)
	}
	if delta.String() == "" {
		t.Fatal("empty snapshot string")
	}
}

func TestMemFSOpenMissing(t *testing.T) {
	fs := NewMem()
	if _, err := fs.Open("nope"); !os.IsNotExist(err) {
		t.Fatalf("want not-exist, got %v", err)
	}
}

func TestMemFSReadOnly(t *testing.T) {
	fs := NewMem()
	f, _ := fs.Create("x")
	f.Write([]byte("ab"))
	f.Close()
	r, _ := fs.Open("x")
	if _, err := r.Write([]byte("no")); err == nil {
		t.Fatal("write through read-only handle succeeded")
	}
}

func TestFailFS(t *testing.T) {
	inner := NewMem()
	fs := NewFail(inner)
	fs.MkdirAll("d")

	// Unarmed: works normally.
	f, err := fs.Create("d/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("1")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Arm with 2 credits: create consumes 1, first write consumes 1,
	// second write fails.
	fs.Arm(2)
	f, err = fs.Create("d/b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("boom")); err != ErrInjected {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if !fs.Failed() {
		t.Fatal("Failed() should report true")
	}
	// Everything mutating keeps failing.
	if _, err := fs.Create("d/c"); err != ErrInjected {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if err := fs.Rename("d/a", "d/z"); err != ErrInjected {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	// Reads still work (we inspect the "disk" post-crash).
	if !fs.Exists("d/a") {
		t.Fatal("pre-crash file lost")
	}
	fs.Disarm()
	if _, err := fs.Create("d/c"); err != nil {
		t.Fatalf("disarm did not restore operation: %v", err)
	}
}

// TestSyncDirCrashModel exercises the memFS power-loss model: a file whose
// bytes were Sync'd but whose directory entry was never SyncDir'd vanishes
// at Crash; a SyncDir'd file survives truncated to its last file Sync; a
// Remove only sticks across a crash after the directory is synced again.
func TestSyncDirCrashModel(t *testing.T) {
	fs := NewMem()
	if err := fs.MkdirAll("db"); err != nil {
		t.Fatal(err)
	}

	// published: bytes synced, entry synced, then a tail appended without
	// either.
	f, err := fs.Create("db/published")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("durable"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("db"); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("-lost-tail"))
	f.Close()

	// orphan: fully synced bytes, but the directory entry never made
	// durable — the classic missing-dir-fsync bug.
	if err := fs.WriteFile("db/orphan", []byte("gone")); err != nil {
		t.Fatal(err)
	}

	fs.(Crasher).Crash()
	if fs.Exists("db/orphan") {
		t.Fatal("file with unsynced directory entry survived the crash")
	}
	got, err := fs.ReadFile("db/published")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "durable" {
		t.Fatalf("survivor = %q, want synced prefix only", got)
	}

	// A Remove without a directory sync resurrects at the next crash...
	if err := fs.Remove("db/published"); err != nil {
		t.Fatal(err)
	}
	fs.(Crasher).Crash()
	if !fs.Exists("db/published") {
		t.Fatal("unsynced Remove stuck across a crash")
	}
	// ...and stays gone once the directory is synced.
	if err := fs.Remove("db/published"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("db"); err != nil {
		t.Fatal(err)
	}
	fs.(Crasher).Crash()
	if fs.Exists("db/published") {
		t.Fatal("synced Remove undone by crash")
	}
}

// TestSyncDirCounted checks both implementations count directory syncs.
func TestSyncDirCounted(t *testing.T) {
	fsCases(t, func(t *testing.T, fs FS, dir string) {
		before := fs.Counters().Snapshot().DirSyncs
		if err := fs.SyncDir(dir); err != nil {
			t.Fatal(err)
		}
		if got := fs.Counters().Snapshot().DirSyncs; got != before+1 {
			t.Fatalf("DirSyncs = %d, want %d", got, before+1)
		}
	})
}

// TestFailFSSyncDir verifies SyncDir draws from the failure budget like
// every other mutating operation.
func TestFailFSSyncDir(t *testing.T) {
	fs := NewFail(NewMem())
	if err := fs.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	fs.Arm(1)
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("d"); err != ErrInjected {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	fs.Disarm()
}

// TestTryLockDir exercises the exclusive directory lock on both
// implementations: second acquisition fails with ErrLocked, Release makes
// the lock available again, and double-Release is harmless.
func TestTryLockDir(t *testing.T) {
	fsCases(t, func(t *testing.T, fs FS, dir string) {
		l1, err := fs.TryLockDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs.TryLockDir(dir); !errors.Is(err, ErrLocked) {
			t.Fatalf("second lock: want ErrLocked, got %v", err)
		}
		// Another directory is independent.
		other := filepath.Join(dir, "sub")
		if err := fs.MkdirAll(other); err != nil {
			t.Fatal(err)
		}
		l2, err := fs.TryLockDir(other)
		if err != nil {
			t.Fatalf("independent dir: %v", err)
		}
		if err := l2.Release(); err != nil {
			t.Fatal(err)
		}
		if err := l1.Release(); err != nil {
			t.Fatal(err)
		}
		if err := l1.Release(); err != nil {
			t.Fatalf("double release: %v", err)
		}
		l3, err := fs.TryLockDir(dir)
		if err != nil {
			t.Fatalf("relock after release: %v", err)
		}
		l3.Release()
	})
}

// TestTryLockDirDiesWithProcess models process death for both test file
// systems: memFS.Crash (power loss) and DropLocks (kill) both free the
// lock, and a FailFS wrapper's locks are invisible to a fresh wrapper over
// the same inner FS (a new process).
func TestTryLockDirDiesWithProcess(t *testing.T) {
	fs := NewMem()
	if err := fs.MkdirAll("db"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.TryLockDir("db"); err != nil {
		t.Fatal(err)
	}
	fs.(Crasher).Crash()
	l, err := fs.TryLockDir("db")
	if err != nil {
		t.Fatalf("lock after crash: %v", err)
	}
	l.Release()

	ffs := NewFail(fs)
	if _, err := ffs.TryLockDir("db"); err != nil {
		t.Fatal(err)
	}
	if _, err := ffs.TryLockDir("db"); !errors.Is(err, ErrLocked) {
		t.Fatalf("same wrapper: want ErrLocked, got %v", err)
	}
	// A fresh wrapper over the same files is a new process: no conflict.
	l2, err := NewFail(fs).TryLockDir("db")
	if err != nil {
		t.Fatalf("fresh wrapper: %v", err)
	}
	l2.Release()
	ffs.DropLocks()
	l3, err := ffs.TryLockDir("db")
	if err != nil {
		t.Fatalf("after DropLocks: %v", err)
	}
	l3.Release()
}
