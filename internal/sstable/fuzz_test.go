package sstable

import (
	"testing"

	"unikv/internal/record"
	"unikv/internal/vfs"
)

// FuzzOpen: arbitrary file bytes must never panic Open or subsequent reads.
func FuzzOpen(f *testing.F) {
	// Seed with a real table.
	fs := vfs.NewMem()
	fh, _ := fs.Create("seed")
	b := NewBuilder(fh, BuilderOptions{BloomBitsPerKey: 10})
	for i := 0; i < 50; i++ {
		b.Add(record.Record{Key: []byte{byte(i)}, Seq: uint64(i + 1), Kind: record.KindSet, Value: []byte("v")})
	}
	b.Finish()
	fh.Close()
	seed, _ := fs.ReadFile("seed")
	f.Add(seed)
	f.Add([]byte{})
	f.Add(make([]byte, footerLen))

	f.Fuzz(func(t *testing.T, data []byte) {
		fs := vfs.NewMem()
		fs.WriteFile("t.sst", data)
		fh, _ := fs.Open("t.sst")
		r, err := Open(fh)
		if err != nil {
			fh.Close()
			return
		}
		defer r.Close()
		// Exercise the read paths; they may error but must not panic.
		r.Get([]byte("k"))
		r.MayContain([]byte("k"))
		it := r.NewIterator()
		n := 0
		for ok := it.First(); ok && n < 10000; ok = it.Next() {
			n++
		}
		it.Seek([]byte("zz"))
	})
}
