package sstable

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"unikv/internal/record"
	"unikv/internal/vfs"
)

func buildTable(t *testing.T, fs vfs.FS, name string, opts BuilderOptions, recs []record.Record) *Reader {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(f, opts)
	for _, r := range recs {
		b.Add(r)
	}
	props, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if props.Count != len(recs) {
		t.Fatalf("props.Count=%d want %d", props.Count, len(recs))
	}
	rf, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(rf)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func sortedRecords(n int, valSize int) []record.Record {
	recs := make([]record.Record, n)
	for i := 0; i < n; i++ {
		recs[i] = record.Record{
			Key:   []byte(fmt.Sprintf("key-%06d", i)),
			Seq:   uint64(i + 1),
			Kind:  record.KindSet,
			Value: bytes.Repeat([]byte{byte('a' + i%26)}, valSize),
		}
	}
	return recs
}

func TestBuildAndGet(t *testing.T) {
	fs := vfs.NewMem()
	recs := sortedRecords(1000, 64)
	r := buildTable(t, fs, "t.sst", BuilderOptions{}, recs)
	defer r.Close()

	if r.Count() != 1000 {
		t.Fatalf("Count=%d", r.Count())
	}
	if string(r.Smallest()) != "key-000000" || string(r.Largest()) != "key-000999" {
		t.Fatalf("bounds %q..%q", r.Smallest(), r.Largest())
	}
	if r.MinSeq() != 1 || r.MaxSeq() != 1000 {
		t.Fatalf("seq bounds %d..%d", r.MinSeq(), r.MaxSeq())
	}
	for _, i := range []int{0, 1, 499, 998, 999} {
		got, ok, err := r.Get(recs[i].Key)
		if err != nil || !ok {
			t.Fatalf("Get(%q): ok=%v err=%v", recs[i].Key, ok, err)
		}
		if !bytes.Equal(got.Value, recs[i].Value) || got.Seq != recs[i].Seq {
			t.Fatalf("Get(%q) wrong record", recs[i].Key)
		}
	}
	for _, miss := range []string{"key-0005000", "a", "zzz", "key-"} {
		if _, ok, _ := r.Get([]byte(miss)); ok {
			t.Fatalf("found phantom key %q", miss)
		}
	}
}

func TestMultipleVersions(t *testing.T) {
	fs := vfs.NewMem()
	recs := []record.Record{
		{Key: []byte("k"), Seq: 9, Kind: record.KindSet, Value: []byte("new")},
		{Key: []byte("k"), Seq: 3, Kind: record.KindSet, Value: []byte("old")},
	}
	r := buildTable(t, fs, "t.sst", BuilderOptions{}, recs)
	defer r.Close()
	got, ok, err := r.Get([]byte("k"))
	if err != nil || !ok || string(got.Value) != "new" {
		t.Fatalf("got %+v ok=%v err=%v", got, ok, err)
	}
}

func TestIterator(t *testing.T) {
	fs := vfs.NewMem()
	recs := sortedRecords(2500, 40)
	r := buildTable(t, fs, "t.sst", BuilderOptions{}, recs)
	defer r.Close()

	it := r.NewIterator()
	i := 0
	for ok := it.First(); ok; ok = it.Next() {
		if !bytes.Equal(it.Record().Key, recs[i].Key) {
			t.Fatalf("iter key %d mismatch: %q", i, it.Record().Key)
		}
		i++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if i != len(recs) {
		t.Fatalf("iterated %d of %d", i, len(recs))
	}
}

func TestIteratorSeek(t *testing.T) {
	fs := vfs.NewMem()
	recs := sortedRecords(300, 128)
	r := buildTable(t, fs, "t.sst", BuilderOptions{}, recs)
	defer r.Close()

	it := r.NewIterator()
	if !it.Seek([]byte("key-000100")) || string(it.Record().Key) != "key-000100" {
		t.Fatalf("Seek exact failed: %q", it.Record().Key)
	}
	if !it.Seek([]byte("key-0000995")) || string(it.Record().Key) != "key-000100" {
		t.Fatalf("Seek between failed: %q", it.Record().Key)
	}
	if !it.Seek([]byte("a")) || string(it.Record().Key) != "key-000000" {
		t.Fatalf("Seek before-start failed: %q", it.Record().Key)
	}
	if it.Seek([]byte("zzz")) {
		t.Fatal("Seek past end should be invalid")
	}
	// Seek then scan to end.
	n := 0
	for ok := it.Seek([]byte("key-000290")); ok; ok = it.Next() {
		n++
	}
	if n != 10 {
		t.Fatalf("tail scan got %d records", n)
	}
}

func TestBloomFilter(t *testing.T) {
	fs := vfs.NewMem()
	recs := sortedRecords(500, 16)
	r := buildTable(t, fs, "t.sst", BuilderOptions{BloomBitsPerKey: 10}, recs)
	defer r.Close()

	for _, rec := range recs {
		if !r.MayContain(rec.Key) {
			t.Fatalf("bloom false negative for %q", rec.Key)
		}
	}
	fp := 0
	const probes = 2000
	for i := 0; i < probes; i++ {
		if r.MayContain([]byte(fmt.Sprintf("absent-%06d", i))) {
			fp++
		}
	}
	if fp > probes/10 {
		t.Fatalf("bloom false positive rate too high: %d/%d", fp, probes)
	}
	// Lookup through the filter still behaves.
	if _, ok, _ := r.Get([]byte("absent-xyz")); ok {
		t.Fatal("phantom key")
	}
}

func TestNoBloomWhenDisabled(t *testing.T) {
	fs := vfs.NewMem()
	r := buildTable(t, fs, "t.sst", BuilderOptions{}, sortedRecords(10, 8))
	defer r.Close()
	if !r.MayContain([]byte("whatever")) {
		t.Fatal("MayContain must be true without a filter")
	}
}

func TestValuePointerRecords(t *testing.T) {
	fs := vfs.NewMem()
	ptr := record.ValuePtr{Partition: 1, LogNum: 7, Offset: 4096, Length: 100}
	recs := []record.Record{
		{Key: []byte("a"), Seq: 1, Kind: record.KindSetPtr, Value: ptr.Encode(nil)},
		{Key: []byte("b"), Seq: 2, Kind: record.KindDelete},
	}
	r := buildTable(t, fs, "t.sst", BuilderOptions{}, recs)
	defer r.Close()
	got, ok, err := r.Get([]byte("a"))
	if err != nil || !ok || got.Kind != record.KindSetPtr {
		t.Fatalf("%+v ok=%v err=%v", got, ok, err)
	}
	decoded, err := record.DecodePtr(got.Value)
	if err != nil || decoded != ptr {
		t.Fatalf("pointer mismatch: %v %v", decoded, err)
	}
	got, ok, _ = r.Get([]byte("b"))
	if !ok || got.Kind != record.KindDelete {
		t.Fatal("tombstone lost")
	}
}

func TestCorruptionDetected(t *testing.T) {
	fs := vfs.NewMem()
	recs := sortedRecords(200, 64)
	f, _ := fs.Create("t.sst")
	b := NewBuilder(f, BuilderOptions{})
	for _, r := range recs {
		b.Add(r)
	}
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	data, _ := fs.ReadFile("t.sst")

	// Flip a byte in the first data block.
	corrupt := append([]byte(nil), data...)
	corrupt[10] ^= 0xff
	fs.WriteFile("bad.sst", corrupt)
	rf, _ := fs.Open("bad.sst")
	r, err := Open(rf)
	if err == nil {
		// Index/meta were fine; the data-block read must fail.
		if _, _, err := r.Get(recs[0].Key); err == nil {
			t.Fatal("corrupt data block read succeeded")
		}
		r.Close()
	}

	// Truncate the footer.
	fs.WriteFile("short.sst", data[:len(data)-5])
	rf2, _ := fs.Open("short.sst")
	if _, err := Open(rf2); err == nil {
		t.Fatal("truncated table opened")
	}

	// Empty file.
	fs.WriteFile("empty.sst", nil)
	rf3, _ := fs.Open("empty.sst")
	if _, err := Open(rf3); err == nil {
		t.Fatal("empty table opened")
	}
}

func TestEstimatedSizeGrows(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("t.sst")
	b := NewBuilder(f, BuilderOptions{})
	if b.EstimatedSize() != 0 {
		t.Fatal("nonzero initial size")
	}
	b.Add(record.Record{Key: []byte("k"), Seq: 1, Kind: record.KindSet, Value: make([]byte, 100)})
	if b.EstimatedSize() < 100 {
		t.Fatalf("EstimatedSize=%d", b.EstimatedSize())
	}
	if b.Count() != 1 {
		t.Fatalf("Count=%d", b.Count())
	}
	b.Finish()
	f.Close()
}

// TestQuickRoundTrip: random sorted key sets round-trip through the table
// and agree with a model on Get + full iteration.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, bloom bool) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := rnd.Intn(400) + 1
		keys := map[string]bool{}
		for len(keys) < n {
			keys[fmt.Sprintf("k%08x", rnd.Uint32())] = true
		}
		var sorted []string
		for k := range keys {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		var recs []record.Record
		for i, k := range sorted {
			v := make([]byte, rnd.Intn(200))
			rnd.Read(v)
			recs = append(recs, record.Record{Key: []byte(k), Seq: uint64(i + 1), Kind: record.KindSet, Value: v})
		}
		opts := BuilderOptions{}
		if bloom {
			opts.BloomBitsPerKey = 10
		}
		fs := vfs.NewMem()
		wf, _ := fs.Create("q.sst")
		b := NewBuilder(wf, opts)
		for _, r := range recs {
			b.Add(r)
		}
		if _, err := b.Finish(); err != nil {
			return false
		}
		wf.Close()
		rf, _ := fs.Open("q.sst")
		r, err := Open(rf)
		if err != nil {
			return false
		}
		defer r.Close()
		for _, rec := range recs {
			got, ok, err := r.Get(rec.Key)
			if err != nil || !ok || !bytes.Equal(got.Value, rec.Value) {
				return false
			}
		}
		it := r.NewIterator()
		i := 0
		for ok := it.First(); ok; ok = it.Next() {
			if !bytes.Equal(it.Record().Key, recs[i].Key) {
				return false
			}
			i++
		}
		return i == len(recs) && it.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockReadsCounter(t *testing.T) {
	fs := vfs.NewMem()
	r := buildTable(t, fs, "t.sst", BuilderOptions{}, sortedRecords(1000, 64))
	defer r.Close()
	before := r.BlockReads.Load()
	r.Get([]byte("key-000500"))
	if r.BlockReads.Load() != before+1 {
		t.Fatalf("expected exactly one block read, got %d", r.BlockReads.Load()-before)
	}
	if r.NumBlocks() < 2 {
		t.Fatalf("table too small for the test: %d blocks", r.NumBlocks())
	}
	if r.Size() <= 0 {
		t.Fatal("Size() not positive")
	}
}

func TestEmptyTable(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("empty.sst")
	b := NewBuilder(f, BuilderOptions{})
	props, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if props.Count != 0 {
		t.Fatalf("Count=%d", props.Count)
	}
	f.Close()
	rf, _ := fs.Open("empty.sst")
	r, err := Open(rf)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, ok, err := r.Get([]byte("k")); ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	it := r.NewIterator()
	if it.First() || it.Seek([]byte("a")) {
		t.Fatal("empty table iterator valid")
	}
}

func TestHugeRecordsBlockOffsets(t *testing.T) {
	// Records large enough that a block would blow the uint16 offset
	// budget if the builder didn't flush early.
	fs := vfs.NewMem()
	var recs []record.Record
	for i := 0; i < 12; i++ {
		recs = append(recs, record.Record{
			Key:   []byte(fmt.Sprintf("key-%02d", i)),
			Seq:   uint64(i + 1),
			Kind:  record.KindSet,
			Value: bytes.Repeat([]byte{byte('a' + i)}, 30000),
		})
	}
	// Oversized block target tries to pack several 30 KB records together.
	r := buildTable(t, fs, "huge.sst", BuilderOptions{BlockSize: 1 << 20}, recs)
	defer r.Close()
	for _, rec := range recs {
		got, ok, err := r.Get(rec.Key)
		if err != nil || !ok || !bytes.Equal(got.Value, rec.Value) {
			t.Fatalf("huge record %q: ok=%v err=%v", rec.Key, ok, err)
		}
	}
	it := r.NewIterator()
	n := 0
	for ok := it.First(); ok; ok = it.Next() {
		n++
	}
	if n != len(recs) {
		t.Fatalf("iterated %d of %d", n, len(recs))
	}
}

func TestSingleRecordTable(t *testing.T) {
	fs := vfs.NewMem()
	recs := []record.Record{{Key: []byte("only"), Seq: 1, Kind: record.KindSet, Value: []byte("v")}}
	r := buildTable(t, fs, "one.sst", BuilderOptions{}, recs)
	defer r.Close()
	if got, ok, _ := r.Get([]byte("only")); !ok || string(got.Value) != "v" {
		t.Fatal("single record lost")
	}
	if _, ok, _ := r.Get([]byte("onlz")); ok {
		t.Fatal("phantom")
	}
	it := r.NewIterator()
	if !it.Seek([]byte("a")) || string(it.Record().Key) != "only" {
		t.Fatal("seek before single record")
	}
}

func TestRecordAliasingIsStable(t *testing.T) {
	// Records returned by Get alias the block buffer; reading another
	// block must not corrupt previously returned records.
	fs := vfs.NewMem()
	recs := sortedRecords(2000, 64)
	r := buildTable(t, fs, "alias.sst", BuilderOptions{}, recs)
	defer r.Close()
	first, ok, err := r.Get(recs[0].Key)
	if err != nil || !ok {
		t.Fatal(err)
	}
	want := append([]byte(nil), first.Value...)
	for i := 100; i < 2000; i += 100 {
		r.Get(recs[i].Key)
	}
	if !bytes.Equal(first.Value, want) {
		t.Fatal("record mutated by later block reads")
	}
}

func TestVerifyChecksums(t *testing.T) {
	fs := vfs.NewMem()
	r := buildTable(t, fs, "v.sst", BuilderOptions{}, sortedRecords(500, 64))
	if err := r.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
	r.Close()

	data, _ := fs.ReadFile("v.sst")
	data[100] ^= 0xff
	fs.WriteFile("bad.sst", data)
	rf, _ := fs.Open("bad.sst")
	r2, err := Open(rf)
	if err != nil {
		return // corruption hit meta/index: also detected
	}
	defer r2.Close()
	if err := r2.VerifyChecksums(); err == nil {
		t.Fatal("corruption not detected by VerifyChecksums")
	}
}
