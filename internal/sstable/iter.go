package sstable

import (
	"unikv/internal/codec"
	"unikv/internal/record"
)

// Iterator walks a table's records in (key asc, seq desc) order, loading
// data blocks lazily.
type Iterator struct {
	r        *Reader
	blockIdx int
	pb       parsedBlock
	pos      int // record index within pb; pb.n means exhausted
	rec      record.Record
	valid    bool
	err      error
}

// NewIterator returns an iterator positioned before the first record.
func (r *Reader) NewIterator() *Iterator {
	return &Iterator{r: r, blockIdx: -1}
}

// Err returns the first I/O or corruption error encountered.
func (it *Iterator) Err() error { return it.err }

// Valid reports whether the iterator is positioned on a record.
func (it *Iterator) Valid() bool { return it.valid }

// Record returns the current record; its slices alias the loaded block
// buffer (freshly allocated per block, so they stay valid).
func (it *Iterator) Record() record.Record { return it.rec }

// Position returns the current record's (block, pos) coordinates, usable
// with Reader.LoadBlock for later positional re-access. Only meaningful
// while Valid.
func (it *Iterator) Position() (block, pos int) { return it.blockIdx, it.pos }

// First positions at the table's first record.
func (it *Iterator) First() bool {
	it.blockIdx = -1
	it.pb = parsedBlock{}
	it.pos = 0
	it.valid = false
	return it.Next()
}

// loadBlock reads and parses block i, positioning before its first record.
func (it *Iterator) loadBlock(i int) bool {
	b, err := it.r.readBlock(i)
	if err != nil {
		it.err = err
		it.valid = false
		return false
	}
	pb, err := parseBlock(b)
	if err != nil {
		it.err = err
		it.valid = false
		return false
	}
	it.blockIdx = i
	it.pb = pb
	it.pos = 0
	return true
}

// setAt materializes the record at it.pos.
func (it *Iterator) setAt() bool {
	rec, err := it.pb.recordAt(it.pos)
	if err != nil {
		it.err = err
		it.valid = false
		return false
	}
	it.rec = rec
	it.valid = true
	return true
}

// Next advances to the following record.
func (it *Iterator) Next() bool {
	if it.err != nil {
		return false
	}
	if it.valid {
		it.pos++
	}
	for it.pos >= it.pb.n {
		next := it.blockIdx + 1
		if next >= len(it.r.index) {
			it.valid = false
			return false
		}
		if !it.loadBlock(next) {
			return false
		}
	}
	return it.setAt()
}

// Seek positions at the first record with key >= target.
func (it *Iterator) Seek(target []byte) bool {
	if it.err != nil {
		return false
	}
	bi := it.r.blockFor(target)
	if bi >= len(it.r.index) {
		it.valid = false
		it.pb = parsedBlock{}
		it.pos = 0
		it.blockIdx = len(it.r.index)
		return false
	}
	if !it.loadBlock(bi) {
		return false
	}
	pos, err := it.pb.search(target)
	if err != nil {
		it.err = err
		it.valid = false
		return false
	}
	it.pos = pos
	if it.pos >= it.pb.n {
		// target is past this block's records (possible when target falls
		// in the gap before the next block): continue into it.
		it.valid = false
		return it.Next()
	}
	if !it.setAt() {
		return false
	}
	// Defensive: guaranteed by blockFor, but keep the invariant explicit.
	if codec.Compare(it.rec.Key, target) < 0 {
		return it.Next()
	}
	return true
}
