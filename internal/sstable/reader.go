package sstable

import (
	"errors"
	"fmt"
	"sync/atomic"

	"unikv/internal/cache"
	"unikv/internal/codec"
	"unikv/internal/record"
	"unikv/internal/vfs"
)

// ErrCorruptTable reports a malformed or checksum-failing table file.
var ErrCorruptTable = errors.New("sstable: corrupt table")

// blockHandle locates a data block inside the file.
type blockHandle struct {
	lastKey []byte
	offset  uint64
	length  uint32
}

// Reader serves point lookups and iteration over one table. The index and
// meta blocks are held in memory (the paper assumes index metadata is
// cached); data blocks are read on demand.
type Reader struct {
	f      vfs.File
	index  []blockHandle
	filter []byte

	// cache, when attached via SetCache, holds verified data blocks under
	// (cacheID, blockIdx); cacheID is the table's file number, which the
	// engine never reuses.
	cache   *cache.Cache
	cacheID uint64

	count    int
	minSeq   uint64
	maxSeq   uint64
	smallest []byte
	largest  []byte
	size     int64

	// BlockReads counts data-block fetches that reach the file (cache hits
	// excluded), powering the read-amplification and access-frequency
	// experiments.
	BlockReads atomic.Int64

	// refs counts owners of the reader: the store that opened it plus any
	// live snapshot pinning it. Close decrements; resources are released
	// only when the last owner closes, so a snapshot can keep reading a
	// table the engine has already retired.
	refs atomic.Int32

	// retire, when set, runs after the last Close releases the file —
	// the engine uses it to defer deleting a retired table file until no
	// snapshot can reach it.
	retire func()
}

// SetCache attaches the shared block cache, keying this table's blocks by
// id (its file number). Call before the reader is shared between
// goroutines. A nil cache leaves the reader uncached.
func (r *Reader) SetCache(c *cache.Cache, id uint64) {
	r.cache = c
	r.cacheID = id
}

// Open loads the footer, meta, and index of the table in f.
func Open(f vfs.File) (*Reader, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	if size < footerLen {
		return nil, ErrCorruptTable
	}
	var footer [footerLen]byte
	if _, err := f.ReadAt(footer[:], size-footerLen); err != nil {
		return nil, err
	}
	rest := footer[:]
	var indexOff uint64
	var indexLen uint32
	var metaOff uint64
	var metaLen uint32
	var magic uint64
	if indexOff, rest, err = codec.Uint64(rest); err != nil {
		return nil, err
	}
	if indexLen, rest, err = codec.Uint32(rest); err != nil {
		return nil, err
	}
	if metaOff, rest, err = codec.Uint64(rest); err != nil {
		return nil, err
	}
	if metaLen, rest, err = codec.Uint32(rest); err != nil {
		return nil, err
	}
	if magic, _, err = codec.Uint64(rest); err != nil {
		return nil, err
	}
	if magic != tableMagic {
		return nil, ErrCorruptTable
	}

	r := &Reader{f: f, size: size}
	r.refs.Store(1)

	meta, err := r.readChecked(metaOff, metaLen)
	if err != nil {
		return nil, err
	}
	var count, minSeq, maxSeq uint64
	if count, meta, err = codec.Uvarint(meta); err != nil {
		return nil, err
	}
	if minSeq, meta, err = codec.Uvarint(meta); err != nil {
		return nil, err
	}
	if maxSeq, meta, err = codec.Uvarint(meta); err != nil {
		return nil, err
	}
	var smallest, largest, filter []byte
	if smallest, meta, err = codec.Bytes(meta); err != nil {
		return nil, err
	}
	if largest, meta, err = codec.Bytes(meta); err != nil {
		return nil, err
	}
	if filter, _, err = codec.Bytes(meta); err != nil {
		return nil, err
	}
	r.count = int(count)
	r.minSeq = minSeq
	r.maxSeq = maxSeq
	r.smallest = append([]byte(nil), smallest...)
	r.largest = append([]byte(nil), largest...)
	r.filter = append([]byte(nil), filter...)

	index, err := r.readChecked(indexOff, indexLen)
	if err != nil {
		return nil, err
	}
	for len(index) > 0 {
		var h blockHandle
		var key []byte
		if key, index, err = codec.Bytes(index); err != nil {
			return nil, err
		}
		if h.offset, index, err = codec.Uint64(index); err != nil {
			return nil, err
		}
		if h.length, index, err = codec.Uint32(index); err != nil {
			return nil, err
		}
		h.lastKey = append([]byte(nil), key...)
		r.index = append(r.index, h)
	}
	return r, nil
}

// readChecked reads a payload and verifies its trailing CRC. Bounds come
// from the footer or index, which a corrupted file controls, so they are
// validated against the file size before allocating.
func (r *Reader) readChecked(off uint64, length uint32) ([]byte, error) {
	if off > uint64(r.size) || uint64(length)+4 > uint64(r.size)-off {
		return nil, ErrCorruptTable
	}
	buf := make([]byte, int(length)+4)
	if _, err := r.f.ReadAt(buf, int64(off)); err != nil {
		return nil, fmt.Errorf("sstable: read @%d+%d: %w", off, length, err)
	}
	payload := buf[:length]
	want := codec.UnmaskChecksum(uint32(buf[length]) | uint32(buf[length+1])<<8 |
		uint32(buf[length+2])<<16 | uint32(buf[length+3])<<24)
	if codec.Checksum(payload) != want {
		return nil, ErrCorruptTable
	}
	return payload, nil
}

// readBlock fetches data block i, consulting the attached cache first. The
// returned bytes may be shared with the cache and other readers: callers
// must treat them as immutable (records parsed from a block are copied
// before they leave the engine).
func (r *Reader) readBlock(i int) ([]byte, error) {
	ck := cache.Key{Pool: cache.PoolBlock, ID: r.cacheID, Off: uint64(i)}
	if b, ok := r.cache.Get(ck); ok {
		return b, nil
	}
	h := r.index[i]
	r.BlockReads.Add(1)
	b, err := r.readChecked(h.offset, h.length)
	if err != nil {
		return nil, err
	}
	r.cache.Add(ck, b)
	return b, nil
}

// Block is a parsed data block handed out by LoadBlock for positional
// record access (internal/sortedview stores (block, pos) cursors and
// materializes records through this). The zero value is invalid.
type Block struct {
	pb parsedBlock
}

// Valid reports whether the block holds records.
func (b Block) Valid() bool { return b.pb.n > 0 }

// Len returns the number of records in the block.
func (b Block) Len() int { return b.pb.n }

// RecordAt decodes record i of the block. The returned slices alias the
// block buffer (shared with the cache): treat them as immutable.
func (b Block) RecordAt(i int) (record.Record, error) {
	if i < 0 || i >= b.pb.n {
		return record.Record{}, ErrCorruptTable
	}
	return b.pb.recordAt(i)
}

// LoadBlock reads and parses data block i (consulting the cache), for
// positional access via Block.RecordAt.
func (r *Reader) LoadBlock(i int) (Block, error) {
	if i < 0 || i >= len(r.index) {
		return Block{}, ErrCorruptTable
	}
	raw, err := r.readBlock(i)
	if err != nil {
		return Block{}, err
	}
	pb, err := parseBlock(raw)
	if err != nil {
		return Block{}, err
	}
	return Block{pb: pb}, nil
}

// parsedBlock provides random access to a block's records via the offset
// trailer written by the builder.
type parsedBlock struct {
	data    []byte // record region
	offsets []byte // 2 bytes LE per record
	n       int
}

// parseBlock validates and splits a block payload.
func parseBlock(block []byte) (parsedBlock, error) {
	if len(block) < 2 {
		return parsedBlock{}, ErrCorruptTable
	}
	n := int(block[len(block)-2]) | int(block[len(block)-1])<<8
	trailer := 2 + 2*n
	if n == 0 || trailer > len(block) {
		return parsedBlock{}, ErrCorruptTable
	}
	return parsedBlock{
		data:    block[:len(block)-trailer],
		offsets: block[len(block)-trailer : len(block)-2],
		n:       n,
	}, nil
}

// at returns the byte offset of record i.
func (p parsedBlock) at(i int) int {
	return int(p.offsets[2*i]) | int(p.offsets[2*i+1])<<8
}

// keyAt decodes just the key of record i.
func (p parsedBlock) keyAt(i int) ([]byte, error) {
	off := p.at(i)
	if off >= len(p.data) {
		return nil, ErrCorruptTable
	}
	key, _, err := codec.Bytes(p.data[off:])
	return key, err
}

// recordAt decodes record i.
func (p parsedBlock) recordAt(i int) (record.Record, error) {
	off := p.at(i)
	if off >= len(p.data) {
		return record.Record{}, ErrCorruptTable
	}
	rec, _, err := record.Decode(p.data[off:])
	return rec, err
}

// search returns the index of the first record with key >= target (n if
// none). Records are (key asc, seq desc), so the hit is the newest version.
func (p parsedBlock) search(target []byte) (int, error) {
	lo, hi := 0, p.n
	for lo < hi {
		mid := (lo + hi) / 2
		k, err := p.keyAt(mid)
		if err != nil {
			return 0, err
		}
		if codec.Compare(k, target) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// blockFor returns the index of the first block whose lastKey >= key, or
// len(index) if key is past the table.
func (r *Reader) blockFor(key []byte) int {
	lo, hi := 0, len(r.index)
	for lo < hi {
		mid := (lo + hi) / 2
		if codec.Compare(r.index[mid].lastKey, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the newest record for key in this table.
func (r *Reader) Get(key []byte) (record.Record, bool, error) {
	if codec.Compare(key, r.smallest) < 0 || codec.Compare(key, r.largest) > 0 {
		return record.Record{}, false, nil
	}
	if len(r.filter) > 0 && !bloomMayContain(r.filter, key) {
		return record.Record{}, false, nil
	}
	bi := r.blockFor(key)
	if bi >= len(r.index) {
		return record.Record{}, false, nil
	}
	block, err := r.readBlock(bi)
	if err != nil {
		return record.Record{}, false, err
	}
	pb, err := parseBlock(block)
	if err != nil {
		return record.Record{}, false, err
	}
	i, err := pb.search(key)
	if err != nil {
		return record.Record{}, false, err
	}
	if i >= pb.n {
		return record.Record{}, false, nil
	}
	rec, err := pb.recordAt(i)
	if err != nil {
		return record.Record{}, false, err
	}
	if codec.Compare(rec.Key, key) != 0 {
		return record.Record{}, false, nil
	}
	// The record aliases the block buffer, which is either freshly
	// allocated or a shared immutable cache resident; callers copy before
	// exposing bytes outside the engine and never mutate records in place.
	return rec, true, nil
}

// MayContain consults the Bloom filter (true when absent or no filter).
func (r *Reader) MayContain(key []byte) bool {
	if len(r.filter) == 0 {
		return true
	}
	return bloomMayContain(r.filter, key)
}

// Count returns the number of records in the table.
func (r *Reader) Count() int { return r.count }

// Smallest returns the table's smallest key.
func (r *Reader) Smallest() []byte { return r.smallest }

// Largest returns the table's largest key.
func (r *Reader) Largest() []byte { return r.largest }

// MaxSeq returns the largest sequence number stored.
func (r *Reader) MaxSeq() uint64 { return r.maxSeq }

// MinSeq returns the smallest sequence number stored.
func (r *Reader) MinSeq() uint64 { return r.minSeq }

// Size returns the file size in bytes.
func (r *Reader) Size() int64 { return r.size }

// NumBlocks returns the number of data blocks.
func (r *Reader) NumBlocks() int { return len(r.index) }

// Ref adds an owner: a matching Close is required before the reader's
// resources are released. Snapshots pin tables this way.
func (r *Reader) Ref() { r.refs.Add(1) }

// SetRetire registers fn to run after the final Close has released the
// file and evicted the cache. The engine points it at the table file's
// deletion so retirement waits for the last snapshot pin to drop. Call
// from the retirement path (single goroutine) before that path's Close.
func (r *Reader) SetRetire(fn func()) { r.retire = fn }

// Close drops one ownership reference. When the last owner closes, the
// underlying file is released, the table's cached blocks are dropped, and
// any retire hook runs. Every retirement path (merge, scan merge, GC,
// split) closes the old readers, so eviction here keeps the cache free of
// dead tables.
func (r *Reader) Close() error {
	if r.refs.Add(-1) > 0 {
		return nil
	}
	if r.cache != nil {
		r.cache.EvictTable(r.cacheID)
	}
	err := r.f.Close()
	if r.retire != nil {
		r.retire()
	}
	return err
}

// VerifyChecksums reads every data block (plus the already-validated meta
// and index blocks) and reports the first corruption found. Used by the
// unikv-ctl verify command; it bypasses the block cache so the bytes on
// disk — not a cached copy — are what gets checked.
func (r *Reader) VerifyChecksums() error {
	for i := range r.index {
		if _, err := r.VerifyBlock(i); err != nil {
			return err
		}
	}
	return nil
}

// VerifyBlock re-reads data block i from disk, bypassing the block cache,
// and verifies its checksum and every record's encoding. It returns the
// number of bytes read so a rate-limited scrub can pace itself block by
// block instead of paying for a whole table at once.
func (r *Reader) VerifyBlock(i int) (int64, error) {
	h := r.index[i]
	r.BlockReads.Add(1)
	block, err := r.readChecked(h.offset, h.length)
	if err != nil {
		return 0, fmt.Errorf("block %d: %w", i, err)
	}
	pb, err := parseBlock(block)
	if err != nil {
		return 0, fmt.Errorf("block %d: %w", i, err)
	}
	for j := 0; j < pb.n; j++ {
		if _, err := pb.recordAt(j); err != nil {
			return 0, fmt.Errorf("block %d record %d: %w", i, j, err)
		}
	}
	return int64(h.length), nil
}
