package sstable

// Bloom filter in LevelDB's style: a single filter over all table keys,
// k probes derived from one 32-bit hash by double hashing. The baseline
// LSM engines use it; UniKV tables are built with BloomBitsPerKey = 0
// because the unified index makes per-table filters redundant (a design
// point the paper calls out explicitly).

// bloomHash is LevelDB's hash function over keys (a Murmur-like scheme).
func bloomHash(key []byte) uint32 {
	const (
		seed = 0xbc9f1d34
		m    = 0xc6a4a793
	)
	h := uint32(seed) ^ uint32(len(key))*m
	for ; len(key) >= 4; key = key[4:] {
		h += uint32(key[0]) | uint32(key[1])<<8 | uint32(key[2])<<16 | uint32(key[3])<<24
		h *= m
		h ^= h >> 16
	}
	switch len(key) {
	case 3:
		h += uint32(key[2]) << 16
		fallthrough
	case 2:
		h += uint32(key[1]) << 8
		fallthrough
	case 1:
		h += uint32(key[0])
		h *= m
		h ^= h >> 24
	}
	return h
}

// buildBloom constructs a filter for the given key hashes with
// bitsPerKey bits of budget per key. The last byte stores k.
func buildBloom(hashes []uint32, bitsPerKey int) []byte {
	k := int(float64(bitsPerKey) * 0.69)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	bits := len(hashes) * bitsPerKey
	if bits < 64 {
		bits = 64
	}
	nBytes := (bits + 7) / 8
	bits = nBytes * 8
	filter := make([]byte, nBytes+1)
	filter[nBytes] = byte(k)
	for _, h := range hashes {
		delta := h>>17 | h<<15
		for j := 0; j < k; j++ {
			bit := h % uint32(bits)
			filter[bit/8] |= 1 << (bit % 8)
			h += delta
		}
	}
	return filter
}

// bloomMayContain reports whether key may be in the filter.
func bloomMayContain(filter, key []byte) bool {
	if len(filter) < 2 {
		return true
	}
	bits := uint32((len(filter) - 1) * 8)
	k := filter[len(filter)-1]
	if k > 30 {
		return true
	}
	h := bloomHash(key)
	delta := h>>17 | h<<15
	for j := byte(0); j < k; j++ {
		bit := h % bits
		if filter[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}
