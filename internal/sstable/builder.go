// Package sstable implements the sorted-string-table file format used by
// every on-disk store in this repository: the UnsortedStore and SortedStore
// of UniKV (which disables Bloom filters — the unified index replaces them)
// and the leveled/fragmented baseline LSM engines (which enable them).
//
// Layout:
//
//	data block 0 | crc | data block 1 | crc | ... | meta block | crc |
//	index block | crc | footer
//
// Data blocks hold consecutive record.Record encodings and target
// BlockSize bytes. The index block stores, per data block, the last key,
// file offset, and payload length; a reader keeps it in memory so a point
// lookup costs one binary search plus one block read. The meta block holds
// entry count, sequence bounds, smallest/largest key, and the optional
// Bloom filter.
package sstable

import (
	"unikv/internal/codec"
	"unikv/internal/record"
	"unikv/internal/vfs"
)

// BlockSize is the target size of a data block (the paper's 4 KiB unit).
const BlockSize = 4096

const (
	footerLen         = 8 + 4 + 8 + 4 + 8
	tableMagic uint64 = 0x756e696b76737374 // "unikvsst"
)

// BuilderOptions configures table construction.
type BuilderOptions struct {
	// BloomBitsPerKey > 0 adds a Bloom filter with that many bits per key.
	// UniKV stores use 0; baseline LSMs use 10.
	BloomBitsPerKey int
	// BlockSize overrides the default data-block size when > 0.
	BlockSize int
}

// Builder writes a table. Add must be called in strictly increasing
// (key asc, seq desc) order.
type Builder struct {
	f    vfs.File
	opts BuilderOptions

	block     []byte
	blockN    int
	offsets   []uint16 // start offset of each record within the block
	offset    uint64
	index     []byte
	numBlocks int

	count    int
	smallest []byte
	largest  []byte
	minSeq   uint64
	maxSeq   uint64

	keyHashes []uint32
	lastKey   []byte

	err error
}

// NewBuilder starts a table in f.
func NewBuilder(f vfs.File, opts BuilderOptions) *Builder {
	if opts.BlockSize <= 0 {
		opts.BlockSize = BlockSize
	}
	return &Builder{f: f, opts: opts, minSeq: ^uint64(0)}
}

// Add appends one record.
func (b *Builder) Add(r record.Record) {
	if b.err != nil {
		return
	}
	if b.count == 0 {
		b.smallest = append([]byte(nil), r.Key...)
	}
	b.largest = append(b.largest[:0], r.Key...)
	if r.Seq < b.minSeq {
		b.minSeq = r.Seq
	}
	if r.Seq > b.maxSeq {
		b.maxSeq = r.Seq
	}
	b.count++
	if b.opts.BloomBitsPerKey > 0 {
		b.keyHashes = append(b.keyHashes, bloomHash(r.Key))
	}

	b.offsets = append(b.offsets, uint16(len(b.block)))
	b.block = r.Encode(b.block)
	b.blockN++
	b.lastKey = append(b.lastKey[:0], r.Key...)
	// Flush at the size target, and always before a record would start
	// past the uint16 offset range.
	if len(b.block) >= b.opts.BlockSize || len(b.block) > 0xf000 {
		b.flushBlock()
	}
}

// flushBlock writes the pending data block and records it in the index.
// The block payload is the concatenated records followed by a trailer of
// per-record start offsets (uint16 LE each) and the record count (uint16
// LE), enabling intra-block binary search (LevelDB's restart points with a
// restart interval of 1).
func (b *Builder) flushBlock() {
	if b.blockN == 0 || b.err != nil {
		return
	}
	for _, off := range b.offsets {
		b.block = append(b.block, byte(off), byte(off>>8))
	}
	n := uint16(len(b.offsets))
	b.block = append(b.block, byte(n), byte(n>>8))
	b.offsets = b.offsets[:0]
	payloadLen := len(b.block)
	b.index = codec.PutBytes(b.index, b.lastKey)
	b.index = codec.PutUint64(b.index, b.offset)
	b.index = codec.PutUint32(b.index, uint32(payloadLen))

	b.err = b.writeChecked(b.block)
	b.offset += uint64(payloadLen) + 4
	b.block = b.block[:0]
	b.blockN = 0
	b.numBlocks++
}

// writeChecked writes payload followed by its masked CRC.
func (b *Builder) writeChecked(payload []byte) error {
	if _, err := b.f.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	c := codec.MaskChecksum(codec.Checksum(payload))
	crc[0] = byte(c)
	crc[1] = byte(c >> 8)
	crc[2] = byte(c >> 16)
	crc[3] = byte(c >> 24)
	_, err := b.f.Write(crc[:])
	return err
}

// Count returns the number of records added so far.
func (b *Builder) Count() int { return b.count }

// NextPosition returns the (block, pos) coordinates the next Add will
// write to: block is the data-block index, pos the record index within
// it. Together with Iterator.Position and Reader.LoadBlock it lets a
// caller build positional cursors into the table (internal/sortedview)
// without re-reading the finished file.
func (b *Builder) NextPosition() (block, pos int) { return b.numBlocks, b.blockN }

// EstimatedSize returns the bytes written plus the pending block.
func (b *Builder) EstimatedSize() int64 { return int64(b.offset) + int64(len(b.block)) }

// Finish flushes remaining data and writes meta, index, and footer. The
// file is synced. Finish returns table statistics for the caller's
// metadata (manifest entries).
func (b *Builder) Finish() (Props, error) {
	b.flushBlock()
	if b.err != nil {
		return Props{}, b.err
	}

	// Meta block.
	var meta []byte
	meta = codec.PutUvarint(meta, uint64(b.count))
	meta = codec.PutUvarint(meta, b.minSeq)
	meta = codec.PutUvarint(meta, b.maxSeq)
	meta = codec.PutBytes(meta, b.smallest)
	meta = codec.PutBytes(meta, b.largest)
	var filter []byte
	if b.opts.BloomBitsPerKey > 0 && len(b.keyHashes) > 0 {
		filter = buildBloom(b.keyHashes, b.opts.BloomBitsPerKey)
	}
	meta = codec.PutBytes(meta, filter)
	metaOff := b.offset
	if err := b.writeChecked(meta); err != nil {
		return Props{}, err
	}
	b.offset += uint64(len(meta)) + 4

	// Index block.
	indexOff := b.offset
	if err := b.writeChecked(b.index); err != nil {
		return Props{}, err
	}
	b.offset += uint64(len(b.index)) + 4

	// Footer.
	var footer []byte
	footer = codec.PutUint64(footer, indexOff)
	footer = codec.PutUint32(footer, uint32(len(b.index)))
	footer = codec.PutUint64(footer, metaOff)
	footer = codec.PutUint32(footer, uint32(len(meta)))
	footer = codec.PutUint64(footer, tableMagic)
	if _, err := b.f.Write(footer); err != nil {
		return Props{}, err
	}
	b.offset += uint64(len(footer))

	if err := b.f.Sync(); err != nil {
		return Props{}, err
	}
	return Props{
		Count:    b.count,
		MinSeq:   b.minSeq,
		MaxSeq:   b.maxSeq,
		Smallest: b.smallest,
		Largest:  append([]byte(nil), b.largest...),
		Size:     int64(b.offset),
	}, nil
}

// Props summarizes a finished table.
type Props struct {
	Count    int
	MinSeq   uint64
	MaxSeq   uint64
	Smallest []byte
	Largest  []byte
	Size     int64
}
