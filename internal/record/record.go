// Package record defines the logical KV record shared by the memtable, WAL,
// UnsortedStore, and SortedStore: a user key, a monotonically increasing
// sequence number, a kind (set / delete / set-with-value-pointer), and a
// value payload.
//
// UniKV's partial KV separation means a record's "value" is either the user
// value itself (memtable, WAL, UnsortedStore — hot data kept together) or an
// encoded ValuePtr into a partition value log (SortedStore — cold data,
// KV-separated).
package record

import (
	"fmt"

	"unikv/internal/codec"
)

// Kind discriminates record payloads.
type Kind uint8

const (
	// KindSet is a put carrying the user value inline.
	KindSet Kind = 1
	// KindDelete is a tombstone; the value is empty.
	KindDelete Kind = 2
	// KindSetPtr is a put whose value field is an encoded ValuePtr into a
	// value log (SortedStore entries after partial KV separation).
	KindSetPtr Kind = 3
)

// Record is one versioned KV operation.
type Record struct {
	Key   []byte
	Seq   uint64
	Kind  Kind
	Value []byte
}

// Encode appends the record's wire form to dst:
//
//	varint keyLen | key | varint seq | kind | varint valLen | value
func (r Record) Encode(dst []byte) []byte {
	dst = codec.PutBytes(dst, r.Key)
	dst = codec.PutUvarint(dst, r.Seq)
	dst = append(dst, byte(r.Kind))
	dst = codec.PutBytes(dst, r.Value)
	return dst
}

// Decode parses one record from src, returning it and the remaining bytes.
// The record's slices alias src.
func Decode(src []byte) (Record, []byte, error) {
	var r Record
	var err error
	r.Key, src, err = codec.Bytes(src)
	if err != nil {
		return r, nil, err
	}
	r.Seq, src, err = codec.Uvarint(src)
	if err != nil {
		return r, nil, err
	}
	if len(src) < 1 {
		return r, nil, codec.ErrCorrupt
	}
	r.Kind = Kind(src[0])
	src = src[1:]
	if r.Kind != KindSet && r.Kind != KindDelete && r.Kind != KindSetPtr {
		return r, nil, codec.ErrCorrupt
	}
	r.Value, src, err = codec.Bytes(src)
	if err != nil {
		return r, nil, err
	}
	return r, src, nil
}

// Clone deep-copies the record so it no longer aliases decoder buffers.
func (r Record) Clone() Record {
	c := r
	c.Key = append([]byte(nil), r.Key...)
	c.Value = append([]byte(nil), r.Value...)
	return c
}

// ValuePtr locates a value inside a partition's value-log files. It mirrors
// the paper's four-field pointer <partition, logNumber, offset, length>.
type ValuePtr struct {
	Partition uint32
	LogNum    uint32
	Offset    uint32
	Length    uint32
}

// EncodedPtrLen is the fixed wire size of a ValuePtr.
const EncodedPtrLen = 16

// Encode appends the pointer's fixed-width wire form to dst.
func (p ValuePtr) Encode(dst []byte) []byte {
	dst = codec.PutUint32(dst, p.Partition)
	dst = codec.PutUint32(dst, p.LogNum)
	dst = codec.PutUint32(dst, p.Offset)
	dst = codec.PutUint32(dst, p.Length)
	return dst
}

// DecodePtr parses a ValuePtr from src.
func DecodePtr(src []byte) (ValuePtr, error) {
	var p ValuePtr
	var err error
	if p.Partition, src, err = codec.Uint32(src); err != nil {
		return p, err
	}
	if p.LogNum, src, err = codec.Uint32(src); err != nil {
		return p, err
	}
	if p.Offset, src, err = codec.Uint32(src); err != nil {
		return p, err
	}
	if p.Length, _, err = codec.Uint32(src); err != nil {
		return p, err
	}
	return p, nil
}

func (p ValuePtr) String() string {
	return fmt.Sprintf("ptr{p%d log%d @%d +%d}", p.Partition, p.LogNum, p.Offset, p.Length)
}
