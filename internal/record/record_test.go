package record

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRecordRoundTrip(t *testing.T) {
	f := func(key, value []byte, seq uint64, kindSel uint8) bool {
		kind := []Kind{KindSet, KindDelete, KindSetPtr}[int(kindSel)%3]
		r := Record{Key: key, Seq: seq, Kind: kind, Value: value}
		enc := r.Encode(nil)
		got, rest, err := Decode(enc)
		if err != nil || len(rest) != 0 {
			return false
		}
		return bytes.Equal(got.Key, key) && bytes.Equal(got.Value, value) &&
			got.Seq == seq && got.Kind == kind
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecordDecodeSequence(t *testing.T) {
	var enc []byte
	recs := []Record{
		{Key: []byte("a"), Seq: 1, Kind: KindSet, Value: []byte("va")},
		{Key: []byte("b"), Seq: 2, Kind: KindDelete},
		{Key: []byte("c"), Seq: 3, Kind: KindSetPtr, Value: ValuePtr{1, 2, 3, 4}.Encode(nil)},
	}
	for _, r := range recs {
		enc = r.Encode(enc)
	}
	for i := range recs {
		var got Record
		var err error
		got, enc, err = Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Key, recs[i].Key) || got.Seq != recs[i].Seq || got.Kind != recs[i].Kind {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got, recs[i])
		}
	}
	if len(enc) != 0 {
		t.Fatalf("leftover: %d bytes", len(enc))
	}
}

func TestRecordDecodeCorrupt(t *testing.T) {
	r := Record{Key: []byte("key"), Seq: 9, Kind: KindSet, Value: []byte("value")}
	enc := r.Encode(nil)
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Invalid kind byte.
	bad := Record{Key: []byte("k"), Seq: 1, Kind: Kind(99), Value: nil}.Encode(nil)
	if _, _, err := Decode(bad); err == nil {
		t.Fatal("invalid kind accepted")
	}
}

func TestRecordClone(t *testing.T) {
	buf := []byte("shared-key-and-value")
	r := Record{Key: buf[:6], Seq: 5, Kind: KindSet, Value: buf[7:]}
	c := r.Clone()
	buf[0] = 'X'
	if c.Key[0] == 'X' {
		t.Fatal("clone aliases original buffer")
	}
}

func TestValuePtrRoundTrip(t *testing.T) {
	f := func(p, l, o, n uint32) bool {
		ptr := ValuePtr{Partition: p, LogNum: l, Offset: o, Length: n}
		enc := ptr.Encode(nil)
		if len(enc) != EncodedPtrLen {
			return false
		}
		got, err := DecodePtr(enc)
		return err == nil && got == ptr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValuePtrShort(t *testing.T) {
	ptr := ValuePtr{1, 2, 3, 4}
	enc := ptr.Encode(nil)
	if _, err := DecodePtr(enc[:EncodedPtrLen-1]); err == nil {
		t.Fatal("short pointer accepted")
	}
}

func TestValuePtrString(t *testing.T) {
	s := ValuePtr{1, 2, 3, 4}.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
