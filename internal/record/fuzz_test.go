package record

import (
	"bytes"
	"testing"
)

// FuzzDecode: arbitrary bytes must never panic the decoder, and valid
// encodings must round-trip.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Record{Key: []byte("k"), Seq: 1, Kind: KindSet, Value: []byte("v")}.Encode(nil))
	f.Add(Record{Key: []byte("key"), Seq: 1 << 60, Kind: KindDelete}.Encode(nil))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, _, err := Decode(data)
		if err != nil {
			return
		}
		// Semantic round-trip (byte equality would be too strict: varints
		// admit redundant encodings like 0x80 0x00 for zero).
		enc := rec.Encode(nil)
		rec2, rest2, err := Decode(enc)
		if err != nil || len(rest2) != 0 {
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
		if !bytes.Equal(rec.Key, rec2.Key) || !bytes.Equal(rec.Value, rec2.Value) ||
			rec.Seq != rec2.Seq || rec.Kind != rec2.Kind {
			t.Fatalf("round-trip mismatch: %+v vs %+v", rec, rec2)
		}
	})
}

// FuzzDecodePtr: arbitrary pointer bytes must never panic.
func FuzzDecodePtr(f *testing.F) {
	f.Add([]byte{})
	f.Add(ValuePtr{1, 2, 3, 4}.Encode(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		ptr, err := DecodePtr(data)
		if err != nil {
			return
		}
		if len(data) >= EncodedPtrLen {
			enc := ptr.Encode(nil)
			if !bytes.Equal(enc, data[:EncodedPtrLen]) {
				t.Fatalf("pointer re-encode mismatch")
			}
		}
	})
}
