package protocol

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest: arbitrary frame bodies must never panic the decoder
// (a malformed frame from the network must not take the server down), and
// anything that decodes must re-encode to a body that decodes to the same
// request.
func FuzzDecodeRequest(f *testing.F) {
	strip := func(frame []byte) []byte { return frame[4:] }
	f.Add([]byte{})
	f.Add(strip(AppendPing(nil, 1)))
	f.Add(strip(AppendGet(nil, 2, []byte("user:42"))))
	f.Add(strip(AppendPut(nil, 3, []byte("k"), []byte("v"))))
	f.Add(strip(AppendDelete(nil, 4, []byte("k"))))
	f.Add(strip(AppendScan(nil, 5, []byte("a"), []byte("z"), false, 10)))
	f.Add(strip(AppendScan(nil, 6, nil, nil, true, 0)))
	f.Add(strip(AppendBatch(nil, 7, []BatchOp{
		{Kind: BatchPut, Key: []byte("k1"), Value: []byte("v1")},
		{Kind: BatchDelete, Key: []byte("k2")},
	})))
	f.Add(strip(AppendStats(nil, 8)))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := DecodeRequest(body)
		if err != nil {
			return
		}
		var enc []byte
		switch req.Op {
		case OpPing:
			enc = AppendPing(nil, req.ID)
		case OpStats:
			enc = AppendStats(nil, req.ID)
		case OpGet:
			enc = AppendGet(nil, req.ID, req.Key)
		case OpDelete:
			enc = AppendDelete(nil, req.ID, req.Key)
		case OpPut:
			enc = AppendPut(nil, req.ID, req.Key, req.Value)
		case OpScan:
			enc = AppendScan(nil, req.ID, req.Start, req.End, req.NoEnd, req.Limit)
		case OpBatch:
			enc = AppendBatch(nil, req.ID, req.Ops)
		default:
			t.Fatalf("decoded unknown opcode %d", req.Op)
		}
		req2, err := DecodeRequest(strip(enc))
		if err != nil {
			t.Fatalf("re-encoded %s does not decode: %v", req.Op, err)
		}
		if req2.Op != req.Op || req2.ID != req.ID ||
			!bytes.Equal(req2.Key, req.Key) || !bytes.Equal(req2.Value, req.Value) ||
			!bytes.Equal(req2.Start, req.Start) || !bytes.Equal(req2.End, req.End) ||
			req2.NoEnd != req.NoEnd || req2.Limit != req.Limit || len(req2.Ops) != len(req.Ops) {
			t.Fatalf("round-trip mismatch:\n  %+v\n  %+v", req, req2)
		}
		for i := range req.Ops {
			a, b := req.Ops[i], req2.Ops[i]
			if a.Kind != b.Kind || !bytes.Equal(a.Key, b.Key) || !bytes.Equal(a.Value, b.Value) {
				t.Fatalf("batch op %d mismatch: %+v vs %+v", i, a, b)
			}
		}
	})
}

// FuzzDecodeResponse: response decoding is driven by untrusted bytes on
// the client side; it must never panic either.
func FuzzDecodeResponse(f *testing.F) {
	strip := func(frame []byte) []byte { return frame[4:] }
	f.Add(uint8(OpGet), strip(AppendOKValue(nil, 1, []byte("v"))))
	f.Add(uint8(OpScan), strip(AppendOKPairs(nil, 2, []KV{{[]byte("k"), []byte("v")}})))
	f.Add(uint8(OpPut), strip(AppendOKEmpty(nil, 3)))
	f.Add(uint8(OpGet), strip(AppendError(nil, 4, StatusNotFound, "missing")))
	f.Add(uint8(OpScan), []byte{0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, op uint8, body []byte) {
		_, _ = DecodeResponse(Op(op), body)
	})
}
