package protocol

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// decodeOneRequest strips the length word of a single encoded frame and
// decodes the body.
func decodeOneRequest(t *testing.T, frame []byte) Request {
	t.Helper()
	body, err := ReadFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	req, err := DecodeRequest(body)
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	return req
}

func TestRequestRoundTrips(t *testing.T) {
	key := []byte("user:42")
	val := []byte("alice")

	req := decodeOneRequest(t, AppendPing(nil, 7))
	if req.Op != OpPing || req.ID != 7 {
		t.Fatalf("ping: %+v", req)
	}

	req = decodeOneRequest(t, AppendGet(nil, 8, key))
	if req.Op != OpGet || req.ID != 8 || !bytes.Equal(req.Key, key) {
		t.Fatalf("get: %+v", req)
	}

	req = decodeOneRequest(t, AppendPut(nil, 9, key, val))
	if req.Op != OpPut || !bytes.Equal(req.Key, key) || !bytes.Equal(req.Value, val) {
		t.Fatalf("put: %+v", req)
	}

	// Empty value is legal and distinct from absent.
	req = decodeOneRequest(t, AppendPut(nil, 10, key, nil))
	if req.Op != OpPut || len(req.Value) != 0 {
		t.Fatalf("empty put: %+v", req)
	}

	req = decodeOneRequest(t, AppendDelete(nil, 11, key))
	if req.Op != OpDelete || !bytes.Equal(req.Key, key) {
		t.Fatalf("delete: %+v", req)
	}

	req = decodeOneRequest(t, AppendStats(nil, 12))
	if req.Op != OpStats {
		t.Fatalf("stats: %+v", req)
	}
}

func TestScanRequestRoundTrip(t *testing.T) {
	req := decodeOneRequest(t, AppendScan(nil, 1, []byte("a"), []byte("b"), false, 10))
	if string(req.Start) != "a" || string(req.End) != "b" || req.NoEnd || req.Limit != 10 {
		t.Fatalf("bounded scan: %+v", req)
	}

	// No upper bound: End absent, not empty.
	req = decodeOneRequest(t, AppendScan(nil, 2, []byte("a"), nil, true, 0))
	if !req.NoEnd || req.End != nil || req.Limit != 0 {
		t.Fatalf("unbounded scan: %+v", req)
	}

	// Empty end is a real (empty) bound, distinct from no bound.
	req = decodeOneRequest(t, AppendScan(nil, 3, nil, []byte{}, false, -5))
	if req.NoEnd || req.End == nil || len(req.End) != 0 || req.Limit != 0 {
		t.Fatalf("empty-end scan: %+v", req)
	}
}

func TestBatchRequestRoundTrip(t *testing.T) {
	ops := []BatchOp{
		{Kind: BatchPut, Key: []byte("k1"), Value: []byte("v1")},
		{Kind: BatchDelete, Key: []byte("k2")},
		{Kind: BatchPut, Key: []byte("k3"), Value: []byte{}},
	}
	req := decodeOneRequest(t, AppendBatch(nil, 4, ops))
	if req.Op != OpBatch || len(req.Ops) != 3 {
		t.Fatalf("batch: %+v", req)
	}
	for i, want := range ops {
		got := req.Ops[i]
		if got.Kind != want.Kind || !bytes.Equal(got.Key, want.Key) || !bytes.Equal(got.Value, want.Value) {
			t.Fatalf("batch op %d: got %+v want %+v", i, got, want)
		}
	}
}

func TestResponseRoundTrips(t *testing.T) {
	read := func(frame []byte, op Op) Response {
		t.Helper()
		body, err := ReadFrame(bytes.NewReader(frame), nil)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		resp, err := DecodeResponse(op, body)
		if err != nil {
			t.Fatalf("DecodeResponse: %v", err)
		}
		return resp
	}

	resp := read(AppendOKEmpty(nil, 1), OpPut)
	if resp.Status != StatusOK || resp.ID != 1 {
		t.Fatalf("ok-empty: %+v", resp)
	}

	resp = read(AppendOKValue(nil, 2, []byte("payload")), OpGet)
	if resp.Status != StatusOK || string(resp.Value) != "payload" {
		t.Fatalf("ok-value: %+v", resp)
	}

	resp = read(AppendOKValue(nil, 3, []byte(`{"a":1}`)), OpStats)
	if string(resp.Stats) != `{"a":1}` {
		t.Fatalf("stats: %+v", resp)
	}

	pairs := []KV{{[]byte("k1"), []byte("v1")}, {[]byte("k2"), []byte{}}}
	resp = read(AppendOKPairs(nil, 4, pairs), OpScan)
	if len(resp.Pairs) != 2 || string(resp.Pairs[0].Key) != "k1" ||
		string(resp.Pairs[1].Key) != "k2" || len(resp.Pairs[1].Value) != 0 {
		t.Fatalf("pairs: %+v", resp)
	}

	resp = read(AppendError(nil, 5, StatusNotFound, "nope"), OpGet)
	if resp.Status != StatusNotFound || resp.Msg != "nope" || resp.ID != 5 {
		t.Fatalf("error: %+v", resp)
	}
}

func TestDecodeRequestRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":               {},
		"zero opcode":         {0, 0, 0, 0, 0},
		"unknown opcode":      {byte(opMax), 0, 0, 0, 0},
		"truncated id":        {byte(OpPing), 1, 2},
		"get empty key":       {byte(OpGet), 0, 0, 0, 0},
		"put truncated klen":  {byte(OpPut), 0, 0, 0, 0, 9},
		"put key over frame":  {byte(OpPut), 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 'k'},
		"put empty key":       {byte(OpPut), 0, 0, 0, 0, 0, 0, 0, 0, 'v'},
		"batch huge count":    {byte(OpBatch), 0, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f},
		"batch bad kind":      append(appendU32([]byte{byte(OpBatch), 0, 0, 0, 0}, 1), 9, 1, 0, 0, 0, 'k', 0, 0, 0, 0),
		"batch delete w/ val": append(appendU32([]byte{byte(OpBatch), 0, 0, 0, 0}, 1), BatchDelete, 1, 0, 0, 0, 'k', 1, 0, 0, 0, 'v'),
	}
	for name, body := range cases {
		if _, err := DecodeRequest(body); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: want ErrMalformed, got %v", name, err)
		}
	}
}

func TestReadFrame(t *testing.T) {
	// Two frames back to back with buffer reuse.
	var wire []byte
	wire = AppendPing(wire, 1)
	wire = AppendGet(wire, 2, []byte("k"))
	r := bytes.NewReader(wire)
	buf, err := ReadFrame(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if req, err := DecodeRequest(buf); err != nil || req.Op != OpPing {
		t.Fatalf("frame 1: %v %+v", err, req)
	}
	if buf, err = ReadFrame(r, buf); err != nil {
		t.Fatal(err)
	}
	if req, err := DecodeRequest(buf); err != nil || req.Op != OpGet {
		t.Fatalf("frame 2: %v %+v", err, req)
	}
	if _, err = ReadFrame(r, buf); err != io.EOF {
		t.Fatalf("want io.EOF at clean end, got %v", err)
	}

	// Oversized announced length must be rejected before allocating.
	huge := appendU32(nil, MaxFrameSize+1)
	if _, err := ReadFrame(bytes.NewReader(huge), nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}

	// A truncated body is an unexpected EOF, not a clean close.
	trunc := appendU32(nil, 10)
	trunc = append(trunc, 1, 2, 3)
	if _, err := ReadFrame(bytes.NewReader(trunc), nil); err != io.ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
	// So is a truncated header.
	if _, err := ReadFrame(bytes.NewReader([]byte{1, 2}), nil); err != io.ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF on short header, got %v", err)
	}
}
