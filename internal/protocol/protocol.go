// Package protocol defines UniKV's binary wire protocol: a small
// length-prefixed framing with fixed little-endian integers, one opcode
// per engine operation, and a status byte on every response.
//
// # Framing
//
// Every message — request or response — is one frame:
//
//	uint32  length   // byte length of everything after this field
//	<body>           // length bytes
//
// A request body is:
//
//	uint8   opcode   // OpGet, OpPut, ...
//	uint32  id       // echoed verbatim in the response
//	<payload>        // opcode-specific, may be empty
//
// A response body is:
//
//	uint8   status   // StatusOK or an error status
//	uint32  id       // copied from the request
//	<payload>        // opcode-specific on StatusOK, UTF-8 message on error
//
// Responses are delivered in request order on a connection, so the id is
// redundant for a well-behaved peer; it exists so clients can cheaply
// detect desynchronization and for debugging captures.
//
// # Request payloads
//
//	PING    (empty)
//	GET     key
//	DELETE  key
//	PUT     uint32 keyLen | key | value          (value runs to frame end)
//	SCAN    uint32 startLen | start | uint32 endLen | end | uint32 limit
//	        endLen == NoBound means "no upper bound" (end absent)
//	BATCH   uint32 count | count × op, each op:
//	        uint8 kind (0 put, 1 delete) | uint32 keyLen | key |
//	        uint32 valLen | value        (valLen always 0 for deletes)
//	STATS   (empty)
//
// # Response payloads (StatusOK)
//
//	PING/PUT/DELETE/BATCH  (empty)
//	GET                    value
//	SCAN                   uint32 count | count × (uint32 keyLen | key |
//	                       uint32 valLen | value)
//	STATS                  JSON document (server-defined schema)
//
// All multi-byte integers are little-endian. Frames are capped at
// MaxFrameSize; a peer announcing a larger frame is protocol-invalid and
// the connection should be dropped.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Op identifies a request operation.
type Op uint8

// Opcodes. The zero value is intentionally invalid so an all-zero frame
// never decodes as a real request.
const (
	opInvalid Op = iota
	OpPing
	OpGet
	OpPut
	OpDelete
	OpScan
	OpBatch
	OpStats
	opMax
)

// String names the opcode for logs and errors.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "PING"
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpDelete:
		return "DELETE"
	case OpScan:
		return "SCAN"
	case OpBatch:
		return "BATCH"
	case OpStats:
		return "STATS"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Status is the first byte of every response body.
type Status uint8

// Response statuses. StatusOK carries an opcode-specific payload; every
// other status carries a human-readable message.
const (
	StatusOK Status = iota
	StatusNotFound
	StatusBadRequest // malformed frame or argument the engine rejected
	StatusTooLarge   // key/value/frame over the protocol or engine limit
	StatusClosed     // server is shutting down
	StatusInternal   // unexpected engine failure
	// StatusDegraded: the engine is in degraded read-only mode (a
	// background job failed terminally); writes are rejected until the
	// operator reopens the database, reads keep serving. Load balancers
	// should drain writes from a node answering with this status.
	StatusDegraded
	// StatusQuarantined: the key's partition is quarantined after
	// corruption was detected in it (by a scrub or a foreground read).
	// Only that key range is affected — other partitions keep serving
	// reads and writes, so this is a per-request rejection, not a node
	// drain signal. Run unikv-ctl repair to recover the partition.
	StatusQuarantined
)

// String names the status for logs and client-side errors.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusNotFound:
		return "NOT_FOUND"
	case StatusBadRequest:
		return "BAD_REQUEST"
	case StatusTooLarge:
		return "TOO_LARGE"
	case StatusClosed:
		return "CLOSED"
	case StatusInternal:
		return "INTERNAL"
	case StatusDegraded:
		return "DEGRADED"
	case StatusQuarantined:
		return "QUARANTINED"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Batch op kinds (wire values of BATCH entries).
const (
	BatchPut    uint8 = 0
	BatchDelete uint8 = 1
)

// Limits. MaxFrameSize bounds a whole frame body so a hostile peer cannot
// make the server allocate unbounded memory from one length word.
const (
	MaxFrameSize = 32 << 20 // 32 MiB
	// NoBound as an endLen marks a SCAN without an upper bound.
	NoBound = math.MaxUint32
	// NoLimit as a SCAN limit means "no count bound".
	NoLimit = math.MaxUint32
)

// ErrFrameTooLarge is returned when a frame header announces a body
// larger than MaxFrameSize.
var ErrFrameTooLarge = errors.New("protocol: frame exceeds MaxFrameSize")

// ErrMalformed is wrapped by all decode errors caused by frame contents
// (as opposed to I/O failures reading the frame).
var ErrMalformed = errors.New("protocol: malformed frame")

func malformedf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrMalformed, fmt.Sprintf(format, args...))
}

// BatchOp is one operation of a BATCH request.
type BatchOp struct {
	Kind  uint8 // BatchPut or BatchDelete
	Key   []byte
	Value []byte // nil for deletes
}

// Request is a decoded request frame. Fields are valid per the opcode;
// byte slices alias the decode buffer and must be copied to outlive it.
type Request struct {
	Op    Op
	ID    uint32
	Key   []byte // GET, PUT, DELETE
	Value []byte // PUT
	Start []byte // SCAN
	End   []byte // SCAN; nil means no upper bound
	NoEnd bool   // SCAN: true when End is absent (distinguishes nil from empty)
	Limit int    // SCAN; <= 0 means no count bound
	Ops   []BatchOp
}

// KV is one pair of a SCAN response.
type KV struct {
	Key   []byte
	Value []byte
}

// Response is a decoded response frame. Value/Pairs/Stats are valid per
// the request opcode; Msg is set for non-OK statuses.
type Response struct {
	Status Status
	ID     uint32
	Value  []byte // GET
	Pairs  []KV   // SCAN
	Stats  []byte // STATS (JSON)
	Msg    string // non-OK statuses
}

// --------------------------------------------------------------------------
// Encoding. All Append* functions append a complete frame to dst and
// return the extended slice, so callers can reuse one buffer per
// connection without allocation.

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

// beginFrame reserves the length word, returning its offset.
func beginFrame(dst []byte) ([]byte, int) {
	off := len(dst)
	return append(dst, 0, 0, 0, 0), off
}

// endFrame patches the reserved length word at off.
func endFrame(dst []byte, off int) []byte {
	binary.LittleEndian.PutUint32(dst[off:], uint32(len(dst)-off-4))
	return dst
}

func appendReqHeader(dst []byte, op Op, id uint32) []byte {
	dst = append(dst, byte(op))
	return appendU32(dst, id)
}

// AppendPing appends a PING request frame.
func AppendPing(dst []byte, id uint32) []byte {
	dst, off := beginFrame(dst)
	dst = appendReqHeader(dst, OpPing, id)
	return endFrame(dst, off)
}

// AppendStats appends a STATS request frame.
func AppendStats(dst []byte, id uint32) []byte {
	dst, off := beginFrame(dst)
	dst = appendReqHeader(dst, OpStats, id)
	return endFrame(dst, off)
}

// AppendGet appends a GET request frame.
func AppendGet(dst []byte, id uint32, key []byte) []byte {
	dst, off := beginFrame(dst)
	dst = appendReqHeader(dst, OpGet, id)
	dst = append(dst, key...)
	return endFrame(dst, off)
}

// AppendDelete appends a DELETE request frame.
func AppendDelete(dst []byte, id uint32, key []byte) []byte {
	dst, off := beginFrame(dst)
	dst = appendReqHeader(dst, OpDelete, id)
	dst = append(dst, key...)
	return endFrame(dst, off)
}

// AppendPut appends a PUT request frame.
func AppendPut(dst []byte, id uint32, key, value []byte) []byte {
	dst, off := beginFrame(dst)
	dst = appendReqHeader(dst, OpPut, id)
	dst = appendU32(dst, uint32(len(key)))
	dst = append(dst, key...)
	dst = append(dst, value...)
	return endFrame(dst, off)
}

// AppendScan appends a SCAN request frame. A nil end (with noEnd true)
// scans to the end of the keyspace; limit <= 0 means no count bound.
func AppendScan(dst []byte, id uint32, start, end []byte, noEnd bool, limit int) []byte {
	dst, off := beginFrame(dst)
	dst = appendReqHeader(dst, OpScan, id)
	dst = appendU32(dst, uint32(len(start)))
	dst = append(dst, start...)
	if noEnd {
		dst = appendU32(dst, NoBound)
	} else {
		dst = appendU32(dst, uint32(len(end)))
		dst = append(dst, end...)
	}
	if limit <= 0 {
		dst = appendU32(dst, NoLimit)
	} else {
		dst = appendU32(dst, uint32(limit))
	}
	return endFrame(dst, off)
}

// AppendBatch appends a BATCH request frame.
func AppendBatch(dst []byte, id uint32, ops []BatchOp) []byte {
	dst, off := beginFrame(dst)
	dst = appendReqHeader(dst, OpBatch, id)
	dst = appendU32(dst, uint32(len(ops)))
	for _, op := range ops {
		dst = append(dst, op.Kind)
		dst = appendU32(dst, uint32(len(op.Key)))
		dst = append(dst, op.Key...)
		if op.Kind == BatchDelete {
			dst = appendU32(dst, 0)
			continue
		}
		dst = appendU32(dst, uint32(len(op.Value)))
		dst = append(dst, op.Value...)
	}
	return endFrame(dst, off)
}

// AppendOKEmpty appends an empty-payload StatusOK response (PING, PUT,
// DELETE, BATCH).
func AppendOKEmpty(dst []byte, id uint32) []byte {
	dst, off := beginFrame(dst)
	dst = append(dst, byte(StatusOK))
	dst = appendU32(dst, id)
	return endFrame(dst, off)
}

// AppendOKValue appends a StatusOK response carrying one opaque payload
// (GET values, STATS documents).
func AppendOKValue(dst []byte, id uint32, payload []byte) []byte {
	dst, off := beginFrame(dst)
	dst = append(dst, byte(StatusOK))
	dst = appendU32(dst, id)
	dst = append(dst, payload...)
	return endFrame(dst, off)
}

// AppendOKPairs appends a StatusOK SCAN response.
func AppendOKPairs(dst []byte, id uint32, pairs []KV) []byte {
	dst, off := beginFrame(dst)
	dst = append(dst, byte(StatusOK))
	dst = appendU32(dst, id)
	dst = appendU32(dst, uint32(len(pairs)))
	for _, kv := range pairs {
		dst = appendU32(dst, uint32(len(kv.Key)))
		dst = append(dst, kv.Key...)
		dst = appendU32(dst, uint32(len(kv.Value)))
		dst = append(dst, kv.Value...)
	}
	return endFrame(dst, off)
}

// AppendError appends a non-OK response with a message.
func AppendError(dst []byte, id uint32, st Status, msg string) []byte {
	dst, off := beginFrame(dst)
	dst = append(dst, byte(st))
	dst = appendU32(dst, id)
	dst = append(dst, msg...)
	return endFrame(dst, off)
}

// --------------------------------------------------------------------------
// Frame I/O.

// ReadFrame reads one length-prefixed frame body into buf (growing it as
// needed) and returns the body. io.EOF is returned unchanged when the
// peer closes cleanly between frames; a partial frame yields
// io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return buf, io.ErrUnexpectedEOF
		}
		return buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return buf, ErrFrameTooLarge
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.EOF) {
			return buf, io.ErrUnexpectedEOF
		}
		return buf, err
	}
	return buf, nil
}

// --------------------------------------------------------------------------
// Decoding. Decoders take the frame *body* (after the length word) and
// never panic on malformed input; every length field is validated against
// the remaining bytes before slicing.

type reader struct {
	buf []byte
	off int
}

func (r *reader) remain() int { return len(r.buf) - r.off }

func (r *reader) u8() (uint8, error) {
	if r.remain() < 1 {
		return 0, malformedf("truncated at byte %d", r.off)
	}
	v := r.buf[r.off]
	r.off++
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.remain() < 4 {
		return 0, malformedf("truncated at byte %d", r.off)
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

// bytes returns n bytes aliasing the frame buffer.
func (r *reader) bytes(n uint32) ([]byte, error) {
	if uint64(n) > uint64(r.remain()) {
		return nil, malformedf("length %d exceeds %d remaining bytes", n, r.remain())
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

func (r *reader) rest() []byte {
	b := r.buf[r.off:]
	r.off = len(r.buf)
	return b
}

// DecodeRequest decodes a request frame body. Returned slices alias body.
func DecodeRequest(body []byte) (Request, error) {
	var req Request
	r := &reader{buf: body}
	op, err := r.u8()
	if err != nil {
		return req, err
	}
	req.Op = Op(op)
	if req.Op == opInvalid || req.Op >= opMax {
		return req, malformedf("unknown opcode %d", op)
	}
	if req.ID, err = r.u32(); err != nil {
		return req, err
	}
	switch req.Op {
	case OpPing, OpStats:
		// No payload; trailing bytes are tolerated for forward compat.
	case OpGet, OpDelete:
		req.Key = r.rest()
		if len(req.Key) == 0 {
			return req, malformedf("%s with empty key", req.Op)
		}
	case OpPut:
		klen, err := r.u32()
		if err != nil {
			return req, err
		}
		if req.Key, err = r.bytes(klen); err != nil {
			return req, err
		}
		if len(req.Key) == 0 {
			return req, malformedf("PUT with empty key")
		}
		req.Value = r.rest()
	case OpScan:
		slen, err := r.u32()
		if err != nil {
			return req, err
		}
		if req.Start, err = r.bytes(slen); err != nil {
			return req, err
		}
		elen, err := r.u32()
		if err != nil {
			return req, err
		}
		if elen == NoBound {
			req.NoEnd = true
		} else if req.End, err = r.bytes(elen); err != nil {
			return req, err
		}
		limit, err := r.u32()
		if err != nil {
			return req, err
		}
		if limit == NoLimit {
			req.Limit = 0
		} else {
			req.Limit = int(limit)
		}
	case OpBatch:
		count, err := r.u32()
		if err != nil {
			return req, err
		}
		// Each op takes at least 9 bytes (kind + two length words), so a
		// hostile count cannot force a large allocation past this check.
		if uint64(count)*9 > uint64(r.remain()) {
			return req, malformedf("batch count %d exceeds frame size", count)
		}
		req.Ops = make([]BatchOp, 0, count)
		for i := uint32(0); i < count; i++ {
			var op BatchOp
			if op.Kind, err = r.u8(); err != nil {
				return req, err
			}
			if op.Kind != BatchPut && op.Kind != BatchDelete {
				return req, malformedf("batch op %d: unknown kind %d", i, op.Kind)
			}
			klen, err := r.u32()
			if err != nil {
				return req, err
			}
			if op.Key, err = r.bytes(klen); err != nil {
				return req, err
			}
			if len(op.Key) == 0 {
				return req, malformedf("batch op %d: empty key", i)
			}
			vlen, err := r.u32()
			if err != nil {
				return req, err
			}
			if op.Kind == BatchDelete && vlen != 0 {
				return req, malformedf("batch op %d: delete with value", i)
			}
			if op.Value, err = r.bytes(vlen); err != nil {
				return req, err
			}
			if op.Kind == BatchDelete {
				op.Value = nil
			}
			req.Ops = append(req.Ops, op)
		}
		if r.remain() != 0 {
			return req, malformedf("batch with %d trailing bytes", r.remain())
		}
	}
	return req, nil
}

// DecodeResponse decodes a response frame body for the given request
// opcode. Returned slices alias body.
func DecodeResponse(op Op, body []byte) (Response, error) {
	var resp Response
	r := &reader{buf: body}
	st, err := r.u8()
	if err != nil {
		return resp, err
	}
	resp.Status = Status(st)
	if resp.ID, err = r.u32(); err != nil {
		return resp, err
	}
	if resp.Status != StatusOK {
		resp.Msg = string(r.rest())
		return resp, nil
	}
	switch op {
	case OpGet:
		resp.Value = r.rest()
	case OpStats:
		resp.Stats = r.rest()
	case OpScan:
		count, err := r.u32()
		if err != nil {
			return resp, err
		}
		// Each pair takes at least 8 bytes of length words.
		if uint64(count)*8 > uint64(r.remain()) {
			return resp, malformedf("scan count %d exceeds frame size", count)
		}
		resp.Pairs = make([]KV, 0, count)
		for i := uint32(0); i < count; i++ {
			var kv KV
			klen, err := r.u32()
			if err != nil {
				return resp, err
			}
			if kv.Key, err = r.bytes(klen); err != nil {
				return resp, err
			}
			vlen, err := r.u32()
			if err != nil {
				return resp, err
			}
			if kv.Value, err = r.bytes(vlen); err != nil {
				return resp, err
			}
			resp.Pairs = append(resp.Pairs, kv)
		}
	}
	return resp, nil
}
