package bench

import (
	"fmt"
	"time"

	"unikv/internal/core"
	"unikv/internal/ycsb"
)

// FigCache measures the sharded block/value read cache on skewed reads:
// zipfian YCSB-C (read-only) and YCSB-B (95% read / 5% update) against a
// dataset settled into the SortedStore — so point reads resolve through a
// table block plus a value-log read — across cache sizes including off.
// Expected shape: hit rate and throughput grow with cache size until the
// zipfian hot set fits; cache-off matches the pre-cache engine (~1 block
// read per Get, the paper's no-Bloom-filter design point).
func FigCache(p Params) []Table {
	p = p.WithDefaults()
	ds := p.DatasetBytes()
	sizes := []struct {
		name  string
		bytes int64
	}{
		{"off", core.CacheOff},
		{"ds/16", ds / 16},
		{"ds/4", ds / 4},
		{"ds", ds},
	}
	workloads := []struct {
		name string
		w    ycsb.Workload
	}{
		{"ycsb-c", ycsb.WorkloadC},
		{"ycsb-b", ycsb.WorkloadB},
	}
	t := Table{
		Title: "fig-cache: read cache vs skewed reads (zipfian)",
		Note: fmt.Sprintf("%d records x %dB compacted into the sorted tier; %d ops per phase after one warming pass",
			p.N, p.ValueSize, p.Ops),
		Header: []string{"cache", "workload", "kops", "blk-hit", "val-hit", "speedup"},
	}
	base := map[string]time.Duration{}
	for _, sz := range sizes {
		for _, wl := range workloads {
			s, _ := openUniKV(p, func(o *core.Options) { o.CacheBytes = sz.bytes })
			if _, err := loadPhase(s, p.N, p.ValueSize); err != nil {
				panic(err)
			}
			if err := s.Compact(); err != nil {
				panic(err)
			}
			// Warm pass: faults the zipfian hot set into the cache so the
			// measured phase reflects steady state, not cold misses.
			if _, err := runYCSB(s, wl.w, p.N, p.Ops, p.ValueSize, p.Seed); err != nil {
				panic(err)
			}
			m0 := s.(*unikvStore).Metrics()
			d, err := runYCSB(s, wl.w, p.N, p.Ops, p.ValueSize, p.Seed+1)
			if err != nil {
				panic(err)
			}
			m1 := s.(*unikvStore).Metrics()
			s.Close()

			speedup := "1.00x"
			if sz.bytes == core.CacheOff {
				base[wl.name] = d
			} else if b := base[wl.name]; b > 0 && d > 0 {
				speedup = fmt.Sprintf("%.2fx", b.Seconds()/d.Seconds())
			}
			t.Rows = append(t.Rows, []string{
				sz.name, wl.name, kops(p.Ops, d),
				hitRate(m1.CacheBlockHits-m0.CacheBlockHits, m1.CacheBlockMisses-m0.CacheBlockMisses),
				hitRate(m1.CacheValueHits-m0.CacheValueHits, m1.CacheValueMisses-m0.CacheValueMisses),
				speedup,
			})
			p.logf("fig-cache %s/%s done", sz.name, wl.name)
		}
	}
	return []Table{t}
}

// hitRate formats hits/(hits+misses) as a percentage ("-" when idle).
func hitRate(hits, misses int64) string {
	if hits+misses == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(hits+misses))
}
