package bench

import (
	"fmt"

	"unikv/internal/ycsb"
)

// Fig1 reproduces the motivation experiment: a pure hash-indexed store
// (SkimpyStash-class) vs a leveled LSM (LevelDB-class) as the dataset
// grows. Expected shape: the hash store wins at small N and degrades below
// the LSM as its bucket chains lengthen.
func Fig1(p Params) []Table {
	p = p.WithDefaults()
	sizes := []int{p.N / 8, p.N / 4, p.N / 2, p.N}
	load := Table{
		Title:  "fig1a: load throughput vs dataset size (KOps/s)",
		Note:   fmt.Sprintf("value=%dB; hash store uses a fixed 4096-bucket directory", p.ValueSize),
		Header: []string{"records", "hashstore", "leveldb"},
	}
	read := Table{
		Title:  "fig1b: random-read throughput vs dataset size (KOps/s)",
		Header: []string{"records", "hashstore", "leveldb"},
	}
	for _, n := range sizes {
		row1 := []string{fmt.Sprintf("%d", n)}
		row2 := []string{fmt.Sprintf("%d", n)}
		for _, kind := range []string{KindHashStore, KindLevelDB} {
			s, _, err := openFresh(kind, Params{N: n, ValueSize: p.ValueSize}.WithDefaults(), nil)
			if err != nil {
				panic(err)
			}
			dLoad, err := loadPhase(s, n, p.ValueSize)
			if err != nil {
				panic(err)
			}
			ops := n / 2
			dRead, err := readPhase(s, n, ops, ycsb.Uniform, p.Seed)
			if err != nil {
				panic(err)
			}
			s.Close()
			row1 = append(row1, kops(n, dLoad))
			row2 = append(row2, kops(ops, dRead))
			p.logf("fig1 n=%d %s: load %s KOps/s, read %s KOps/s", n, kind, kops(n, dLoad), kops(ops, dRead))
		}
		load.Rows = append(load.Rows, row1)
		read.Rows = append(read.Rows, row2)
	}
	return []Table{load, read}
}

// Fig2 reproduces the access-skew measurement: load a leveled LSM, issue
// zipfian reads, and report per-level table counts vs access share.
// Expected shape: the last level holds most tables but a small share of
// accesses (paper: ~70 % of tables, ~9 % of accesses).
func Fig2(p Params) []Table {
	p = p.WithDefaults()
	s, _, err := openFresh(KindLevelDB, p, nil)
	if err != nil {
		panic(err)
	}
	defer s.Close()
	if _, err := loadPhase(s, p.N, p.ValueSize); err != nil {
		panic(err)
	}
	// Real KV workloads skew toward recently written data (the paper's
	// premise); the Latest distribution models that. Rank-zipfian would
	// instead hammer the earliest-inserted keys, which compaction has
	// already pushed to the deepest level.
	if _, err := readPhase(s, p.N, p.Ops, ycsb.Latest, p.Seed); err != nil {
		panic(err)
	}
	db := s.(*lsmStore).DB()
	stats := db.Stats()
	var totalTables int
	var totalAccesses int64
	for _, ls := range stats.Levels {
		totalTables += ls.Tables
		totalAccesses += ls.Accesses
	}
	t := Table{
		Title: "fig2: SSTable access frequency by level (leveled LSM, latest-skewed reads)",
		Note: fmt.Sprintf("%d records loaded, %d latest-skewed reads; %d tables, %d table accesses",
			p.N, p.Ops, totalTables, totalAccesses),
		Header: []string{"level", "tables", "tables%", "accesses", "accesses%"},
	}
	for _, ls := range stats.Levels {
		if ls.Tables == 0 && ls.Accesses == 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("L%d", ls.Level),
			fmt.Sprintf("%d", ls.Tables),
			percent(int64(ls.Tables), int64(totalTables)),
			fmt.Sprintf("%d", ls.Accesses),
			percent(ls.Accesses, totalAccesses),
		})
	}
	return []Table{t}
}

func percent(part, total int64) string {
	if total == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(total))
}

// TabIO reproduces the I/O-cost analysis as measured amplification: logical
// bytes written/read by the engine divided by user bytes, during load and a
// read phase. Expected shape: UniKV's write amp and read amp are several
// times lower than the leveled LSM's.
func TabIO(p Params) []Table {
	p = p.WithDefaults()
	t := Table{
		Title: "tab-io: measured I/O amplification (load + zipfian reads)",
		Note: fmt.Sprintf("%d records x %dB; write-amp = engine bytes written / user bytes; read-amp = engine bytes read / user bytes requested",
			p.N, p.ValueSize),
		Header: []string{"store", "write-amp(load)", "read-amp(reads)", "read-ops/get"},
	}
	userWrite := float64(p.N) * float64(p.ValueSize+20)
	for _, kind := range []string{KindLevelDB, KindRocksDB, KindHyperLevelDB, KindPebblesDB, KindUniKV} {
		s, fs, err := openFresh(kind, p, nil)
		if err != nil {
			panic(err)
		}
		if _, err := loadPhase(s, p.N, p.ValueSize); err != nil {
			panic(err)
		}
		wrote := float64(fs.Counters().BytesWritten.Load())
		before := fs.Counters().BytesRead.Load()
		readOpsBefore := fs.Counters().ReadOps.Load()
		if _, err := readPhase(s, p.N, p.Ops, ycsb.Zipfian, p.Seed); err != nil {
			panic(err)
		}
		readBytes := float64(fs.Counters().BytesRead.Load() - before)
		readOps := float64(fs.Counters().ReadOps.Load() - readOpsBefore)
		userRead := float64(p.Ops) * float64(p.ValueSize+20)
		s.Close()
		t.Rows = append(t.Rows, []string{
			kind,
			ratio(wrote / userWrite),
			ratio(readBytes / userRead),
			ratio(readOps / float64(p.Ops)),
		})
		p.logf("tab-io %s: WA=%.2f RA=%.2f ops/get=%.2f",
			kind, wrote/userWrite, readBytes/userRead, readOps/float64(p.Ops))
	}
	return []Table{t}
}
