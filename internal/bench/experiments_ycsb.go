package bench

import (
	"fmt"

	"unikv/internal/ycsb"
)

// Fig8 reproduces the mixed-workload evaluation: YCSB core workloads A–F.
// Expected shape: UniKV leads on the read/update mixes (A, B, C, F) and on
// D; on the scan-heavy E it is comparable to LevelDB and ahead of
// PebblesDB.
func Fig8(p Params) []Table {
	p = p.WithDefaults()
	t := Table{
		Title: "fig8: YCSB core workloads (KOps/s)",
		Note: fmt.Sprintf("%d-record load, %d ops per workload, zipfian unless noted; E scans ≤100 entries",
			p.N, p.Ops),
		Header: append([]string{"workload"}, p.Stores...),
	}
	for _, w := range ycsb.CoreWorkloads() {
		row := []string{w.Name}
		for _, kind := range p.Stores {
			s, _, err := openFresh(kind, p, nil)
			if err != nil {
				panic(err)
			}
			if _, err := loadPhase(s, p.N, p.ValueSize); err != nil {
				panic(err)
			}
			d, err := runYCSB(s, w, p.N, p.Ops, p.ValueSize, p.Seed)
			if err != nil {
				panic(err)
			}
			s.Close()
			row = append(row, kops(p.Ops, d))
			p.logf("fig8 %s %s: %s KOps/s", w.Name, kind, kops(p.Ops, d))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}
}
