package bench

import (
	"fmt"
	"math/rand"
	"time"

	"unikv/internal/core"
	"unikv/internal/ycsb"
)

// scanPhaseHist performs ops scans of scanLen entries from uniform random
// start keys, recording per-scan latency. Returns the wall time and the
// latency histogram.
func scanPhaseHist(s Store, n, ops, scanLen int, seed int64) (time.Duration, *Hist, error) {
	rnd := rand.New(rand.NewSource(seed))
	h := &Hist{}
	start := time.Now()
	for i := 0; i < ops; i++ {
		k := ycsb.Key(rnd.Intn(n))
		t0 := time.Now()
		if _, err := s.Scan(k, scanLen); err != nil {
			return 0, nil, err
		}
		h.Record(time.Since(t0))
	}
	return time.Since(start), h, nil
}

// FigScan measures range-scan cost against the number of overlapping
// unsorted tables, sorted view on vs off. The view's claim is REMIX's:
// with k overlapping tables a scan without the view pays a k-way merge —
// every step compares the heads of k iterators — while the view pays one
// binary search on a globally sorted entry array and then walks it
// sequentially, so view-on throughput should hold roughly flat as k grows
// while view-off degrades with k.
//
// Table counts are exact: records are loaded round-robin in k rounds with
// a forced flush after each, so every table spans the whole keyspace
// (maximum overlap, the adversarial shape for the merge). Scan merge is
// disabled and UnsortedLimit raised above the dataset so the store stays
// at k tables for the measured phase — this isolates the mechanism the
// scan-merge trigger exists to bound in production.
func FigScan(p Params) []Table {
	p = p.WithDefaults()
	tableCounts := []int{4, 16, 32}
	const scanLen = 50
	modes := []struct {
		name string
		off  bool
	}{
		{"off", true},
		{"on", false},
	}
	t := Table{
		Title: "fig-scan: range scans vs unsorted table count, sorted view on/off",
		Note: fmt.Sprintf("%d records x %dB loaded round-robin into k fully overlapping tables; %d scans x %d entries per phase after one warming pass",
			p.N, p.ValueSize, p.Ops, scanLen),
		Header: []string{"tables", "view", "kops", "p50", "p99", "view-mem", "speedup"},
	}
	base := map[int]time.Duration{}
	for _, k := range tableCounts {
		for _, mode := range modes {
			off := mode.off
			s, _ := openUniKV(p, func(o *core.Options) {
				o.SortedViewOff = off
				// One explicit flush per round is the only table source.
				o.MemtableSize = 2 * p.DatasetBytes()
				o.UnsortedLimit = 8 * p.DatasetBytes()
				o.HashBuckets = 1 << 14
				o.DisableScanMerge = true
			})
			db := s.(*unikvStore).DB()
			// Round r holds keys {r, r+k, r+2k, ...}: every table covers
			// the whole keyspace.
			for r := 0; r < k; r++ {
				for i := r; i < p.N; i += k {
					if err := s.Put(ycsb.Key(i), ycsb.Value(i, p.ValueSize)); err != nil {
						panic(err)
					}
				}
				if err := db.Flush(); err != nil {
					panic(err)
				}
			}
			// Warm pass: faults blocks into the cache (and, view-on, pays
			// any lazy build) so the measured phase is steady state.
			if _, _, err := scanPhaseHist(s, p.N, p.Ops, scanLen, p.Seed); err != nil {
				panic(err)
			}
			d, h, err := scanPhaseHist(s, p.N, p.Ops, scanLen, p.Seed+1)
			if err != nil {
				panic(err)
			}
			m := s.(*unikvStore).Metrics()
			s.Close()

			speedup := "1.00x"
			if mode.off {
				base[k] = d
			} else if b := base[k]; b > 0 && d > 0 {
				speedup = fmt.Sprintf("%.2fx", b.Seconds()/d.Seconds())
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(m.UnsortedTables), mode.name,
				kops(p.Ops, d),
				fmtLat(h.Quantile(0.50)), fmtLat(h.Quantile(0.99)),
				fmt.Sprintf("%dKB", m.SortedViewBytes>>10),
				speedup,
			})
			prefix := fmt.Sprintf("fig-scan/t%d/%s", k, mode.name)
			t.Metrics = append(t.Metrics,
				Metric{Name: prefix + "/kops", Unit: "kops", Better: "higher",
					Value: float64(p.Ops) / d.Seconds() / 1000},
				Metric{Name: prefix + "/p50", Unit: "us", Better: "lower",
					Value: float64(h.Quantile(0.50).Nanoseconds()) / 1e3},
				Metric{Name: prefix + "/p99", Unit: "us", Better: "lower",
					Value: float64(h.Quantile(0.99).Nanoseconds()) / 1e3},
			)
			p.logf("fig-scan t%d/%s done", k, mode.name)
		}
	}
	return []Table{t}
}
