package bench

import (
	"fmt"
	"sync"
	"time"

	"unikv/internal/core"
	"unikv/internal/ycsb"
)

// runYCSBConcurrentHist drives workload w with `clients` concurrent
// workers, each running its own deterministic YCSB client (seed+worker)
// and recording per-op latency into its own histogram. Returns the wall
// time of the whole phase and the merged histogram. ops is the total
// across all workers.
func runYCSBConcurrentHist(s Store, w ycsb.Workload, n, ops, valueSize int, seed int64, clients int) (time.Duration, *Hist, error) {
	if clients < 1 {
		clients = 1
	}
	per := ops / clients
	if per < 1 {
		per = 1
	}
	hists := make([]Hist, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			h := &hists[c]
			cl := ycsb.NewClient(w, n, seed+int64(c))
			for i := 0; i < per; i++ {
				op := cl.Next()
				t0 := time.Now()
				switch op.Type {
				case ycsb.OpRead:
					if _, err := s.Get(op.Key); err != nil && !isNotFound(err) {
						errs[c] = err
						return
					}
				case ycsb.OpUpdate, ycsb.OpInsert:
					if err := s.Put(op.Key, ycsb.Value(i, valueSize)); err != nil {
						errs[c] = err
						return
					}
				}
				h.Record(time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	merged := &Hist{}
	for c := range hists {
		merged.Merge(&hists[c])
	}
	for _, err := range errs {
		if err != nil {
			return 0, nil, err
		}
	}
	return elapsed, merged, nil
}

// FigHotRing measures the hot-key read layer on skewed traffic: zipfian
// YCSB-C (read-only) and YCSB-B (95/5) at increasing client counts, ring
// on vs off, against a dataset settled into the sorted tier. The layer's
// claim is the single-probe fast path: the hottest keys skip partition
// routing, the partition read lock, the tiered lookup, and the value-log
// dereference entirely, so read p50/p99 and aggregate throughput should
// improve with skew and with contention (more clients), while YCSB-B's 5%
// writes exercise the invalidation protocol at full speed.
func FigHotRing(p Params) []Table {
	p = p.WithDefaults()
	clientCounts := []int{1, 8, 32}
	workloads := []struct {
		name string
		w    ycsb.Workload
	}{
		{"ycsb-c", ycsb.WorkloadC},
		{"ycsb-b", ycsb.WorkloadB},
	}
	modes := []struct {
		name    string
		entries int
	}{
		{"off", core.HotRingOff},
		{"on", 0}, // default size
	}
	t := Table{
		Title: "fig-hotring: hot-key read layer vs skewed reads (zipfian)",
		Note: fmt.Sprintf("%d records x %dB compacted into the sorted tier; %d ops per phase after one warming pass; hotring default size",
			p.N, p.ValueSize, p.Ops),
		Header: []string{"workload", "clients", "hotring", "kops", "p50", "p99", "ring-hit", "speedup"},
	}
	base := map[string]time.Duration{}
	for _, wl := range workloads {
		for _, clients := range clientCounts {
			for _, mode := range modes {
				entries := mode.entries
				s, _ := openUniKV(p, func(o *core.Options) { o.HotRingEntries = entries })
				if _, err := loadPhase(s, p.N, p.ValueSize); err != nil {
					panic(err)
				}
				if err := s.Compact(); err != nil {
					panic(err)
				}
				// Warm pass: promotes the zipfian hot set into the ring (and
				// faults it into the cache) so the measured phase reflects
				// steady state.
				if _, _, err := runYCSBConcurrentHist(s, wl.w, p.N, p.Ops, p.ValueSize, p.Seed, clients); err != nil {
					panic(err)
				}
				m0 := s.(*unikvStore).Metrics()
				d, h, err := runYCSBConcurrentHist(s, wl.w, p.N, p.Ops, p.ValueSize, p.Seed+1, clients)
				if err != nil {
					panic(err)
				}
				m1 := s.(*unikvStore).Metrics()
				s.Close()

				cfg := fmt.Sprintf("%s/c%d", wl.name, clients)
				speedup := "1.00x"
				if mode.name == "off" {
					base[cfg] = d
				} else if b := base[cfg]; b > 0 && d > 0 {
					speedup = fmt.Sprintf("%.2fx", b.Seconds()/d.Seconds())
				}
				opsDone := int(h.Count())
				t.Rows = append(t.Rows, []string{
					wl.name, fmt.Sprint(clients), mode.name,
					kops(opsDone, d),
					fmtLat(h.Quantile(0.50)), fmtLat(h.Quantile(0.99)),
					hitRate(m1.HotRingHits-m0.HotRingHits, m1.HotRingMisses-m0.HotRingMisses),
					speedup,
				})
				prefix := "fig-hotring/" + cfg + "/" + mode.name
				t.Metrics = append(t.Metrics,
					Metric{Name: prefix + "/kops", Unit: "kops", Better: "higher",
						Value: float64(opsDone) / d.Seconds() / 1000},
					Metric{Name: prefix + "/p50", Unit: "us", Better: "lower",
						Value: float64(h.Quantile(0.50).Nanoseconds()) / 1e3},
					Metric{Name: prefix + "/p99", Unit: "us", Better: "lower",
						Value: float64(h.Quantile(0.99).Nanoseconds()) / 1e3},
				)
				p.logf("fig-hotring %s/%s done", cfg, mode.name)
			}
		}
	}
	return []Table{t}
}
