// Package bench is the experiment harness: it runs every table and figure
// of the paper's evaluation against the five engines (UniKV and the
// LevelDB/RocksDB/HyperLevelDB/PebblesDB-class baselines) behind one Store
// interface, and prints the same rows/series the paper reports.
//
// Engines run over the in-memory vfs by default so results measure
// algorithmic cost plus *counted* logical I/O (write/read amplification via
// vfs counters) rather than one machine's disk; see EXPERIMENTS.md for the
// interpretation contract.
package bench

import (
	"errors"
	"fmt"

	"unikv/internal/core"
	"unikv/internal/flsm"
	"unikv/internal/hashstore"
	"unikv/internal/lsm"
	"unikv/internal/vfs"
)

// ErrScanUnsupported marks engines without range scans (hash store).
var ErrScanUnsupported = errors.New("bench: scan unsupported")

// KV is one scan result.
type KV struct {
	Key   []byte
	Value []byte
}

// Store is the engine-neutral interface the experiments drive.
type Store interface {
	Name() string
	Put(key, value []byte) error
	Get(key []byte) ([]byte, error)
	Delete(key []byte) error
	Scan(start []byte, limit int) ([]KV, error)
	// Compact settles background-equivalent work (drain hot tiers) so read
	// phases measure steady state.
	Compact() error
	Close() error
}

// Store kinds.
const (
	KindUniKV        = "unikv"
	KindLevelDB      = "leveldb"
	KindRocksDB      = "rocksdb"
	KindHyperLevelDB = "hyperleveldb"
	KindPebblesDB    = "pebblesdb"
	KindHashStore    = "hashstore"
)

// AllKinds lists the paper's comparison set (fig7/8/9/10).
func AllKinds() []string {
	return []string{KindLevelDB, KindRocksDB, KindHyperLevelDB, KindPebblesDB, KindUniKV}
}

// Env describes where and how to open a store.
type Env struct {
	// FS defaults to a fresh in-memory file system.
	FS vfs.FS
	// Dir defaults to the store kind.
	Dir string
	// DatasetBytes sizes engine buffers: each engine's write buffer is
	// ~1/64 of the expected dataset so tier shapes match the paper's
	// regime at laptop scale.
	DatasetBytes int64
	// UniKVTweak mutates the UniKV options before opening (ablations).
	UniKVTweak func(*core.Options)
	// BackgroundWorkers sizes UniKV's maintenance pool (0 = inline).
	// Applied before UniKVTweak, so a tweak can still override it.
	BackgroundWorkers int
}

func (e Env) withDefaults(kind string) Env {
	if e.FS == nil {
		e.FS = vfs.NewMem()
	}
	if e.Dir == "" {
		e.Dir = kind
	}
	if e.DatasetBytes <= 0 {
		e.DatasetBytes = 64 << 20
	}
	return e
}

// clampMin returns v or lo, whichever is larger.
func clampMin(v, lo int64) int64 {
	if v < lo {
		return lo
	}
	return v
}

// OpenStore opens one engine sized for the environment's dataset.
func OpenStore(kind string, env Env) (Store, error) {
	env = env.withDefaults(kind)
	memtable := clampMin(env.DatasetBytes/64, 16<<10)
	switch kind {
	case KindUniKV:
		opts := core.Options{
			FS:                 env.FS,
			MemtableSize:       memtable,
			UnsortedLimit:      clampMin(env.DatasetBytes/8, 8*memtable),
			PartitionSizeLimit: clampMin(env.DatasetBytes/3, 32*memtable),
			MaxLogSize:         clampMin(env.DatasetBytes/16, 64<<10),
			TargetTableSize:    clampMin(env.DatasetBytes/128, 32<<10),
			BackgroundWorkers:  env.BackgroundWorkers,
		}
		if env.UniKVTweak != nil {
			env.UniKVTweak(&opts)
		}
		db, err := core.Open(env.Dir, opts)
		if err != nil {
			return nil, err
		}
		return &unikvStore{db: db}, nil
	case KindLevelDB, KindRocksDB, KindHyperLevelDB:
		var cfg lsm.Config
		scale := float64(memtable) / float64(4<<20)
		switch kind {
		case KindLevelDB:
			cfg = lsm.ConfigLevelDB(scale)
		case KindRocksDB:
			cfg = lsm.ConfigRocksDB(scale)
		case KindHyperLevelDB:
			cfg = lsm.ConfigHyperLevelDB(scale)
		}
		cfg.FS = env.FS
		db, err := lsm.Open(env.Dir, cfg)
		if err != nil {
			return nil, err
		}
		return &lsmStore{db: db, name: kind}, nil
	case KindPebblesDB:
		cfg := flsm.ConfigPebblesDB(float64(memtable) / float64(4<<20))
		cfg.FS = env.FS
		db, err := flsm.Open(env.Dir, cfg)
		if err != nil {
			return nil, err
		}
		return &flsmStore{db: db}, nil
	case KindHashStore:
		// Fixed directory (SkimpyStash's low-RAM design point).
		db, err := hashstore.Open(env.Dir, hashstore.Config{Buckets: 1 << 12, FS: env.FS})
		if err != nil {
			return nil, err
		}
		return &hashStore{db: db}, nil
	}
	return nil, fmt.Errorf("bench: unknown store kind %q", kind)
}

// ---------------------------------------------------------------------------
// Adapters.

type unikvStore struct{ db *core.DB }

func (s *unikvStore) Name() string                 { return KindUniKV }
func (s *unikvStore) Put(k, v []byte) error        { return s.db.Put(k, v) }
func (s *unikvStore) Delete(k []byte) error        { return s.db.Delete(k) }
func (s *unikvStore) Compact() error               { return s.db.CompactAll() }
func (s *unikvStore) Close() error                 { return s.db.Close() }
func (s *unikvStore) Get(k []byte) ([]byte, error) { return s.db.Get(k) }
func (s *unikvStore) Metrics() core.StatsSnapshot  { return s.db.Metrics() }
func (s *unikvStore) DB() *core.DB                 { return s.db }
func (s *unikvStore) Scan(start []byte, limit int) ([]KV, error) {
	kvs, err := s.db.Scan(start, nil, limit)
	if err != nil {
		return nil, err
	}
	out := make([]KV, len(kvs))
	for i, kv := range kvs {
		out[i] = KV{Key: kv.Key, Value: kv.Value}
	}
	return out, nil
}

type lsmStore struct {
	db   *lsm.DB
	name string
}

func (s *lsmStore) Name() string          { return s.name }
func (s *lsmStore) Put(k, v []byte) error { return s.db.Put(k, v) }
func (s *lsmStore) Delete(k []byte) error { return s.db.Delete(k) }
func (s *lsmStore) Compact() error        { return s.db.Compact() }
func (s *lsmStore) Close() error          { return s.db.Close() }
func (s *lsmStore) DB() *lsm.DB           { return s.db }
func (s *lsmStore) Get(k []byte) ([]byte, error) {
	v, err := s.db.Get(k)
	if err == lsm.ErrNotFound {
		return nil, err
	}
	return v, err
}
func (s *lsmStore) Scan(start []byte, limit int) ([]KV, error) {
	kvs, err := s.db.Scan(start, nil, limit)
	if err != nil {
		return nil, err
	}
	out := make([]KV, len(kvs))
	for i, kv := range kvs {
		out[i] = KV{Key: kv.Key, Value: kv.Value}
	}
	return out, nil
}

type flsmStore struct{ db *flsm.DB }

func (s *flsmStore) Name() string                 { return KindPebblesDB }
func (s *flsmStore) Put(k, v []byte) error        { return s.db.Put(k, v) }
func (s *flsmStore) Delete(k []byte) error        { return s.db.Delete(k) }
func (s *flsmStore) Compact() error               { return s.db.Flush() }
func (s *flsmStore) Close() error                 { return s.db.Close() }
func (s *flsmStore) Get(k []byte) ([]byte, error) { return s.db.Get(k) }
func (s *flsmStore) Scan(start []byte, limit int) ([]KV, error) {
	kvs, err := s.db.Scan(start, nil, limit)
	if err != nil {
		return nil, err
	}
	out := make([]KV, len(kvs))
	for i, kv := range kvs {
		out[i] = KV{Key: kv.Key, Value: kv.Value}
	}
	return out, nil
}

type hashStore struct{ db *hashstore.DB }

func (s *hashStore) Name() string                 { return KindHashStore }
func (s *hashStore) Put(k, v []byte) error        { return s.db.Put(k, v) }
func (s *hashStore) Delete(k []byte) error        { return s.db.Delete(k) }
func (s *hashStore) Compact() error               { return nil }
func (s *hashStore) Close() error                 { return s.db.Close() }
func (s *hashStore) Get(k []byte) ([]byte, error) { return s.db.Get(k) }
func (s *hashStore) Scan(start []byte, limit int) ([]KV, error) {
	return nil, ErrScanUnsupported
}
