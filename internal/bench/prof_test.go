package bench

import (
	"testing"

	"unikv/internal/vfs"
	"unikv/internal/ycsb"
)

// BenchmarkProfileUniKVGet exists for profiling the steady-state read path
// (go test -bench ProfileUniKVGet -cpuprofile).
func BenchmarkProfileUniKVGet(b *testing.B) {
	p := Params{N: 30000, ValueSize: 256}.WithDefaults()
	env := Env{FS: vfs.NewMem(), DatasetBytes: p.DatasetBytes()}
	s, err := OpenStore(KindUniKV, env)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < p.N; i++ {
		s.Put(ycsb.Key(i), ycsb.Value(i, p.ValueSize))
	}
	s.Compact()
	c := ycsb.NewClient(ycsb.WorkloadC, p.N, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := c.Next()
		s.Get(op.Key)
	}
}
