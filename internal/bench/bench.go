package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"

	"unikv/internal/vfs"
	"unikv/internal/ycsb"
)

// Params sizes an experiment run. Zero values pick the defaults used by
// `go test -bench` (laptop scale); cmd/unikv-bench lets you raise them
// toward the paper's scale.
type Params struct {
	// N is the number of records loaded before the measured phase.
	N int
	// ValueSize is the value payload in bytes.
	ValueSize int
	// Ops is the number of measured operations per phase.
	Ops int
	// Seed randomizes workloads deterministically.
	Seed int64
	// Stores restricts the engine set (default AllKinds).
	Stores []string
	// Progress receives live progress lines (nil = silent).
	Progress io.Writer
	// BackgroundWorkers runs UniKV with that many maintenance workers
	// (0 = inline scheduling, the default). Applies to every experiment;
	// fig-latency additionally compares both modes side by side.
	BackgroundWorkers int
}

// WithDefaults fills unset fields.
func (p Params) WithDefaults() Params {
	if p.N <= 0 {
		p.N = 20000
	}
	if p.ValueSize <= 0 {
		p.ValueSize = 256
	}
	if p.Ops <= 0 {
		p.Ops = p.N / 2
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if len(p.Stores) == 0 {
		p.Stores = AllKinds()
	}
	return p
}

// DatasetBytes estimates the loaded dataset size.
func (p Params) DatasetBytes() int64 {
	return int64(p.N) * int64(p.ValueSize+20)
}

func (p Params) logf(format string, args ...any) {
	if p.Progress != nil {
		fmt.Fprintf(p.Progress, format+"\n", args...)
	}
}

// Table is one experiment artifact: the rows of a paper table or the
// series of a paper figure. Metrics carries the machine-readable
// measurements behind the rows — the payload of BENCH_<name>.json and the
// values the CI regression gate compares (experiments that predate the
// gate leave it empty).
type Table struct {
	Title   string
	Note    string
	Header  []string
	Rows    [][]string
	Metrics []Metric
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "   %s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// kops formats a throughput in thousand ops/sec.
func kops(ops int, d time.Duration) string {
	if d <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1f", float64(ops)/d.Seconds()/1000)
}

// ratio formats a float with 2 decimals.
func ratio(v float64) string { return fmt.Sprintf("%.2f", v) }

// ---------------------------------------------------------------------------
// Workload phases.

// loadPhase inserts n records in random key order (the paper's random-load
// microbenchmark) and returns the wall time.
func loadPhase(s Store, n, valueSize int) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := s.Put(ycsb.Key(i), ycsb.Value(i, valueSize)); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// readPhase performs ops point reads; dist selects keys over [0, n).
func readPhase(s Store, n, ops int, dist ycsb.Distribution, seed int64) (time.Duration, error) {
	w := ycsb.Workload{Name: "read", ReadProp: 1, Dist: dist}
	c := ycsb.NewClient(w, n, seed)
	start := time.Now()
	for i := 0; i < ops; i++ {
		op := c.Next()
		if _, err := s.Get(op.Key); err != nil && !isNotFound(err) {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// scanPhase performs ops scans of scanLen entries from random start keys.
func scanPhase(s Store, n, ops, scanLen int, seed int64) (time.Duration, error) {
	rnd := rand.New(rand.NewSource(seed))
	start := time.Now()
	for i := 0; i < ops; i++ {
		k := ycsb.Key(rnd.Intn(n))
		if _, err := s.Scan(k, scanLen); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// updatePhase performs ops zipfian overwrites (includes merge/compaction/GC
// cost, per the paper's measurement methodology).
func updatePhase(s Store, n, ops, valueSize int, seed int64) (time.Duration, error) {
	w := ycsb.Workload{Name: "update", UpdateProp: 1, Dist: ycsb.Zipfian}
	c := ycsb.NewClient(w, n, seed)
	start := time.Now()
	for i := 0; i < ops; i++ {
		op := c.Next()
		if err := s.Put(op.Key, ycsb.Value(i, valueSize)); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// isNotFound matches any engine's not-found error.
func isNotFound(err error) bool {
	return err != nil && strings.Contains(err.Error(), "not found")
}

// runYCSB executes ops operations of workload w and returns the wall time.
func runYCSB(s Store, w ycsb.Workload, n, ops, valueSize int, seed int64) (time.Duration, error) {
	c := ycsb.NewClient(w, n, seed)
	start := time.Now()
	for i := 0; i < ops; i++ {
		op := c.Next()
		switch op.Type {
		case ycsb.OpRead:
			if _, err := s.Get(op.Key); err != nil && !isNotFound(err) {
				return 0, err
			}
		case ycsb.OpUpdate, ycsb.OpInsert:
			if err := s.Put(op.Key, ycsb.Value(i, valueSize)); err != nil {
				return 0, err
			}
		case ycsb.OpScan:
			if _, err := s.Scan(op.Key, op.ScanLen); err != nil && err != ErrScanUnsupported {
				return 0, err
			}
		case ycsb.OpReadModifyWrite:
			if _, err := s.Get(op.Key); err != nil && !isNotFound(err) {
				return 0, err
			}
			if err := s.Put(op.Key, ycsb.Value(i, valueSize)); err != nil {
				return 0, err
			}
		}
	}
	return time.Since(start), nil
}

// openFresh opens kind over a fresh in-memory FS sized for p and returns
// the store plus its FS (for I/O accounting).
func openFresh(kind string, p Params, tweak func(env *Env)) (Store, vfs.FS, error) {
	env := Env{FS: vfs.NewMem(), DatasetBytes: p.DatasetBytes(), BackgroundWorkers: p.BackgroundWorkers}
	if tweak != nil {
		tweak(&env)
	}
	s, err := OpenStore(kind, env)
	if err != nil {
		return nil, nil, err
	}
	return s, env.FS, nil
}

// sortedCopy returns a sorted copy of m's keys.
func sortedCopy(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
