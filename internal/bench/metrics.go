package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// Metric is one machine-readable measurement backing a table — the unit a
// committed baseline is compared against. Names are stable identifiers
// ("fig-hotring/ycsb-c/c8/on/kops"), not display strings.
type Metric struct {
	Name string `json:"name"`
	// Unit is the measurement unit ("kops", "us", "pct").
	Unit  string  `json:"unit"`
	Value float64 `json:"value"`
	// Better is "higher" or "lower" — the direction that counts as an
	// improvement, which orients the regression comparison.
	Better string `json:"better"`
}

// Artifact is the persisted form of one experiment run: the parameters it
// ran at plus every metric it measured (BENCH_<experiment>.json).
type Artifact struct {
	Experiment string   `json:"experiment"`
	N          int      `json:"n"`
	ValueSize  int      `json:"value_size"`
	Ops        int      `json:"ops"`
	Seed       int64    `json:"seed"`
	Metrics    []Metric `json:"metrics"`
}

// WriteArtifact persists a to path as indented JSON.
func WriteArtifact(path string, a Artifact) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadArtifact loads a baseline artifact from path.
func ReadArtifact(path string) (Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Artifact{}, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return Artifact{}, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// LoadBaseline reads a gating artifact, degrading to "record, don't gate"
// instead of failing: a missing or unreadable artifact, or one with an
// empty metric trajectory, cannot gate anything — the bench run should
// still execute and record fresh artifacts rather than die at startup. A
// degraded load returns a zero Artifact plus a non-empty note for the
// caller to log; a usable baseline returns with an empty note.
func LoadBaseline(path string) (Artifact, string) {
	a, err := ReadArtifact(path)
	if err != nil {
		return Artifact{}, fmt.Sprintf("baseline %s unavailable (%v) — recording only, not gating", path, err)
	}
	if len(a.Metrics) == 0 {
		return Artifact{}, fmt.Sprintf("baseline %s has an empty metric trajectory — recording only, not gating", path)
	}
	return a, ""
}

// CompareBaseline reports every metric of cur that regressed beyond tol
// (e.g. 0.20 = 20%) against the same-named metric in base. Metrics present
// on only one side are ignored — a baseline survives adding measurements.
// Lower-is-better metrics regress upward, higher-is-better ones downward.
func CompareBaseline(base, cur []Metric, tol float64) []string {
	byName := make(map[string]Metric, len(base))
	for _, m := range base {
		byName[m.Name] = m
	}
	var regressions []string
	for _, m := range cur {
		b, ok := byName[m.Name]
		if !ok || b.Value == 0 {
			continue
		}
		switch m.Better {
		case "lower":
			if m.Value > b.Value*(1+tol) {
				regressions = append(regressions, fmt.Sprintf(
					"%s: %.2f%s vs baseline %.2f%s (+%.0f%%, tolerance %.0f%%)",
					m.Name, m.Value, m.Unit, b.Value, b.Unit,
					100*(m.Value/b.Value-1), 100*tol))
			}
		default: // "higher"
			if m.Value < b.Value*(1-tol) {
				regressions = append(regressions, fmt.Sprintf(
					"%s: %.2f%s vs baseline %.2f%s (-%.0f%%, tolerance %.0f%%)",
					m.Name, m.Value, m.Unit, b.Value, b.Unit,
					100*(1-m.Value/b.Value), 100*tol))
			}
		}
	}
	return regressions
}

// CollectMetrics flattens the metrics of every table an experiment
// produced, in order.
func CollectMetrics(tables []Table) []Metric {
	var out []Metric
	for _, t := range tables {
		out = append(out, t.Metrics...)
	}
	return out
}
