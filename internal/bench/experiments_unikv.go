package bench

import (
	"fmt"
	"time"

	"unikv/internal/core"
	"unikv/internal/vfs"
	"unikv/internal/ycsb"
)

// openUniKV opens a UniKV store over a fresh memFS with an option tweak.
func openUniKV(p Params, tweak func(*core.Options)) (Store, vfs.FS) {
	s, fs, err := openFresh(KindUniKV, p, func(env *Env) { env.UniKVTweak = tweak })
	if err != nil {
		panic(err)
	}
	return s, fs
}

// Fig11 reproduces the technique ablation: UniKV with each of its four
// techniques disabled, over a load+read+scan+update workload. Expected
// shape: each ablation hurts its targeted metric (no hash index → reads;
// no KV separation → updates/load write-amp; no partitioning → everything
// at scale; no scan merge → scans).
func Fig11(p Params) []Table {
	p = p.WithDefaults()
	variants := []struct {
		name  string
		tweak func(*core.Options)
	}{
		{"unikv(full)", nil},
		{"-hash-index", func(o *core.Options) { o.DisableHashIndex = true }},
		{"-kv-separation", func(o *core.Options) { o.DisableKVSeparation = true }},
		{"-partitioning", func(o *core.Options) { o.DisablePartitioning = true }},
		{"-scan-merge", func(o *core.Options) { o.DisableScanMerge = true }},
	}
	t := Table{
		Title: "fig11: ablation of UniKV's techniques (KOps/s; scans in Kscans/s)",
		Note: fmt.Sprintf("%d records x %dB; read/update ops=%d; write-amp over the whole run",
			p.N, p.ValueSize, p.Ops),
		Header: []string{"variant", "load", "read", "scan", "update", "write-amp"},
	}
	for _, v := range variants {
		s, fs := openUniKV(p, v.tweak)
		dLoad, err := loadPhase(s, p.N, p.ValueSize)
		if err != nil {
			panic(err)
		}
		dRead, err := readPhase(s, p.N, p.Ops, ycsb.Uniform, p.Seed)
		if err != nil {
			panic(err)
		}
		scans := p.Ops / 10
		if scans < 1 {
			scans = 1
		}
		dScan, err := scanPhase(s, p.N, scans, 50, p.Seed)
		if err != nil {
			panic(err)
		}
		dUpd, err := updatePhase(s, p.N, p.Ops, p.ValueSize, p.Seed)
		if err != nil {
			panic(err)
		}
		userBytes := float64(p.N+p.Ops) * float64(p.ValueSize+20)
		wa := float64(fs.Counters().BytesWritten.Load()) / userBytes
		s.Close()
		t.Rows = append(t.Rows, []string{
			v.name, kops(p.N, dLoad), kops(p.Ops, dRead),
			kops(scans, dScan), kops(p.Ops, dUpd), ratio(wa),
		})
		p.logf("fig11 %s done", v.name)
	}
	return []Table{t}
}

// FigSelective evaluates selective KV separation (the paper's suggested
// differentiated management for mixed value sizes): a workload with 70 %
// small (64 B) and 30 % large (1 KiB) values under full separation, no
// separation, and a 256 B threshold. Expected shape: selective separation
// matches full separation's update throughput and write-amp while avoiding
// the pointer + log-read overhead for small values.
func FigSelective(p Params) []Table {
	p = p.WithDefaults()
	mixedValue := func(i int) []byte {
		if i%10 < 7 {
			return ycsb.Value(i, 64)
		}
		return ycsb.Value(i, 1024)
	}
	variants := []struct {
		name  string
		tweak func(*core.Options)
	}{
		{"full-separation", nil},
		{"no-separation", func(o *core.Options) { o.DisableKVSeparation = true }},
		{"selective(256B)", func(o *core.Options) { o.ValueThreshold = 256 }},
	}
	t := Table{
		Title:  "fig-selective: selective KV separation under mixed value sizes",
		Note:   fmt.Sprintf("%d records: 70%% 64B + 30%% 1KiB values; %d zipfian updates + reads", p.N, p.Ops),
		Header: []string{"variant", "load", "read", "update", "write-amp", "log-bytes"},
	}
	for _, v := range variants {
		s, fs := openUniKV(p, v.tweak)
		start := time.Now()
		for i := 0; i < p.N; i++ {
			if err := s.Put(ycsb.Key(i), mixedValue(i)); err != nil {
				panic(err)
			}
		}
		dLoad := time.Since(start)
		dRead, err := readPhase(s, p.N, p.Ops, ycsb.Zipfian, p.Seed)
		if err != nil {
			panic(err)
		}
		c := ycsb.NewClient(ycsb.Workload{UpdateProp: 1, Dist: ycsb.Zipfian}, p.N, p.Seed)
		start = time.Now()
		for i := 0; i < p.Ops; i++ {
			op := c.Next()
			if err := s.Put(op.Key, mixedValue(i)); err != nil {
				panic(err)
			}
		}
		dUpd := time.Since(start)
		m := s.(*unikvStore).Metrics()
		userBytes := float64(p.N+p.Ops) * 400 // ~avg record
		wa := float64(fs.Counters().BytesWritten.Load()) / userBytes
		s.Close()
		t.Rows = append(t.Rows, []string{
			v.name, kops(p.N, dLoad), kops(p.Ops, dRead), kops(p.Ops, dUpd),
			ratio(wa), fmt.Sprintf("%d", m.ValueLogBytes),
		})
		p.logf("fig-selective %s done", v.name)
	}
	return []Table{t}
}

// TabMem reproduces the memory-overhead analysis: hash-index bytes per MB
// of UnsortedStore data, across value sizes. Expected shape: ≈1 % at 1 KiB
// values (paper: ~10 MB of index per GB), growing as values shrink.
func TabMem(p Params) []Table {
	p = p.WithDefaults()
	t := Table{
		Title:  "tab-mem: hash-index memory overhead vs UnsortedStore size",
		Note:   "index is sized at one 8B bucket per expected entry plus 8B overflow entries",
		Header: []string{"value-size", "unsorted-bytes", "index-bytes", "overhead"},
	}
	for _, vs := range []int{128, 256, 1024, 4096} {
		n := p.DatasetBytes() / int64(vs+20)
		s, _ := openUniKV(Params{N: int(n), ValueSize: vs}.WithDefaults(), func(o *core.Options) {
			// Keep everything in the UnsortedStore for a clean measurement.
			o.UnsortedLimit = 1 << 40
			o.PartitionSizeLimit = 1 << 40
			o.ScanMergeLimit = 1 << 30
			o.HashBuckets = int(n)
		})
		if _, err := loadPhase(s, int(n), vs); err != nil {
			panic(err)
		}
		if err := s.(*unikvStore).DB().Flush(); err != nil {
			panic(err)
		}
		m := s.(*unikvStore).Metrics()
		s.Close()
		overhead := float64(m.HashIndexBytes) / float64(m.UnsortedBytes)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dB", vs),
			fmt.Sprintf("%d", m.UnsortedBytes),
			fmt.Sprintf("%d", m.HashIndexBytes),
			fmt.Sprintf("%.2f%%", 100*overhead),
		})
		p.logf("tab-mem v=%dB: %.2f%%", vs, 100*overhead)
	}
	return []Table{t}
}

// TabRecovery reproduces the crash-recovery measurement: reopen time (and
// bytes read) with and without hash-index checkpointing. Expected shape:
// checkpointing cuts recovery work substantially.
func TabRecovery(p Params) []Table {
	p = p.WithDefaults()
	t := Table{
		Title:  "tab-recovery: reopen cost after load",
		Header: []string{"config", "reopen-ms", "bytes-read"},
	}
	for _, cfg := range []struct {
		name    string
		disable bool
	}{{"with-hash-checkpoint", false}, {"without-checkpoint", true}} {
		fs := vfs.NewMem()
		opts := core.Options{
			FS:           fs,
			MemtableSize: clampMin(p.DatasetBytes()/64, 16<<10),
			// Keep data in the UnsortedStore: recovery must rebuild or
			// reload the hash index.
			UnsortedLimit:       1 << 40,
			PartitionSizeLimit:  1 << 40,
			ScanMergeLimit:      1 << 30,
			DisableHashCkpt:     cfg.disable,
			HashCheckpointEvery: 2,
			HashBuckets:         p.N,
		}
		db, err := core.Open("db", opts)
		if err != nil {
			panic(err)
		}
		for i := 0; i < p.N; i++ {
			db.Put(ycsb.Key(i), ycsb.Value(i, p.ValueSize))
		}
		db.Flush()
		// Abandon without Close: reopen does the recovery work. The dead
		// process's directory lock dies with it.
		fs.(vfs.LockDropper).DropLocks()
		before := fs.Counters().Snapshot()
		start := time.Now()
		db2, err := core.Open("db", opts)
		if err != nil {
			panic(err)
		}
		elapsed := time.Since(start)
		readBytes := fs.Counters().Snapshot().Sub(before).BytesRead
		// Sanity: data present.
		if _, err := db2.Get(ycsb.Key(p.N / 2)); err != nil {
			panic(err)
		}
		db2.Close()
		t.Rows = append(t.Rows, []string{
			cfg.name,
			fmt.Sprintf("%.1f", float64(elapsed.Microseconds())/1000),
			fmt.Sprintf("%d", readBytes),
		})
		p.logf("tab-recovery %s: %v", cfg.name, elapsed)
	}
	return []Table{t}
}

// FigGC reproduces the GC-overhead measurement: an update-heavy workload
// with GC enabled, reporting throughput, bytes the GC rewrote, and the
// final space footprint. Expected shape: GC bounds log space at modest
// rewrite cost, and UniKV's flexible partition-granular GC touches only
// live data.
func FigGC(p Params) []Table {
	p = p.WithDefaults()
	t := Table{
		Title:  "fig-gc: value-log GC under zipfian overwrites",
		Note:   fmt.Sprintf("%d records, %d overwrite rounds", p.N/4, 8),
		Header: []string{"gc-ratio", "update-KOps/s", "gc-runs", "gc-bytes-rewritten", "final-log-bytes"},
	}
	for _, gcRatio := range []float64{0.15, 0.3, 0.6} {
		s, _ := openUniKV(Params{N: p.N / 4, ValueSize: p.ValueSize}.WithDefaults(),
			func(o *core.Options) { o.GCRatio = gcRatio })
		n := p.N / 4
		if _, err := loadPhase(s, n, p.ValueSize); err != nil {
			panic(err)
		}
		ops := 8 * n
		d, err := updatePhase(s, n, ops, p.ValueSize, p.Seed)
		if err != nil {
			panic(err)
		}
		s.Compact()
		m := s.(*unikvStore).Metrics()
		s.Close()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", gcRatio),
			kops(ops, d),
			fmt.Sprintf("%d", m.GCs),
			fmt.Sprintf("%d", m.GCBytesRewritten),
			fmt.Sprintf("%d", m.ValueLogBytes),
		})
		p.logf("fig-gc ratio=%.2f: %d GCs", gcRatio, m.GCs)
	}
	return []Table{t}
}

// FigParamUnsorted reproduces the UnsortedLimit sensitivity sweep.
// Expected shape: larger limits help writes (rarer merges) and hot reads
// (more data behind the hash index) at higher memory cost; scans prefer
// smaller unsorted tiers.
func FigParamUnsorted(p Params) []Table {
	p = p.WithDefaults()
	t := Table{
		Title:  "fig-param-unsorted: sensitivity to UnsortedLimit",
		Header: []string{"unsorted-limit", "load", "read", "scan", "index-bytes"},
	}
	base := p.DatasetBytes()
	for _, frac := range []int64{32, 16, 8, 4} {
		limit := base / frac
		s, _ := openUniKV(p, func(o *core.Options) {
			o.UnsortedLimit = limit
			o.PartitionSizeLimit = base / 2
		})
		dLoad, err := loadPhase(s, p.N, p.ValueSize)
		if err != nil {
			panic(err)
		}
		dRead, err := readPhase(s, p.N, p.Ops, ycsb.Zipfian, p.Seed)
		if err != nil {
			panic(err)
		}
		scans := p.Ops / 10
		if scans < 1 {
			scans = 1
		}
		dScan, err := scanPhase(s, p.N, scans, 50, p.Seed)
		if err != nil {
			panic(err)
		}
		m := s.(*unikvStore).Metrics()
		s.Close()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dKiB", limit/1024),
			kops(p.N, dLoad), kops(p.Ops, dRead), kops(scans, dScan),
			fmt.Sprintf("%d", m.HashIndexBytes),
		})
		p.logf("fig-param-unsorted limit=%d done", limit)
	}
	return []Table{t}
}

// FigParamPartition reproduces the PartitionSizeLimit sweep. Expected
// shape: smaller limits mean more splits (more split I/O during load) but
// flatter per-partition work; very large limits degenerate toward a single
// ever-growing partition.
func FigParamPartition(p Params) []Table {
	p = p.WithDefaults()
	t := Table{
		Title:  "fig-param-partition: sensitivity to PartitionSizeLimit",
		Header: []string{"partition-limit", "load", "read", "partitions", "splits"},
	}
	base := p.DatasetBytes()
	for _, frac := range []int64{8, 4, 2, 1} {
		limit := base / frac
		s, _ := openUniKV(p, func(o *core.Options) { o.PartitionSizeLimit = limit })
		dLoad, err := loadPhase(s, p.N, p.ValueSize)
		if err != nil {
			panic(err)
		}
		s.Compact()
		dRead, err := readPhase(s, p.N, p.Ops, ycsb.Uniform, p.Seed)
		if err != nil {
			panic(err)
		}
		m := s.(*unikvStore).Metrics()
		s.Close()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dKiB", limit/1024),
			kops(p.N, dLoad), kops(p.Ops, dRead),
			fmt.Sprintf("%d", m.Partitions),
			fmt.Sprintf("%d", m.Splits),
		})
		p.logf("fig-param-partition limit=%d: %d partitions", limit, m.Partitions)
	}
	return []Table{t}
}

// FigScanOpt reproduces the scan-optimization breakdown: scans with the
// size-based merge, parallel fetch, and prefetch each toggled off.
// Expected shape: each optimization contributes; disabling the size-based
// merge hurts most when the unsorted tier holds many overlapping tables.
func FigScanOpt(p Params) []Table {
	p = p.WithDefaults()
	variants := []struct {
		name  string
		tweak func(*core.Options)
	}{
		{"all-optimizations", nil},
		{"-size-based-merge", func(o *core.Options) { o.DisableScanMerge = true }},
		{"-parallel-fetch", func(o *core.Options) { o.DisableScanParallel = true }},
		{"-prefetch", func(o *core.Options) { o.DisableScanPrefetch = true }},
		{"none", func(o *core.Options) {
			o.DisableScanMerge = true
			o.DisableScanParallel = true
			o.DisableScanPrefetch = true
		}},
	}
	t := Table{
		Title:  "fig-scanopt: scan optimization breakdown (Kscans/s)",
		Note:   fmt.Sprintf("%d records; 100-entry scans; unsorted tier deliberately left unmerged", p.N),
		Header: []string{"variant", "short-scan(10)", "long-scan(100)"},
	}
	for _, v := range variants {
		s, _ := openUniKV(p, v.tweak)
		if _, err := loadPhase(s, p.N, p.ValueSize); err != nil {
			panic(err)
		}
		// Overwrite a slice of keys so the unsorted tier holds overlapping
		// tables when the size-based merge is off.
		for i := 0; i < p.N/4; i++ {
			s.Put(ycsb.Key(i*4), ycsb.Value(i, p.ValueSize))
		}
		scans := p.Ops / 10
		if scans < 1 {
			scans = 1
		}
		dShort, err := scanPhase(s, p.N, scans, 10, p.Seed)
		if err != nil {
			panic(err)
		}
		dLong, err := scanPhase(s, p.N, scans, 100, p.Seed)
		if err != nil {
			panic(err)
		}
		s.Close()
		t.Rows = append(t.Rows, []string{v.name, kops(scans, dShort), kops(scans, dLong)})
		p.logf("fig-scanopt %s done", v.name)
	}
	return []Table{t}
}
