package bench

import (
	"fmt"
	"math"
	"time"

	"unikv/internal/ycsb"
)

// Hist is a log-bucketed latency histogram: ~7% bucket growth from 100 ns
// up, which resolves p50/p99/p99.9 to well under one bucket of error for
// the microsecond-to-second range the benchmarks produce. Not safe for
// concurrent Record; give each worker its own Hist and Merge at the end.
type Hist struct {
	buckets [histBuckets]int64
	count   int64
	max     time.Duration
}

const (
	histBuckets = 400
	histBase    = 100 // ns lower bound of bucket 0
	histGrowth  = 1.07
)

var histLogGrowth = math.Log(histGrowth)

func histBucket(d time.Duration) int {
	ns := float64(d.Nanoseconds())
	if ns <= histBase {
		return 0
	}
	b := int(math.Log(ns/histBase) / histLogGrowth)
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// histBound returns the upper bound of bucket b.
func histBound(b int) time.Duration {
	return time.Duration(histBase * math.Pow(histGrowth, float64(b+1)))
}

// Record adds one observation.
func (h *Hist) Record(d time.Duration) {
	h.buckets[histBucket(d)]++
	h.count++
	if d > h.max {
		h.max = d
	}
}

// Merge folds o into h.
func (h *Hist) Merge(o *Hist) {
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	h.count += o.count
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.count }

// Max returns the largest observation.
func (h *Hist) Max() time.Duration { return h.max }

// Quantile returns the latency at quantile q in [0, 1].
func (h *Hist) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := int64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var cum int64
	for b, c := range h.buckets {
		cum += c
		if cum > rank {
			ub := histBound(b)
			if ub > h.max {
				return h.max
			}
			return ub
		}
	}
	return h.max
}

// fmtLat renders a latency compactly (µs below 10 ms, ms above).
func fmtLat(d time.Duration) string {
	if d < 10*time.Millisecond {
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	}
	return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
}

// LatencyRow renders the standard percentile columns for a table row.
func (h *Hist) LatencyRow() []string {
	return []string{
		fmtLat(h.Quantile(0.50)),
		fmtLat(h.Quantile(0.99)),
		fmtLat(h.Quantile(0.999)),
		fmtLat(h.Max()),
	}
}

// LatencyHeader matches LatencyRow.
func LatencyHeader() []string { return []string{"p50", "p99", "p99.9", "max"} }

// ---------------------------------------------------------------------------
// Instrumented phases: the load/read/update loops of bench.go with per-op
// timing.

func loadPhaseHist(s Store, n, valueSize int, h *Hist) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if err := s.Put(ycsb.Key(i), ycsb.Value(i, valueSize)); err != nil {
			return 0, err
		}
		h.Record(time.Since(t0))
	}
	return time.Since(start), nil
}

func readPhaseHist(s Store, n, ops int, dist ycsb.Distribution, seed int64, h *Hist) (time.Duration, error) {
	w := ycsb.Workload{Name: "read", ReadProp: 1, Dist: dist}
	c := ycsb.NewClient(w, n, seed)
	start := time.Now()
	for i := 0; i < ops; i++ {
		op := c.Next()
		t0 := time.Now()
		if _, err := s.Get(op.Key); err != nil && !isNotFound(err) {
			return 0, err
		}
		h.Record(time.Since(t0))
	}
	return time.Since(start), nil
}

func updatePhaseHist(s Store, n, ops, valueSize int, seed int64, h *Hist) (time.Duration, error) {
	w := ycsb.Workload{Name: "update", UpdateProp: 1, Dist: ycsb.Zipfian}
	c := ycsb.NewClient(w, n, seed)
	start := time.Now()
	for i := 0; i < ops; i++ {
		op := c.Next()
		t0 := time.Now()
		if err := s.Put(op.Key, ycsb.Value(i, valueSize)); err != nil {
			return 0, err
		}
		h.Record(time.Since(t0))
	}
	return time.Since(start), nil
}

// FigLatency measures per-op latency percentiles for load/read/update on
// UniKV with inline vs background maintenance — the tail-latency claim
// behind the background scheduler: the tentpole moves flush/merge/GC/split
// off the foreground path, so put tails should drop while throughput
// holds or improves.
func FigLatency(p Params) []Table {
	p = p.WithDefaults()
	modes := []struct {
		name    string
		workers int
	}{
		{"inline", 0},
		{"background", p.BackgroundWorkers},
	}
	if modes[1].workers <= 0 {
		modes[1].workers = 4
	}
	t := Table{
		Title: "per-op latency: inline vs background maintenance (unikv)",
		Note: fmt.Sprintf("%d records x %dB values, %d ops/phase; background = %d workers",
			p.N, p.ValueSize, p.Ops, modes[1].workers),
		Header: append([]string{"mode", "phase", "kops/s"}, LatencyHeader()...),
	}
	for _, mode := range modes {
		workers := mode.workers
		s, _, err := openFresh(KindUniKV, p, func(env *Env) {
			env.BackgroundWorkers = workers
		})
		if err != nil {
			t.Rows = append(t.Rows, []string{mode.name, "open", err.Error()})
			continue
		}
		var hLoad, hRead, hUpd Hist
		dLoad, err := loadPhaseHist(s, p.N, p.ValueSize, &hLoad)
		if err == nil {
			t.Rows = append(t.Rows, append([]string{mode.name, "load", kops(p.N, dLoad)}, hLoad.LatencyRow()...))
			err = s.Compact()
		}
		if err == nil {
			var dRead time.Duration
			dRead, err = readPhaseHist(s, p.N, p.Ops, ycsb.Uniform, p.Seed, &hRead)
			if err == nil {
				t.Rows = append(t.Rows, append([]string{mode.name, "read", kops(p.Ops, dRead)}, hRead.LatencyRow()...))
			}
		}
		if err == nil {
			var dUpd time.Duration
			dUpd, err = updatePhaseHist(s, p.N, p.Ops, p.ValueSize, p.Seed, &hUpd)
			if err == nil {
				t.Rows = append(t.Rows, append([]string{mode.name, "update", kops(p.Ops, dUpd)}, hUpd.LatencyRow()...))
			}
		}
		s.Close()
		if err != nil {
			t.Rows = append(t.Rows, []string{mode.name, "error", err.Error()})
		}
		p.logf("fig-latency: %s done", mode.name)
	}
	return []Table{t}
}
