package bench

import (
	"fmt"
	"sort"
)

// Experiment is a runnable paper artifact.
type Experiment struct {
	ID    string
	Brief string
	Run   func(Params) []Table
}

// registry maps experiment IDs to runners.
var registry = map[string]Experiment{}

func register(id, brief string, run func(Params) []Table) {
	registry[id] = Experiment{ID: id, Brief: brief, Run: run}
}

func init() {
	register("fig1", "motivation: hash store vs LSM as data grows", Fig1)
	register("fig2", "motivation: SSTable access skew by level", Fig2)
	register("tab-io", "I/O amplification: UniKV vs baselines", TabIO)
	register("fig7", "microbenchmarks: load/read/scan/update", Fig7)
	register("fig8", "YCSB mixed workloads A-F", Fig8)
	register("fig9", "scalability with dataset size", Fig9)
	register("fig10", "impact of value size", Fig10)
	register("fig11", "ablation of UniKV's techniques", Fig11)
	register("fig-selective", "selective KV separation, mixed value sizes", FigSelective)
	register("tab-mem", "hash-index memory overhead", TabMem)
	register("tab-recovery", "crash recovery cost", TabRecovery)
	register("fig-gc", "value-log GC overhead", FigGC)
	register("fig-param-unsorted", "sensitivity: UnsortedLimit", FigParamUnsorted)
	register("fig-param-partition", "sensitivity: PartitionSizeLimit", FigParamPartition)
	register("fig-scanopt", "scan optimization breakdown", FigScanOpt)
	register("fig-latency", "per-op latency: inline vs background maintenance", FigLatency)
	register("fig-cache", "read cache: hit rate and throughput vs cache size", FigCache)
	register("fig-hotring", "hot-key read layer: zipfian p50/p99 vs clients, ring on/off", FigHotRing)
	register("fig-scan", "range scans vs unsorted table count, sorted view on/off", FigScan)
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("bench: unknown experiment %q (try one of %v)", id, IDs())
	}
	return e, nil
}

// IDs lists all experiment IDs, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// All returns every experiment in ID order.
func All() []Experiment {
	var out []Experiment
	for _, id := range IDs() {
		out = append(out, registry[id])
	}
	return out
}
