package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestCompareBaseline(t *testing.T) {
	base := []Metric{
		{Name: "x/kops", Unit: "kops", Value: 100, Better: "higher"},
		{Name: "x/p99", Unit: "us", Value: 50, Better: "lower"},
		{Name: "gone", Unit: "kops", Value: 1, Better: "higher"},
	}
	cur := []Metric{
		{Name: "x/kops", Unit: "kops", Value: 85, Better: "higher"}, // -15%: within 20%
		{Name: "x/p99", Unit: "us", Value: 55, Better: "lower"},     // +10%: within 20%
		{Name: "new", Unit: "kops", Value: 5, Better: "higher"},     // not in baseline
	}
	if regs := CompareBaseline(base, cur, 0.20); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}

	cur[0].Value = 70  // -30% throughput
	cur[1].Value = 120 // +140% latency
	regs := CompareBaseline(base, cur, 0.20)
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions, got %v", regs)
	}
	if !strings.Contains(regs[0], "x/kops") || !strings.Contains(regs[1], "x/p99") {
		t.Fatalf("regressions misattributed: %v", regs)
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	in := Artifact{
		Experiment: "test", N: 100, ValueSize: 64, Ops: 50, Seed: 1,
		Metrics: []Metric{{Name: "a/kops", Unit: "kops", Value: 12.5, Better: "higher"}},
	}
	if err := WriteArtifact(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Experiment != in.Experiment || len(out.Metrics) != 1 || out.Metrics[0] != in.Metrics[0] {
		t.Fatalf("round trip diverged: %+v", out)
	}
}
