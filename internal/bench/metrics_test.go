package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCompareBaseline(t *testing.T) {
	base := []Metric{
		{Name: "x/kops", Unit: "kops", Value: 100, Better: "higher"},
		{Name: "x/p99", Unit: "us", Value: 50, Better: "lower"},
		{Name: "gone", Unit: "kops", Value: 1, Better: "higher"},
	}
	cur := []Metric{
		{Name: "x/kops", Unit: "kops", Value: 85, Better: "higher"}, // -15%: within 20%
		{Name: "x/p99", Unit: "us", Value: 55, Better: "lower"},     // +10%: within 20%
		{Name: "new", Unit: "kops", Value: 5, Better: "higher"},     // not in baseline
	}
	if regs := CompareBaseline(base, cur, 0.20); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}

	cur[0].Value = 70  // -30% throughput
	cur[1].Value = 120 // +140% latency
	regs := CompareBaseline(base, cur, 0.20)
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions, got %v", regs)
	}
	if !strings.Contains(regs[0], "x/kops") || !strings.Contains(regs[1], "x/p99") {
		t.Fatalf("regressions misattributed: %v", regs)
	}
}

// TestLoadBaselineDegrades pins the gate's failure mode: a baseline that
// cannot gate (missing file, malformed JSON, empty metric trajectory) must
// degrade to "record, don't gate" — a note, never a hard failure — while a
// usable artifact loads with no note.
func TestLoadBaselineDegrades(t *testing.T) {
	dir := t.TempDir()

	if _, note := LoadBaseline(filepath.Join(dir, "absent.json")); note == "" {
		t.Fatal("missing baseline: want a degrade note, got none")
	} else if !strings.Contains(note, "not gating") {
		t.Fatalf("missing baseline note does not say it is not gating: %q", note)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, note := LoadBaseline(bad); !strings.Contains(note, "not gating") {
		t.Fatalf("unreadable baseline: want a not-gating note, got %q", note)
	}

	empty := filepath.Join(dir, "empty.json")
	if err := WriteArtifact(empty, Artifact{Experiment: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, note := LoadBaseline(empty); !strings.Contains(note, "empty metric trajectory") {
		t.Fatalf("empty trajectory: want an empty-trajectory note, got %q", note)
	}

	good := filepath.Join(dir, "good.json")
	want := Artifact{
		Experiment: "x",
		Metrics:    []Metric{{Name: "a/kops", Unit: "kops", Value: 1, Better: "higher"}},
	}
	if err := WriteArtifact(good, want); err != nil {
		t.Fatal(err)
	}
	a, note := LoadBaseline(good)
	if note != "" {
		t.Fatalf("usable baseline produced a degrade note: %q", note)
	}
	if a.Experiment != "x" || len(a.Metrics) != 1 {
		t.Fatalf("usable baseline loaded wrong: %+v", a)
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	in := Artifact{
		Experiment: "test", N: 100, ValueSize: 64, Ops: 50, Seed: 1,
		Metrics: []Metric{{Name: "a/kops", Unit: "kops", Value: 12.5, Better: "higher"}},
	}
	if err := WriteArtifact(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Experiment != in.Experiment || len(out.Metrics) != 1 || out.Metrics[0] != in.Metrics[0] {
		t.Fatalf("round trip diverged: %+v", out)
	}
}
