package bench

import (
	"strings"
	"testing"

	"unikv/internal/vfs"
	"unikv/internal/ycsb"
)

func TestParamsDefaults(t *testing.T) {
	p := Params{}.WithDefaults()
	if p.N <= 0 || p.ValueSize <= 0 || p.Ops <= 0 || p.Seed == 0 || len(p.Stores) == 0 {
		t.Fatalf("defaults incomplete: %+v", p)
	}
	if p.DatasetBytes() <= 0 {
		t.Fatal("DatasetBytes")
	}
	// Explicit values survive.
	q := Params{N: 7, ValueSize: 9, Ops: 3, Seed: 42, Stores: []string{KindUniKV}}.WithDefaults()
	if q.N != 7 || q.ValueSize != 9 || q.Ops != 3 || q.Seed != 42 || len(q.Stores) != 1 {
		t.Fatalf("%+v", q)
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{
		Title:  "demo",
		Note:   "note",
		Header: []string{"a", "long-column"},
		Rows:   [][]string{{"x", "1"}, {"longer-cell", "2"}},
	}
	s := tab.String()
	for _, want := range []string{"== demo ==", "note", "long-column", "longer-cell"} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 6 { // title, note, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
}

func TestOpenStoreAllKinds(t *testing.T) {
	for _, kind := range append(AllKinds(), KindHashStore) {
		s, err := OpenStore(kind, Env{FS: vfs.NewMem(), DatasetBytes: 1 << 20})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if s.Name() == "" {
			t.Fatalf("%s: empty name", kind)
		}
		if err := s.Put([]byte("k"), []byte("v")); err != nil {
			t.Fatalf("%s put: %v", kind, err)
		}
		got, err := s.Get([]byte("k"))
		if err != nil || string(got) != "v" {
			t.Fatalf("%s get: %q %v", kind, got, err)
		}
		if err := s.Delete([]byte("k")); err != nil {
			t.Fatalf("%s delete: %v", kind, err)
		}
		if _, err := s.Get([]byte("k")); err == nil {
			t.Fatalf("%s: deleted key still present", kind)
		}
		_, scanErr := s.Scan([]byte("a"), 5)
		if kind == KindHashStore {
			if scanErr != ErrScanUnsupported {
				t.Fatalf("hashstore scan: %v", scanErr)
			}
		} else if scanErr != nil {
			t.Fatalf("%s scan: %v", kind, scanErr)
		}
		if err := s.Compact(); err != nil {
			t.Fatalf("%s compact: %v", kind, err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("%s close: %v", kind, err)
		}
	}
	if _, err := OpenStore("nonsense", Env{FS: vfs.NewMem()}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) < 14 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	for _, id := range ids {
		e, err := Lookup(id)
		if err != nil || e.Run == nil || e.Brief == "" {
			t.Fatalf("broken registration %q: %v", id, err)
		}
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Fatal("unknown experiment found")
	}
	if len(All()) != len(ids) {
		t.Fatal("All/IDs mismatch")
	}
}

func TestPhasesAgainstModel(t *testing.T) {
	s, _, err := openFresh(KindUniKV, Params{N: 500, ValueSize: 32}.WithDefaults(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := loadPhase(s, 500, 32); err != nil {
		t.Fatal(err)
	}
	// All loaded keys resolve.
	for i := 0; i < 500; i += 50 {
		got, err := s.Get(ycsb.Key(i))
		if err != nil || len(got) != 32 {
			t.Fatalf("key %d: %v", i, err)
		}
	}
	if _, err := readPhase(s, 500, 200, ycsb.Zipfian, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := scanPhase(s, 500, 20, 10, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := updatePhase(s, 500, 200, 32, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := runYCSB(s, ycsb.WorkloadA, 500, 200, 32, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := runYCSB(s, ycsb.WorkloadE, 500, 100, 32, 1); err != nil {
		t.Fatal(err)
	}
}
