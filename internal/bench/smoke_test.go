package bench

import "testing"

func TestSmokeAllExperiments(t *testing.T) {
	p := Params{N: 1500, ValueSize: 64, Ops: 300}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(p)
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Fatalf("%s: empty table %q", e.ID, tab.Title)
				}
				if tab.String() == "" {
					t.Fatal("empty render")
				}
			}
		})
	}
}
