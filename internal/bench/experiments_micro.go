package bench

import (
	"fmt"

	"unikv/internal/ycsb"
)

// Fig7 reproduces the microbenchmarks: load, random read, scan, and
// zipfian update throughput for every store. Expected shape: UniKV leads
// load/read/update; scan is within ~2x of LevelDB and not worse than
// PebblesDB.
func Fig7(p Params) []Table {
	p = p.WithDefaults()
	load := Table{
		Title:  "fig7a: random load throughput (KOps/s)",
		Note:   fmt.Sprintf("%d records x %dB values", p.N, p.ValueSize),
		Header: []string{"store", "KOps/s"},
	}
	read := Table{
		Title:  "fig7b: random read throughput (KOps/s)",
		Note:   fmt.Sprintf("%d uniform point reads after load+settle", p.Ops),
		Header: []string{"store", "KOps/s"},
	}
	scan := Table{
		Title:  "fig7c: scan throughput (Kscans/s, 50 entries each)",
		Note:   fmt.Sprintf("%d scans from random start keys", p.Ops/10),
		Header: []string{"store", "Kscans/s"},
	}
	update := Table{
		Title:  "fig7d: zipfian update throughput incl. compaction/GC (KOps/s)",
		Note:   fmt.Sprintf("%d zipfian overwrites", p.Ops),
		Header: []string{"store", "KOps/s"},
	}
	for _, kind := range p.Stores {
		s, _, err := openFresh(kind, p, nil)
		if err != nil {
			panic(err)
		}
		dLoad, err := loadPhase(s, p.N, p.ValueSize)
		if err != nil {
			panic(err)
		}
		load.Rows = append(load.Rows, []string{kind, kops(p.N, dLoad)})
		p.logf("fig7 %s: load %s KOps/s", kind, kops(p.N, dLoad))

		// No forced compaction: reads measure the post-load state, as the
		// paper does.
		dRead, err := readPhase(s, p.N, p.Ops, ycsb.Uniform, p.Seed)
		if err != nil {
			panic(err)
		}
		read.Rows = append(read.Rows, []string{kind, kops(p.Ops, dRead)})
		p.logf("fig7 %s: read %s KOps/s", kind, kops(p.Ops, dRead))

		scans := p.Ops / 10
		if scans < 1 {
			scans = 1
		}
		dScan, err := scanPhase(s, p.N, scans, 50, p.Seed)
		if err != nil {
			panic(err)
		}
		scan.Rows = append(scan.Rows, []string{kind, kops(scans, dScan)})
		p.logf("fig7 %s: scan %s Kscans/s", kind, kops(scans, dScan))

		dUpd, err := updatePhase(s, p.N, p.Ops, p.ValueSize, p.Seed)
		if err != nil {
			panic(err)
		}
		update.Rows = append(update.Rows, []string{kind, kops(p.Ops, dUpd)})
		p.logf("fig7 %s: update %s KOps/s", kind, kops(p.Ops, dUpd))
		s.Close()
	}
	return []Table{load, read, scan, update}
}

// Fig9 reproduces the scalability experiment: load+read throughput as the
// dataset grows. Expected shape: the baselines degrade with N (more
// levels/runs to search); UniKV stays comparatively flat (splits keep each
// partition's shape constant).
func Fig9(p Params) []Table {
	p = p.WithDefaults()
	sizes := []int{p.N / 8, p.N / 4, p.N / 2, p.N}
	load := Table{
		Title:  "fig9a: load throughput vs dataset size (KOps/s)",
		Header: append([]string{"records"}, p.Stores...),
	}
	read := Table{
		Title:  "fig9b: read throughput vs dataset size (KOps/s)",
		Header: append([]string{"records"}, p.Stores...),
	}
	for _, n := range sizes {
		rowL := []string{fmt.Sprintf("%d", n)}
		rowR := []string{fmt.Sprintf("%d", n)}
		for _, kind := range p.Stores {
			s, _, err := openFresh(kind, Params{N: n, ValueSize: p.ValueSize}.WithDefaults(), nil)
			if err != nil {
				panic(err)
			}
			dLoad, err := loadPhase(s, n, p.ValueSize)
			if err != nil {
				panic(err)
			}
			ops := n / 2
			dRead, err := readPhase(s, n, ops, ycsb.Uniform, p.Seed)
			if err != nil {
				panic(err)
			}
			s.Close()
			rowL = append(rowL, kops(n, dLoad))
			rowR = append(rowR, kops(ops, dRead))
			p.logf("fig9 n=%d %s: load %s read %s", n, kind, kops(n, dLoad), kops(ops, dRead))
		}
		load.Rows = append(load.Rows, rowL)
		read.Rows = append(read.Rows, rowR)
	}
	return []Table{load, read}
}

// Fig10 reproduces the KV-size experiment: load+read throughput across
// value sizes. Expected shape: KV separation pays off most at larger
// values (merge moves keys, not values).
func Fig10(p Params) []Table {
	p = p.WithDefaults()
	valueSizes := []int{256, 1024, 4096}
	load := Table{
		Title:  "fig10a: load throughput vs value size (MB/s of user data)",
		Header: append([]string{"value"}, p.Stores...),
	}
	read := Table{
		Title:  "fig10b: read throughput vs value size (KOps/s)",
		Header: append([]string{"value"}, p.Stores...),
	}
	for _, vs := range valueSizes {
		// Hold dataset bytes roughly constant across value sizes.
		n := p.N * p.ValueSize / vs
		if n < 500 {
			n = 500
		}
		rowL := []string{fmt.Sprintf("%dB", vs)}
		rowR := []string{fmt.Sprintf("%dB", vs)}
		for _, kind := range p.Stores {
			s, _, err := openFresh(kind, Params{N: n, ValueSize: vs}.WithDefaults(), nil)
			if err != nil {
				panic(err)
			}
			dLoad, err := loadPhase(s, n, vs)
			if err != nil {
				panic(err)
			}
			s.Compact()
			ops := n / 2
			dRead, err := readPhase(s, n, ops, ycsb.Uniform, p.Seed)
			if err != nil {
				panic(err)
			}
			s.Close()
			mbps := float64(n) * float64(vs) / 1e6 / dLoad.Seconds()
			rowL = append(rowL, fmt.Sprintf("%.1f", mbps))
			rowR = append(rowR, kops(ops, dRead))
			p.logf("fig10 v=%dB %s: load %.1f MB/s read %s KOps/s", vs, kind, mbps, kops(ops, dRead))
		}
		load.Rows = append(load.Rows, rowL)
		read.Rows = append(read.Rows, rowR)
	}
	return []Table{load, read}
}
