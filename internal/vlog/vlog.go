// Package vlog manages a partition's value logs — the append-only files
// that hold values after partial KV separation (paper §Design, "Partial KV
// separation"). Keys and pointers stay in the SortedStore's SSTables; a
// pointer is record.ValuePtr = <partition, logNumber, offset, length>.
//
// The log stores bare values framed as
//
//	length (4B LE) | masked CRC-32C (4B) | value
//
// Keys are not duplicated into the log: UniKV's GC identifies live values
// by scanning the SortedStore's keys+pointers (unlike WiscKey, which must
// store keys in the vLog to probe the LSM-tree).
//
// The manager also implements the paper's scan readahead: Prefetch loads a
// log region into an in-process cache before the scan dereferences pointers
// (the portable equivalent of posix_fadvise(WILLNEED)).
package vlog

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"unikv/internal/cache"
	"unikv/internal/codec"
	"unikv/internal/record"
	"unikv/internal/vfs"
)

const headerLen = 8

// HeaderLen is the fixed per-frame header size (length + checksum),
// exported for offline tools that reason about frame extents.
const HeaderLen = headerLen

// ErrBadPointer reports a pointer that does not match the log contents.
var ErrBadPointer = errors.New("vlog: pointer does not match log record")

// ErrCorrupt is wrapped by VerifyLog failures (truncated or
// checksum-mismatching sealed records), so callers can classify them as
// corruption rather than retryable I/O.
var ErrCorrupt = errors.New("vlog: corrupt log")

// Options configures a Manager.
type Options struct {
	// MaxLogSize rotates the active log once it exceeds this many bytes.
	MaxLogSize int64
	// Partition is stamped into returned pointers.
	Partition uint32
	// Cache, when non-nil, holds hot values for point reads (PoolValue,
	// keyed by (logNum, offset)). Scan fetches and GC rewrites bypass it
	// via ReadUncached so bulk traffic cannot flush the hot set.
	Cache *cache.Cache
}

// Manager owns the value logs in one directory.
type Manager struct {
	fs   vfs.FS
	dir  string
	opts Options

	mu        sync.Mutex
	active    vfs.File
	activeNum uint32
	activeOff int64
	nextNum   uint32
	dirDirty  bool   // a log file was created since the last SyncDir
	scratch   []byte // frame staging for Append (guarded by mu)

	sizes   map[uint32]int64 // total bytes per log
	garbage map[uint32]int64 // dead bytes per log (greedy GC accounting)
	readers map[uint32]vfs.File
	pins    map[uint64]uint32 // open append windows: token → lowest log num
	pinSeq  uint64

	prefetchMu     sync.Mutex
	prefetchSpans  [maxPrefetchSpans]prefetchSpan
	prefetchClock  int   // round-robin eviction cursor
	prefetchIssued int64 // spans loaded (Prefetch calls that installed data)
	prefetchWasted int64 // spans dropped without serving a single read
}

// maxPrefetchSpans bounds the readahead ring: one scan can keep several
// per-log contiguous runs resident at once (the adaptive prefetch in
// internal/core issues one span per detected run), and parallel fetch
// chunks then hit their own spans instead of evicting each other's.
const maxPrefetchSpans = 8

// prefetchSpan is one resident readahead region.
type prefetchSpan struct {
	log  uint32
	off  int64
	buf  []byte // nil = empty slot
	hits int64
}

// LogName formats the file name of log n.
func LogName(n uint32) string { return fmt.Sprintf("vlog-%08d.log", n) }

// ParseLogName extracts the log number from a vlog file name.
func ParseLogName(name string) (uint32, bool) {
	if !strings.HasPrefix(name, "vlog-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	var n uint32
	if _, err := fmt.Sscanf(name, "vlog-%08d.log", &n); err != nil {
		return 0, false
	}
	return n, true
}

// Open scans dir for existing logs and prepares appends to a fresh log.
func Open(fs vfs.FS, dir string, opts Options) (*Manager, error) {
	if opts.MaxLogSize <= 0 {
		opts.MaxLogSize = 8 << 20
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	m := &Manager{
		fs:      fs,
		dir:     dir,
		opts:    opts,
		sizes:   make(map[uint32]int64),
		garbage: make(map[uint32]int64),
		readers: make(map[uint32]vfs.File),
		pins:    make(map[uint64]uint32),
	}
	names, err := fs.List(dir)
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		n, ok := ParseLogName(name)
		if !ok {
			continue
		}
		f, err := fs.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		sz, err := f.Size()
		if err != nil {
			f.Close()
			return nil, err
		}
		f.Close()
		m.sizes[n] = sz
		if n >= m.nextNum {
			m.nextNum = n + 1
		}
	}
	return m, nil
}

// ensureActiveLocked opens a fresh active log if needed.
func (m *Manager) ensureActiveLocked() error {
	if m.active != nil && m.activeOff < m.opts.MaxLogSize {
		return nil
	}
	if m.active != nil {
		if err := m.active.Sync(); err != nil {
			return err
		}
		if err := m.active.Close(); err != nil {
			return err
		}
		m.active = nil
	}
	num := m.nextNum
	m.nextNum++
	//unikv:allow(syncpublish) deferred publish: dirDirty marks the entry and Sync/Publish fsync the dir before any pointer into this log commits
	f, err := m.fs.Create(filepath.Join(m.dir, LogName(num)))
	if err != nil {
		return err
	}
	m.active = f
	m.activeNum = num
	m.activeOff = 0
	m.sizes[num] = 0
	m.dirDirty = true
	return nil
}

// Append writes value and returns its pointer. The write is buffered by the
// OS; call Sync before relying on durability (the merge path syncs once per
// batch, as the paper's sequential-log design intends).
func (m *Manager) Append(value []byte) (record.ValuePtr, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.ensureActiveLocked(); err != nil {
		return record.ValuePtr{}, err
	}
	off := m.activeOff
	m.scratch = frameInto(m.scratch[:0], value)
	if _, err := m.active.Write(m.scratch); err != nil {
		m.reconcileActiveLocked()
		return record.ValuePtr{}, err
	}
	n := int64(len(m.scratch))
	m.activeOff += n
	m.sizes[m.activeNum] += n
	return record.ValuePtr{
		Partition: m.opts.Partition,
		LogNum:    m.activeNum,
		Offset:    uint32(off),
		Length:    uint32(len(value)),
	}, nil
}

// AppendFor is Append with an explicit partition stamp; the engine uses it
// because several partitions share one log namespace.
func (m *Manager) AppendFor(partition uint32, value []byte) (record.ValuePtr, error) {
	ptr, err := m.Append(value)
	ptr.Partition = partition
	return ptr, err
}

// frameInto appends value's framed record (length, checksum, bytes) to
// buf. Records are staged and written as ONE Write call on purpose: a
// rejected write then leaves the log exactly as it was, so a retried
// background job re-appends at the same offset instead of burying a torn
// header mid-log where the sequential verifier (and nothing else) would
// find it.
func frameInto(buf, value []byte) []byte {
	buf = codec.PutUint32(buf, uint32(len(value)))
	buf = codec.PutUint32(buf, codec.MaskChecksum(codec.Checksum(value)))
	return append(buf, value...)
}

// reconcileActiveLocked re-anchors the active log after a failed append.
// A rejected write normally lands nothing and the log is still consistent
// at activeOff; if the file grew anyway (a partial write on a real file
// system), the torn tail cannot be appended over, so the log is sealed at
// its real size and the next append opens a fresh one. Nothing references
// the torn bytes — every pointer into them belonged to the failed,
// uncommitted job attempt.
func (m *Manager) reconcileActiveLocked() {
	if m.active == nil {
		return
	}
	if sz, err := m.active.Size(); err == nil && sz == m.activeOff {
		return
	} else if err == nil {
		m.sizes[m.activeNum] = sz
	}
	// Close without syncing: every synced-and-committed record predates the
	// failed append; the unsynced tail belongs to the aborted attempt.
	m.active.Close()
	m.active = nil
}

// DedicatedLog is a log file outside the active rotation, used by GC and
// partition split so their rewrites do not interleave with concurrent merge
// appends in the shared active log.
type DedicatedLog struct {
	m       *Manager
	f       vfs.File
	num     uint32
	off     int64
	part    uint32
	done    bool
	scratch []byte
}

// NewDedicatedLog opens a fresh log for exclusive appends, stamping ptrs
// with the given partition.
func (m *Manager) NewDedicatedLog(partition uint32) (*DedicatedLog, error) {
	m.mu.Lock()
	num := m.nextNum
	m.nextNum++
	m.sizes[num] = 0
	m.mu.Unlock()
	//unikv:allow(syncpublish) deferred publish: dirDirty marks the entry and Publish fsyncs the dir before the caller commits pointers to it
	f, err := m.fs.Create(filepath.Join(m.dir, LogName(num)))
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.dirDirty = true
	m.mu.Unlock()
	return &DedicatedLog{m: m, f: f, num: num, part: partition}, nil
}

// Num returns the log number.
func (d *DedicatedLog) Num() uint32 { return d.num }

// Size returns the bytes appended so far.
func (d *DedicatedLog) Size() int64 { return d.off }

// Append writes one value. A failed append poisons the whole log: the
// owning job fails, the file is abandoned (orphan cleanup removes it at
// the next open), and a retry starts over on a fresh dedicated log.
func (d *DedicatedLog) Append(value []byte) (record.ValuePtr, error) {
	off := d.off
	d.scratch = frameInto(d.scratch[:0], value)
	if _, err := d.f.Write(d.scratch); err != nil {
		return record.ValuePtr{}, err
	}
	n := int64(len(d.scratch))
	d.off += n
	d.m.mu.Lock()
	d.m.sizes[d.num] += n
	d.m.mu.Unlock()
	return record.ValuePtr{
		Partition: d.part,
		LogNum:    d.num,
		Offset:    uint32(off),
		Length:    uint32(len(value)),
	}, nil
}

// Finish syncs and closes the log. The log remains readable via the
// Manager. If nothing was appended the empty file is removed and Finish
// reports that via the returned bool.
func (d *DedicatedLog) Finish() (nonEmpty bool, err error) {
	if d.done {
		return d.off > 0, nil
	}
	d.done = true
	if err := d.f.Sync(); err != nil {
		return false, err
	}
	if err := d.f.Close(); err != nil {
		return false, err
	}
	if d.off == 0 {
		d.m.mu.Lock()
		delete(d.m.sizes, d.num)
		d.m.mu.Unlock()
		return false, d.m.fs.Remove(filepath.Join(d.m.dir, LogName(d.num)))
	}
	// The file's bytes are durable; make its directory entry durable too
	// before the caller commits pointers to it in the manifest.
	d.m.mu.Lock()
	defer d.m.mu.Unlock()
	return true, d.m.syncDirLocked()
}

// syncDirLocked fsyncs the log directory if any log file was created since
// the last call. Requires m.mu held.
func (m *Manager) syncDirLocked() error {
	if !m.dirDirty {
		return nil
	}
	if err := m.fs.SyncDir(m.dir); err != nil {
		return err
	}
	m.dirDirty = false
	return nil
}

// Sync makes appended values durable: file contents plus, if a log was
// created since the last call, the directory entry pointing at it.
func (m *Manager) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.active != nil {
		if err := m.active.Sync(); err != nil {
			return err
		}
	}
	return m.syncDirLocked()
}

// reader returns a cached read handle for log n.
func (m *Manager) reader(n uint32) (vfs.File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.readers[n]; ok {
		return f, nil
	}
	f, err := m.fs.Open(filepath.Join(m.dir, LogName(n)))
	if err != nil {
		return nil, err
	}
	m.readers[n] = f
	return f, nil
}

// Read fetches the value at ptr for a point lookup, verifying length and
// checksum. The scan readahead buffer is consulted first, then the value
// cache; a miss reads the log and caches the verified value. The returned
// buffer is owned by the caller.
func (m *Manager) Read(ptr record.ValuePtr) ([]byte, error) {
	return m.ReadHinted(ptr, true)
}

// ReadHinted is Read with a cache-admission hint: warm reads admit their
// value with the evicting Add (the pre-hint behavior), cold reads with
// AddCold, which only fills free space. The engine derives warm from the
// hot ring's frequency signal — a key it has sampled at least twice — so
// scattered reads over a cold tail cannot evict the resident hot set.
func (m *Manager) ReadHinted(ptr record.ValuePtr, warm bool) ([]byte, error) {
	if b, ok := m.fromPrefetch(ptr); ok {
		return b, nil
	}
	ck := cache.Key{Pool: cache.PoolValue, ID: uint64(ptr.LogNum), Off: uint64(ptr.Offset)}
	if b, ok := m.opts.Cache.Get(ck); ok && uint32(len(b)) == ptr.Length {
		// Cached bytes are shared and immutable; Read hands the buffer to
		// the caller, so copy.
		return append([]byte(nil), b...), nil
	}
	val, err := m.readFramed(ptr)
	if err != nil {
		return nil, err
	}
	if warm {
		m.opts.Cache.Add(ck, append([]byte(nil), val...))
	} else {
		m.opts.Cache.AddCold(ck, append([]byte(nil), val...))
	}
	return val, nil
}

// ReadUncached is Read without value-cache participation (it neither
// consults nor populates it). Scans and GC use it so bulk value traffic
// cannot evict the point-read hot set.
func (m *Manager) ReadUncached(ptr record.ValuePtr) ([]byte, error) {
	if b, ok := m.fromPrefetch(ptr); ok {
		return b, nil
	}
	return m.readFramed(ptr)
}

// readFramed reads and validates the framed value at ptr from the log
// file. A short read — a pointer past the synced tail after a crash — is
// an explicit error, never partial data: ReadAt can return n < len(buf)
// with io.EOF, and the stale/zero suffix of buf must not reach the
// decoder as if it had been read.
func (m *Manager) readFramed(ptr record.ValuePtr) ([]byte, error) {
	f, err := m.reader(ptr.LogNum)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, headerLen+int(ptr.Length))
	n, err := f.ReadAt(buf, int64(ptr.Offset))
	if err != nil && err != io.EOF {
		return nil, err
	}
	if n < len(buf) {
		return nil, fmt.Errorf("vlog: log %d truncated at offset %d (%d of %d bytes): %w",
			ptr.LogNum, ptr.Offset, n, len(buf), ErrBadPointer)
	}
	return decodeValue(buf, ptr.Length)
}

// decodeValue validates a framed value against the pointer's length.
func decodeValue(buf []byte, wantLen uint32) ([]byte, error) {
	if len(buf) < headerLen {
		return nil, ErrBadPointer
	}
	length, rest, _ := codec.Uint32(buf)
	crc, rest, _ := codec.Uint32(rest)
	if length != wantLen || len(rest) < int(length) {
		return nil, ErrBadPointer
	}
	val := rest[:length]
	if codec.MaskChecksum(codec.Checksum(val)) != crc {
		return nil, ErrBadPointer
	}
	return val, nil
}

// Prefetch loads log n's byte range [off, off+length) into a slot of the
// readahead ring so subsequent Reads inside that range avoid per-value
// I/O. The ring holds up to maxPrefetchSpans regions; a new span evicts
// round-robin, counting a never-hit victim as wasted readahead.
func (m *Manager) Prefetch(n uint32, off int64, length int64) error {
	f, err := m.reader(n)
	if err != nil {
		return err
	}
	if length <= 0 {
		return nil
	}
	buf := make([]byte, length)
	// A short read is fine here: the buffer is truncated to the bytes
	// actually read, so fromPrefetch's coverage check rejects pointers
	// past the tail and they fall back to the per-value read path.
	rd, err := f.ReadAt(buf, off)
	if err != nil && err != io.EOF {
		return err
	}
	m.prefetchMu.Lock()
	s := &m.prefetchSpans[m.prefetchClock]
	m.prefetchClock = (m.prefetchClock + 1) % maxPrefetchSpans
	if s.buf != nil && s.hits == 0 {
		m.prefetchWasted++
	}
	*s = prefetchSpan{log: n, off: off, buf: buf[:rd]}
	m.prefetchIssued++
	m.prefetchMu.Unlock()
	return nil
}

// fromPrefetch serves ptr from the readahead ring when a span fully
// covers it.
func (m *Manager) fromPrefetch(ptr record.ValuePtr) ([]byte, bool) {
	m.prefetchMu.Lock()
	defer m.prefetchMu.Unlock()
	for i := range m.prefetchSpans {
		s := &m.prefetchSpans[i]
		if s.buf == nil || ptr.LogNum != s.log {
			continue
		}
		start := int64(ptr.Offset) - s.off
		end := start + headerLen + int64(ptr.Length)
		if start < 0 || end > int64(len(s.buf)) {
			continue
		}
		val, err := decodeValue(s.buf[start:end], ptr.Length)
		if err != nil {
			continue
		}
		s.hits++
		out := make([]byte, len(val))
		copy(out, val)
		return out, true
	}
	return nil, false
}

// dropPrefetch clears every span whose log matches, charging never-hit
// ones to the wasted counter.
func (m *Manager) dropPrefetch(match func(log uint32) bool) {
	m.prefetchMu.Lock()
	for i := range m.prefetchSpans {
		s := &m.prefetchSpans[i]
		if s.buf == nil || !match(s.log) {
			continue
		}
		if s.hits == 0 {
			m.prefetchWasted++
		}
		*s = prefetchSpan{}
	}
	m.prefetchMu.Unlock()
}

// PrefetchStats reports readahead effectiveness: spans issued and spans
// retired without a single hit.
func (m *Manager) PrefetchStats() (issued, wasted int64) {
	m.prefetchMu.Lock()
	defer m.prefetchMu.Unlock()
	return m.prefetchIssued, m.prefetchWasted
}

// AddGarbage records n dead bytes in log logNum (an overwritten or deleted
// value). The greedy GC policy picks the partition with the most garbage.
func (m *Manager) AddGarbage(logNum uint32, n int64) {
	m.mu.Lock()
	m.garbage[logNum] += n
	m.mu.Unlock()
}

// Garbage returns the total dead bytes across logs.
func (m *Manager) Garbage() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var g int64
	for _, v := range m.garbage {
		g += v
	}
	return g
}

// TotalSize returns the bytes held by all logs.
func (m *Manager) TotalSize() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s int64
	for _, v := range m.sizes {
		s += v
	}
	return s
}

// LogNums returns the numbers of all logs, ascending.
func (m *Manager) LogNums() []uint32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]uint32, 0, len(m.sizes))
	for n := range m.sizes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SealActive closes the active log so a subsequent Append starts a new one.
// GC uses it to guarantee old logs are immutable before rewriting them.
func (m *Manager) SealActive() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.active == nil {
		return nil
	}
	if err := m.active.Sync(); err != nil {
		return err
	}
	if err := m.active.Close(); err != nil {
		return err
	}
	m.active = nil
	return nil
}

// Pin opens an append window and returns its token: until Unpin, every
// log numbered at or above the window's bound may be receiving values
// whose pointers are not yet visible to readers. GC must treat those
// logs as live (see MinPinned) — the active log can rotate mid-merge,
// and without the pin a concurrent GC in another partition could
// collect-and-delete the pre-rotation log while the merge still holds
// uncommitted pointers into it.
func (m *Manager) Pin() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	bound := m.nextNum
	if m.active != nil {
		bound = m.activeNum
	}
	m.pinSeq++
	m.pins[m.pinSeq] = bound
	return m.pinSeq
}

// Unpin closes the append window opened by Pin.
func (m *Manager) Unpin(token uint64) {
	m.mu.Lock()
	delete(m.pins, token)
	m.mu.Unlock()
}

// MinPinned returns the lowest bound across open append windows, or
// (0, false) when none are open.
func (m *Manager) MinPinned() (uint32, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var min uint32
	ok := false
	for _, b := range m.pins {
		if !ok || b < min {
			min, ok = b, true
		}
	}
	return min, ok
}

// ActiveNum returns the number of the log currently receiving appends, or
// (0, false) when none is open.
func (m *Manager) ActiveNum() (uint32, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.active == nil {
		return 0, false
	}
	return m.activeNum, true
}

// Remove deletes log n (after GC has rewritten its live values). Cached
// values from the log are dropped first so no read started after the
// removal can observe collected data.
func (m *Manager) Remove(n uint32) error {
	m.opts.Cache.EvictLog(n)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.active != nil && m.activeNum == n {
		return errors.New("vlog: cannot remove active log")
	}
	if f, ok := m.readers[n]; ok {
		f.Close()
		delete(m.readers, n)
	}
	delete(m.sizes, n)
	delete(m.garbage, n)
	m.dropPrefetch(func(log uint32) bool { return log == n })
	return m.fs.Remove(filepath.Join(m.dir, LogName(n)))
}

// Close releases all file handles.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var first error
	if m.active != nil {
		if err := m.active.Sync(); err != nil && first == nil {
			first = err
		}
		if err := m.active.Close(); err != nil && first == nil {
			first = err
		}
		m.active = nil
	}
	for n, f := range m.readers {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		delete(m.readers, n)
	}
	return first
}

// SizeOf returns the byte size of log n (0 if unknown).
func (m *Manager) SizeOf(n uint32) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sizes[n]
}

// GarbageOf returns the recorded dead bytes of log n.
func (m *Manager) GarbageOf(n uint32) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.garbage[n]
}

// VerifyLog walks log n sequentially, checking every framed value's
// checksum. It returns the number of values and the first error.
func (m *Manager) VerifyLog(n uint32) (int, error) {
	count, _, err := m.VerifyLogPrefix(n, -1, nil)
	return count, err
}

// VerifyLogPrefix verifies the first limit bytes of log n (limit < 0
// means the whole file). pace, when non-nil, is called with each verified
// frame's byte count — the scrub's rate limiter hangs off it — and may
// abort the walk by returning an error. It returns the number of valid
// frames, the offset where the walk stopped (the length of the longest
// valid frame prefix), and the first error.
//
// Passing the active log's reconciled boundary as limit verifies exactly
// the sealed prefix: appends only ever extend the boundary, so the bytes
// below a captured boundary are immutable even while writers append.
func (m *Manager) VerifyLogPrefix(n uint32, limit int64, pace func(int64) error) (int, int64, error) {
	f, err := m.reader(n)
	if err != nil {
		return 0, 0, err
	}
	size, err := f.Size()
	if err != nil {
		return 0, 0, err
	}
	if limit >= 0 && limit < size {
		size = limit
	}
	return ScanValidPrefix(f, size, pace)
}

// ActiveBound returns the active log's number and its reconciled frame
// boundary: every byte below the boundary belongs to a complete,
// checksummed frame. ok is false when no log is open for appends.
func (m *Manager) ActiveBound() (n uint32, off int64, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.active == nil {
		return 0, 0, false
	}
	return m.activeNum, m.activeOff, true
}

// ScanValidPrefix walks the framed values in the first size bytes of f,
// verifying every checksum, and returns the frame count, the length of
// the longest valid frame prefix, and the first error. Offline repair
// uses the returned prefix length as the truncation point for a torn
// log; pace is the optional per-frame rate-limit hook (see
// VerifyLogPrefix).
func ScanValidPrefix(f vfs.File, size int64, pace func(int64) error) (int, int64, error) {
	count := 0
	var off int64
	hdr := make([]byte, headerLen)
	for off < size {
		// hdr is reused across iterations: a tolerated short read would
		// leave the previous header's bytes in place and fabricate a frame,
		// so require the full header (and below, the full value).
		n, err := f.ReadAt(hdr, off)
		if err != nil && err != io.EOF {
			return count, off, err
		}
		if n < headerLen {
			return count, off, fmt.Errorf("%w: truncated header at offset %d", ErrCorrupt, off)
		}
		length, rest, _ := codec.Uint32(hdr)
		crc, _, _ := codec.Uint32(rest)
		if off+headerLen+int64(length) > size {
			return count, off, fmt.Errorf("%w: truncated value at offset %d", ErrCorrupt, off)
		}
		val := make([]byte, length)
		n, err = f.ReadAt(val, off+headerLen)
		if err != nil && err != io.EOF {
			return count, off, err
		}
		if n < int(length) {
			return count, off, fmt.Errorf("%w: truncated value at offset %d", ErrCorrupt, off)
		}
		if codec.MaskChecksum(codec.Checksum(val)) != crc {
			return count, off, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
		}
		count++
		off += headerLen + int64(length)
		if pace != nil {
			if err := pace(headerLen + int64(length)); err != nil {
				return count, off, err
			}
		}
	}
	return count, off, nil
}
