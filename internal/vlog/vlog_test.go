package vlog

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"unikv/internal/record"
	"unikv/internal/vfs"
)

func newMgr(t *testing.T, fs vfs.FS, opts Options) *Manager {
	t.Helper()
	m, err := Open(fs, "p0", opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAppendRead(t *testing.T) {
	fs := vfs.NewMem()
	m := newMgr(t, fs, Options{Partition: 3})
	defer m.Close()

	var ptrs []record.ValuePtr
	var vals [][]byte
	for i := 0; i < 100; i++ {
		v := []byte(fmt.Sprintf("value-%04d-%s", i, bytes.Repeat([]byte("x"), i)))
		ptr, err := m.Append(v)
		if err != nil {
			t.Fatal(err)
		}
		if ptr.Partition != 3 {
			t.Fatalf("partition=%d", ptr.Partition)
		}
		ptrs = append(ptrs, ptr)
		vals = append(vals, v)
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	for i, ptr := range ptrs {
		got, err := m.Read(ptr)
		if err != nil {
			t.Fatalf("Read(%v): %v", ptr, err)
		}
		if !bytes.Equal(got, vals[i]) {
			t.Fatalf("value %d mismatch", i)
		}
	}
}

func TestRotation(t *testing.T) {
	fs := vfs.NewMem()
	m := newMgr(t, fs, Options{MaxLogSize: 256})
	defer m.Close()

	seen := map[uint32]bool{}
	for i := 0; i < 50; i++ {
		ptr, err := m.Append(make([]byte, 64))
		if err != nil {
			t.Fatal(err)
		}
		seen[ptr.LogNum] = true
	}
	if len(seen) < 5 {
		t.Fatalf("expected several logs, got %d", len(seen))
	}
	if got := len(m.LogNums()); got != len(seen) {
		t.Fatalf("LogNums()=%d seen=%d", got, len(seen))
	}
	if m.TotalSize() != 50*(64+headerLen) {
		t.Fatalf("TotalSize=%d", m.TotalSize())
	}
}

func TestReopenContinues(t *testing.T) {
	fs := vfs.NewMem()
	m := newMgr(t, fs, Options{})
	ptr1, _ := m.Append([]byte("first"))
	m.Close()

	m2 := newMgr(t, fs, Options{})
	defer m2.Close()
	ptr2, err := m2.Append([]byte("second"))
	if err != nil {
		t.Fatal(err)
	}
	if ptr2.LogNum <= ptr1.LogNum {
		t.Fatalf("log numbers must advance across reopen: %d then %d", ptr1.LogNum, ptr2.LogNum)
	}
	// Both readable.
	if v, err := m2.Read(ptr1); err != nil || string(v) != "first" {
		t.Fatalf("old value: %q %v", v, err)
	}
	if v, err := m2.Read(ptr2); err != nil || string(v) != "second" {
		t.Fatalf("new value: %q %v", v, err)
	}
}

func TestBadPointer(t *testing.T) {
	fs := vfs.NewMem()
	m := newMgr(t, fs, Options{})
	defer m.Close()
	ptr, _ := m.Append([]byte("valid-value"))

	bad := ptr
	bad.Length += 5
	if _, err := m.Read(bad); err == nil {
		t.Fatal("wrong length accepted")
	}
	bad = ptr
	bad.Offset += 3
	if _, err := m.Read(bad); err == nil {
		t.Fatal("misaligned offset accepted")
	}
	bad = ptr
	bad.LogNum += 99
	if _, err := m.Read(bad); err == nil {
		t.Fatal("missing log accepted")
	}
}

func TestCorruptValueDetected(t *testing.T) {
	fs := vfs.NewMem()
	m := newMgr(t, fs, Options{})
	ptr, _ := m.Append([]byte("payload-payload"))
	m.Close()

	name := "p0/" + LogName(ptr.LogNum)
	data, _ := fs.ReadFile(name)
	data[headerLen+2] ^= 0xff
	fs.WriteFile(name, data)

	m2 := newMgr(t, fs, Options{})
	defer m2.Close()
	if _, err := m2.Read(ptr); err == nil {
		t.Fatal("corrupt value passed checksum")
	}
}

// TestTruncatedTailRejected simulates a crash that loses the tail of a
// log file. Pointers past the cut must fail loudly — ReadAt tolerates
// short reads (n < len(buf) with io.EOF), and the undecoded stale/zero
// suffix must never be returned as value bytes. Values before the cut
// stay readable, and VerifyLog counts the intact prefix then reports the
// damage.
func TestTruncatedTailRejected(t *testing.T) {
	fs := vfs.NewMem()
	m := newMgr(t, fs, Options{})
	var ptrs []record.ValuePtr
	var vals [][]byte
	for i := 0; i < 10; i++ {
		v := []byte(fmt.Sprintf("value-%04d-%s", i, bytes.Repeat([]byte("y"), 30)))
		ptr, err := m.Append(v)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, ptr)
		vals = append(vals, v)
	}
	m.Close()

	last := ptrs[len(ptrs)-1]
	name := "p0/" + LogName(last.LogNum)
	whole, err := fs.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{
		int(last.Offset) + 3,             // mid-header
		int(last.Offset) + headerLen + 5, // mid-value
	} {
		fs.WriteFile(name, whole[:cut])
		m2 := newMgr(t, fs, Options{})
		if v, err := m2.Read(last); err == nil {
			t.Fatalf("cut=%d: Read returned %q past the truncation point", cut, v)
		}
		if v, err := m2.ReadUncached(last); err == nil {
			t.Fatalf("cut=%d: ReadUncached returned %q past the truncation point", cut, v)
		}
		for i := 0; i < len(ptrs)-1; i++ {
			got, err := m2.Read(ptrs[i])
			if err != nil || !bytes.Equal(got, vals[i]) {
				t.Fatalf("cut=%d: intact value %d unreadable: %v", cut, i, err)
			}
		}
		n, err := m2.VerifyLog(last.LogNum)
		if err == nil {
			t.Fatalf("cut=%d: VerifyLog missed the truncation", cut)
		}
		if n != len(ptrs)-1 {
			t.Fatalf("cut=%d: VerifyLog counted %d intact values, want %d", cut, n, len(ptrs)-1)
		}
		m2.Close()
	}
}

func TestPrefetch(t *testing.T) {
	fs := vfs.NewMem()
	m := newMgr(t, fs, Options{})
	defer m.Close()

	var ptrs []record.ValuePtr
	for i := 0; i < 20; i++ {
		ptr, _ := m.Append([]byte(fmt.Sprintf("v%02d", i)))
		ptrs = append(ptrs, ptr)
	}
	m.Sync()

	first, last := ptrs[0], ptrs[len(ptrs)-1]
	length := int64(last.Offset) + headerLen + int64(last.Length) - int64(first.Offset)
	if err := m.Prefetch(first.LogNum, int64(first.Offset), length); err != nil {
		t.Fatal(err)
	}
	readsBefore := fs.Counters().ReadOps.Load()
	for i, ptr := range ptrs {
		v, err := m.Read(ptr)
		if err != nil {
			t.Fatal(err)
		}
		if string(v) != fmt.Sprintf("v%02d", i) {
			t.Fatalf("value %d = %q", i, v)
		}
	}
	if fs.Counters().ReadOps.Load() != readsBefore {
		t.Fatal("reads within prefetched range hit the file")
	}
}

func TestGarbageAccounting(t *testing.T) {
	fs := vfs.NewMem()
	m := newMgr(t, fs, Options{})
	defer m.Close()
	m.Append([]byte("x"))
	m.AddGarbage(0, 100)
	m.AddGarbage(0, 50)
	if m.Garbage() != 150 {
		t.Fatalf("Garbage=%d", m.Garbage())
	}
}

func TestSealAndRemove(t *testing.T) {
	fs := vfs.NewMem()
	m := newMgr(t, fs, Options{})
	defer m.Close()
	ptr, _ := m.Append([]byte("val"))
	if _, ok := m.ActiveNum(); !ok {
		t.Fatal("no active log after append")
	}
	if err := m.Remove(ptr.LogNum); err == nil {
		t.Fatal("removed the active log")
	}
	if err := m.SealActive(); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.ActiveNum(); ok {
		t.Fatal("active after seal")
	}
	if err := m.Remove(ptr.LogNum); err != nil {
		t.Fatal(err)
	}
	if len(m.LogNums()) != 0 {
		t.Fatalf("LogNums=%v after remove", m.LogNums())
	}
	if _, err := m.Read(ptr); err == nil {
		t.Fatal("read from removed log succeeded")
	}
	// New appends land in a new log.
	ptr2, err := m.Append([]byte("next"))
	if err != nil {
		t.Fatal(err)
	}
	if ptr2.LogNum == ptr.LogNum {
		t.Fatal("log number reused")
	}
}

func TestParseLogName(t *testing.T) {
	if n, ok := ParseLogName(LogName(42)); !ok || n != 42 {
		t.Fatalf("round trip failed: %d %v", n, ok)
	}
	for _, bad := range []string{"vlog-x.log", "table-00000001.sst", "vlog-1.data", ""} {
		if _, ok := ParseLogName(bad); ok {
			t.Fatalf("parsed %q", bad)
		}
	}
}

// TestQuickRoundTrip stores random values across rotating logs and reads
// them all back, in random order, with and without prefetch.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		fs := vfs.NewMem()
		m, err := Open(fs, "p", Options{MaxLogSize: 1024})
		if err != nil {
			return false
		}
		defer m.Close()
		n := rnd.Intn(100) + 1
		vals := make([][]byte, n)
		ptrs := make([]record.ValuePtr, n)
		for i := 0; i < n; i++ {
			v := make([]byte, rnd.Intn(300))
			rnd.Read(v)
			vals[i] = v
			ptr, err := m.Append(v)
			if err != nil {
				return false
			}
			ptrs[i] = ptr
		}
		order := rnd.Perm(n)
		for _, i := range order {
			got, err := m.Read(ptrs[i])
			if err != nil || !bytes.Equal(got, vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDedicatedLog(t *testing.T) {
	fs := vfs.NewMem()
	m := newMgr(t, fs, Options{})
	defer m.Close()

	// Interleave shared-log appends with a dedicated log.
	p1, _ := m.AppendFor(1, []byte("shared-a"))
	d, err := m.NewDedicatedLog(7)
	if err != nil {
		t.Fatal(err)
	}
	dp1, err := d.Append([]byte("gc-value-1"))
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := m.AppendFor(1, []byte("shared-b"))
	dp2, _ := d.Append([]byte("gc-value-2"))
	if dp1.LogNum == p1.LogNum {
		t.Fatal("dedicated log shares number with active log")
	}
	if dp1.Partition != 7 || p1.Partition != 1 {
		t.Fatalf("partition stamps wrong: %v %v", dp1, p1)
	}
	if d.Num() != dp1.LogNum {
		t.Fatalf("Num()=%d", d.Num())
	}
	if d.Size() == 0 {
		t.Fatal("Size()=0 after appends")
	}
	nonEmpty, err := d.Finish()
	if err != nil || !nonEmpty {
		t.Fatalf("Finish: %v %v", nonEmpty, err)
	}
	for _, c := range []struct {
		ptr  record.ValuePtr
		want string
	}{{p1, "shared-a"}, {p2, "shared-b"}, {dp1, "gc-value-1"}, {dp2, "gc-value-2"}} {
		got, err := m.Read(c.ptr)
		if err != nil || string(got) != c.want {
			t.Fatalf("Read(%v)=%q,%v want %q", c.ptr, got, err, c.want)
		}
	}
}

func TestDedicatedLogEmpty(t *testing.T) {
	fs := vfs.NewMem()
	m := newMgr(t, fs, Options{})
	defer m.Close()
	d, _ := m.NewDedicatedLog(1)
	num := d.Num()
	nonEmpty, err := d.Finish()
	if err != nil || nonEmpty {
		t.Fatalf("Finish empty: %v %v", nonEmpty, err)
	}
	for _, n := range m.LogNums() {
		if n == num {
			t.Fatal("empty dedicated log not cleaned up")
		}
	}
	// Idempotent Finish.
	if _, err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyLog(t *testing.T) {
	fs := vfs.NewMem()
	m := newMgr(t, fs, Options{})
	var last record.ValuePtr
	for i := 0; i < 50; i++ {
		last, _ = m.Append([]byte(fmt.Sprintf("value-%03d", i)))
	}
	m.Sync()
	n, err := m.VerifyLog(last.LogNum)
	if err != nil || n != 50 {
		t.Fatalf("VerifyLog: n=%d err=%v", n, err)
	}
	m.Close()

	name := "p0/" + LogName(last.LogNum)
	data, _ := fs.ReadFile(name)
	data[len(data)/2] ^= 0xff
	fs.WriteFile(name, data)
	m2 := newMgr(t, fs, Options{})
	defer m2.Close()
	if _, err := m2.VerifyLog(last.LogNum); err == nil {
		t.Fatal("corruption not detected by VerifyLog")
	}
	if _, err := m2.VerifyLog(9999); err == nil {
		t.Fatal("missing log verified")
	}
}

func TestPinWindow(t *testing.T) {
	fs := vfs.NewMem()
	m := newMgr(t, fs, Options{MaxLogSize: 128})
	defer m.Close()

	if _, ok := m.MinPinned(); ok {
		t.Fatal("fresh manager reports a pinned window")
	}

	// Pin before any append: the bound covers the first log to be created.
	pin1 := m.Pin()
	ptr, err := m.Append(make([]byte, 32))
	if err != nil {
		t.Fatal(err)
	}
	bound, ok := m.MinPinned()
	if !ok || bound > ptr.LogNum {
		t.Fatalf("MinPinned=(%d,%v), appended into log %d", bound, ok, ptr.LogNum)
	}

	// A second pin taken mid-stream covers the current active log; the
	// minimum still reflects the older window.
	pin2 := m.Pin()
	if got, _ := m.MinPinned(); got != bound {
		t.Fatalf("MinPinned moved to %d with older pin live", got)
	}
	m.Unpin(pin1)
	got, ok := m.MinPinned()
	if !ok || got < bound {
		t.Fatalf("MinPinned=(%d,%v) after releasing older pin", got, ok)
	}
	m.Unpin(pin2)
	if _, ok := m.MinPinned(); ok {
		t.Fatal("window still pinned after both Unpins")
	}

	// Rotation during a pinned window: every log receiving appends stays
	// at or above the bound.
	pin3 := m.Pin()
	bound, _ = m.MinPinned()
	for i := 0; i < 20; i++ {
		ptr, err := m.Append(make([]byte, 64))
		if err != nil {
			t.Fatal(err)
		}
		if ptr.LogNum < bound {
			t.Fatalf("append landed in log %d below pinned bound %d", ptr.LogNum, bound)
		}
	}
	m.Unpin(pin3)
}
