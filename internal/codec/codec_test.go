package codec

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestChecksumMaskRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		c := Checksum(data)
		return UnmaskChecksum(MaskChecksum(c)) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumDiffers(t *testing.T) {
	a := Checksum([]byte("hello"))
	b := Checksum([]byte("hellp"))
	if a == b {
		t.Fatal("checksums of different inputs collide trivially")
	}
}

func TestUvarintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		enc := PutUvarint(nil, v)
		got, rest, err := Uvarint(enc)
		return err == nil && got == v && len(rest) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUvarintEmpty(t *testing.T) {
	if _, _, err := Uvarint(nil); err == nil {
		t.Fatal("expected error decoding empty input")
	}
}

func TestUint32RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		enc := PutUint32(nil, v)
		got, rest, err := Uint32(enc)
		return err == nil && got == v && len(rest) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64RoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		enc := PutUint64(nil, v)
		got, rest, err := Uint64(enc)
		return err == nil && got == v && len(rest) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint32Short(t *testing.T) {
	if _, _, err := Uint32([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected error on short input")
	}
}

func TestUint64Short(t *testing.T) {
	if _, _, err := Uint64([]byte{1, 2, 3, 4, 5, 6, 7}); err == nil {
		t.Fatal("expected error on short input")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(b []byte, suffix []byte) bool {
		enc := PutBytes(nil, b)
		enc = append(enc, suffix...)
		got, rest, err := Bytes(enc)
		return err == nil && bytes.Equal(got, b) && bytes.Equal(rest, suffix)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesTruncated(t *testing.T) {
	enc := PutBytes(nil, []byte("hello world"))
	if _, _, err := Bytes(enc[:len(enc)-3]); err == nil {
		t.Fatal("expected error on truncated input")
	}
}

func TestBytesMulti(t *testing.T) {
	var enc []byte
	enc = PutBytes(enc, []byte("a"))
	enc = PutBytes(enc, []byte(""))
	enc = PutBytes(enc, []byte("ccc"))
	want := []string{"a", "", "ccc"}
	for _, w := range want {
		var got []byte
		var err error
		got, enc, err = Bytes(enc)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != w {
			t.Fatalf("got %q want %q", got, w)
		}
	}
	if len(enc) != 0 {
		t.Fatalf("leftover bytes: %d", len(enc))
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"a", "b", -1},
		{"b", "a", 1},
		{"a", "a", 0},
		{"", "a", -1},
		{"ab", "a", 1},
	}
	for _, c := range cases {
		if got := Compare([]byte(c.a), []byte(c.b)); got != c.want {
			t.Errorf("Compare(%q,%q)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}
