// Package codec holds the binary encoding primitives shared by the WAL,
// SSTable, value-log, manifest, and hash-index file formats: fixed-width
// little-endian integers, varints, length-prefixed byte slices, and the
// masked CRC-32C used to frame on-disk records.
package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// ErrCorrupt is returned when a decoder encounters malformed input.
var ErrCorrupt = errors.New("codec: corrupt encoding")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum computes the CRC-32C of data.
func Checksum(data []byte) uint32 {
	return crc32.Checksum(data, castagnoli)
}

// MaskChecksum applies LevelDB's checksum masking so that computing the CRC
// of a string that already embeds CRCs does not degenerate.
func MaskChecksum(c uint32) uint32 {
	return ((c >> 15) | (c << 17)) + 0xa282ead8
}

// UnmaskChecksum reverses MaskChecksum.
func UnmaskChecksum(m uint32) uint32 {
	c := m - 0xa282ead8
	return (c >> 17) | (c << 15)
}

// PutUvarint appends v to dst as an unsigned varint.
func PutUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// Uvarint decodes an unsigned varint from src, returning the value and the
// remaining bytes.
func Uvarint(src []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, nil, ErrCorrupt
	}
	return v, src[n:], nil
}

// PutUint32 appends v little-endian.
func PutUint32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

// Uint32 decodes a little-endian uint32 from the front of src.
func Uint32(src []byte) (uint32, []byte, error) {
	if len(src) < 4 {
		return 0, nil, ErrCorrupt
	}
	return binary.LittleEndian.Uint32(src), src[4:], nil
}

// PutUint64 appends v little-endian.
func PutUint64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// Uint64 decodes a little-endian uint64 from the front of src.
func Uint64(src []byte) (uint64, []byte, error) {
	if len(src) < 8 {
		return 0, nil, ErrCorrupt
	}
	return binary.LittleEndian.Uint64(src), src[8:], nil
}

// PutBytes appends b as a uvarint length followed by the raw bytes.
func PutBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// Bytes decodes a length-prefixed byte slice from src. The returned slice
// aliases src.
func Bytes(src []byte) ([]byte, []byte, error) {
	n, rest, err := Uvarint(src)
	if err != nil {
		return nil, nil, err
	}
	if uint64(len(rest)) < n {
		return nil, nil, ErrCorrupt
	}
	return rest[:n], rest[n:], nil
}

// Compare orders keys bytewise; it exists so that call sites read as intent
// ("codec.Compare") and so the comparator could be swapped in one place.
func Compare(a, b []byte) int { return bytes.Compare(a, b) }
