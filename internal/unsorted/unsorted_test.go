package unsorted

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"unikv/internal/manifest"
	"unikv/internal/record"
	"unikv/internal/sstable"
	"unikv/internal/vfs"
)

// buildTable writes kvs (map key→value) as a sorted table and returns it.
func buildTable(t *testing.T, fs vfs.FS, fileNum uint64, kvs map[string]string, seqBase uint64) (*Table, [][]byte) {
	t.Helper()
	keys := make([]string, 0, len(kvs))
	for k := range kvs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	name := filepath.Join("db", fmt.Sprintf("%06d.sst", fileNum))
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	b := sstable.NewBuilder(f, sstable.BuilderOptions{})
	var rawKeys [][]byte
	for i, k := range keys {
		b.Add(record.Record{Key: []byte(k), Seq: seqBase + uint64(i), Kind: record.KindSet, Value: []byte(kvs[k])})
		rawKeys = append(rawKeys, []byte(k))
	}
	props, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	rf, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	rdr, err := sstable.Open(rf)
	if err != nil {
		t.Fatal(err)
	}
	meta := manifest.TableMeta{
		FileNum: fileNum, Size: props.Size, Count: props.Count,
		Smallest: props.Smallest, Largest: props.Largest,
		MinSeq: props.MinSeq, MaxSeq: props.MaxSeq,
	}
	return &Table{Meta: meta, Reader: rdr}, rawKeys
}

func TestGetAcrossTables(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("db")
	s := New(1024)

	t1, k1 := buildTable(t, fs, 1, map[string]string{"a": "a1", "b": "b1", "c": "c1"}, 1)
	t2, k2 := buildTable(t, fs, 2, map[string]string{"b": "b2", "d": "d2"}, 10)
	if err := s.AddTable(t1, k1, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTable(t2, k2, nil); err != nil {
		t.Fatal(err)
	}
	if s.NumTables() != 2 {
		t.Fatalf("NumTables=%d", s.NumTables())
	}
	cases := []struct{ k, v string }{
		{"a", "a1"}, {"b", "b2"}, {"c", "c1"}, {"d", "d2"},
	}
	for _, c := range cases {
		rec, ok, err := s.Get([]byte(c.k))
		if err != nil || !ok || string(rec.Value) != c.v {
			t.Fatalf("Get(%q) = %q, %v, %v; want %q", c.k, rec.Value, ok, err, c.v)
		}
	}
	if _, ok, _ := s.Get([]byte("zzz")); ok {
		t.Fatal("phantom key")
	}
	if s.SizeBytes() != t1.Meta.Size+t2.Meta.Size {
		t.Fatalf("SizeBytes=%d", s.SizeBytes())
	}
}

func TestNewestTableWins(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("db")
	s := New(256)
	// Same key overwritten across 10 flushes.
	for i := 0; i < 10; i++ {
		tab, keys := buildTable(t, fs, uint64(i+1),
			map[string]string{"hot": fmt.Sprintf("v%d", i)}, uint64(i*10+1))
		if err := s.AddTable(tab, keys, nil); err != nil {
			t.Fatal(err)
		}
	}
	rec, ok, err := s.Get([]byte("hot"))
	if err != nil || !ok || string(rec.Value) != "v9" {
		t.Fatalf("got %q ok=%v err=%v", rec.Value, ok, err)
	}
}

func TestRecoveryNoCheckpoint(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("db")
	s := New(256)
	var metas []manifest.TableMeta
	for i := 0; i < 3; i++ {
		tab, keys := buildTable(t, fs, uint64(i+1),
			map[string]string{fmt.Sprintf("k%d", i): fmt.Sprintf("v%d", i), "shared": fmt.Sprintf("s%d", i)}, uint64(i*10+1))
		s.AddTable(tab, keys, nil)
		metas = append(metas, tab.Meta)
	}

	open := func(m manifest.TableMeta) (*sstable.Reader, error) {
		f, err := fs.Open(filepath.Join("db", fmt.Sprintf("%06d.sst", m.FileNum)))
		if err != nil {
			return nil, err
		}
		return sstable.Open(f)
	}
	r, err := Recover(fs, 256, metas, "", false, open)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok, err := r.Get([]byte("shared"))
	if err != nil || !ok || string(rec.Value) != "s2" {
		t.Fatalf("recovered Get = %q %v %v", rec.Value, ok, err)
	}
	for i := 0; i < 3; i++ {
		if _, ok, _ := r.Get([]byte(fmt.Sprintf("k%d", i))); !ok {
			t.Fatalf("k%d lost in recovery", i)
		}
	}
}

func TestRecoveryWithCheckpoint(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("db")
	s := New(256)
	var metas []manifest.TableMeta
	for i := 0; i < 2; i++ {
		tab, keys := buildTable(t, fs, uint64(i+1),
			map[string]string{fmt.Sprintf("k%d", i): "v"}, uint64(i*10+1))
		s.AddTable(tab, keys, nil)
		metas = append(metas, tab.Meta)
	}
	if err := s.Checkpoint(fs, "db/hashidx.ckpt"); err != nil {
		t.Fatal(err)
	}
	// One more table flushed after the checkpoint.
	tab3, keys3 := buildTable(t, fs, 3, map[string]string{"k2": "v", "k0": "newer"}, 100)
	s.AddTable(tab3, keys3, nil)
	metas = append(metas, tab3.Meta)

	open := func(m manifest.TableMeta) (*sstable.Reader, error) {
		f, err := fs.Open(filepath.Join("db", fmt.Sprintf("%06d.sst", m.FileNum)))
		if err != nil {
			return nil, err
		}
		return sstable.Open(f)
	}
	r, err := Recover(fs, 256, metas, "db/hashidx.ckpt", false, open)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"k0", "k1", "k2"} {
		if _, ok, _ := r.Get([]byte(k)); !ok {
			t.Fatalf("%s lost", k)
		}
	}
	rec, _, _ := r.Get([]byte("k0"))
	if string(rec.Value) != "newer" {
		t.Fatalf("k0 = %q, checkpoint replay order broken", rec.Value)
	}
}

func TestRecoveryStaleCheckpointIgnored(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("db")
	s := New(256)
	tab, keys := buildTable(t, fs, 1, map[string]string{"old": "x"}, 1)
	s.AddTable(tab, keys, nil)
	s.Checkpoint(fs, "db/hashidx.ckpt")

	// The store drained and different tables exist now: checkpoint's table
	// list no longer matches.
	tab2, _ := buildTable(t, fs, 7, map[string]string{"new": "y"}, 50)
	metas := []manifest.TableMeta{tab2.Meta}
	open := func(m manifest.TableMeta) (*sstable.Reader, error) {
		f, err := fs.Open(filepath.Join("db", fmt.Sprintf("%06d.sst", m.FileNum)))
		if err != nil {
			return nil, err
		}
		return sstable.Open(f)
	}
	r, err := Recover(fs, 256, metas, "db/hashidx.ckpt", false, open)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := r.Get([]byte("new")); !ok {
		t.Fatal("rebuild after stale checkpoint failed")
	}
	if _, ok, _ := r.Get([]byte("old")); ok {
		t.Fatal("stale checkpoint leaked entries")
	}
}

func TestResetAndReplaceAll(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("db")
	s := New(256)
	tab, keys := buildTable(t, fs, 1, map[string]string{"a": "1", "b": "2"}, 1)
	s.AddTable(tab, keys, nil)
	s.Reset()
	if s.NumTables() != 0 || s.SizeBytes() != 0 || s.Index().Count() != 0 {
		t.Fatal("Reset left state behind")
	}
	if _, ok, _ := s.Get([]byte("a")); ok {
		t.Fatal("Get after Reset")
	}

	merged, _ := buildTable(t, fs, 2, map[string]string{"a": "1", "b": "2", "c": "3"}, 10)
	if err := s.ReplaceAll(merged); err != nil {
		t.Fatal(err)
	}
	if s.NumTables() != 1 {
		t.Fatalf("NumTables=%d", s.NumTables())
	}
	for _, k := range []string{"a", "b", "c"} {
		if _, ok, _ := s.Get([]byte(k)); !ok {
			t.Fatalf("%s missing after ReplaceAll", k)
		}
	}
}

// TestViewTracksTableSet verifies the sorted view stays in lockstep with
// AddTable / ReplaceTables / Reset, and that DisableView keeps it off.
func TestViewTracksTableSet(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("db")
	s := New(256)

	t1, k1 := buildTable(t, fs, 1, map[string]string{"a": "a1", "b": "b1"}, 1)
	t2, k2 := buildTable(t, fs, 2, map[string]string{"b": "b2", "c": "c2"}, 10)
	if err := s.AddTable(t1, k1, nil); err != nil {
		t.Fatal(err)
	}
	v1 := s.ScanView()
	if v1 == nil || v1.Len() != 2 || v1.NumTables() != 1 {
		t.Fatalf("after 1 table: %+v", v1)
	}
	if err := s.AddTable(t2, k2, nil); err != nil {
		t.Fatal(err)
	}
	v2 := s.ScanView()
	if v2.Len() != 4 || v2.NumTables() != 2 {
		t.Fatalf("after 2 tables: Len=%d NumTables=%d", v2.Len(), v2.NumTables())
	}
	if v2.Version() <= v1.Version() {
		t.Fatal("view version did not advance")
	}
	// The pinned old view is untouched by the new flush.
	if v1.Len() != 2 {
		t.Fatalf("pinned view mutated: Len=%d", v1.Len())
	}
	// Iterate: 4 entries, "b" twice with seq 10 (newest) before seq 2.
	it := v2.NewIterator()
	var got []string
	for ok := it.First(); ok; ok = it.Next() {
		rec := it.Record()
		got = append(got, fmt.Sprintf("%s/%d/%s", rec.Key, rec.Seq, rec.Value))
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	want := []string{"a/1/a1", "b/10/b2", "b/2/b1", "c/11/c2"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("view order:\n got %v\nwant %v", got, want)
	}
	if _, _, builds, rebuilds := s.ViewStats(); builds != 2 || rebuilds != 0 {
		t.Fatalf("builds=%d rebuilds=%d", builds, rebuilds)
	}

	merged, _ := buildTable(t, fs, 3, map[string]string{"a": "a1", "b": "b2", "c": "c2"}, 20)
	if err := s.ReplaceAll(merged); err != nil {
		t.Fatal(err)
	}
	v3 := s.ScanView()
	if v3.Len() != 3 || v3.NumTables() != 1 {
		t.Fatalf("after ReplaceAll: Len=%d NumTables=%d", v3.Len(), v3.NumTables())
	}
	if _, _, _, rebuilds := s.ViewStats(); rebuilds != 1 {
		t.Fatal("ReplaceAll should count one rebuild")
	}

	s.Reset()
	if v := s.ScanView(); v.Len() != 0 || v.NumTables() != 0 {
		t.Fatal("Reset left view entries")
	}

	// Disabled store never materializes a view.
	d := New(256)
	d.DisableView = true
	t4, k4 := buildTable(t, fs, 4, map[string]string{"x": "1"}, 30)
	if err := d.AddTable(t4, k4, nil); err != nil {
		t.Fatal(err)
	}
	if d.ScanView() != nil {
		t.Fatal("DisableView store returned a view")
	}
	if e, b, builds, rebuilds := d.ViewStats(); e != 0 || b != 0 || builds != 0 || rebuilds != 0 {
		t.Fatal("DisableView store reported view stats")
	}
}

// TestViewLazyRebuildAfterRecover verifies recovery defers view work: the
// recovered store starts with a stale view, the first ScanView rebuilds it
// over all tables (including any flushed after recovery while stale), and
// subsequent mutations go back to incremental maintenance.
func TestViewLazyRebuildAfterRecover(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("db")
	s := New(256)
	var metas []manifest.TableMeta
	for i := 0; i < 3; i++ {
		tab, keys := buildTable(t, fs, uint64(i+1),
			map[string]string{fmt.Sprintf("k%d", i): fmt.Sprintf("v%d", i)}, uint64(i*10+1))
		s.AddTable(tab, keys, nil)
		metas = append(metas, tab.Meta)
	}
	open := func(m manifest.TableMeta) (*sstable.Reader, error) {
		f, err := fs.Open(filepath.Join("db", fmt.Sprintf("%06d.sst", m.FileNum)))
		if err != nil {
			return nil, err
		}
		return sstable.Open(f)
	}
	r, err := Recover(fs, 256, metas, "", false, open)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, builds, rebuilds := r.ViewStats(); builds != 0 || rebuilds != 0 {
		t.Fatalf("recovery did eager view work: builds=%d rebuilds=%d", builds, rebuilds)
	}
	// A flush while stale must not corrupt the (unbuilt) view.
	tab4, keys4 := buildTable(t, fs, 4, map[string]string{"k3": "v3"}, 100)
	if err := r.AddTable(tab4, keys4, nil); err != nil {
		t.Fatal(err)
	}
	v := r.ScanView()
	if v == nil {
		t.Fatal("ScanView returned nil on enabled store")
	}
	if v.Len() != 4 || v.NumTables() != 4 {
		t.Fatalf("lazy rebuild: Len=%d NumTables=%d, want 4/4", v.Len(), v.NumTables())
	}
	if _, _, _, rebuilds := r.ViewStats(); rebuilds != 1 {
		t.Fatal("lazy rebuild not counted")
	}
	// Second ScanView reuses the rebuilt view.
	if v2 := r.ScanView(); v2.Version() != v.Version() {
		t.Fatal("repeated ScanView rebuilt again")
	}
	// Post-rebuild flushes are incremental again.
	tab5, keys5 := buildTable(t, fs, 5, map[string]string{"k4": "v4"}, 200)
	if err := r.AddTable(tab5, keys5, nil); err != nil {
		t.Fatal(err)
	}
	if v3 := r.ScanView(); v3.Len() != 5 {
		t.Fatalf("post-rebuild AddTable: Len=%d", v3.Len())
	}
	if _, _, builds, _ := r.ViewStats(); builds != 1 {
		t.Fatalf("post-rebuild AddTable not incremental: builds=%d", builds)
	}
}

// TestQuickModel: random overwrite workloads across many small tables agree
// with a model map.
func TestQuickModel(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		fs := vfs.NewMem()
		fs.MkdirAll("db")
		s := New(512)
		model := map[string]string{}
		seq := uint64(1)
		for flush := 0; flush < 8; flush++ {
			batch := map[string]string{}
			for i := 0; i < rnd.Intn(40)+1; i++ {
				k := fmt.Sprintf("key-%03d", rnd.Intn(60))
				v := fmt.Sprintf("val-%d-%d", flush, rnd.Int63())
				batch[k] = v
				model[k] = v
			}
			tab, keys := buildTableQ(fs, uint64(flush+1), batch, seq)
			seq += uint64(len(batch))
			if err := s.AddTable(tab, keys, nil); err != nil {
				return false
			}
		}
		for k, v := range model {
			rec, ok, err := s.Get([]byte(k))
			if err != nil || !ok || string(rec.Value) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// buildTableQ is buildTable without *testing.T for quick properties.
func buildTableQ(fs vfs.FS, fileNum uint64, kvs map[string]string, seqBase uint64) (*Table, [][]byte) {
	keys := make([]string, 0, len(kvs))
	for k := range kvs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	name := filepath.Join("db", fmt.Sprintf("%06d.sst", fileNum))
	f, _ := fs.Create(name)
	b := sstable.NewBuilder(f, sstable.BuilderOptions{})
	var rawKeys [][]byte
	for i, k := range keys {
		b.Add(record.Record{Key: []byte(k), Seq: seqBase + uint64(i), Kind: record.KindSet, Value: []byte(kvs[k])})
		rawKeys = append(rawKeys, []byte(k))
	}
	props, _ := b.Finish()
	f.Close()
	rf, _ := fs.Open(name)
	rdr, _ := sstable.Open(rf)
	meta := manifest.TableMeta{
		FileNum: fileNum, Size: props.Size, Count: props.Count,
		Smallest: props.Smallest, Largest: props.Largest,
		MinSeq: props.MinSeq, MaxSeq: props.MaxSeq,
	}
	return &Table{Meta: meta, Reader: rdr}, rawKeys
}
