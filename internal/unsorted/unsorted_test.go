package unsorted

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"unikv/internal/manifest"
	"unikv/internal/record"
	"unikv/internal/sstable"
	"unikv/internal/vfs"
)

// buildTable writes kvs (map key→value) as a sorted table and returns it.
func buildTable(t *testing.T, fs vfs.FS, fileNum uint64, kvs map[string]string, seqBase uint64) (*Table, [][]byte) {
	t.Helper()
	keys := make([]string, 0, len(kvs))
	for k := range kvs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	name := filepath.Join("db", fmt.Sprintf("%06d.sst", fileNum))
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	b := sstable.NewBuilder(f, sstable.BuilderOptions{})
	var rawKeys [][]byte
	for i, k := range keys {
		b.Add(record.Record{Key: []byte(k), Seq: seqBase + uint64(i), Kind: record.KindSet, Value: []byte(kvs[k])})
		rawKeys = append(rawKeys, []byte(k))
	}
	props, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	rf, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	rdr, err := sstable.Open(rf)
	if err != nil {
		t.Fatal(err)
	}
	meta := manifest.TableMeta{
		FileNum: fileNum, Size: props.Size, Count: props.Count,
		Smallest: props.Smallest, Largest: props.Largest,
		MinSeq: props.MinSeq, MaxSeq: props.MaxSeq,
	}
	return &Table{Meta: meta, Reader: rdr}, rawKeys
}

func TestGetAcrossTables(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("db")
	s := New(1024)

	t1, k1 := buildTable(t, fs, 1, map[string]string{"a": "a1", "b": "b1", "c": "c1"}, 1)
	t2, k2 := buildTable(t, fs, 2, map[string]string{"b": "b2", "d": "d2"}, 10)
	if err := s.AddTable(t1, k1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTable(t2, k2); err != nil {
		t.Fatal(err)
	}
	if s.NumTables() != 2 {
		t.Fatalf("NumTables=%d", s.NumTables())
	}
	cases := []struct{ k, v string }{
		{"a", "a1"}, {"b", "b2"}, {"c", "c1"}, {"d", "d2"},
	}
	for _, c := range cases {
		rec, ok, err := s.Get([]byte(c.k))
		if err != nil || !ok || string(rec.Value) != c.v {
			t.Fatalf("Get(%q) = %q, %v, %v; want %q", c.k, rec.Value, ok, err, c.v)
		}
	}
	if _, ok, _ := s.Get([]byte("zzz")); ok {
		t.Fatal("phantom key")
	}
	if s.SizeBytes() != t1.Meta.Size+t2.Meta.Size {
		t.Fatalf("SizeBytes=%d", s.SizeBytes())
	}
}

func TestNewestTableWins(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("db")
	s := New(256)
	// Same key overwritten across 10 flushes.
	for i := 0; i < 10; i++ {
		tab, keys := buildTable(t, fs, uint64(i+1),
			map[string]string{"hot": fmt.Sprintf("v%d", i)}, uint64(i*10+1))
		if err := s.AddTable(tab, keys); err != nil {
			t.Fatal(err)
		}
	}
	rec, ok, err := s.Get([]byte("hot"))
	if err != nil || !ok || string(rec.Value) != "v9" {
		t.Fatalf("got %q ok=%v err=%v", rec.Value, ok, err)
	}
}

func TestRecoveryNoCheckpoint(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("db")
	s := New(256)
	var metas []manifest.TableMeta
	for i := 0; i < 3; i++ {
		tab, keys := buildTable(t, fs, uint64(i+1),
			map[string]string{fmt.Sprintf("k%d", i): fmt.Sprintf("v%d", i), "shared": fmt.Sprintf("s%d", i)}, uint64(i*10+1))
		s.AddTable(tab, keys)
		metas = append(metas, tab.Meta)
	}

	open := func(m manifest.TableMeta) (*sstable.Reader, error) {
		f, err := fs.Open(filepath.Join("db", fmt.Sprintf("%06d.sst", m.FileNum)))
		if err != nil {
			return nil, err
		}
		return sstable.Open(f)
	}
	r, err := Recover(fs, 256, metas, "", open)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok, err := r.Get([]byte("shared"))
	if err != nil || !ok || string(rec.Value) != "s2" {
		t.Fatalf("recovered Get = %q %v %v", rec.Value, ok, err)
	}
	for i := 0; i < 3; i++ {
		if _, ok, _ := r.Get([]byte(fmt.Sprintf("k%d", i))); !ok {
			t.Fatalf("k%d lost in recovery", i)
		}
	}
}

func TestRecoveryWithCheckpoint(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("db")
	s := New(256)
	var metas []manifest.TableMeta
	for i := 0; i < 2; i++ {
		tab, keys := buildTable(t, fs, uint64(i+1),
			map[string]string{fmt.Sprintf("k%d", i): "v"}, uint64(i*10+1))
		s.AddTable(tab, keys)
		metas = append(metas, tab.Meta)
	}
	if err := s.Checkpoint(fs, "db/hashidx.ckpt"); err != nil {
		t.Fatal(err)
	}
	// One more table flushed after the checkpoint.
	tab3, keys3 := buildTable(t, fs, 3, map[string]string{"k2": "v", "k0": "newer"}, 100)
	s.AddTable(tab3, keys3)
	metas = append(metas, tab3.Meta)

	open := func(m manifest.TableMeta) (*sstable.Reader, error) {
		f, err := fs.Open(filepath.Join("db", fmt.Sprintf("%06d.sst", m.FileNum)))
		if err != nil {
			return nil, err
		}
		return sstable.Open(f)
	}
	r, err := Recover(fs, 256, metas, "db/hashidx.ckpt", open)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"k0", "k1", "k2"} {
		if _, ok, _ := r.Get([]byte(k)); !ok {
			t.Fatalf("%s lost", k)
		}
	}
	rec, _, _ := r.Get([]byte("k0"))
	if string(rec.Value) != "newer" {
		t.Fatalf("k0 = %q, checkpoint replay order broken", rec.Value)
	}
}

func TestRecoveryStaleCheckpointIgnored(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("db")
	s := New(256)
	tab, keys := buildTable(t, fs, 1, map[string]string{"old": "x"}, 1)
	s.AddTable(tab, keys)
	s.Checkpoint(fs, "db/hashidx.ckpt")

	// The store drained and different tables exist now: checkpoint's table
	// list no longer matches.
	tab2, _ := buildTable(t, fs, 7, map[string]string{"new": "y"}, 50)
	metas := []manifest.TableMeta{tab2.Meta}
	open := func(m manifest.TableMeta) (*sstable.Reader, error) {
		f, err := fs.Open(filepath.Join("db", fmt.Sprintf("%06d.sst", m.FileNum)))
		if err != nil {
			return nil, err
		}
		return sstable.Open(f)
	}
	r, err := Recover(fs, 256, metas, "db/hashidx.ckpt", open)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := r.Get([]byte("new")); !ok {
		t.Fatal("rebuild after stale checkpoint failed")
	}
	if _, ok, _ := r.Get([]byte("old")); ok {
		t.Fatal("stale checkpoint leaked entries")
	}
}

func TestResetAndReplaceAll(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("db")
	s := New(256)
	tab, keys := buildTable(t, fs, 1, map[string]string{"a": "1", "b": "2"}, 1)
	s.AddTable(tab, keys)
	s.Reset()
	if s.NumTables() != 0 || s.SizeBytes() != 0 || s.Index().Count() != 0 {
		t.Fatal("Reset left state behind")
	}
	if _, ok, _ := s.Get([]byte("a")); ok {
		t.Fatal("Get after Reset")
	}

	merged, _ := buildTable(t, fs, 2, map[string]string{"a": "1", "b": "2", "c": "3"}, 10)
	if err := s.ReplaceAll(merged); err != nil {
		t.Fatal(err)
	}
	if s.NumTables() != 1 {
		t.Fatalf("NumTables=%d", s.NumTables())
	}
	for _, k := range []string{"a", "b", "c"} {
		if _, ok, _ := s.Get([]byte(k)); !ok {
			t.Fatalf("%s missing after ReplaceAll", k)
		}
	}
}

// TestQuickModel: random overwrite workloads across many small tables agree
// with a model map.
func TestQuickModel(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		fs := vfs.NewMem()
		fs.MkdirAll("db")
		s := New(512)
		model := map[string]string{}
		seq := uint64(1)
		for flush := 0; flush < 8; flush++ {
			batch := map[string]string{}
			for i := 0; i < rnd.Intn(40)+1; i++ {
				k := fmt.Sprintf("key-%03d", rnd.Intn(60))
				v := fmt.Sprintf("val-%d-%d", flush, rnd.Int63())
				batch[k] = v
				model[k] = v
			}
			tab, keys := buildTableQ(fs, uint64(flush+1), batch, seq)
			seq += uint64(len(batch))
			if err := s.AddTable(tab, keys); err != nil {
				return false
			}
		}
		for k, v := range model {
			rec, ok, err := s.Get([]byte(k))
			if err != nil || !ok || string(rec.Value) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// buildTableQ is buildTable without *testing.T for quick properties.
func buildTableQ(fs vfs.FS, fileNum uint64, kvs map[string]string, seqBase uint64) (*Table, [][]byte) {
	keys := make([]string, 0, len(kvs))
	for k := range kvs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	name := filepath.Join("db", fmt.Sprintf("%06d.sst", fileNum))
	f, _ := fs.Create(name)
	b := sstable.NewBuilder(f, sstable.BuilderOptions{})
	var rawKeys [][]byte
	for i, k := range keys {
		b.Add(record.Record{Key: []byte(k), Seq: seqBase + uint64(i), Kind: record.KindSet, Value: []byte(kvs[k])})
		rawKeys = append(rawKeys, []byte(k))
	}
	props, _ := b.Finish()
	f.Close()
	rf, _ := fs.Open(name)
	rdr, _ := sstable.Open(rf)
	meta := manifest.TableMeta{
		FileNum: fileNum, Size: props.Size, Count: props.Count,
		Smallest: props.Smallest, Largest: props.Largest,
		MinSeq: props.MinSeq, MaxSeq: props.MaxSeq,
	}
	return &Table{Meta: meta, Reader: rdr}, rawKeys
}
