// Package unsorted implements UniKV's UnsortedStore: the first disk tier of
// a partition, holding tables flushed straight from the memtable. Tables
// are internally sorted (they come from the skiplist) but their key ranges
// overlap each other, so point lookups are served by the in-memory
// two-level hash index rather than per-table search, and a scan must
// consult every table (until the size-based merge compacts them into one).
//
// A table's local ID for the hash index is its position in flush order;
// that keeps the <keyTag, SSTableID, pointer> entries at 8 bytes and makes
// the ID ↔ file mapping recoverable from the manifest's table list alone.
package unsorted

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"unikv/internal/codec"
	"unikv/internal/hashindex"
	"unikv/internal/manifest"
	"unikv/internal/record"
	"unikv/internal/sortedview"
	"unikv/internal/sstable"
	"unikv/internal/vfs"
)

// ErrBadCheckpoint reports an unusable store checkpoint.
var ErrBadCheckpoint = errors.New("unsorted: checkpoint does not match table set")

// Table is one flushed UnsortedStore table.
type Table struct {
	Meta   manifest.TableMeta
	Reader *sstable.Reader
}

// Store is the UnsortedStore of one partition. Callers (the partition)
// serialize mutations; reads are safe concurrently with each other.
type Store struct {
	tables []*Table
	index  *hashindex.Index
	size   int64

	// view is the cross-table sorted view (internal/sortedview). It is an
	// atomic pointer because one mutation path does not hold the partition
	// write lock: the lazy post-recovery rebuild runs under the partition
	// READ lock plus viewMu, concurrently with other scans loading the
	// pointer. All other swaps happen under the partition write lock like
	// the rest of the store's state.
	view atomic.Pointer[sortedview.View]
	// viewMu serializes the lazy rebuild (see ScanView). Lock order: it is
	// taken strictly after the owning partition's mu and is never held
	// across any other lock acquisition.
	viewMu sync.Mutex
	// viewStale is set by recovery instead of building the view eagerly:
	// rebuilding would read every table and erase the hash checkpoint's
	// recovery savings. While stale, AddTable skips view maintenance (the
	// rebuild walks the full table list anyway) and scans either trigger
	// the rebuild or fall back to per-table merging.
	viewStale atomic.Bool

	// viewBuilds counts incremental view extensions (one per AddTable);
	// viewRebuilds counts from-scratch reconstructions (ReplaceTables,
	// lazy post-recovery rebuilds) and drops (Reset).
	viewBuilds   atomic.Int64
	viewRebuilds atomic.Int64

	// DisableIndex turns off the hash index (the fig11 ablation): lookups
	// probe tables newest-first like a conventional L0, and AddTable skips
	// index maintenance. Set it before the first AddTable.
	DisableIndex bool
	// DisableView turns off the cross-table sorted view (Options.
	// SortedViewOff): scans fall back to a per-call k-way merge over the
	// tables. Set it before the first AddTable.
	DisableView bool
}

// New creates an empty store whose hash index has nBuckets buckets.
func New(nBuckets int) *Store {
	s := &Store{index: hashindex.New(nBuckets, hashindex.DefaultNumHash)}
	s.view.Store(sortedview.New())
	return s
}

// AddTable registers a freshly flushed table. keys carries the table's keys
// in any order and entries the table's sorted-view cursors in table order,
// when the caller already has them (the flush path collects both while
// writing the table); pass nil to have the store iterate the table once and
// derive what it needs (the recovery and table-replacement paths).
func (s *Store) AddTable(t *Table, keys [][]byte, entries []sortedview.Entry) error {
	id := len(s.tables)
	if id > 0xffff {
		return fmt.Errorf("unsorted: too many tables (%d)", id)
	}
	// One reader pass covers both the hash index and the view when either
	// is missing its input; no path iterates the table twice. A stale view
	// is left untouched: its eventual rebuild walks the full table list,
	// new tables included.
	maintainView := !s.DisableView && !s.viewStale.Load()
	insertIdx := !s.DisableIndex && keys == nil
	collectView := maintainView && entries == nil
	if insertIdx || collectView {
		it := t.Reader.NewIterator()
		var collected []sortedview.Entry
		if collectView {
			collected = make([]sortedview.Entry, 0, t.Reader.Count())
		}
		for ok := it.First(); ok; ok = it.Next() {
			rec := it.Record()
			if insertIdx {
				s.index.Insert(rec.Key, uint16(id))
			}
			if collectView {
				block, pos := it.Position()
				collected = append(collected, sortedview.Entry{
					Key:   append([]byte(nil), rec.Key...),
					Seq:   rec.Seq,
					Kind:  rec.Kind,
					Block: int32(block),
					Pos:   int32(pos),
				})
			}
		}
		if err := it.Err(); err != nil {
			return err
		}
		if collectView {
			entries = collected
		}
	}
	if !s.DisableIndex && keys != nil {
		for _, k := range keys {
			s.index.Insert(k, uint16(id))
		}
	}
	s.tables = append(s.tables, t)
	s.size += t.Meta.Size
	if maintainView {
		s.view.Store(s.view.Load().WithTable(t.Reader, entries))
		s.viewBuilds.Add(1)
	}
	return nil
}

// Get returns the newest record for key across all tables, using the hash
// index. Candidate tables are gathered from the index and probed in
// descending local-ID order — local IDs are assigned in flush order, so
// this is strictly newest-first even when a keyTag collision injects an
// alien entry into the probe sequence. keyTag false positives are resolved
// by the key comparison inside the table read.
func (s *Store) Get(key []byte) (record.Record, bool, error) {
	if s.DisableIndex {
		for i := len(s.tables) - 1; i >= 0; i-- {
			rec, hit, err := s.tables[i].Reader.Get(key)
			if err != nil {
				return record.Record{}, false, err
			}
			if hit {
				return rec, true, nil
			}
		}
		return record.Record{}, false, nil
	}
	var cand [8]uint16
	n := 0
	overflowed := false
	s.index.Lookup(key, func(tid uint16) bool {
		if int(tid) >= len(s.tables) {
			return false // stale entry beyond current tables: skip
		}
		for i := 0; i < n; i++ {
			if cand[i] == tid {
				return false
			}
		}
		if n == len(cand) {
			overflowed = true
			return true
		}
		cand[n] = tid
		n++
		return false
	})
	if overflowed {
		// Implausibly many tag collisions: fall back to scanning tables
		// newest-first directly.
		for i := len(s.tables) - 1; i >= 0; i-- {
			rec, hit, err := s.tables[i].Reader.Get(key)
			if err != nil {
				return record.Record{}, false, err
			}
			if hit {
				return rec, true, nil
			}
		}
		return record.Record{}, false, nil
	}
	// Sort the (tiny) candidate set descending by local ID.
	ids := cand[:n]
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] > ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for _, tid := range ids {
		rec, hit, err := s.tables[tid].Reader.Get(key)
		if err != nil {
			return record.Record{}, false, err
		}
		if hit && codec.Compare(rec.Key, key) == 0 {
			return rec, true, nil
		}
	}
	return record.Record{}, false, nil
}

// Tables returns the tables in flush order (oldest first).
func (s *Store) Tables() []*Table { return s.tables }

// NumTables returns the number of tables.
func (s *Store) NumTables() int { return len(s.tables) }

// SizeBytes returns the total table bytes.
func (s *Store) SizeBytes() int64 { return s.size }

// Index exposes the hash index (stats, checkpointing).
func (s *Store) Index() *hashindex.Index { return s.index }

// ScanView returns the current cross-table sorted view, or nil when the
// view is disabled or cannot be produced. The returned view is immutable:
// a scan that loads it under the partition read lock can iterate it
// safely while later mutations swap in successors.
//
// After recovery the view is stale (never built — see MarkViewStale); the
// first ScanView rebuilds it here, under viewMu so concurrent scans do
// the work once. Callers hold the partition read lock, which keeps the
// table set frozen during the rebuild. A rebuild error degrades to the
// per-table merge path by returning nil; the next scan retries.
func (s *Store) ScanView() *sortedview.View {
	if s.DisableView {
		return nil
	}
	if s.viewStale.Load() {
		if !s.rebuildViewLazy() {
			return nil
		}
	}
	return s.view.Load()
}

// rebuildViewLazy constructs the view from the current table set and
// clears staleness. Requires the partition read lock (table-set
// stability); viewMu makes concurrent callers collapse into one rebuild.
func (s *Store) rebuildViewLazy() bool {
	s.viewMu.Lock()
	defer s.viewMu.Unlock()
	if !s.viewStale.Load() {
		return true // another scan already rebuilt it
	}
	v := sortedview.New()
	for _, t := range s.tables {
		entries, err := sortedview.Collect(t.Reader)
		if err != nil {
			return false
		}
		v = v.WithTable(t.Reader, entries)
	}
	s.view.Store(v)
	s.viewRebuilds.Add(1)
	s.viewStale.Store(false)
	return true
}

// MarkViewStale defers view construction to the first scan. Recovery uses
// it so reopening a store does not read every table just to rebuild the
// memory-only view (which would void the hash checkpoint's savings).
func (s *Store) MarkViewStale() {
	if !s.DisableView {
		s.viewStale.Store(true)
	}
}

// ViewStats reports the view's entry count, approximate memory, and the
// incremental-build / rebuild counters (zeros when disabled).
func (s *Store) ViewStats() (entries int, bytes, builds, rebuilds int64) {
	if s.DisableView {
		return 0, 0, 0, 0
	}
	v := s.view.Load()
	return v.Len(), v.MemoryBytes(), s.viewBuilds.Load(), s.viewRebuilds.Load()
}

// Reset drops all tables and index entries (after the store drains into
// the SortedStore). The caller closes readers and deletes files.
func (s *Store) Reset() {
	s.tables = nil
	s.size = 0
	s.index.Reset()
	if !s.DisableView {
		s.view.Store(sortedview.New())
		s.viewStale.Store(false) // empty is exact, stale or not
		s.viewRebuilds.Add(1)
	}
}

// ReplaceAll swaps the table set for the single merged table produced by
// the size-based merge (scan optimization) and rebuilds the index over it.
func (s *Store) ReplaceAll(t *Table) error {
	return s.ReplaceTables([]*Table{t})
}

// ReplaceTables swaps the full table set, rebuilding the index and the
// sorted view (local IDs and view table IDs are positional, so survivors
// of a partial replacement need fresh IDs). Background merges use this to
// drop the merged prefix while keeping tables flushed during the merge
// build. The single reader pass per table inside AddTable feeds both
// structures.
func (s *Store) ReplaceTables(tables []*Table) error {
	s.tables = nil
	s.size = 0
	s.index.Reset()
	if !s.DisableView {
		// A full replacement makes any staleness moot: start exact and let
		// AddTable extend incrementally below.
		s.view.Store(sortedview.New())
		s.viewStale.Store(false)
		s.viewRebuilds.Add(1)
	}
	for _, t := range tables {
		if err := s.AddTable(t, nil, nil); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Checkpointing (crash consistency for the hash index).
//
// The checkpoint embeds the marshaled hash index plus the list of table
// file numbers it covers, in flush order. At recovery, if the covered list
// is a prefix of the manifest's table list, the index is loaded and only
// the uncovered tables are replayed; otherwise the whole index is rebuilt.

const ckptMagic uint64 = 0x756e696b76756e73 // "unikvuns"

// Checkpoint serializes the index and its covered-table list to name.
func (s *Store) Checkpoint(fs vfs.FS, name string) error {
	var buf []byte
	buf = codec.PutUint64(buf, ckptMagic)
	buf = codec.PutUvarint(buf, uint64(len(s.tables)))
	for _, t := range s.tables {
		buf = codec.PutUvarint(buf, t.Meta.FileNum)
	}
	buf = codec.PutBytes(buf, s.index.Marshal())
	return fs.WriteFile(name, buf)
}

// Recover rebuilds the store from the manifest's table list, using the
// checkpoint at ckptName when it matches. openTable maps a table meta to an
// opened reader. disableView skips sorted-view support entirely; otherwise
// the memory-only view is marked stale and rebuilt lazily on the first
// scan, so recovery reads no table bytes beyond what the hash index needs.
func Recover(
	fs vfs.FS,
	nBuckets int,
	metas []manifest.TableMeta,
	ckptName string,
	disableView bool,
	openTable func(manifest.TableMeta) (*sstable.Reader, error),
) (*Store, error) {
	s := New(nBuckets)
	s.DisableView = disableView
	if len(metas) > 0 {
		s.MarkViewStale()
	}
	covered := 0
	if ckptName != "" && fs.Exists(ckptName) {
		idx, n, err := loadCheckpoint(fs, ckptName, metas)
		if err == nil {
			s.index = idx
			covered = n
		}
		// A mismatching or corrupt checkpoint is not fatal: fall back to a
		// full rebuild (err == nil only on a usable checkpoint).
	}
	for i, meta := range metas {
		rdr, err := openTable(meta)
		if err != nil {
			return nil, err
		}
		t := &Table{Meta: meta, Reader: rdr}
		if i < covered {
			// Index already has this table's entries; the stale view picks
			// the table up at its lazy rebuild.
			s.tables = append(s.tables, t)
			s.size += meta.Size
			continue
		}
		if err := s.AddTable(t, nil, nil); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// loadCheckpoint parses a checkpoint and validates it against metas,
// returning the index and the number of covered tables.
func loadCheckpoint(fs vfs.FS, name string, metas []manifest.TableMeta) (*hashindex.Index, int, error) {
	data, err := fs.ReadFile(name)
	if err != nil {
		return nil, 0, err
	}
	var magic uint64
	if magic, data, err = codec.Uint64(data); err != nil || magic != ckptMagic {
		return nil, 0, ErrBadCheckpoint
	}
	var n uint64
	if n, data, err = codec.Uvarint(data); err != nil {
		return nil, 0, ErrBadCheckpoint
	}
	if int(n) > len(metas) {
		return nil, 0, ErrBadCheckpoint
	}
	for i := 0; i < int(n); i++ {
		var fn uint64
		if fn, data, err = codec.Uvarint(data); err != nil {
			return nil, 0, ErrBadCheckpoint
		}
		if metas[i].FileNum != fn {
			return nil, 0, ErrBadCheckpoint
		}
	}
	idxBytes, _, err := codec.Bytes(data)
	if err != nil {
		return nil, 0, ErrBadCheckpoint
	}
	idx, err := hashindex.Unmarshal(idxBytes)
	if err != nil {
		return nil, 0, err
	}
	return idx, int(n), nil
}
