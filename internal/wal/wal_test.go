package wal

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"unikv/internal/vfs"
)

func roundTrip(t *testing.T, records [][]byte) [][]byte {
	t.Helper()
	fs := vfs.NewMem()
	f, err := fs.Create("log")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f)
	for _, rec := range records {
		if err := w.AddRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rf, err := fs.Open("log")
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	r := NewReader(rf)
	var got [][]byte
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rec)
	}
	return got
}

func TestEmptyLog(t *testing.T) {
	got := roundTrip(t, nil)
	if len(got) != 0 {
		t.Fatalf("got %d records from empty log", len(got))
	}
}

func TestSmallRecords(t *testing.T) {
	in := [][]byte{[]byte("one"), []byte(""), []byte("three"), bytes.Repeat([]byte("x"), 100)}
	got := roundTrip(t, in)
	if len(got) != len(in) {
		t.Fatalf("got %d records want %d", len(got), len(in))
	}
	for i := range in {
		if !bytes.Equal(got[i], in[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestLargeRecordSpansBlocks(t *testing.T) {
	big := bytes.Repeat([]byte("abcdefgh"), 3*BlockSize/8) // 3 blocks worth
	in := [][]byte{[]byte("pre"), big, []byte("post")}
	got := roundTrip(t, in)
	if len(got) != 3 {
		t.Fatalf("got %d records", len(got))
	}
	if !bytes.Equal(got[1], big) {
		t.Fatal("large record mangled")
	}
}

func TestBlockBoundaryPadding(t *testing.T) {
	// A record sized to leave < headerLen bytes in the block forces padding.
	rec1 := bytes.Repeat([]byte("a"), BlockSize-headerLen-headerLen-3)
	in := [][]byte{rec1, []byte("tail-record")}
	got := roundTrip(t, in)
	if len(got) != 2 || !bytes.Equal(got[1], []byte("tail-record")) {
		t.Fatalf("padding handling broken: %d records", len(got))
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rnd := rand.New(rand.NewSource(seed))
		var in [][]byte
		for i := 0; i < int(n%16)+1; i++ {
			rec := make([]byte, rnd.Intn(2*BlockSize))
			rnd.Read(rec)
			in = append(in, rec)
		}
		fs := vfs.NewMem()
		wf, _ := fs.Create("log")
		w := NewWriter(wf)
		for _, rec := range in {
			if err := w.AddRecord(rec); err != nil {
				return false
			}
		}
		w.Close()
		rf, _ := fs.Open("log")
		defer rf.Close()
		r := NewReader(rf)
		for i := 0; ; i++ {
			rec, err := r.Next()
			if err == io.EOF {
				return i == len(in)
			}
			if err != nil || i >= len(in) || !bytes.Equal(rec, in[i]) {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestTornTail verifies that truncating the log mid-record recovers every
// record before the tear and drops the torn one.
func TestTornTail(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("log")
	w := NewWriter(f)
	var in [][]byte
	for i := 0; i < 20; i++ {
		rec := []byte(fmt.Sprintf("record-%02d-%s", i, bytes.Repeat([]byte("p"), 50)))
		in = append(in, rec)
		w.AddRecord(rec)
	}
	w.Close()

	full, _ := fs.ReadFile("log")
	for _, cut := range []int{len(full) - 1, len(full) - 10, len(full) / 2, headerLen + 3} {
		fs2 := vfs.NewMem()
		fs2.WriteFile("log", full[:cut])
		rf, _ := fs2.Open("log")
		r := NewReader(rf)
		n := 0
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rec, in[n]) {
				t.Fatalf("cut=%d: record %d corrupted", cut, n)
			}
			n++
		}
		rf.Close()
		if n > len(in) {
			t.Fatalf("cut=%d: phantom records", cut)
		}
	}
}

// TestCorruptMiddle flips a byte mid-log; recovery must stop at the flip,
// not return garbage.
func TestCorruptMiddle(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("log")
	w := NewWriter(f)
	for i := 0; i < 10; i++ {
		w.AddRecord([]byte(fmt.Sprintf("rec-%d", i)))
	}
	w.Close()
	data, _ := fs.ReadFile("log")
	data[40] ^= 0xff
	fs2 := vfs.NewMem()
	fs2.WriteFile("log", data)
	rf, _ := fs2.Open("log")
	defer rf.Close()
	r := NewReader(rf)
	n := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("rec-%d", n)
		if string(rec) != want {
			t.Fatalf("record %d = %q want %q", n, rec, want)
		}
		n++
	}
	if n >= 10 {
		t.Fatal("corruption not detected")
	}
}

func TestWriterClosed(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("log")
	w := NewWriter(f)
	w.Close()
	if err := w.AddRecord([]byte("x")); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := w.Sync(); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestWriterSize(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("log")
	w := NewWriter(f)
	w.AddRecord(make([]byte, 100))
	if w.Size() != 100+headerLen {
		t.Fatalf("Size=%d", w.Size())
	}
}
