package wal

import (
	"io"
	"testing"

	"unikv/internal/vfs"
)

// FuzzReader: arbitrary log bytes must never panic or loop; every record
// recovered from a real log prefix must match what was written.
func FuzzReader(f *testing.F) {
	// Seed with a real two-record log.
	fs := vfs.NewMem()
	w0, _ := fs.Create("seed")
	w := NewWriter(w0)
	w.AddRecord([]byte("hello"))
	w.AddRecord(make([]byte, BlockSize*2))
	w.Close()
	seed, _ := fs.ReadFile("seed")
	f.Add(seed)
	f.Add([]byte{})
	f.Add(make([]byte, BlockSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		fs := vfs.NewMem()
		fs.WriteFile("log", data)
		fh, _ := fs.Open("log")
		defer fh.Close()
		r := NewReader(fh)
		total := 0
		for {
			rec, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			total += len(rec)
			if total > 16*len(data)+1024 {
				t.Fatalf("reader produced more data than the log holds")
			}
		}
	})
}
