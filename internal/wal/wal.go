// Package wal implements the write-ahead log that protects memtable
// contents (and, reused verbatim, the MANIFEST metadata log). The format is
// LevelDB's: the file is a sequence of 32 KiB blocks; a logical record is
// split into fragments, each framed as
//
//	masked CRC-32C (4B) | length (2B LE) | type (1B) | payload
//
// where type is full / first / middle / last. Torn tails (a crash mid-write)
// decode as corruption and recovery stops at the last complete record.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"unikv/internal/codec"
	"unikv/internal/vfs"
)

const (
	// BlockSize is the physical framing unit.
	BlockSize = 32 * 1024
	headerLen = 7
)

const (
	typeFull   = 1
	typeFirst  = 2
	typeMiddle = 3
	typeLast   = 4
)

// ErrClosed is returned by operations on a closed Writer.
var ErrClosed = errors.New("wal: closed")

// Writer appends logical records to a log file.
type Writer struct {
	f           vfs.File
	blockOffset int // bytes used in the current block
	buf         []byte
	closed      bool
	written     int64
}

// NewWriter creates a log writer over f, assuming f is empty or that the
// caller wants to continue at a block boundary (we always start fresh files).
func NewWriter(f vfs.File) *Writer {
	return &Writer{f: f, buf: make([]byte, 0, BlockSize)}
}

// AddRecord appends one logical record.
func (w *Writer) AddRecord(rec []byte) error {
	if w.closed {
		return ErrClosed
	}
	first := true
	for {
		leftover := BlockSize - w.blockOffset
		if leftover < headerLen {
			// Pad the tail of the block with zeros; readers skip it.
			if leftover > 0 {
				if _, err := w.f.Write(make([]byte, leftover)); err != nil {
					return err
				}
				w.written += int64(leftover)
			}
			w.blockOffset = 0
			leftover = BlockSize
		}
		avail := leftover - headerLen
		frag := rec
		if len(frag) > avail {
			frag = rec[:avail]
		}
		rec = rec[len(frag):]

		var typ byte
		switch {
		case first && len(rec) == 0:
			typ = typeFull
		case first:
			typ = typeFirst
		case len(rec) == 0:
			typ = typeLast
		default:
			typ = typeMiddle
		}

		w.buf = w.buf[:0]
		var hdr [headerLen]byte
		crc := codec.MaskChecksum(codec.Checksum(append([]byte{typ}, frag...)))
		binary.LittleEndian.PutUint32(hdr[0:4], crc)
		binary.LittleEndian.PutUint16(hdr[4:6], uint16(len(frag)))
		hdr[6] = typ
		w.buf = append(w.buf, hdr[:]...)
		w.buf = append(w.buf, frag...)
		if _, err := w.f.Write(w.buf); err != nil {
			return err
		}
		w.written += int64(len(w.buf))
		w.blockOffset += len(w.buf)

		first = false
		if len(rec) == 0 {
			return nil
		}
	}
}

// Sync flushes the log to stable storage.
func (w *Writer) Sync() error {
	if w.closed {
		return ErrClosed
	}
	return w.f.Sync()
}

// Size returns the bytes written so far.
func (w *Writer) Size() int64 { return w.written }

// Close closes the underlying file (without a final sync; call Sync first
// if durability of the tail matters).
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	return w.f.Close()
}

// Reader replays logical records from a log file. Corruption (torn tail,
// bad CRC) terminates iteration without error: everything before the
// corruption is returned, matching recovery semantics.
type Reader struct {
	f         vfs.File
	off       int64
	block     [BlockSize]byte
	blockLen  int
	blockPos  int
	rec       []byte
	badRecord bool
}

// NewReader returns a reader positioned at the start of f.
func NewReader(f vfs.File) *Reader {
	return &Reader{f: f}
}

// nextFragment returns the next fragment (type, payload); io.EOF at end.
func (r *Reader) nextFragment() (byte, []byte, error) {
	for {
		if r.blockPos+headerLen > r.blockLen {
			// Load the next block.
			n, err := r.f.ReadAt(r.block[:], r.off)
			if n == 0 {
				if err == io.EOF || err == nil {
					return 0, nil, io.EOF
				}
				return 0, nil, err
			}
			r.off += int64(n)
			r.blockLen = n
			r.blockPos = 0
			continue
		}
		hdr := r.block[r.blockPos : r.blockPos+headerLen]
		length := int(binary.LittleEndian.Uint16(hdr[4:6]))
		typ := hdr[6]
		if typ == 0 && length == 0 {
			// Zero padding at block tail.
			r.blockPos = r.blockLen
			continue
		}
		if r.blockPos+headerLen+length > r.blockLen {
			// Torn fragment.
			return 0, nil, errTorn
		}
		payload := r.block[r.blockPos+headerLen : r.blockPos+headerLen+length]
		want := codec.UnmaskChecksum(binary.LittleEndian.Uint32(hdr[0:4]))
		got := codec.Checksum(append([]byte{typ}, payload...))
		if want != got {
			return 0, nil, errTorn
		}
		r.blockPos += headerLen + length
		return typ, payload, nil
	}
}

var errTorn = fmt.Errorf("wal: torn record")

// Next returns the next logical record, or io.EOF when the log is
// exhausted (including the everything-after-corruption case).
func (r *Reader) Next() ([]byte, error) {
	if r.badRecord {
		return nil, io.EOF
	}
	// Each returned record owns its buffer: callers retain records across
	// Next calls during recovery.
	r.rec = nil
	inRecord := false
	for {
		typ, payload, err := r.nextFragment()
		if err == errTorn {
			r.badRecord = true
			return nil, io.EOF
		}
		if err != nil {
			if err == io.EOF && inRecord {
				// Truncated multi-fragment record: drop it.
				return nil, io.EOF
			}
			return nil, err
		}
		switch typ {
		case typeFull:
			if inRecord {
				r.badRecord = true
				return nil, io.EOF
			}
			return append(r.rec, payload...), nil
		case typeFirst:
			if inRecord {
				r.badRecord = true
				return nil, io.EOF
			}
			inRecord = true
			r.rec = append(r.rec, payload...)
		case typeMiddle:
			if !inRecord {
				r.badRecord = true
				return nil, io.EOF
			}
			r.rec = append(r.rec, payload...)
		case typeLast:
			if !inRecord {
				r.badRecord = true
				return nil, io.EOF
			}
			return append(r.rec, payload...), nil
		default:
			r.badRecord = true
			return nil, io.EOF
		}
	}
}
