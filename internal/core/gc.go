package core

import (
	"unikv/internal/manifest"
	"unikv/internal/record"
)

// maybeGCLocked runs value-log GC when the partition's dead bytes exceed
// GCRatio of its referenced log bytes (the paper's greedy policy: GC the
// partition with the most garbage; with inline scheduling each partition
// checks itself at its merge points). Requires p.mu held for writing.
func (p *partition) maybeGCLocked() error {
	if p.db.opts.DisableKVSeparation {
		return nil
	}
	refBytes := p.logBytesLocked()
	if refBytes == 0 || float64(p.garbageBytes.Load()) < p.db.opts.GCRatio*float64(refBytes) {
		return nil
	}
	return p.gcTables(true)
}

// backgroundGC is the GC job: it re-checks the trigger, then runs the
// value rewrite without the partition lock (the SortedStore and log set
// are stable under maintMu; concurrent reads resolve pointers against the
// old logs, which survive until after the commit).
func (p *partition) backgroundGC() error {
	if p.db.opts.DisableKVSeparation {
		return nil
	}
	p.mu.RLock()
	refBytes := p.logBytesLocked()
	ok := refBytes > 0 && float64(p.garbageBytes.Load()) >= p.db.opts.GCRatio*float64(refBytes)
	p.mu.RUnlock()
	if !ok {
		return nil
	}
	return p.gcTables(false)
}

// gcTables rewrites the partition's live values out of its collectable
// logs into a fresh dedicated log and rewrites the SortedStore run with
// updated pointers. Crash consistency follows the paper's protocol:
//
//  1. identify valid KV pairs (scan the SortedStore's keys+pointers),
//  2. read the live values and write them to a new log file,
//  3. write all keys with new pointers to new SortedStore tables,
//  4. commit — the manifest batch is the GC_done marker — then delete the
//     old tables; old logs are removed once no partition references them.
//
// A crash before step 4 leaves the old state intact (the GC simply redoes);
// the orphaned new files are swept at the next open.
//
// locked means the caller holds p.mu for writing (inline mode); otherwise
// only the commit takes it.
func (p *partition) gcTables(locked bool) error {
	db := p.db

	// Collectable logs: everything the partition references except the
	// engine-wide active log (still being appended by merges). The set is
	// read under at least a read lock; it cannot change mid-GC because
	// only structural jobs mutate it and those hold maintMu.
	collect := map[uint32]bool{}
	activeNum, hasActive := db.vl.ActiveNum()
	minPinned, hasPinned := db.vl.MinPinned()
	if !locked {
		p.mu.RLock()
	}
	for n := range p.logs {
		if hasActive && n == activeNum {
			continue
		}
		// A pinned append window means an in-flight merge may be
		// writing into this or any later log; leave them alone.
		if hasPinned && n >= minPinned {
			continue
		}
		collect[n] = true
	}
	if !locked {
		p.mu.RUnlock()
	}
	if len(collect) == 0 {
		return nil
	}

	d, err := db.vl.NewDedicatedLog(p.id)
	if err != nil {
		return err
	}
	w := p.newTableWriter(p.dir)
	it := p.srt.NewIterator()
	var rewritten int64
	for ok := it.First(); ok; ok = it.Next() {
		rec := it.Record()
		if rec.Kind != record.KindSetPtr {
			if err := w.add(rec); err != nil {
				return err
			}
			continue
		}
		ptr, err := record.DecodePtr(rec.Value)
		if err != nil {
			return err
		}
		if !collect[ptr.LogNum] {
			if err := w.add(rec); err != nil {
				return err
			}
			continue
		}
		// Bypass the value cache: GC touches every live value once and
		// would otherwise flush the hot set with dead-cold data.
		val, err := db.vl.ReadUncached(ptr)
		if err != nil {
			return err
		}
		nptr, err := d.Append(val)
		if err != nil {
			return err
		}
		rewritten += int64(len(val))
		if err := w.add(record.Record{
			Key: rec.Key, Seq: rec.Seq, Kind: record.KindSetPtr,
			Value: nptr.Encode(nil),
		}); err != nil {
			return err
		}
	}
	if err := it.Err(); err != nil {
		return err
	}
	tables, err := w.finish()
	if err != nil {
		return err
	}
	nonEmpty, err := d.Finish()
	if err != nil {
		return err
	}

	if !locked {
		p.mu.Lock()
		defer p.mu.Unlock()
	}

	// New log set: uncollected logs plus the rewrite target.
	newLogs := map[uint32]bool{}
	for n := range p.logs {
		if !collect[n] {
			newLogs[n] = true
		}
	}
	if nonEmpty {
		newLogs[d.Num()] = true
	}
	oldSorted := p.srt.Tables()
	oldLogs := p.logs
	p.logs = newLogs

	// New tables and the rewrite log must be findable after a crash before
	// the GC_done commit (d.Finish synced the vlog directory).
	if err := db.fs.SyncDir(p.dir); err != nil {
		return err
	}
	if err := db.man.Apply(
		manifest.SetSorted(p.id, tableMetas(tables)),
		manifest.SetLogs(p.id, p.logsSliceLocked()),
		manifest.LastSeq(db.seq.Load()),
		db.nextFileEdit(),
	); err != nil {
		p.logs = oldLogs
		return err
	}
	if nonEmpty {
		db.retainLogs([]uint32{d.Num()})
	}
	p.srt.ReplaceAll(tables)
	for _, t := range oldSorted {
		db.retireTable(p.dir, t.Meta.FileNum, t.Reader)
	}
	var released []uint32
	for n := range collect {
		released = append(released, n)
	}
	db.releaseLogs(released)
	p.garbageBytes.Store(0)
	db.stats.GCs.Add(1)
	db.stats.GCBytesRewritten.Add(rewritten)
	return nil
}
