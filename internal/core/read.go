package core

import (
	"sort"
	"sync"

	"unikv/internal/codec"
	"unikv/internal/record"
)

// maxRouteRetries bounds the route→lock→covers dance in Get, Scan, apply,
// and ApplyBatch. A re-route is legitimate only when a concurrent split
// moves a boundary between partitionFor and the partition lock; that
// cannot recur this many times for one key, so exhausting the bound means
// the router is inconsistent (see ErrRouterInconsistent) — fail instead of
// spinning forever.
const maxRouteRetries = 64

// Get returns the value stored for key, or ErrNotFound.
//
// Read path (paper §Design): hot ring (single probe, lock-free) →
// memtable → UnsortedStore via the hash index → SortedStore via
// boundary-key binary search; a pointer record is then dereferenced into
// the value log. A ring miss takes a promotion token BEFORE the tiered
// lookup so the value it reads can be installed without ever serving a
// concurrently overwritten value (see internal/hotring).
func (db *DB) Get(key []byte) ([]byte, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	db.stats.Gets.Add(1)
	if val, ok := db.hot.Get(key); ok {
		return val, nil
	}
	tok := db.hot.BeginMiss(key)
	// Without the ring there is no frequency signal: every point read stays
	// "warm" so cache admission behaves exactly as before the hot layer.
	warm := tok.Warm || db.hot == nil
	for tries := 0; tries < maxRouteRetries; tries++ {
		p := db.partitionFor(key)
		p.mu.RLock()
		if !p.covers(key) {
			p.mu.RUnlock()
			continue
		}
		val, err := p.getLocked(key, warm)
		p.mu.RUnlock()
		if err == nil && tok.Promote {
			db.hot.Install(tok, key, val)
		}
		// A corruption-classed read failure quarantines the partition:
		// the read still fails the same way, but writes into files the
		// engine can no longer trust stop immediately.
		db.noteReadCorruption(p, err)
		return val, err
	}
	return nil, classified(ErrRouterInconsistent)
}

// getLocked performs the tiered lookup. warm is the hot ring's cache
// admission hint for a value-log dereference. Requires p.mu held (read).
func (p *partition) getLocked(key []byte, warm bool) ([]byte, error) {
	if rec, ok := p.mem.Get(key); ok {
		return p.resolve(rec, warm)
	}
	// Frozen memtables awaiting background flush, newest first.
	for i := len(p.imm) - 1; i >= 0; i-- {
		if rec, ok := p.imm[i].Get(key); ok {
			return p.resolve(rec, warm)
		}
	}
	if rec, ok, err := p.uns.Get(key); err != nil {
		return nil, err
	} else if ok {
		return p.resolve(rec, warm)
	}
	if rec, ok, err := p.srt.Get(key); err != nil {
		return nil, err
	} else if ok {
		return p.resolve(rec, warm)
	}
	return nil, ErrNotFound
}

// resolve materializes a record into its user value. warm gates value-cache
// admission on a log read: a key the hot ring has sampled at least twice
// may evict cache residents, a cold one is admitted only into free space.
func (p *partition) resolve(rec record.Record, warm bool) ([]byte, error) {
	switch rec.Kind {
	case record.KindDelete:
		return nil, ErrNotFound
	case record.KindSet:
		return append([]byte(nil), rec.Value...), nil
	case record.KindSetPtr:
		ptr, err := record.DecodePtr(rec.Value)
		if err != nil {
			return nil, err
		}
		// vl.ReadHinted returns a freshly allocated (or prefetch-copied)
		// buffer; no further copy is needed.
		return p.db.vl.ReadHinted(ptr, warm)
	}
	return nil, codec.ErrCorrupt
}

// KV is one scan result.
type KV struct {
	Key   []byte
	Value []byte
}

// Scan returns up to limit pairs with start <= key < end, in key order.
// end == nil means no upper bound; limit <= 0 means no count bound (then
// end must be non-nil).
//
// The scan follows the paper: locate the covering partition by boundary
// keys, merge the memtable / UnsortedStore / SortedStore iterators by
// repeated smallest-key selection, then fetch pointed-to values with
// readahead and the parallel fetch pool. Results from consecutive
// partitions are concatenated (ranges are disjoint and ordered, so no
// re-sort is needed).
func (db *DB) Scan(start, end []byte, limit int) ([]KV, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if limit <= 0 && end == nil {
		limit = 1 << 30 // "no bound" still terminates at the key space end
	}
	db.stats.Scans.Add(1)
	var out []KV
	cursor := start
	retries := 0
	for {
		p := db.partitionFor(cursor)
		p.mu.RLock()
		if !p.covers(cursor) {
			p.mu.RUnlock()
			if retries++; retries >= maxRouteRetries {
				return nil, classified(ErrRouterInconsistent)
			}
			continue
		}
		retries = 0 // advancing to the next partition resets the budget
		want := 0
		if limit > 0 {
			want = limit - len(out)
		}
		kvs, err := p.scanLocked(cursor, end, want)
		next := p.upper
		p.mu.RUnlock()
		if err != nil {
			db.noteReadCorruption(p, err)
			return nil, err
		}
		out = append(out, kvs...)
		if limit > 0 && len(out) >= limit {
			return out[:limit], nil
		}
		if next == nil {
			return out, nil
		}
		if end != nil && codec.Compare(next, end) >= 0 {
			return out, nil
		}
		cursor = next
	}
}

// scanLocked collects up to n pairs in [start, end) from this partition.
// Requires p.mu held (read).
//
// The UnsortedStore contributes either its sorted view (one iterator that
// binary-searches once and walks globally ordered entries — the REMIX
// optimization, see internal/sortedview) or, with SortedViewOff, one
// iterator per table that the k-way merge re-merges on every call. The
// view loaded here is pinned for the whole scan: p.mu is held and the view
// is immutable, so concurrent flush/merge swaps cannot disturb it.
func (p *partition) scanLocked(start, end []byte, n int) ([]KV, error) {
	var iters []recIter
	iters = append(iters, p.mem.NewIterator())
	for i := len(p.imm) - 1; i >= 0; i-- {
		iters = append(iters, p.imm[i].NewIterator())
	}
	if v := p.uns.ScanView(); v != nil {
		iters = append(iters, v.NewIterator())
	} else {
		for _, t := range p.uns.Tables() {
			iters = append(iters, t.Reader.NewIterator())
		}
	}
	iters = append(iters, p.srt.NewIterator())
	m := newMergeIter(iters)

	var out []KV
	var fetches []pendingFetch
	var lastKey []byte
	haveLast := false
	for ok := m.Seek(start); ok; ok = m.Next() {
		rec := m.Record()
		if end != nil && codec.Compare(rec.Key, end) >= 0 {
			break
		}
		if haveLast && codec.Compare(rec.Key, lastKey) == 0 {
			continue
		}
		lastKey = append(lastKey[:0], rec.Key...)
		haveLast = true
		switch rec.Kind {
		case record.KindDelete:
			continue
		case record.KindSet:
			out = append(out, KV{
				Key:   append([]byte(nil), rec.Key...),
				Value: append([]byte(nil), rec.Value...),
			})
		case record.KindSetPtr:
			ptr, err := record.DecodePtr(rec.Value)
			if err != nil {
				return nil, err
			}
			out = append(out, KV{Key: append([]byte(nil), rec.Key...)})
			fetches = append(fetches, pendingFetch{idx: len(out) - 1, ptr: ptr})
		}
		if n > 0 && len(out) >= n {
			break
		}
	}
	for _, it := range iters {
		if e, ok := it.(interface{ Err() error }); ok {
			if err := e.Err(); err != nil {
				return nil, err
			}
		}
	}
	if len(fetches) == 0 {
		return out, nil
	}

	// Readahead (paper: readahead from the first key's value, made
	// adaptive): instead of one all-or-nothing prefetch over the densest
	// log, group the pointers per log, sort each group by offset, and
	// detect contiguous runs — maximal stretches where the gap between
	// consecutive values stays small. Each qualifying run becomes its own
	// prefetch span, so a scan whose values are key-ordered in several logs
	// (fresh merges interleaved with GC rewrites) gets readahead for every
	// dense stretch while scattered singletons still take the per-value
	// path. The value-log ring holds the spans side by side; its hit
	// accounting feeds the ScanPrefetchIssued/Wasted counters.
	if !p.db.opts.DisableScanPrefetch {
		p.issuePrefetches(fetches)
	}

	// Value fetch: chunks of pointers are dispatched to the fixed worker
	// pool (paper: a fixed number of value addresses is inserted into the
	// worker queue and sleeping threads fetch them in parallel). Small
	// fetch sets run inline — dispatch would cost more than it saves.
	fetchOne := func(f pendingFetch) error {
		// ReadUncached: scan traffic bypasses the value cache so one large
		// range query cannot evict the point-read hot set (the prefetch
		// buffer above already serves the dense case).
		val, err := p.db.vl.ReadUncached(f.ptr)
		if err != nil {
			return err
		}
		out[f.idx].Value = val
		return nil
	}
	const chunkSize = 16
	if p.db.opts.DisableScanParallel || len(fetches) <= chunkSize {
		for _, f := range fetches {
			if err := fetchOne(f); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	nChunks := (len(fetches) + chunkSize - 1) / chunkSize
	var wg sync.WaitGroup
	errs := make([]error, nChunks)
	wg.Add(nChunks)
	for c := 0; c < nChunks; c++ {
		c := c
		lo := c * chunkSize
		hi := lo + chunkSize
		if hi > len(fetches) {
			hi = len(fetches)
		}
		p.db.pool.run(func() {
			defer wg.Done()
			for _, f := range fetches[lo:hi] {
				if err := fetchOne(f); err != nil {
					errs[c] = err
					return
				}
			}
		})
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// pendingFetch is one scan result awaiting its value-log dereference.
type pendingFetch struct {
	idx int
	ptr record.ValuePtr
}

// Tuning for the adaptive scan readahead (issuePrefetches).
const (
	// prefetchRunGap is the largest hole between two consecutive values
	// (sorted by offset, same log) that still extends a contiguous run —
	// roughly four data blocks of dead or foreign bytes are cheaper to read
	// through than to split the span over.
	prefetchRunGap = 16 << 10
	// prefetchMaxSpan caps one run's prefetch size so a single scan cannot
	// allocate unbounded readahead buffers.
	prefetchMaxSpan = 1 << 20
	// prefetchMaxRuns bounds spans issued per scan; it matches the value
	// log's readahead ring, so no span issued here is evicted before the
	// fetch phase can hit it.
	prefetchMaxRuns = 8
	// prefetchMinRun is the smallest pointer count worth a span (a
	// singleton reads exactly its own bytes either way).
	prefetchMinRun = 2
	// vlogFrameLen is the value log's per-record framing overhead
	// (length + checksum), counted into span extents.
	vlogFrameLen = 8
)

// issuePrefetches implements the adaptive readahead: per-log contiguous-
// run detection over the scan's pending value fetches. Runs are ranked by
// pointer count so that when there are more dense stretches than ring
// slots, the spans that serve the most fetches win. Best effort — a failed
// prefetch read just leaves those pointers on the per-value path.
func (p *partition) issuePrefetches(fetches []pendingFetch) {
	byLog := map[uint32][]record.ValuePtr{}
	for _, f := range fetches {
		byLog[f.ptr.LogNum] = append(byLog[f.ptr.LogNum], f.ptr)
	}
	type run struct {
		log    uint32
		lo, hi int64
		count  int
	}
	var runs []run
	for log, ptrs := range byLog {
		if len(ptrs) < prefetchMinRun {
			continue
		}
		sort.Slice(ptrs, func(i, j int) bool { return ptrs[i].Offset < ptrs[j].Offset })
		cur := run{log: log, lo: int64(ptrs[0].Offset), hi: int64(ptrs[0].Offset) + vlogFrameLen + int64(ptrs[0].Length), count: 1}
		flush := func() {
			if cur.count >= prefetchMinRun && cur.hi-cur.lo <= prefetchMaxSpan {
				runs = append(runs, cur)
			}
		}
		for _, ptr := range ptrs[1:] {
			start := int64(ptr.Offset)
			end := start + vlogFrameLen + int64(ptr.Length)
			if start-cur.hi <= prefetchRunGap && end-cur.lo <= prefetchMaxSpan {
				if end > cur.hi {
					cur.hi = end
				}
				cur.count++
				continue
			}
			flush()
			cur = run{log: log, lo: start, hi: end, count: 1}
		}
		flush()
	}
	if len(runs) == 0 {
		return
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].count > runs[j].count })
	if len(runs) > prefetchMaxRuns {
		runs = runs[:prefetchMaxRuns]
	}
	for _, r := range runs {
		p.db.vl.Prefetch(r.log, r.lo, r.hi-r.lo) // best effort
	}
}
