package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"unikv/internal/vfs"
)

// hotOpts makes the hot ring maximally aggressive (sample every miss,
// promote on the first sample) on top of the tiny flush/merge/split limits,
// so a short test exercises promotion, invalidation, and the maintenance
// races constantly.
func hotOpts(fs vfs.FS) Options {
	o := smallOpts(fs)
	o.HotRingSampleEvery = 1
	o.HotRingPromoteAfter = 1
	return o
}

// TestHotRingReadYourWrites is the staleness storm (run it with -race):
// writers each own a disjoint key set and verify read-your-writes after
// every Put and Delete, while readers hammer the whole hot set — promoting
// entries as fast as the writers invalidate them — and assert that the
// per-key generation they observe never goes backwards. The tiny limits
// force flushes, merges, scan merges, splits, and GC to run throughout, so
// a hot entry surviving any of those stale would trip the checks.
func TestHotRingReadYourWrites(t *testing.T) {
	runHotRingStorm(t, 0)
}

// TestHotRingReadYourWritesBackground repeats the storm with maintenance on
// background workers, so flush/merge/split/GC race the ring from their own
// goroutines instead of the writers'.
func TestHotRingReadYourWritesBackground(t *testing.T) {
	runHotRingStorm(t, 2)
}

func runHotRingStorm(t *testing.T, bgWorkers int) {
	fs := vfs.NewMem()
	opts := hotOpts(fs)
	opts.BackgroundWorkers = bgWorkers
	// Push enough volume through tiny tiers that merges, splits, and GC all
	// run repeatedly while the storm is in flight.
	opts.MemtableSize = 1 << 10
	opts.UnsortedLimit = 4 << 10
	opts.PartitionSizeLimit = 24 << 10
	opts.MaxLogSize = 4 << 10
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const (
		writers     = 4
		keysPer     = 64
		iters       = 600
		readers     = 4
		readsPerRdr = 6000
	)
	wkey := func(w, i int) []byte { return []byte(fmt.Sprintf("w%d-key-%03d", w, i)) }
	wval := func(w, i, gen int) []byte {
		return []byte(fmt.Sprintf("w%d-key-%03d:gen%08d:%s", w, i, gen,
			bytes.Repeat([]byte("x"), 160)))
	}
	parseGen := func(v []byte) (int, bool) {
		var w, i, gen int
		if _, err := fmt.Sscanf(string(v), "w%d-key-%03d:gen%08d", &w, &i, &gen); err != nil {
			return 0, false
		}
		return gen, true
	}

	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(w)))
			for gen := 1; gen <= iters; gen++ {
				i := rnd.Intn(keysPer)
				k := wkey(w, i)
				if gen%7 == 0 {
					if err := db.Delete(k); err != nil {
						errCh <- fmt.Errorf("delete %s: %w", k, err)
						return
					}
					if _, err := db.Get(k); err != ErrNotFound {
						errCh <- fmt.Errorf("read-your-delete %s: got %v, want ErrNotFound", k, err)
						return
					}
					continue
				}
				want := wval(w, i, gen)
				if err := db.Put(k, want); err != nil {
					errCh <- fmt.Errorf("put %s: %w", k, err)
					return
				}
				got, err := db.Get(k)
				if err != nil {
					errCh <- fmt.Errorf("read-your-write %s: %w", k, err)
					return
				}
				if !bytes.Equal(got, want) {
					errCh <- fmt.Errorf("stale read-your-write %s: got %q want %q", k, got, want)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(1000 + r)))
			seen := map[string]int{}
			for n := 0; n < readsPerRdr; n++ {
				w, i := rnd.Intn(writers), rnd.Intn(keysPer)
				k := wkey(w, i)
				v, err := db.Get(k)
				if err == ErrNotFound {
					continue
				}
				if err != nil {
					errCh <- fmt.Errorf("reader get %s: %w", k, err)
					return
				}
				gen, ok := parseGen(v)
				if !ok {
					errCh <- fmt.Errorf("reader get %s: unparseable value %q", k, v)
					return
				}
				if prev := seen[string(k)]; gen < prev {
					errCh <- fmt.Errorf("stale hot hit %s: saw gen %d after gen %d", k, gen, prev)
					return
				}
				seen[string(k)] = gen
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	m := db.Metrics()
	if m.HotRingHits == 0 || m.HotRingPromotions == 0 || m.HotRingInvalidations == 0 {
		t.Fatalf("storm never exercised the ring: %+v", m)
	}
	if m.Flushes == 0 || m.Merges == 0 || m.Splits == 0 {
		t.Fatalf("storm never exercised maintenance: flushes=%d merges=%d splits=%d",
			m.Flushes, m.Merges, m.Splits)
	}
}

// TestHotRingEquivalence is the property test: one random op trace applied
// to a ring-on DB (aggressive promotion) and a ring-off DB must produce
// identical results for every Get, Put, Delete, and Scan.
func TestHotRingEquivalence(t *testing.T) {
	on, err := Open("on", hotOpts(vfs.NewMem()))
	if err != nil {
		t.Fatal(err)
	}
	defer on.Close()
	offOpts := smallOpts(vfs.NewMem())
	offOpts.HotRingEntries = HotRingOff
	off, err := Open("off", offOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()

	rnd := rand.New(rand.NewSource(42))
	k := func() []byte { return []byte(fmt.Sprintf("key-%03d", rnd.Intn(200))) }
	for op := 0; op < 6000; op++ {
		switch rnd.Intn(10) {
		case 0, 1, 2, 3: // Put
			key := k()
			val := []byte(fmt.Sprintf("val-%d-%s", op, bytes.Repeat([]byte("y"), rnd.Intn(80))))
			if err := on.Put(key, val); err != nil {
				t.Fatalf("op %d: on.Put: %v", op, err)
			}
			if err := off.Put(key, val); err != nil {
				t.Fatalf("op %d: off.Put: %v", op, err)
			}
		case 4: // Delete
			key := k()
			if err := on.Delete(key); err != nil {
				t.Fatalf("op %d: on.Delete: %v", op, err)
			}
			if err := off.Delete(key); err != nil {
				t.Fatalf("op %d: off.Delete: %v", op, err)
			}
		case 5: // Scan
			start := k()
			end := append(append([]byte(nil), start...), 0xff)
			a, errA := on.Scan(start, end, 20)
			b, errB := off.Scan(start, end, 20)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("op %d: scan errs diverge: %v vs %v", op, errA, errB)
			}
			if len(a) != len(b) {
				t.Fatalf("op %d: scan lengths diverge: %d vs %d", op, len(a), len(b))
			}
			for i := range a {
				if !bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Value, b[i].Value) {
					t.Fatalf("op %d: scan[%d] diverges: %q=%q vs %q=%q",
						op, i, a[i].Key, a[i].Value, b[i].Key, b[i].Value)
				}
			}
		default: // Get
			key := k()
			a, errA := on.Get(key)
			b, errB := off.Get(key)
			if !errors.Is(errA, errB) && (errA != nil || errB != nil) {
				t.Fatalf("op %d: Get(%s) errs diverge: %v vs %v", op, key, errA, errB)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("op %d: Get(%s) diverges: %q vs %q", op, key, a, b)
			}
		}
	}
	if m := on.Metrics(); m.HotRingHits == 0 {
		t.Fatalf("trace never hit the ring: %+v", m)
	}
}

// TestRouterInconsistencyBounded verifies the bounded route→covers retry:
// a router whose boundary invariant is broken (partitionFor picks a
// partition that never covers the key) must fail every operation with the
// fatal-classified ErrRouterInconsistent instead of spinning forever —
// pre-bound, each of these calls hung (read.go's unbounded for loop).
func TestRouterInconsistencyBounded(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs)
	defer db.Close()
	if err := db.Put([]byte("aaa"), []byte("v")); err != nil {
		t.Fatal(err)
	}

	// Break the invariant: the sole partition claims to start above every
	// key, so covers always fails while partitionFor still returns it.
	db.router.Lock()
	saved := db.router.parts[0].lower
	db.router.parts[0].lower = []byte("zzz-broken")
	db.router.Unlock()
	defer func() {
		db.router.Lock()
		db.router.parts[0].lower = saved
		db.router.Unlock()
	}()

	check := func(name string, err error) {
		t.Helper()
		if !errors.Is(err, ErrRouterInconsistent) {
			t.Fatalf("%s: got %v, want ErrRouterInconsistent", name, err)
		}
		if c := Classify(err); c != ClassFatal {
			t.Fatalf("%s: classified %v, want fatal", name, c)
		}
	}
	_, err := db.Get([]byte("aaa"))
	check("Get", err)
	_, err = db.Scan([]byte("a"), []byte("b"), 10)
	check("Scan", err)
	check("Put", db.Put([]byte("aaa"), []byte("v2")))
	b := NewBatch()
	b.Put([]byte("aaa"), []byte("v3"))
	check("ApplyBatch", db.ApplyBatch(b))
}
