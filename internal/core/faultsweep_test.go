package core

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"testing"

	"unikv/internal/vfs"
)

// The systematic fault-injection sweep: one canonical workload — puts,
// overwrites, deletes, flush, close+reopen, more puts, compaction, with
// background workers and SyncWrites — is replayed many times, each run
// arming a fault at a different operation index (every FS op the engine
// issues: creates, writes, syncs, renames, removes, opens, reads). The
// invariant checked for every armed index:
//
//   - the run either completes, or stops with a clean error (a classified
//     foreground fault, or ErrDegraded once background retries exhaust);
//   - after disarming and reopening, no acknowledged write is lost, at
//     most the single in-flight operation is ambiguous (old or new state),
//     VerifyIntegrity is clean, and the database accepts new writes.
//
// Transient campaigns (the fault clears after two hits) additionally must
// never trip degraded mode: the scheduler's retry budget (JobRetries,
// default 3) absorbs them.
//
// The default profile strides across the op-index space; set
// UNIKV_FAULT_SWEEP=full to arm every index (slow, minutes).

// sweepAmb is the one operation in flight when the fault hit: the key may
// legitimately hold either its previous acked state or the attempted one.
type sweepAmb struct {
	key  string
	prev []byte // nil = absent/deleted
	next []byte // nil = the attempted op was a delete
}

// sweepState tracks what the workload has been acked so far. acked maps
// key -> value, with nil recording an acked delete.
type sweepState struct {
	acked map[string][]byte
	amb   *sweepAmb
}

// sweepOutcome is everything a campaign leaves behind for verification.
type sweepOutcome struct {
	st      *sweepState
	stopErr error // first workload error (nil: the run completed)
}

// sweepOpts is the canonical workload's configuration: background workers,
// fast retry clock, synced writes (so "acked" means "durable").
func sweepOpts(fs vfs.FS) Options {
	opts := retryOpts(fs)
	opts.SyncWrites = true
	return opts
}

// runSweepCampaign opens a fresh database on inner through a FailFS, arms
// plan, and drives the canonical workload until it completes or an
// operation fails. The returned FailFS is disarmed and every worker of the
// campaign's handles is parked, so inner is safe to reopen.
func runSweepCampaign(t *testing.T, inner vfs.FS, plan vfs.FailPlan) (*vfs.FailFS, sweepOutcome) {
	t.Helper()
	ffs := vfs.NewFail(inner)
	db, err := Open("db", sweepOpts(ffs))
	if err != nil {
		t.Fatalf("fault-free open: %v", err)
	}
	ffs.ArmPlan(plan)

	st := &sweepState{acked: make(map[string][]byte)}
	out := sweepOutcome{st: st}
	parked := false // true once db's workers cannot touch the FS anymore

	// put / del issue one write and fold the result into the model. They
	// return false when the campaign must stop.
	put := func(i, v int) bool {
		k, value := key(i), val(v)
		if err := db.Put(k, value); err != nil {
			st.amb = &sweepAmb{key: string(k), prev: st.acked[string(k)], next: value}
			out.stopErr = err
			return false
		}
		st.acked[string(k)] = value
		return true
	}
	del := func(i int) bool {
		k := key(i)
		if err := db.Delete(k); err != nil {
			st.amb = &sweepAmb{key: string(k), prev: st.acked[string(k)], next: nil}
			out.stopErr = err
			return false
		}
		st.acked[string(k)] = nil
		return true
	}

	func() {
		// Phase 1: first fill — flushes and merges.
		for i := 0; i < 600; i++ {
			if !put(i, i) {
				return
			}
		}
		// Phase 2: overwrites and deletes — value-log garbage, GC fuel.
		for i := 0; i < 400; i++ {
			if !put(i, i+1) {
				return
			}
		}
		for i := 0; i < 300; i += 3 {
			if !del(i) {
				return
			}
		}
		if err := db.Flush(); err != nil {
			out.stopErr = err
			return
		}
		// Phase 3: close and reopen under the same armed plan — faults
		// during shutdown drain, WAL replay, and recovery are in scope.
		if err := db.Close(); err != nil {
			parked = true
			out.stopErr = err
			return
		}
		parked = true
		db2, err := Open("db", sweepOpts(ffs))
		if err != nil {
			db = nil
			out.stopErr = err
			return
		}
		db = db2
		parked = false
		// Phase 4: second fill — pushes the partition over its split limit.
		for i := 600; i < 1200; i++ {
			if !put(i, i) {
				return
			}
		}
		// Phase 5: drain everything into the sorted tier.
		if err := db.CompactAll(); err != nil {
			out.stopErr = err
			return
		}
	}()

	// Park the surviving handle crash-style while the FS is still armed, so
	// no background job of this instance mutates the disk post-disarm.
	if db != nil && !parked {
		if errors.Is(out.stopErr, ErrDegraded) && !db.Metrics().Degraded {
			t.Errorf("write failed with ErrDegraded but metrics do not report degraded mode")
		}
		db.closed.Store(true)
		db.sched.close()
	}
	ffs.Disarm()
	return ffs, out
}

// verifySweepOutcome reopens the swept database fault-free and checks the
// durability contract: acked state intact, at most the in-flight op
// ambiguous, checksums clean, writes accepted.
func verifySweepOutcome(t *testing.T, inner vfs.FS, out sweepOutcome) {
	t.Helper()
	db, err := Open("db", smallOpts(inner))
	if err != nil {
		t.Fatalf("reopen after sweep (stopErr=%v): %v", out.stopErr, err)
	}
	defer db.Close()
	for k, want := range out.st.acked {
		if out.st.amb != nil && k == out.st.amb.key {
			continue
		}
		got, err := db.Get([]byte(k))
		switch {
		case want == nil:
			if err != ErrNotFound {
				t.Fatalf("acked delete of %q resurfaced: %q, %v (stopErr=%v)", k, got, err, out.stopErr)
			}
		case err != nil || !bytes.Equal(got, want):
			t.Fatalf("acked key %q lost: %q, %v (stopErr=%v)", k, got, err, out.stopErr)
		}
	}
	if a := out.st.amb; a != nil {
		got, err := db.Get([]byte(a.key))
		okAbsent := err == ErrNotFound && (a.prev == nil || a.next == nil)
		okPrev := err == nil && a.prev != nil && bytes.Equal(got, a.prev)
		okNext := err == nil && a.next != nil && bytes.Equal(got, a.next)
		if !okAbsent && !okPrev && !okNext {
			t.Fatalf("in-flight key %q in impossible state: %q, %v (stopErr=%v)", a.key, got, err, out.stopErr)
		}
	}
	if err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity after sweep (stopErr=%v): %v", out.stopErr, err)
	}
	if err := db.Put([]byte("post-sweep"), []byte("ok")); err != nil {
		t.Fatalf("write after sweep recovery: %v", err)
	}
}

// TestFaultSweepWorkloadCoverage pins that the canonical workload actually
// exercises every mechanism the sweep claims to cover — flush, merge, GC,
// split, reopen — and counts the op-index space for the sweep proper.
func TestFaultSweepWorkloadCoverage(t *testing.T) {
	inner := vfs.NewMem()
	ffs, out := runSweepCampaign(t, inner, vfs.FailPlan{Fail: 0, Kinds: vfs.OpAll})
	if out.stopErr != nil {
		t.Fatalf("count-only campaign must complete: %v", out.stopErr)
	}
	if n := ffs.MatchedOps(); n < 100 {
		t.Fatalf("workload issued only %d FS ops; the sweep space collapsed", n)
	}
	verifySweepOutcome(t, inner, out)

	db, err := Open("db", smallOpts(inner))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	m := db.Metrics()
	if m.Partitions < 2 {
		t.Errorf("workload never split (partitions=%d); resize it", m.Partitions)
	}
	// Flush/merge/GC counters belong to the campaign's handles, not this
	// fresh one; infer their occurrence from the durable shape instead.
	if m.SortedTables == 0 {
		t.Errorf("no sorted tables after CompactAll; merges cannot have run")
	}
}

// runSnapshotFaultCampaign is the snapshot variant of the sweep: a
// fault-free fill, a pinned snapshot with its dump captured, THEN the plan
// is armed and a churn of overwrites/deletes/flushes/compactions storms
// the engine. Pinned reads interleave with the faulting churn: each must
// return either the exact pinned value or a clean error — never wrong
// bytes. After disarming, the snapshot must replay its pin-time dump
// byte-identically (a fault that half-deleted a pinned table or log would
// surface right here).
func runSnapshotFaultCampaign(t *testing.T, plan vfs.FailPlan) *vfs.FailFS {
	t.Helper()
	ffs := vfs.NewFail(vfs.NewMem())
	db, err := Open("db", sweepOpts(ffs))
	if err != nil {
		t.Fatalf("fault-free open: %v", err)
	}
	for i := 0; i < 300; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatalf("fault-free fill: %v", err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatalf("fault-free flush: %v", err)
	}

	s, err := db.NewSnapshot()
	if err != nil {
		t.Fatalf("NewSnapshot: %v", err)
	}
	want, err := s.Scan(nil, nil, 400)
	if err != nil || len(want) != 300 {
		t.Fatalf("pin-time dump: %d keys, %v", len(want), err)
	}

	ffs.ArmPlan(plan)
	func() {
		for i := 0; i < 500; i++ {
			var opErr error
			switch {
			case i%50 == 49:
				opErr = db.Flush()
			case i%150 == 149:
				opErr = db.CompactAll()
			case i%7 == 3:
				opErr = db.Delete(key(i % 300))
			default:
				opErr = db.Put(key(i%300), val(i+1000))
			}
			if opErr != nil {
				return // the fault landed in the foreground; churn stops
			}
			if i%20 == 0 {
				kv := want[(i*13)%len(want)]
				got, err := s.Get(kv.Key)
				if err == nil && !bytes.Equal(got, kv.Value) {
					t.Fatalf("pinned read of %q under faults returned WRONG DATA: %q, want %q",
						kv.Key, got, kv.Value)
				}
			}
		}
	}()
	ffs.Disarm()

	// Fault gone: the pinned state must be fully intact — every file the
	// snapshot references survived whatever the fault did to maintenance.
	after, err := s.Scan(nil, nil, 400)
	if err != nil {
		t.Fatalf("snapshot dump after disarm: %v", err)
	}
	if len(after) != len(want) {
		t.Fatalf("snapshot dump after disarm: %d keys, want %d", len(after), len(want))
	}
	for i := range want {
		if !bytes.Equal(after[i].Key, want[i].Key) || !bytes.Equal(after[i].Value, want[i].Value) {
			t.Fatalf("snapshot diverged after faulting churn: [%d] %q=%q, want %q=%q",
				i, after[i].Key, after[i].Value, want[i].Key, want[i].Value)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("snapshot close: %v", err)
	}
	// Park crash-style: a sticky fault may have left the instance degraded.
	db.closed.Store(true)
	db.sched.close()
	return ffs
}

// TestFaultSweepOpenSnapshot arms faults at sampled op indices while a
// snapshot is open (part of `make fault-sweep`): pinned reads must never
// see corruption, under sticky and transient plans alike.
func TestFaultSweepOpenSnapshot(t *testing.T) {
	counter := runSnapshotFaultCampaign(t, vfs.FailPlan{Fail: 0, Kinds: vfs.OpAll})
	n := counter.MatchedOps()
	if n < 20 {
		t.Fatalf("snapshot churn issued only %d FS ops; the sweep space collapsed", n)
	}
	samples := int64(8)
	if testing.Short() {
		samples = 3
	}
	stride := n / samples
	if stride < 1 {
		stride = 1
	}
	for idx := int64(0); idx < n; idx += stride {
		idx := idx
		t.Run(fmt.Sprintf("sticky/%d", idx), func(t *testing.T) {
			runSnapshotFaultCampaign(t, vfs.FailPlan{Skip: idx, Fail: -1, Kinds: vfs.OpAll})
		})
		t.Run(fmt.Sprintf("transient/%d", idx), func(t *testing.T) {
			runSnapshotFaultCampaign(t, vfs.FailPlan{Skip: idx, Fail: 2, Kinds: vfs.OpAll})
		})
	}
}

// TestFaultSweep is the sweep proper. Each campaign replays the canonical
// workload with a fault armed at one op index: sticky campaigns model a
// dying disk (every matching op from the index on fails), transient
// campaigns model a hiccup (two ops fail, then recovery) and must be
// absorbed without degrading. The stride samples the index space; set
// UNIKV_FAULT_SWEEP=full to arm every index.
func TestFaultSweep(t *testing.T) {
	// Count pass sizes the op-index space on an identical fresh database.
	counter, out := runSweepCampaign(t, vfs.NewMem(), vfs.FailPlan{Fail: 0, Kinds: vfs.OpAll})
	if out.stopErr != nil {
		t.Fatalf("count pass failed: %v", out.stopErr)
	}
	n := counter.MatchedOps()

	var indices []int64
	switch {
	case os.Getenv("UNIKV_FAULT_SWEEP") == "full":
		for i := int64(0); i < n; i++ {
			indices = append(indices, i)
		}
	default:
		samples := int64(16)
		if testing.Short() {
			samples = 6
		}
		stride := n / samples
		if stride < 1 {
			stride = 1
		}
		for i := int64(0); i < n; i += stride {
			indices = append(indices, i)
		}
	}
	t.Logf("sweeping %d of %d op indices", len(indices), n)

	for _, idx := range indices {
		idx := idx
		t.Run(fmt.Sprintf("sticky/%d", idx), func(t *testing.T) {
			inner := vfs.NewMem()
			_, out := runSweepCampaign(t, inner, vfs.FailPlan{Skip: idx, Fail: -1, Kinds: vfs.OpAll})
			verifySweepOutcome(t, inner, out)
		})
		t.Run(fmt.Sprintf("transient/%d", idx), func(t *testing.T) {
			inner := vfs.NewMem()
			_, out := runSweepCampaign(t, inner, vfs.FailPlan{Skip: idx, Fail: 2, Kinds: vfs.OpAll})
			if errors.Is(out.stopErr, ErrDegraded) {
				t.Fatal("a 2-op transient fault tripped degraded mode; the retry budget must absorb it")
			}
			verifySweepOutcome(t, inner, out)
		})
	}
}
