package core

import "testing"

func TestSanitizeDefaults(t *testing.T) {
	o := Options{}.Sanitize()
	if o.MemtableSize != 4<<20 {
		t.Fatalf("MemtableSize=%d", o.MemtableSize)
	}
	if o.UnsortedLimit != 8*o.MemtableSize {
		t.Fatalf("UnsortedLimit=%d", o.UnsortedLimit)
	}
	if o.PartitionSizeLimit != 8*o.UnsortedLimit {
		t.Fatalf("PartitionSizeLimit=%d", o.PartitionSizeLimit)
	}
	if o.ScanMergeLimit != 8 || o.GCRatio != 0.3 || o.ScanWorkers != 32 {
		t.Fatalf("%+v", o)
	}
	if o.HashBuckets <= 0 || o.HashCheckpointEvery <= 0 || o.FS == nil {
		t.Fatalf("%+v", o)
	}
	// Checkpoint cadence derives from UnsortedLimit/2 worth of memtables.
	if o.HashCheckpointEvery != int(o.UnsortedLimit/(2*o.MemtableSize)) {
		t.Fatalf("HashCheckpointEvery=%d", o.HashCheckpointEvery)
	}
}

func TestSanitizePreservesExplicit(t *testing.T) {
	in := Options{
		MemtableSize:       1 << 10,
		UnsortedLimit:      4 << 10,
		ScanMergeLimit:     3,
		PartitionSizeLimit: 9 << 10,
		GCRatio:            0.5,
		ScanWorkers:        2,
		ValueThreshold:     128,
	}
	o := in.Sanitize()
	if o.MemtableSize != in.MemtableSize || o.UnsortedLimit != in.UnsortedLimit ||
		o.ScanMergeLimit != in.ScanMergeLimit || o.PartitionSizeLimit != in.PartitionSizeLimit ||
		o.GCRatio != in.GCRatio || o.ScanWorkers != in.ScanWorkers ||
		o.ValueThreshold != 128 {
		t.Fatalf("explicit values overwritten: %+v", o)
	}
}
