package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"unikv/internal/cache"
	"unikv/internal/codec"
	"unikv/internal/hotring"
	"unikv/internal/manifest"
	"unikv/internal/sstable"
	"unikv/internal/vfs"
	"unikv/internal/vlog"
)

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("unikv: database closed")

// ErrNotFound is returned by Get when the key does not exist.
var ErrNotFound = errors.New("unikv: key not found")

// ErrDBLocked is returned by Open when another live process (or handle)
// already owns the database directory. Before the LOCK file existed, the
// second opener would rotate CURRENT to its own manifest generation and its
// orphan sweep would delete the first process's files — observed losing a
// live database (see ROADMAP, PR 3).
var ErrDBLocked = errors.New("unikv: database locked by another process")

// ErrSnapshotOpen is returned by Close while a snapshot handle is still
// open: closing would unmap the tables and value logs the snapshot has
// pinned out from under its reads. Close every Snapshot first.
var ErrSnapshotOpen = errors.New("unikv: snapshot still open")

// ErrSnapshotClosed is returned by reads on a closed Snapshot.
var ErrSnapshotClosed = errors.New("unikv: snapshot closed")

// DB is a UniKV instance.
type DB struct {
	opts Options
	fs   vfs.FS
	dir  string

	man *manifest.Manifest
	vl  *vlog.Manager

	// dirLock is the exclusive LOCK-file lock on dir, held from Open until
	// Close so a second process cannot adopt (and then sweep) the directory.
	dirLock vfs.DirLock

	// cache is the shared block/value read cache (nil when CacheBytes is
	// CacheOff). Table readers attach to it at open; the vlog manager holds
	// it via its options.
	cache *cache.Cache

	// hot is the hot-key read layer (nil when HotRingEntries is
	// HotRingOff): the single-probe fast path consulted by Get before
	// partition routing. Writes and deletes invalidate per key; a split
	// invalidates the handed-over range. Its per-shard writerMu is the last
	// rank of the lock order below.
	hot *hotring.Ring

	seq      atomic.Uint64
	nextFile atomic.Uint64

	// router orders partitions by lower boundary key. Lock order:
	// snapMu -> maintMu -> flushMu -> router.mu -> partition.mu
	//   -> unsorted.viewMu -> logRefs.mu -> hotring.writerMu
	// (snapMu is the snapshot-registry lock below; maintMu/flushMu exist
	// per partition and only matter with BackgroundWorkers > 0; see
	// scheduler.go. viewMu serializes the lazy sorted-view rebuild and is
	// never held across any other lock.)
	router struct {
		sync.RWMutex
		parts []*partition
	}

	// snaps registers live MVCC snapshots, keyed by handle ID; each entry
	// pins a sequence number, and the minimum over the table is the seq
	// below which background work must keep superseded versions reachable
	// (enforced physically: snapshots hold reader refs and log refs).
	// snapMu is the first rank of the lock order: NewSnapshot holds it
	// across the whole partition capture, and Close takes it around the
	// closed transition so a snapshot can never race the teardown.
	snaps struct {
		snapMu sync.Mutex
		m      map[uint64]*Snapshot
		nextID uint64
	}

	// logRefs counts how many partitions reference each value log; a log
	// is deleted when its count drops to zero (lazy value split).
	logRefs struct {
		sync.Mutex
		refs map[uint32]int
	}

	pool   *fetchPool
	stats  Stats
	closed atomic.Bool

	// sched is the background maintenance pool (nil in inline mode).
	sched *scheduler
	// scrub is the opt-in background integrity scrub driver (nil unless
	// ScrubInterval > 0); see scrub.go.
	scrub *scrubber
	// degradedState holds the first terminal background failure; once set
	// the DB is degraded: writes return a DegradedError, reads keep
	// serving. Only a job error that classifies as corruption/fatal, or a
	// transient error surviving JobRetries retries, lands here.
	degradedState atomic.Pointer[DegradedError]

	// Test hooks (nil in production). testHookJobStart fires as a worker
	// picks up a job; testHookMergeBuild fires inside a background merge
	// after the snapshot is taken, before the build.
	testHookJobStart   func(*partition, jobKind)
	testHookMergeBuild func(*partition)
}

// Stats aggregates operation counters for the experiments.
type Stats struct {
	Puts, Gets, Deletes, Scans               atomic.Int64
	Flushes, Merges, ScanMerges, GCs, Splits atomic.Int64
	GCBytesRewritten                         atomic.Int64
	// Snapshots counts NewSnapshot calls; SnapshotGets/SnapshotScans count
	// reads served through pinned handles.
	Snapshots, SnapshotGets, SnapshotScans atomic.Int64
	HashProbes                               atomic.Int64
	Stalls, StallNanos, SlowdownNanos        atomic.Int64
	// BackgroundErrors counts distinct terminal job failures (a job that
	// exhausted its retries or hit corruption); BackgroundRetries counts
	// job attempts that failed transiently and were retried.
	BackgroundErrors  atomic.Int64
	BackgroundRetries atomic.Int64
	// Scrub progress (see scrub.go): passes started, bytes re-read and
	// verified, tables and value logs completed clean, corrupt files found.
	ScrubPasses      atomic.Int64
	ScrubBytes       atomic.Int64
	ScrubTables      atomic.Int64
	ScrubLogs        atomic.Int64
	ScrubCorruptions atomic.Int64
	// PartitionsQuarantined counts quarantine transitions over the DB's
	// lifetime (the live gauge is StatsSnapshot.QuarantinedPartitions).
	PartitionsQuarantined atomic.Int64
}

// StatsSnapshot is a plain-value copy of Stats plus derived gauges.
type StatsSnapshot struct {
	Puts, Gets, Deletes, Scans               int64
	Flushes, Merges, ScanMerges, GCs, Splits int64
	GCBytesRewritten                         int64
	Partitions                               int
	UnsortedTables                           int
	SortedTables                             int
	ValueLogs                                int
	HashIndexBytes                           int64
	UnsortedBytes                            int64
	SortedBytes                              int64
	ValueLogBytes                            int64
	TableBlockReads                          int64
	Stalls, StallNanos, SlowdownNanos        int64
	// BackgroundErrors counts terminal job failures; BackgroundRetries
	// counts transiently failed attempts absorbed by the retry policy.
	BackgroundErrors   int64
	BackgroundRetries  int64
	PendingJobs        int
	ImmutableMemtables int

	// Degraded mode (see DESIGN.md §5g). Degraded is true once a
	// background job failed terminally: writes fail with ErrDegraded,
	// reads keep serving. DegradedSince is the trip time in Unix
	// nanoseconds (0 when healthy); DegradedCause names the failed job,
	// partition, and error.
	Degraded      bool
	DegradedSince int64
	DegradedCause string

	// Scrub progress (all zero with ScrubInterval = 0, the default) and the
	// quarantine gauge. ScrubPasses counts pass starts; ScrubbedBytes the
	// bytes re-read and checksum-verified; ScrubbedTables/ScrubbedLogs the
	// files that came back clean; ScrubCorruptions the corrupt files found
	// (by any scrub, foreground reads count only toward quarantine).
	// QuarantinedPartitions gauges partitions currently quarantined —
	// rejecting writes after corruption was found in their files, while
	// every other partition serves normally (see quarantine.go).
	ScrubPasses           int64
	ScrubbedBytes         int64
	ScrubbedTables        int64
	ScrubbedLogs          int64
	ScrubCorruptions      int64
	QuarantinedPartitions int

	// Read-cache counters (all zero when the cache is disabled).
	CacheBlockHits   int64
	CacheBlockMisses int64
	CacheValueHits   int64
	CacheValueMisses int64
	CacheEvictions   int64
	CacheBytes       int64
	CacheEntries     int64

	// Hot-ring counters (all zero when the hot ring is disabled).
	// Hits/Misses count Get probes; Promotions counts installs;
	// Invalidations counts resident entries dropped by writes, deletes,
	// and splits. Resident/ResidentBytes gauge current occupancy.
	HotRingHits          int64
	HotRingMisses        int64
	HotRingPromotions    int64
	HotRingInvalidations int64
	HotRingResident      int64
	HotRingResidentBytes int64

	// Sorted-view gauges and counters (all zero with SortedViewOff; see
	// internal/sortedview). Entries/Bytes gauge the views' current size
	// across partitions; Builds counts incremental per-flush extensions,
	// Rebuilds from-scratch reconstructions (table replacement, split,
	// lazy post-recovery rebuild).
	SortedViewEntries  int64
	SortedViewBytes    int64
	SortedViewBuilds   int64
	SortedViewRebuilds int64

	// Scan readahead effectiveness: spans issued by the adaptive per-run
	// prefetch, and spans retired without serving a single read.
	ScanPrefetchIssued int64
	ScanPrefetchWasted int64

	// MVCC snapshot counters and gauges. Snapshots counts handles taken
	// over the DB's lifetime; SnapshotsOpen gauges live handles;
	// SnapshotMinSeq is the smallest pinned sequence among them (0 when
	// none are open) — the fence below which background work must keep
	// superseded versions reachable.
	Snapshots      int64
	SnapshotGets   int64
	SnapshotScans  int64
	SnapshotsOpen  int
	SnapshotMinSeq uint64
}

// file-name helpers -----------------------------------------------------

func (db *DB) partDir(id uint32) string {
	return filepath.Join(db.dir, fmt.Sprintf("p%d", id))
}

func tableName(dir string, num uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%08d.sst", num))
}

func walName(dir string, num uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%08d.wal", num))
}

func ckptName(dir string, num uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%08d.ckpt", num))
}

func (db *DB) vlogDir() string { return filepath.Join(db.dir, "vlog") }

// allocFileNum returns a fresh file number. The new high-water mark is
// persisted with the next manifest batch (nextFileEdit).
func (db *DB) allocFileNum() uint64 {
	return db.nextFile.Add(1) - 1
}

// nextFileEdit captures the counter for inclusion in a manifest batch.
func (db *DB) nextFileEdit() manifest.Edit {
	return manifest.NextFile(db.nextFile.Load())
}

// Open opens (creating if necessary) a UniKV database in dir.
func Open(dir string, opts Options) (*DB, error) {
	opts = opts.Sanitize()
	db := &DB{opts: opts, fs: opts.FS, dir: dir}
	db.logRefs.refs = make(map[uint32]int)
	db.snaps.m = make(map[uint64]*Snapshot)
	if err := db.fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	// Lock the directory before reading any state: losing the race here is
	// how a second opener used to rotate CURRENT and sweep the live owner's
	// files.
	dirLock, err := db.fs.TryLockDir(dir)
	if err != nil {
		if errors.Is(err, vfs.ErrLocked) {
			return nil, fmt.Errorf("%w: %s", ErrDBLocked, dir)
		}
		return nil, err
	}
	db.dirLock = dirLock
	man, err := manifest.Open(db.fs, dir)
	if err != nil {
		db.releaseDirLock()
		return nil, err
	}
	db.man = man
	state := man.State()
	db.nextFile.Store(state.NextFileNum)
	db.seq.Store(state.LastSeq)
	db.cache = cache.New(opts.CacheBytes, 0)
	if opts.HotRingEntries > 0 {
		db.hot = hotring.New(hotring.Config{
			Entries:      opts.HotRingEntries,
			Shards:       opts.HotRingShards,
			MaxValue:     opts.HotRingMaxValue,
			SampleEvery:  opts.HotRingSampleEvery,
			PromoteAfter: opts.HotRingPromoteAfter,
		})
	}

	vl, err := vlog.Open(db.fs, db.vlogDir(), vlog.Options{MaxLogSize: opts.MaxLogSize, Cache: db.cache})
	if err != nil {
		man.Close()
		db.releaseDirLock()
		return nil, err
	}
	db.vl = vl
	db.pool = newFetchPool(opts.ScanWorkers)

	if len(state.Partitions) == 0 {
		if err := db.bootstrap(); err != nil {
			db.Close()
			return nil, err
		}
	} else {
		if err := db.recover(state); err != nil {
			db.Close()
			return nil, err
		}
	}
	if !opts.DisableOrphanCleanup {
		db.sweepOrphans()
	}
	if opts.BackgroundWorkers > 0 {
		db.sched = newScheduler(db, opts.BackgroundWorkers)
	}
	if opts.ScrubInterval > 0 {
		db.scrub = newScrubber(db)
	}
	return db, nil
}

// bootstrap creates the initial single partition covering the whole key
// space.
func (db *DB) bootstrap() error {
	const pid = 1
	pdir := db.partDir(pid)
	if err := db.fs.MkdirAll(pdir); err != nil {
		return err
	}
	p := &partition{db: db, id: pid, dir: pdir}
	if err := p.initEmptyStores(); err != nil {
		return err
	}
	edits := []manifest.Edit{
		manifest.AddPartition(pid, nil),
		manifest.NextPart(2),
	}
	if !db.opts.DisableWAL {
		if err := p.newWALLocked(); err != nil {
			return err
		}
		edits = append(edits, manifest.SetWAL(pid, p.walNum))
	}
	edits = append(edits, db.nextFileEdit())
	if err := db.man.Apply(edits...); err != nil {
		return err
	}
	db.router.parts = []*partition{p}
	return nil
}

// recover rebuilds all partitions from the manifest state, replaying WALs
// and hash-index checkpoints.
func (db *DB) recover(state *manifest.State) error {
	metas := state.SortedPartitions()
	parts := make([]*partition, 0, len(metas))
	for i, meta := range metas {
		p, err := db.recoverPartition(meta)
		if err != nil {
			return err
		}
		if i+1 < len(metas) {
			p.upper = append([]byte(nil), metas[i+1].Lower...)
		}
		parts = append(parts, p)
		for _, l := range meta.Logs {
			db.logRefs.refs[l]++
		}
	}
	db.router.parts = parts
	// Sequence: manifest's LastSeq covers flushed data; WAL replay may
	// have seen higher.
	for _, p := range parts {
		if s := p.mem.MaxSeq(); s > db.seq.Load() {
			db.seq.Store(s)
		}
		for _, t := range p.uns.Tables() {
			if t.Meta.MaxSeq > db.seq.Load() {
				db.seq.Store(t.Meta.MaxSeq)
			}
		}
	}
	// Flush recovered memtables so recovery converges to a clean WAL.
	for _, p := range parts {
		p.mu.Lock()
		var err error
		if !p.mem.Empty() {
			err = p.flushLocked()
		} else if !db.opts.DisableWAL && p.wal == nil {
			err = p.rotateWALLocked()
		}
		p.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// recoverPartition restores one partition's stores and memtable.
func (db *DB) recoverPartition(meta *manifest.PartitionMeta) (*partition, error) {
	pdir := db.partDir(meta.ID)
	if err := db.fs.MkdirAll(pdir); err != nil {
		return nil, err
	}
	p := &partition{
		db:    db,
		id:    meta.ID,
		dir:   pdir,
		lower: append([]byte(nil), meta.Lower...),
	}
	p.logs = make(map[uint32]bool, len(meta.Logs))
	for _, l := range meta.Logs {
		p.logs[l] = true
	}
	p.hashCkpt = meta.HashCkpt

	openTable := func(tm manifest.TableMeta) (*sstable.Reader, error) {
		f, err := db.fs.Open(tableName(pdir, tm.FileNum))
		if err != nil {
			return nil, err
		}
		rdr, err := sstable.Open(f)
		if err != nil {
			f.Close()
			return nil, err
		}
		rdr.SetCache(db.cache, tm.FileNum)
		return rdr, nil
	}

	// UnsortedStore: checkpoint + replay.
	ckpt := ""
	if meta.HashCkpt != 0 {
		ckpt = ckptName(pdir, meta.HashCkpt)
	}
	uns, err := db.recoverUnsorted(meta, ckpt, openTable)
	if err != nil {
		return nil, err
	}
	p.uns = uns

	// SortedStore.
	srt, err := recoverSorted(meta, openTable)
	if err != nil {
		return nil, err
	}
	p.srt = srt

	p.mem = newMemtable()
	// WAL replay. The manifest records the oldest WAL still holding
	// unflushed data; background mode freezes memtables onto per-memtable
	// WALs without a manifest edit, so any later-numbered .wal file in the
	// directory is unflushed frozen data from before the crash. File numbers
	// are monotonic, so replaying ascending from meta.WALNum reconstructs
	// write order.
	if meta.WALNum != 0 {
		for _, num := range db.walNumsFrom(pdir, meta.WALNum) {
			if err := p.replayWAL(num); err != nil {
				return nil, err
			}
			p.walNum = num // flushed or rotated by recover()
		}
	}
	return p, nil
}

// walNumsFrom lists the .wal file numbers in pdir that are >= from, in
// ascending order.
func (db *DB) walNumsFrom(pdir string, from uint64) []uint64 {
	names, err := db.fs.List(pdir)
	if err != nil {
		if db.fs.Exists(walName(pdir, from)) {
			return []uint64{from}
		}
		return nil
	}
	var nums []uint64
	for _, name := range names {
		var n uint64
		if _, err := fmt.Sscanf(name, "%d.wal", &n); err != nil || !strings.HasSuffix(name, ".wal") {
			continue
		}
		if n >= from {
			nums = append(nums, n)
		}
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	return nums
}

// Close flushes memtables and releases every resource. It fails with
// ErrSnapshotOpen while any Snapshot handle is still open — tearing down
// would unmap the tables and value logs the snapshot has pinned.
func (db *DB) Close() error {
	// The closed transition happens under snapMu so it cannot interleave
	// with NewSnapshot: either the snapshot registers first (and Close
	// refuses) or Close wins (and NewSnapshot sees ErrClosed).
	db.snaps.snapMu.Lock()
	if len(db.snaps.m) > 0 {
		db.snaps.snapMu.Unlock()
		return ErrSnapshotOpen
	}
	already := db.closed.Swap(true)
	db.snaps.snapMu.Unlock()
	if already {
		return nil
	}
	var first error
	// Stop the scrub driver before the pool: its rate-limit waits abort
	// immediately on the stop signal, so in-flight scrub jobs (on workers
	// or inline) drain fast instead of pacing through close.
	if db.scrub != nil {
		db.scrub.close()
	}
	// Stop the maintenance pool first: running jobs finish, queued ones are
	// dropped (the inline drain below covers them), stalled writers wake
	// and observe closed.
	if db.sched != nil {
		db.sched.close()
		for _, p := range db.partitions() {
			p.wakeStalled()
		}
	}
	db.router.Lock()
	parts := db.router.parts
	db.router.Unlock()
	for _, p := range parts {
		p.mu.Lock()
		if len(p.imm) > 0 && db.degradedErr() == nil {
			if err := p.drainImmLocked(); err != nil && first == nil {
				first = err
			}
		}
		if !p.mem.Empty() && db.degradedErr() == nil {
			if err := p.flushLocked(); err != nil && first == nil {
				first = err
			}
		}
		if p.wal != nil {
			if err := p.wal.Sync(); err != nil && first == nil {
				first = err
			}
			p.wal.Close()
			p.wal = nil
		}
		p.closeTablesLocked()
		p.mu.Unlock()
	}
	if db.pool != nil {
		db.pool.close()
	}
	if db.vl != nil {
		if err := db.vl.Close(); err != nil && first == nil {
			first = err
		}
	}
	if db.man != nil {
		if err := db.man.Close(); err != nil && first == nil {
			first = err
		}
	}
	// Release the directory lock last: until here the files above are still
	// being flushed and must stay fenced from a concurrent opener. Released
	// even when an earlier step failed — a dead handle must not wedge the
	// directory.
	if err := db.releaseDirLock(); err != nil && first == nil {
		first = err
	}
	return first
}

// releaseDirLock drops the LOCK-file lock if held. Safe to call twice.
func (db *DB) releaseDirLock() error {
	if db.dirLock == nil {
		return nil
	}
	err := db.dirLock.Release()
	db.dirLock = nil
	return err
}

// partitionFor routes key to its partition (largest lower bound <= key).
func (db *DB) partitionFor(key []byte) *partition {
	db.router.RLock()
	defer db.router.RUnlock()
	parts := db.router.parts
	lo, hi := 0, len(parts)
	for lo < hi {
		mid := (lo + hi) / 2
		if codec.Compare(parts[mid].lower, key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		// Keys below the first partition's lower bound cannot exist (the
		// first partition's lower is empty), but stay defensive.
		return parts[0]
	}
	return parts[lo-1]
}

// partitions snapshots the router order.
func (db *DB) partitions() []*partition {
	db.router.RLock()
	defer db.router.RUnlock()
	return append([]*partition(nil), db.router.parts...)
}

// releaseLogs drops one reference from each log in nums, removing files
// whose count reaches zero.
func (db *DB) releaseLogs(nums []uint32) {
	db.logRefs.Lock()
	var dead []uint32
	for _, n := range nums {
		db.logRefs.refs[n]--
		if db.logRefs.refs[n] <= 0 {
			delete(db.logRefs.refs, n)
			dead = append(dead, n)
		}
	}
	db.logRefs.Unlock()
	for _, n := range dead {
		db.vl.Remove(n) // best effort; orphan sweep handles failures
	}
}

// retireTable deletes a replaced table when its last owner closes: with no
// snapshot pinning the reader, that is immediately (matching the old
// close-then-remove); otherwise the file and reader outlive retirement
// until the last pinned handle drops. Removal is best effort, like the
// inline removes it replaces — the orphan sweep covers failures.
func (db *DB) retireTable(dir string, num uint64, r *sstable.Reader) {
	fs := db.fs
	name := tableName(dir, num)
	r.SetRetire(func() { fs.Remove(name) })
	r.Close()
}

// retainLogs adds one reference to each log in nums.
func (db *DB) retainLogs(nums []uint32) {
	db.logRefs.Lock()
	for _, n := range nums {
		db.logRefs.refs[n]++
	}
	db.logRefs.Unlock()
}

// sweepOrphans deletes files on disk that the recovered state does not
// reference (outputs of crashed merges/GCs/splits).
func (db *DB) sweepOrphans() {
	state := db.man.State()
	// Partition files.
	for _, meta := range state.Partitions {
		pdir := db.partDir(meta.ID)
		names, err := db.fs.List(pdir)
		if err != nil {
			continue
		}
		ref := map[string]bool{}
		for _, t := range meta.Unsorted {
			ref[filepath.Base(tableName(pdir, t.FileNum))] = true
		}
		for _, t := range meta.Sorted {
			ref[filepath.Base(tableName(pdir, t.FileNum))] = true
		}
		// Every .wal numbered >= the manifest's WAL pointer may hold
		// unflushed data (frozen memtables rotate the WAL without a
		// manifest edit), so protect the whole suffix, not just the
		// recorded number.
		if meta.WALNum != 0 {
			for _, n := range db.walNumsFrom(pdir, meta.WALNum) {
				ref[filepath.Base(walName(pdir, n))] = true
			}
		}
		if meta.HashCkpt != 0 {
			ref[filepath.Base(ckptName(pdir, meta.HashCkpt))] = true
		}
		// The live partition may have rotated its WAL/checkpoint since the
		// state snapshot; protect the current ones too.
		if p := db.findPartition(meta.ID); p != nil {
			p.mu.RLock()
			if p.walNum != 0 {
				ref[filepath.Base(walName(pdir, p.walNum))] = true
			}
			for _, n := range p.immWALs {
				if n != 0 {
					ref[filepath.Base(walName(pdir, n))] = true
				}
			}
			if p.hashCkpt != 0 {
				ref[filepath.Base(ckptName(pdir, p.hashCkpt))] = true
			}
			p.mu.RUnlock()
		}
		for _, name := range names {
			if !ref[name] && (strings.HasSuffix(name, ".sst") || strings.HasSuffix(name, ".wal") || strings.HasSuffix(name, ".ckpt")) {
				db.fs.Remove(filepath.Join(pdir, name))
			}
		}
	}
	// Unknown partition directories.
	if names, err := db.fs.List(db.dir); err == nil {
		for _, name := range names {
			if !strings.HasPrefix(name, "p") {
				continue
			}
			var id uint32
			if _, err := fmt.Sscanf(name, "p%d", &id); err != nil {
				continue
			}
			if _, ok := state.Partitions[id]; ok {
				continue
			}
			pdir := filepath.Join(db.dir, name)
			if inner, err := db.fs.List(pdir); err == nil {
				for _, f := range inner {
					db.fs.Remove(filepath.Join(pdir, f))
				}
			}
		}
	}
	// Value logs.
	referenced := map[uint32]bool{}
	for _, meta := range state.Partitions {
		for _, l := range meta.Logs {
			referenced[l] = true
		}
	}
	if names, err := db.fs.List(db.vlogDir()); err == nil {
		for _, name := range names {
			n, ok := vlog.ParseLogName(name)
			if !ok || referenced[n] {
				continue
			}
			if active, isActive := db.vl.ActiveNum(); isActive && n == active {
				continue
			}
			db.vl.Remove(n)
		}
	}
}

// findPartition looks a partition up by ID.
func (db *DB) findPartition(id uint32) *partition {
	db.router.RLock()
	defer db.router.RUnlock()
	for _, p := range db.router.parts {
		if p.id == id {
			return p
		}
	}
	return nil
}

// Metrics returns a snapshot of engine statistics.
func (db *DB) Metrics() StatsSnapshot {
	s := StatsSnapshot{
		Puts: db.stats.Puts.Load(), Gets: db.stats.Gets.Load(),
		Deletes: db.stats.Deletes.Load(), Scans: db.stats.Scans.Load(),
		Flushes: db.stats.Flushes.Load(), Merges: db.stats.Merges.Load(),
		ScanMerges: db.stats.ScanMerges.Load(), GCs: db.stats.GCs.Load(),
		Splits:            db.stats.Splits.Load(),
		GCBytesRewritten:  db.stats.GCBytesRewritten.Load(),
		Stalls:            db.stats.Stalls.Load(),
		StallNanos:        db.stats.StallNanos.Load(),
		SlowdownNanos:     db.stats.SlowdownNanos.Load(),
		BackgroundErrors:  db.stats.BackgroundErrors.Load(),
		BackgroundRetries: db.stats.BackgroundRetries.Load(),
	}
	s.Snapshots = db.stats.Snapshots.Load()
	s.SnapshotGets = db.stats.SnapshotGets.Load()
	s.SnapshotScans = db.stats.SnapshotScans.Load()
	s.SnapshotsOpen, s.SnapshotMinSeq = db.snapshotGauges()
	if d := db.degradedState.Load(); d != nil {
		s.Degraded = true
		s.DegradedSince = d.Since.UnixNano()
		s.DegradedCause = d.Cause
	}
	s.ScrubPasses = db.stats.ScrubPasses.Load()
	s.ScrubbedBytes = db.stats.ScrubBytes.Load()
	s.ScrubbedTables = db.stats.ScrubTables.Load()
	s.ScrubbedLogs = db.stats.ScrubLogs.Load()
	s.ScrubCorruptions = db.stats.ScrubCorruptions.Load()
	s.QuarantinedPartitions = db.quarantinedCount()
	if db.sched != nil {
		s.PendingJobs = db.sched.pendingJobs()
	}
	for _, p := range db.partitions() {
		p.mu.RLock()
		s.Partitions++
		s.ImmutableMemtables += len(p.imm)
		s.UnsortedTables += p.uns.NumTables()
		s.SortedTables += p.srt.NumTables()
		s.HashIndexBytes += p.uns.Index().MemoryBytes()
		s.UnsortedBytes += p.uns.SizeBytes()
		s.SortedBytes += p.srt.SizeBytes()
		for _, t := range p.uns.Tables() {
			s.TableBlockReads += t.Reader.BlockReads.Load()
		}
		for _, t := range p.srt.Tables() {
			s.TableBlockReads += t.Reader.BlockReads.Load()
		}
		ve, vb, builds, rebuilds := p.uns.ViewStats()
		s.SortedViewEntries += int64(ve)
		s.SortedViewBytes += vb
		s.SortedViewBuilds += builds
		s.SortedViewRebuilds += rebuilds
		p.mu.RUnlock()
	}
	s.ValueLogs = len(db.vl.LogNums())
	s.ValueLogBytes = db.vl.TotalSize()
	s.ScanPrefetchIssued, s.ScanPrefetchWasted = db.vl.PrefetchStats()
	cs := db.cache.Snapshot()
	s.CacheBlockHits = cs.BlockHits
	s.CacheBlockMisses = cs.BlockMisses
	s.CacheValueHits = cs.ValueHits
	s.CacheValueMisses = cs.ValueMisses
	s.CacheEvictions = cs.Evictions
	s.CacheBytes = cs.Bytes
	s.CacheEntries = cs.Entries
	hs := db.hot.Snapshot()
	s.HotRingHits = hs.Hits
	s.HotRingMisses = hs.Misses
	s.HotRingPromotions = hs.Promotions
	s.HotRingInvalidations = hs.Invalidations
	s.HotRingResident = hs.Resident
	s.HotRingResidentBytes = hs.ResidentBytes
	return s
}

// Counters exposes the underlying file system's I/O accounting.
func (db *DB) Counters() *vfs.Counters { return db.fs.Counters() }

// ---------------------------------------------------------------------------
// fetchPool: the fixed worker pool used to fetch scan values in parallel
// (paper: a 32-thread pool feeding from a worker queue).

type fetchPool struct {
	jobs chan func()
	wg   sync.WaitGroup
}

func newFetchPool(n int) *fetchPool {
	p := &fetchPool{jobs: make(chan func(), 4*n)}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.jobs {
				f()
			}
		}()
	}
	return p
}

// run enqueues one job.
func (p *fetchPool) run(f func()) { p.jobs <- f }

func (p *fetchPool) close() {
	close(p.jobs)
	p.wg.Wait()
}
