package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"unikv/internal/vfs"
)

// TestCrashDuringLoad kills the engine at many different write-op counts
// during a synced load and verifies that, after reopening, (a) the DB opens
// cleanly and (b) every key acknowledged before the crash is present.
func TestCrashDuringLoad(t *testing.T) {
	for _, failAt := range []int64{5, 25, 60, 120, 250, 500, 900, 1500, 2500} {
		failAt := failAt
		t.Run(fmt.Sprintf("failAt=%d", failAt), func(t *testing.T) {
			inner := vfs.NewMem()
			ffs := vfs.NewFail(inner)
			opts := smallOpts(ffs)
			opts.SyncWrites = true
			db, err := Open("db", opts)
			if err != nil {
				t.Fatal(err)
			}
			ffs.Arm(failAt)
			acked := 0
			for i := 0; i < 800; i++ {
				if err := db.Put(key(i), val(i)); err != nil {
					break
				}
				acked = i + 1
			}
			// Do not Close: simulate the crash by abandoning the handle.
			ffs.Disarm()

			opts2 := smallOpts(inner)
			db2, err := Open("db", opts2)
			if err != nil {
				t.Fatalf("reopen after crash at %d writes: %v", failAt, err)
			}
			defer db2.Close()
			for i := 0; i < acked; i++ {
				got, err := db2.Get(key(i))
				if err != nil || !bytes.Equal(got, val(i)) {
					t.Fatalf("acked key %d (of %d) lost after crash at %d: %v",
						i, acked, failAt, err)
				}
			}
			// The DB is fully usable after recovery.
			if err := db2.Put([]byte("post-crash"), []byte("ok")); err != nil {
				t.Fatal(err)
			}
			if got, _ := db2.Get([]byte("post-crash")); string(got) != "ok" {
				t.Fatal("write after recovery failed")
			}
		})
	}
}

// TestCrashDuringGC arms the failure just before GC work happens and
// verifies the redo protocol: old state intact, orphans swept, every key
// readable.
func TestCrashDuringGC(t *testing.T) {
	inner := vfs.NewMem()
	ffs := vfs.NewFail(inner)
	opts := smallOpts(ffs)
	opts.GCRatio = 0.2
	opts.DisablePartitioning = true
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	// Build up garbage so the next merge triggers GC, then arm a small
	// budget mid-stream.
	latest := map[int]int{}
	for round := 0; round < 10; round++ {
		for i := 0; i < 100; i++ {
			db.Put(key(i), val(i*7+round))
			latest[i] = i*7 + round
		}
	}
	ffs.Arm(40)
	// Keep writing until the injected failure surfaces.
	for i := 0; i < 10000 && !ffs.Failed(); i++ {
		k := i % 100
		if err := db.Put(key(k), val(k*7+100+i)); err != nil {
			break
		}
		latest[k] = k*7 + 100 + i
	}
	if !ffs.Failed() {
		t.Skip("failure point not reached (layout changed); test vacuous")
	}
	ffs.Disarm()

	db2, err := Open("db", smallOpts(inner))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	// Every key must resolve to SOME acked value — in-flight overwrites may
	// or may not have landed, but the pointer chain must be intact (no
	// dangling value pointers).
	for i := 0; i < 100; i++ {
		got, err := db2.Get(key(i))
		if err != nil {
			t.Fatalf("key %d unreadable after crash: %v", i, err)
		}
		if len(got) == 0 {
			t.Fatalf("key %d empty after crash", i)
		}
	}
}

// TestCrashEverywhereScan sweeps failure points over a mixed workload,
// checking after each crash that the DB reopens and a full scan works
// without dangling pointers.
func TestCrashEverywhereScan(t *testing.T) {
	if testing.Short() {
		t.Skip("long crash sweep")
	}
	for failAt := int64(10); failAt <= 2000; failAt += 97 {
		inner := vfs.NewMem()
		ffs := vfs.NewFail(inner)
		opts := smallOpts(ffs)
		opts.SyncWrites = true
		opts.GCRatio = 0.25
		db, err := Open("db", opts)
		if err != nil {
			t.Fatal(err)
		}
		ffs.Arm(failAt)
		rnd := rand.New(rand.NewSource(failAt))
		acked := map[string]string{}
		// The op that hits the injected failure is "in flight": its WAL
		// record may or may not be durable, so both outcomes are legal.
		inflightKey, inflightVal := "", ""
		inflightDel := false
		for i := 0; i < 1200; i++ {
			k := fmt.Sprintf("key-%04d", rnd.Intn(300))
			v := fmt.Sprintf("val-%d", i)
			if rnd.Intn(10) == 0 {
				if err := db.Delete([]byte(k)); err != nil {
					inflightKey, inflightDel = k, true
					break
				}
				delete(acked, k)
			} else {
				if err := db.Put([]byte(k), []byte(v)); err != nil {
					inflightKey, inflightVal = k, v
					break
				}
				acked[k] = v
			}
		}
		ffs.Disarm()

		db2, err := Open("db", smallOpts(inner))
		if err != nil {
			t.Fatalf("failAt=%d reopen: %v", failAt, err)
		}
		kvs, err := db2.Scan([]byte("key-"), nil, 0)
		if err != nil {
			t.Fatalf("failAt=%d scan: %v", failAt, err)
		}
		got := map[string]string{}
		for _, kv := range kvs {
			got[string(kv.Key)] = string(kv.Value)
		}
		for k, v := range acked {
			if k == inflightKey {
				continue
			}
			if got[k] != v {
				t.Fatalf("failAt=%d: key %s = %q want %q", failAt, k, got[k], v)
			}
		}
		// The in-flight key may hold its old acked value, the in-flight
		// value, or (for an in-flight delete) be absent.
		if inflightKey != "" {
			g, present := got[inflightKey]
			old, hadOld := acked[inflightKey]
			okOld := hadOld && present && g == old
			okNew := !inflightDel && present && g == inflightVal
			okGone := (inflightDel || !hadOld) && !present
			if !okOld && !okNew && !okGone {
				t.Fatalf("failAt=%d: in-flight key %s in invalid state %q (present=%v)",
					failAt, inflightKey, g, present)
			}
		}
		// No phantom keys beyond acked ∪ {inflight}.
		for k := range got {
			if _, ok := acked[k]; !ok && k != inflightKey {
				t.Fatalf("failAt=%d: phantom key %s", failAt, k)
			}
		}
		db2.Close()
	}
}

// TestCrashLosesUnsyncedDirEntries models a whole-machine power loss with
// memFS's Crash(): only bytes fsynced through File.Sync survive, and only
// files whose directory entry was SyncDir'd are findable at all. Every
// publish point (WAL creation, manifest swap, table publish, vlog
// rotation) must pair its file sync with a directory sync, or an
// acknowledged write vanishes with its file.
func TestCrashLosesUnsyncedDirEntries(t *testing.T) {
	for _, n := range []int{3, 50, 400, 1200} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			fs := vfs.NewMem()
			opts := smallOpts(fs)
			opts.SyncWrites = true
			db, err := Open("db", opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if err := db.Put(key(i), val(i)); err != nil {
					t.Fatal(err)
				}
			}
			// Power loss: abandon the handle (no Close — Close syncs) and
			// drop everything that is not durable.
			fs.(vfs.Crasher).Crash()

			db2, err := Open("db", smallOpts(fs))
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			defer db2.Close()
			for i := 0; i < n; i++ {
				got, err := db2.Get(key(i))
				if err != nil || !bytes.Equal(got, val(i)) {
					t.Fatalf("acked key %d of %d lost to power loss: %v", i, n, err)
				}
			}
		})
	}
}

// TestCrashSweepCacheVariants reruns a crash sweep with the read cache in
// both non-default configurations — tiny (constant eviction and
// invalidation racing recovery-relevant state) and off — to show crash
// consistency does not depend on the cache's default sizing.
func TestCrashSweepCacheVariants(t *testing.T) {
	for _, cfg := range []struct {
		name  string
		bytes int64
	}{
		{"tiny", 256 << 10},
		{"off", CacheOff},
	} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			for _, failAt := range []int64{20, 120, 700, 1800} {
				inner := vfs.NewMem()
				ffs := vfs.NewFail(inner)
				opts := smallOpts(ffs)
				opts.SyncWrites = true
				opts.GCRatio = 0.25
				opts.CacheBytes = cfg.bytes
				db, err := Open("db", opts)
				if err != nil {
					t.Fatal(err)
				}
				ffs.Arm(failAt)
				acked := 0
				for i := 0; i < 1500; i++ {
					k := i % 500
					if err := db.Put(key(k), val(k+i)); err != nil {
						break
					}
					acked = i + 1
				}
				ffs.Disarm()

				opts2 := smallOpts(inner)
				opts2.CacheBytes = cfg.bytes
				db2, err := Open("db", opts2)
				if err != nil {
					t.Fatalf("cache=%s failAt=%d reopen: %v", cfg.name, failAt, err)
				}
				// Every key overwritten before the in-flight op must hold
				// one of its acked values (overwrites make exact-value
				// tracking the sweep in TestCrashEverywhereScan's job; here
				// we assert no loss and no dangling pointers).
				for k := 0; k < 500 && k < acked; k++ {
					if _, err := db2.Get(key(k)); err != nil {
						t.Fatalf("cache=%s failAt=%d key %d unreadable: %v",
							cfg.name, failAt, k, err)
					}
				}
				db2.Close()
			}
		})
	}
}

// TestRecoveryUsesHashCheckpoint verifies the checkpoint actually reduces
// recovery work: with a checkpoint present, reopening reads less table data
// than a cold rebuild.
func TestRecoveryUsesHashCheckpoint(t *testing.T) {
	build := func(disableCkpt bool) int64 {
		fs := vfs.NewMem()
		opts := smallOpts(fs)
		opts.DisableHashCkpt = disableCkpt
		opts.HashCheckpointEvery = 1
		// Size the index realistically relative to the data (the paper's
		// regime: index ≈ 1 % of UnsortedStore bytes) and keep everything
		// in the unsorted store (no merge) so recovery has index work.
		opts.HashBuckets = 512
		opts.UnsortedLimit = 1 << 30
		opts.PartitionSizeLimit = 1 << 30
		opts.ScanMergeLimit = 1 << 30
		db, err := Open("db", opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			db.Put(key(i), val(i))
		}
		db.Flush()
		// Abandon without Close (Close would flush; we want table replay
		// work at open). Note tables are already flushed. The abandoned
		// handle's directory lock dies with its "process".
		fs.(vfs.LockDropper).DropLocks()
		before := fs.Counters().Snapshot()
		db2, err := Open("db", opts)
		if err != nil {
			t.Fatal(err)
		}
		db2.Close()
		return fs.Counters().Snapshot().Sub(before).BytesRead
	}
	withCkpt := build(false)
	withoutCkpt := build(true)
	if withCkpt >= withoutCkpt {
		t.Fatalf("checkpoint did not reduce recovery reads: with=%d without=%d",
			withCkpt, withoutCkpt)
	}
}

// TestCrashDuringSplit arms the failure budget right before a split is due
// and verifies the redo/orphan-sweep protocol: after reopening, either the
// pre-split or post-split state is installed, every acknowledged key is
// present, and the routing invariants hold.
func TestCrashDuringSplit(t *testing.T) {
	// Sweep budgets to land the failure at different points inside the
	// split (pass-1 count, table writes, log writes, manifest commit).
	for _, budget := range []int64{3, 8, 15, 25, 40, 70} {
		budget := budget
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			inner := vfs.NewMem()
			ffs := vfs.NewFail(inner)
			opts := smallOpts(ffs)
			opts.SyncWrites = true
			db, err := Open("db", opts)
			if err != nil {
				t.Fatal(err)
			}
			// Load until just under the split point, then arm and push over.
			acked := 0
			target := 0
			for i := 0; ; i++ {
				if err := db.Put(key(i), val(i)); err != nil {
					t.Fatalf("pre-split put %d: %v", i, err)
				}
				acked = i + 1
				p := db.partitions()[0]
				p.mu.RLock()
				big := p.sizeLocked() >= opts.PartitionSizeLimit*8/10
				p.mu.RUnlock()
				if big {
					target = i + 400
					break
				}
				if i > 100000 {
					t.Fatal("never approached the split point")
				}
			}
			ffs.Arm(budget)
			for i := acked; i < target; i++ {
				if err := db.Put(key(i), val(i)); err != nil {
					break
				}
				acked = i + 1
			}
			ffs.Disarm()

			db2, err := Open("db", smallOpts(inner))
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer db2.Close()
			for i := 0; i < acked; i++ {
				got, err := db2.Get(key(i))
				if err != nil || !bytes.Equal(got, val(i)) {
					t.Fatalf("key %d of %d lost (budget=%d): %v", i, acked, budget, err)
				}
			}
			// Routing invariants.
			parts := db2.partitions()
			for i := 1; i < len(parts); i++ {
				if !bytes.Equal(parts[i-1].upper, parts[i].lower) {
					t.Fatalf("boundary mismatch after crash recovery")
				}
			}
			// Still writable; scans work.
			if err := db2.Put([]byte("post"), []byte("ok")); err != nil {
				t.Fatal(err)
			}
			kvs, err := db2.Scan(key(0), nil, acked+10)
			if err != nil {
				t.Fatal(err)
			}
			if len(kvs) < acked {
				t.Fatalf("scan found %d < acked %d", len(kvs), acked)
			}
		})
	}
}

// TestVerifyIntegrity: clean databases verify; flipped bits are found.
func TestVerifyIntegrity(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs)
	for i := 0; i < 1000; i++ {
		db.Put(key(i), val(i))
	}
	if err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("clean DB failed verification: %v", err)
	}
	db.Close()

	// Corrupt one table file of one partition and reopen.
	var victim string
	names, _ := fs.List("db/p1")
	for _, n := range names {
		if len(n) > 4 && n[len(n)-4:] == ".sst" {
			victim = "db/p1/" + n
			break
		}
	}
	if victim == "" {
		t.Skip("no table in p1")
	}
	data, _ := fs.ReadFile(victim)
	data[len(data)/3] ^= 0xff
	fs.WriteFile(victim, data)

	db2, err := Open("db", smallOpts(fs))
	if err != nil {
		// Corruption in meta/index surfaces at open; that also counts as
		// detection.
		return
	}
	defer db2.Close()
	if err := db2.VerifyIntegrity(); err == nil {
		t.Fatal("corruption not detected")
	}
	// Closed DB errors.
	db3 := openSmall(t, vfs.NewMem())
	db3.Close()
	if err := db3.VerifyIntegrity(); err != ErrClosed {
		t.Fatalf("%v", err)
	}
}
