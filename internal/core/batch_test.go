package core

import (
	"bytes"
	"fmt"
	"testing"

	"unikv/internal/record"
	"unikv/internal/vfs"
)

func TestBatchBasic(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs)
	defer db.Close()

	b := NewBatch()
	for i := 0; i < 50; i++ {
		b.Put(key(i), val(i))
	}
	b.Delete(key(10))
	if b.Len() != 51 {
		t.Fatalf("Len=%d", b.Len())
	}
	if err := db.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		got, err := db.Get(key(i))
		if i == 10 {
			if err != ErrNotFound {
				t.Fatalf("key 10 should be deleted (delete queued after put): %v", err)
			}
			continue
		}
		if err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("key %d: %v", i, err)
		}
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("Reset did not empty the batch")
	}
}

func TestBatchOrderWithinKey(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs)
	defer db.Close()

	b := NewBatch()
	b.Put([]byte("k"), []byte("v1"))
	b.Delete([]byte("k"))
	b.Put([]byte("k"), []byte("v3"))
	if err := db.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get([]byte("k"))
	if err != nil || string(got) != "v3" {
		t.Fatalf("%q %v", got, err)
	}
}

func TestBatchAcrossPartitions(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs)
	defer db.Close()

	// Force splits first.
	for i := 0; i < 2000; i++ {
		db.Put(key(i), val(i))
	}
	if db.Metrics().Partitions < 2 {
		t.Skip("no split at this scale")
	}
	// A batch spanning the whole key space.
	b := NewBatch()
	for i := 0; i < 2000; i += 50 {
		b.Put(key(i), []byte(fmt.Sprintf("batched-%d", i)))
	}
	if err := db.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i += 50 {
		got, err := db.Get(key(i))
		if err != nil || string(got) != fmt.Sprintf("batched-%d", i) {
			t.Fatalf("key %d: %q %v", i, got, err)
		}
	}
}

func TestBatchDurableAfterCrash(t *testing.T) {
	inner := vfs.NewMem()
	opts := smallOpts(inner)
	opts.MemtableSize = 1 << 20 // keep everything in the WAL
	opts.SyncWrites = true
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch()
	for i := 0; i < 30; i++ {
		b.Put(key(i), val(i))
	}
	if err := db.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	// Crash (no Close): the dead process's directory lock dies with it.
	inner.(vfs.LockDropper).DropLocks()
	db2, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 30; i++ {
		got, err := db2.Get(key(i))
		if err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("batched key %d lost: %v", i, err)
		}
	}
}

func TestBatchValidation(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs)
	defer db.Close()
	b := NewBatch()
	b.Put(nil, []byte("v"))
	if err := db.ApplyBatch(b); err != ErrKeyTooLarge {
		t.Fatalf("%v", err)
	}
	db.Close()
	b2 := NewBatch()
	b2.Put([]byte("k"), []byte("v"))
	if err := db.ApplyBatch(b2); err != ErrClosed {
		t.Fatalf("%v", err)
	}
}

func TestBatchEmpty(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs)
	defer db.Close()
	if err := db.ApplyBatch(NewBatch()); err != nil {
		t.Fatal(err)
	}
}

func TestSelectiveKVSeparation(t *testing.T) {
	fs := vfs.NewMem()
	opts := smallOpts(fs)
	opts.ValueThreshold = 100
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	small := []byte("tiny")                 // stays inline
	large := bytes.Repeat([]byte("L"), 300) // separated
	for i := 0; i < 300; i++ {
		if i%2 == 0 {
			db.Put(key(i), small)
		} else {
			db.Put(key(i), large)
		}
	}
	db.CompactAll()
	// Both classes read back fine.
	for i := 0; i < 300; i++ {
		got, err := db.Get(key(i))
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		want := small
		if i%2 == 1 {
			want = large
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("key %d: wrong class returned", i)
		}
	}
	// Check the layout: inspect sorted-store records directly.
	p := db.partitions()[0]
	p.mu.RLock()
	inline, ptrs := 0, 0
	it := p.srt.NewIterator()
	for ok := it.First(); ok; ok = it.Next() {
		switch it.Record().Kind {
		case record.KindSet:
			inline++
		case record.KindSetPtr:
			ptrs++
		}
	}
	p.mu.RUnlock()
	if inline == 0 || ptrs == 0 {
		t.Fatalf("selective separation not selective: inline=%d ptrs=%d", inline, ptrs)
	}
	// Scans cross both classes.
	kvs, err := db.Scan(key(0), nil, 300)
	if err != nil || len(kvs) != 300 {
		t.Fatalf("scan: %d %v", len(kvs), err)
	}
}

func TestSelectiveSeparationSurvivesSplitAndGC(t *testing.T) {
	fs := vfs.NewMem()
	opts := smallOpts(fs)
	opts.ValueThreshold = 100
	opts.GCRatio = 0.2
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	large := bytes.Repeat([]byte("x"), 200)
	for round := 0; round < 8; round++ {
		for i := 0; i < 400; i++ {
			if i%2 == 0 {
				db.Put(key(i), []byte(fmt.Sprintf("small-%d", round)))
			} else {
				db.Put(key(i), append(large, byte(round)))
			}
		}
	}
	db.CompactAll()
	for i := 0; i < 400; i++ {
		got, err := db.Get(key(i))
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		if i%2 == 0 && string(got) != "small-7" {
			t.Fatalf("key %d: %q", i, got)
		}
		if i%2 == 1 && (len(got) != 201 || got[200] != 7) {
			t.Fatalf("key %d: wrong large value", i)
		}
	}
}
