package core

import (
	"sync/atomic"

	"unikv/internal/codec"
	"unikv/internal/memtable"
	"unikv/internal/record"
	"unikv/internal/sorted"
	"unikv/internal/sortedview"
	"unikv/internal/unsorted"
)

// Snapshot is a consistent point-in-time read handle pinned to the global
// sequence number observed at NewSnapshot. Get and Scan see exactly the
// records sequenced at or below the pin, no matter how many writes,
// flushes, merges, splits, or value-log GCs run afterwards.
//
// The pin is physical, not advisory: the handle captures each partition's
// memtable queue, UnsortedStore tables (plus the pinned cross-table sorted
// view), SortedStore run, and referenced value logs, taking a reference on
// every table reader and value log. Background rewrites retire superseded
// tables by dropping their own reference (see sstable.Reader.SetRetire),
// so files a snapshot can still reach outlive the retirement and the log
// refcount fences value-log GC the same way. Only the live memtable is
// shared with writers; it is append-only and reads filter by sequence.
//
// Snapshot reads bypass the hot ring, which serves latest values only.
// A Snapshot is safe for concurrent use. Close releases the pinned
// resources; DB.Close refuses (ErrSnapshotOpen) while any handle is open.
type Snapshot struct {
	db  *DB
	seq uint64
	id  uint64

	parts  []snapPart
	closed atomic.Bool
}

// snapPart is the pinned read state of one partition, captured under the
// partition's read lock at pin time.
type snapPart struct {
	id           uint32
	lower, upper []byte

	// mem is the partition's live memtable at pin time — shared with the
	// writer. It only grows, and every record written after the pin
	// carries a larger sequence (assigned under the partition lock), so
	// sequence filtering makes it immutable from the snapshot's view.
	mem *memtable.Memtable
	// imm is the frozen memtable queue at pin time, oldest first. Frozen
	// tables are never mutated; flush only drops them from the live queue.
	imm []*memtable.Memtable
	// uns is the UnsortedStore table set at pin time, flush order; every
	// reader is Ref'd. view is the pinned cross-table sorted view over
	// exactly those tables (nil falls back to per-table merging).
	uns  []*unsorted.Table
	view *sortedview.View
	// srt is a private SortedStore over the pinned sorted run: the live
	// store's iterator reads its mutable table slice, so the snapshot owns
	// its own copy. Every reader is Ref'd (srtTables mirrors the set for
	// release and backup).
	srt       *sorted.Store
	srtTables []*sorted.Table
	// logs are the value logs this snapshot retains (via DB.logRefs, the
	// same refcount vlog GC consults before removing a file); logSizes
	// captures each log's size at pin time — every pinned pointer lies
	// below it, which bounds the backup copy.
	logs     []uint32
	logSizes map[uint32]int64
}

// NewSnapshot pins the current sequence number and returns a consistent
// read handle. The capture holds every partition's read lock at once, so
// the pinned sequence and the captured structures agree: a write is either
// fully visible in a captured memtable or sequenced above the pin.
func (db *DB) NewSnapshot() (*Snapshot, error) {
	db.snaps.snapMu.Lock()
	defer db.snaps.snapMu.Unlock()
	if db.closed.Load() {
		return nil, ErrClosed
	}
	db.router.RLock()
	parts := db.router.parts
	for _, p := range parts {
		//unikv:allow(lockorder) all-partition capture: released below via parts[i].mu.RUnlock in reverse order
		p.mu.RLock()
	}
	seq := db.seq.Load()
	s := &Snapshot{db: db, seq: seq, parts: make([]snapPart, 0, len(parts))}
	for _, p := range parts {
		sp := snapPart{
			id:        p.id,
			lower:     append([]byte(nil), p.lower...),
			mem:       p.mem,
			imm:       append([]*memtable.Memtable(nil), p.imm...),
			uns:       append([]*unsorted.Table(nil), p.uns.Tables()...),
			view:      p.uns.ScanView(), // may lazily rebuild under viewMu; nil → per-table
			srtTables: append([]*sorted.Table(nil), p.srt.Tables()...),
			logs:      p.logsSliceLocked(),
		}
		if p.upper != nil {
			sp.upper = append([]byte(nil), p.upper...)
		}
		for _, t := range sp.uns {
			t.Reader.Ref()
		}
		for _, t := range sp.srtTables {
			t.Reader.Ref()
		}
		sp.srt = sorted.New()
		sp.srt.ReplaceAll(sp.srtTables)
		sp.logSizes = make(map[uint32]int64, len(sp.logs))
		for _, n := range sp.logs {
			sp.logSizes[n] = db.vl.SizeOf(n)
		}
		// logRefs.mu ranks after partition.mu, so retaining under the read
		// locks is legal — and necessary: a GC between unlock and retain
		// could otherwise release a pinned log's last reference.
		db.retainLogs(sp.logs)
		s.parts = append(s.parts, sp)
	}
	for i := len(parts) - 1; i >= 0; i-- {
		parts[i].mu.RUnlock()
	}
	db.router.RUnlock()

	s.id = db.snaps.nextID
	db.snaps.nextID++
	db.snaps.m[s.id] = s
	db.stats.Snapshots.Add(1)
	return s, nil
}

// snapshotGauges reports the open-handle count and the smallest pinned
// sequence (0 when none are open) — the min-seq table stats expose.
func (db *DB) snapshotGauges() (open int, minSeq uint64) {
	db.snaps.snapMu.Lock()
	defer db.snaps.snapMu.Unlock()
	for _, s := range db.snaps.m {
		if open == 0 || s.seq < minSeq {
			minSeq = s.seq
		}
		open++
	}
	return open, minSeq
}

// Seq returns the pinned sequence number.
func (s *Snapshot) Seq() uint64 { return s.seq }

// Close releases the snapshot's pinned tables and value logs and removes
// it from the DB's registry. Idempotent.
func (s *Snapshot) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	db := s.db
	db.snaps.snapMu.Lock()
	delete(db.snaps.m, s.id)
	db.snaps.snapMu.Unlock()
	for i := range s.parts {
		sp := &s.parts[i]
		for _, t := range sp.uns {
			t.Reader.Close()
		}
		for _, t := range sp.srtTables {
			t.Reader.Close()
		}
		db.releaseLogs(sp.logs)
	}
	return nil
}

// partIdxFor returns the index of the pinned partition owning key (largest
// lower bound <= key). Pinned boundaries are immutable, so no covers/retry
// dance is needed.
func (s *Snapshot) partIdxFor(key []byte) int {
	lo, hi := 0, len(s.parts)
	for lo < hi {
		mid := (lo + hi) / 2
		if codec.Compare(s.parts[mid].lower, key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// Get returns the value key had at the pinned sequence, or ErrNotFound.
// The lookup never consults the hot ring (latest values only) or the
// UnsortedStore hash index (rebuilt in place by merges): captured tables
// are probed newest-first directly.
func (s *Snapshot) Get(key []byte) ([]byte, error) {
	if s.closed.Load() {
		return nil, ErrSnapshotClosed
	}
	s.db.stats.SnapshotGets.Add(1)
	sp := &s.parts[s.partIdxFor(key)]
	rec, ok, err := sp.get(key, s.seq)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrNotFound
	}
	return s.resolve(rec)
}

// get runs the tiered lookup over the pinned structures. Captured tables
// hold only records at or below the pin by construction; the filter stays
// on every tier defensively.
func (sp *snapPart) get(key []byte, seq uint64) (record.Record, bool, error) {
	if rec, ok := sp.mem.GetAtSeq(key, seq); ok {
		return rec, true, nil
	}
	for i := len(sp.imm) - 1; i >= 0; i-- {
		if rec, ok := sp.imm[i].GetAtSeq(key, seq); ok {
			return rec, true, nil
		}
	}
	// Unsorted tables newest-first: each holds one version per key, and a
	// newer table's version always shadows an older one's.
	for i := len(sp.uns) - 1; i >= 0; i-- {
		rec, hit, err := sp.uns[i].Reader.Get(key)
		if err != nil {
			return record.Record{}, false, err
		}
		if hit && rec.Seq <= seq {
			return rec, true, nil
		}
	}
	rec, hit, err := sp.srt.Get(key)
	if err != nil {
		return record.Record{}, false, err
	}
	if hit && rec.Seq <= seq {
		return rec, true, nil
	}
	return record.Record{}, false, nil
}

// resolve materializes a pinned record into its user value. Pointer
// dereferences go to the value log as usual — the pinned log refcount
// guarantees the segment still exists.
func (s *Snapshot) resolve(rec record.Record) ([]byte, error) {
	switch rec.Kind {
	case record.KindDelete:
		return nil, ErrNotFound
	case record.KindSet:
		return append([]byte(nil), rec.Value...), nil
	case record.KindSetPtr:
		ptr, err := record.DecodePtr(rec.Value)
		if err != nil {
			return nil, err
		}
		return s.db.vl.ReadHinted(ptr, true)
	}
	return nil, codec.ErrCorrupt
}

// Scan returns up to limit pairs with start <= key < end as of the pinned
// sequence, in key order (same bounds semantics as DB.Scan).
func (s *Snapshot) Scan(start, end []byte, limit int) ([]KV, error) {
	if s.closed.Load() {
		return nil, ErrSnapshotClosed
	}
	if limit <= 0 && end == nil {
		limit = 1 << 30 // "no bound" still terminates at the key space end
	}
	s.db.stats.SnapshotScans.Add(1)
	var out []KV
	cursor := start
	for i := s.partIdxFor(start); i < len(s.parts); i++ {
		sp := &s.parts[i]
		want := 0
		if limit > 0 {
			want = limit - len(out)
		}
		kvs, err := sp.scan(s, cursor, end, want)
		if err != nil {
			return nil, err
		}
		out = append(out, kvs...)
		if limit > 0 && len(out) >= limit {
			return out[:limit], nil
		}
		if sp.upper == nil {
			break
		}
		if end != nil && codec.Compare(sp.upper, end) >= 0 {
			break
		}
		cursor = sp.upper
	}
	return out, nil
}

// scan collects up to n pairs in [start, end) from this pinned partition:
// the same k-way merge DB.Scan runs, over the pinned sources, with the
// sequence filter applied before the per-key dedup (a version sequenced
// after the pin must not shadow the version the snapshot owns).
func (sp *snapPart) scan(s *Snapshot, start, end []byte, n int) ([]KV, error) {
	var iters []recIter
	iters = append(iters, sp.mem.NewIterator())
	for i := len(sp.imm) - 1; i >= 0; i-- {
		iters = append(iters, sp.imm[i].NewIterator())
	}
	if sp.view != nil {
		iters = append(iters, sp.view.NewIterator())
	} else {
		for _, t := range sp.uns {
			iters = append(iters, t.Reader.NewIterator())
		}
	}
	iters = append(iters, sp.srt.NewIterator())
	m := newMergeIter(iters)

	var out []KV
	var lastKey []byte
	haveLast := false
	for ok := m.Seek(start); ok; ok = m.Next() {
		rec := m.Record()
		if end != nil && codec.Compare(rec.Key, end) >= 0 {
			break
		}
		if rec.Seq > s.seq {
			continue // written after the pin: invisible, and must not set lastKey
		}
		if haveLast && codec.Compare(rec.Key, lastKey) == 0 {
			continue
		}
		lastKey = append(lastKey[:0], rec.Key...)
		haveLast = true
		switch rec.Kind {
		case record.KindDelete:
			continue
		case record.KindSet:
			out = append(out, KV{
				Key:   append([]byte(nil), rec.Key...),
				Value: append([]byte(nil), rec.Value...),
			})
		case record.KindSetPtr:
			ptr, err := record.DecodePtr(rec.Value)
			if err != nil {
				return nil, err
			}
			// ReadUncached like the live scan path: snapshot range reads
			// must not evict the point-read hot set.
			val, err := s.db.vl.ReadUncached(ptr)
			if err != nil {
				return nil, err
			}
			out = append(out, KV{Key: append([]byte(nil), rec.Key...), Value: val})
		default:
			return nil, codec.ErrCorrupt
		}
		if n > 0 && len(out) >= n {
			break
		}
	}
	if err := m.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
