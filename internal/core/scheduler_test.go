package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"unikv/internal/vfs"
)

// bgOpts is smallOpts plus a worker pool, so every maintenance mechanism
// runs in the background during these tests.
func bgOpts(fs vfs.FS) Options {
	opts := smallOpts(fs)
	opts.BackgroundWorkers = 2
	return opts
}

// TestBackgroundBasic exercises the full write/read/scan/delete surface in
// background mode, then reopens inline and verifies the on-disk state is
// the same database.
func TestBackgroundBasic(t *testing.T) {
	leakCheck(t)
	fs := vfs.NewMem()
	db, err := Open("db", bgOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrites and deletes interleaved with background maintenance.
	for i := 0; i < n; i += 3 {
		if err := db.Put(key(i), val(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < n; i += 5 {
		if err := db.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	check := func(db *DB) {
		t.Helper()
		for i := 0; i < n; i++ {
			got, err := db.Get(key(i))
			switch {
			case i%5 == 1:
				if err != ErrNotFound {
					t.Fatalf("deleted key %d: got %q, %v", i, got, err)
				}
			case i%3 == 0:
				if err != nil || !bytes.Equal(got, val(i+1)) {
					t.Fatalf("overwritten key %d: got %q, %v", i, got, err)
				}
			default:
				if err != nil || !bytes.Equal(got, val(i)) {
					t.Fatalf("key %d: got %q, %v", i, got, err)
				}
			}
		}
		kvs, err := db.Scan(key(0), key(40), 0)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for i := 0; i < 40; i++ {
			if i%5 != 1 {
				want++
			}
		}
		if len(kvs) != want {
			t.Fatalf("scan got %d keys, want %d", len(kvs), want)
		}
	}
	check(db)
	m := db.Metrics()
	if m.Flushes == 0 || m.Merges == 0 {
		t.Fatalf("background maintenance never ran: %+v", m)
	}
	if m.BackgroundErrors != 0 {
		t.Fatalf("background errors: %d", m.BackgroundErrors)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with inline scheduling: the persisted state is mode-agnostic.
	db2, err := Open("db", smallOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	check(db2)
}

// TestBackgroundReopenWithFrozenMemtables closes while frozen memtables
// are still queued (Close drains them) and also reopens after an abandoned
// handle, where only the WAL files carry the frozen data.
func TestBackgroundReopenWithFrozenMemtables(t *testing.T) {
	leakCheck(t)
	fs := vfs.NewMem()
	opts := bgOpts(fs)
	opts.BackgroundWorkers = 1
	// Keep the write throttle out of the way: this test parks the flush
	// worker on purpose, and a stalled writer would deadlock against it.
	opts.SlowdownImmutables = 500
	opts.StallImmutables = 600
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	// Stall the flush worker so freezes accumulate.
	release := make(chan struct{})
	db.testHookJobStart = func(p *partition, k jobKind) {
		if k == jobFlush {
			<-release
		}
	}
	const n = 400
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.Metrics().ImmutableMemtables; got == 0 {
		t.Fatal("no memtable froze; MemtableSize too large for the workload?")
	}
	// Reads must see frozen data.
	for i := 0; i < n; i++ {
		if got, err := db.Get(key(i)); err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("key %d while frozen: %q, %v", i, got, err)
		}
	}
	close(release)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open("db", smallOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < n; i++ {
		if got, err := db2.Get(key(i)); err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("key %d after reopen: %q, %v", i, got, err)
		}
	}
}

// TestBackgroundAbandonedHandle writes in background mode and abandons the
// handle without Close while frozen memtables are queued: recovery must
// replay the per-memtable WAL files (which carry the only copy of the
// frozen data).
func TestBackgroundAbandonedHandle(t *testing.T) {
	fs := vfs.NewMem()
	opts := bgOpts(fs)
	opts.BackgroundWorkers = 1
	opts.SlowdownImmutables = 500
	opts.StallImmutables = 600
	opts.SyncWrites = true
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	db.testHookJobStart = func(p *partition, k jobKind) { <-block }
	const n = 300
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.Metrics().ImmutableMemtables; got == 0 {
		t.Fatal("no memtable froze")
	}
	// Abandon the handle: the frozen memtables only exist in their WALs.
	// (The worker stays parked on the hook; it belongs to the dead DB.)
	// The dead process's directory lock dies with it.
	fs.(vfs.LockDropper).DropLocks()
	db2, err := Open("db", smallOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < n; i++ {
		if got, err := db2.Get(key(i)); err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("key %d after abandoned handle: %q, %v", i, got, err)
		}
	}
}

// TestBackgroundCrash randomizes a FailFS budget over a synced background
// load and verifies every acknowledged write survives reopening —
// the background-mode analogue of TestCrashDuringLoad (which keeps its
// deterministic arming points by running inline).
func TestBackgroundCrash(t *testing.T) {
	rng := rand.New(rand.NewSource(0xBADC0DE))
	for round := 0; round < 8; round++ {
		failAt := 20 + rng.Int63n(2000)
		t.Run(fmt.Sprintf("failAt=%d", failAt), func(t *testing.T) {
			inner := vfs.NewMem()
			ffs := vfs.NewFail(inner)
			opts := bgOpts(ffs)
			opts.SyncWrites = true
			db, err := Open("db", opts)
			if err != nil {
				t.Fatal(err)
			}
			ffs.Arm(failAt)
			acked := 0
			for i := 0; i < 1200; i++ {
				if err := db.Put(key(i), val(i)); err != nil {
					break
				}
				acked = i + 1
			}
			// Give in-flight jobs a moment to hit the armed failure too.
			for i := 0; i < 100 && !ffs.Failed(); i++ {
				time.Sleep(time.Millisecond)
			}
			// Abandon the handle (no Close: simulate the crash) — but park
			// its workers first, while the FS is still armed, so no job of
			// the dead instance mutates the disk after "power-off".
			db.closed.Store(true)
			db.sched.close()
			ffs.Disarm()

			db2, err := Open("db", smallOpts(inner))
			if err != nil {
				t.Fatalf("reopen after crash at %d ops: %v", failAt, err)
			}
			defer db2.Close()
			for i := 0; i < acked; i++ {
				got, err := db2.Get(key(i))
				if err != nil || !bytes.Equal(got, val(i)) {
					t.Fatalf("acked key %d (of %d) lost after crash at %d: %v",
						i, acked, failAt, err)
				}
			}
			if err := db2.Put([]byte("post-crash"), []byte("ok")); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBackgroundReadsDuringMerge verifies the tentpole latency property:
// while one partition is mid-merge in the background, reads and writes on
// another partition (and reads on the merging one) complete within a tight
// bound instead of waiting for the merge.
func TestBackgroundReadsDuringMerge(t *testing.T) {
	leakCheck(t)
	fs := vfs.NewMem()
	// Load inline until the database has split into 2+ partitions.
	db0, err := Open("db", smallOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000 && len(db0.partitions()) < 2; i++ {
		if err := db0.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(db0.partitions()) < 2 {
		t.Skip("workload never split; partition sizing changed")
	}
	if err := db0.Close(); err != nil {
		t.Fatal(err)
	}

	db, err := Open("db", bgOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	parts := db.partitions()
	busy := parts[len(parts)-1] // partition B: gets the merge
	idleKey := key(0)           // partition A: first partition's range

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	db.testHookMergeBuild = func(p *partition) {
		if p == busy {
			once.Do(func() { close(entered) })
			<-release
		}
	}
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	// Fill partition B's UnsortedStore past the merge trigger. Keys above
	// its lower bound route to it (it is the last partition).
	busyKey := func(i int) []byte {
		return append(append([]byte(nil), busy.lower...), fmt.Sprintf("~busy-%06d", i)...)
	}
	go func() {
		for i := 0; i < 20000; i++ {
			select {
			case <-entered:
				return
			default:
			}
			if err := db.Put(busyKey(i), val(i)); err != nil {
				return
			}
		}
	}()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("merge job never started on the busy partition")
	}

	// Partition B is now parked inside its merge build. Operations
	// elsewhere (and reads on B itself) must not wait for it.
	const bound = 2 * time.Second
	ops := []struct {
		name string
		fn   func() error
	}{
		{"get-idle", func() error { _, err := db.Get(idleKey); return err }},
		{"put-idle", func() error { return db.Put([]byte("key-000000-x"), []byte("v")) }},
		{"scan-idle", func() error { _, err := db.Scan(key(0), key(50), 10); return err }},
		{"get-busy", func() error { _, err := db.Get(busyKey(0)); return err }},
	}
	for _, op := range ops {
		done := make(chan error, 1)
		start := time.Now()
		go func() { done <- op.fn() }()
		select {
		case err := <-done:
			if err != nil && err != ErrNotFound {
				t.Fatalf("%s during merge: %v", op.name, err)
			}
			t.Logf("%s completed in %v", op.name, time.Since(start))
		case <-time.After(bound):
			t.Fatalf("%s blocked behind a background merge (> %v)", op.name, bound)
		}
	}
	close(release)
}

// TestBackgroundThrottle parks the flush worker so frozen memtables pile
// up, and verifies the two-stage backpressure engages (slowdown then hard
// stall) and releases once flushing resumes.
func TestBackgroundThrottle(t *testing.T) {
	leakCheck(t)
	fs := vfs.NewMem()
	opts := bgOpts(fs)
	opts.BackgroundWorkers = 1
	opts.SlowdownImmutables = 1
	opts.StallImmutables = 2
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	release := make(chan struct{})
	var once sync.Once
	db.testHookJobStart = func(p *partition, k jobKind) {
		if k == jobFlush {
			<-release
		}
	}

	const n = 600
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := db.Put(key(i), val(i)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	// Wait until the writer hits a hard stall, then unpark the worker.
	deadline := time.Now().Add(10 * time.Second)
	for db.stats.Stalls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("writer never stalled")
		}
		time.Sleep(time.Millisecond)
	}
	once.Do(func() { close(release) })
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if m.Stalls == 0 || m.StallNanos == 0 {
		t.Fatalf("stall counters not recorded: %+v", m)
	}
	if m.SlowdownNanos == 0 {
		t.Fatal("soft slowdown never engaged")
	}
	for i := 0; i < n; i++ {
		if got, err := db.Get(key(i)); err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("key %d after throttled load: %q, %v", i, got, err)
		}
	}
}

// TestBackgroundHandoffRace hammers the freeze/flush handoff from multiple
// writers with concurrent readers; its real assertions come from running
// under -race.
func TestBackgroundHandoffRace(t *testing.T) {
	leakCheck(t)
	fs := vfs.NewMem()
	db, err := Open("db", bgOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 4
		perW    = 800
	)
	var writeWG, readWG sync.WaitGroup
	errs := make(chan error, writers+2)
	for w := 0; w < writers; w++ {
		w := w
		writeWG.Add(1)
		go func() {
			defer writeWG.Done()
			for i := 0; i < perW; i++ {
				k := w*perW + i
				if err := db.Put(key(k), val(k)); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			rng := rand.New(rand.NewSource(int64(42)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Intn(writers * perW)
				if _, err := db.Get(key(k)); err != nil && err != ErrNotFound {
					errs <- err
					return
				}
				if _, err := db.Scan(key(k), nil, 5); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	// Wait for the writers, then stop the readers.
	writerWG := make(chan struct{})
	go func() {
		writeWG.Wait()
		close(writerWG)
	}()
	timer := time.NewTimer(60 * time.Second)
	defer timer.Stop()
	for done := false; !done; {
		select {
		case err := <-errs:
			close(stop)
			t.Fatal(err)
		case <-writerWG:
			done = true
		case <-timer.C:
			close(stop)
			t.Fatal("stress run timed out")
		}
	}
	close(stop)
	readWG.Wait()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open("db", smallOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for k := 0; k < writers*perW; k++ {
		if got, err := db2.Get(key(k)); err != nil || !bytes.Equal(got, val(k)) {
			t.Fatalf("key %d after stress: %q, %v", k, got, err)
		}
	}
}

// BenchmarkPutCopy measures the write path's per-op allocations (the
// single-copy key/value path).
func BenchmarkPutCopy(b *testing.B) {
	fs := vfs.NewMem()
	opts := Options{FS: fs, MemtableSize: 64 << 20, UnsortedLimit: 1 << 30}
	db, err := Open("db", opts)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	k := make([]byte, 16)
	v := bytes.Repeat([]byte("v"), 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(k, fmt.Sprintf("bench-%010d", i))
		if err := db.Put(k, v); err != nil {
			b.Fatal(err)
		}
	}
}
