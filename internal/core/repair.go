package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"unikv/internal/manifest"
	"unikv/internal/record"
	"unikv/internal/sstable"
	"unikv/internal/vfs"
	"unikv/internal/vlog"
	"unikv/internal/wal"
)

// Offline repair (the RocksDB RepairDB idea adapted to UniKV's layout).
//
// Repair rescans the directory and rebuilds a consistent database from
// whatever survives, preferring explicit, bounded data loss over a DB that
// refuses to open (or worse, opens and serves corrupt values):
//
//   - Value logs are scanned frame by frame; a torn or corrupt tail is
//     truncated at the last valid frame boundary, and a log whose very
//     first frame is bad is moved aside wholesale.
//   - Tables that fail checksum verification (any block, any record) are
//     moved into dir/lost/ — repair never edits a table in place, so the
//     bytes stay available for manual forensics.
//   - Surviving tables are rescanned for value pointers that now dangle
//     (into a truncated region or a dropped log); a table with dangling
//     pointers is rewritten without them (the original also goes to lost/).
//   - Per-partition hash-index checkpoints are discarded (recovery rebuilds
//     the index from the tables), and the manifest is rewritten from the
//     surviving files. If the manifest itself is unreadable, the partition
//     layout is reconstructed from the directory shape, with every salvaged
//     table treated as unsorted (the probe path tolerates overlap; the
//     sorted invariants cannot be re-proven cheaply).
//
// WAL files are kept untouched: the WAL reader already self-heals by
// stopping replay at the first torn record, so recovery handles them.
//
// The report enumerates every file dropped or rewritten and the key ranges
// affected, so an operator knows exactly what was lost. A repaired DB must
// reopen cleanly and pass VerifyIntegrity.

// DroppedFile records one file repair moved into dir/lost/.
type DroppedFile struct {
	Partition uint32 // owning partition; 0 for shared files (value logs)
	Path      string // original path, before the move into lost/
	Smallest  []byte // affected key range, when known (tables)
	Largest   []byte
	Reason string // why the file was dropped ("checksum mismatch", ...)
}

// LogTruncation records one value log whose torn tail was cut back to the
// last valid frame boundary.
type LogTruncation struct {
	Log     uint32
	OldSize int64
	NewSize int64
}

// RepairReport is the loss report Repair returns: everything it dropped,
// truncated, or rewrote while salvaging the database.
type RepairReport struct {
	// ManifestRebuilt is true when the manifest was unreadable and the
	// partition layout was reconstructed from the directory shape.
	ManifestRebuilt bool
	// TablesDropped lists tables moved to lost/ because they failed
	// verification (or lost every record to dangling pointers).
	TablesDropped []DroppedFile
	// LogsDropped lists value logs moved to lost/ (no valid prefix).
	LogsDropped []DroppedFile
	// LogsTruncated lists value logs whose torn tails were cut back.
	LogsTruncated []LogTruncation
	// OrphansMoved lists unreferenced files moved to lost/ as a
	// precaution; they held no committed data, so this is not loss.
	OrphansMoved []string
	// TablesRewritten counts tables rewritten to drop dangling pointers.
	TablesRewritten int
	// PointersDropped counts individual records dropped because their
	// value pointer referenced truncated or dropped log bytes.
	PointersDropped int
}

// DataLost reports whether the repair dropped any committed data (as
// opposed to only truncating unacknowledged tails and moving orphans).
func (r *RepairReport) DataLost() bool {
	return len(r.TablesDropped) > 0 || len(r.LogsDropped) > 0 || r.PointersDropped > 0
}

// String renders the loss report for operators (unikv-ctl repair prints
// this verbatim).
func (r *RepairReport) String() string {
	var b strings.Builder
	if r.ManifestRebuilt {
		b.WriteString("manifest: unreadable, rebuilt from directory scan\n")
	}
	for _, t := range r.LogsTruncated {
		fmt.Fprintf(&b, "truncated: value log %d %d -> %d bytes (torn tail)\n", t.Log, t.OldSize, t.NewSize)
	}
	for _, d := range r.LogsDropped {
		fmt.Fprintf(&b, "dropped:   %s (%s)\n", d.Path, d.Reason)
	}
	for _, d := range r.TablesDropped {
		fmt.Fprintf(&b, "dropped:   %s (%s)", d.Path, d.Reason)
		if len(d.Smallest) > 0 || len(d.Largest) > 0 {
			fmt.Fprintf(&b, " keys [%q, %q]", d.Smallest, d.Largest)
		}
		b.WriteByte('\n')
	}
	if r.TablesRewritten > 0 {
		fmt.Fprintf(&b, "rewritten: %d table(s), %d dangling value pointer(s) dropped\n",
			r.TablesRewritten, r.PointersDropped)
	}
	for _, o := range r.OrphansMoved {
		fmt.Fprintf(&b, "orphan:    %s moved to lost/ (held no committed data)\n", o)
	}
	if b.Len() == 0 {
		return "repair: no damage found\n"
	}
	return b.String()
}

// Repair salvages the UniKV database in dir. The database must not be
// open (Repair takes the same directory lock as Open). It returns the
// loss report; a non-nil report is returned even alongside an error so
// partial progress is visible.
func Repair(dir string, opts Options) (*RepairReport, error) {
	opts = opts.Sanitize()
	fs := opts.FS
	lock, err := fs.TryLockDir(dir)
	if err != nil {
		if errors.Is(err, vfs.ErrLocked) {
			return nil, fmt.Errorf("%w: %s", ErrDBLocked, dir)
		}
		return nil, err
	}
	defer lock.Release()
	r := &repairer{
		fs:       fs,
		dir:      dir,
		opts:     opts,
		report:   &RepairReport{},
		logValid: make(map[uint32]int64),
	}
	if err := r.run(); err != nil {
		return r.report, classified(err)
	}
	return r.report, nil
}

type repairer struct {
	fs     vfs.FS
	dir    string
	opts   Options
	report *RepairReport
	state  *manifest.State

	nextFile uint64           // file-number allocator for rewritten tables
	logValid map[uint32]int64 // surviving log -> valid byte length
	maxLog   uint32
	maxSeq   uint64
}

func (r *repairer) lostDir() string { return filepath.Join(r.dir, "lost") }

// toLost moves path into dir/lost/, prefixing the base name with its
// source directory so same-numbered files from different partitions do
// not collide.
func (r *repairer) toLost(path string) error {
	if err := r.fs.MkdirAll(r.lostDir()); err != nil {
		return err
	}
	prefix := filepath.Base(filepath.Dir(path))
	dst := filepath.Join(r.lostDir(), prefix+"-"+filepath.Base(path))
	if err := r.fs.Rename(path, dst); err != nil {
		return err
	}
	return r.fs.SyncDir(r.lostDir())
}

func (r *repairer) run() error {
	if err := r.loadState(); err != nil {
		return err
	}
	if err := r.repairLogs(); err != nil {
		return err
	}
	if err := r.repairPartitions(); err != nil {
		return err
	}
	return r.finish()
}

// loadState reads the manifest if it is intact, otherwise reconstructs
// the partition layout from the directory shape.
func (r *repairer) loadState() error {
	man, err := manifest.Open(r.fs, r.dir)
	if err == nil {
		r.state = man.State()
		man.Close()
		// The manifest rides the self-healing WAL format, so a corrupt
		// early record silently truncates replay instead of failing — in
		// the worst case to an empty state that would make Open bootstrap
		// a fresh DB on top of the surviving tables. Tables on disk with
		// no partition in the state is that signature: fall back to the
		// directory rebuild rather than trust the hollow manifest.
		if len(r.state.Partitions) == 0 && r.dirHasTables() {
			r.report.ManifestRebuilt = true
			return r.rebuildState()
		}
		r.nextFile = r.state.NextFileNum
		r.maxSeq = r.state.LastSeq
		return nil
	}
	if Classify(err) != ClassCorruption {
		return err
	}
	r.report.ManifestRebuilt = true
	return r.rebuildState()
}

// dirHasTables reports whether any partition directory holds a table.
func (r *repairer) dirHasTables() bool {
	names, err := r.fs.List(r.dir)
	if err != nil {
		return false
	}
	for _, name := range names {
		var pid uint32
		if _, err := fmt.Sscanf(name, "p%d", &pid); err != nil || fmt.Sprintf("p%d", pid) != name {
			continue
		}
		entries, err := r.fs.List(filepath.Join(r.dir, name))
		if err != nil {
			continue
		}
		for _, e := range entries {
			var n uint64
			if parseNumbered(e, ".sst", &n) {
				return true
			}
		}
	}
	return false
}

// rebuildState reconstructs a State from the directory shape: every p*
// directory becomes a partition holding all of its tables as unsorted
// (ordered by file number, approximating flush order). Lower bounds are
// assigned in a later pass, once table key ranges are known.
func (r *repairer) rebuildState() error {
	r.state = manifest.NewState()
	names, err := r.fs.List(r.dir)
	if err != nil {
		return err
	}
	for _, name := range names {
		var pid uint32
		if _, err := fmt.Sscanf(name, "p%d", &pid); err != nil || fmt.Sprintf("p%d", pid) != name {
			continue
		}
		pdir := filepath.Join(r.dir, name)
		entries, err := r.fs.List(pdir)
		if err != nil {
			continue // not a directory
		}
		meta := &manifest.PartitionMeta{ID: pid}
		var tables []uint64
		var minWAL uint64
		for _, e := range entries {
			var n uint64
			switch {
			case parseNumbered(e, ".sst", &n):
				tables = append(tables, n)
			case parseNumbered(e, ".wal", &n):
				if minWAL == 0 || n < minWAL {
					minWAL = n
				}
			}
		}
		sort.Slice(tables, func(i, j int) bool { return tables[i] < tables[j] })
		for _, n := range tables {
			meta.Unsorted = append(meta.Unsorted, manifest.TableMeta{FileNum: n})
		}
		meta.WALNum = minWAL
		r.state.Partitions[pid] = meta
		if pid >= r.state.NextPartID {
			r.state.NextPartID = pid + 1
		}
	}
	return nil
}

// parseNumbered matches names of the form "%08d<ext>" exactly.
func parseNumbered(name, ext string, out *uint64) bool {
	if !strings.HasSuffix(name, ext) {
		return false
	}
	var n uint64
	if _, err := fmt.Sscanf(name, "%d"+ext, &n); err != nil {
		return false
	}
	if fmt.Sprintf("%08d%s", n, ext) != name {
		return false
	}
	*out = n
	return true
}

// repairLogs scans every value log and truncates torn tails at the last
// valid frame boundary. A log with no valid prefix moves to lost/.
// Surviving valid lengths feed the dangling-pointer filter.
func (r *repairer) repairLogs() error {
	vdir := filepath.Join(r.dir, "vlog")
	names, err := r.fs.List(vdir)
	if err != nil {
		return nil // no vlog directory: nothing KV-separated yet
	}
	for _, name := range names {
		n, ok := vlog.ParseLogName(name)
		if !ok {
			continue
		}
		if n > r.maxLog {
			r.maxLog = n
		}
		path := filepath.Join(vdir, name)
		f, err := r.fs.Open(path)
		if err != nil {
			return err
		}
		size, err := f.Size()
		if err != nil {
			f.Close()
			return err
		}
		_, valid, verr := vlog.ScanValidPrefix(f, size, nil)
		f.Close()
		if verr == nil {
			r.logValid[n] = size
			continue
		}
		if Classify(verr) != ClassCorruption {
			return verr
		}
		if valid == 0 {
			if err := r.toLost(path); err != nil {
				return err
			}
			r.report.LogsDropped = append(r.report.LogsDropped, DroppedFile{
				Path:   path,
				Reason: fmt.Sprintf("no valid frame: %v", verr),
			})
			continue
		}
		data, err := r.fs.ReadFile(path)
		if err != nil {
			return err
		}
		if err := r.fs.WriteFile(path, data[:valid]); err != nil {
			return err
		}
		if err := r.fs.SyncDir(vdir); err != nil {
			return err
		}
		r.logValid[n] = valid
		r.report.LogsTruncated = append(r.report.LogsTruncated, LogTruncation{
			Log: n, OldSize: size, NewSize: valid,
		})
	}
	return nil
}

// repairPartitions verifies every table, drops corrupt ones, rewrites
// tables with dangling value pointers, recomputes per-partition log sets,
// and discards hash-index checkpoints.
func (r *repairer) repairPartitions() error {
	rebuilt := r.report.ManifestRebuilt
	type bound struct {
		meta *manifest.PartitionMeta
		min  []byte
		ok   bool
	}
	var bounds []bound
	for _, meta := range r.state.SortedPartitions() {
		pdir := filepath.Join(r.dir, fmt.Sprintf("p%d", meta.ID))
		known := make(map[uint64]bool, len(meta.Unsorted)+len(meta.Sorted))
		for _, t := range meta.Unsorted {
			known[t.FileNum] = true
		}
		for _, t := range meta.Sorted {
			known[t.FileNum] = true
		}
		logs := make(map[uint32]bool)
		var minKey []byte
		haveMin := false
		note := func(k []byte) {
			if !haveMin || bytes.Compare(k, minKey) < 0 {
				minKey = append([]byte(nil), k...)
				haveMin = true
			}
		}
		repairTier := func(tier []manifest.TableMeta) ([]manifest.TableMeta, error) {
			out := tier[:0]
			for _, tm := range tier {
				nm, kept, err := r.repairTable(meta.ID, pdir, tm, logs)
				if err != nil {
					return nil, err
				}
				if kept {
					out = append(out, nm)
					known[nm.FileNum] = true // rewrites land under fresh numbers
					if nm.Count > 0 {
						note(nm.Smallest)
					}
					if nm.MaxSeq > r.maxSeq {
						r.maxSeq = nm.MaxSeq
					}
				}
			}
			return out, nil
		}
		var err error
		if meta.Unsorted, err = repairTier(meta.Unsorted); err != nil {
			return err
		}
		if meta.Sorted, err = repairTier(meta.Sorted); err != nil {
			return err
		}
		// Orphans and stale checkpoints: unreferenced tables are crashed
		// merge/split outputs whose records live on in the inputs; hash
		// checkpoints are discarded so recovery rebuilds the index from
		// the repaired tables.
		entries, err := r.fs.List(pdir)
		if err == nil {
			for _, e := range entries {
				var n uint64
				switch {
				case parseNumbered(e, ".sst", &n):
					if !known[n] {
						if err := r.toLost(filepath.Join(pdir, e)); err != nil {
							return err
						}
						r.report.OrphansMoved = append(r.report.OrphansMoved, filepath.Join(pdir, e))
					}
				case parseNumbered(e, ".ckpt", &n):
					r.fs.Remove(filepath.Join(pdir, e))
				}
			}
		}
		meta.HashCkpt = 0
		meta.Logs = meta.Logs[:0]
		for n := range logs {
			meta.Logs = append(meta.Logs, n)
		}
		sort.Slice(meta.Logs, func(i, j int) bool { return meta.Logs[i] < meta.Logs[j] })
		if rebuilt && !haveMin {
			if k, ok := r.walMinKey(pdir, meta.WALNum); ok {
				minKey, haveMin = k, true
			}
		}
		bounds = append(bounds, bound{meta: meta, min: minKey, ok: haveMin})
	}
	if rebuilt {
		// Assign partition boundaries from the salvaged key ranges: order
		// by minimum key, first partition open at the bottom. Partitions
		// with no surviving data (and no WAL) hold nothing routable — drop
		// them from the layout.
		kept := bounds[:0]
		for _, b := range bounds {
			if b.ok {
				kept = append(kept, b)
			} else {
				delete(r.state.Partitions, b.meta.ID)
			}
		}
		sort.Slice(kept, func(i, j int) bool { return bytes.Compare(kept[i].min, kept[j].min) < 0 })
		for i, b := range kept {
			if i == 0 {
				b.meta.Lower = nil
			} else {
				b.meta.Lower = b.min
			}
		}
	}
	return nil
}

// repairTable verifies one table. Corrupt tables move to lost/ (kept =
// false); intact tables are rescanned for dangling value pointers and
// rewritten without them if any are found. The surviving table's metadata
// is rebuilt from the file itself (the manifest copy may be stale or,
// after a manifest rebuild, absent). Referenced logs accumulate in logs.
func (r *repairer) repairTable(pid uint32, pdir string, tm manifest.TableMeta, logs map[uint32]bool) (manifest.TableMeta, bool, error) {
	path := filepath.Join(pdir, fmt.Sprintf("%08d.sst", tm.FileNum))
	drop := func(reason string) (manifest.TableMeta, bool, error) {
		if r.fs.Exists(path) {
			if err := r.toLost(path); err != nil {
				return tm, false, err
			}
		}
		r.report.TablesDropped = append(r.report.TablesDropped, DroppedFile{
			Partition: pid,
			Path:      path,
			Smallest:  tm.Smallest,
			Largest:   tm.Largest,
			Reason:    reason,
		})
		return tm, false, nil
	}
	f, err := r.fs.Open(path)
	if err != nil {
		return drop(fmt.Sprintf("unreadable: %v", err))
	}
	rdr, err := sstable.Open(f)
	if err != nil {
		f.Close()
		if Classify(err) == ClassCorruption {
			return drop(fmt.Sprintf("corrupt: %v", err))
		}
		return tm, false, err
	}
	defer rdr.Close()
	if err := rdr.VerifyChecksums(); err != nil {
		if Classify(err) == ClassCorruption {
			return drop(fmt.Sprintf("corrupt: %v", err))
		}
		return tm, false, err
	}
	// Dangling-pointer scan: every record checksummed clean, so iterator
	// errors below would be unexpected (fail the repair rather than guess).
	var keep []record.Record
	dangling := 0
	it := rdr.NewIterator()
	for ok := it.First(); ok; ok = it.Next() {
		rec := it.Record()
		if rec.Kind == record.KindSetPtr {
			ptr, err := record.DecodePtr(rec.Value)
			if err != nil {
				return tm, false, err
			}
			valid, live := r.logValid[ptr.LogNum]
			if !live || int64(ptr.Offset)+vlog.HeaderLen+int64(ptr.Length) > valid {
				dangling++
				continue
			}
			logs[ptr.LogNum] = true
		}
		keep = append(keep, rec.Clone())
	}
	if err := it.Err(); err != nil {
		return tm, false, err
	}
	if dangling == 0 {
		return manifest.TableMeta{
			FileNum:  tm.FileNum,
			Size:     rdr.Size(),
			Count:    rdr.Count(),
			Smallest: append([]byte(nil), rdr.Smallest()...),
			Largest:  append([]byte(nil), rdr.Largest()...),
			MinSeq:   rdr.MinSeq(),
			MaxSeq:   rdr.MaxSeq(),
		}, true, nil
	}
	r.report.PointersDropped += dangling
	if len(keep) == 0 {
		return drop(fmt.Sprintf("all %d record(s) pointed into lost log bytes", dangling))
	}
	// Rewrite without the dangling records, then retire the original to
	// lost/ so the dropped pointers stay inspectable.
	num := r.allocFileNum()
	newPath := filepath.Join(pdir, fmt.Sprintf("%08d.sst", num))
	nf, err := r.fs.Create(newPath)
	if err != nil {
		return tm, false, err
	}
	b := sstable.NewBuilder(nf, sstable.BuilderOptions{BlockSize: r.opts.BlockSize})
	for _, rec := range keep {
		b.Add(rec)
	}
	props, err := b.Finish()
	if err != nil {
		nf.Close()
		return tm, false, err
	}
	if err := nf.Close(); err != nil {
		return tm, false, err
	}
	if err := r.fs.SyncDir(pdir); err != nil {
		return tm, false, err
	}
	if err := r.toLost(path); err != nil {
		return tm, false, err
	}
	r.report.TablesRewritten++
	r.report.TablesDropped = append(r.report.TablesDropped, DroppedFile{
		Partition: pid,
		Path:      path,
		Smallest:  tm.Smallest,
		Largest:   tm.Largest,
		Reason:    fmt.Sprintf("%d record(s) pointed into lost log bytes; survivors rewritten to %08d.sst", dangling, num),
	})
	return manifest.TableMeta{
		FileNum:  num,
		Size:     props.Size,
		Count:    props.Count,
		Smallest: append([]byte(nil), props.Smallest...),
		Largest:  append([]byte(nil), props.Largest...),
		MinSeq:   props.MinSeq,
		MaxSeq:   props.MaxSeq,
	}, true, nil
}

// allocFileNum hands out file numbers above everything observed so far.
func (r *repairer) allocFileNum() uint64 {
	if r.nextFile == 0 {
		r.nextFile = 1
	}
	n := r.nextFile
	r.nextFile++
	return n
}

// walMinKey scans the partition's WAL files for the smallest key, using
// the same self-healing read loop as recovery (a torn tail ends the scan,
// it does not fail it). Used only when the manifest was rebuilt and a
// partition has no surviving tables to derive a lower bound from.
func (r *repairer) walMinKey(pdir string, from uint64) ([]byte, bool) {
	if from == 0 {
		return nil, false
	}
	entries, err := r.fs.List(pdir)
	if err != nil {
		return nil, false
	}
	var minKey []byte
	found := false
	for _, e := range entries {
		var num uint64
		if !parseNumbered(e, ".wal", &num) || num < from {
			continue
		}
		f, err := r.fs.Open(filepath.Join(pdir, e))
		if err != nil {
			continue
		}
		rd := wal.NewReader(f)
		for {
			data, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				break
			}
			for len(data) > 0 {
				var rec record.Record
				rec, data, err = record.Decode(data)
				if err != nil {
					break
				}
				if !found || bytes.Compare(rec.Key, minKey) < 0 {
					minKey = append([]byte(nil), rec.Key...)
					found = true
				}
			}
		}
		f.Close()
	}
	return minKey, found
}

// finish bumps the allocator counters past everything observed and writes
// the rebuilt manifest.
func (r *repairer) finish() error {
	// File numbers: above every surviving table, WAL, and rewrite output.
	maxFile := r.nextFile
	for _, meta := range r.state.Partitions {
		for _, t := range meta.Unsorted {
			if t.FileNum >= maxFile {
				maxFile = t.FileNum + 1
			}
		}
		for _, t := range meta.Sorted {
			if t.FileNum >= maxFile {
				maxFile = t.FileNum + 1
			}
		}
		if meta.WALNum >= maxFile {
			maxFile = meta.WALNum + 1
		}
	}
	if maxFile == 0 {
		maxFile = 1
	}
	r.state.NextFileNum = maxFile
	if r.maxSeq > r.state.LastSeq {
		r.state.LastSeq = r.maxSeq
	}
	if r.maxLog >= r.state.NextLogNum {
		r.state.NextLogNum = r.maxLog + 1
	}
	if r.state.NextPartID == 0 {
		r.state.NextPartID = 1
	}
	return manifest.Rewrite(r.fs, r.dir, r.state)
}

