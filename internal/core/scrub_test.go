package core

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"unikv/internal/manifest"
	"unikv/internal/vfs"
	"unikv/internal/vlog"
)

// scrubOpts enables a fast, unthrottled background scrub on top of the
// background-worker configuration.
func scrubOpts(fs vfs.FS) Options {
	opts := retryOpts(fs)
	opts.ScrubInterval = 5 * time.Millisecond
	opts.ScrubBytesPerSec = -1 // unlimited: the tests want detection latency
	return opts
}

// bigSeed loads enough keys through background mode to force partition
// splits, drains to the sorted tier, and closes — a multi-partition
// on-disk state for quarantine-scoping tests. Returns the key count.
func bigSeed(t *testing.T, fs vfs.FS) int {
	t.Helper()
	db, err := Open("db", bgOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	if db.Metrics().Partitions < 2 {
		t.Fatalf("seed produced %d partitions, need >= 2 for scoping asserts", db.Metrics().Partitions)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return n
}

// probeWrites tries a write for every seeded key and buckets the outcomes:
// quarantined-range failures vs accepted writes. Any other error fails the
// test.
func probeWrites(t *testing.T, db *DB, n int) (quarantined, accepted int) {
	t.Helper()
	for i := 0; i < n; i++ {
		err := db.Put(key(i), val(i))
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, ErrPartitionQuarantined):
			quarantined++
		default:
			t.Fatalf("probe write %d: %v", i, err)
		}
	}
	return quarantined, accepted
}

// TestScrubDetectsCorruptTableQuarantinesOnePartition corrupts one table
// in a multi-partition database and lets the background scrub find it with
// no foreground read ever touching the bad block: exactly the owning
// partition must quarantine (its writes fail scoped), every other
// partition keeps accepting reads AND writes, and the DB never degrades.
func TestScrubDetectsCorruptTableQuarantinesOnePartition(t *testing.T) {
	leakCheck(t)
	fs := vfs.NewMem()
	n := bigSeed(t, fs)
	pdir := firstFile(t, fs, "db", "p[0-9]*")
	name := firstFile(t, fs, pdir, "*.sst")
	flipByte(t, fs, name, 20)

	db, err := Open("db", scrubOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	m := waitMetrics(db, func(m StatsSnapshot) bool { return m.QuarantinedPartitions > 0 })
	if m.QuarantinedPartitions == 0 {
		t.Fatalf("scrub never quarantined the corrupt partition (passes=%d corruptions=%d)",
			m.ScrubPasses, m.ScrubCorruptions)
	}
	if m.ScrubCorruptions == 0 {
		t.Fatal("quarantine without a counted scrub corruption")
	}
	if m.Degraded {
		t.Fatalf("whole DB degraded (%q); scrub corruption must quarantine only the owner", m.DegradedCause)
	}
	quarantined, accepted := probeWrites(t, db, n)
	if quarantined == 0 {
		t.Fatal("no write hit the quarantined range")
	}
	if accepted == 0 {
		t.Fatal("every write failed: quarantine was not scoped to the corrupt partition")
	}
	// Reads outside the corrupt block still serve on every partition.
	good := 0
	for i := 0; i < n; i++ {
		if v, err := db.Get(key(i)); err == nil && bytes.Equal(v, val(i)) {
			good++
		}
	}
	if good == 0 {
		t.Fatal("no key readable after a single-table corruption")
	}
}

// TestScrubDetectsCorruptVlogQuarantinesOwners corrupts one sealed value
// log: the scrub must quarantine exactly the partitions holding live
// pointers into that log (computed from the per-partition log sets), and
// leave the database undegraded.
func TestScrubDetectsCorruptVlogQuarantinesOwners(t *testing.T) {
	leakCheck(t)
	fs := vfs.NewMem()
	n := bigSeed(t, fs)

	// The blast radius of a shared log is its owner set — the per-partition
	// log lists persisted in the manifest. Pick the log with the fewest
	// owners so the "others keep serving" half of the contract is testable.
	man, err := manifest.Open(fs, "db")
	if err != nil {
		t.Fatal(err)
	}
	state := man.State()
	man.Close()
	owners := map[uint32]int{}
	for _, p := range state.SortedPartitions() {
		for _, l := range p.Logs {
			owners[l]++
		}
	}
	var target uint32
	best := 1 << 30
	for l, c := range owners {
		if c < best {
			target, best = l, c
		}
	}
	if best >= len(state.Partitions) {
		t.Fatalf("every log owned by all %d partitions; seed cannot exercise scoping", len(state.Partitions))
	}
	name := filepath.Join("db", "vlog", vlog.LogName(target))
	data, err := fs.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	flipByte(t, fs, name, len(data)/2)

	db, err := Open("db", scrubOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	m := waitMetrics(db, func(m StatsSnapshot) bool { return m.QuarantinedPartitions > 0 })
	if m.QuarantinedPartitions == 0 {
		t.Fatalf("scrub never quarantined the corrupt log's owners (passes=%d corruptions=%d)",
			m.ScrubPasses, m.ScrubCorruptions)
	}
	if m.Degraded {
		t.Fatalf("whole DB degraded (%q); vlog corruption must quarantine only pointer holders", m.DegradedCause)
	}
	if m.QuarantinedPartitions != best {
		t.Fatalf("QuarantinedPartitions=%d, want exactly the %d owners of log %d",
			m.QuarantinedPartitions, best, target)
	}
	if quarantined, accepted := probeWrites(t, db, n); quarantined == 0 || accepted == 0 {
		t.Fatalf("quarantine scope wrong: %d writes rejected, %d accepted", quarantined, accepted)
	}
}

// TestScrubCleanDatabaseCountsAndStops runs the scrub over an intact
// database: passes, verified tables/logs, and bytes advance; corruption
// and quarantine counters stay zero; Close joins the scrubber without
// leaking its goroutine.
func TestScrubCleanDatabaseCountsAndStops(t *testing.T) {
	leakCheck(t)
	fs := vfs.NewMem()
	corruptSeedInto(t, fs)
	db, err := Open("db", scrubOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	m := waitMetrics(db, func(m StatsSnapshot) bool {
		return m.ScrubPasses >= 2 && m.ScrubbedTables > 0 && m.ScrubbedLogs > 0
	})
	if m.ScrubPasses < 2 || m.ScrubbedTables == 0 || m.ScrubbedLogs == 0 || m.ScrubbedBytes == 0 {
		t.Fatalf("scrub counters did not advance: %+v", m)
	}
	if m.ScrubCorruptions != 0 || m.QuarantinedPartitions != 0 {
		t.Fatalf("clean database reported corruption: corruptions=%d quarantined=%d",
			m.ScrubCorruptions, m.QuarantinedPartitions)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// corruptSeedInto is corruptSeed against a caller-provided FS.
func corruptSeedInto(t *testing.T, fs vfs.FS) int {
	t.Helper()
	db := openSmall(t, fs)
	const n = 300
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestScrubDisabledIsZeroChange: with ScrubInterval unset nothing scrubs —
// no scrubber goroutine, no counters, no behavior difference.
func TestScrubDisabledIsZeroChange(t *testing.T) {
	leakCheck(t)
	fs := vfs.NewMem()
	corruptSeedInto(t, fs)
	db, err := Open("db", bgOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.scrub != nil {
		t.Fatal("scrubber running with ScrubInterval=0")
	}
	for i := 0; i < 100; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(30 * time.Millisecond)
	if m := db.Metrics(); m.ScrubPasses != 0 || m.ScrubbedBytes != 0 {
		t.Fatalf("scrub ran while disabled: %+v", m)
	}
}

// TestForegroundReadCorruptionQuarantines: with scrubbing off, a foreground
// Get that trips over a corrupt block must quarantine the partition it
// routed to — the read error doubles as the detection signal.
func TestForegroundReadCorruptionQuarantines(t *testing.T) {
	fs := vfs.NewMem()
	n := bigSeed(t, fs)
	pdir := firstFile(t, fs, "db", "p[0-9]*")
	name := firstFile(t, fs, pdir, "*.sst")
	flipByte(t, fs, name, 20)

	db, err := Open("db", bgOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var readErr error
	for i := 0; i < n; i++ {
		if _, err := db.Get(key(i)); err != nil && err != ErrNotFound {
			readErr = err
			break
		}
	}
	if readErr == nil {
		t.Skip("no read reached the corrupt block (cache served everything)")
	}
	if Classify(readErr) != ClassCorruption {
		t.Fatalf("read error %v classified %s, want corruption", readErr, Classify(readErr))
	}
	m := db.Metrics()
	if m.QuarantinedPartitions != 1 {
		t.Fatalf("QuarantinedPartitions=%d after a corrupt foreground read, want 1", m.QuarantinedPartitions)
	}
	if m.Degraded {
		t.Fatal("foreground read corruption degraded the whole DB")
	}
	if quarantined, accepted := probeWrites(t, db, n); quarantined == 0 || accepted == 0 {
		t.Fatalf("quarantine scope wrong: %d writes rejected, %d accepted", quarantined, accepted)
	}
}

// TestScrubSnapshotGCStorm races the scrub against an open snapshot and a
// flush/merge/split/GC storm: the pinned reads must stay byte-identical
// throughout, the scrub must never report corruption on healthy data, and
// teardown must release every table ref and log ref (Close fails on a
// refcount leak because the files would still be held).
func TestScrubSnapshotGCStorm(t *testing.T) {
	leakCheck(t)
	fs := vfs.NewMem()
	opts := scrubOpts(fs)
	opts.GCRatio = 0.01 // aggressive GC so log rewrites churn under the scrub
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := db.NewSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // overwrite churn: creates garbage for GC, forces merges
		defer wg.Done()
		for round := 0; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			i := round % n
			if err := db.Put(key(i), []byte(fmt.Sprintf("new-%d-%d", round, i))); err != nil {
				// The storm runs until stop; a quarantine here would be a bug
				// (all data is healthy), so surface it.
				t.Errorf("storm write: %v", err)
				return
			}
			if round%97 == 0 {
				_ = db.Delete(key((round * 7) % n))
			}
		}
	}()
	go func() { // snapshot reader: pinned view must never move
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			i := time.Now().Nanosecond() % n
			v, err := snap.Get(key(i))
			if err != nil {
				t.Errorf("snapshot get under storm: %v", err)
				return
			}
			if !bytes.Equal(v, val(i)) {
				t.Errorf("snapshot read changed under storm: key %d", i)
				return
			}
		}
	}()
	// Let the storm overlap several scrub passes.
	deadline := time.Now().Add(1500 * time.Millisecond)
	for time.Now().Before(deadline) {
		if m := db.Metrics(); m.ScrubPasses >= 5 && m.GCs > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	m := db.Metrics()
	if m.ScrubCorruptions != 0 || m.QuarantinedPartitions != 0 || m.Degraded {
		t.Fatalf("scrub flagged healthy data under storm: %+v", m)
	}
	// Full-range snapshot scan stays byte-identical too.
	kvs, err := snap.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != n {
		t.Fatalf("snapshot scan returned %d keys, want %d", len(kvs), n)
	}
	for i, kv := range kvs {
		if !bytes.Equal(kv.Value, val(i)) {
			t.Fatalf("snapshot scan value drifted at key %d", i)
		}
	}
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	// Close succeeds only if every scrub pin was released (a leaked table
	// ref or log ref keeps files alive and trips the leak checks).
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
