package core

import (
	"unikv/internal/codec"
	"unikv/internal/manifest"
	"unikv/internal/mergeiter"
	"unikv/internal/record"
	"unikv/internal/sorted"
	"unikv/internal/sstable"
	"unikv/internal/unsorted"
)

// recIter and mergeIter come from the shared mergeiter package (the
// baseline LSM engines reuse the same machinery).
type (
	recIter   = mergeiter.RecIter
	mergeIter = mergeiter.Iter
)

func newMergeIter(iters []recIter) *mergeIter { return mergeiter.New(iters) }

// ---------------------------------------------------------------------------
// tableWriter emits a series of SortedStore tables capped at
// TargetTableSize each.

type tableWriter struct {
	p      *partition
	dir    string
	tables []*sorted.Table
	b      *sstable.Builder
	f      interface {
		Close() error
	}
	num      uint64
	fileNums []uint64
}

func (p *partition) newTableWriter(dir string) *tableWriter {
	return &tableWriter{p: p, dir: dir}
}

func (w *tableWriter) add(rec record.Record) error {
	if w.b == nil {
		w.num = w.p.db.allocFileNum()
		f, err := w.p.db.fs.Create(tableName(w.dir, w.num))
		if err != nil {
			return err
		}
		w.f = f
		w.b = sstable.NewBuilder(f, sstable.BuilderOptions{BlockSize: w.p.db.opts.BlockSize})
	}
	w.b.Add(rec)
	if w.b.EstimatedSize() >= w.p.db.opts.TargetTableSize {
		return w.roll()
	}
	return nil
}

// roll finishes the current table and opens its reader.
func (w *tableWriter) roll() error {
	if w.b == nil {
		return nil
	}
	props, err := w.b.Finish()
	if err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	rf, err := w.p.db.fs.Open(tableName(w.dir, w.num))
	if err != nil {
		return err
	}
	rdr, err := sstable.Open(rf)
	if err != nil {
		rf.Close()
		return err
	}
	rdr.SetCache(w.p.db.cache, w.num)
	w.tables = append(w.tables, &sorted.Table{
		Meta: manifest.TableMeta{
			FileNum: w.num, Size: props.Size, Count: props.Count,
			Smallest: props.Smallest, Largest: props.Largest,
			MinSeq: props.MinSeq, MaxSeq: props.MaxSeq,
		},
		Reader: rdr,
	})
	w.fileNums = append(w.fileNums, w.num)
	w.b = nil
	w.f = nil
	return nil
}

// finish flushes the trailing table and returns the run.
func (w *tableWriter) finish() ([]*sorted.Table, error) {
	if err := w.roll(); err != nil {
		return nil, err
	}
	return w.tables, nil
}

// metas extracts the manifest metadata of the written tables.
func tableMetas(tables []*sorted.Table) []manifest.TableMeta {
	out := make([]manifest.TableMeta, len(tables))
	for i, t := range tables {
		out[i] = t.Meta
	}
	return out
}

// ---------------------------------------------------------------------------
// Unsorted → Sorted merge with partial KV separation.

// mergeLocked drains the UnsortedStore into the SortedStore. Requires
// p.mu held for writing (inline mode and CompactAll).
func (p *partition) mergeLocked() error {
	return p.mergeTables(p.uns.Tables(), true)
}

// backgroundMerge is the merge job: it snapshots the UnsortedStore's
// current tables (flush order is append-only, so the snapshot stays a
// stable prefix while concurrent flushes land behind it), re-checks the
// trigger, and runs the heavy merge without the partition lock.
func (p *partition) backgroundMerge() error {
	p.mu.RLock()
	if p.uns.SizeBytes() < p.db.opts.UnsortedLimit {
		p.mu.RUnlock()
		return nil
	}
	snap := append([]*unsorted.Table(nil), p.uns.Tables()...)
	p.mu.RUnlock()
	if h := p.db.testHookMergeBuild; h != nil {
		h(p) // test-only gate: hold the merge "mid-build", no locks held
	}
	return p.mergeTables(snap, false)
}

// mergeTables merges snap (a prefix of the UnsortedStore in flush order)
// and the SortedStore run into a new sorted run: keys are merge-sorted
// with the existing run; values of incoming (hot-tier) records are
// appended to the value log and replaced by pointers; existing pointers
// are carried through untouched.
//
// locked means the caller already holds p.mu for writing and owns the
// whole UnsortedStore (snap is all of it). Otherwise the build runs
// without the lock — the SortedStore and the snapshot are stable because
// structural jobs are serialized by maintMu and flushes only append —
// and the commit re-locks to install the new run, keeping whatever
// tables were flushed after the snapshot.
func (p *partition) mergeTables(snap []*unsorted.Table, locked bool) error {
	if len(snap) == 0 {
		return nil
	}
	db := p.db

	// Separated values land in the shared active log, which can rotate
	// mid-merge; their pointers become visible only at commit. Pin the
	// append window so a concurrent GC in another partition does not
	// collect the logs we are writing into.
	pin := db.vl.Pin()
	defer db.vl.Unpin(pin)

	var iters []recIter
	for _, t := range snap {
		iters = append(iters, t.Reader.NewIterator())
	}
	iters = append(iters, p.srt.NewIterator())
	m := newMergeIter(iters)

	w := p.newTableWriter(p.dir)
	newLogs := map[uint32]bool{}
	var lastKey []byte
	haveLast := false
	for ok := m.First(); ok; ok = m.Next() {
		rec := m.Record()
		if haveLast && codec.Compare(rec.Key, lastKey) == 0 {
			// Shadowed version: if it pointed into a log, that value is
			// now garbage.
			p.accountGarbage(rec)
			continue
		}
		lastKey = append(lastKey[:0], rec.Key...)
		haveLast = true
		switch rec.Kind {
		case record.KindDelete:
			// The SortedStore is the bottom tier: drop the tombstone.
			continue
		case record.KindSetPtr:
			if err := w.add(rec); err != nil {
				return err
			}
		case record.KindSet:
			if db.opts.DisableKVSeparation || len(rec.Value) < db.opts.ValueThreshold {
				if err := w.add(rec); err != nil {
					return err
				}
				continue
			}
			ptr, err := db.vl.AppendFor(p.id, rec.Value)
			if err != nil {
				return err
			}
			newLogs[ptr.LogNum] = true
			if err := w.add(record.Record{
				Key: rec.Key, Seq: rec.Seq, Kind: record.KindSetPtr,
				Value: ptr.Encode(nil),
			}); err != nil {
				return err
			}
		}
	}
	for _, it := range iters {
		if e, ok := it.(interface{ Err() error }); ok {
			if err := e.Err(); err != nil {
				return err
			}
		}
	}
	tables, err := w.finish()
	if err != nil {
		return err
	}
	if err := db.vl.Sync(); err != nil {
		return err
	}

	if !locked {
		p.mu.Lock()
		defer p.mu.Unlock()
	}

	// Log set: keep everything previously referenced (their pointers were
	// carried through) plus the logs the new values landed in.
	var added []uint32
	for n := range newLogs {
		if !p.logs[n] {
			p.logs[n] = true
			added = append(added, n)
		}
	}

	// Tables flushed after the snapshot stay in the UnsortedStore (their
	// local IDs are positional, so removing the merged prefix rebuilds
	// the index over the survivors).
	remaining := append([]*unsorted.Table(nil), p.uns.Tables()[len(snap):]...)
	oldSorted := p.srt.Tables()
	oldCkpt := p.hashCkpt

	// Make the new run's directory entries durable before the commit
	// references them (vl.Sync above covered the value-log directory).
	if err := db.fs.SyncDir(p.dir); err != nil {
		return err
	}
	if err := db.man.Apply(
		manifest.SetUnsorted(p.id, unsortedMetas(remaining)),
		manifest.SetSorted(p.id, tableMetas(tables)),
		manifest.SetLogs(p.id, p.logsSliceLocked()),
		manifest.SetHashCkpt(p.id, 0),
		manifest.LastSeq(db.seq.Load()),
		db.nextFileEdit(),
	); err != nil {
		return err
	}
	db.retainLogs(added)

	// Swap in-memory state, then retire the replaced tables (deleted when
	// the last owner — possibly a pinned snapshot — closes them).
	if err := p.uns.ReplaceTables(remaining); err != nil {
		//unikv:allow(refpair) the manifest above already committed the added logs; the retention mirrors durable state, and releasing it here would let GC delete logs the manifest references
		return err
	}
	p.srt.ReplaceAll(tables)
	p.hashCkpt = 0
	p.flushesSinceCkpt = 0
	for _, t := range snap {
		db.retireTable(p.dir, t.Meta.FileNum, t.Reader)
	}
	for _, t := range oldSorted {
		db.retireTable(p.dir, t.Meta.FileNum, t.Reader)
	}
	if oldCkpt != 0 {
		db.fs.Remove(ckptName(p.dir, oldCkpt))
	}
	db.stats.Merges.Add(1)
	return nil
}

// unsortedMetas extracts manifest metadata from unsorted tables (nil for
// an empty set, matching the manifest's "no tables" encoding).
func unsortedMetas(tables []*unsorted.Table) []manifest.TableMeta {
	if len(tables) == 0 {
		return nil
	}
	out := make([]manifest.TableMeta, len(tables))
	for i, t := range tables {
		out[i] = t.Meta
	}
	return out
}

// accountGarbage records that rec's value (if log-resident) became dead.
func (p *partition) accountGarbage(rec record.Record) {
	if rec.Kind != record.KindSetPtr {
		return
	}
	ptr, err := record.DecodePtr(rec.Value)
	if err != nil {
		return
	}
	p.db.vl.AddGarbage(ptr.LogNum, int64(ptr.Length)+8)
	p.garbageBytes.Add(int64(ptr.Length) + 8)
}

// ---------------------------------------------------------------------------
// Size-based merge (scan optimization): compact all UnsortedStore tables
// into a single sorted table so scans stop probing every overlapping table.
// Values stay inline (hot tier keeps KV together) and tombstones are kept
// (they still shadow the SortedStore).

func (p *partition) scanMergeLocked() error {
	return p.scanMergeTables(p.uns.Tables(), true)
}

// backgroundScanMerge is the scan-merge job (snapshot semantics as in
// backgroundMerge).
func (p *partition) backgroundScanMerge() error {
	p.mu.RLock()
	if p.db.opts.DisableScanMerge || p.uns.NumTables() < p.db.opts.ScanMergeLimit {
		p.mu.RUnlock()
		return nil
	}
	snap := append([]*unsorted.Table(nil), p.uns.Tables()...)
	p.mu.RUnlock()
	return p.scanMergeTables(snap, false)
}

// scanMergeTables compacts snap into a single table that keeps tombstones
// and inline values. In background mode the merged table takes the oldest
// position and later-flushed tables keep shadowing it, preserving
// newest-first probe order.
func (p *partition) scanMergeTables(snap []*unsorted.Table, locked bool) error {
	if len(snap) <= 1 {
		return nil
	}
	db := p.db

	var iters []recIter
	for _, t := range snap {
		iters = append(iters, t.Reader.NewIterator())
	}
	m := newMergeIter(iters)

	num := db.allocFileNum()
	name := tableName(p.dir, num)
	f, err := db.fs.Create(name)
	if err != nil {
		return err
	}
	b := sstable.NewBuilder(f, sstable.BuilderOptions{BlockSize: db.opts.BlockSize})
	var lastKey []byte
	haveLast := false
	for ok := m.First(); ok; ok = m.Next() {
		rec := m.Record()
		if haveLast && codec.Compare(rec.Key, lastKey) == 0 {
			continue
		}
		lastKey = append(lastKey[:0], rec.Key...)
		haveLast = true
		b.Add(rec)
	}
	for _, it := range iters {
		if e, ok := it.(interface{ Err() error }); ok {
			if err := e.Err(); err != nil {
				f.Close()
				return err
			}
		}
	}
	props, err := b.Finish()
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	rf, err := db.fs.Open(name)
	if err != nil {
		return err
	}
	rdr, err := sstable.Open(rf)
	if err != nil {
		rf.Close()
		return err
	}
	rdr.SetCache(db.cache, num)
	meta := manifest.TableMeta{
		FileNum: num, Size: props.Size, Count: props.Count,
		Smallest: props.Smallest, Largest: props.Largest,
		MinSeq: props.MinSeq, MaxSeq: props.MaxSeq,
	}

	if !locked {
		p.mu.Lock()
		defer p.mu.Unlock()
	}
	newSet := append([]*unsorted.Table{{Meta: meta, Reader: rdr}},
		p.uns.Tables()[len(snap):]...)
	oldCkpt := p.hashCkpt
	if err := db.fs.SyncDir(p.dir); err != nil {
		return err
	}
	if err := db.man.Apply(
		manifest.SetUnsorted(p.id, unsortedMetas(newSet)),
		manifest.SetHashCkpt(p.id, 0),
		db.nextFileEdit(),
	); err != nil {
		return err
	}
	if err := p.uns.ReplaceTables(newSet); err != nil {
		return err
	}
	p.hashCkpt = 0
	p.flushesSinceCkpt = 0
	for _, t := range snap {
		db.retireTable(p.dir, t.Meta.FileNum, t.Reader)
	}
	if oldCkpt != 0 {
		db.fs.Remove(ckptName(p.dir, oldCkpt))
	}
	db.stats.ScanMerges.Add(1)
	return nil
}
