package core

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"unikv/internal/vfs"
)

// The corruption sweep is the campaign analogue of the fault sweep
// (`make corruption-sweep`): instead of failing operations it damages
// bytes, at several offsets per file class, and asserts the full
// detect → quarantine → repair → audit pipeline for every point:
//
//  1. the damage is detected (by the background scrub or a foreground
//     read) and quarantines only the affected partitions — the database
//     never enters whole-DB degraded mode for file-scoped damage;
//  2. offline Repair salvages the directory with an explicit loss report;
//  3. the repaired database reopens, passes VerifyIntegrity, and serves
//     every surviving key byte-identical — no silent wrong answers.

// sweepPoint places one persistent flip: a file class and where in the
// file to flip (fraction of its size, clamped inside).
type sweepPoint struct {
	class string // "sst" | "vlog"
	frac  float64
}

func (p sweepPoint) String() string { return fmt.Sprintf("%s@%.2f", p.class, p.frac) }

// TestCorruptionSweepPersistent flips a byte on disk at each sweep point
// (DB closed), then drives detection with the scrub and repairs.
func TestCorruptionSweepPersistent(t *testing.T) {
	points := []sweepPoint{
		{"sst", 0.05}, {"sst", 0.5}, {"sst", 0.95},
		{"vlog", 0.05}, {"vlog", 0.5}, {"vlog", 0.95},
	}
	for _, pt := range points {
		pt := pt
		t.Run(pt.String(), func(t *testing.T) {
			fs := vfs.NewMem()
			n := bigSeed(t, fs)
			var name string
			switch pt.class {
			case "sst":
				pdir := firstFile(t, fs, "db", "p[0-9]*")
				name = firstFile(t, fs, pdir, "*.sst")
			case "vlog":
				name = firstFile(t, fs, filepath.Join("db", "vlog"), "vlog-*.log")
			}
			data, err := fs.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			off := int(float64(len(data)) * pt.frac)
			if off >= len(data) {
				off = len(data) - 1
			}
			flipByte(t, fs, name, off)

			// Phase 1: detection. The scrub must find the damage without any
			// foreground read touching it, and scope the quarantine.
			db, err := Open("db", scrubOpts(fs))
			if err != nil {
				// A flip in a table footer/index can fail recovery itself;
				// that is detection too — skip straight to repair.
				if Classify(err) != ClassCorruption {
					t.Fatalf("open after %s flip: %v", pt, err)
				}
			} else {
				m := waitMetrics(db, func(m StatsSnapshot) bool {
					return m.ScrubCorruptions > 0
				})
				if m.ScrubCorruptions == 0 {
					t.Fatalf("scrub never detected the %s flip (passes=%d)", pt, m.ScrubPasses)
				}
				m = waitMetrics(db, func(m StatsSnapshot) bool { return m.QuarantinedPartitions > 0 })
				if m.QuarantinedPartitions == 0 {
					t.Fatalf("detected corruption never quarantined (%s)", pt)
				}
				if m.Degraded {
					t.Fatalf("file-scoped %s corruption degraded the whole DB: %q", pt, m.DegradedCause)
				}
				if m.QuarantinedPartitions < m.Partitions {
					// Scoping: at least one healthy partition still accepts
					// writes (guaranteed when any partition is unquarantined).
					if _, accepted := probeWrites(t, db, n); accepted == 0 {
						t.Fatalf("no partition accepted writes after scoped quarantine (%s)", pt)
					}
				}
				if err := db.Close(); err != nil {
					t.Fatal(err)
				}
			}

			// Phase 2: offline repair with an explicit loss report.
			report, err := Repair("db", smallOpts(fs))
			if err != nil {
				t.Fatalf("repair after %s flip: %v", pt, err)
			}
			if !report.DataLost() && len(report.LogsTruncated) == 0 {
				t.Fatalf("repair found nothing to fix after %s flip:\n%s", pt, report)
			}

			// Phase 3: audit — reopen clean, every surviving key intact.
			intact, lost := reopenAndAudit(t, fs, n)
			if intact == 0 {
				t.Fatalf("repair lost everything for one flipped byte (%s)", pt)
			}
			t.Logf("%s: %d intact, %d lost\n%s", pt, intact, lost, report)
		})
	}
}

// TestCorruptionSweepReadTime arms FailFS CorruptPlans — strided byte
// flips applied at read time, per file class — while the database runs:
// the scrub must detect and quarantine, and after disarming (the disk
// bytes were never touched) a reopened database must be fully intact.
func TestCorruptionSweepReadTime(t *testing.T) {
	classes := []struct {
		name    string
		pattern string
	}{
		{"sst", "*.sst"},
		{"vlog", "vlog-*.log"},
	}
	for _, c := range classes {
		c := c
		t.Run(c.name, func(t *testing.T) {
			mem := vfs.NewMem()
			n := bigSeed(t, mem)
			ffs := vfs.NewFail(mem)
			ffs.ArmCorrupt(vfs.CorruptPlan{
				Pattern: c.pattern,
				Start:   64,
				Stride:  512,
				Count:   8,
			})
			db, err := Open("db", scrubOpts(ffs))
			if err != nil {
				if Classify(err) != ClassCorruption {
					t.Fatalf("open under read-time corruption: %v", err)
				}
				// Recovery itself read a corrupted range — detection at open.
				ffs.DisarmCorrupt()
			} else {
				m := waitMetrics(db, func(m StatsSnapshot) bool { return m.ScrubCorruptions > 0 })
				if m.ScrubCorruptions == 0 {
					t.Fatalf("scrub missed read-time %s corruption (reads corrupted: %d)",
						c.name, ffs.CorruptedReads())
				}
				if ffs.CorruptedReads() == 0 {
					t.Fatal("corruption counted but no read was actually corrupted")
				}
				waitMetrics(db, func(m StatsSnapshot) bool { return m.QuarantinedPartitions > 0 })
				if m = db.Metrics(); m.Degraded {
					t.Fatalf("read-time %s corruption degraded the whole DB: %q", c.name, m.DegradedCause)
				}
				ffs.DisarmCorrupt()
				if err := db.Close(); err != nil {
					t.Fatal(err)
				}
			}

			// The plan never touched disk: a clean reopen must verify and
			// serve everything (quarantine does not persist across open).
			db2, err := Open("db", bgOpts(mem))
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			if err := db2.VerifyIntegrity(); err != nil {
				t.Fatalf("disk bytes damaged by a read-time plan: %v", err)
			}
			for i := 0; i < n; i += 37 {
				v, err := db2.Get(key(i))
				if err != nil || !bytes.Equal(v, val(i)) {
					t.Fatalf("key %d wrong after disarm: %v", i, err)
				}
			}
			if m := db2.Metrics(); m.QuarantinedPartitions != 0 {
				t.Fatalf("quarantine leaked across reopen: %d", m.QuarantinedPartitions)
			}
		})
	}
}

// TestCorruptionSweepTornTail truncates the highest-offset value-log frame
// mid-frame (a torn tail, the crash signature) and asserts repair restores
// a clean, fully verifiable database with the tail's loss reported.
func TestCorruptionSweepTornTail(t *testing.T) {
	fs := vfs.NewMem()
	n := bigSeed(t, fs)
	name := firstFile(t, fs, filepath.Join("db", "vlog"), "vlog-*.log")
	data, err := fs.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 16 {
		t.Skipf("log too small to tear: %d bytes", len(data))
	}
	if err := fs.WriteFile(name, data[:len(data)-7]); err != nil {
		t.Fatal(err)
	}
	report, err := Repair("db", smallOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.LogsTruncated) != 1 {
		t.Fatalf("torn tail not truncated:\n%s", report)
	}
	intact, lost := reopenAndAudit(t, fs, n)
	if intact == 0 {
		t.Fatal("torn tail repair lost everything")
	}
	_ = lost // the torn frame's key is allowed to be gone — it is reported
}
