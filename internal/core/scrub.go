package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"unikv/internal/sstable"
)

// Background integrity scrub (Options.ScrubInterval > 0). UniKV has no
// Bloom filters and spreads cold data across per-partition tables plus
// shared value logs, so a latent bad block can sit unnoticed until a read
// happens to land on it — at which point the damage may already have been
// compacted into fresh files. The scrub closes that window: every
// ScrubInterval it re-reads and checksum-verifies every table block and
// every value-log frame, at most ScrubBytesPerSec bytes per second, and
// corruption it finds quarantines exactly the affected partitions
// (quarantine.go) while the rest of the DB keeps serving.
//
// Concurrency contract: a table scrub pins each reader via Ref under the
// partition's read lock (the snapshot capture pattern), so a concurrent
// merge retiring the table closes nothing out from under the verify; a
// log scrub holds a logRefs reference, so GC cannot delete the file
// mid-walk. The scrub never takes maintMu and never mutates — it can
// overlap any maintenance job.
//
// Scheduling: with a worker pool, each partition's table scrub is a
// jobScrub task (deduplicated like any other kind, visible in
// PendingJobs); in inline mode the driver goroutine runs them itself
// through its own runWithRetry. Value logs are shared across partitions,
// so the driver scrubs the union of referenced logs once per pass rather
// than once per owner.

// errScrubStop aborts an in-flight scrub when the DB is closing. It is
// filtered out before errors escalate (a close is not a failure).
var errScrubStop = errors.New("unikv: scrub interrupted by close")

type scrubber struct {
	db     *DB
	stopCh chan struct{}
	wg     sync.WaitGroup

	// Rate limiter: reads reserve their byte cost in a virtual timeline;
	// next is when the bucket allows the following read. Shared by every
	// concurrent scrub job so the configured rate bounds the total.
	limMu sync.Mutex
	next  time.Time
}

func newScrubber(db *DB) *scrubber {
	s := &scrubber{db: db, stopCh: make(chan struct{})}
	s.wg.Add(1)
	go s.loop()
	return s
}

// close stops the driver and unblocks every in-flight rate-limit wait.
func (s *scrubber) close() {
	close(s.stopCh)
	s.wg.Wait()
}

func (s *scrubber) loop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.db.opts.ScrubInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-ticker.C:
		}
		s.pass()
	}
}

// pass starts one full scrub round: every partition's tables, then the
// union of referenced value logs.
func (s *scrubber) pass() {
	db := s.db
	if db.closed.Load() || db.degradedErr() != nil {
		return
	}
	db.stats.ScrubPasses.Add(1)
	for _, p := range db.partitions() {
		if p.quarantine.Load() != nil {
			continue
		}
		if db.sched != nil {
			db.sched.enqueue(p, jobScrub)
		} else {
			s.runWithRetry(p)
		}
	}
	s.scrubLogs()
}

// runWithRetry executes one partition's table scrub inline (no worker
// pool), retrying transient failures with the scheduler's backoff policy
// and escalating terminal failures through jobFailed — exactly what a
// jobScrub task gets from the pool. The name is load-bearing: the
// errclass checker roots its reachability walk at functions named
// runWithRetry, so every error constructed on the scrub path is checked
// for an explicit class.
func (s *scrubber) runWithRetry(p *partition) {
	db := s.db
	delay := db.opts.RetryBaseDelay
	for attempt := 0; ; attempt++ {
		err := db.scrubPartitionTables(p)
		if err == nil {
			return
		}
		if Classify(err) != ClassTransient || attempt >= db.opts.JobRetries {
			db.stats.BackgroundErrors.Add(1)
			db.jobFailed(task{p: p, kind: jobScrub}, err)
			return
		}
		db.stats.BackgroundRetries.Add(1)
		d := delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
		select {
		case <-s.stopCh:
			return
		case <-time.After(d):
		}
		if delay *= 2; delay > db.opts.RetryMaxDelay {
			delay = db.opts.RetryMaxDelay
		}
	}
}

// scrubTable names one pinned table during a scrub.
type scrubTable struct {
	tier string
	num  uint64
	r    *sstable.Reader
}

// closeScrubTables releases the scrub's table pins on every exit path.
func closeScrubTables(tables []scrubTable) {
	for _, t := range tables {
		t.r.Close()
	}
}

// scrubPartitionTables checksum-verifies every table of p block by block,
// pacing reads through the rate limiter. It is the jobScrub body: called
// from the scheduler's run (under its runWithRetry) or from the inline
// driver's. A close mid-scrub returns nil — stopping is not a failure.
func (db *DB) scrubPartitionTables(p *partition) error {
	s := db.scrub
	if s == nil {
		return nil
	}
	// Pin the current table set under the read lock (snapshot.go's capture
	// pattern): each Ref keeps the reader and its file alive even if a
	// concurrent merge/GC retires the table before the verify reaches it.
	p.mu.RLock()
	var tables []scrubTable
	for _, t := range p.uns.Tables() {
		t.Reader.Ref()
		tables = append(tables, scrubTable{tier: "unsorted", num: t.Meta.FileNum, r: t.Reader})
	}
	for _, t := range p.srt.Tables() {
		t.Reader.Ref()
		tables = append(tables, scrubTable{tier: "sorted", num: t.Meta.FileNum, r: t.Reader})
	}
	p.mu.RUnlock()
	defer closeScrubTables(tables)
	for _, t := range tables {
		for i := 0; i < t.r.NumBlocks(); i++ {
			n, err := t.r.VerifyBlock(i)
			if err != nil {
				db.stats.ScrubCorruptions.Add(1)
				return fmt.Errorf("scrub partition %d %s table %d: %w", p.id, t.tier, t.num, err)
			}
			db.stats.ScrubBytes.Add(n)
			if err := s.pace(n); err != nil {
				return nil // closing
			}
		}
		db.stats.ScrubTables.Add(1)
	}
	return nil
}

// scrubLogs verifies every value log referenced by any partition,
// including the active log's sealed prefix (the reconciled frame boundary
// is immutable, so the walk cannot race appends). Corruption quarantines
// every partition holding pointers into the bad log; a transient read
// error just skips the log until the next pass.
func (s *scrubber) scrubLogs() {
	db := s.db
	logs := map[uint32]bool{}
	for _, p := range db.partitions() {
		p.mu.RLock()
		for n := range p.logs {
			logs[n] = true
		}
		p.mu.RUnlock()
	}
	activeNum, activeOff, hasActive := db.vl.ActiveBound()
	for n := range logs {
		if db.closed.Load() {
			return
		}
		// Hold a log reference across the walk so GC cannot delete the file
		// mid-read; owners hold the baseline references, so releasing only
		// removes the log if every owner moved on while we scanned.
		db.retainLogs([]uint32{n})
		limit := int64(-1)
		if hasActive && n == activeNum {
			limit = activeOff
		}
		_, off, err := db.vl.VerifyLogPrefix(n, limit, func(frameBytes int64) error {
			db.stats.ScrubBytes.Add(frameBytes)
			return s.pace(frameBytes)
		})
		db.releaseLogs([]uint32{n})
		switch {
		case err == nil:
			db.stats.ScrubLogs.Add(1)
		case errors.Is(err, errScrubStop):
			return
		case Classify(err) == ClassCorruption:
			db.stats.ScrubCorruptions.Add(1)
			lerr := logCorruptionError{log: n, err: err}
			db.quarantineLog(n, fmt.Sprintf("scrub: value log %d (valid prefix %d bytes)", n, off), lerr)
		default:
			// Transient read failure: leave the log for the next pass.
		}
	}
}

// pace charges n bytes against the scrub rate limit, sleeping as needed.
// It returns errScrubStop when the scrubber is shutting down so callers
// abort instead of pacing through close.
func (s *scrubber) pace(n int64) error {
	rate := s.db.opts.ScrubBytesPerSec
	if rate <= 0 { // unlimited: only honor the stop signal
		select {
		case <-s.stopCh:
			return errScrubStop
		default:
			return nil
		}
	}
	s.limMu.Lock()
	now := time.Now()
	if s.next.Before(now) {
		s.next = now
	}
	wake := s.next
	s.next = s.next.Add(time.Duration(float64(n) / float64(rate) * float64(time.Second)))
	s.limMu.Unlock()
	d := time.Until(wake)
	if d <= 0 {
		select {
		case <-s.stopCh:
			return errScrubStop
		default:
			return nil
		}
	}
	select {
	case <-s.stopCh:
		return errScrubStop
	case <-time.After(d):
		return nil
	}
}
