package core

import (
	"unikv/internal/record"
)

// Batch collects writes to apply together. All operations destined for the
// same partition are committed with a single WAL record (and a single
// fsync under SyncWrites), so they become durable atomically within that
// partition; operations that straddle a partition boundary commit
// per-partition, in key order (partitions have independent WALs by
// design — the paper's partitions are fully independent).
type Batch struct {
	ops []record.Record
}

// NewBatch returns an empty batch.
func NewBatch() *Batch { return &Batch{} }

// Put queues an insert/overwrite. Key and value are copied (once, into a
// single allocation; the engine never copies them again on the write path).
func (b *Batch) Put(key, value []byte) {
	b.ops = append(b.ops, copyRecord(key, value, 0, record.KindSet))
}

// Delete queues a tombstone. The key is copied.
func (b *Batch) Delete(key []byte) {
	b.ops = append(b.ops, record.Record{
		Key:  append([]byte(nil), key...),
		Kind: record.KindDelete,
	})
}

// Len returns the number of queued operations.
func (b *Batch) Len() int { return len(b.ops) }

// Append queues every operation of o at the end of b, preserving order.
// o is unchanged; the operations' key/value buffers are shared, which is
// safe because Put/Delete copy on entry. This is the group-commit
// primitive: a coalescer merges many callers' batches into one and pays a
// single commit (one WAL record and fsync per partition) for all of them.
func (b *Batch) Append(o *Batch) { b.ops = append(b.ops, o.ops...) }

// Reset empties the batch for reuse.
func (b *Batch) Reset() { b.ops = b.ops[:0] }

// ApplyBatch applies every operation in the batch. Operations are
// sequenced in queue order; per-key ordering is always preserved (a key
// maps to exactly one partition).
func (db *DB) ApplyBatch(b *Batch) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if err := db.degradedErr(); err != nil {
		return err
	}
	for i := range b.ops {
		op := &b.ops[i]
		if len(op.Key) == 0 || len(op.Key) >= maxKeyLen || len(op.Value) >= maxValueLen {
			return ErrKeyTooLarge
		}
	}
	for i := range b.ops {
		if b.ops[i].Kind == record.KindDelete {
			db.stats.Deletes.Add(1)
		} else {
			db.stats.Puts.Add(1)
		}
	}
	pending := b.ops
	retries := 0
	for len(pending) > 0 {
		p := db.partitionFor(pending[0].Key)
		if err := db.throttle(p); err != nil {
			return err
		}
		p.mu.Lock()
		if !p.covers(pending[0].Key) {
			p.mu.Unlock()
			if retries++; retries >= maxRouteRetries {
				return classified(ErrRouterInconsistent)
			}
			continue // split raced; re-route
		}
		if err := p.quarantineErr(); err != nil {
			p.mu.Unlock()
			return err
		}
		retries = 0 // progress on a partition resets the budget
		// Split pending into this partition's ops (order preserved) and
		// the rest.
		var mine, rest []record.Record
		for _, op := range pending {
			if p.covers(op.Key) {
				mine = append(mine, op)
			} else {
				rest = append(rest, op)
			}
		}
		// Sequence this partition's chunk under its lock (see apply: a
		// snapshot pin loads db.seq under every partition lock, so writes
		// must not carry a seq before they are visible in a memtable).
		// Per-key order is preserved — a key maps to exactly one partition
		// and mine keeps queue order.
		for i := range mine {
			mine[i].Seq = db.seq.Add(1)
		}
		wantSplit, err := p.putBatch(mine)
		p.mu.Unlock()
		// Hot-ring staleness protocol: every written key is invalidated
		// after the batch applied, before it is acknowledged (also on
		// error — a partial application must not leave hot entries).
		for i := range mine {
			db.hot.Invalidate(mine[i].Key)
		}
		if err != nil {
			return classified(err)
		}
		if wantSplit {
			if err := db.splitPartition(p); err != nil {
				return classified(err)
			}
		}
		if db.sched != nil {
			db.checkMaintenance(p)
		}
		pending = rest
	}
	return nil
}
