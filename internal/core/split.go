package core

import (
	"unikv/internal/codec"
	"unikv/internal/manifest"
	"unikv/internal/record"
)

// splitPartition implements dynamic range partitioning (paper §Design):
// when a partition reaches PartitionSizeLimit it is divided into two
// partitions at the median key. The partition is locked for the duration —
// writes to its range pause (other partitions proceed).
//
// Keys are split eagerly: the whole partition is merge-sorted (exactly like
// a merge) and each half's keys+pointers are written to its own
// SortedStore. Values are split lazily: values still resident in the
// UnsortedStore are appended to each child's fresh log during the split
// merge; values already in logs stay put — both children reference the old
// (now shared) logs, and each child's next GC rewrites its live values into
// its own logs (releaseLogs deletes a shared log once both sides moved on).
func (db *DB) splitPartition(parent *partition) error {
	db.router.Lock()
	defer db.router.Unlock()
	parent.mu.Lock()
	defer parent.mu.Unlock()

	if db.opts.DisablePartitioning {
		return nil
	}
	// Re-check under the lock: another trigger may have split already.
	if parent.sizeLocked() < db.opts.PartitionSizeLimit {
		return nil
	}

	// Step 1: flush buffered writes so the merge stream sees everything.
	// In background mode frozen memtables may still be queued; the caller
	// holds flushMu, so no flush job races this drain.
	if err := parent.drainImmLocked(); err != nil {
		return err
	}
	if err := parent.flushLocked(); err != nil {
		return err
	}

	// Pass 1: count output records to locate the median.
	total, err := parent.countMergedLocked()
	if err != nil {
		return err
	}
	if total < 2 {
		return nil
	}
	half := total / 2

	// Allocate the right child.
	state := db.man.State()
	childID := state.NextPartID
	childDir := db.partDir(childID)
	if err := db.fs.MkdirAll(childDir); err != nil {
		return err
	}
	child := &partition{db: db, id: childID, dir: childDir, upper: parent.upper}
	if err := child.initEmptyStores(); err != nil {
		return err
	}
	child.uns.DisableIndex = db.opts.DisableHashIndex

	// Pass 2: stream the merge, writing the first half to the parent's new
	// run and the rest to the child's, with fresh logs for unsorted-tier
	// values.
	leftLog, err := db.vl.NewDedicatedLog(parent.id)
	if err != nil {
		return err
	}
	rightLog, err := db.vl.NewDedicatedLog(childID)
	if err != nil {
		return err
	}
	leftW := parent.newTableWriter(parent.dir)
	rightW := child.newTableWriter(childDir)

	m := parent.newFullMergeIterLocked()
	var lastKey []byte
	haveLast := false
	idx := 0
	var boundary []byte
	for ok := m.First(); ok; ok = m.Next() {
		rec := m.Record()
		if haveLast && codec.Compare(rec.Key, lastKey) == 0 {
			parent.accountGarbage(rec)
			continue
		}
		lastKey = append(lastKey[:0], rec.Key...)
		haveLast = true
		if rec.Kind == record.KindDelete {
			continue
		}
		right := idx >= half
		if right && boundary == nil {
			boundary = append([]byte(nil), rec.Key...)
		}
		idx++

		w, lg := leftW, leftLog
		if right {
			w, lg = rightW, rightLog
		}
		switch rec.Kind {
		case record.KindSetPtr:
			if err := w.add(rec); err != nil {
				return err
			}
		case record.KindSet:
			if db.opts.DisableKVSeparation || len(rec.Value) < db.opts.ValueThreshold {
				if err := w.add(rec); err != nil {
					return err
				}
				continue
			}
			ptr, err := lg.Append(rec.Value)
			if err != nil {
				return err
			}
			if err := w.add(record.Record{
				Key: rec.Key, Seq: rec.Seq, Kind: record.KindSetPtr,
				Value: ptr.Encode(nil),
			}); err != nil {
				return err
			}
		}
	}
	leftTables, err := leftW.finish()
	if err != nil {
		return err
	}
	rightTables, err := rightW.finish()
	if err != nil {
		return err
	}
	leftHasLog, err := leftLog.Finish()
	if err != nil {
		return err
	}
	rightHasLog, err := rightLog.Finish()
	if err != nil {
		return err
	}
	if boundary == nil {
		// Everything deduplicated/deleted into fewer than half records:
		// nothing to split after all.
		boundary = append([]byte(nil), lastKey...)
	}

	// Log sets: each child references all previously shared logs plus its
	// own fresh one.
	shared := parent.logsSliceLocked()
	leftLogs := map[uint32]bool{}
	rightLogs := map[uint32]bool{}
	for _, n := range shared {
		leftLogs[n] = true
		rightLogs[n] = true
	}
	if leftHasLog {
		leftLogs[leftLog.Num()] = true
	}
	if rightHasLog {
		rightLogs[rightLog.Num()] = true
	}

	// Child WAL.
	var childEdits []manifest.Edit
	if !db.opts.DisableWAL {
		if err := child.newWALLocked(); err != nil {
			return err
		}
		childEdits = append(childEdits, manifest.SetWAL(childID, child.walNum))
	}

	oldUnsorted := parent.uns.Tables()
	oldSorted := parent.srt.Tables()
	oldCkpt := parent.hashCkpt

	logsOf := func(set map[uint32]bool) []uint32 {
		out := make([]uint32, 0, len(set))
		for n := range set {
			out = append(out, n)
		}
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j] < out[j-1]; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		return out
	}

	edits := []manifest.Edit{
		manifest.AddPartition(childID, boundary),
		manifest.NextPart(childID + 1),
		manifest.SetUnsorted(parent.id, nil),
		manifest.SetSorted(parent.id, tableMetas(leftTables)),
		manifest.SetHashCkpt(parent.id, 0),
		manifest.SetLogs(parent.id, logsOf(leftLogs)),
		manifest.SetSorted(childID, tableMetas(rightTables)),
		manifest.SetLogs(childID, logsOf(rightLogs)),
		manifest.LastSeq(db.seq.Load()),
		db.nextFileEdit(),
	}
	edits = append(edits, childEdits...)
	// Both children's new tables must be findable after a crash before the
	// manifest references them (the vlog and WAL directory entries were
	// synced by DedicatedLog.Finish and newWALLocked above).
	if err := db.fs.SyncDir(parent.dir); err != nil {
		return err
	}
	if err := db.fs.SyncDir(childDir); err != nil {
		return err
	}
	if err := db.man.Apply(edits...); err != nil {
		return err
	}

	// Reference accounting: shared logs gain the child's reference; the
	// fresh logs gain their single owner.
	db.retainLogs(shared)
	if leftHasLog {
		db.retainLogs([]uint32{leftLog.Num()})
	}
	if rightHasLog {
		db.retainLogs([]uint32{rightLog.Num()})
	}

	// Install the in-memory split.
	parent.uns.Reset()
	parent.srt.ReplaceAll(leftTables)
	parent.hashCkpt = 0
	parent.flushesSinceCkpt = 0
	parent.upper = boundary
	parent.logs = leftLogs
	parent.garbageBytes.Store(parent.garbageBytes.Load() / 2)
	child.lower = boundary
	child.srt.ReplaceAll(rightTables)
	child.logs = rightLogs
	child.garbageBytes.Store(parent.garbageBytes.Load())

	// Insert the child after the parent in router order.
	parts := db.router.parts
	pos := 0
	for i, q := range parts {
		if q == parent {
			pos = i + 1
			break
		}
	}
	parts = append(parts, nil)
	copy(parts[pos+1:], parts[pos:])
	parts[pos] = child
	db.router.parts = parts

	// Drop the handed-over range [boundary, child.upper) from the hot ring:
	// its heat belongs to the child now, and a ranged handoff must never
	// leave hits behind (hotring.writerMu is the last lock rank, safe under
	// router.mu + parent.mu held here).
	db.hot.InvalidateRange(boundary, child.upper)

	// Retire replaced tables (deleted once the last owner — possibly a
	// pinned snapshot — closes them): a split invalidates nothing a pinned
	// reader can still reach.
	for _, t := range oldUnsorted {
		db.retireTable(parent.dir, t.Meta.FileNum, t.Reader)
	}
	for _, t := range oldSorted {
		db.retireTable(parent.dir, t.Meta.FileNum, t.Reader)
	}
	if oldCkpt != 0 {
		db.fs.Remove(ckptName(parent.dir, oldCkpt))
	}
	db.stats.Splits.Add(1)
	return nil
}

// newFullMergeIterLocked builds the merge stream over the partition's
// whole on-disk state (all unsorted tables + the sorted run).
func (p *partition) newFullMergeIterLocked() *mergeIter {
	var iters []recIter
	for _, t := range p.uns.Tables() {
		iters = append(iters, t.Reader.NewIterator())
	}
	iters = append(iters, p.srt.NewIterator())
	return newMergeIter(iters)
}

// countMergedLocked counts the records a full merge would output (unique
// live keys), for median finding.
func (p *partition) countMergedLocked() (int, error) {
	m := p.newFullMergeIterLocked()
	var lastKey []byte
	haveLast := false
	n := 0
	for ok := m.First(); ok; ok = m.Next() {
		rec := m.Record()
		if haveLast && codec.Compare(rec.Key, lastKey) == 0 {
			continue
		}
		lastKey = append(lastKey[:0], rec.Key...)
		haveLast = true
		if rec.Kind == record.KindDelete {
			continue
		}
		n++
	}
	return n, nil
}
