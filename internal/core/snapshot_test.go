package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"unikv/internal/vfs"
)

// dumpSnap returns the snapshot's full contents in key order.
func dumpSnap(t *testing.T, s *Snapshot) []KV {
	t.Helper()
	kvs, err := s.Scan(nil, []byte("\xff\xff\xff\xff"), 0)
	if err != nil {
		t.Fatalf("snapshot dump: %v", err)
	}
	return kvs
}

// expectDump checks a snapshot dump against a model map.
func expectDump(t *testing.T, got []KV, model map[string]string) {
	t.Helper()
	if len(got) != len(model) {
		t.Fatalf("snapshot dump has %d keys, model has %d", len(got), len(model))
	}
	for _, kv := range got {
		if model[string(kv.Key)] != string(kv.Value) {
			t.Fatalf("snapshot %q = %q, model %q", kv.Key, kv.Value, model[string(kv.Key)])
		}
	}
}

// sameKVs asserts two dumps are byte-identical.
func sameKVs(t *testing.T, what string, a, b []KV) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: lengths diverge: %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Value, b[i].Value) {
			t.Fatalf("%s: [%d] diverges: %q=%q vs %q=%q",
				what, i, a[i].Key, a[i].Value, b[i].Key, b[i].Value)
		}
	}
}

// TestSnapshotPinsPointInTime pins the basic MVCC semantics: a snapshot
// observes exactly the writes sequenced at or before NewSnapshot — later
// overwrites, deletes, and inserts are invisible — while the live handle
// keeps seeing the latest state.
func TestSnapshotPinsPointInTime(t *testing.T) {
	db := openSmall(t, vfs.NewMem())
	defer db.Close()

	for i := 0; i < 200; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Delete(key(5)); err != nil {
		t.Fatal(err)
	}

	s, err := db.NewSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if m := db.Metrics(); m.SnapshotsOpen != 1 || m.SnapshotMinSeq != s.Seq() {
		t.Fatalf("gauges: open=%d minseq=%d, want 1/%d", m.SnapshotsOpen, m.SnapshotMinSeq, s.Seq())
	}

	// Mutate heavily after the pin: overwrites, a delete, a fresh key.
	for i := 0; i < 200; i++ {
		if err := db.Put(key(i), []byte(fmt.Sprintf("overwritten-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Delete(key(7)); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("zzz-post-pin"), []byte("nope")); err != nil {
		t.Fatal(err)
	}

	if _, err := s.Get(key(5)); err != ErrNotFound {
		t.Fatalf("pre-pin delete must stay deleted in snapshot: %v", err)
	}
	if got, err := s.Get(key(7)); err != nil || !bytes.Equal(got, val(7)) {
		t.Fatalf("post-pin delete leaked into snapshot: %q, %v", got, err)
	}
	if got, err := s.Get(key(3)); err != nil || !bytes.Equal(got, val(3)) {
		t.Fatalf("post-pin overwrite leaked into snapshot: %q, %v", got, err)
	}
	if _, err := s.Get([]byte("zzz-post-pin")); err != ErrNotFound {
		t.Fatalf("post-pin insert visible in snapshot: %v", err)
	}
	if v, err := db.Get(key(3)); err != nil || string(v) != "overwritten-3" {
		t.Fatalf("live read stale: %q, %v", v, err)
	}

	kvs := dumpSnap(t, s)
	if len(kvs) != 199 { // 200 keys minus the pre-pin delete; no post-pin insert
		t.Fatalf("snapshot scan sees %d keys, want 199", len(kvs))
	}
	for _, kv := range kvs {
		if strings.HasPrefix(string(kv.Value), "overwritten") || string(kv.Key) == "zzz-post-pin" {
			t.Fatalf("snapshot scan leaked post-pin state: %q=%q", kv.Key, kv.Value)
		}
	}
}

// TestSnapshotStormConsistency is the acceptance storm: a snapshot taken
// before a 10k-op write/delete storm — with background workers flushing,
// merging, splitting, and GCing throughout — must return byte-identical
// Get and Scan results after the storm.
func TestSnapshotStormConsistency(t *testing.T) {
	leakCheck(t)
	opts := smallOpts(vfs.NewMem())
	opts.PartitionSizeLimit = 16 << 10 // low enough that the storm splits
	opts.GCRatio = 0.05                // and GCs
	opts.BackgroundWorkers = 2
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	rnd := rand.New(rand.NewSource(11))
	k := func(i int) string { return fmt.Sprintf("key-%03d", i) }
	model := map[string]string{}
	for i := 0; i < 300; i++ {
		kk := k(i % 200)
		vv := fmt.Sprintf("pre-%d-%s", i, strings.Repeat("x", 100+rnd.Intn(100)))
		if err := db.Put([]byte(kk), []byte(vv)); err != nil {
			t.Fatal(err)
		}
		model[kk] = vv
	}
	for i := 0; i < 40; i++ {
		kk := k(rnd.Intn(200))
		if err := db.Delete([]byte(kk)); err != nil {
			t.Fatal(err)
		}
		delete(model, kk)
	}

	s, err := db.NewSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	before := dumpSnap(t, s)
	expectDump(t, before, model) // correct at pin time, not merely stable

	for op := 0; op < 10000; op++ {
		switch rnd.Intn(16) {
		case 0:
			if err := db.Delete([]byte(k(rnd.Intn(200)))); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
		default:
			vv := fmt.Sprintf("storm-%d-%s", op, strings.Repeat("y", 80+rnd.Intn(120)))
			if err := db.Put([]byte(k(rnd.Intn(200))), []byte(vv)); err != nil {
				t.Fatal(err)
			}
		}
		if op%2500 == 2499 {
			if err := db.CompactAll(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}

	m := db.Metrics()
	if m.Flushes == 0 || m.Merges == 0 || m.Splits == 0 || m.GCs == 0 {
		t.Fatalf("storm did not storm: flushes=%d merges=%d splits=%d gcs=%d",
			m.Flushes, m.Merges, m.Splits, m.GCs)
	}

	after := dumpSnap(t, s)
	sameKVs(t, "snapshot scan before vs after storm", before, after)
	for kk, vv := range model {
		got, err := s.Get([]byte(kk))
		if err != nil || string(got) != vv {
			t.Fatalf("snapshot Get(%s) after storm: %q, %v (want %q)", kk, got, err, vv)
		}
	}
	for i := 0; i < 200; i++ {
		if _, ok := model[k(i)]; ok {
			continue
		}
		if _, err := s.Get([]byte(k(i))); err != ErrNotFound {
			t.Fatalf("snapshot Get(%s): deleted-at-pin key resurfaced: %v", k(i), err)
		}
	}
}

// TestSnapshotFencesValueLogGC drives value-log GC hard while a snapshot
// holds pointers into the collected logs: the log refcount must keep every
// pinned segment alive, so the snapshot's pointer dereferences never fail
// and its values never change.
func TestSnapshotFencesValueLogGC(t *testing.T) {
	opts := smallOpts(vfs.NewMem())
	opts.GCRatio = 0.05
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	model := map[string]string{}
	for i := 0; i < 150; i++ {
		kk := fmt.Sprintf("key-%03d", i)
		vv := fmt.Sprintf("v0-%d-%s", i, strings.Repeat("z", 200))
		if err := db.Put([]byte(kk), []byte(vv)); err != nil {
			t.Fatal(err)
		}
		model[kk] = vv
	}
	if err := db.CompactAll(); err != nil { // values land in value logs
		t.Fatal(err)
	}

	s, err := db.NewSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ref := dumpSnap(t, s)
	expectDump(t, ref, model)

	// Churn: every round overwrites every key and compacts, making the
	// previous round's log bytes garbage; GC rewrites live values and wants
	// to drop the old segments — exactly the ones the snapshot still needs.
	for round := 1; round <= 6; round++ {
		for i := 0; i < 150; i++ {
			kk := fmt.Sprintf("key-%03d", i)
			vv := fmt.Sprintf("v%d-%d-%s", round, i, strings.Repeat("w", 200))
			if err := db.Put([]byte(kk), []byte(vv)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.CompactAll(); err != nil {
			t.Fatal(err)
		}
	}
	if m := db.Metrics(); m.GCs == 0 {
		t.Fatalf("churn never triggered GC (garbage accounting broken?): %+v", m)
	}

	after := dumpSnap(t, s)
	sameKVs(t, "snapshot across GC churn", ref, after)

	// Releasing the snapshot lets the next GC actually reclaim.
	logsPinned := len(db.vl.LogNums())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if logsAfter := len(db.vl.LogNums()); logsAfter > logsPinned {
		t.Fatalf("closing the snapshot grew the log set: %d -> %d", logsPinned, logsAfter)
	}
	if _, err := s.Get([]byte("key-000")); err != ErrSnapshotClosed {
		t.Fatalf("closed snapshot Get: %v, want ErrSnapshotClosed", err)
	}
}

// TestCloseRefusesWithOpenSnapshot is the S3 regression: DB.Close racing
// live snapshot reads must not unmap pinned resources — it returns
// ErrSnapshotOpen and the snapshot keeps reading — and succeeds once the
// last handle closes. Run under -race this also proves the closed
// transition cannot interleave with NewSnapshot or pinned reads.
func TestCloseRefusesWithOpenSnapshot(t *testing.T) {
	db := openSmall(t, vfs.NewMem())
	for i := 0; i < 300; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := db.NewSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	if err := db.Close(); err != ErrSnapshotOpen {
		t.Fatalf("Close with open snapshot: %v, want ErrSnapshotOpen", err)
	}

	// Readers hammer the snapshot while Close keeps being refused.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				n := rnd.Intn(300)
				if got, err := s.Get(key(n)); err != nil || !bytes.Equal(got, val(n)) {
					t.Errorf("snapshot Get during Close attempts: %q, %v", got, err)
					return
				}
				if _, err := s.Scan(key(n), nil, 5); err != nil {
					t.Errorf("snapshot Scan during Close attempts: %v", err)
					return
				}
			}
		}(int64(g))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := db.Close(); err != ErrSnapshotOpen {
				t.Errorf("concurrent Close: %v, want ErrSnapshotOpen", err)
				return
			}
		}
	}()
	wg.Wait()

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close after snapshot released: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
	if _, err := db.NewSnapshot(); err != ErrClosed {
		t.Fatalf("NewSnapshot on closed DB: %v, want ErrClosed", err)
	}
}

// TestBackupSurvivesCrashAndVerifies proves the backup is a durable,
// self-contained point-in-time checkpoint: writes land (some left
// unflushed so the WAL cut is exercised), Backup runs, MORE writes land,
// then the machine "loses power". The backup directory must reopen clean,
// pass VerifyIntegrity, and contain exactly the backup-time state.
func TestBackupSurvivesCrashAndVerifies(t *testing.T) {
	fs := vfs.NewMem()
	opts := smallOpts(fs)
	opts.PartitionSizeLimit = 16 << 10
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}

	rnd := rand.New(rand.NewSource(23))
	model := map[string]string{}
	for i := 0; i < 600; i++ {
		kk := fmt.Sprintf("key-%03d", rnd.Intn(250))
		vv := fmt.Sprintf("val-%d-%s", i, strings.Repeat("b", 100+rnd.Intn(100)))
		if err := db.Put([]byte(kk), []byte(vv)); err != nil {
			t.Fatal(err)
		}
		model[kk] = vv
	}
	for i := 0; i < 40; i++ {
		kk := fmt.Sprintf("key-%03d", rnd.Intn(250))
		if err := db.Delete([]byte(kk)); err != nil {
			t.Fatal(err)
		}
		delete(model, kk)
	}
	// A tail of writes deliberately left in the memtable: the backup's WAL
	// cut must carry them.
	for i := 0; i < 20; i++ {
		kk := fmt.Sprintf("tail-%02d", i)
		vv := fmt.Sprintf("tailval-%d", i)
		if err := db.Put([]byte(kk), []byte(vv)); err != nil {
			t.Fatal(err)
		}
		model[kk] = vv
	}

	if err := db.Backup("bak"); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("post-backup"), []byte("must-not-appear")); err != nil {
		t.Fatal(err)
	}

	// Power loss: only synced state survives, and the dying process's
	// directory locks die with it.
	fs.(vfs.Crasher).Crash()

	bdb, err := Open("bak", smallOpts(fs))
	if err != nil {
		t.Fatalf("backup did not reopen after crash: %v", err)
	}
	defer bdb.Close()
	if err := bdb.VerifyIntegrity(); err != nil {
		t.Fatalf("backup failed integrity verification: %v", err)
	}
	kvs, err := bdb.Scan(nil, []byte("\xff\xff"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != len(model) {
		t.Fatalf("restored backup has %d keys, want %d", len(kvs), len(model))
	}
	for _, kv := range kvs {
		if model[string(kv.Key)] != string(kv.Value) {
			t.Fatalf("restored %q = %q, want %q", kv.Key, kv.Value, model[string(kv.Key)])
		}
	}
	if _, err := bdb.Get([]byte("post-backup")); err != ErrNotFound {
		t.Fatalf("post-backup write leaked into the checkpoint: %v", err)
	}
}

// TestBackupConcurrentWithStorm backs up while a write storm runs: the
// checkpoint must capture a consistent point even though flushes, merges,
// and splits retire the files it is copying mid-flight.
func TestBackupConcurrentWithStorm(t *testing.T) {
	leakCheck(t)
	fs := vfs.NewMem()
	opts := smallOpts(fs)
	opts.PartitionSizeLimit = 16 << 10
	opts.BackgroundWorkers = 2
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for i := 0; i < 400; i++ {
		kk := fmt.Sprintf("key-%03d", i%200)
		vv := fmt.Sprintf("val-%d-%s", i, strings.Repeat("c", 120))
		if err := db.Put([]byte(kk), []byte(vv)); err != nil {
			t.Fatal(err)
		}
	}

	// The snapshot defines the checkpoint; the storm runs while BackupAt
	// copies it out.
	s, err := db.NewSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := dumpSnap(t, s)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rnd := rand.New(rand.NewSource(31))
		for op := 0; ; op++ {
			select {
			case <-stop:
				return
			default:
			}
			kk := fmt.Sprintf("key-%03d", rnd.Intn(200))
			vv := fmt.Sprintf("storm-%d-%s", op, strings.Repeat("d", 150))
			if err := db.Put([]byte(kk), []byte(vv)); err != nil {
				t.Errorf("storm Put: %v", err)
				return
			}
			if op%500 == 499 {
				if err := db.Flush(); err != nil {
					t.Errorf("storm Flush: %v", err)
					return
				}
			}
		}
	}()
	backupErr := db.BackupAt(s, "bak")
	close(stop)
	wg.Wait()
	if backupErr != nil {
		t.Fatal(backupErr)
	}

	bdb, err := Open("bak", smallOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer bdb.Close()
	if err := bdb.VerifyIntegrity(); err != nil {
		t.Fatalf("backup integrity: %v", err)
	}
	got, err := bdb.Scan(nil, []byte("\xff\xff"), 0)
	if err != nil {
		t.Fatal(err)
	}
	sameKVs(t, "restored backup vs pinned snapshot", want, got)
}

// TestBackupHardlinkOS runs the backup over the real file system, where
// table files publish via hard links instead of byte copies.
func TestBackupHardlinkOS(t *testing.T) {
	root := t.TempDir()
	opts := smallOpts(vfs.NewOS())
	db, err := Open(filepath.Join(root, "db"), opts)
	if err != nil {
		t.Fatal(err)
	}
	model := map[string]string{}
	for i := 0; i < 400; i++ {
		kk := fmt.Sprintf("key-%03d", i%150)
		vv := fmt.Sprintf("val-%d-%s", i, strings.Repeat("e", 120))
		if err := db.Put([]byte(kk), []byte(vv)); err != nil {
			t.Fatal(err)
		}
		model[kk] = vv
	}
	bak := filepath.Join(root, "bak")
	if err := db.Backup(bak); err != nil {
		t.Fatal(err)
	}
	// Post-backup churn retires the hard-linked source files.
	for i := 0; i < 200; i++ {
		kk := fmt.Sprintf("key-%03d", i%150)
		if err := db.Put([]byte(kk), []byte("post")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	bdb, err := Open(bak, smallOpts(vfs.NewOS()))
	if err != nil {
		t.Fatal(err)
	}
	defer bdb.Close()
	if err := bdb.VerifyIntegrity(); err != nil {
		t.Fatalf("hardlinked backup integrity: %v", err)
	}
	keys := make([]string, 0, len(model))
	for kk := range model {
		keys = append(keys, kk)
	}
	sort.Strings(keys)
	for _, kk := range keys {
		got, err := bdb.Get([]byte(kk))
		if err != nil || string(got) != model[kk] {
			t.Fatalf("restored Get(%s) = %q, %v (want %q)", kk, got, err, model[kk])
		}
	}
}
