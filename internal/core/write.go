package core

import (
	"errors"

	"unikv/internal/record"
)

// ErrKeyTooLarge guards the uint16/uint32 fields in on-disk formats.
var ErrKeyTooLarge = errors.New("unikv: key or value too large")

const (
	maxKeyLen   = 1 << 16
	maxValueLen = 1 << 30
)

// Put inserts or overwrites key with value.
func (db *DB) Put(key, value []byte) error {
	db.stats.Puts.Add(1)
	return db.apply(key, value, record.KindSet)
}

// Delete removes key (writes a tombstone).
func (db *DB) Delete(key []byte) error {
	db.stats.Deletes.Add(1)
	return db.apply(key, nil, record.KindDelete)
}

// copyRecord builds the engine-owned record for a write: the caller's key
// and value are copied exactly once, into a single allocation (the record
// outlives the call — it lands in the memtable — so it cannot alias caller
// memory).
func copyRecord(key, value []byte, seq uint64, kind record.Kind) record.Record {
	buf := make([]byte, len(key)+len(value))
	copy(buf, key)
	copy(buf[len(key):], value)
	rec := record.Record{Key: buf[:len(key):len(key)], Seq: seq, Kind: kind}
	if len(value) > 0 {
		rec.Value = buf[len(key):]
	}
	return rec
}

// apply routes one write to its partition, retrying if a concurrent split
// moves the boundary, and runs the split the partition requests.
func (db *DB) apply(key, value []byte, kind record.Kind) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if err := db.degradedErr(); err != nil {
		return err
	}
	if len(key) == 0 || len(key) >= maxKeyLen || len(value) >= maxValueLen {
		return ErrKeyTooLarge
	}
	rec := copyRecord(key, value, 0, kind)
	for tries := 0; tries < maxRouteRetries; tries++ {
		p := db.partitionFor(key)
		if err := db.throttle(p); err != nil {
			return err
		}
		p.mu.Lock()
		if !p.covers(key) {
			p.mu.Unlock()
			continue
		}
		// Quarantine is checked after routing settles: only writes bound
		// for the damaged partition fail; every other partition accepts.
		if err := p.quarantineErr(); err != nil {
			p.mu.Unlock()
			return err
		}
		// Sequence under the partition lock: a snapshot pins by loading
		// db.seq while holding every partition's read lock, so any write
		// sequenced before the pin is already in its memtable and any write
		// sequenced after carries a larger seq. Assigning before the lock
		// would let a pinned snapshot admit an in-flight write it can later
		// observe appearing in the shared memtable.
		rec.Seq = db.seq.Add(1)
		wantSplit, err := p.put(rec)
		p.mu.Unlock()
		// Invalidate after the write applied, before it is acknowledged —
		// the hot ring's staleness protocol (also on error: the write may
		// have partially applied, and dropping a hot entry is always safe).
		db.hot.Invalidate(key)
		if err != nil {
			return classified(err)
		}
		if wantSplit {
			return classified(db.splitPartition(p))
		}
		if db.sched != nil {
			db.checkMaintenance(p)
		}
		return nil
	}
	return classified(ErrRouterInconsistent)
}

// Flush forces the partition memtables to disk (tests, benchmarks, and
// clean shutdown sequencing). flushMu excludes concurrent background flush
// jobs while the immutable queue is drained.
func (db *DB) Flush() error {
	if db.closed.Load() {
		return ErrClosed
	}
	if err := db.degradedErr(); err != nil {
		return err
	}
	for _, p := range db.partitions() {
		if p.quarantine.Load() != nil {
			continue // quarantined partitions hold still until repair
		}
		p.flushMu.Lock()
		p.mu.Lock()
		err := p.drainImmLocked()
		if err == nil {
			err = p.flushLocked()
		}
		p.mu.Unlock()
		p.flushMu.Unlock()
		if err != nil {
			return classified(err)
		}
	}
	return nil
}

// CompactAll drains every partition's UnsortedStore into its SortedStore
// (benchmarks use it to measure steady-state reads). maintMu excludes
// concurrent structural jobs, flushMu concurrent flush jobs.
func (db *DB) CompactAll() error {
	if db.closed.Load() {
		return ErrClosed
	}
	if err := db.degradedErr(); err != nil {
		return err
	}
	for _, p := range db.partitions() {
		if p.quarantine.Load() != nil {
			continue // merging corrupt inputs would launder the damage
		}
		p.maintMu.Lock()
		p.flushMu.Lock()
		p.mu.Lock()
		err := p.drainImmLocked()
		if err == nil {
			err = p.flushLocked()
		}
		if err == nil {
			err = p.mergeLocked()
		}
		p.mu.Unlock()
		p.flushMu.Unlock()
		p.maintMu.Unlock()
		if err != nil {
			return classified(err)
		}
	}
	return nil
}
