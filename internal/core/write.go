package core

import (
	"errors"

	"unikv/internal/record"
)

// ErrKeyTooLarge guards the uint16/uint32 fields in on-disk formats.
var ErrKeyTooLarge = errors.New("unikv: key or value too large")

const (
	maxKeyLen   = 1 << 16
	maxValueLen = 1 << 30
)

// Put inserts or overwrites key with value.
func (db *DB) Put(key, value []byte) error {
	db.stats.Puts.Add(1)
	return db.apply(key, value, record.KindSet)
}

// Delete removes key (writes a tombstone).
func (db *DB) Delete(key []byte) error {
	db.stats.Deletes.Add(1)
	return db.apply(key, nil, record.KindDelete)
}

// apply routes one write to its partition, retrying if a concurrent split
// moves the boundary, and runs the split the partition requests.
func (db *DB) apply(key, value []byte, kind record.Kind) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if len(key) == 0 || len(key) >= maxKeyLen || len(value) >= maxValueLen {
		return ErrKeyTooLarge
	}
	rec := record.Record{
		Key:   append([]byte(nil), key...),
		Seq:   db.seq.Add(1),
		Kind:  kind,
		Value: append([]byte(nil), value...),
	}
	for {
		p := db.partitionFor(key)
		p.mu.Lock()
		if !p.covers(key) {
			p.mu.Unlock()
			continue
		}
		wantSplit, err := p.put(rec)
		p.mu.Unlock()
		if err != nil {
			return err
		}
		if wantSplit {
			return db.splitPartition(p)
		}
		return nil
	}
}

// Flush forces the partition memtables to disk (tests, benchmarks, and
// clean shutdown sequencing).
func (db *DB) Flush() error {
	if db.closed.Load() {
		return ErrClosed
	}
	for _, p := range db.partitions() {
		p.mu.Lock()
		err := p.flushLocked()
		p.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// CompactAll drains every partition's UnsortedStore into its SortedStore
// (benchmarks use it to measure steady-state reads).
func (db *DB) CompactAll() error {
	if db.closed.Load() {
		return ErrClosed
	}
	for _, p := range db.partitions() {
		p.mu.Lock()
		err := p.flushLocked()
		if err == nil {
			err = p.mergeLocked()
		}
		p.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}
