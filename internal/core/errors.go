package core

import (
	"errors"
	"fmt"
	"time"

	"unikv/internal/codec"
	"unikv/internal/hashindex"
	"unikv/internal/manifest"
	"unikv/internal/sstable"
	"unikv/internal/unsorted"
	"unikv/internal/vlog"
)

// Error taxonomy. Every background-job or write-path failure falls into
// one of three classes, and the scheduler's policy is keyed entirely off
// the class:
//
//   - transient: an I/O error that may succeed if retried (EINTR/ENOSPC
//     hiccups, injected faults). Background jobs retry these with bounded
//     exponential backoff before giving up.
//   - corruption: a checksum or decode failure. The bytes on disk are
//     wrong; retrying re-reads the same wrong bytes, so these are never
//     retried — they trip degraded mode immediately.
//   - fatal: a deterministic, non-I/O outcome (closed, locked, degraded,
//     oversized key). Retrying cannot change it.
//
// Unknown errors default to transient: misclassifying a persistent fault
// as transient costs a few bounded retries before degrading, while
// misclassifying a recoverable fault as fatal bricks writes for no reason.

// ErrDegraded marks the DB's degraded read-only mode: a background job
// exhausted its retries (or hit corruption), writes now fail with an error
// matching this sentinel, and reads keep serving the still-consistent
// on-disk state. Reopening the database clears the mode (recovery replays
// from the last committed state).
var ErrDegraded = errors.New("unikv: database degraded (read-only)")

// ErrPartitionQuarantined marks a partition quarantined after corruption
// was found in one of its files (by the background scrub or a foreground
// read). Writes routed to a quarantined partition fail with an error
// matching this sentinel; every other partition keeps serving reads and
// writes. Quarantine is narrower than degraded mode: it names the blast
// radius of one bad file instead of freezing the whole database.
var ErrPartitionQuarantined = errors.New("unikv: partition quarantined (corruption)")

// ErrRouterInconsistent is returned when an operation re-routed more than
// maxRouteRetries times because partitionFor and the chosen partition's
// covers disagreed every time. Under correct operation a re-route happens
// only when a concurrent split moves a boundary between the route and the
// lock, which cannot recur dozens of times for one key; sustained
// disagreement means the router's boundary invariant is broken, and
// spinning forever (the pre-bound behavior) would hang the caller.
var ErrRouterInconsistent = errors.New("unikv: router/partition bounds inconsistent")

// ErrorClass partitions engine errors by the recovery action they permit.
type ErrorClass uint8

const (
	// ClassNone is the class of a nil error.
	ClassNone ErrorClass = iota
	// ClassTransient errors may succeed when retried.
	ClassTransient
	// ClassCorruption errors mean the stored bytes are wrong; retrying is
	// useless and the failure is surfaced immediately.
	ClassCorruption
	// ClassFatal errors are deterministic outcomes retrying cannot change.
	ClassFatal
)

// String names the class for stats, logs, and the degraded cause.
func (c ErrorClass) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassTransient:
		return "transient"
	case ClassCorruption:
		return "corruption"
	case ClassFatal:
		return "fatal"
	}
	return "unknown"
}

// ClassifiedError stamps an error with its class at the failure site, so
// callers can switch on errors.As without re-deriving the classification.
type ClassifiedError struct {
	Class ErrorClass
	Err   error
}

func (e *ClassifiedError) Error() string {
	return fmt.Sprintf("%s [%s]", e.Err.Error(), e.Class)
}

func (e *ClassifiedError) Unwrap() error { return e.Err }

// WithClass wraps err with an explicit class. Wrapping nil returns nil;
// an error that already carries a class is returned unchanged.
func WithClass(class ErrorClass, err error) error {
	if err == nil {
		return nil
	}
	var ce *ClassifiedError
	if errors.As(err, &ce) {
		return err
	}
	return &ClassifiedError{Class: class, Err: err}
}

// classified stamps err with its derived class (nil stays nil) — the
// write path uses it so callers can errors.As for ClassifiedError.
func classified(err error) error { return WithClass(Classify(err), err) }

// Classify derives the class of err. An explicit ClassifiedError wins;
// otherwise known corruption sentinels (checksum/decode failures from
// every substrate) classify as corruption, deterministic API errors as
// fatal, and everything else — including plain I/O errors from the file
// system — as transient.
func Classify(err error) ErrorClass {
	if err == nil {
		return ClassNone
	}
	var ce *ClassifiedError
	if errors.As(err, &ce) {
		return ce.Class
	}
	switch {
	case errors.Is(err, codec.ErrCorrupt),
		errors.Is(err, sstable.ErrCorruptTable),
		errors.Is(err, manifest.ErrCorrupt),
		errors.Is(err, hashindex.ErrBadCheckpoint),
		errors.Is(err, unsorted.ErrBadCheckpoint),
		errors.Is(err, vlog.ErrBadPointer),
		errors.Is(err, vlog.ErrCorrupt):
		return ClassCorruption
	case errors.Is(err, ErrClosed),
		errors.Is(err, ErrDegraded),
		errors.Is(err, ErrPartitionQuarantined),
		errors.Is(err, ErrDBLocked),
		errors.Is(err, ErrNotFound),
		errors.Is(err, ErrKeyTooLarge),
		errors.Is(err, ErrRouterInconsistent):
		return ClassFatal
	}
	return ClassTransient
}

// DegradedError is the error surfaced by writes (and recorded in
// StatsSnapshot) once the DB enters degraded mode. It matches ErrDegraded
// via errors.Is and unwraps to the job error that tripped the mode, so
// the original classification stays reachable.
type DegradedError struct {
	// Cause names the failing job, its partition, and the error class,
	// e.g. "merge job on partition 3 failed (transient, retries exhausted)".
	Cause string
	// Since is when the mode was entered.
	Since time.Time
	// Err is the final job error.
	Err error
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("%s: %s: %v", ErrDegraded.Error(), e.Cause, e.Err)
}

func (e *DegradedError) Unwrap() error { return e.Err }

// Is matches ErrDegraded so errors.Is(err, ErrDegraded) holds across the
// server/client wire mapping and the embedded API alike.
func (e *DegradedError) Is(target error) bool { return target == ErrDegraded }

// QuarantinedError is the error surfaced by writes routed to a quarantined
// partition. It matches ErrPartitionQuarantined via errors.Is and unwraps
// to the corruption that triggered the quarantine, so the original
// classification stays reachable.
type QuarantinedError struct {
	// Partition is the quarantined partition's ID.
	Partition uint32
	// Cause names what found the corruption and where, e.g.
	// "scrub: sorted table 42 block 3" or "read: value log 7".
	Cause string
	// Since is when the partition was quarantined.
	Since time.Time
	// Err is the corruption error that triggered the quarantine.
	Err error
}

func (e *QuarantinedError) Error() string {
	return fmt.Sprintf("%s: partition %d: %s: %v",
		ErrPartitionQuarantined.Error(), e.Partition, e.Cause, e.Err)
}

func (e *QuarantinedError) Unwrap() error { return e.Err }

// Is matches ErrPartitionQuarantined so errors.Is(err,
// ErrPartitionQuarantined) holds for wrapped quarantine errors.
func (e *QuarantinedError) Is(target error) bool { return target == ErrPartitionQuarantined }
