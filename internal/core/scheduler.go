package core

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Background maintenance scheduling (BackgroundWorkers > 0).
//
// In background mode a write only appends to the WAL and the memtable; a
// full memtable is frozen onto the partition's immutable queue (still
// served by Get/Scan) and every other maintenance step — flush, merge,
// scan merge, GC, split — becomes a job executed by a fixed worker pool.
// Jobs are deduplicated per (partition, kind): at most one instance of a
// kind is queued or running for a partition at a time, and each completed
// job re-evaluates the partition's triggers, so chains like
// flush → merge → GC → split still happen, just off the foreground path.
//
// Structural jobs (merge/scan-merge/GC/split) are serialized per partition
// by partition.maintMu because they replace table sets the others read;
// flushes take only partition.flushMu, so a flush commits concurrently
// with a long merge build. Lock order with the pool:
//
//	snapMu -> maintMu -> flushMu -> router.mu -> partition.mu
//	  -> unsorted.viewMu -> logRefs.mu -> hotring.writerMu
//
// A job error is classified (see errors.go) before it can do damage: a
// transient error is retried with bounded exponential backoff + jitter
// (the job's dedup flag stays set, so the retries own the slot). A
// terminal failure escalates through jobFailed: corruption inside one
// partition's files quarantines just that partition (see quarantine.go),
// while manifest-level corruption and non-corruption terminal failures
// trip the DB into degraded read-only mode — writes return a
// DegradedError, reads keep working, no further jobs run. Retrying a job
// from scratch is safe because every job mutates durable and in-memory
// state only at its single manifest-Apply commit point.
//
// jobScrub is the odd one out: enqueued by the scrub pass driver
// (scrub.go) on a timer rather than by a write-side trigger, it only
// reads — verifying table checksums under reader pins — so it runs
// without maintMu and can overlap a merge on the same partition.

type jobKind uint8

const (
	jobFlush jobKind = iota
	jobMerge
	jobScanMerge
	jobGC
	jobSplit
	jobScrub
	numJobKinds
)

func (k jobKind) String() string {
	switch k {
	case jobFlush:
		return "flush"
	case jobMerge:
		return "merge"
	case jobScanMerge:
		return "scan-merge"
	case jobGC:
		return "gc"
	case jobSplit:
		return "split"
	case jobScrub:
		return "scrub"
	}
	return "unknown"
}

type task struct {
	p    *partition
	kind jobKind
}

// scheduler owns the worker pool and the deduplicated job queue.
type scheduler struct {
	db *DB

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []task
	pending map[uint32]*[numJobKinds]bool // queued or running, per partition
	closing bool
	stopCh  chan struct{} // closed by close(); interrupts retry backoff
	wg      sync.WaitGroup
}

func newScheduler(db *DB, workers int) *scheduler {
	s := &scheduler{
		db:      db,
		pending: make(map[uint32]*[numJobKinds]bool),
		stopCh:  make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// enqueue schedules kind for p unless the same job is already queued or
// running there.
func (s *scheduler) enqueue(p *partition, kind jobKind) {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return
	}
	flags := s.pending[p.id]
	if flags == nil {
		flags = new([numJobKinds]bool)
		s.pending[p.id] = flags
	}
	if flags[kind] {
		s.mu.Unlock()
		return
	}
	flags[kind] = true
	s.queue = append(s.queue, task{p: p, kind: kind})
	s.mu.Unlock()
	s.cond.Signal()
}

// pendingJobs counts jobs queued or running (the StatsSnapshot gauge).
func (s *scheduler) pendingJobs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, flags := range s.pending {
		for _, set := range flags {
			if set {
				n++
			}
		}
	}
	return n
}

// close stops accepting jobs and waits for running ones; queued jobs are
// dropped (Close drains partitions inline afterwards).
func (s *scheduler) close() {
	s.mu.Lock()
	s.closing = true
	s.mu.Unlock()
	close(s.stopCh) // interrupt retry backoffs so Close never waits on them
	s.cond.Broadcast()
	s.wg.Wait()
}

func (s *scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closing {
			s.cond.Wait()
		}
		if s.closing {
			s.mu.Unlock()
			return
		}
		t := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()

		err := s.runWithRetry(t)

		s.mu.Lock()
		if flags := s.pending[t.p.id]; flags != nil {
			flags[t.kind] = false
		}
		s.mu.Unlock()

		// Wake throttled writers (and let them observe a failure).
		t.p.wakeStalled()
		if err != nil {
			s.db.jobFailed(t, err)
			continue
		}
		// A completed job may arm the next trigger (flush fills the
		// UnsortedStore, merge creates garbage, GC shrinks toward a split
		// decision). A split changes the partition set, so re-check all.
		if t.kind == jobSplit {
			for _, q := range s.db.partitions() {
				s.db.checkMaintenance(q)
			}
		} else {
			s.db.checkMaintenance(t.p)
		}
	}
}

// runWithRetry executes one job, retrying transient failures with bounded
// exponential backoff + jitter. It returns nil when the job (eventually)
// succeeded or the retry was abandoned by close; a non-nil return is a
// terminal failure the caller escalates to degraded mode. Retrying from
// scratch is safe: jobs commit durable and in-memory changes only at
// their single manifest-Apply point, so a failed attempt left no partial
// state behind (orphaned build output is swept at the next open).
func (s *scheduler) runWithRetry(t task) error {
	db := s.db
	delay := db.opts.RetryBaseDelay
	for attempt := 0; ; attempt++ {
		err := s.run(t)
		if err == nil {
			return nil
		}
		if Classify(err) != ClassTransient || attempt >= db.opts.JobRetries {
			db.stats.BackgroundErrors.Add(1)
			return err
		}
		db.stats.BackgroundRetries.Add(1)
		// Jittered backoff: half fixed, half random, so competing retries
		// de-synchronize. Interruptible so close() never waits on it.
		d := delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
		select {
		case <-s.stopCh:
			return nil // closing: Close drains inline; do not degrade
		case <-time.After(d):
		}
		if delay *= 2; delay > db.opts.RetryMaxDelay {
			delay = db.opts.RetryMaxDelay
		}
	}
}

// run executes one job, re-checking its trigger (state may have moved
// since it was queued).
func (s *scheduler) run(t task) error {
	db := s.db
	if db.closed.Load() || db.degradedErr() != nil {
		return nil
	}
	p := t.p
	if p.quarantine.Load() != nil {
		// Maintenance over corrupt inputs would launder the damage into
		// fresh files; quarantined partitions hold still until repair.
		return nil
	}
	if h := db.testHookJobStart; h != nil {
		h(p, t.kind)
	}
	if t.kind == jobFlush {
		return p.backgroundFlush()
	}
	if t.kind == jobScrub {
		// Read-only: verifies under reader pins, never mutates, and so
		// deliberately skips maintMu — a scrub must not delay a merge.
		return db.scrubPartitionTables(p)
	}
	p.maintMu.Lock()
	defer p.maintMu.Unlock()
	switch t.kind {
	case jobMerge:
		return p.backgroundMerge()
	case jobScanMerge:
		return p.backgroundScanMerge()
	case jobGC:
		return p.backgroundGC()
	case jobSplit:
		p.flushMu.Lock()
		defer p.flushMu.Unlock()
		return db.splitPartition(p)
	}
	return nil
}

// checkMaintenance re-evaluates p's triggers and enqueues what the current
// state calls for. Runs after a write freezes a memtable and after every
// completed job.
func (db *DB) checkMaintenance(p *partition) {
	if db.sched == nil || db.closed.Load() || db.degradedErr() != nil {
		return
	}
	if p.quarantine.Load() != nil {
		return
	}
	p.mu.RLock()
	nImm := len(p.imm)
	unsBytes := p.uns.SizeBytes()
	unsTables := p.uns.NumTables()
	needGC := false
	if !db.opts.DisableKVSeparation {
		refBytes := p.logBytesLocked()
		needGC = refBytes > 0 && float64(p.garbageBytes.Load()) >= db.opts.GCRatio*float64(refBytes)
	}
	needSplit := !db.opts.DisablePartitioning && p.sizeLocked() >= db.opts.PartitionSizeLimit
	p.mu.RUnlock()

	if nImm > 0 {
		db.sched.enqueue(p, jobFlush)
	}
	if unsBytes >= db.opts.UnsortedLimit {
		db.sched.enqueue(p, jobMerge)
	} else if !db.opts.DisableScanMerge && unsTables >= db.opts.ScanMergeLimit {
		db.sched.enqueue(p, jobScanMerge)
	}
	if needGC {
		db.sched.enqueue(p, jobGC)
	}
	if needSplit {
		db.sched.enqueue(p, jobSplit)
	}
}

// setDegraded records a terminal background failure, entering degraded
// read-only mode: writes fail with a DegradedError naming the job and
// cause, reads keep serving the (still consistent) on-disk state. The
// first terminal failure wins.
func (db *DB) setDegraded(t task, err error) {
	if err == nil {
		return
	}
	class := Classify(err)
	why := "retries exhausted"
	if class != ClassTransient {
		why = "not retryable"
	}
	d := &DegradedError{
		Cause: fmt.Sprintf("%s job on partition %d failed (%s, %s)",
			t.kind, t.p.id, class, why),
		Since: time.Now(),
		Err:   err,
	}
	if db.degradedState.CompareAndSwap(nil, d) {
		for _, p := range db.partitions() {
			p.wakeStalled()
		}
	}
}

// degradedErr returns the error that tripped the DB into degraded mode,
// or nil. It matches ErrDegraded via errors.Is.
func (db *DB) degradedErr() error {
	if d := db.degradedState.Load(); d != nil {
		return d
	}
	return nil
}

// ---------------------------------------------------------------------------
// Write throttling. Backpressure has two stages keyed to the immutable
// queue depth (and, as a backstop, to an UnsortedStore that outgrew its
// limit because merges lag): a soft slowdown sleeps each write briefly so
// flushes can catch up; a hard stall blocks writers until a maintenance
// job completes. Throttling happens before the partition lock is taken,
// so stalled writers never block readers.

const (
	slowdownUnsFactor = 2 // soft throttle at 2x UnsortedLimit
	stallUnsFactor    = 4 // hard stall at 4x UnsortedLimit
	slowdownSleep     = time.Millisecond
	stallRecheck      = 10 * time.Millisecond
)

// throttle applies write backpressure for p. Returns the failure/closed
// error a stalled writer should surface instead of waiting forever.
func (db *DB) throttle(p *partition) error {
	if db.sched == nil {
		return nil
	}
	stalled := false
	for {
		if db.closed.Load() {
			return ErrClosed
		}
		if err := db.degradedErr(); err != nil {
			return err
		}
		if err := p.quarantineErr(); err != nil {
			// Maintenance on this partition stopped; a stalled writer would
			// wait forever, so surface the quarantine instead.
			return err
		}
		p.mu.RLock()
		nImm := len(p.imm)
		unsBytes := p.uns.SizeBytes()
		p.mu.RUnlock()
		switch {
		case nImm >= db.opts.StallImmutables || unsBytes >= stallUnsFactor*db.opts.UnsortedLimit:
			if !stalled {
				stalled = true
				db.stats.Stalls.Add(1)
			}
			ch := p.stallWait()
			start := time.Now()
			select {
			case <-ch:
			case <-time.After(stallRecheck):
			}
			db.stats.StallNanos.Add(time.Since(start).Nanoseconds())
		case nImm >= db.opts.SlowdownImmutables || unsBytes >= slowdownUnsFactor*db.opts.UnsortedLimit:
			start := time.Now()
			time.Sleep(slowdownSleep)
			db.stats.SlowdownNanos.Add(time.Since(start).Nanoseconds())
			return nil
		default:
			return nil
		}
	}
}

// stallWait returns a channel closed at the next maintenance wake-up.
func (p *partition) stallWait() <-chan struct{} {
	p.stallMu.Lock()
	if p.stallCh == nil {
		p.stallCh = make(chan struct{})
	}
	ch := p.stallCh
	p.stallMu.Unlock()
	return ch
}

// wakeStalled releases every writer blocked in a hard stall on p.
func (p *partition) wakeStalled() {
	p.stallMu.Lock()
	if p.stallCh != nil {
		close(p.stallCh)
		p.stallCh = nil
	}
	p.stallMu.Unlock()
}
