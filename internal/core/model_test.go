package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"unikv/internal/vfs"
)

// TestQuickModel drives the engine with random op sequences (put, delete,
// get, scan, reopen) and checks every observation against a model map.
// This is the main end-to-end property test: it routinely crosses flush,
// scan-merge, merge, GC, and split boundaries because of the tiny limits.
func TestQuickModel(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		fs := vfs.NewMem()
		opts := smallOpts(fs)
		opts.GCRatio = 0.25
		db, err := Open("db", opts)
		if err != nil {
			return false
		}
		defer func() { db.Close() }()
		model := map[string]string{}
		keyOf := func() string { return fmt.Sprintf("key-%04d", rnd.Intn(400)) }

		for op := 0; op < 3000; op++ {
			switch rnd.Intn(10) {
			case 0, 1, 2, 3, 4: // put
				k, v := keyOf(), fmt.Sprintf("val-%d-%d", op, rnd.Int63())
				if err := db.Put([]byte(k), []byte(v)); err != nil {
					t.Logf("put: %v", err)
					return false
				}
				model[k] = v
			case 5: // delete
				k := keyOf()
				if err := db.Delete([]byte(k)); err != nil {
					t.Logf("delete: %v", err)
					return false
				}
				delete(model, k)
			case 6, 7: // get
				k := keyOf()
				got, err := db.Get([]byte(k))
				want, ok := model[k]
				if ok {
					if err != nil || string(got) != want {
						t.Logf("get %s: %q %v want %q", k, got, err, want)
						return false
					}
				} else if err != ErrNotFound {
					t.Logf("get missing %s: %v", k, err)
					return false
				}
			case 8: // scan
				start := keyOf()
				n := rnd.Intn(30) + 1
				kvs, err := db.Scan([]byte(start), nil, n)
				if err != nil {
					t.Logf("scan: %v", err)
					return false
				}
				var wantKeys []string
				for k := range model {
					if k >= start {
						wantKeys = append(wantKeys, k)
					}
				}
				sort.Strings(wantKeys)
				if len(wantKeys) > n {
					wantKeys = wantKeys[:n]
				}
				if len(kvs) != len(wantKeys) {
					t.Logf("scan(%s,%d): got %d want %d", start, n, len(kvs), len(wantKeys))
					return false
				}
				for i, kv := range kvs {
					if string(kv.Key) != wantKeys[i] || string(kv.Value) != model[wantKeys[i]] {
						t.Logf("scan[%d]: %q=%q want %q=%q", i, kv.Key, kv.Value,
							wantKeys[i], model[wantKeys[i]])
						return false
					}
				}
			case 9: // occasionally reopen
				if op%500 == 499 {
					if err := db.Close(); err != nil {
						t.Logf("close: %v", err)
						return false
					}
					db, err = Open("db", opts)
					if err != nil {
						t.Logf("reopen: %v", err)
						return false
					}
				}
			}
		}
		// Final full verification.
		for k, v := range model {
			got, err := db.Get([]byte(k))
			if err != nil || string(got) != v {
				t.Logf("final get %s: %q %v want %q", k, got, err, v)
				return false
			}
		}
		kvs, err := db.Scan([]byte(""), nil, 0)
		if err != nil || len(kvs) != len(model) {
			t.Logf("final scan: %d vs model %d (%v)", len(kvs), len(model), err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// TestAblationsStillCorrect runs the same workload under every ablation
// toggle: disabling an optimization must never change results.
func TestAblationsStillCorrect(t *testing.T) {
	variants := map[string]func(*Options){
		"no-hash-index":    func(o *Options) { o.DisableHashIndex = true },
		"no-kv-separation": func(o *Options) { o.DisableKVSeparation = true },
		"no-partitioning":  func(o *Options) { o.DisablePartitioning = true },
		"no-scan-merge":    func(o *Options) { o.DisableScanMerge = true },
		"no-prefetch":      func(o *Options) { o.DisableScanPrefetch = true },
		"no-parallel":      func(o *Options) { o.DisableScanParallel = true },
		"no-wal":           func(o *Options) { o.DisableWAL = true },
		"no-hash-ckpt":     func(o *Options) { o.DisableHashCkpt = true },
	}
	for name, tweak := range variants {
		name, tweak := name, tweak
		t.Run(name, func(t *testing.T) {
			fs := vfs.NewMem()
			opts := smallOpts(fs)
			tweak(&opts)
			db, err := Open("db", opts)
			if err != nil {
				t.Fatal(err)
			}
			model := map[string]string{}
			rnd := rand.New(rand.NewSource(7))
			for op := 0; op < 2500; op++ {
				k := fmt.Sprintf("key-%04d", rnd.Intn(300))
				if rnd.Intn(8) == 0 {
					db.Delete([]byte(k))
					delete(model, k)
				} else {
					v := fmt.Sprintf("val-%d", op)
					db.Put([]byte(k), []byte(v))
					model[k] = v
				}
			}
			for k, v := range model {
				got, err := db.Get([]byte(k))
				if err != nil || string(got) != v {
					t.Fatalf("get %s: %q %v want %q", k, got, err, v)
				}
			}
			kvs, err := db.Scan(nil, nil, 0)
			if err != nil {
				// nil start with nil end and limit 0 means limit=1<<30.
				t.Fatal(err)
			}
			if len(kvs) != len(model) {
				t.Fatalf("scan %d vs model %d", len(kvs), len(model))
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			// Reopen (skip strict check for no-WAL: unflushed data may be
			// lost by design — but flushed data must remain).
			db2, err := Open("db", opts)
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			if !opts.DisableWAL {
				for k, v := range model {
					got, err := db2.Get([]byte(k))
					if err != nil || string(got) != v {
						t.Fatalf("reopen get %s: %q %v want %q", k, got, err, v)
					}
				}
			}
		})
	}
}

// TestBinaryKeysAndValues pushes random binary data through all tiers.
func TestBinaryKeysAndValues(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs)
	defer db.Close()

	rnd := rand.New(rand.NewSource(3))
	type pair struct{ k, v []byte }
	var pairs []pair
	seen := map[string]bool{}
	for i := 0; i < 400; i++ {
		k := make([]byte, rnd.Intn(40)+1)
		rnd.Read(k)
		if seen[string(k)] {
			continue
		}
		seen[string(k)] = true
		v := make([]byte, rnd.Intn(400))
		rnd.Read(v)
		pairs = append(pairs, pair{k, v})
		if err := db.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	db.CompactAll()
	for _, p := range pairs {
		got, err := db.Get(p.k)
		if err != nil || !bytes.Equal(got, p.v) {
			t.Fatalf("binary key %x: %v", p.k, err)
		}
	}
}
