package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"unikv/internal/vfs"
)

// retryOpts is bgOpts with the retry clock sped up so degraded-mode tests
// finish in milliseconds instead of the production backoff's seconds.
func retryOpts(fs vfs.FS) Options {
	opts := bgOpts(fs)
	opts.RetryBaseDelay = time.Millisecond
	opts.RetryMaxDelay = 5 * time.Millisecond
	return opts
}

// waitMetrics polls Metrics until cond is satisfied or the deadline
// passes, returning the last snapshot either way.
func waitMetrics(db *DB, cond func(StatsSnapshot) bool) StatsSnapshot {
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := db.Metrics()
		if cond(m) || time.Now().After(deadline) {
			return m
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBackgroundTransientRetryAbsorbed is the regression test for the old
// fail-on-first-error scheduler: a transient fault that clears after two
// attempts must be absorbed by the retry loop — counted in
// BackgroundRetries, absent from BackgroundErrors, and never tripping
// degraded mode.
func TestBackgroundTransientRetryAbsorbed(t *testing.T) {
	inner := vfs.NewMem()
	ffs := vfs.NewFail(inner)
	db, err := Open("db", retryOpts(ffs))
	if err != nil {
		t.Fatal(err)
	}
	// In background mode every .sst write happens in a worker (flushes,
	// merges), so this targets exactly the retryable job path. Two matched
	// writes fail, then the "disk" recovers.
	ffs.ArmPlan(vfs.FailPlan{Fail: 2, Kinds: vfs.OpWrite, Pattern: "*.sst"})

	const n = 600
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatalf("Put(%d) during transient fault: %v", i, err)
		}
	}
	m := waitMetrics(db, func(m StatsSnapshot) bool { return m.BackgroundRetries >= 1 && m.Flushes >= 1 })
	ffs.Disarm()
	if !ffs.Failed() {
		t.Skip("workload finished before any fault was injected; sizing changed")
	}
	if m.BackgroundRetries < 1 {
		t.Fatalf("BackgroundRetries=%d, want >=1 (fault was injected but never retried)", m.BackgroundRetries)
	}
	if m.BackgroundErrors != 0 {
		t.Fatalf("BackgroundErrors=%d, want 0 (transient fault must not count as a job failure)", m.BackgroundErrors)
	}
	if m.Degraded {
		t.Fatalf("degraded after a recoverable fault: %s", m.DegradedCause)
	}
	// The database is fully live: reads see everything, writes proceed.
	for i := 0; i < n; i++ {
		got, err := db.Get(key(i))
		if err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("key %d after absorbed fault: %q, %v", i, got, err)
		}
	}
	if err := db.Put([]byte("post-fault"), []byte("ok")); err != nil {
		t.Fatalf("Put after absorbed fault: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBackgroundStickyFaultDegrades drives a background job into a
// persistent write fault: retries are attempted, exhausted, and the
// database enters degraded read-only mode — writes fail with ErrDegraded,
// reads keep serving, and a reopen on a healthy disk fully recovers.
func TestBackgroundStickyFaultDegrades(t *testing.T) {
	inner := vfs.NewMem()
	ffs := vfs.NewFail(inner)
	db, err := Open("db", retryOpts(ffs))
	if err != nil {
		t.Fatal(err)
	}
	ffs.ArmPlan(vfs.FailPlan{Fail: -1, Kinds: vfs.OpWrite, Pattern: "*.sst"})

	acked := 0
	var writeErr error
	for i := 0; i < 50000; i++ {
		if writeErr = db.Put(key(i), val(i)); writeErr != nil {
			break
		}
		acked = i + 1
	}
	if writeErr == nil {
		t.Fatal("writes never failed under a sticky background fault")
	}
	if !errors.Is(writeErr, ErrDegraded) {
		t.Fatalf("write error %v, want ErrDegraded", writeErr)
	}
	if Classify(writeErr) != ClassFatal {
		t.Fatalf("Classify(write error)=%s, want fatal", Classify(writeErr))
	}

	m := db.Metrics()
	if !m.Degraded || m.DegradedSince == 0 {
		t.Fatalf("metrics not degraded: %+v", m)
	}
	if !strings.Contains(m.DegradedCause, "flush") {
		t.Fatalf("DegradedCause=%q, want the failed job named", m.DegradedCause)
	}
	if !strings.Contains(m.DegradedCause, "retries exhausted") {
		t.Fatalf("DegradedCause=%q, want retry exhaustion recorded", m.DegradedCause)
	}
	if m.BackgroundErrors < 1 {
		t.Fatalf("BackgroundErrors=%d, want >=1", m.BackgroundErrors)
	}
	if m.BackgroundRetries < 1 {
		t.Fatalf("BackgroundRetries=%d, want >=1 (transient class must be retried before degrading)", m.BackgroundRetries)
	}

	// Degraded is read-only, not dead: point reads and scans still serve.
	if got, err := db.Get(key(0)); err != nil || !bytes.Equal(got, val(0)) {
		t.Fatalf("Get while degraded: %q, %v", got, err)
	}
	if _, err := db.Scan(key(0), key(10), 0); err != nil {
		t.Fatalf("Scan while degraded: %v", err)
	}
	// Every write-shaped entry point refuses.
	if err := db.Delete(key(0)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Delete while degraded: %v", err)
	}
	b := NewBatch()
	b.Put([]byte("k"), []byte("v"))
	if err := db.ApplyBatch(b); !errors.Is(err, ErrDegraded) {
		t.Fatalf("ApplyBatch while degraded: %v", err)
	}
	if err := db.Flush(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Flush while degraded: %v", err)
	}
	if err := db.CompactAll(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("CompactAll while degraded: %v", err)
	}

	// Recovery path: fix the disk, reopen, and the mode clears with no
	// acked data lost (the WAL still holds what the failed flushes
	// couldn't persist).
	ffs.Disarm()
	if err := db.Close(); err != nil {
		t.Fatalf("Close of degraded db: %v", err)
	}
	db2, err := Open("db", smallOpts(inner))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if m := db2.Metrics(); m.Degraded {
		t.Fatalf("degraded mode survived reopen: %s", m.DegradedCause)
	}
	for i := 0; i < acked; i++ {
		got, err := db2.Get(key(i))
		if err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("acked key %d (of %d) lost across degrade+reopen: %v", i, acked, err)
		}
	}
	if err := db2.Put([]byte("post-recovery"), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := db2.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity after recovery: %v", err)
	}
}
