package core

import (
	"errors"
	"fmt"
	"time"

	"unikv/internal/manifest"
)

// Partition-scoped quarantine. Corruption found while the DB is running —
// by the background scrub, a background job reading a bad block, or a
// foreground read — is contained to the partitions that actually own the
// corrupt bytes: writes to those partitions fail with an error matching
// ErrPartitionQuarantined, their maintenance jobs stop (rewriting corrupt
// inputs would launder the damage into fresh files), and every other
// partition keeps serving reads AND writes. Reads on a quarantined
// partition are still attempted: keys outside the corrupt block remain
// readable, which is strictly better than refusing everything.
//
// Blast-radius rules:
//   - a corrupt table quarantines its owning partition only;
//   - a corrupt shared value log quarantines exactly the partitions
//     holding live pointers into it (their p.logs sets — the same
//     bookkeeping GC uses to decide when a log is collectable);
//   - manifest/WAL-level damage still degrades the whole DB (setDegraded):
//     with the metadata spine suspect there is no trustworthy partition
//     boundary to scope a quarantine to.
//
// Quarantine is sticky for the life of the handle; `unikv-ctl repair`
// (offline) salvages the directory and a reopen starts clean.

// quarantinePartition marks p quarantined (first corruption wins; later
// findings on the same partition are counted but do not replace the
// cause). It returns true when this call performed the transition.
func (db *DB) quarantinePartition(p *partition, cause string, err error) bool {
	q := &QuarantinedError{
		Partition: p.id,
		Cause:     cause,
		Since:     time.Now(),
		Err:       err,
	}
	if !p.quarantine.CompareAndSwap(nil, q) {
		return false
	}
	db.stats.PartitionsQuarantined.Add(1)
	// A writer stalled on this partition's throttle must observe the
	// quarantine instead of waiting for maintenance that will never run.
	p.wakeStalled()
	return true
}

// quarantineLog quarantines every partition holding live pointers into
// value log n, returning the IDs transitioned by this call. The owner set
// is read under each partition's lock — the same p.logs bookkeeping that
// keeps the log alive for GC.
func (db *DB) quarantineLog(n uint32, cause string, err error) []uint32 {
	var hit []uint32
	for _, p := range db.partitions() {
		p.mu.RLock()
		owns := p.logs[n]
		p.mu.RUnlock()
		if owns && db.quarantinePartition(p, cause, err) {
			hit = append(hit, p.id)
		}
	}
	return hit
}

// quarantineErr returns the error writes to p must surface, or nil.
func (p *partition) quarantineErr() error {
	if q := p.quarantine.Load(); q != nil {
		return q
	}
	return nil
}

// quarantinedCount counts currently quarantined partitions (the /healthz
// and StatsSnapshot gauge).
func (db *DB) quarantinedCount() int {
	n := 0
	for _, p := range db.partitions() {
		if p.quarantine.Load() != nil {
			n++
		}
	}
	return n
}

// noteReadCorruption routes a foreground read failure into quarantine
// when it classifies as corruption. Reads keep returning the original
// error; this only flips the containment state so subsequent writes to
// the damaged partition stop accepting data the engine may not be able
// to maintain.
func (db *DB) noteReadCorruption(p *partition, err error) {
	if err == nil || Classify(err) != ClassCorruption {
		return
	}
	db.quarantinePartition(p, "foreground read", err)
}

// jobFailed is the scheduler's terminal-failure escalation point.
// Corruption inside one partition's files quarantines that partition;
// manifest-level corruption and every non-corruption terminal failure
// (retries exhausted, fatal) still degrade the whole DB — the former
// because the metadata spine is suspect, the latter because the engine
// can no longer guarantee forward progress anywhere.
func (db *DB) jobFailed(t task, err error) {
	if err == nil {
		return
	}
	if Classify(err) == ClassCorruption && !errors.Is(err, manifest.ErrCorrupt) {
		// The cause names WHAT found the corruption; the wrapped err carries
		// where — Error() prints both, so embedding err here would duplicate.
		cause := fmt.Sprintf("%s job", t.kind)
		var lce logCorruptionError
		if errors.As(err, &lce) {
			// Scrub names the corrupt log explicitly: fan the quarantine out
			// to every partition holding pointers into it.
			db.quarantineLog(lce.log, cause, err)
			return
		}
		db.quarantinePartition(t.p, cause, err)
		return
	}
	db.setDegraded(t, err)
}

// logCorruptionError tags a corruption error with the value log it was
// found in, so the quarantine fan-out (quarantineLog) can compute the
// exact blast radius. It is produced by the scrub's log pass.
type logCorruptionError struct {
	log uint32
	err error
}

func (e logCorruptionError) Error() string {
	return fmt.Sprintf("value log %d: %v", e.log, e.err)
}

func (e logCorruptionError) Unwrap() error { return e.err }
