package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"unikv/internal/vfs"
)

// TestSortedViewEquivalence is the view's property test: one random 6000-op
// trace applied to a view-on DB and a view-off DB must produce identical
// results for every Get, Put, Delete, and Scan. Scans are weighted heavily
// (they are the code under test), and the tiny limits plus periodic forced
// flushes drive every view transition throughout the trace: incremental
// builds at flush, rebuilds at merge and scan merge, resets at split.
//
// Mid-trace the test pins snapshots on both DBs: each snapshot's full dump
// is captured at pin time, the trace keeps storming (flushes, merges,
// splits, GC), and at trace end every snapshot must replay byte-identically
// — on the view path and the per-table fallback path alike.
func TestSortedViewEquivalence(t *testing.T) {
	onOpts := smallOpts(vfs.NewMem())
	onOpts.PartitionSizeLimit = 16 << 10 // low enough that the trace splits
	on, err := Open("on", onOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer on.Close()
	offOpts := smallOpts(vfs.NewMem())
	offOpts.PartitionSizeLimit = 16 << 10
	offOpts.SortedViewOff = true
	off, err := Open("off", offOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()

	rnd := rand.New(rand.NewSource(43))
	k := func() []byte { return []byte(fmt.Sprintf("key-%03d", rnd.Intn(200))) }
	type pin struct {
		op      int
		on, off *Snapshot
		want    []KV
	}
	var pins []pin
	for op := 0; op < 6000; op++ {
		if op == 2000 || op == 4000 {
			sOn, err := on.NewSnapshot()
			if err != nil {
				t.Fatalf("op %d: on.NewSnapshot: %v", op, err)
			}
			sOff, err := off.NewSnapshot()
			if err != nil {
				t.Fatalf("op %d: off.NewSnapshot: %v", op, err)
			}
			want := dumpSnap(t, sOn)
			sameKVs(t, fmt.Sprintf("op %d: on vs off snapshot", op), want, dumpSnap(t, sOff))
			pins = append(pins, pin{op: op, on: sOn, off: sOff, want: want})
		}
		switch rnd.Intn(10) {
		case 0, 1, 2, 3: // Put
			key := k()
			val := []byte(fmt.Sprintf("val-%d-%s", op, bytes.Repeat([]byte("y"), 120+rnd.Intn(80))))
			if err := on.Put(key, val); err != nil {
				t.Fatalf("op %d: on.Put: %v", op, err)
			}
			if err := off.Put(key, val); err != nil {
				t.Fatalf("op %d: off.Put: %v", op, err)
			}
		case 4: // Delete
			key := k()
			if err := on.Delete(key); err != nil {
				t.Fatalf("op %d: on.Delete: %v", op, err)
			}
			if err := off.Delete(key); err != nil {
				t.Fatalf("op %d: off.Delete: %v", op, err)
			}
		case 5: // forced flush: a fresh table, view-on an incremental build
			if err := on.Flush(); err != nil {
				t.Fatalf("op %d: on.Flush: %v", op, err)
			}
			if err := off.Flush(); err != nil {
				t.Fatalf("op %d: off.Flush: %v", op, err)
			}
		case 6, 7, 8: // Scan
			start := k()
			end := append(append([]byte(nil), start...), 0xff)
			a, errA := on.Scan(start, end, 20)
			b, errB := off.Scan(start, end, 20)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("op %d: scan errs diverge: %v vs %v", op, errA, errB)
			}
			if len(a) != len(b) {
				t.Fatalf("op %d: scan lengths diverge: %d vs %d", op, len(a), len(b))
			}
			for i := range a {
				if !bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Value, b[i].Value) {
					t.Fatalf("op %d: scan[%d] diverges: %q=%q vs %q=%q",
						op, i, a[i].Key, a[i].Value, b[i].Key, b[i].Value)
				}
			}
		default: // Get
			key := k()
			a, errA := on.Get(key)
			b, errB := off.Get(key)
			if !errors.Is(errA, errB) && (errA != nil || errB != nil) {
				t.Fatalf("op %d: Get(%s) errs diverge: %v vs %v", op, key, errA, errB)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("op %d: Get(%s) diverges: %q vs %q", op, key, a, b)
			}
		}
	}

	// Every mid-trace snapshot must replay exactly its pin-time dump after
	// thousands of further ops and all the maintenance they triggered.
	for _, p := range pins {
		sameKVs(t, fmt.Sprintf("op %d snapshot (view on) at trace end", p.op), p.want, dumpSnap(t, p.on))
		sameKVs(t, fmt.Sprintf("op %d snapshot (view off) at trace end", p.op), p.want, dumpSnap(t, p.off))
		if err := p.on.Close(); err != nil {
			t.Fatal(err)
		}
		if err := p.off.Close(); err != nil {
			t.Fatal(err)
		}
	}

	mOn, mOff := on.Metrics(), off.Metrics()
	if mOn.SortedViewBuilds == 0 || mOn.SortedViewRebuilds == 0 {
		t.Fatalf("trace never exercised the view: builds=%d rebuilds=%d",
			mOn.SortedViewBuilds, mOn.SortedViewRebuilds)
	}
	if mOn.Splits == 0 || mOn.Merges == 0 || mOn.ScanMerges == 0 {
		t.Fatalf("trace never exercised maintenance: splits=%d merges=%d scan-merges=%d",
			mOn.Splits, mOn.Merges, mOn.ScanMerges)
	}
	if mOff.SortedViewBuilds != 0 || mOff.SortedViewEntries != 0 {
		t.Fatalf("view-off DB built a view: %+v", mOff)
	}
}

// TestScanLimitEquivalenceViewOnOff is the S2 audit's pinned conclusion:
// on both the cross-table sorted-view path and the per-table fallback path
// (SortedViewOff) a tombstone is skipped BEFORE the limit check, so a
// limit-N scan over a tombstone-riddled range returns the same N live keys
// on either path. The audit found no divergence — both branches feed one
// shared emit loop whose tombstone `continue` precedes the count — and
// this randomized cross-check (many deletes, limits from 1 up, bounded
// and unbounded ranges) keeps it that way.
func TestScanLimitEquivalenceViewOnOff(t *testing.T) {
	onOpts := smallOpts(vfs.NewMem())
	onOpts.PartitionSizeLimit = 16 << 10
	on, err := Open("on", onOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer on.Close()
	offOpts := smallOpts(vfs.NewMem())
	offOpts.PartitionSizeLimit = 16 << 10
	offOpts.SortedViewOff = true
	off, err := Open("off", offOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()

	// A delete-heavy trace leaves tombstones at every level: live in the
	// memtable, flushed into unsorted tables, and merged into the sorted
	// store, so limit counting meets shadowed keys on every path.
	rnd := rand.New(rand.NewSource(47))
	k := func(i int) []byte { return []byte(fmt.Sprintf("key-%03d", i)) }
	for op := 0; op < 3000; op++ {
		switch {
		case op%9 < 5: // Put
			key := k(rnd.Intn(200))
			val := []byte(fmt.Sprintf("val-%d-%s", op, bytes.Repeat([]byte("t"), 100+rnd.Intn(60))))
			if err := on.Put(key, val); err != nil {
				t.Fatal(err)
			}
			if err := off.Put(key, val); err != nil {
				t.Fatal(err)
			}
		case op%9 < 8: // Delete — heavy, to shadow runs of consecutive keys
			key := k(rnd.Intn(200))
			if err := on.Delete(key); err != nil {
				t.Fatal(err)
			}
			if err := off.Delete(key); err != nil {
				t.Fatal(err)
			}
		default:
			if err := on.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := off.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}

	check := func(what string, start, end []byte, limit int) {
		t.Helper()
		a, errA := on.Scan(start, end, limit)
		b, errB := off.Scan(start, end, limit)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: errs diverge: %v vs %v", what, errA, errB)
		}
		sameKVs(t, what, a, b)
		if limit > 0 && len(a) > limit {
			t.Fatalf("%s: limit %d overshot: %d results", what, limit, len(a))
		}
	}
	for trial := 0; trial < 400; trial++ {
		start := k(rnd.Intn(200))
		limit := []int{1, 2, 3, 5, 20, 250}[rnd.Intn(6)]
		switch rnd.Intn(3) {
		case 0: // bounded range, counted
			end := k(rnd.Intn(200) + 1)
			if bytes.Compare(start, end) > 0 {
				start, end = end, start
			}
			check(fmt.Sprintf("trial %d: [%s,%s) limit %d", trial, start, end, limit), start, end, limit)
		case 1: // unbounded range, counted
			check(fmt.Sprintf("trial %d: [%s,∞) limit %d", trial, start, limit), start, nil, limit)
		default: // bounded range, uncounted (limit <= 0)
			end := []byte("key-\xff")
			check(fmt.Sprintf("trial %d: [%s,%s) unlimited", trial, start, end), start, end, 0)
		}
	}
}

// TestSortedViewSurvivesRecovery: after a reopen the view is stale (it is
// memory-only and deliberately not rebuilt during recovery, to keep the
// hash checkpoint's read savings); the first scan rebuilds it lazily and
// must see exactly the recovered data.
func TestSortedViewSurvivesRecovery(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs)
	want := map[string]string{}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("key-%03d", i%120)
		v := fmt.Sprintf("val-%d", i)
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db = openSmall(t, fs)
	defer db.Close()
	if m := db.Metrics(); m.SortedViewEntries != 0 {
		t.Fatalf("recovery eagerly built the view: %d entries", m.SortedViewEntries)
	}
	kvs, err := db.Scan([]byte("key-"), []byte("key-\xff"), len(want)+10)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != len(want) {
		t.Fatalf("post-recovery scan: %d keys, want %d", len(kvs), len(want))
	}
	for _, kv := range kvs {
		if want[string(kv.Key)] != string(kv.Value) {
			t.Fatalf("post-recovery scan %s: got %q want %q", kv.Key, kv.Value, want[string(kv.Key)])
		}
	}
	m := db.Metrics()
	if m.UnsortedTables > 0 && m.SortedViewRebuilds == 0 {
		t.Fatalf("first scan did not lazily rebuild the view: %+v", m)
	}
}
