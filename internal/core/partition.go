package core

import (
	"io"
	"sync"
	"sync/atomic"

	"unikv/internal/codec"
	"unikv/internal/manifest"
	"unikv/internal/memtable"
	"unikv/internal/record"
	"unikv/internal/sorted"
	"unikv/internal/sortedview"
	"unikv/internal/sstable"
	"unikv/internal/unsorted"
	"unikv/internal/wal"
)

// partition is one range partition: memtable + WAL + UnsortedStore +
// SortedStore + references to value logs. Its RWMutex serializes writers
// and structural changes (flush/merge/GC/split) against readers.
type partition struct {
	db    *DB
	id    uint32
	dir   string
	lower []byte // inclusive; nil/empty = -inf
	upper []byte // exclusive; nil = +inf

	// maintMu serializes structural background jobs (merge/scan-merge/
	// GC/split) on this partition; flushMu serializes flushes (a flush
	// may run concurrently with a structural job, but not with a split
	// or a user-driven Flush draining the immutable queue). Both are
	// acquired before mu; see scheduler.go for the full lock order.
	maintMu sync.Mutex
	flushMu sync.Mutex

	mu       sync.RWMutex
	mem      *memtable.Memtable
	imm      []*memtable.Memtable // frozen, flush-pending; oldest first
	immWALs  []uint64             // WAL file per frozen memtable (0 = none)
	wal      *wal.Writer
	walNum   uint64
	uns      *unsorted.Store
	srt      *sorted.Store
	logs     map[uint32]bool // referenced value logs
	hashCkpt uint64          // current checkpoint file number (0 = none)

	flushesSinceCkpt int
	garbageBytes     atomic.Int64 // dead value bytes attributed to this partition

	// quarantine is set (once, never cleared while open) when corruption is
	// found in one of this partition's files — by the background scrub, a
	// background job, or a foreground read. A quarantined partition rejects
	// writes and skips maintenance; reads are still attempted against
	// whatever remains readable. See quarantine.go.
	quarantine atomic.Pointer[QuarantinedError]

	stallMu sync.Mutex
	stallCh chan struct{} // closed to wake throttled writers
}

// covers reports whether key belongs to this partition.
func (p *partition) covers(key []byte) bool {
	if codec.Compare(key, p.lower) < 0 && len(p.lower) > 0 {
		return false
	}
	if p.upper != nil && codec.Compare(key, p.upper) >= 0 {
		return false
	}
	return true
}

func newMemtable() *memtable.Memtable { return memtable.New() }

// initEmptyStores sets up fresh in-memory components.
func (p *partition) initEmptyStores() error {
	p.mem = newMemtable()
	p.uns = unsorted.New(p.db.opts.HashBuckets)
	p.uns.DisableIndex = p.db.opts.DisableHashIndex
	p.uns.DisableView = p.db.opts.SortedViewOff
	p.srt = sorted.New()
	p.logs = make(map[uint32]bool)
	return nil
}

// newWALLocked creates a fresh WAL file (no manifest commit; callers batch
// the SetWAL edit). The directory entry is fsynced immediately: every
// subsequent WAL Sync only makes the file's contents durable, and an
// acknowledged write would be lost if a crash dropped the entry itself.
func (p *partition) newWALLocked() error {
	num := p.db.allocFileNum()
	f, err := p.db.fs.Create(walName(p.dir, num))
	if err != nil {
		return err
	}
	if err := p.db.fs.SyncDir(p.dir); err != nil {
		return err
	}
	p.wal = wal.NewWriter(f)
	p.walNum = num
	return nil
}

// rotateWALLocked swaps in a fresh WAL and commits the pointer change. The
// old file is removed after the commit.
func (p *partition) rotateWALLocked() error {
	oldNum := p.walNum
	if p.wal != nil {
		if err := p.wal.Sync(); err != nil {
			return err
		}
		p.wal.Close()
		p.wal = nil
	}
	if err := p.newWALLocked(); err != nil {
		return err
	}
	if err := p.db.man.Apply(
		manifest.SetWAL(p.id, p.walNum),
		manifest.LastSeq(p.db.seq.Load()),
		p.db.nextFileEdit(),
	); err != nil {
		return err
	}
	if oldNum != 0 {
		p.db.fs.Remove(walName(p.dir, oldNum))
	}
	return nil
}

// replayWAL loads the partition's WAL into the memtable.
func (p *partition) replayWAL(num uint64) error {
	f, err := p.db.fs.Open(walName(p.dir, num))
	if err != nil {
		return err
	}
	defer f.Close()
	r := wal.NewReader(f)
	for {
		data, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		for len(data) > 0 {
			var rec record.Record
			rec, data, err = record.Decode(data)
			if err != nil {
				// Torn batch tail inside a record payload: stop replay
				// here (everything before is intact).
				return nil
			}
			p.mem.Put(rec.Clone())
		}
	}
}

// ensureWALLocked lazily recreates the WAL after a failed rotation left
// p.wal nil (a transient fault in newWALLocked aborts the rotating write
// or flush, but the partition must not silently accept un-logged writes
// afterwards: a later crash would lose them even though they were acked).
// File numbers are monotonic, so the replacement WAL replays after the
// closed one and write order is preserved.
func (p *partition) ensureWALLocked() error {
	if p.wal != nil || p.db.opts.DisableWAL {
		return nil
	}
	return p.newWALLocked()
}

// put applies one record. It returns true when the partition wants a split
// (checked by DB.Put, which owns the router lock ordering).
func (p *partition) put(rec record.Record) (wantSplit bool, err error) {
	if err := p.ensureWALLocked(); err != nil {
		return false, err
	}
	if p.wal != nil {
		if err := p.wal.AddRecord(rec.Encode(nil)); err != nil {
			return false, err
		}
		if p.db.opts.SyncWrites {
			if err := p.wal.Sync(); err != nil {
				return false, err
			}
		}
	}
	p.mem.Put(rec)
	return p.afterWriteLocked()
}

// putBatch applies several records with one WAL record — they become
// durable atomically within this partition.
func (p *partition) putBatch(recs []record.Record) (wantSplit bool, err error) {
	if err := p.ensureWALLocked(); err != nil {
		return false, err
	}
	if p.wal != nil {
		var buf []byte
		for _, rec := range recs {
			buf = rec.Encode(buf)
		}
		if err := p.wal.AddRecord(buf); err != nil {
			return false, err
		}
		if p.db.opts.SyncWrites {
			if err := p.wal.Sync(); err != nil {
				return false, err
			}
		}
	}
	for _, rec := range recs {
		p.mem.Put(rec)
	}
	return p.afterWriteLocked()
}

// afterWriteLocked runs the scheduling that follows a write. Inline mode
// (no scheduler): flush at MemtableSize, merge at UnsortedLimit (then
// maybe GC, then report a split wish), size-based scan merge at
// ScanMergeLimit — all synchronously, under the lock. Background mode:
// freeze the full memtable onto the immutable queue and hand everything
// else to the worker pool.
func (p *partition) afterWriteLocked() (wantSplit bool, err error) {
	if p.mem.Size() < p.db.opts.MemtableSize {
		return false, nil
	}
	if p.db.sched != nil {
		if err := p.freezeMemLocked(); err != nil {
			return false, err
		}
		p.db.sched.enqueue(p, jobFlush)
		return false, nil
	}
	if err := p.flushLocked(); err != nil {
		return false, err
	}
	if p.uns.SizeBytes() >= p.db.opts.UnsortedLimit {
		if err := p.mergeLocked(); err != nil {
			return false, err
		}
		if err := p.maybeGCLocked(); err != nil {
			return false, err
		}
		return p.sizeLocked() >= p.db.opts.PartitionSizeLimit && !p.db.opts.DisablePartitioning, nil
	}
	if !p.db.opts.DisableScanMerge && p.uns.NumTables() >= p.db.opts.ScanMergeLimit {
		if err := p.scanMergeLocked(); err != nil {
			return false, err
		}
	}
	return false, nil
}

// logBytesLocked estimates the value-log bytes attributable to this
// partition: each referenced log's size divided by its number of
// referencing partitions (a log shared after a split counts half to each
// child until their lazy value splits disentangle it).
func (p *partition) logBytesLocked() int64 {
	var size int64
	p.db.logRefs.Lock()
	for n := range p.logs {
		refs := p.db.logRefs.refs[n]
		if refs < 1 {
			refs = 1
		}
		size += p.db.vl.SizeOf(n) / int64(refs)
	}
	p.db.logRefs.Unlock()
	return size
}

// immBytesLocked sums the frozen memtables' sizes.
func (p *partition) immBytesLocked() int64 {
	var size int64
	for _, m := range p.imm {
		size += m.Size()
	}
	return size
}

// sizeLocked returns the partition's data footprint: table bytes, memtable
// bytes (live and frozen), and its attributed share of the value-log
// bytes.
func (p *partition) sizeLocked() int64 {
	return p.uns.SizeBytes() + p.srt.SizeBytes() + p.mem.Size() + p.immBytesLocked() + p.logBytesLocked()
}

// freezeMemLocked moves the full memtable (and its WAL) onto the immutable
// queue and installs a fresh memtable + WAL. No manifest edit happens
// here: file numbers are allocated monotonically, so recovery replays the
// committed WAL plus every later-numbered WAL file in the directory, and
// each flush commit advances the manifest pointer to the oldest WAL still
// holding unflushed data.
func (p *partition) freezeMemLocked() error {
	if p.mem.Empty() {
		return nil
	}
	frozenWAL := p.walNum
	if p.wal != nil {
		if err := p.wal.Sync(); err != nil {
			return err
		}
		p.wal.Close()
		p.wal = nil
		if err := p.newWALLocked(); err != nil {
			return err
		}
	} else {
		frozenWAL = 0
	}
	p.imm = append(p.imm, p.mem)
	p.immWALs = append(p.immWALs, frozenWAL)
	p.mem = newMemtable()
	return nil
}

// buildTable writes mem's live records into a new table file and opens a
// reader over it. It only touches fresh files and the given (frozen or
// caller-locked) memtable, so background flushes run it without p.mu.
// Alongside the table it returns the key list for the hash index and, when
// the sorted view is enabled, the view entries collected in the same pass
// (Builder.NextPosition yields each record's cursor before it is written),
// so the flush commit extends the view without re-reading the file.
func (p *partition) buildTable(mem *memtable.Memtable) (*unsorted.Table, [][]byte, []sortedview.Entry, error) {
	num := p.db.allocFileNum()
	name := tableName(p.dir, num)
	f, err := p.db.fs.Create(name)
	if err != nil {
		return nil, nil, nil, err
	}
	b := sstable.NewBuilder(f, sstable.BuilderOptions{BlockSize: p.db.opts.BlockSize})
	var keys [][]byte
	var entries []sortedview.Entry
	collect := !p.db.opts.SortedViewOff
	it := mem.NewIterator()
	var last []byte
	for ok := it.First(); ok; ok = it.Next() {
		rec := it.Record()
		if last != nil && codec.Compare(rec.Key, last) == 0 {
			continue // older version of the same key
		}
		last = rec.Key
		k := rec.Key
		if collect {
			// Copy: view entries outlive the memtable and must not pin its
			// record buffers.
			k = append([]byte(nil), rec.Key...)
			block, pos := b.NextPosition()
			entries = append(entries, sortedview.Entry{
				Key: k, Seq: rec.Seq, Kind: rec.Kind,
				Block: int32(block), Pos: int32(pos),
			})
		}
		b.Add(rec)
		keys = append(keys, k)
	}
	props, err := b.Finish()
	if err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	if err := f.Close(); err != nil {
		return nil, nil, nil, err
	}
	rf, err := p.db.fs.Open(name)
	if err != nil {
		return nil, nil, nil, err
	}
	rdr, err := sstable.Open(rf)
	if err != nil {
		rf.Close()
		return nil, nil, nil, err
	}
	rdr.SetCache(p.db.cache, num)
	meta := manifest.TableMeta{
		FileNum: num, Size: props.Size, Count: props.Count,
		Smallest: props.Smallest, Largest: props.Largest,
		MinSeq: props.MinSeq, MaxSeq: props.MaxSeq,
	}
	return &unsorted.Table{Meta: meta, Reader: rdr}, keys, entries, nil
}

// flushLocked writes the live memtable to a new UnsortedStore table,
// commits it, rotates the WAL, and checkpoints the hash index on schedule.
func (p *partition) flushLocked() error {
	if p.mem.Empty() {
		return nil
	}
	tbl, keys, entries, err := p.buildTable(p.mem)
	if err != nil {
		return err
	}

	// Rotate the WAL under the same commit so replay never duplicates the
	// flushed data.
	oldWAL := p.walNum
	edits := []manifest.Edit{
		manifest.AddUnsorted(p.id, tbl.Meta),
		manifest.LastSeq(p.db.seq.Load()),
	}
	if p.wal != nil {
		p.wal.Sync()
		p.wal.Close()
		p.wal = nil
	}
	if !p.db.opts.DisableWAL {
		if err := p.newWALLocked(); err != nil {
			return err
		}
		edits = append(edits, manifest.SetWAL(p.id, p.walNum))
	}
	edits = append(edits, p.db.nextFileEdit())
	// Make the new table's directory entry durable before the manifest
	// commit references it.
	if err := p.db.fs.SyncDir(p.dir); err != nil {
		return err
	}
	if err := p.db.man.Apply(edits...); err != nil {
		return err
	}
	if oldWAL != 0 {
		p.db.fs.Remove(walName(p.dir, oldWAL))
	}
	if err := p.uns.AddTable(tbl, keys, entries); err != nil {
		return err
	}
	p.mem = newMemtable()
	p.db.stats.Flushes.Add(1)

	// Periodic hash-index checkpoint (paper: every UnsortedLimit/2 worth
	// of flushed tables).
	p.flushesSinceCkpt++
	if !p.db.opts.DisableHashCkpt && p.flushesSinceCkpt >= p.db.opts.HashCheckpointEvery {
		if err := p.checkpointHashLocked(); err != nil {
			return err
		}
	}
	return nil
}

// commitImmLocked installs a table built from the oldest frozen memtable:
// one manifest batch adds the table and advances the WAL pointer to the
// oldest WAL still holding unflushed data, then the memtable leaves the
// queue and its WAL file is removed. Requires p.mu held for writing.
func (p *partition) commitImmLocked(tbl *unsorted.Table, keys [][]byte, entries []sortedview.Entry) error {
	oldWAL := p.immWALs[0]
	nextWAL := p.walNum
	if len(p.immWALs) > 1 {
		nextWAL = p.immWALs[1]
	}
	edits := []manifest.Edit{
		manifest.AddUnsorted(p.id, tbl.Meta),
		manifest.LastSeq(p.db.seq.Load()),
	}
	if nextWAL != 0 {
		edits = append(edits, manifest.SetWAL(p.id, nextWAL))
	}
	edits = append(edits, p.db.nextFileEdit())
	if err := p.db.fs.SyncDir(p.dir); err != nil {
		tbl.Reader.Close()
		return err
	}
	if err := p.db.man.Apply(edits...); err != nil {
		tbl.Reader.Close()
		return err
	}
	if err := p.uns.AddTable(tbl, keys, entries); err != nil {
		return err
	}
	p.imm = p.imm[1:]
	p.immWALs = p.immWALs[1:]
	if oldWAL != 0 {
		p.db.fs.Remove(walName(p.dir, oldWAL))
	}
	p.db.stats.Flushes.Add(1)
	p.flushesSinceCkpt++
	if !p.db.opts.DisableHashCkpt && p.flushesSinceCkpt >= p.db.opts.HashCheckpointEvery {
		if err := p.checkpointHashLocked(); err != nil {
			return err
		}
	}
	return nil
}

// backgroundFlush is the flush job: it builds the table from the oldest
// frozen memtable without the partition lock (readers keep hitting the
// frozen memtable meanwhile) and takes the lock only to commit.
func (p *partition) backgroundFlush() error {
	p.flushMu.Lock()
	defer p.flushMu.Unlock()
	p.mu.RLock()
	if len(p.imm) == 0 {
		p.mu.RUnlock()
		return nil
	}
	mem := p.imm[0]
	p.mu.RUnlock()

	tbl, keys, entries, err := p.buildTable(mem)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.commitImmLocked(tbl, keys, entries)
}

// drainImmLocked flushes every frozen memtable, oldest first. Requires
// p.mu; callers racing the worker pool (Flush, CompactAll, split) must
// also hold flushMu so no flush job is mid-build.
func (p *partition) drainImmLocked() error {
	for len(p.imm) > 0 {
		tbl, keys, entries, err := p.buildTable(p.imm[0])
		if err != nil {
			return err
		}
		if err := p.commitImmLocked(tbl, keys, entries); err != nil {
			return err
		}
	}
	return nil
}

// checkpointHashLocked persists the hash index and commits the pointer.
func (p *partition) checkpointHashLocked() error {
	num := p.db.allocFileNum()
	if err := p.uns.Checkpoint(p.db.fs, ckptName(p.dir, num)); err != nil {
		return err
	}
	old := p.hashCkpt
	if err := p.db.fs.SyncDir(p.dir); err != nil {
		return err
	}
	if err := p.db.man.Apply(
		manifest.SetHashCkpt(p.id, num),
		p.db.nextFileEdit(),
	); err != nil {
		return err
	}
	p.hashCkpt = num
	p.flushesSinceCkpt = 0
	if old != 0 {
		p.db.fs.Remove(ckptName(p.dir, old))
	}
	return nil
}

// closeTablesLocked releases all table readers (Close path).
func (p *partition) closeTablesLocked() {
	for _, t := range p.uns.Tables() {
		t.Reader.Close()
	}
	for _, t := range p.srt.Tables() {
		t.Reader.Close()
	}
}

// logsSliceLocked returns the referenced log set as a sorted slice for
// manifest edits.
func (p *partition) logsSliceLocked() []uint32 {
	out := make([]uint32, 0, len(p.logs))
	for n := range p.logs {
		out = append(out, n)
	}
	// insertion sort; sets are small
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// recoverUnsorted restores a partition's UnsortedStore.
func (db *DB) recoverUnsorted(
	meta *manifest.PartitionMeta,
	ckpt string,
	openTable func(manifest.TableMeta) (*sstable.Reader, error),
) (*unsorted.Store, error) {
	if db.opts.DisableHashIndex {
		s := unsorted.New(db.opts.HashBuckets)
		s.DisableIndex = true
		s.DisableView = db.opts.SortedViewOff
		if len(meta.Unsorted) > 0 {
			// Like unsorted.Recover: defer the view rebuild to the first
			// scan so recovery reads no table bytes here.
			s.MarkViewStale()
		}
		for _, tm := range meta.Unsorted {
			rdr, err := openTable(tm)
			if err != nil {
				return nil, err
			}
			if err := s.AddTable(&unsorted.Table{Meta: tm, Reader: rdr}, nil, nil); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
	return unsorted.Recover(db.fs, db.opts.HashBuckets, meta.Unsorted, ckpt, db.opts.SortedViewOff, openTable)
}

// recoverSorted restores a partition's SortedStore.
func recoverSorted(
	meta *manifest.PartitionMeta,
	openTable func(manifest.TableMeta) (*sstable.Reader, error),
) (*sorted.Store, error) {
	s := sorted.New()
	tables := make([]*sorted.Table, 0, len(meta.Sorted))
	for _, tm := range meta.Sorted {
		rdr, err := openTable(tm)
		if err != nil {
			return nil, err
		}
		tables = append(tables, &sorted.Table{Meta: tm, Reader: rdr})
	}
	s.ReplaceAll(tables)
	return s, nil
}
