package core

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"unikv/internal/vfs"
)

// reopenAndAudit reopens the repaired database, requires a clean
// VerifyIntegrity, and classifies every seeded key as intact (correct
// bytes) or lost (ErrNotFound). Any other outcome — wrong bytes, a read
// error — fails: repair must never leave silently wrong data behind.
func reopenAndAudit(t *testing.T, fs vfs.FS, n int) (intact, lost int) {
	t.Helper()
	db := openSmall(t, fs)
	defer func() {
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity after repair: %v", err)
	}
	for i := 0; i < n; i++ {
		v, err := db.Get(key(i))
		switch {
		case err == nil && bytes.Equal(v, val(i)):
			intact++
		case errors.Is(err, ErrNotFound):
			lost++
		case err == nil:
			t.Fatalf("key %d returned wrong bytes after repair", i)
		default:
			t.Fatalf("key %d unreadable after repair: %v", i, err)
		}
	}
	// The repaired database must also accept writes everywhere again.
	if err := db.Put([]byte("post-repair-probe"), []byte("ok")); err != nil {
		t.Fatalf("write after repair: %v", err)
	}
	return intact, lost
}

// TestRepairCleanIsNoop: repairing an intact database loses nothing and
// changes nothing observable.
func TestRepairCleanIsNoop(t *testing.T) {
	fs, n := corruptSeed(t)
	report, err := Repair("db", smallOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	if report.DataLost() || len(report.LogsTruncated) > 0 {
		t.Fatalf("clean repair reported damage:\n%s", report)
	}
	intact, lost := reopenAndAudit(t, fs, n)
	if lost != 0 || intact != n {
		t.Fatalf("clean repair lost data: %d intact, %d lost", intact, lost)
	}
}

// TestRepairDropsCorruptTable: a table with a flipped data byte moves to
// lost/, the report names it with its key range, and every key outside the
// dropped table survives byte-identical.
func TestRepairDropsCorruptTable(t *testing.T) {
	fs, n := corruptSeed(t)
	pdir := firstFile(t, fs, "db", "p[0-9]*")
	name := firstFile(t, fs, pdir, "*.sst")
	flipByte(t, fs, name, 20)

	report, err := Repair("db", smallOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.TablesDropped) != 1 {
		t.Fatalf("TablesDropped=%d, want 1:\n%s", len(report.TablesDropped), report)
	}
	d := report.TablesDropped[0]
	if d.Path != name {
		t.Fatalf("dropped %s, corrupted %s", d.Path, name)
	}
	if len(d.Smallest) == 0 || len(d.Largest) == 0 {
		t.Fatalf("loss report missing the affected key range: %+v", d)
	}
	if !report.DataLost() {
		t.Fatal("DataLost()=false after dropping a table")
	}
	// The original bytes moved to lost/, not deleted.
	if lostName := firstFile(t, fs, filepath.Join("db", "lost"), "*.sst"); lostName == "" {
		t.Fatal("dropped table not preserved in lost/")
	}

	intact, lost := reopenAndAudit(t, fs, n)
	if lost == 0 {
		t.Fatal("dropping a table lost no keys — the corrupt table was not in the read path")
	}
	if intact == 0 {
		t.Fatal("repair lost every key for a single corrupt table")
	}
	// Loss is bounded by the dropped table's key range.
	for i := 0; i < n; i++ {
		k := key(i)
		inRange := bytes.Compare(k, d.Smallest) >= 0 && bytes.Compare(k, d.Largest) <= 0
		if !inRange {
			continue
		}
	}
	if intact+lost != n {
		t.Fatalf("audit mismatch: %d intact + %d lost != %d", intact, lost, n)
	}
}

// TestRepairTruncatesTornVlogAndDropsDanglingPointers: a torn value-log
// tail is cut back to the last valid frame, and every table pointer into
// the lost region is dropped via rewrite — the repaired database reopens
// clean with bounded, reported loss.
func TestRepairTruncatesTornVlogAndDropsDanglingPointers(t *testing.T) {
	fs, n := corruptSeed(t)
	name := firstFile(t, fs, filepath.Join("db", "vlog"), "vlog-*.log")
	data, err := fs.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a frame near the middle: everything from that frame on is an
	// invalid suffix, so repair truncates roughly half the log.
	flipByte(t, fs, name, len(data)/2)

	report, err := Repair("db", smallOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.LogsTruncated) != 1 {
		t.Fatalf("LogsTruncated=%d, want 1:\n%s", len(report.LogsTruncated), report)
	}
	tr := report.LogsTruncated[0]
	if tr.NewSize <= 0 || tr.NewSize >= tr.OldSize {
		t.Fatalf("truncation %d -> %d makes no sense", tr.OldSize, tr.NewSize)
	}
	if report.PointersDropped == 0 || report.TablesRewritten == 0 {
		t.Fatalf("no dangling pointers dropped for a truncated referenced log:\n%s", report)
	}
	got, err := fs.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(got)) != tr.NewSize {
		t.Fatalf("log is %d bytes, report says %d", len(got), tr.NewSize)
	}

	intact, lost := reopenAndAudit(t, fs, n)
	if lost == 0 || intact == 0 {
		t.Fatalf("unexpected loss shape: %d intact, %d lost", intact, lost)
	}
}

// TestRepairRebuildsCorruptManifest: with the manifest unreadable, repair
// reconstructs the layout from the directory shape. Tables and logs are
// intact, so no committed data may be lost.
func TestRepairRebuildsCorruptManifest(t *testing.T) {
	fs, n := corruptSeed(t)
	name := firstFile(t, fs, "db", "MANIFEST-*")
	flipByte(t, fs, name, 30)

	report, err := Repair("db", smallOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	if !report.ManifestRebuilt {
		t.Fatalf("manifest corruption not detected:\n%s", report)
	}
	if report.DataLost() {
		t.Fatalf("manifest rebuild lost data with intact tables:\n%s", report)
	}
	intact, lost := reopenAndAudit(t, fs, n)
	if lost != 0 || intact != n {
		t.Fatalf("manifest rebuild lost keys: %d intact, %d lost", intact, lost)
	}
}

// TestRepairWhollyCorruptVlog: a log with no valid frame moves to lost/
// and every pointer into it is dropped.
func TestRepairWhollyCorruptVlog(t *testing.T) {
	fs, n := corruptSeed(t)
	name := firstFile(t, fs, filepath.Join("db", "vlog"), "vlog-*.log")
	flipByte(t, fs, name, 0) // first frame header: no valid prefix

	report, err := Repair("db", smallOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.LogsDropped) != 1 {
		t.Fatalf("LogsDropped=%d, want 1:\n%s", len(report.LogsDropped), report)
	}
	if fs.Exists(name) {
		t.Fatal("wholly corrupt log still present in vlog/")
	}
	intact, lost := reopenAndAudit(t, fs, n)
	if lost == 0 || intact == 0 {
		t.Fatalf("unexpected loss shape: %d intact, %d lost", intact, lost)
	}
}

// TestRepairRefusesOpenDatabase: repair takes the directory lock, so a
// live owner blocks it with ErrDBLocked.
func TestRepairRefusesOpenDatabase(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs)
	defer db.Close()
	if _, err := Repair("db", smallOpts(fs)); !errors.Is(err, ErrDBLocked) {
		t.Fatalf("Repair on an open db: %v, want ErrDBLocked", err)
	}
}
