package core

import (
	"bytes"
	"testing"

	"unikv/internal/vfs"
	"unikv/internal/vlog"
)

// TestLazyValueSplitLifecycle drives the full shared-log story: a split
// leaves both children referencing the parent's value logs; each child's
// GC rewrites its live values into its own logs; once both children have
// moved on, the shared files are deleted.
func TestLazyValueSplitLifecycle(t *testing.T) {
	fs := vfs.NewMem()
	opts := smallOpts(fs)
	opts.GCRatio = 0.01 // GC eagerly once any garbage shows up
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Load past the split threshold.
	const n = 2000
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if db.Metrics().Partitions < 2 {
		t.Fatalf("no split happened")
	}

	// Find logs shared by more than one partition.
	db.logRefs.Lock()
	shared := map[uint32]int{}
	for n, refs := range db.logRefs.refs {
		if refs > 1 {
			shared[n] = refs
		}
	}
	db.logRefs.Unlock()
	if len(shared) == 0 {
		t.Fatal("split left no shared logs — lazy value split untested")
	}
	for num := range shared {
		if !fs.Exists("db/vlog/" + vlog.LogName(num)) {
			t.Fatalf("shared log %d missing on disk", num)
		}
	}

	// Overwrite everything so every partition accumulates garbage and GCs,
	// rewriting live values out of the shared logs.
	for round := 0; round < 6; round++ {
		for i := 0; i < n; i++ {
			if err := db.Put(key(i), val(i+round*7)); err != nil {
				t.Fatal(err)
			}
		}
	}
	db.CompactAll()
	// Force GC in every partition that still has garbage.
	for _, p := range db.partitions() {
		p.mu.Lock()
		err := p.gcTables(true)
		p.mu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
	}

	if db.Metrics().GCs == 0 {
		t.Fatal("no GC ran")
	}
	// Every originally shared log must be unreferenced and deleted now.
	db.logRefs.Lock()
	for num := range shared {
		if refs, ok := db.logRefs.refs[num]; ok && refs > 0 {
			db.logRefs.Unlock()
			t.Fatalf("shared log %d still has %d refs after GC everywhere", num, refs)
		}
	}
	db.logRefs.Unlock()
	for num := range shared {
		if fs.Exists("db/vlog/" + vlog.LogName(num)) {
			t.Fatalf("shared log %d not deleted after both children GC'd", num)
		}
	}

	// Data intact.
	for i := 0; i < n; i += 37 {
		got, err := db.Get(key(i))
		if err != nil || !bytes.Equal(got, val(i+35)) {
			t.Fatalf("key %d after lazy split + GC: %q %v", i, got, err)
		}
	}
}

// TestSplitPreservesBoundaryInvariants checks the router invariants after
// several splits: partitions tile the key space in order, with no overlap
// and no gaps.
func TestSplitPreservesBoundaryInvariants(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs)
	defer db.Close()
	for i := 0; i < 3000; i++ {
		db.Put(key(i), val(i))
	}
	parts := db.partitions()
	if len(parts) < 3 {
		t.Skipf("only %d partitions", len(parts))
	}
	if len(parts[0].lower) != 0 {
		t.Fatalf("first partition's lower bound must be empty, got %q", parts[0].lower)
	}
	for i, p := range parts {
		p.mu.RLock()
		lower, upper := p.lower, p.upper
		p.mu.RUnlock()
		if i+1 < len(parts) {
			next := parts[i+1]
			if !bytes.Equal(upper, next.lower) {
				t.Fatalf("gap/overlap between partition %d (upper=%q) and %d (lower=%q)",
					i, upper, i+1, next.lower)
			}
			if bytes.Compare(lower, next.lower) >= 0 {
				t.Fatalf("partition order broken at %d", i)
			}
		} else if upper != nil {
			t.Fatalf("last partition must be unbounded, got upper=%q", upper)
		}
	}
	// Every partition's tables stay inside its range.
	for _, p := range parts {
		p.mu.RLock()
		for _, tab := range p.srt.Tables() {
			if len(p.lower) > 0 && bytes.Compare(tab.Meta.Smallest, p.lower) < 0 {
				t.Fatalf("table below partition lower bound: %q < %q", tab.Meta.Smallest, p.lower)
			}
			if p.upper != nil && bytes.Compare(tab.Meta.Largest, p.upper) >= 0 {
				t.Fatalf("table above partition upper bound: %q >= %q", tab.Meta.Largest, p.upper)
			}
		}
		p.mu.RUnlock()
	}
}

// TestSplitDuringConcurrentReads hammers reads while load triggers splits.
func TestSplitDuringConcurrentReads(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs)
	defer db.Close()
	for i := 0; i < 500; i++ {
		db.Put(key(i), val(i))
	}
	done := make(chan error, 4)
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		go func(g int) {
			i := g
			for {
				select {
				case <-stop:
					done <- nil
					return
				default:
				}
				i = (i + 13) % 500
				got, err := db.Get(key(i))
				if err != nil || !bytes.Equal(got, val(i)) {
					done <- err
					return
				}
				if _, err := db.Scan(key(i), nil, 10); err != nil {
					done <- err
					return
				}
			}
		}(g)
	}
	go func() {
		// Writes to a disjoint key band force splits under the readers.
		for i := 500; i < 4000; i++ {
			if err := db.Put(key(i), val(i)); err != nil {
				done <- err
				return
			}
		}
		close(stop)
		done <- nil
	}()
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if db.Metrics().Splits == 0 {
		t.Fatal("no splits under concurrency — test vacuous")
	}
}
