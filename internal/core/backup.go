package core

import (
	"fmt"
	"io"
	"path/filepath"

	"unikv/internal/manifest"
	"unikv/internal/memtable"
	"unikv/internal/vfs"
	"unikv/internal/vlog"
	"unikv/internal/wal"
)

// Backup writes an online point-in-time checkpoint of the database into
// destDir (which must be empty or absent). It pins a snapshot, publishes
// every pinned table file into the destination (hard link when the file
// system supports it, byte copy otherwise), copies each referenced value
// log up to its pinned length, cuts a fresh WAL per partition holding the
// pinned memtable contents, and writes a manifest describing exactly the
// pinned state. The result opens as an independent database whose reads
// reproduce the snapshot byte for byte.
//
// Writes, flushes, merges, splits, and GC proceed concurrently: the
// snapshot's reader and log references keep every copied file alive and
// immutable for the duration (an active value log can grow, which is why
// logs are length-bounded copies rather than links).
func (db *DB) Backup(destDir string) error {
	s, err := db.NewSnapshot()
	if err != nil {
		return err
	}
	defer s.Close()
	return db.BackupAt(s, destDir)
}

// BackupAt writes the checkpoint pinned by an existing snapshot. The
// snapshot stays open and usable afterwards; the caller closes it.
func (db *DB) BackupAt(s *Snapshot, destDir string) error {
	if s.closed.Load() {
		return ErrSnapshotClosed
	}
	if names, err := db.fs.List(destDir); err == nil && len(names) > 0 {
		return fmt.Errorf("unikv: backup destination %s is not empty", destDir)
	}
	if err := db.fs.MkdirAll(destDir); err != nil {
		return err
	}

	// Value logs first: collect the union across partitions (a split leaves
	// shared logs referenced by both children) and copy each pinned prefix
	// once. The pinned size sits on a frame boundary — appends are staged
	// and issued as one write, and the size advances only after success —
	// so the copy never ends mid-record.
	destVlog := filepath.Join(destDir, "vlog")
	if err := db.fs.MkdirAll(destVlog); err != nil {
		return err
	}
	logSizes := map[uint32]int64{}
	for i := range s.parts {
		sp := &s.parts[i]
		for _, n := range sp.logs {
			if sz := sp.logSizes[n]; sz > logSizes[n] {
				logSizes[n] = sz
			}
		}
	}
	maxLog := uint32(0)
	for n, sz := range logSizes {
		if n >= maxLog {
			maxLog = n + 1
		}
		src := filepath.Join(db.vlogDir(), vlog.LogName(n))
		if err := db.copyPrefix(src, filepath.Join(destVlog, vlog.LogName(n)), sz); err != nil {
			return fmt.Errorf("unikv: backup value log %d: %w", n, err)
		}
	}
	if err := db.fs.SyncDir(destVlog); err != nil {
		return err
	}

	// Per-partition state: table files plus a WAL cut of the pinned
	// memtable queue. Table files are immutable and kept alive by the
	// snapshot's reader refs even if the engine retires them mid-backup
	// (removal is deferred until the last reference drops).
	maxPart := uint32(0)
	var edits []manifest.Edit
	for i := range s.parts {
		sp := &s.parts[i]
		if sp.id >= maxPart {
			maxPart = sp.id + 1
		}
		srcDir := db.partDir(sp.id)
		dstDir := filepath.Join(destDir, fmt.Sprintf("p%d", sp.id))
		if err := db.fs.MkdirAll(dstDir); err != nil {
			return err
		}
		for _, t := range sp.uns {
			if err := db.linkOrCopy(tableName(srcDir, t.Meta.FileNum), tableName(dstDir, t.Meta.FileNum)); err != nil {
				return fmt.Errorf("unikv: backup partition %d table %d: %w", sp.id, t.Meta.FileNum, err)
			}
		}
		for _, t := range sp.srtTables {
			if err := db.linkOrCopy(tableName(srcDir, t.Meta.FileNum), tableName(dstDir, t.Meta.FileNum)); err != nil {
				return fmt.Errorf("unikv: backup partition %d table %d: %w", sp.id, t.Meta.FileNum, err)
			}
		}
		walNum, err := db.cutWAL(sp, s.seq, dstDir)
		if err != nil {
			return fmt.Errorf("unikv: backup partition %d wal: %w", sp.id, err)
		}
		if err := db.fs.SyncDir(dstDir); err != nil {
			return err
		}
		edits = append(edits,
			manifest.AddPartition(sp.id, sp.lower),
			manifest.SetUnsorted(sp.id, unsortedMetas(sp.uns)),
			manifest.SetSorted(sp.id, tableMetas(sp.srtTables)),
			manifest.SetLogs(sp.id, sp.logs),
		)
		if walNum != 0 {
			edits = append(edits, manifest.SetWAL(sp.id, walNum))
		}
		// HashCkpt stays 0: the destination rebuilds its hash index from
		// the copied tables at open, so no checkpoint file is carried over.
	}
	if err := db.fs.SyncDir(destDir); err != nil {
		return err
	}

	// The manifest is written last, after every file it references is
	// durable: a crash mid-backup leaves a destination that never names a
	// missing file (an empty-manifest dest simply fails/bootstraps and is
	// discarded by the caller).
	head := []manifest.Edit{
		db.nextFileEdit(), // past the WAL numbers allocated above
		manifest.LastSeq(s.seq),
		manifest.NextPart(maxPart),
	}
	if maxLog > 0 {
		head = append(head, manifest.NextLog(maxLog))
	}
	man, err := manifest.Open(db.fs, destDir)
	if err != nil {
		return err
	}
	if err := man.Apply(append(head, edits...)...); err != nil {
		man.Close()
		return err
	}
	return man.Close()
}

// cutWAL writes the pinned memtable queue (frozen tables oldest first,
// then the live table filtered to the pin) as a fresh WAL in dstDir,
// returning its file number (0 when there is nothing to cut). Replay
// rebuilds the records in a skiplist, so intra-file order is free; one
// logical WAL record per source memtable keeps the framing simple.
func (db *DB) cutWAL(sp *snapPart, seq uint64, dstDir string) (uint64, error) {
	tables := append(append([]*memtable.Memtable(nil), sp.imm...), sp.mem)
	var w *wal.Writer
	var f vfs.File
	num := uint64(0)
	var buf []byte
	for _, m := range tables {
		buf = buf[:0]
		it := m.NewIterator()
		for ok := it.First(); ok; ok = it.Next() {
			rec := it.Record()
			if rec.Seq > seq {
				continue
			}
			buf = rec.Encode(buf)
		}
		if len(buf) == 0 {
			continue
		}
		if w == nil {
			num = db.allocFileNum()
			var err error
			f, err = db.fs.Create(walName(dstDir, num))
			if err != nil {
				return 0, err
			}
			w = wal.NewWriter(f)
		}
		if err := w.AddRecord(buf); err != nil {
			f.Close()
			return 0, err
		}
	}
	if w == nil {
		return 0, nil
	}
	if err := w.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	return num, w.Close()
}

// linkOrCopy publishes an immutable file into the backup: a hard link when
// the file system supports one (and it succeeds — cross-device links fail),
// a full byte copy otherwise.
func (db *DB) linkOrCopy(src, dst string) error {
	if ln, ok := db.fs.(vfs.Linker); ok {
		if err := ln.Link(src, dst); err == nil {
			return nil
		}
	}
	return db.copyPrefix(src, dst, -1)
}

// copyPrefix copies the first n bytes of src into dst and syncs it
// (n < 0 copies the whole current length). A source shorter than n is an
// error: the pinned length was observed on real data and must be there.
func (db *DB) copyPrefix(src, dst string, n int64) error {
	in, err := db.fs.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	if n < 0 {
		if n, err = in.Size(); err != nil {
			return err
		}
	}
	out, err := db.fs.Create(dst)
	if err != nil {
		return err
	}
	buf := make([]byte, 1<<20)
	var off int64
	for off < n {
		chunk := buf
		if rem := n - off; rem < int64(len(chunk)) {
			chunk = chunk[:rem]
		}
		rd, rerr := in.ReadAt(chunk, off)
		if rd > 0 {
			if _, werr := out.Write(chunk[:rd]); werr != nil {
				out.Close()
				return werr
			}
			off += int64(rd)
		}
		if rerr == io.EOF || rd == 0 {
			if off < n {
				out.Close()
				return fmt.Errorf("%s truncated: copied %d of %d bytes", src, off, n)
			}
			break
		}
		if rerr != nil {
			out.Close()
			return rerr
		}
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
