package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"unikv/internal/vfs"
)

// TestConcurrentStress runs several writers (each owning a disjoint key
// stripe), point readers, and scanners concurrently across flushes,
// merges, GCs, and splits, then verifies the final state against each
// writer's model.
func TestConcurrentStress(t *testing.T) {
	runConcurrentStress(t, nil)
}

// TestConcurrentStressTinyCache reruns the stress with a read cache small
// enough to evict constantly while merges/GCs/splits retire tables and
// logs underneath it. The model verification at the end is the coherence
// check: a stale or cross-key cache hit surfaces as a wrong value.
func TestConcurrentStressTinyCache(t *testing.T) {
	// 256 KiB: large enough that 4 KiB blocks pass the per-shard admission
	// filter, small enough to evict continuously under the workload.
	runConcurrentStress(t, func(o *Options) { o.CacheBytes = 256 << 10 })
}

func runConcurrentStress(t *testing.T, tweak func(*Options)) {
	fs := vfs.NewMem()
	opts := smallOpts(fs)
	opts.GCRatio = 0.25
	if tweak != nil {
		tweak(&opts)
	}
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const (
		writers       = 4
		keysPerStripe = 400
		opsPerWriter  = 4000
		readers       = 3
	)
	stripeKey := func(w, i int) []byte {
		return []byte(fmt.Sprintf("w%d-key-%05d", w, i))
	}

	models := make([]map[string]string, writers)
	errCh := make(chan error, writers+readers)
	stop := make(chan struct{})

	var wgWriters sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		models[w] = make(map[string]string)
		wgWriters.Add(1)
		go func() {
			defer wgWriters.Done()
			rnd := rand.New(rand.NewSource(int64(w)))
			for op := 0; op < opsPerWriter; op++ {
				i := rnd.Intn(keysPerStripe)
				k := stripeKey(w, i)
				if rnd.Intn(10) == 0 {
					if err := db.Delete(k); err != nil {
						errCh <- fmt.Errorf("writer %d delete: %w", w, err)
						return
					}
					delete(models[w], string(k))
				} else {
					v := fmt.Sprintf("w%d-val-%d-%s", w, op, bytes.Repeat([]byte("x"), rnd.Intn(80)))
					if err := db.Put(k, []byte(v)); err != nil {
						errCh <- fmt.Errorf("writer %d put: %w", w, err)
						return
					}
					models[w][string(k)] = v
				}
			}
		}()
	}

	// Readers and scanners run until the writers finish. They can only
	// check weak invariants (no errors, keys belong to a stripe) because
	// the stripes mutate under them.
	var wgReaders sync.WaitGroup
	for g := 0; g < readers; g++ {
		g := g
		wgReaders.Add(1)
		go func() {
			defer wgReaders.Done()
			rnd := rand.New(rand.NewSource(int64(100 + g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				w := rnd.Intn(writers)
				k := stripeKey(w, rnd.Intn(keysPerStripe))
				if _, err := db.Get(k); err != nil && err != ErrNotFound {
					errCh <- fmt.Errorf("reader: %w", err)
					return
				}
				kvs, err := db.Scan(k, nil, 20)
				if err != nil {
					errCh <- fmt.Errorf("scanner: %w", err)
					return
				}
				for _, kv := range kvs {
					if !bytes.HasPrefix(kv.Key, []byte("w")) {
						errCh <- fmt.Errorf("scanner: alien key %q", kv.Key)
						return
					}
				}
			}
		}()
	}

	wgWriters.Wait()
	close(stop)
	wgReaders.Wait()

	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Final verification against each stripe's model.
	for w := 0; w < writers; w++ {
		for k, v := range models[w] {
			got, err := db.Get([]byte(k))
			if err != nil || string(got) != v {
				t.Fatalf("stripe %d key %s: %q %v want %q", w, k, got, err, v)
			}
		}
		// Deleted keys absent.
		for i := 0; i < keysPerStripe; i++ {
			k := stripeKey(w, i)
			if _, ok := models[w][string(k)]; ok {
				continue
			}
			if _, err := db.Get(k); err != ErrNotFound {
				t.Fatalf("stripe %d key %s should be absent: %v", w, k, err)
			}
		}
	}
	if err := db.VerifyIntegrity(); err != nil {
		t.Fatalf("integrity after stress: %v", err)
	}
	m := db.Metrics()
	if m.Merges == 0 {
		t.Fatal("stress never merged — limits too large for the workload")
	}
	// The cache defaults on; the workload must actually have exercised it
	// or the coherence claim above is vacuous.
	if m.CacheBlockHits+m.CacheBlockMisses+m.CacheValueHits+m.CacheValueMisses == 0 {
		t.Fatal("read cache never consulted during stress")
	}
}
