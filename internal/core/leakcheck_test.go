package core

import (
	"runtime"
	"testing"
	"time"

	"unikv/internal/vfs"
)

// leakCheck snapshots the goroutine count and, when the test (including its
// deferred Closes) finishes, verifies the count returns to that baseline.
// Close is supposed to join every background worker, the throttle ticker,
// and the snapshot registry's helpers; a straggler here means a Close path
// forgot one, which -race alone never reports. Shutdown is asynchronous
// from the runtime's point of view (a worker that returned from its loop
// may not have exited its goroutine yet), so the check polls briefly
// before declaring a leak.
func leakCheck(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		n := runtime.NumGoroutine()
		for n > base && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
			n = runtime.NumGoroutine()
		}
		if n > base {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Errorf("goroutine leak: %d running after cleanup, baseline %d\n%s", n, base, buf)
		}
	})
}

// TestOpenCloseGoroutineHygiene cycles a background-mode database through
// open/load/close several times: every cycle must return the process to
// its baseline goroutine count, or repeated opens (a long test run, an
// embedding application reopening after errors) would accumulate workers.
func TestOpenCloseGoroutineHygiene(t *testing.T) {
	leakCheck(t)
	fs := vfs.NewMem()
	for cycle := 0; cycle < 3; cycle++ {
		db, err := Open("db", bgOpts(fs))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			if err := db.Put(key(i), val(i+cycle)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
