// Package core implements the UniKV engine — the paper's primary
// contribution. It composes the substrates (memtable, WAL, SSTables, the
// two-level hash index, value logs, manifest) into the two-tier
// differentiated-indexing design with partial KV separation, dynamic range
// partitioning, scan optimization, and crash consistency.
package core

import (
	"time"

	"unikv/internal/vfs"
)

// CacheOff disables the block/value cache when assigned to
// Options.CacheBytes (0 means "use the default size").
const CacheOff = -1

// HotRingOff disables the hot-key read layer when assigned to
// Options.HotRingEntries (0 means "use the default size").
const HotRingOff = -1

// Options tunes the engine. The zero value is usable; Sanitize fills
// defaults matching the paper's configuration scaled to test sizes.
type Options struct {
	// MemtableSize flushes the memtable once it reaches this many bytes.
	MemtableSize int64
	// UnsortedLimit caps a partition's UnsortedStore; reaching it triggers
	// the merge into the SortedStore (paper: configured from available
	// memory, since the hash index grows with the UnsortedStore).
	UnsortedLimit int64
	// ScanMergeLimit is the UnsortedStore table count that triggers the
	// size-based merge (scan optimization).
	ScanMergeLimit int
	// PartitionSizeLimit splits a partition once its data (sorted +
	// unsorted + owned log bytes) exceeds this many bytes.
	PartitionSizeLimit int64
	// GCRatio triggers value-log GC in a partition when its dead bytes
	// exceed GCRatio × its referenced log bytes.
	GCRatio float64
	// MaxLogSize rotates the shared value log at this size.
	MaxLogSize int64
	// TargetTableSize bounds SortedStore tables produced by merges.
	TargetTableSize int64
	// BlockSize overrides the SSTable data-block size.
	BlockSize int
	// HashBuckets sizes each partition's hash index (first-level buckets).
	HashBuckets int
	// ScanWorkers sizes the parallel value-fetch pool (paper: 32 threads).
	ScanWorkers int
	// ValueThreshold enables selective KV separation: values smaller than
	// this many bytes stay inline in the SortedStore instead of moving to
	// a value log (the paper's suggested mitigation for small-KV
	// workloads, where pointer overhead and the extra log I/O outweigh
	// the merge savings). 0 separates every value (the paper's base
	// design).
	ValueThreshold int
	// SyncWrites fsyncs the WAL on every write (off: fsync at rotation,
	// like LevelDB's default).
	SyncWrites bool
	// DisableWAL skips the write-ahead log entirely.
	DisableWAL bool
	// BackgroundWorkers sizes the maintenance worker pool. 0 (the default)
	// keeps the original inline scheduling: flush/merge/GC/split run
	// synchronously in the writer under the partition lock, which is
	// deterministic and what the crash-injection tests arm against. Any
	// positive value moves maintenance onto that many background workers:
	// a full memtable is frozen onto an immutable queue (still readable)
	// and writers only slow down or stall when maintenance falls behind
	// (see SlowdownImmutables/StallImmutables).
	BackgroundWorkers int
	// SlowdownImmutables starts soft write throttling (a 1 ms sleep per
	// write) once a partition has this many frozen memtables waiting for
	// flush. Only meaningful with BackgroundWorkers > 0. Default 2.
	SlowdownImmutables int
	// StallImmutables blocks writers entirely until a flush completes once
	// the immutable queue reaches this depth. Default 4.
	StallImmutables int
	// JobRetries is how many times a background job whose error classifies
	// as transient (see Classify) is retried before the DB enters degraded
	// read-only mode. Corruption and fatal errors are never retried.
	// Default 3; negative disables retries.
	JobRetries int
	// RetryBaseDelay is the first retry's backoff; each subsequent retry
	// doubles it (with jitter) up to RetryMaxDelay. Default 10ms.
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps the exponential backoff between job retries.
	// Default 1s.
	RetryMaxDelay time.Duration
	// ScrubInterval starts a full background scrub pass (checksum
	// verification of every table and value log, see internal/core/scrub.go)
	// this often. Unlike most knobs, scrubbing is opt-in: 0 — the default —
	// means no scrubbing at all, matching pre-scrub behavior byte for byte.
	// Corruption found by a scrub quarantines the affected partitions.
	ScrubInterval time.Duration
	// ScrubBytesPerSec rate-limits scrub reads so a pass cannot monopolize
	// disk bandwidth. 0 selects the default (8 MiB/s); negative means
	// unlimited. Only meaningful with ScrubInterval > 0.
	ScrubBytesPerSec int64
	// CacheBytes bounds the shared read cache holding hot SSTable data
	// blocks and value-log entries. The cache is on by default: 0 selects
	// the default size (32 MiB); a negative value (CacheOff) disables
	// caching entirely, restoring the uncached read path byte for byte.
	CacheBytes int64
	// HotRingEntries sizes the hot-key read layer (internal/hotring): the
	// total slot count of the sharded, lock-free structure that serves the
	// hottest keys in a single probe before partition routing. On by
	// default: 0 selects the default size (4096 slots); a negative value
	// (HotRingOff) disables the layer, restoring the bare tiered read path.
	HotRingEntries int
	// HotRingShards is the hot ring's shard count (rounded up to a power
	// of two). Default 16.
	HotRingShards int
	// HotRingMaxValue is the largest value (bytes) the hot ring admits;
	// larger values always take the tiered path. Default 4096.
	HotRingMaxValue int
	// HotRingSampleEvery is the miss-sampling period: every n-th ring miss
	// records its key as a promotion candidate. Default 8.
	HotRingSampleEvery int
	// HotRingPromoteAfter is the sampled miss count at which a key is
	// promoted into the ring. Default 2.
	HotRingPromoteAfter int

	// SortedViewOff disables the REMIX-style cross-table sorted view over
	// each partition's unsorted tables (internal/sortedview): scans fall
	// back to a per-call k-way merge across all unsorted tables, the
	// pre-view behavior. The view is on by default — it is memory-only,
	// rebuilt at recovery, and bounded by UnsortedLimit like the hash
	// index. The fig-scan experiment measures the difference.
	SortedViewOff bool

	// Ablation toggles (experiment fig11). Each disables one of the
	// paper's techniques.
	DisableHashIndex     bool // probe unsorted tables newest-first instead
	DisableKVSeparation  bool // keep values inline in the SortedStore
	DisablePartitioning  bool // never split; the single partition grows
	DisableScanMerge     bool // never run the size-based merge
	DisableScanPrefetch  bool // no value-log readahead on scans
	DisableScanParallel  bool // fetch scan values serially
	HashCheckpointEvery  int  // flushes between hash-index checkpoints (0 = derive from UnsortedLimit/2)
	DisableHashCkpt      bool // never checkpoint the hash index
	DisableOrphanCleanup bool // keep orphan files at open (debugging)

	// FS overrides the file system (tests and I/O-accounted benchmarks).
	FS vfs.FS
}

// Sanitize fills in defaults and returns the completed options.
func (o Options) Sanitize() Options {
	if o.MemtableSize <= 0 {
		o.MemtableSize = 4 << 20
	}
	if o.UnsortedLimit <= 0 {
		o.UnsortedLimit = 8 * o.MemtableSize
	}
	if o.ScanMergeLimit <= 0 {
		o.ScanMergeLimit = 8
	}
	if o.PartitionSizeLimit <= 0 {
		o.PartitionSizeLimit = 8 * o.UnsortedLimit
	}
	if o.GCRatio <= 0 {
		o.GCRatio = 0.3
	}
	if o.MaxLogSize <= 0 {
		o.MaxLogSize = 8 << 20
	}
	if o.TargetTableSize <= 0 {
		o.TargetTableSize = 2 << 20
	}
	if o.HashBuckets <= 0 {
		// ~1 bucket per expected entry at 100 B per KV pair, 80 % direct
		// utilization (paper's sizing discussion).
		o.HashBuckets = int(o.UnsortedLimit / 100)
		if o.HashBuckets < 1024 {
			o.HashBuckets = 1024
		}
	}
	if o.ScanWorkers <= 0 {
		o.ScanWorkers = 32
	}
	if o.HashCheckpointEvery <= 0 {
		// Paper: checkpoint every UnsortedLimit/2 worth of flushes.
		n := int(o.UnsortedLimit / (2 * o.MemtableSize))
		if n < 1 {
			n = 1
		}
		o.HashCheckpointEvery = n
	}
	if o.BackgroundWorkers < 0 {
		o.BackgroundWorkers = 0
	}
	if o.SlowdownImmutables <= 0 {
		o.SlowdownImmutables = 2
	}
	if o.StallImmutables <= o.SlowdownImmutables {
		o.StallImmutables = o.SlowdownImmutables + 2
	}
	if o.JobRetries == 0 {
		o.JobRetries = 3
	} else if o.JobRetries < 0 {
		o.JobRetries = 0
	}
	if o.RetryBaseDelay <= 0 {
		o.RetryBaseDelay = 10 * time.Millisecond
	}
	if o.RetryMaxDelay <= 0 {
		o.RetryMaxDelay = time.Second
	}
	if o.ScrubInterval < 0 {
		o.ScrubInterval = 0 // scrubbing stays opt-in
	}
	if o.ScrubBytesPerSec == 0 {
		o.ScrubBytesPerSec = 8 << 20
	} else if o.ScrubBytesPerSec < 0 {
		o.ScrubBytesPerSec = 0 // post-Sanitize 0 means unlimited
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 32 << 20
	} else if o.CacheBytes < 0 {
		o.CacheBytes = 0 // CacheOff: post-Sanitize 0 means disabled
	}
	if o.HotRingEntries == 0 {
		o.HotRingEntries = 4096
	} else if o.HotRingEntries < 0 {
		o.HotRingEntries = 0 // HotRingOff: post-Sanitize 0 means disabled
	}
	// The remaining HotRing* knobs default inside hotring.Config.
	if o.FS == nil {
		o.FS = vfs.NewOS()
	}
	return o
}
