package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"unikv/internal/sstable"
	"unikv/internal/vfs"
	"unikv/internal/vlog"
)

// corruptSeed loads a database, drains it into the sorted tier (so the
// on-disk state is sorted tables plus sealed value logs), closes it, and
// returns the populated memFS with the key count written.
func corruptSeed(t *testing.T) (vfs.FS, int) {
	t.Helper()
	fs := vfs.NewMem()
	db := openSmall(t, fs)
	const n = 300
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return fs, n
}

// flipByte inverts one byte of name in place.
func flipByte(t *testing.T, fs vfs.FS, name string, off int) {
	t.Helper()
	data, err := fs.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if off >= len(data) {
		t.Fatalf("%s is only %d bytes, cannot flip offset %d", name, len(data), off)
	}
	data[off] ^= 0xff
	if err := fs.WriteFile(name, data); err != nil {
		t.Fatal(err)
	}
}

// firstFile returns the first name under dir matching pattern.
func firstFile(t *testing.T, fs vfs.FS, dir, pattern string) string {
	t.Helper()
	names, err := fs.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if ok, _ := filepath.Match(pattern, name); ok {
			return filepath.Join(dir, name)
		}
	}
	t.Fatalf("no %s in %s (have %v)", pattern, dir, names)
	return ""
}

// TestCorruptTableClassifiedAndNotRetried flips one byte inside a sorted
// table's data region and asserts the full corruption contract: reads fail
// with a corruption-classified error (not transient, so nothing upstream
// keeps retrying it), VerifyIntegrity names the file, and a background job
// forced over the bad block degrades immediately — zero retries.
func TestCorruptTableClassifiedAndNotRetried(t *testing.T) {
	fs, n := corruptSeed(t)
	// Data blocks occupy the front of a table file; offset 20 lands inside
	// the first block's payload, leaving the index and footer intact so
	// Open still succeeds and the corruption surfaces on a data read.
	pdir := firstFile(t, fs, "db", "p[0-9]*")
	name := firstFile(t, fs, pdir, "*.sst")
	flipByte(t, fs, name, 20)

	db := openSmall(t, fs)
	// Sweep the whole keyspace: whichever keys live in the flipped block,
	// their reads must fail and the failure must classify as corruption.
	var readErr error
	for i := 0; i < n; i++ {
		if _, err := db.Get(key(i)); err != nil && err != ErrNotFound {
			readErr = err
			break
		}
	}
	if readErr == nil {
		_, readErr = db.Scan(key(0), nil, 0)
	}
	if readErr == nil {
		t.Fatal("no read error after corrupting a data block")
	}
	if !errors.Is(readErr, sstable.ErrCorruptTable) {
		t.Fatalf("read error %v, want ErrCorruptTable", readErr)
	}
	if Classify(readErr) != ClassCorruption {
		t.Fatalf("Classify(read error)=%s, want corruption", Classify(readErr))
	}

	// VerifyIntegrity pinpoints the file.
	verr := db.VerifyIntegrity()
	if verr == nil {
		t.Fatal("VerifyIntegrity passed on a corrupt table")
	}
	if Classify(verr) != ClassCorruption {
		t.Fatalf("Classify(VerifyIntegrity)=%s, want corruption", Classify(verr))
	}
	if !strings.Contains(verr.Error(), "sorted table") {
		t.Fatalf("VerifyIntegrity error %q does not identify the table tier", verr)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Background contract: a merge over the corrupt run fails its job with
	// a corruption class — the scheduler must quarantine the owning
	// partition on the first attempt instead of retrying bytes that cannot
	// heal, and must NOT degrade the whole database (the damage is scoped
	// to one partition's files).
	db2, err := Open("db", retryOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	var werr error
	for i := 0; i < 50000 && werr == nil; i++ {
		// Cycle the seeded keyspace so writes keep landing in the corrupt
		// partition's range after it quarantines.
		if err := db2.Put(key(i%n), val(i)); err != nil {
			werr = err
		}
	}
	m := waitMetrics(db2, func(m StatsSnapshot) bool { return m.QuarantinedPartitions > 0 })
	if m.QuarantinedPartitions == 0 {
		t.Fatal("background merge over a corrupt table never quarantined its partition")
	}
	if m.Degraded {
		t.Fatalf("whole DB degraded (%q); partition-scoped corruption must quarantine, not degrade", m.DegradedCause)
	}
	if werr != nil && !errors.Is(werr, ErrPartitionQuarantined) {
		t.Fatalf("write error %v, want ErrPartitionQuarantined", werr)
	}
	// A write routed into the quarantined range must fail with the scoped
	// error (the loop above may have stopped for that reason already).
	if werr == nil {
		for i := 0; i < n; i++ {
			if err := db2.Put(key(i), val(i)); err != nil {
				werr = err
				break
			}
		}
		if !errors.Is(werr, ErrPartitionQuarantined) {
			t.Fatalf("write into quarantined range got %v, want ErrPartitionQuarantined", werr)
		}
	}
	if m.BackgroundRetries != 0 {
		t.Fatalf("BackgroundRetries=%d, want 0 (corruption must never be retried)", m.BackgroundRetries)
	}
	if m.BackgroundErrors != 1 {
		t.Fatalf("BackgroundErrors=%d, want exactly 1", m.BackgroundErrors)
	}
	// Reads on the quarantined partition still serve the intact blocks.
	if _, err := db2.Get(key(0)); err != nil && err != ErrNotFound && !errors.Is(err, sstable.ErrCorruptTable) {
		t.Fatalf("read on quarantined partition: %v", err)
	}
}

// TestCorruptVlogClassified flips one byte mid-way through a sealed value
// log: the owning record's checksum no longer matches, so value reads fail
// with a corruption-classified error and VerifyIntegrity names the log.
func TestCorruptVlogClassified(t *testing.T) {
	fs, n := corruptSeed(t)
	name := firstFile(t, fs, filepath.Join("db", "vlog"), "vlog-*.log")
	data, err := fs.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	flipByte(t, fs, name, len(data)/2)

	db := openSmall(t, fs)
	defer db.Close()
	var readErr error
	for i := 0; i < n; i++ {
		if _, err := db.Get(key(i)); err != nil && err != ErrNotFound {
			readErr = err
			break
		}
	}
	if readErr == nil {
		t.Fatal("no read error after corrupting a value log")
	}
	if !errors.Is(readErr, vlog.ErrBadPointer) {
		t.Fatalf("read error %v, want ErrBadPointer", readErr)
	}
	if Classify(readErr) != ClassCorruption {
		t.Fatalf("Classify(read error)=%s, want corruption", Classify(readErr))
	}

	verr := db.VerifyIntegrity()
	if verr == nil {
		t.Fatal("VerifyIntegrity passed on a corrupt value log")
	}
	if !errors.Is(verr, vlog.ErrCorrupt) {
		t.Fatalf("VerifyIntegrity error %v, want vlog.ErrCorrupt", verr)
	}
	if Classify(verr) != ClassCorruption {
		t.Fatalf("Classify(VerifyIntegrity)=%s, want corruption", Classify(verr))
	}
	logNum, ok := vlog.ParseLogName(filepath.Base(name))
	if !ok {
		t.Fatalf("unparseable log name %s", name)
	}
	if want := fmt.Sprintf("value log %d", logNum); !strings.Contains(verr.Error(), want) {
		t.Fatalf("VerifyIntegrity error %q does not name %q", verr, want)
	}
}
