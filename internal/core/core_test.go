package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"unikv/internal/vfs"
)

// smallOpts returns options that trigger flush/merge/split at tiny sizes so
// unit tests exercise every mechanism with hundreds of keys.
func smallOpts(fs vfs.FS) Options {
	return Options{
		FS:                 fs,
		MemtableSize:       2 << 10, // 2 KiB
		UnsortedLimit:      8 << 10,
		ScanMergeLimit:     3,
		PartitionSizeLimit: 64 << 10,
		MaxLogSize:         8 << 10,
		TargetTableSize:    4 << 10,
		HashBuckets:        1 << 12,
		ScanWorkers:        4,
	}
}

func openSmall(t *testing.T, fs vfs.FS) *DB {
	t.Helper()
	db, err := Open("db", smallOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("value-%06d-%s", i, bytes.Repeat([]byte("v"), 40))) }

func TestPutGetBasic(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs)
	defer db.Close()

	for i := 0; i < 100; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		got, err := db.Get(key(i))
		if err != nil {
			t.Fatalf("Get(%s): %v", key(i), err)
		}
		if !bytes.Equal(got, val(i)) {
			t.Fatalf("Get(%s) = %q", key(i), got)
		}
	}
	if _, err := db.Get([]byte("missing")); err != ErrNotFound {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestOverwriteAndDelete(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs)
	defer db.Close()

	db.Put([]byte("k"), []byte("v1"))
	db.Put([]byte("k"), []byte("v2"))
	got, err := db.Get([]byte("k"))
	if err != nil || string(got) != "v2" {
		t.Fatalf("%q %v", got, err)
	}
	db.Delete([]byte("k"))
	if _, err := db.Get([]byte("k")); err != ErrNotFound {
		t.Fatalf("want ErrNotFound after delete, got %v", err)
	}
	// Deleting again / deleting missing is fine.
	if err := db.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	// Rewrite after delete.
	db.Put([]byte("k"), []byte("v3"))
	if got, _ := db.Get([]byte("k")); string(got) != "v3" {
		t.Fatalf("%q", got)
	}
}

// TestThroughTiers writes enough data to push keys through every tier
// (memtable → unsorted → sorted with KV separation) and verifies reads at
// each stage.
func TestThroughTiers(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs)
	defer db.Close()

	const n = 600
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	m := db.Metrics()
	if m.Flushes == 0 {
		t.Fatal("no flush happened")
	}
	if m.Merges == 0 {
		t.Fatal("no merge happened")
	}
	if m.ValueLogBytes == 0 {
		t.Fatal("KV separation produced no log data")
	}
	for i := 0; i < n; i++ {
		got, err := db.Get(key(i))
		if err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("Get(%s) after tiering: %q %v", key(i), got, err)
		}
	}
}

func TestScanBasic(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs)
	defer db.Close()

	const n = 500
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		db.Put(key(i), val(i))
	}
	kvs, err := db.Scan(key(100), nil, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 50 {
		t.Fatalf("got %d results", len(kvs))
	}
	for j, kv := range kvs {
		if !bytes.Equal(kv.Key, key(100+j)) {
			t.Fatalf("scan[%d] key=%q want %q", j, kv.Key, key(100+j))
		}
		if !bytes.Equal(kv.Value, val(100+j)) {
			t.Fatalf("scan[%d] value mismatch for %q", j, kv.Key)
		}
	}
	// Range-bounded scan.
	kvs, err = db.Scan(key(10), key(20), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 10 {
		t.Fatalf("range scan got %d", len(kvs))
	}
	// Scan past the end.
	kvs, _ = db.Scan(key(n-5), nil, 100)
	if len(kvs) != 5 {
		t.Fatalf("tail scan got %d", len(kvs))
	}
	// Empty range.
	kvs, _ = db.Scan([]byte("zzz"), nil, 10)
	if len(kvs) != 0 {
		t.Fatalf("phantom scan results: %d", len(kvs))
	}
}

func TestScanSeesAllTiersAndTombstones(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs)
	defer db.Close()

	// Push a base version of everything into the sorted tier.
	for i := 0; i < 300; i++ {
		db.Put(key(i), val(i))
	}
	db.CompactAll()
	// Overwrite a band in the memtable/unsorted tier and delete another.
	for i := 100; i < 110; i++ {
		db.Put(key(i), []byte("fresh"))
	}
	for i := 110; i < 120; i++ {
		db.Delete(key(i))
	}
	kvs, err := db.Scan(key(95), key(125), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 95; i < 125; i++ {
		if i >= 110 && i < 120 {
			continue
		}
		want++
	}
	if len(kvs) != want {
		t.Fatalf("got %d want %d", len(kvs), want)
	}
	for _, kv := range kvs {
		i := -1
		fmt.Sscanf(string(kv.Key), "key-%06d", &i)
		if i >= 110 && i < 120 {
			t.Fatalf("deleted key %q visible in scan", kv.Key)
		}
		if i >= 100 && i < 110 && string(kv.Value) != "fresh" {
			t.Fatalf("stale value for %q: %q", kv.Key, kv.Value)
		}
	}
}

func TestUpdatesAcrossMerge(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs)
	defer db.Close()

	// Base data through the tiers.
	for i := 0; i < 200; i++ {
		db.Put(key(i), val(i))
	}
	db.CompactAll()
	// Zipf-ish updates over a hot band, repeatedly merged.
	rnd := rand.New(rand.NewSource(42))
	latest := map[int]int{}
	for round := 0; round < 5; round++ {
		for j := 0; j < 200; j++ {
			i := rnd.Intn(40)
			latest[i] = round*1000 + j
			db.Put(key(i), []byte(fmt.Sprintf("upd-%d", latest[i])))
		}
		db.CompactAll()
	}
	for i, v := range latest {
		got, err := db.Get(key(i))
		if err != nil || string(got) != fmt.Sprintf("upd-%d", v) {
			t.Fatalf("key %d: %q %v", i, got, err)
		}
	}
	// Cold keys untouched.
	for i := 50; i < 60; i++ {
		got, err := db.Get(key(i))
		if err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("cold key %d: %q %v", i, got, err)
		}
	}
}

func TestSplitHappens(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs)
	defer db.Close()

	const n = 2000
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	m := db.Metrics()
	if m.Splits == 0 {
		t.Fatalf("no split with %d keys and 64 KiB partition limit (metrics %+v)", n, m)
	}
	if m.Partitions < 2 {
		t.Fatalf("partitions=%d", m.Partitions)
	}
	// Everything still readable.
	for i := 0; i < n; i++ {
		got, err := db.Get(key(i))
		if err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("key %d after split: %v", i, err)
		}
	}
	// Scans cross partition boundaries seamlessly.
	kvs, err := db.Scan(key(0), nil, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != n {
		t.Fatalf("full scan got %d of %d", len(kvs), n)
	}
	for i, kv := range kvs {
		if !bytes.Equal(kv.Key, key(i)) {
			t.Fatalf("scan order broken at %d: %q", i, kv.Key)
		}
	}
}

func TestGCReclaims(t *testing.T) {
	fs := vfs.NewMem()
	opts := smallOpts(fs)
	opts.GCRatio = 0.2
	opts.DisablePartitioning = true
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Heavy overwrites of a small key set force log garbage.
	for round := 0; round < 30; round++ {
		for i := 0; i < 100; i++ {
			db.Put(key(i), val(i*31+round))
		}
	}
	db.CompactAll()
	m := db.Metrics()
	if m.GCs == 0 {
		t.Fatalf("no GC ran: %+v", m)
	}
	// All keys still return the last value written.
	for i := 0; i < 100; i++ {
		got, err := db.Get(key(i))
		if err != nil || !bytes.Equal(got, val(i*31+29)) {
			t.Fatalf("key %d after GC: %q %v", i, got, err)
		}
	}
	// Log space is bounded: live data is ~100 values.
	if m.ValueLogBytes > 20*100*int64(len(val(0))) {
		t.Fatalf("value logs not reclaimed: %d bytes", m.ValueLogBytes)
	}
}

func TestReopenPersistsEverything(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs)
	const n = 1500
	for i := 0; i < n; i++ {
		db.Put(key(i), val(i))
	}
	for i := 0; i < 50; i++ {
		db.Delete(key(i))
	}
	splits := db.Metrics().Splits
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open("db", smallOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if splits > 0 && db2.Metrics().Partitions < 2 {
		t.Fatal("partitions lost at reopen")
	}
	for i := 0; i < 50; i++ {
		if _, err := db2.Get(key(i)); err != ErrNotFound {
			t.Fatalf("deleted key %d resurrected: %v", i, err)
		}
	}
	for i := 50; i < n; i++ {
		got, err := db2.Get(key(i))
		if err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("key %d lost at reopen: %v", i, err)
		}
	}
	kvs, err := db2.Scan(key(40), key(60), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 10 {
		t.Fatalf("post-reopen scan got %d want 10", len(kvs))
	}
}

func TestReopenUnflushedWAL(t *testing.T) {
	fs := vfs.NewMem()
	opts := smallOpts(fs)
	opts.MemtableSize = 1 << 20 // nothing flushes
	opts.SyncWrites = true
	db, _ := Open("db", opts)
	for i := 0; i < 50; i++ {
		db.Put(key(i), val(i))
	}
	// Simulate crash: do NOT Close (Close would flush); drop the handle.
	// The WAL was synced per write, so everything must recover. The dead
	// process's directory lock dies with it.
	fs.(vfs.LockDropper).DropLocks()
	db2, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 50; i++ {
		got, err := db2.Get(key(i))
		if err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("key %d lost from WAL: %v", i, err)
		}
	}
}

func TestEmptyAndEdgeKeys(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs)
	defer db.Close()

	if err := db.Put(nil, []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
	// Empty value is fine.
	if err := db.Put([]byte("k"), nil); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get([]byte("k"))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty value: %q %v", got, err)
	}
	// Binary keys.
	bk := []byte{0x00, 0xff, 0x10, 0x00}
	db.Put(bk, []byte("bin"))
	if got, _ := db.Get(bk); string(got) != "bin" {
		t.Fatalf("%q", got)
	}
}

func TestClosedOps(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs)
	db.Close()
	if err := db.Put([]byte("k"), []byte("v")); err != ErrClosed {
		t.Fatalf("Put: %v", err)
	}
	if _, err := db.Get([]byte("k")); err != ErrClosed {
		t.Fatalf("Get: %v", err)
	}
	if _, err := db.Scan([]byte("a"), nil, 1); err != ErrClosed {
		t.Fatalf("Scan: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs)
	defer db.Close()

	for i := 0; i < 300; i++ {
		db.Put(key(i), val(i))
	}
	done := make(chan error, 9)
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			rnd := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					done <- nil
					return
				default:
				}
				i := rnd.Intn(300)
				got, err := db.Get(key(i))
				if err != nil {
					done <- fmt.Errorf("get %d: %v", i, err)
					return
				}
				if len(got) == 0 {
					done <- fmt.Errorf("empty value for %d", i)
					return
				}
			}
		}(g)
	}
	go func() {
		for i := 300; i < 1200; i++ {
			if err := db.Put(key(i%600), val(i)); err != nil {
				done <- err
				return
			}
		}
		close(stop)
		done <- nil
	}()
	for i := 0; i < 9; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestScanRangeAcrossPartitions(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs)
	defer db.Close()
	const n = 3000
	for i := 0; i < n; i++ {
		db.Put(key(i), val(i))
	}
	if db.Metrics().Partitions < 2 {
		t.Skip("no split")
	}
	// Find a partition boundary and scan a window straddling it.
	parts := db.partitions()
	boundary := parts[1].lower
	var lo, hi int
	fmt.Sscanf(string(boundary), "key-%06d", &lo)
	lo -= 20
	hi = lo + 40
	kvs, err := db.Scan(key(lo), key(hi), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 40 {
		t.Fatalf("boundary scan got %d want 40", len(kvs))
	}
	for j, kv := range kvs {
		if !bytes.Equal(kv.Key, key(lo+j)) {
			t.Fatalf("at %d: %q", j, kv.Key)
		}
	}
	// Limit honored across the boundary.
	kvs, _ = db.Scan(key(lo), nil, 25)
	if len(kvs) != 25 {
		t.Fatalf("limited boundary scan got %d", len(kvs))
	}
}

func TestFlushAndCompactIdempotent(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs)
	defer db.Close()
	for i := 0; i < 100; i++ {
		db.Put(key(i), val(i))
	}
	for round := 0; round < 3; round++ {
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := db.CompactAll(); err != nil {
			t.Fatal(err)
		}
	}
	m := db.Metrics()
	if m.UnsortedTables != 0 {
		t.Fatalf("unsorted tables after compact: %d", m.UnsortedTables)
	}
	for i := 0; i < 100; i++ {
		if _, err := db.Get(key(i)); err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
	}
}

func TestLargeValuesThroughTiers(t *testing.T) {
	fs := vfs.NewMem()
	db := openSmall(t, fs)
	defer db.Close()
	// Values larger than the memtable threshold and the block size.
	big := bytes.Repeat([]byte("B"), 64<<10)
	for i := 0; i < 10; i++ {
		if err := db.Put(key(i), big); err != nil {
			t.Fatal(err)
		}
	}
	db.CompactAll()
	for i := 0; i < 10; i++ {
		got, err := db.Get(key(i))
		if err != nil || !bytes.Equal(got, big) {
			t.Fatalf("big value %d: len=%d err=%v", i, len(got), err)
		}
	}
	kvs, err := db.Scan(key(0), nil, 10)
	if err != nil || len(kvs) != 10 {
		t.Fatalf("big scan: %d %v", len(kvs), err)
	}
}
