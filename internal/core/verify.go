package core

import (
	"fmt"
	"path/filepath"
	"sort"

	"unikv/internal/sstable"
	"unikv/internal/vlog"
)

// CorruptionReport locates one corrupt file found by VerifyIntegrityReport
// (or by the background scrub). Exactly one of Block/Offset is meaningful:
// tables report the bad data-block index, value logs the byte offset where
// the frame walk stopped.
type CorruptionReport struct {
	// Partition is the owning partition for a table, or the lowest-numbered
	// affected partition for a shared value log.
	Partition uint32
	// Partitions lists every partition affected — for a shared value log,
	// all partitions holding live pointers into it (the quarantine blast
	// radius); for a table, just the owner.
	Partitions []uint32
	// File is the corrupt file's path under the DB directory.
	File string
	// Block is the table data-block index, or -1 when not applicable.
	Block int
	// Offset is the value-log byte offset where verification stopped
	// (the length of the valid frame prefix), or -1 when not applicable.
	Offset int64
	// Err is the corruption error, prefixed with the file's tier and
	// partition ("partition 3 sorted table 7: ..." / "value log 5: ...").
	Err error
}

func (r CorruptionReport) String() string {
	where := ""
	if r.Block >= 0 {
		where = fmt.Sprintf(" block %d", r.Block)
	} else if r.Offset >= 0 {
		where = fmt.Sprintf(" valid prefix %d bytes", r.Offset)
	}
	return fmt.Sprintf("%s (partitions %v%s): %v", r.File, r.Partitions, where, r.Err)
}

// VerifyIntegrity re-reads and checksum-verifies every table block and
// every value-log record in the database, including the active log's
// sealed prefix (the reconciled frame boundary below which bytes are
// immutable). It returns the first corruption found, or nil.
//
// Partitions are verified one at a time under their read lock, so
// concurrent reads proceed and writes to other partitions are unaffected.
func (db *DB) VerifyIntegrity() error {
	reports, err := db.VerifyIntegrityReport()
	if err != nil {
		return err
	}
	if len(reports) == 0 {
		return nil
	}
	return reports[0].Err
}

// VerifyIntegrityReport is the report-all form of VerifyIntegrity: it
// keeps scanning past the first corruption and returns one report per
// corrupt file (locating the first bad block or frame of each). An empty
// result means every file verified clean. The error return is reserved
// for ErrClosed; corruption never surfaces there.
//
// Each table is read under its partition's lock and each value log is
// pinned via the DB's log references while it is walked, so a concurrent
// merge or GC can retire files without racing the verification.
func (db *DB) VerifyIntegrityReport() ([]CorruptionReport, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	var reports []CorruptionReport
	logOwners := map[uint32][]uint32{}
	for _, p := range db.partitions() {
		p.mu.RLock()
		for _, t := range p.uns.Tables() {
			if r, bad := verifyTable(p, "unsorted", t.Meta.FileNum, t.Reader); bad {
				reports = append(reports, r)
			}
		}
		for _, t := range p.srt.Tables() {
			if r, bad := verifyTable(p, "sorted", t.Meta.FileNum, t.Reader); bad {
				reports = append(reports, r)
			}
		}
		for n := range p.logs {
			logOwners[n] = append(logOwners[n], p.id)
		}
		p.mu.RUnlock()
	}
	nums := make([]uint32, 0, len(logOwners))
	for n := range logOwners {
		nums = append(nums, n)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	activeNum, activeOff, hasActive := db.vl.ActiveBound()
	for _, n := range nums {
		// Pin the log across the walk so GC cannot remove it mid-read; the
		// owning partitions hold the baseline references, so this release
		// deletes nothing unless every owner moved on while we scanned.
		db.retainLogs([]uint32{n})
		limit := int64(-1)
		if hasActive && n == activeNum {
			limit = activeOff
		}
		_, off, err := db.vl.VerifyLogPrefix(n, limit, nil)
		db.releaseLogs([]uint32{n})
		if err != nil {
			owners := logOwners[n]
			sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })
			reports = append(reports, CorruptionReport{
				Partition:  owners[0],
				Partitions: owners,
				File:       filepath.Join(db.vlogDir(), vlog.LogName(n)),
				Block:      -1,
				Offset:     off,
				Err:        fmt.Errorf("value log %d: %w", n, err),
			})
		}
	}
	return reports, nil
}

// verifyTable checksums every block of one table under the owning
// partition's read lock, reporting the first bad block.
func verifyTable(p *partition, tier string, num uint64, r *sstable.Reader) (CorruptionReport, bool) {
	for i := 0; i < r.NumBlocks(); i++ {
		if _, err := r.VerifyBlock(i); err != nil {
			return CorruptionReport{
				Partition:  p.id,
				Partitions: []uint32{p.id},
				File:       tableName(p.dir, num),
				Block:      i,
				Offset:     -1,
				Err:        fmt.Errorf("partition %d %s table %d: %w", p.id, tier, num, err),
			}, true
		}
	}
	return CorruptionReport{}, false
}
