package core

import (
	"fmt"
)

// VerifyIntegrity re-reads and checksum-verifies every table block and
// every sealed value-log record in the database. It returns the first
// corruption found, or nil. The log currently receiving appends is skipped
// (its tail is in flux); close and reopen the DB to cover everything.
//
// Partitions are verified one at a time under their read lock, so
// concurrent reads proceed and writes to other partitions are unaffected.
func (db *DB) VerifyIntegrity() error {
	if db.closed.Load() {
		return ErrClosed
	}
	activeNum, hasActive := db.vl.ActiveNum()
	logs := map[uint32]bool{}
	for _, p := range db.partitions() {
		p.mu.RLock()
		for _, t := range p.uns.Tables() {
			if err := t.Reader.VerifyChecksums(); err != nil {
				p.mu.RUnlock()
				return fmt.Errorf("partition %d unsorted table %d: %w", p.id, t.Meta.FileNum, err)
			}
		}
		for _, t := range p.srt.Tables() {
			if err := t.Reader.VerifyChecksums(); err != nil {
				p.mu.RUnlock()
				return fmt.Errorf("partition %d sorted table %d: %w", p.id, t.Meta.FileNum, err)
			}
		}
		for n := range p.logs {
			logs[n] = true
		}
		p.mu.RUnlock()
	}
	for n := range logs {
		if hasActive && n == activeNum {
			continue
		}
		if _, err := db.vl.VerifyLog(n); err != nil {
			return fmt.Errorf("value log %d: %w", n, err)
		}
	}
	return nil
}
