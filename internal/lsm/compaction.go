package lsm

import (
	"unikv/internal/codec"
	"unikv/internal/memtable"
	"unikv/internal/mergeiter"
	"unikv/internal/record"
	"unikv/internal/sstable"
)

// flushLocked writes the memtable to a new L0 table.
func (db *DB) flushLocked() error {
	it := db.mem.NewIterator()
	var recs []record.Record
	var last []byte
	for ok := it.First(); ok; ok = it.Next() {
		rec := it.Record()
		if last != nil && codec.Compare(rec.Key, last) == 0 {
			continue
		}
		last = rec.Key
		recs = append(recs, rec)
	}
	if len(recs) == 0 {
		return nil
	}
	t, err := db.writeTable(recs)
	if err != nil {
		return err
	}
	db.levels[0] = append(db.levels[0], t)
	db.mem = memtable.New()
	db.flushes.Add(1)
	if db.logw != nil {
		if err := db.newWALLocked(); err != nil {
			return err
		}
	}
	return db.saveVersion()
}

// writeTable persists recs (already sorted, deduped) as one table.
func (db *DB) writeTable(recs []record.Record) (*table, error) {
	num := db.nextFile
	db.nextFile++
	name := db.tableName(num)
	f, err := db.fs.Create(name)
	if err != nil {
		return nil, err
	}
	b := sstable.NewBuilder(f, sstable.BuilderOptions{
		BloomBitsPerKey: db.cfg.BloomBitsPerKey,
		BlockSize:       db.cfg.BlockSize,
	})
	for _, rec := range recs {
		b.Add(rec)
	}
	props, err := b.Finish()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return db.openTable(num, props)
}

func (db *DB) openTable(num uint64, props sstable.Props) (*table, error) {
	rf, err := db.fs.Open(db.tableName(num))
	if err != nil {
		return nil, err
	}
	rdr, err := sstable.Open(rf)
	if err != nil {
		rf.Close()
		return nil, err
	}
	return &table{
		fileNum: num, size: props.Size, count: props.Count,
		smallest: props.Smallest, largest: props.Largest, rdr: rdr,
	}, nil
}

// levelTarget returns level lev's size budget.
func (db *DB) levelTarget(lev int) int64 {
	t := db.cfg.LevelSizeBase
	for i := 1; i < lev; i++ {
		t *= int64(db.cfg.LevelMultiplier)
	}
	return t
}

func levelBytes(tables []*table) int64 {
	var n int64
	for _, t := range tables {
		n += t.size
	}
	return n
}

// maybeCompactLocked runs compactions until the tree satisfies its shape
// invariants (the synchronous analogue of LevelDB's background thread).
func (db *DB) maybeCompactLocked() error {
	for {
		if len(db.levels[0]) >= db.cfg.L0CompactTrigger {
			if err := db.compactLocked(0); err != nil {
				return err
			}
			continue
		}
		compacted := false
		for lev := 1; lev < NumLevels-1; lev++ {
			if levelBytes(db.levels[lev]) > db.levelTarget(lev) {
				if err := db.compactLocked(lev); err != nil {
					return err
				}
				compacted = true
				break
			}
		}
		if !compacted {
			return nil
		}
	}
}

// overlaps reports range intersection.
func overlaps(t *table, lo, hi []byte) bool {
	return codec.Compare(t.largest, lo) >= 0 && codec.Compare(t.smallest, hi) <= 0
}

// compactLocked merges level lev into lev+1. For lev == 0 all L0 tables
// participate (they overlap); deeper levels pick one table round-robin.
func (db *DB) compactLocked(lev int) error {
	var inputs []*table
	var lo, hi []byte
	if lev == 0 {
		if len(db.levels[0]) == 0 {
			return nil
		}
		inputs = append(inputs, db.levels[0]...)
		for _, t := range inputs {
			if lo == nil || codec.Compare(t.smallest, lo) < 0 {
				lo = t.smallest
			}
			if hi == nil || codec.Compare(t.largest, hi) > 0 {
				hi = t.largest
			}
		}
	} else {
		tables := db.levels[lev]
		if len(tables) == 0 {
			return nil
		}
		// Round-robin cursor: first table past the last compacted key.
		pick := tables[0]
		if cur := db.cursor[lev]; cur != nil {
			for _, t := range tables {
				if codec.Compare(t.smallest, cur) > 0 {
					pick = t
					break
				}
			}
		}
		inputs = append(inputs, pick)
		lo, hi = pick.smallest, pick.largest
		db.cursor[lev] = append([]byte(nil), pick.largest...)
	}

	next := lev + 1
	var overlapping []*table
	var keep []*table
	for _, t := range db.levels[next] {
		if overlaps(t, lo, hi) {
			overlapping = append(overlapping, t)
		} else {
			keep = append(keep, t)
		}
	}

	// Tombstones can be dropped when nothing deeper can hold the key.
	dropTombstones := true
	for l := next + 1; l < NumLevels; l++ {
		for _, t := range db.levels[l] {
			if overlaps(t, lo, hi) {
				dropTombstones = false
			}
		}
	}

	// Merge: inputs ordered newest-first for seq precedence is handled by
	// the seq-aware merge itself.
	var iters []mergeiter.RecIter
	for _, t := range inputs {
		iters = append(iters, t.rdr.NewIterator())
	}
	for _, t := range overlapping {
		iters = append(iters, t.rdr.NewIterator())
	}
	d := mergeiter.NewDedup(mergeiter.New(iters))

	var out []*table
	var batch []record.Record
	var batchBytes int64
	emit := func() error {
		if len(batch) == 0 {
			return nil
		}
		t, err := db.writeTable(batch)
		if err != nil {
			return err
		}
		out = append(out, t)
		batch = batch[:0]
		batchBytes = 0
		return nil
	}
	for ok := d.First(); ok; ok = d.Next() {
		rec := d.Record()
		if rec.Kind == record.KindDelete && dropTombstones {
			continue
		}
		batch = append(batch, rec.Clone())
		batchBytes += int64(len(rec.Key) + len(rec.Value) + 16)
		if batchBytes >= db.cfg.TargetTableSize {
			if err := emit(); err != nil {
				return err
			}
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	if err := emit(); err != nil {
		return err
	}

	// Install: new level contents sorted by smallest key.
	merged := append(keep, out...)
	sortTables(merged)
	db.levels[next] = merged
	if lev == 0 {
		db.levels[0] = nil
	} else {
		var rest []*table
		for _, t := range db.levels[lev] {
			if t != inputs[0] {
				rest = append(rest, t)
			}
		}
		db.levels[lev] = rest
	}
	if err := db.saveVersion(); err != nil {
		return err
	}
	for _, t := range inputs {
		t.rdr.Close()
		db.fs.Remove(db.tableName(t.fileNum))
	}
	for _, t := range overlapping {
		t.rdr.Close()
		db.fs.Remove(db.tableName(t.fileNum))
	}
	db.compactions.Add(1)
	return nil
}

func sortTables(tables []*table) {
	for i := 1; i < len(tables); i++ {
		for j := i; j > 0 && codec.Compare(tables[j].smallest, tables[j-1].smallest) < 0; j-- {
			tables[j], tables[j-1] = tables[j-1], tables[j]
		}
	}
}

// ---------------------------------------------------------------------------
// Version persistence: a small atomically replaced snapshot of the tree
// shape plus counters (the baseline's analogue of a MANIFEST; structural
// changes are rare enough that full snapshots are cheap at this scale).

const versionMagic uint64 = 0x756e696b766c736d // "unikvlsm"

func (db *DB) saveVersion() error {
	var buf []byte
	buf = codec.PutUint64(buf, versionMagic)
	buf = codec.PutUvarint(buf, db.nextFile)
	buf = codec.PutUvarint(buf, db.seq)
	buf = codec.PutUvarint(buf, db.walNum)
	for lev := 0; lev < NumLevels; lev++ {
		buf = codec.PutUvarint(buf, uint64(len(db.levels[lev])))
		for _, t := range db.levels[lev] {
			buf = codec.PutUvarint(buf, t.fileNum)
			buf = codec.PutUvarint(buf, uint64(t.size))
			buf = codec.PutUvarint(buf, uint64(t.count))
			buf = codec.PutBytes(buf, t.smallest)
			buf = codec.PutBytes(buf, t.largest)
		}
	}
	buf = codec.PutUint32(buf, codec.MaskChecksum(codec.Checksum(buf)))
	return db.fs.WriteFile(db.versionName(), buf)
}

func (db *DB) loadVersion() error {
	data, err := db.fs.ReadFile(db.versionName())
	if err != nil {
		return err
	}
	if len(data) < 12 {
		return codec.ErrCorrupt
	}
	body, crcB := data[:len(data)-4], data[len(data)-4:]
	want, _, _ := codec.Uint32(crcB)
	if codec.MaskChecksum(codec.Checksum(body)) != want {
		return codec.ErrCorrupt
	}
	var magic uint64
	if magic, body, err = codec.Uint64(body); err != nil || magic != versionMagic {
		return codec.ErrCorrupt
	}
	if db.nextFile, body, err = codec.Uvarint(body); err != nil {
		return err
	}
	if db.seq, body, err = codec.Uvarint(body); err != nil {
		return err
	}
	if db.walNum, body, err = codec.Uvarint(body); err != nil {
		return err
	}
	for lev := 0; lev < NumLevels; lev++ {
		var n uint64
		if n, body, err = codec.Uvarint(body); err != nil {
			return err
		}
		for i := uint64(0); i < n; i++ {
			var fileNum, size, count uint64
			var smallest, largest []byte
			if fileNum, body, err = codec.Uvarint(body); err != nil {
				return err
			}
			if size, body, err = codec.Uvarint(body); err != nil {
				return err
			}
			if count, body, err = codec.Uvarint(body); err != nil {
				return err
			}
			if smallest, body, err = codec.Bytes(body); err != nil {
				return err
			}
			if largest, body, err = codec.Bytes(body); err != nil {
				return err
			}
			t, err := db.openTable(fileNum, sstable.Props{
				Size: int64(size), Count: int(count),
				Smallest: append([]byte(nil), smallest...),
				Largest:  append([]byte(nil), largest...),
			})
			if err != nil {
				return err
			}
			db.levels[lev] = append(db.levels[lev], t)
		}
	}
	db.sweepOrphans()
	return nil
}
