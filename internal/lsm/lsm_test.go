package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"unikv/internal/vfs"
)

func smallCfg(fs vfs.FS) Config {
	return Config{
		Name:             "test",
		MemtableSize:     2 << 10,
		L0CompactTrigger: 4,
		LevelSizeBase:    16 << 10,
		LevelMultiplier:  4,
		TargetTableSize:  8 << 10,
		BloomBitsPerKey:  10,
		FS:               fs,
	}
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func val(i int) []byte {
	return []byte(fmt.Sprintf("value-%06d-%s", i, bytes.Repeat([]byte("w"), 40)))
}

func TestPutGet(t *testing.T) {
	fs := vfs.NewMem()
	db, err := Open("lsm", smallCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const n = 1500
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	s := db.Stats()
	if s.Flushes == 0 || s.Compactions == 0 {
		t.Fatalf("no tree activity: %+v", s)
	}
	deep := false
	for _, ls := range s.Levels[2:] {
		if ls.Tables > 0 {
			deep = true
		}
	}
	if !deep {
		t.Fatalf("data never reached L2+: %+v", s.Levels)
	}
	for i := 0; i < n; i++ {
		got, err := db.Get(key(i))
		if err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("key %d: %v", i, err)
		}
	}
	if _, err := db.Get([]byte("absent")); err != ErrNotFound {
		t.Fatalf("%v", err)
	}
}

func TestOverwriteDelete(t *testing.T) {
	fs := vfs.NewMem()
	db, _ := Open("lsm", smallCfg(fs))
	defer db.Close()
	for round := 0; round < 4; round++ {
		for i := 0; i < 300; i++ {
			db.Put(key(i), []byte(fmt.Sprintf("round-%d-%d", round, i)))
		}
	}
	for i := 0; i < 300; i += 3 {
		db.Delete(key(i))
	}
	db.Compact()
	for i := 0; i < 300; i++ {
		got, err := db.Get(key(i))
		if i%3 == 0 {
			if err != ErrNotFound {
				t.Fatalf("deleted key %d: %v", i, err)
			}
			continue
		}
		if err != nil || string(got) != fmt.Sprintf("round-3-%d", i) {
			t.Fatalf("key %d: %q %v", i, got, err)
		}
	}
}

func TestScan(t *testing.T) {
	fs := vfs.NewMem()
	db, _ := Open("lsm", smallCfg(fs))
	defer db.Close()
	perm := rand.New(rand.NewSource(1)).Perm(800)
	for _, i := range perm {
		db.Put(key(i), val(i))
	}
	kvs, err := db.Scan(key(100), nil, 60)
	if err != nil || len(kvs) != 60 {
		t.Fatalf("%d %v", len(kvs), err)
	}
	for j, kv := range kvs {
		if !bytes.Equal(kv.Key, key(100+j)) {
			t.Fatalf("scan[%d]=%q", j, kv.Key)
		}
		if !bytes.Equal(kv.Value, val(100+j)) {
			t.Fatalf("scan[%d] value mismatch", j)
		}
	}
	kvs, _ = db.Scan(key(0), key(10), 0)
	if len(kvs) != 10 {
		t.Fatalf("range scan %d", len(kvs))
	}
}

func TestReopen(t *testing.T) {
	fs := vfs.NewMem()
	db, _ := Open("lsm", smallCfg(fs))
	for i := 0; i < 900; i++ {
		db.Put(key(i), val(i))
	}
	db.Close()
	db2, err := Open("lsm", smallCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 900; i++ {
		got, err := db2.Get(key(i))
		if err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("key %d after reopen: %v", i, err)
		}
	}
}

func TestWALRecovery(t *testing.T) {
	fs := vfs.NewMem()
	cfg := smallCfg(fs)
	cfg.MemtableSize = 1 << 20 // no flushes
	cfg.SyncWrites = true
	db, _ := Open("lsm", cfg)
	for i := 0; i < 40; i++ {
		db.Put(key(i), val(i))
	}
	// Abandon without Close: WAL must carry the data.
	db2, err := Open("lsm", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 40; i++ {
		got, err := db2.Get(key(i))
		if err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("key %d from WAL: %v", i, err)
		}
	}
}

func TestPresets(t *testing.T) {
	for _, cfg := range []Config{ConfigLevelDB(1), ConfigRocksDB(1), ConfigHyperLevelDB(1)} {
		c := cfg.sanitize()
		if c.MemtableSize <= 0 || c.L0CompactTrigger <= 0 || c.Name == "" {
			t.Fatalf("bad preset %+v", c)
		}
	}
	if ConfigHyperLevelDB(1).L0CompactTrigger <= ConfigLevelDB(1).L0CompactTrigger {
		t.Fatal("HyperLevelDB preset should tolerate more L0 tables")
	}
}

func TestAccessCountsSkew(t *testing.T) {
	fs := vfs.NewMem()
	db, _ := Open("lsm", smallCfg(fs))
	defer db.Close()
	for i := 0; i < 1200; i++ {
		db.Put(key(i), val(i))
	}
	// Zipf-ish reads over a hot prefix.
	zipf := rand.NewZipf(rand.New(rand.NewSource(2)), 1.1, 1, 1199)
	for i := 0; i < 3000; i++ {
		db.Get(key(int(zipf.Uint64())))
	}
	acc := db.TableAccesses()
	if len(acc) == 0 {
		t.Fatal("no tables")
	}
	var total int64
	for _, a := range acc {
		total += a
	}
	if total == 0 {
		t.Fatal("no accesses recorded")
	}
}

func TestQuickModel(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		fs := vfs.NewMem()
		db, err := Open("lsm", smallCfg(fs))
		if err != nil {
			return false
		}
		defer db.Close()
		model := map[string]string{}
		for op := 0; op < 2000; op++ {
			k := fmt.Sprintf("key-%04d", rnd.Intn(250))
			switch rnd.Intn(8) {
			case 0:
				db.Delete([]byte(k))
				delete(model, k)
			default:
				v := fmt.Sprintf("v-%d", op)
				db.Put([]byte(k), []byte(v))
				model[k] = v
			}
		}
		for k, v := range model {
			got, err := db.Get([]byte(k))
			if err != nil || string(got) != v {
				return false
			}
		}
		// Scan agreement.
		kvs, err := db.Scan([]byte(""), nil, 0)
		if err != nil || len(kvs) != len(model) {
			return false
		}
		var keys []string
		for k := range model {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, kv := range kvs {
			if string(kv.Key) != keys[i] || string(kv.Value) != model[keys[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptVersionRejected(t *testing.T) {
	fs := vfs.NewMem()
	db, _ := Open("lsm", smallCfg(fs))
	for i := 0; i < 200; i++ {
		db.Put(key(i), val(i))
	}
	db.Close()
	data, _ := fs.ReadFile("lsm/VERSION")
	data[10] ^= 0xff
	fs.WriteFile("lsm/VERSION", data)
	if _, err := Open("lsm", smallCfg(fs)); err == nil {
		t.Fatal("corrupt VERSION accepted")
	}
}

func TestOrphanSweep(t *testing.T) {
	fs := vfs.NewMem()
	db, _ := Open("lsm", smallCfg(fs))
	for i := 0; i < 500; i++ {
		db.Put(key(i), val(i))
	}
	db.Close()
	// Plant an orphan table file.
	fs.WriteFile("lsm/99999999.sst", []byte("junk"))
	db2, err := Open("lsm", smallCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if fs.Exists("lsm/99999999.sst") {
		t.Fatal("orphan table not swept")
	}
}

func TestStatsShape(t *testing.T) {
	fs := vfs.NewMem()
	db, _ := Open("lsm", smallCfg(fs))
	defer db.Close()
	for i := 0; i < 600; i++ {
		db.Put(key(i), val(i))
	}
	s := db.Stats()
	if s.Name != "test" || len(s.Levels) != NumLevels {
		t.Fatalf("%+v", s)
	}
	var bytes int64
	for _, ls := range s.Levels {
		bytes += ls.Bytes
	}
	if bytes == 0 {
		t.Fatal("no bytes accounted")
	}
}

func TestClosedOps(t *testing.T) {
	fs := vfs.NewMem()
	db, _ := Open("lsm", smallCfg(fs))
	db.Close()
	if err := db.Put(key(1), val(1)); err != ErrClosed {
		t.Fatalf("%v", err)
	}
	if _, err := db.Get(key(1)); err != ErrClosed {
		t.Fatalf("%v", err)
	}
	if _, err := db.Scan(nil, nil, 1); err != ErrClosed {
		t.Fatalf("%v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
