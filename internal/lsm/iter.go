package lsm

import (
	"unikv/internal/codec"
	"unikv/internal/mergeiter"
	"unikv/internal/record"
	"unikv/internal/sstable"
)

// levelIter concatenates a sorted level's non-overlapping tables into one
// stream.
type levelIter struct {
	tables []*table
	ti     int
	it     *sstable.Iterator
	err    error
}

func newLevelIter(tables []*table) *levelIter {
	return &levelIter{tables: tables, ti: -1}
}

func (l *levelIter) Valid() bool { return l.it != nil && l.it.Valid() }

func (l *levelIter) Record() record.Record { return l.it.Record() }

func (l *levelIter) Err() error { return l.err }

func (l *levelIter) First() bool {
	l.ti = -1
	l.it = nil
	return l.Next()
}

func (l *levelIter) Next() bool {
	if l.err != nil {
		return false
	}
	if l.it != nil && l.it.Next() {
		return true
	}
	for {
		if l.it != nil {
			if err := l.it.Err(); err != nil {
				l.err = err
				return false
			}
		}
		l.ti++
		if l.ti >= len(l.tables) {
			l.it = nil
			return false
		}
		l.it = l.tables[l.ti].rdr.NewIterator()
		if l.it.First() {
			l.tables[l.ti].accesses.Add(1)
			return true
		}
	}
}

func (l *levelIter) Seek(target []byte) bool {
	if l.err != nil {
		return false
	}
	lo, hi := 0, len(l.tables)
	for lo < hi {
		mid := (lo + hi) / 2
		if codec.Compare(l.tables[mid].largest, target) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(l.tables) {
		l.it = nil
		l.ti = len(l.tables)
		return false
	}
	l.ti = lo
	l.it = l.tables[lo].rdr.NewIterator()
	l.tables[lo].accesses.Add(1)
	if l.it.Seek(target) {
		return true
	}
	if err := l.it.Err(); err != nil {
		l.err = err
		return false
	}
	return l.Next()
}

// KV is one scan result.
type KV struct {
	Key   []byte
	Value []byte
}

// Scan returns up to limit pairs with start <= key < end, merging the
// memtable, every L0 table, and one concatenated iterator per deeper
// level — LevelDB's iterator stack.
func (db *DB) Scan(start, end []byte, limit int) ([]KV, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	if limit <= 0 && end == nil {
		limit = 1 << 30
	}
	var iters []mergeiter.RecIter
	iters = append(iters, db.mem.NewIterator())
	for _, t := range db.levels[0] {
		t.accesses.Add(1)
		iters = append(iters, t.rdr.NewIterator())
	}
	for lev := 1; lev < NumLevels; lev++ {
		if len(db.levels[lev]) > 0 {
			iters = append(iters, newLevelIter(db.levels[lev]))
		}
	}
	d := mergeiter.NewDedup(mergeiter.New(iters))
	var out []KV
	for ok := d.Seek(start); ok; ok = d.Next() {
		rec := d.Record()
		if end != nil && codec.Compare(rec.Key, end) >= 0 {
			break
		}
		if rec.Kind == record.KindDelete {
			continue
		}
		out = append(out, KV{
			Key:   append([]byte(nil), rec.Key...),
			Value: append([]byte(nil), rec.Value...),
		})
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
