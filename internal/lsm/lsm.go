// Package lsm implements a leveled LSM-tree key-value store — the
// LevelDB-class baseline the paper compares against. It reuses the same
// memtable/WAL/SSTable substrates as UniKV but organizes tables into
// exponentially sized levels with Bloom filters and leveled compaction:
// the design whose multi-level reads and compaction rewrites UniKV's
// unified index is built to avoid.
//
// Config presets approximate LevelDB (small write buffer, single
// synchronous compaction, 10× level fanout), RocksDB (larger buffers and
// files), and HyperLevelDB (higher L0 tolerance, lazier compaction) at a
// chosen scale. They reproduce those systems' architectural behaviours,
// not vendor tuning.
package lsm

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"unikv/internal/codec"
	"unikv/internal/memtable"
	"unikv/internal/record"
	"unikv/internal/sstable"
	"unikv/internal/vfs"
	"unikv/internal/wal"
)

// ErrNotFound is returned by Get for absent keys.
var ErrNotFound = errors.New("lsm: key not found")

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("lsm: closed")

// NumLevels is the fixed level count (L0..L6), as in LevelDB.
const NumLevels = 7

// Config tunes the tree.
type Config struct {
	// Name labels the preset in experiment output.
	Name string
	// MemtableSize flushes the write buffer at this many bytes.
	MemtableSize int64
	// L0CompactTrigger compacts L0 into L1 at this many L0 tables.
	L0CompactTrigger int
	// LevelSizeBase is L1's target size; level L targets
	// LevelSizeBase × LevelMultiplier^(L-1).
	LevelSizeBase int64
	// LevelMultiplier is the per-level fanout (10 in LevelDB).
	LevelMultiplier int
	// TargetTableSize bounds output tables.
	TargetTableSize int64
	// BloomBitsPerKey configures per-table Bloom filters (10 ≈ 1 % FPR).
	BloomBitsPerKey int
	// BlockSize overrides the SSTable block size.
	BlockSize int
	// SyncWrites fsyncs the WAL per write.
	SyncWrites bool
	// DisableWAL skips write-ahead logging.
	DisableWAL bool
	// FS overrides the file system.
	FS vfs.FS
}

// ConfigLevelDB approximates LevelDB v1.20 defaults, scaled by scale
// (1.0 = the real defaults; benches use small fractions).
func ConfigLevelDB(scale float64) Config {
	return Config{
		Name:             "leveldb",
		MemtableSize:     int64(4 << 20 * scale),
		L0CompactTrigger: 4,
		LevelSizeBase:    int64(10 << 20 * scale),
		LevelMultiplier:  10,
		TargetTableSize:  int64(2 << 20 * scale),
		BloomBitsPerKey:  10,
	}
}

// ConfigRocksDB approximates RocksDB defaults at the given scale: bigger
// write buffer and files, same leveled shape.
func ConfigRocksDB(scale float64) Config {
	return Config{
		Name:             "rocksdb",
		MemtableSize:     int64(8 << 20 * scale),
		L0CompactTrigger: 4,
		LevelSizeBase:    int64(32 << 20 * scale),
		LevelMultiplier:  10,
		TargetTableSize:  int64(8 << 20 * scale),
		BloomBitsPerKey:  10,
	}
}

// ConfigHyperLevelDB approximates HyperLevelDB: LevelDB with a much higher
// L0 tolerance and lazier compaction, trading read cost for write
// throughput.
func ConfigHyperLevelDB(scale float64) Config {
	return Config{
		Name:             "hyperleveldb",
		MemtableSize:     int64(4 << 20 * scale),
		L0CompactTrigger: 8,
		LevelSizeBase:    int64(20 << 20 * scale),
		LevelMultiplier:  10,
		TargetTableSize:  int64(4 << 20 * scale),
		BloomBitsPerKey:  10,
	}
}

func (c Config) sanitize() Config {
	if c.MemtableSize <= 0 {
		c.MemtableSize = 4 << 20
	}
	if c.L0CompactTrigger <= 0 {
		c.L0CompactTrigger = 4
	}
	if c.LevelSizeBase <= 0 {
		c.LevelSizeBase = 10 << 20
	}
	if c.LevelMultiplier <= 0 {
		c.LevelMultiplier = 10
	}
	if c.TargetTableSize <= 0 {
		c.TargetTableSize = 2 << 20
	}
	if c.FS == nil {
		c.FS = vfs.NewOS()
	}
	return c
}

// table is one on-disk SSTable plus access accounting for the
// access-frequency experiment (fig2).
type table struct {
	fileNum  uint64
	size     int64
	count    int
	smallest []byte
	largest  []byte
	rdr      *sstable.Reader
	accesses atomic.Int64
}

// DB is a leveled LSM-tree store.
type DB struct {
	cfg Config
	fs  vfs.FS
	dir string

	mu       sync.RWMutex
	mem      *memtable.Memtable
	logw     *wal.Writer
	walNum   uint64
	levels   [NumLevels][]*table // L0 in flush order (oldest first); L1+ key-sorted
	nextFile uint64
	seq      uint64
	cursor   [NumLevels][]byte // round-robin compaction cursors

	flushes     atomic.Int64
	compactions atomic.Int64
	closed      bool
}

// Open opens (creating if necessary) a store in dir.
func Open(dir string, cfg Config) (*DB, error) {
	cfg = cfg.sanitize()
	db := &DB{cfg: cfg, fs: cfg.FS, dir: dir, nextFile: 1}
	if err := db.fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	db.mem = memtable.New()
	if db.fs.Exists(db.versionName()) {
		if err := db.loadVersion(); err != nil {
			return nil, err
		}
	}
	// Replay the WAL, then start a fresh one.
	if db.walNum != 0 && db.fs.Exists(db.walName(db.walNum)) {
		if err := db.replayWAL(); err != nil {
			return nil, err
		}
	}
	if !db.mem.Empty() {
		if err := db.flushLocked(); err != nil {
			return nil, err
		}
	}
	if !cfg.DisableWAL {
		if err := db.newWALLocked(); err != nil {
			return nil, err
		}
		if err := db.saveVersion(); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func (db *DB) versionName() string { return filepath.Join(db.dir, "VERSION") }
func (db *DB) walName(n uint64) string {
	return filepath.Join(db.dir, fmt.Sprintf("%08d.wal", n))
}
func (db *DB) tableName(n uint64) string {
	return filepath.Join(db.dir, fmt.Sprintf("%08d.sst", n))
}

// Put inserts or overwrites a key.
func (db *DB) Put(key, value []byte) error {
	return db.apply(record.Record{Key: append([]byte(nil), key...),
		Kind: record.KindSet, Value: append([]byte(nil), value...)})
}

// Delete writes a tombstone.
func (db *DB) Delete(key []byte) error {
	return db.apply(record.Record{Key: append([]byte(nil), key...), Kind: record.KindDelete})
}

func (db *DB) apply(rec record.Record) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	db.seq++
	rec.Seq = db.seq
	if db.logw != nil {
		if err := db.logw.AddRecord(rec.Encode(nil)); err != nil {
			return err
		}
		if db.cfg.SyncWrites {
			if err := db.logw.Sync(); err != nil {
				return err
			}
		}
	}
	db.mem.Put(rec)
	if db.mem.Size() >= db.cfg.MemtableSize {
		if err := db.flushLocked(); err != nil {
			return err
		}
		if err := db.maybeCompactLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Get returns the value for key. Read path: memtable, then L0 tables
// newest-first, then one candidate table per deeper level — each gated by
// its Bloom filter (the multi-level read amplification UniKV removes).
func (db *DB) Get(key []byte) ([]byte, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	if rec, ok := db.mem.Get(key); ok {
		return resolve(rec)
	}
	// L0: overlapping tables, newest (last-flushed) first.
	l0 := db.levels[0]
	for i := len(l0) - 1; i >= 0; i-- {
		t := l0[i]
		if codec.Compare(key, t.smallest) < 0 || codec.Compare(key, t.largest) > 0 {
			continue
		}
		if !t.rdr.MayContain(key) {
			continue
		}
		t.accesses.Add(1)
		rec, ok, err := t.rdr.Get(key)
		if err != nil {
			return nil, err
		}
		if ok {
			return resolve(rec)
		}
	}
	for lev := 1; lev < NumLevels; lev++ {
		t := findTable(db.levels[lev], key)
		if t == nil {
			continue
		}
		if !t.rdr.MayContain(key) {
			continue
		}
		t.accesses.Add(1)
		rec, ok, err := t.rdr.Get(key)
		if err != nil {
			return nil, err
		}
		if ok {
			return resolve(rec)
		}
	}
	return nil, ErrNotFound
}

func resolve(rec record.Record) ([]byte, error) {
	if rec.Kind == record.KindDelete {
		return nil, ErrNotFound
	}
	return append([]byte(nil), rec.Value...), nil
}

// findTable binary-searches a sorted level for the table covering key.
func findTable(tables []*table, key []byte) *table {
	lo, hi := 0, len(tables)
	for lo < hi {
		mid := (lo + hi) / 2
		if codec.Compare(tables[mid].largest, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(tables) || codec.Compare(key, tables[lo].smallest) < 0 {
		return nil
	}
	return tables[lo]
}

// Flush forces the memtable to L0.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.mem.Empty() {
		return nil
	}
	if err := db.flushLocked(); err != nil {
		return err
	}
	return db.maybeCompactLocked()
}

// Compact drives compaction until every level is within its target.
func (db *DB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if !db.mem.Empty() {
		if err := db.flushLocked(); err != nil {
			return err
		}
	}
	return db.maybeCompactLocked()
}

// Close flushes and releases everything.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	var first error
	if !db.mem.Empty() {
		if err := db.flushLocked(); err != nil {
			first = err
		}
	}
	if db.logw != nil {
		db.logw.Sync()
		db.logw.Close()
		db.logw = nil
	}
	for lev := range db.levels {
		for _, t := range db.levels[lev] {
			t.rdr.Close()
		}
	}
	db.closed = true
	return first
}

// Stats reports tree shape and access counts.
type Stats struct {
	Name        string
	Flushes     int64
	Compactions int64
	Levels      []LevelStats
}

// LevelStats describes one level.
type LevelStats struct {
	Level    int
	Tables   int
	Bytes    int64
	Accesses int64
}

// Stats returns a snapshot.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := Stats{Name: db.cfg.Name, Flushes: db.flushes.Load(), Compactions: db.compactions.Load()}
	for lev := range db.levels {
		ls := LevelStats{Level: lev, Tables: len(db.levels[lev])}
		for _, t := range db.levels[lev] {
			ls.Bytes += t.size
			ls.Accesses += t.accesses.Load()
		}
		s.Levels = append(s.Levels, ls)
	}
	return s
}

// TableAccesses returns per-table access counts ordered from L0 outward —
// the series behind the paper's Fig. 2.
func (db *DB) TableAccesses() []int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []int64
	for lev := range db.levels {
		tables := db.levels[lev]
		if lev == 0 {
			// Newest first, matching "lower ID = closer to memory".
			for i := len(tables) - 1; i >= 0; i-- {
				out = append(out, tables[i].accesses.Load())
			}
			continue
		}
		for _, t := range tables {
			out = append(out, t.accesses.Load())
		}
	}
	return out
}

// newWALLocked starts a fresh WAL file.
func (db *DB) newWALLocked() error {
	old := db.walNum
	if db.logw != nil {
		db.logw.Sync()
		db.logw.Close()
		db.logw = nil
	}
	num := db.nextFile
	db.nextFile++
	f, err := db.fs.Create(db.walName(num))
	if err != nil {
		return err
	}
	db.logw = wal.NewWriter(f)
	db.walNum = num
	if old != 0 {
		db.fs.Remove(db.walName(old))
	}
	return nil
}

func (db *DB) replayWAL() error {
	f, err := db.fs.Open(db.walName(db.walNum))
	if err != nil {
		return err
	}
	defer f.Close()
	r := wal.NewReader(f)
	for {
		data, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		for len(data) > 0 {
			var rec record.Record
			rec, data, err = record.Decode(data)
			if err != nil {
				return nil
			}
			rec = rec.Clone()
			db.mem.Put(rec)
			if rec.Seq > db.seq {
				db.seq = rec.Seq
			}
		}
	}
}

// sweepOrphans removes table files not referenced by the current version.
func (db *DB) sweepOrphans() {
	names, err := db.fs.List(db.dir)
	if err != nil {
		return
	}
	ref := map[string]bool{}
	for lev := range db.levels {
		for _, t := range db.levels[lev] {
			ref[filepath.Base(db.tableName(t.fileNum))] = true
		}
	}
	for _, name := range names {
		if strings.HasSuffix(name, ".sst") && !ref[name] {
			db.fs.Remove(filepath.Join(db.dir, name))
		}
	}
}
