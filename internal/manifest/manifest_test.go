package manifest

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"unikv/internal/vfs"
)

func tmeta(num uint64, lo, hi string) TableMeta {
	return TableMeta{
		FileNum: num, Size: 1000, Count: 10,
		Smallest: []byte(lo), Largest: []byte(hi),
		MinSeq: 1, MaxSeq: 10,
	}
}

func TestOpenFresh(t *testing.T) {
	fs := vfs.NewMem()
	m, err := Open(fs, "db")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s := m.State()
	if s.NextFileNum != 1 || len(s.Partitions) != 0 {
		t.Fatalf("fresh state: %+v", s)
	}
	if !fs.Exists("db/CURRENT") {
		t.Fatal("CURRENT not written")
	}
}

func TestApplyAndRecover(t *testing.T) {
	fs := vfs.NewMem()
	m, err := Open(fs, "db")
	if err != nil {
		t.Fatal(err)
	}
	err = m.Apply(
		NextFile(10),
		LastSeq(55),
		NextLog(3),
		NextPart(2),
		AddPartition(1, nil),
		AddUnsorted(1, tmeta(4, "a", "m")),
		AddUnsorted(1, tmeta(5, "c", "z")),
		SetSorted(1, []TableMeta{tmeta(6, "a", "k"), tmeta(7, "k1", "z")}),
		SetWAL(1, 8),
		SetHashCkpt(1, 9),
		SetLogs(1, []uint32{0, 1, 2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	want := m.State()
	m.Close()

	m2, err := Open(fs, "db")
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	got := m2.State()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("state mismatch:\n got %+v\nwant %+v", got, want)
	}
	p := got.Partitions[1]
	if len(p.Unsorted) != 2 || len(p.Sorted) != 2 || p.WALNum != 8 || p.HashCkpt != 9 {
		t.Fatalf("partition: %+v", p)
	}
	if !bytes.Equal(p.Sorted[1].Smallest, []byte("k1")) {
		t.Fatalf("table meta lost: %+v", p.Sorted[1])
	}
}

func TestAtomicBatches(t *testing.T) {
	fs := vfs.NewMem()
	m, _ := Open(fs, "db")
	m.Apply(AddPartition(1, nil))
	// A batch with a bad edit must change nothing.
	err := m.Apply(
		SetWAL(1, 5),
		SetWAL(99, 6), // unknown partition
	)
	if err == nil {
		t.Fatal("bad batch accepted")
	}
	if m.State().Partitions[1].WALNum != 0 {
		t.Fatal("partial batch applied")
	}
	m.Close()
}

func TestSplitScenario(t *testing.T) {
	fs := vfs.NewMem()
	m, _ := Open(fs, "db")
	if err := m.Apply(
		AddPartition(1, nil),
		SetLogs(1, []uint32{0, 1}),
		NextPart(2),
	); err != nil {
		t.Fatal(err)
	}
	// Split partition 1 at key "m": child 2 takes [m, ∞); both children
	// reference the parent's logs (lazy value split).
	if err := m.Apply(
		AddPartition(2, []byte("m")),
		SetLogs(2, []uint32{0, 1}),
		SetSorted(1, []TableMeta{tmeta(10, "a", "l")}),
		SetSorted(2, []TableMeta{tmeta(11, "m", "z")}),
		NextPart(3),
	); err != nil {
		t.Fatal(err)
	}
	m.Close()

	m2, _ := Open(fs, "db")
	defer m2.Close()
	ps := m2.State().SortedPartitions()
	if len(ps) != 2 {
		t.Fatalf("%d partitions", len(ps))
	}
	if ps[0].ID != 1 || ps[1].ID != 2 {
		t.Fatalf("order: %d, %d", ps[0].ID, ps[1].ID)
	}
	if string(ps[1].Lower) != "m" {
		t.Fatalf("boundary: %q", ps[1].Lower)
	}
	if len(ps[0].Logs) != 2 || len(ps[1].Logs) != 2 {
		t.Fatal("shared logs lost")
	}
}

func TestRemovePartition(t *testing.T) {
	fs := vfs.NewMem()
	m, _ := Open(fs, "db")
	m.Apply(AddPartition(1, nil), AddPartition(2, []byte("m")))
	m.Apply(RemovePartition(1))
	if len(m.State().Partitions) != 1 {
		t.Fatal("remove failed")
	}
	m.Close()
	m2, _ := Open(fs, "db")
	defer m2.Close()
	if len(m2.State().Partitions) != 1 {
		t.Fatal("remove not durable")
	}
}

func TestRotation(t *testing.T) {
	fs := vfs.NewMem()
	m, _ := Open(fs, "db")
	m.RotateAt = 512
	for i := 0; i < 200; i++ {
		if err := m.Apply(NextFile(uint64(i + 2))); err != nil {
			t.Fatal(err)
		}
	}
	if m.gen < 2 {
		t.Fatal("no rotation happened")
	}
	want := m.State()
	m.Close()
	m2, err := Open(fs, "db")
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := m2.State(); !reflect.DeepEqual(got, want) {
		t.Fatalf("state lost in rotation:\n got %+v\nwant %+v", got, want)
	}
	// Old manifests cleaned up: at most 2 manifest files around.
	names, _ := fs.List("db")
	n := 0
	for _, name := range names {
		if len(name) > 8 && name[:9] == "MANIFEST-" {
			n++
		}
	}
	if n > 2 {
		t.Fatalf("%d stale manifests", n)
	}
}

func TestTornManifestTail(t *testing.T) {
	fs := vfs.NewMem()
	m, _ := Open(fs, "db")
	m.Apply(AddPartition(1, nil))
	m.Apply(SetWAL(1, 7))
	cur, _ := fs.ReadFile("db/CURRENT")
	name := "db/" + string(bytes.TrimSpace(cur))
	m.Close()

	// Tear off the last few bytes: the last batch may be lost, but the
	// manifest must still open and contain the earlier state.
	data, _ := fs.ReadFile(name)
	fs.WriteFile(name, data[:len(data)-3])
	m2, err := Open(fs, "db")
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if _, ok := m2.State().Partitions[1]; !ok {
		t.Fatal("partition lost to torn tail")
	}
}

func TestStateCloneIsolated(t *testing.T) {
	s := NewState()
	s.Partitions[1] = &PartitionMeta{ID: 1, Logs: []uint32{1}}
	c := s.Clone()
	c.Partitions[1].Logs[0] = 99
	c.Partitions[1].Unsorted = append(c.Partitions[1].Unsorted, TableMeta{})
	if s.Partitions[1].Logs[0] == 99 || len(s.Partitions[1].Unsorted) != 0 {
		t.Fatal("Clone shares memory")
	}
}

// TestQuickEditRoundTrip: random edit batches survive encode/decode and
// replay to the same state.
func TestQuickEditRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		fs := vfs.NewMem()
		m, err := Open(fs, "db")
		if err != nil {
			return false
		}
		pids := []uint32{}
		for batch := 0; batch < 10; batch++ {
			var edits []Edit
			for i := 0; i < rnd.Intn(5)+1; i++ {
				switch rnd.Intn(6) {
				case 0:
					edits = append(edits, NextFile(rnd.Uint64()%1e6))
				case 1:
					id := uint32(len(pids) + 1)
					pids = append(pids, id)
					edits = append(edits, AddPartition(id, []byte(fmt.Sprintf("k%03d", id))))
				case 2:
					if len(pids) > 0 {
						id := pids[rnd.Intn(len(pids))]
						edits = append(edits, AddUnsorted(id, tmeta(rnd.Uint64()%1e6, "a", "z")))
					}
				case 3:
					if len(pids) > 0 {
						id := pids[rnd.Intn(len(pids))]
						edits = append(edits, SetSorted(id, []TableMeta{tmeta(rnd.Uint64()%1e6, "b", "y")}))
					}
				case 4:
					if len(pids) > 0 {
						id := pids[rnd.Intn(len(pids))]
						edits = append(edits, SetLogs(id, []uint32{rnd.Uint32() % 100}))
					}
				case 5:
					edits = append(edits, LastSeq(rnd.Uint64()%1e9))
				}
			}
			if len(edits) == 0 {
				continue
			}
			if err := m.Apply(edits...); err != nil {
				return false
			}
		}
		want := m.State()
		m.Close()
		m2, err := Open(fs, "db")
		if err != nil {
			return false
		}
		defer m2.Close()
		return reflect.DeepEqual(m2.State(), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
