// Package manifest persists the engine's metadata: the partition set with
// boundary keys, each partition's table lists, WAL and hash-index
// checkpoint numbers, referenced value logs, and the global file/sequence
// counters.
//
// Like LevelDB's MANIFEST (which the paper reuses), it is itself a
// write-ahead log: a snapshot record followed by edit batches, each batch
// applied atomically at recovery. A CURRENT file names the live manifest.
// Merge, GC, and split commit their outcome as one batch — the batch record
// doubles as the paper's GC_done / split-done marker: a crash before the
// batch leaves the old state (the operation redoes), a crash after leaves
// the new state, and orphaned files are swept at open.
package manifest

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"unikv/internal/codec"
	"unikv/internal/vfs"
	"unikv/internal/wal"
)

// ErrCorrupt reports an unreadable manifest.
var ErrCorrupt = errors.New("manifest: corrupt")

// TableMeta describes one SSTable file.
type TableMeta struct {
	FileNum  uint64
	Size     int64
	Count    int
	Smallest []byte
	Largest  []byte
	MinSeq   uint64
	MaxSeq   uint64
}

// PartitionMeta describes one partition.
type PartitionMeta struct {
	ID uint32
	// Lower is the inclusive lower boundary key; the first partition's is
	// empty. A partition owns [Lower, next partition's Lower).
	Lower []byte
	// Unsorted lists UnsortedStore tables in flush order (oldest first).
	Unsorted []TableMeta
	// Sorted lists SortedStore tables in key order (one sorted run).
	Sorted []TableMeta
	// WALNum is the file number of the partition's live WAL (0 = none).
	WALNum uint64
	// HashCkpt is the file number of the newest hash-index checkpoint
	// (0 = none).
	HashCkpt uint64
	// Logs lists the value logs this partition references (owned or
	// inherited from a split parent awaiting lazy value split).
	Logs []uint32
}

// clone deep-copies the partition metadata.
func (p *PartitionMeta) clone() *PartitionMeta {
	c := *p
	c.Lower = append([]byte(nil), p.Lower...)
	c.Unsorted = append([]TableMeta(nil), p.Unsorted...)
	c.Sorted = append([]TableMeta(nil), p.Sorted...)
	c.Logs = append([]uint32(nil), p.Logs...)
	return &c
}

// State is the full metadata image.
type State struct {
	NextFileNum uint64
	LastSeq     uint64
	NextLogNum  uint32
	NextPartID  uint32
	Partitions  map[uint32]*PartitionMeta
}

// NewState returns an empty state with counters initialized.
func NewState() *State {
	return &State{NextFileNum: 1, NextPartID: 1, Partitions: map[uint32]*PartitionMeta{}}
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := &State{
		NextFileNum: s.NextFileNum,
		LastSeq:     s.LastSeq,
		NextLogNum:  s.NextLogNum,
		NextPartID:  s.NextPartID,
		Partitions:  make(map[uint32]*PartitionMeta, len(s.Partitions)),
	}
	for id, p := range s.Partitions {
		c.Partitions[id] = p.clone()
	}
	return c
}

// SortedPartitions returns partitions ordered by lower boundary.
func (s *State) SortedPartitions() []*PartitionMeta {
	out := make([]*PartitionMeta, 0, len(s.Partitions))
	for _, p := range s.Partitions {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		return codec.Compare(out[i].Lower, out[j].Lower) < 0
	})
	return out
}

// ---------------------------------------------------------------------------
// Edits.

// editTag discriminates edit encodings.
type editTag byte

const (
	tagNextFile editTag = 1 + iota
	tagLastSeq
	tagNextLog
	tagNextPart
	tagAddPartition
	tagRemovePartition
	tagAddUnsorted
	tagSetUnsorted
	tagSetSorted
	tagSetWAL
	tagSetHashCkpt
	tagSetLogs
)

// Edit is one state mutation. Exactly one constructor-set field group is
// meaningful per edit; Apply dispatches on tag.
type Edit struct {
	tag    editTag
	num    uint64
	pid    uint32
	lower  []byte
	table  TableMeta
	tables []TableMeta
	logs   []uint32
}

// NextFile sets the next file number.
func NextFile(n uint64) Edit { return Edit{tag: tagNextFile, num: n} }

// LastSeq sets the last durable sequence number.
func LastSeq(n uint64) Edit { return Edit{tag: tagLastSeq, num: n} }

// NextLog sets the next value-log number.
func NextLog(n uint32) Edit { return Edit{tag: tagNextLog, num: uint64(n)} }

// NextPart sets the next partition ID.
func NextPart(n uint32) Edit { return Edit{tag: tagNextPart, num: uint64(n)} }

// AddPartition creates partition id with the given lower bound.
func AddPartition(id uint32, lower []byte) Edit {
	return Edit{tag: tagAddPartition, pid: id, lower: lower}
}

// RemovePartition drops partition id.
func RemovePartition(id uint32) Edit { return Edit{tag: tagRemovePartition, pid: id} }

// AddUnsorted appends one table to partition id's UnsortedStore.
func AddUnsorted(id uint32, t TableMeta) Edit {
	return Edit{tag: tagAddUnsorted, pid: id, table: t}
}

// SetUnsorted replaces partition id's UnsortedStore table list.
func SetUnsorted(id uint32, ts []TableMeta) Edit {
	return Edit{tag: tagSetUnsorted, pid: id, tables: ts}
}

// SetSorted replaces partition id's SortedStore table list.
func SetSorted(id uint32, ts []TableMeta) Edit {
	return Edit{tag: tagSetSorted, pid: id, tables: ts}
}

// SetWAL points partition id at WAL file n.
func SetWAL(id uint32, n uint64) Edit { return Edit{tag: tagSetWAL, pid: id, num: n} }

// SetHashCkpt points partition id at hash-index checkpoint file n.
func SetHashCkpt(id uint32, n uint64) Edit { return Edit{tag: tagSetHashCkpt, pid: id, num: n} }

// SetLogs replaces partition id's referenced value-log list.
func SetLogs(id uint32, logs []uint32) Edit { return Edit{tag: tagSetLogs, pid: id, logs: logs} }

// apply mutates s.
func (e Edit) apply(s *State) error {
	switch e.tag {
	case tagNextFile:
		s.NextFileNum = e.num
	case tagLastSeq:
		s.LastSeq = e.num
	case tagNextLog:
		s.NextLogNum = uint32(e.num)
	case tagNextPart:
		s.NextPartID = uint32(e.num)
	case tagAddPartition:
		s.Partitions[e.pid] = &PartitionMeta{ID: e.pid, Lower: append([]byte(nil), e.lower...)}
	case tagRemovePartition:
		delete(s.Partitions, e.pid)
	default:
		p, ok := s.Partitions[e.pid]
		if !ok {
			return fmt.Errorf("manifest: edit %d references unknown partition %d", e.tag, e.pid)
		}
		switch e.tag {
		case tagAddUnsorted:
			p.Unsorted = append(p.Unsorted, e.table)
		case tagSetUnsorted:
			p.Unsorted = append([]TableMeta(nil), e.tables...)
		case tagSetSorted:
			p.Sorted = append([]TableMeta(nil), e.tables...)
		case tagSetWAL:
			p.WALNum = e.num
		case tagSetHashCkpt:
			p.HashCkpt = e.num
		case tagSetLogs:
			p.Logs = append([]uint32(nil), e.logs...)
		default:
			return fmt.Errorf("manifest: unknown edit tag %d", e.tag)
		}
	}
	return nil
}

// encodeTable appends t's wire form.
func encodeTable(dst []byte, t TableMeta) []byte {
	dst = codec.PutUvarint(dst, t.FileNum)
	dst = codec.PutUvarint(dst, uint64(t.Size))
	dst = codec.PutUvarint(dst, uint64(t.Count))
	dst = codec.PutBytes(dst, t.Smallest)
	dst = codec.PutBytes(dst, t.Largest)
	dst = codec.PutUvarint(dst, t.MinSeq)
	dst = codec.PutUvarint(dst, t.MaxSeq)
	return dst
}

func decodeTable(src []byte) (TableMeta, []byte, error) {
	var t TableMeta
	var v uint64
	var b []byte
	var err error
	if t.FileNum, src, err = codec.Uvarint(src); err != nil {
		return t, nil, err
	}
	if v, src, err = codec.Uvarint(src); err != nil {
		return t, nil, err
	}
	t.Size = int64(v)
	if v, src, err = codec.Uvarint(src); err != nil {
		return t, nil, err
	}
	t.Count = int(v)
	if b, src, err = codec.Bytes(src); err != nil {
		return t, nil, err
	}
	t.Smallest = append([]byte(nil), b...)
	if b, src, err = codec.Bytes(src); err != nil {
		return t, nil, err
	}
	t.Largest = append([]byte(nil), b...)
	if t.MinSeq, src, err = codec.Uvarint(src); err != nil {
		return t, nil, err
	}
	if t.MaxSeq, src, err = codec.Uvarint(src); err != nil {
		return t, nil, err
	}
	return t, src, nil
}

// encode appends the edit's wire form.
func (e Edit) encode(dst []byte) []byte {
	dst = append(dst, byte(e.tag))
	switch e.tag {
	case tagNextFile, tagLastSeq, tagNextLog, tagNextPart:
		dst = codec.PutUvarint(dst, e.num)
	case tagAddPartition:
		dst = codec.PutUvarint(dst, uint64(e.pid))
		dst = codec.PutBytes(dst, e.lower)
	case tagRemovePartition:
		dst = codec.PutUvarint(dst, uint64(e.pid))
	case tagAddUnsorted:
		dst = codec.PutUvarint(dst, uint64(e.pid))
		dst = encodeTable(dst, e.table)
	case tagSetUnsorted, tagSetSorted:
		dst = codec.PutUvarint(dst, uint64(e.pid))
		dst = codec.PutUvarint(dst, uint64(len(e.tables)))
		for _, t := range e.tables {
			dst = encodeTable(dst, t)
		}
	case tagSetWAL, tagSetHashCkpt:
		dst = codec.PutUvarint(dst, uint64(e.pid))
		dst = codec.PutUvarint(dst, e.num)
	case tagSetLogs:
		dst = codec.PutUvarint(dst, uint64(e.pid))
		dst = codec.PutUvarint(dst, uint64(len(e.logs)))
		for _, l := range e.logs {
			dst = codec.PutUvarint(dst, uint64(l))
		}
	}
	return dst
}

// decodeEdit parses one edit.
func decodeEdit(src []byte) (Edit, []byte, error) {
	if len(src) == 0 {
		return Edit{}, nil, ErrCorrupt
	}
	e := Edit{tag: editTag(src[0])}
	src = src[1:]
	var v uint64
	var err error
	switch e.tag {
	case tagNextFile, tagLastSeq, tagNextLog, tagNextPart:
		if e.num, src, err = codec.Uvarint(src); err != nil {
			return e, nil, err
		}
	case tagAddPartition:
		if v, src, err = codec.Uvarint(src); err != nil {
			return e, nil, err
		}
		e.pid = uint32(v)
		var b []byte
		if b, src, err = codec.Bytes(src); err != nil {
			return e, nil, err
		}
		e.lower = append([]byte(nil), b...)
	case tagRemovePartition:
		if v, src, err = codec.Uvarint(src); err != nil {
			return e, nil, err
		}
		e.pid = uint32(v)
	case tagAddUnsorted:
		if v, src, err = codec.Uvarint(src); err != nil {
			return e, nil, err
		}
		e.pid = uint32(v)
		if e.table, src, err = decodeTable(src); err != nil {
			return e, nil, err
		}
	case tagSetUnsorted, tagSetSorted:
		if v, src, err = codec.Uvarint(src); err != nil {
			return e, nil, err
		}
		e.pid = uint32(v)
		var n uint64
		if n, src, err = codec.Uvarint(src); err != nil {
			return e, nil, err
		}
		for i := uint64(0); i < n; i++ {
			var t TableMeta
			if t, src, err = decodeTable(src); err != nil {
				return e, nil, err
			}
			e.tables = append(e.tables, t)
		}
	case tagSetWAL, tagSetHashCkpt:
		if v, src, err = codec.Uvarint(src); err != nil {
			return e, nil, err
		}
		e.pid = uint32(v)
		if e.num, src, err = codec.Uvarint(src); err != nil {
			return e, nil, err
		}
	case tagSetLogs:
		if v, src, err = codec.Uvarint(src); err != nil {
			return e, nil, err
		}
		e.pid = uint32(v)
		var n uint64
		if n, src, err = codec.Uvarint(src); err != nil {
			return e, nil, err
		}
		for i := uint64(0); i < n; i++ {
			var l uint64
			if l, src, err = codec.Uvarint(src); err != nil {
				return e, nil, err
			}
			e.logs = append(e.logs, uint32(l))
		}
	default:
		return e, nil, ErrCorrupt
	}
	return e, src, nil
}

// SnapshotEdits expands a state into the edit batch that recreates it.
func SnapshotEdits(s *State) []Edit {
	edits := []Edit{
		NextFile(s.NextFileNum),
		LastSeq(s.LastSeq),
		NextLog(s.NextLogNum),
		NextPart(s.NextPartID),
	}
	for _, p := range s.SortedPartitions() {
		edits = append(edits,
			AddPartition(p.ID, p.Lower),
			SetUnsorted(p.ID, p.Unsorted),
			SetSorted(p.ID, p.Sorted),
			SetWAL(p.ID, p.WALNum),
			SetHashCkpt(p.ID, p.HashCkpt),
			SetLogs(p.ID, p.Logs),
		)
	}
	return edits
}

// ---------------------------------------------------------------------------
// Manifest file management.

const currentName = "CURRENT"

// manifestName formats the manifest file name for generation n.
func manifestName(n uint64) string { return fmt.Sprintf("MANIFEST-%06d", n) }

// Manifest owns the live metadata log.
type Manifest struct {
	fs  vfs.FS
	dir string

	mu     sync.Mutex
	state  *State
	w      *wal.Writer
	gen    uint64
	closed bool
	// RotateAt triggers a snapshot rotation once the live log exceeds this
	// many bytes (0 = default 1 MiB).
	RotateAt int64
}

// Open recovers the manifest in dir, creating an empty one if absent.
func Open(fs vfs.FS, dir string) (*Manifest, error) {
	if err := fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	m := &Manifest{fs: fs, dir: dir, RotateAt: 1 << 20}
	cur := filepath.Join(dir, currentName)
	if !fs.Exists(cur) {
		m.state = NewState()
		m.gen = 1
		if err := m.writeFresh(); err != nil {
			return nil, err
		}
		return m, nil
	}
	name, err := fs.ReadFile(cur)
	if err != nil {
		return nil, err
	}
	base := strings.TrimSpace(string(name))
	if _, err := fmt.Sscanf(base, "MANIFEST-%06d", &m.gen); err != nil {
		return nil, ErrCorrupt
	}
	f, err := fs.Open(filepath.Join(dir, base))
	if err != nil {
		return nil, err
	}
	state := NewState()
	r := wal.NewReader(f)
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			f.Close()
			return nil, err
		}
		for len(rec) > 0 {
			var e Edit
			if e, rec, err = decodeEdit(rec); err != nil {
				f.Close()
				return nil, err
			}
			if err := e.apply(state); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	f.Close()
	m.state = state
	// Continue in a fresh generation so we never append to a log we only
	// partially validated.
	m.gen++
	if err := m.writeFresh(); err != nil {
		return nil, err
	}
	return m, nil
}

// writeFresh starts manifest generation m.gen with a snapshot of m.state
// and repoints CURRENT at it.
func (m *Manifest) writeFresh() error {
	name := manifestName(m.gen)
	f, err := m.fs.Create(filepath.Join(m.dir, name))
	if err != nil {
		return err
	}
	w := wal.NewWriter(f)
	var buf []byte
	for _, e := range SnapshotEdits(m.state) {
		buf = e.encode(buf)
	}
	if err := w.AddRecord(buf); err != nil {
		f.Close()
		return err
	}
	if err := w.Sync(); err != nil {
		f.Close()
		return err
	}
	// Persist the new manifest's directory entry before CURRENT names it,
	// and the CURRENT rename itself before anything relies on the swap.
	// Without these a crash can lose the just-published generation even
	// though its contents were fsynced.
	if err := m.fs.SyncDir(m.dir); err != nil {
		f.Close()
		return err
	}
	if err := m.fs.WriteFile(filepath.Join(m.dir, currentName), []byte(name+"\n")); err != nil {
		f.Close()
		return err
	}
	if err := m.fs.SyncDir(m.dir); err != nil {
		f.Close()
		return err
	}
	// Best-effort removal of the previous generation.
	if m.gen > 1 {
		old := filepath.Join(m.dir, manifestName(m.gen-1))
		if m.fs.Exists(old) {
			m.fs.Remove(old)
		}
	}
	if m.w != nil {
		m.w.Close()
	}
	m.w = w
	return nil
}

// State returns a deep copy of the current metadata.
func (m *Manifest) State() *State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state.Clone()
}

// Apply durably appends the edit batch (one atomic record) and applies it
// to the in-memory state.
func (m *Manifest) Apply(edits ...Edit) error {
	if len(edits) == 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("manifest: closed")
	}
	// Validate against a scratch copy first so a bad edit cannot wedge the
	// durable log out of sync with memory.
	scratch := m.state.Clone()
	for _, e := range edits {
		if err := e.apply(scratch); err != nil {
			return err
		}
	}
	var buf []byte
	for _, e := range edits {
		buf = e.encode(buf)
	}
	if err := m.w.AddRecord(buf); err != nil {
		return err
	}
	if err := m.w.Sync(); err != nil {
		return err
	}
	m.state = scratch
	if m.w.Size() > m.rotateAt() {
		m.gen++
		if err := m.writeFresh(); err != nil {
			return err
		}
	}
	return nil
}

func (m *Manifest) rotateAt() int64 {
	if m.RotateAt <= 0 {
		return 1 << 20
	}
	return m.RotateAt
}

// Close releases the manifest log.
func (m *Manifest) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	return m.w.Close()
}

// Rewrite replaces whatever manifest lives in dir — readable, corrupt, or
// absent — with a fresh generation holding exactly state. Offline repair
// uses it after reconstructing the state from the surviving files; the
// write follows writeFresh's crash ordering (new generation fsynced, then
// CURRENT repointed), and superseded generations are removed best effort.
func Rewrite(fs vfs.FS, dir string, state *State) error {
	if err := fs.MkdirAll(dir); err != nil {
		return err
	}
	// Pick a generation above every existing MANIFEST file so nothing on
	// disk can be confused with the new one.
	gen := uint64(1)
	names, _ := fs.List(dir)
	for _, name := range names {
		var n uint64
		if _, err := fmt.Sscanf(name, "MANIFEST-%06d", &n); err == nil && n >= gen {
			gen = n + 1
		}
	}
	m := &Manifest{fs: fs, dir: dir, RotateAt: 1 << 20, state: state.Clone(), gen: gen}
	if err := m.writeFresh(); err != nil {
		return err
	}
	for _, name := range names {
		var n uint64
		if _, err := fmt.Sscanf(name, "MANIFEST-%06d", &n); err == nil && n != gen {
			fs.Remove(filepath.Join(dir, name))
		}
	}
	return m.Close()
}
