package server

import "unikv"

// commitResult carries one group commit's outcome to everyone waiting on
// it: the connection writer that must encode the response, and the
// connection reader when it needs a read-your-writes barrier. err is
// written strictly before done is closed.
type commitResult struct {
	err  error
	done chan struct{}
}

func (r *commitResult) wait() error {
	<-r.done
	return r.err
}

// commitReq is one connection's write request (PUT, DELETE, or BATCH as a
// single unit) queued for the shared group-commit loop.
type commitReq struct {
	b   *unikv.Batch
	res *commitResult
}

// commitLoop is the group-commit path: a single goroutine that takes
// whatever write requests have queued up — across all connections — and
// applies them as one DB.Apply. Under concurrency the queue naturally
// fills while the previous Apply (and its WAL fsync under SyncWrites) is
// in flight, so N concurrent writers converge on far fewer than N
// commits. Requests keep their queue order inside the merged batch, and
// every waiter gets the same commit result.
//
// The loop exits when commitCh closes (after all connection handlers have
// drained), committing anything still queued first.
func (s *Server) commitLoop() {
	defer s.commitWG.Done()
	for first := range s.commitCh {
		group := first.b
		results := []*commitResult{first.res}
	drain:
		for group.Len() < s.opts.MaxGroupOps {
			select {
			case r, ok := <-s.commitCh:
				if !ok {
					break drain // closed and empty; commit what we have
				}
				group.Append(r.b)
				results = append(results, r.res)
			default:
				break drain
			}
		}
		err := s.db.Apply(group)
		s.groupCommits.Add(1)
		s.groupedOps.Add(int64(group.Len()))
		if n := int64(group.Len()); n > s.maxGroup.Load() {
			s.maxGroup.Store(n) // single-writer: only this goroutine stores
		}
		for _, r := range results {
			r.err = err
			close(r.done)
		}
	}
}
