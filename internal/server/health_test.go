package server

import (
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"unikv"
	"unikv/internal/vfs"
)

// TestHealthHandler drives /healthz across the degraded transition: 200
// while the engine accepts writes, 503 with the cause in the body once a
// background failure flips it to read-only — the drain signal for HTTP
// load balancers.
func TestHealthHandler(t *testing.T) {
	ffs := vfs.NewFail(vfs.NewMem())
	s, db, _ := startServer(t, &unikv.Options{
		FS:                ffs,
		MemtableSize:      2 << 10,
		UnsortedLimit:     8 << 10,
		BackgroundWorkers: 2,
		JobRetries:        1,
		RetryBaseDelay:    time.Millisecond,
		RetryMaxDelay:     2 * time.Millisecond,
	}, Options{})
	h := s.HealthHandler()

	get := func() (int, string) {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		body, _ := io.ReadAll(rec.Result().Body)
		return rec.Code, string(body)
	}

	if code, body := get(); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthy: %d %q, want 200 ok", code, body)
	}

	ffs.ArmPlan(vfs.FailPlan{Fail: -1, Kinds: vfs.OpWrite, Pattern: "*.sst"})
	defer ffs.Disarm()
	var writeErr error
	for i := 0; i < 50000; i++ {
		if writeErr = db.Put(key(i), val(i)); writeErr != nil {
			break
		}
	}
	if !errors.Is(writeErr, unikv.ErrDegraded) {
		t.Fatalf("write error %v, want ErrDegraded", writeErr)
	}
	code, body := get()
	if code != 503 {
		t.Fatalf("degraded: status %d, want 503", code)
	}
	if !strings.Contains(body, "degraded") || !strings.Contains(body, "flush") {
		t.Fatalf("degraded body %q, want the mode and cause named", body)
	}
}
