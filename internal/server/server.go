// Package server is UniKV's network front end: a TCP server that speaks
// the internal/protocol wire format and serves a *unikv.DB to many
// concurrent clients.
//
// Each accepted connection gets one goroutine pair (reader + writer)
// connected by an ordered response queue, so a client may pipeline
// requests: the reader decodes and dispatches frame after frame without
// waiting for earlier responses to be written. Read operations execute in
// the reader goroutine; write operations (PUT, DELETE, BATCH) are handed
// to a shared group-commit loop that coalesces everything currently
// queued — across all connections — into a single DB.Apply, amortizing
// WAL appends and fsyncs under concurrency exactly where a skewed
// write-heavy workload needs it.
//
// The server enforces a connection limit, optional idle/write deadlines,
// a frame size cap (protocol.MaxFrameSize), and shuts down gracefully:
// Close stops accepting, wakes idle readers, lets every in-flight request
// finish and flush its response, then drains the commit loop.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"unikv"
	"unikv/internal/protocol"
)

// Options tunes the server. The zero value selects the defaults.
type Options struct {
	// MaxConns caps simultaneously served connections; excess accepts are
	// sent a StatusClosed error frame and dropped. Default 1024.
	MaxConns int
	// IdleTimeout closes a connection that sends no request for this
	// long. 0 means no idle deadline.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write. 0 means no deadline.
	WriteTimeout time.Duration
	// MaxGroupOps caps operations coalesced into one group commit.
	// Default 4096.
	MaxGroupOps int
	// PipelineDepth is the per-connection bound on decoded-but-unanswered
	// requests; the reader stalls beyond it (backpressure). Default 64.
	PipelineDepth int
	// Logf receives connection-level error lines. nil discards them.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.MaxConns <= 0 {
		o.MaxConns = 1024
	}
	if o.MaxGroupOps <= 0 {
		o.MaxGroupOps = 4096
	}
	if o.PipelineDepth <= 0 {
		o.PipelineDepth = 64
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Metrics is one coherent snapshot of the serving layer plus the engine
// beneath it — the STATS opcode and the expvar endpoint both publish
// exactly this struct.
type Metrics struct {
	Engine unikv.Metrics

	// Connections.
	Conns         int64 // currently served
	ConnsTotal    int64 // accepted since start
	ConnsRejected int64 // dropped at the MaxConns limit

	// Requests.
	Requests      int64 // decoded request frames
	WriteRequests int64 // PUT + DELETE + BATCH among them
	InFlight      int64 // decoded but not yet answered
	Errors        int64 // non-OK responses sent

	// Wire traffic, counting frame headers and bodies.
	BytesIn  int64
	BytesOut int64

	// Group commit. GroupCommits < WriteRequests means coalescing is
	// happening: several concurrent write requests shared one DB.Apply.
	GroupCommits int64 // DB.Apply calls issued by the commit loop
	GroupedOps   int64 // engine operations across those calls
	MaxGroupOps  int64 // largest single group commit observed
}

// UnmarshalStats parses the JSON document a STATS response carries back
// into the struct, so clients and the server agree on one schema.
func (m *Metrics) UnmarshalStats(b []byte) error { return json.Unmarshal(b, m) }

// Server serves a unikv.DB over TCP. Create with New, start with Serve,
// stop with Close. The Server does not own the DB and never closes it.
type Server struct {
	db   *unikv.DB
	opts Options

	ln      net.Listener
	closing atomic.Bool
	wg      sync.WaitGroup // accept loop + connection handlers

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	commitCh chan *commitReq
	commitWG sync.WaitGroup

	// Counters behind Metrics.
	connsActive   atomic.Int64
	connsTotal    atomic.Int64
	connsRejected atomic.Int64
	requests      atomic.Int64
	writeRequests atomic.Int64
	inFlight      atomic.Int64
	respErrors    atomic.Int64
	bytesIn       atomic.Int64
	bytesOut      atomic.Int64
	groupCommits  atomic.Int64
	groupedOps    atomic.Int64
	maxGroup      atomic.Int64

	bufPool sync.Pool // *[]byte read/response buffers
}

// New wraps db in a server. Call Serve to start accepting.
func New(db *unikv.DB, opts Options) *Server {
	s := &Server{
		db:       db,
		opts:     opts.withDefaults(),
		conns:    make(map[net.Conn]struct{}),
		commitCh: make(chan *commitReq, 1024),
	}
	s.bufPool.New = func() any {
		b := make([]byte, 0, 4096)
		return &b
	}
	s.commitWG.Add(1)
	go s.commitLoop()
	return s
}

// Serve accepts connections on ln until Close. It returns nil after a
// clean shutdown, or the first accept error otherwise. Most callers run
// it in a goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.ln != nil {
		s.mu.Unlock()
		return errors.New("server: Serve called twice")
	}
	s.ln = ln
	s.mu.Unlock()
	if s.closing.Load() { // Close ran before the listener registered
		ln.Close()
		return nil
	}

	for {
		c, err := ln.Accept()
		if err != nil {
			if s.closing.Load() {
				return nil
			}
			return err
		}
		s.connsTotal.Add(1)
		if s.connsActive.Add(1) > int64(s.opts.MaxConns) || s.closing.Load() {
			s.connsActive.Add(-1)
			s.connsRejected.Add(1)
			// Best-effort courtesy frame; the peer may have already gone.
			c.SetWriteDeadline(time.Now().Add(time.Second))
			c.Write(protocol.AppendError(nil, 0, protocol.StatusClosed, "connection limit"))
			c.Close()
			continue
		}
		s.mu.Lock()
		s.conns[c] = struct{}{}
		// A connection registering after Close's deadline sweep would
		// otherwise park in ReadFrame forever; closing is set before the
		// sweep takes the lock, so checking it here closes the race.
		if s.closing.Load() {
			c.SetReadDeadline(time.Now())
		}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(c)
		}()
	}
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the listener address once Serve has been called, else nil.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close drains and stops the server: it stops accepting, wakes every
// reader blocked on an idle connection, answers all requests already
// decoded (writes acknowledged before Close returns are durable per the
// DB's WAL policy), then shuts the group-commit loop. The DB stays open.
func (s *Server) Close() error {
	if s.closing.Swap(true) {
		return nil // already closed
	}
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	// Wake readers parked in ReadFrame; in-flight requests still finish
	// because the write side keeps a generous drain deadline (it exists
	// only so a peer that stopped reading cannot hang shutdown forever).
	now := time.Now()
	for c := range s.conns {
		c.SetReadDeadline(now)
		c.SetWriteDeadline(now.Add(5 * time.Second))
	}
	s.mu.Unlock()
	s.wg.Wait()
	// All handlers have exited, so nothing can submit to commitCh.
	close(s.commitCh)
	s.commitWG.Wait()
	return nil
}

// Metrics snapshots the serving layer and the engine together.
func (s *Server) Metrics() Metrics {
	return Metrics{
		Engine:        s.db.Metrics(),
		Conns:         s.connsActive.Load(),
		ConnsTotal:    s.connsTotal.Load(),
		ConnsRejected: s.connsRejected.Load(),
		Requests:      s.requests.Load(),
		WriteRequests: s.writeRequests.Load(),
		InFlight:      s.inFlight.Load(),
		Errors:        s.respErrors.Load(),
		BytesIn:       s.bytesIn.Load(),
		BytesOut:      s.bytesOut.Load(),
		GroupCommits:  s.groupCommits.Load(),
		GroupedOps:    s.groupedOps.Load(),
		MaxGroupOps:   s.maxGroup.Load(),
	}
}

// statsJSON renders Metrics for the STATS opcode and the expvar endpoint.
func (s *Server) statsJSON() []byte {
	b, err := json.Marshal(s.Metrics())
	if err != nil { // a plain struct of integers cannot fail to marshal
		b = []byte(fmt.Sprintf(`{"error":%q}`, err))
	}
	return b
}

// getBuf borrows a byte buffer from the pool.
func (s *Server) getBuf() []byte { return (*s.bufPool.Get().(*[]byte))[:0] }

// putBuf returns a buffer. Oversized buffers are dropped so one huge
// frame doesn't pin its allocation forever.
func (s *Server) putBuf(b []byte) {
	if cap(b) > 1<<20 {
		return
	}
	s.bufPool.Put(&b)
}
