package server

import (
	"bufio"
	"errors"
	"io"
	"net"
	"time"

	"unikv"
	"unikv/internal/protocol"
)

// pending is one decoded request awaiting its response, queued in request
// order. Either resp is a ready frame (read ops, errors) or res will
// deliver the group-commit result (write ops) for the writer to encode.
type pending struct {
	id   uint32
	resp []byte // pooled; consumed by the writer
	res  *commitResult
}

// countingConn tallies wire bytes in both directions.
type countingConn struct {
	net.Conn
	s *Server
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.s.bytesIn.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.s.bytesOut.Add(int64(n))
	return n, err
}

// handleConn runs the reader loop for one connection and a paired writer
// goroutine, giving the client full request pipelining: the reader keeps
// decoding and dispatching while earlier responses are still being
// committed or written.
func (s *Server) handleConn(nc net.Conn) {
	cc := &countingConn{Conn: nc, s: s}
	defer func() {
		nc.Close()
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		s.connsActive.Add(-1)
	}()

	pendings := make(chan *pending, s.opts.PipelineDepth)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		s.connWriter(cc, pendings)
	}()
	defer func() { <-writerDone }()
	defer close(pendings)

	br := bufio.NewReaderSize(cc, 32<<10)
	readBuf := s.getBuf()
	defer func() { s.putBuf(readBuf) }()

	// lastWrite is the connection's most recent pending write. Reads
	// barrier on it before executing, preserving program order on a
	// pipelined connection (read-your-writes): the commit loop is FIFO,
	// so the newest write completing implies all older ones have.
	var lastWrite *commitResult

	for {
		if s.opts.IdleTimeout > 0 {
			nc.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		}
		var err error
		readBuf, err = s.readFrame(br, readBuf)
		if err != nil {
			if err != io.EOF && !s.closing.Load() && !isTimeout(err) {
				s.opts.Logf("server: %s: read: %v", nc.RemoteAddr(), err)
			}
			return
		}
		req, err := protocol.DecodeRequest(readBuf)
		if err != nil {
			// The frame boundary is intact, so the stream is not
			// desynchronized; answer BadRequest and keep serving.
			s.requests.Add(1)
			s.inFlight.Add(1)
			s.respErrors.Add(1)
			pendings <- &pending{resp: protocol.AppendError(s.getBuf(), req.ID, protocol.StatusBadRequest, err.Error())}
			continue
		}
		s.requests.Add(1)
		s.inFlight.Add(1)
		pendings <- s.dispatch(req, &lastWrite)
	}
}

// readFrame reads one frame, waking promptly when Close deadlines the
// connection mid-idle.
func (s *Server) readFrame(br *bufio.Reader, buf []byte) ([]byte, error) {
	// Close sets a past read deadline on every connection; a reader
	// parked here then fails with a timeout and exits via its caller.
	if s.closing.Load() {
		return buf, net.ErrClosed
	}
	return protocol.ReadFrame(br, buf)
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// dispatch executes a read request inline or hands a write request to the
// group-commit loop, returning the queue entry for the writer. lastWrite
// tracks this connection's newest pending write for the read barrier.
func (s *Server) dispatch(req protocol.Request, lastWrite **commitResult) *pending {
	p := &pending{id: req.ID}
	switch req.Op {
	case protocol.OpPing:
		p.resp = protocol.AppendOKEmpty(s.getBuf(), req.ID)

	case protocol.OpStats:
		s.readBarrier(lastWrite)
		p.resp = protocol.AppendOKValue(s.getBuf(), req.ID, s.statsJSON())

	case protocol.OpGet:
		s.readBarrier(lastWrite)
		v, err := s.db.Get(req.Key)
		if err != nil {
			p.resp = s.appendStatus(s.getBuf(), req.ID, err)
		} else {
			p.resp = protocol.AppendOKValue(s.getBuf(), req.ID, v)
		}

	case protocol.OpScan:
		s.readBarrier(lastWrite)
		end := req.End
		if req.NoEnd {
			end = nil
		}
		kvs, err := s.db.Scan(req.Start, end, req.Limit)
		if err != nil {
			p.resp = s.appendStatus(s.getBuf(), req.ID, err)
		} else {
			pairs := make([]protocol.KV, len(kvs))
			for i, kv := range kvs {
				pairs[i] = protocol.KV{Key: kv.Key, Value: kv.Value}
			}
			p.resp = protocol.AppendOKPairs(s.getBuf(), req.ID, pairs)
		}

	case protocol.OpPut, protocol.OpDelete, protocol.OpBatch:
		s.writeRequests.Add(1)
		// Batch.Put/Delete copy key and value out of the read buffer, so
		// the reader is free to reuse it for the next pipelined frame
		// while this one waits for its group commit.
		b := unikv.NewBatch()
		switch req.Op {
		case protocol.OpPut:
			b.Put(req.Key, req.Value)
		case protocol.OpDelete:
			b.Delete(req.Key)
		default:
			for _, op := range req.Ops {
				if op.Kind == protocol.BatchDelete {
					b.Delete(op.Key)
				} else {
					b.Put(op.Key, op.Value)
				}
			}
		}
		p.res = &commitResult{done: make(chan struct{})}
		*lastWrite = p.res
		s.commitCh <- &commitReq{b: b, res: p.res}
	}
	return p
}

// readBarrier waits for the connection's pending writes to commit before
// a read executes, so a pipelined GET observes the PUT sent before it.
func (s *Server) readBarrier(lastWrite **commitResult) {
	if *lastWrite != nil {
		(*lastWrite).wait()
		*lastWrite = nil
	}
}

// appendStatus encodes an error result, counting it.
func (s *Server) appendStatus(buf []byte, id uint32, err error) []byte {
	st := statusOf(err)
	if st == protocol.StatusOK {
		return protocol.AppendOKEmpty(buf, id)
	}
	s.respErrors.Add(1)
	return protocol.AppendError(buf, id, st, err.Error())
}

// statusOf maps engine errors onto wire statuses.
func statusOf(err error) protocol.Status {
	switch {
	case err == nil:
		return protocol.StatusOK
	case errors.Is(err, unikv.ErrNotFound):
		return protocol.StatusNotFound
	case errors.Is(err, unikv.ErrKeyTooLarge):
		return protocol.StatusTooLarge
	case errors.Is(err, unikv.ErrPartitionQuarantined):
		// Checked before StatusDegraded: quarantine is scoped to one
		// partition's key range while the rest of the node keeps serving,
		// so clients should fail the request, not drain the node.
		return protocol.StatusQuarantined
	case errors.Is(err, unikv.ErrDegraded):
		// Distinct from StatusInternal so clients and load balancers can
		// tell "this node rejects writes until reopened" from a one-off
		// failure. Checked before StatusClosed: a degraded DB still serves
		// reads, a closed one serves nothing.
		return protocol.StatusDegraded
	case errors.Is(err, unikv.ErrClosed):
		return protocol.StatusClosed
	default:
		return protocol.StatusInternal
	}
}

// connWriter writes responses in request order, buffering while the
// pipeline is busy and flushing the moment it goes idle. After a write
// failure it keeps draining the queue (so the reader and the commit loop
// never block on a dead connection) without writing.
func (s *Server) connWriter(cc *countingConn, pendings <-chan *pending) {
	bw := bufio.NewWriterSize(cc, 32<<10)
	dead := false
	for p := range pendings {
		if p.res != nil {
			p.resp = s.appendStatus(s.getBuf(), p.id, p.res.wait())
		}
		if !dead {
			if s.opts.WriteTimeout > 0 {
				cc.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
			}
			if _, err := bw.Write(p.resp); err != nil {
				dead = true
			} else if len(pendings) == 0 {
				if err := bw.Flush(); err != nil {
					dead = true
				}
			}
		}
		s.putBuf(p.resp)
		s.inFlight.Add(-1)
	}
	if !dead {
		bw.Flush()
	}
}
