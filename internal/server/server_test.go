package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"unikv"
	"unikv/internal/protocol"
	"unikv/internal/vfs"
)

// startServer opens a fresh in-memory DB and serves it on a loopback
// listener, cleaning both up with the test.
func startServer(t *testing.T, dbOpts *unikv.Options, opts Options) (*Server, *unikv.DB, string) {
	t.Helper()
	if dbOpts == nil {
		dbOpts = &unikv.Options{FS: vfs.NewMem()}
	}
	db, err := unikv.Open(t.TempDir(), dbOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	s := New(db, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return s, db, ln.Addr().String()
}

func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// readResp reads one response frame for op.
func readResp(t *testing.T, c net.Conn, op protocol.Op) protocol.Response {
	t.Helper()
	body, err := protocol.ReadFrame(c, nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	resp, err := protocol.DecodeResponse(op, body)
	if err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	return resp
}

// TestPipelining sends a burst of frames before reading anything, then
// checks every response arrives in request order with the right payload.
func TestPipelining(t *testing.T) {
	_, _, addr := startServer(t, nil, Options{})
	c := dialRaw(t, addr)

	const n = 50
	var wire []byte
	for i := 0; i < n; i++ {
		wire = protocol.AppendPut(wire, uint32(2*i), key(i), val(i))
		wire = protocol.AppendGet(wire, uint32(2*i+1), key(i))
	}
	if _, err := c.Write(wire); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		put := readResp(t, c, protocol.OpPut)
		if put.Status != protocol.StatusOK || put.ID != uint32(2*i) {
			t.Fatalf("put %d: %+v", i, put)
		}
		get := readResp(t, c, protocol.OpGet)
		if get.Status != protocol.StatusOK || get.ID != uint32(2*i+1) {
			t.Fatalf("get %d: %+v", i, get)
		}
		if !bytes.Equal(get.Value, val(i)) {
			t.Fatalf("get %d: value %q, want %q", i, get.Value, val(i))
		}
	}
}

func key(i int) []byte { return []byte{'k', byte(i >> 8), byte(i)} }
func val(i int) []byte { return bytes.Repeat([]byte{byte(i)}, 16) }

// TestMalformedFrameKeepsConnection: a frame that fails to decode gets a
// BadRequest response and the connection keeps serving (framing is still
// aligned), while the error counter ticks.
func TestMalformedFrameKeepsConnection(t *testing.T) {
	s, _, addr := startServer(t, nil, Options{})
	c := dialRaw(t, addr)

	var wire []byte
	wire = protocol.AppendPut(wire, 1, []byte("k"), []byte("v"))
	// Unknown opcode 0xEE with a valid length word.
	wire = append(wire, 6, 0, 0, 0, 0xEE, 9, 9, 9, 9, 9)
	wire = protocol.AppendGet(wire, 3, []byte("k"))
	if _, err := c.Write(wire); err != nil {
		t.Fatal(err)
	}
	if resp := readResp(t, c, protocol.OpPut); resp.Status != protocol.StatusOK {
		t.Fatalf("put: %+v", resp)
	}
	if resp := readResp(t, c, protocol.OpPing); resp.Status != protocol.StatusBadRequest {
		t.Fatalf("malformed: want BadRequest, got %+v", resp)
	}
	if resp := readResp(t, c, protocol.OpGet); resp.Status != protocol.StatusOK || string(resp.Value) != "v" {
		t.Fatalf("get after malformed: %+v", resp)
	}
	if m := s.Metrics(); m.Errors == 0 {
		t.Fatalf("want Errors > 0, got %+v", m)
	}
}

// TestOversizedFrameDropsConnection: announcing a body beyond
// MaxFrameSize must terminate the connection, not allocate.
func TestOversizedFrameDropsConnection(t *testing.T) {
	_, _, addr := startServer(t, nil, Options{})
	c := dialRaw(t, addr)
	hdr := []byte{0xff, 0xff, 0xff, 0xff} // ~4 GiB announced
	if _, err := c.Write(hdr); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadAll(c); err != nil {
		t.Fatalf("want clean close, got %v", err)
	}
}

// TestNotFoundAndTooLarge maps engine errors onto wire statuses.
func TestNotFoundAndTooLarge(t *testing.T) {
	_, _, addr := startServer(t, nil, Options{})
	c := dialRaw(t, addr)

	if _, err := c.Write(protocol.AppendGet(nil, 1, []byte("missing"))); err != nil {
		t.Fatal(err)
	}
	if resp := readResp(t, c, protocol.OpGet); resp.Status != protocol.StatusNotFound {
		t.Fatalf("want NotFound, got %+v", resp)
	}

	huge := make([]byte, 1<<17) // over the 64 KiB key limit
	if _, err := c.Write(protocol.AppendPut(nil, 2, huge, []byte("v"))); err != nil {
		t.Fatal(err)
	}
	if resp := readResp(t, c, protocol.OpPut); resp.Status != protocol.StatusTooLarge {
		t.Fatalf("want TooLarge, got %+v", resp)
	}
}

// TestConnectionLimit: accepts beyond MaxConns get a StatusClosed frame
// and are dropped; existing connections keep working.
func TestConnectionLimit(t *testing.T) {
	s, _, addr := startServer(t, nil, Options{MaxConns: 1})
	keep := dialRaw(t, addr)
	if _, err := keep.Write(protocol.AppendPing(nil, 1)); err != nil {
		t.Fatal(err)
	}
	if resp := readResp(t, keep, protocol.OpPing); resp.Status != protocol.StatusOK {
		t.Fatalf("first conn ping: %+v", resp)
	}

	extra := dialRaw(t, addr)
	extra.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp := readResp(t, extra, protocol.OpPing)
	if resp.Status != protocol.StatusClosed {
		t.Fatalf("want StatusClosed on overflow conn, got %+v", resp)
	}
	if _, err := protocol.ReadFrame(extra, nil); err == nil {
		t.Fatal("overflow conn should be closed after the error frame")
	}
	if m := s.Metrics(); m.ConnsRejected != 1 {
		t.Fatalf("want ConnsRejected=1, got %+v", m)
	}

	// The slot frees up once the first connection goes away.
	keep.Close()
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().Conns > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	again := dialRaw(t, addr)
	if _, err := again.Write(protocol.AppendPing(nil, 2)); err != nil {
		t.Fatal(err)
	}
	if resp := readResp(t, again, protocol.OpPing); resp.Status != protocol.StatusOK {
		t.Fatalf("replacement conn ping: %+v", resp)
	}
}

// TestIdleTimeout: a silent connection is closed once IdleTimeout passes.
func TestIdleTimeout(t *testing.T) {
	_, _, addr := startServer(t, nil, Options{IdleTimeout: 50 * time.Millisecond})
	c := dialRaw(t, addr)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadAll(c); err != nil {
		t.Fatalf("want idle close, got read error %v", err)
	}
}

// TestStatsOverWireAndHTTP: the STATS opcode and the HTTP handler must
// serve one coherent snapshot — same schema, same counters underneath.
func TestStatsOverWireAndHTTP(t *testing.T) {
	s, _, addr := startServer(t, nil, Options{})
	c := dialRaw(t, addr)

	var wire []byte
	for i := 0; i < 10; i++ {
		wire = protocol.AppendPut(wire, uint32(i), key(i), val(i))
	}
	if _, err := c.Write(wire); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if resp := readResp(t, c, protocol.OpPut); resp.Status != protocol.StatusOK {
			t.Fatalf("put %d: %+v", i, resp)
		}
	}

	if _, err := c.Write(protocol.AppendStats(nil, 99)); err != nil {
		t.Fatal(err)
	}
	resp := readResp(t, c, protocol.OpStats)
	if resp.Status != protocol.StatusOK {
		t.Fatalf("stats: %+v", resp)
	}
	var m Metrics
	if err := m.UnmarshalStats(resp.Stats); err != nil {
		t.Fatalf("stats payload: %v", err)
	}
	if m.Requests < 11 || m.WriteRequests != 10 || m.BytesIn == 0 || m.BytesOut == 0 {
		t.Fatalf("implausible wire metrics: %+v", m)
	}
	if m.Engine.Puts != 10 {
		t.Fatalf("engine puts = %d, want 10", m.Engine.Puts)
	}
	if m.GroupCommits == 0 || m.GroupedOps != 10 {
		t.Fatalf("group commit counters: %+v", m)
	}

	// The HTTP handler reports the same schema over the same counters.
	rec := httptest.NewRecorder()
	s.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var hm Metrics
	if err := json.Unmarshal(rec.Body.Bytes(), &hm); err != nil {
		t.Fatalf("http metrics: %v", err)
	}
	if hm.WriteRequests != m.WriteRequests || hm.Engine.Puts != m.Engine.Puts {
		t.Fatalf("http snapshot disagrees: %+v vs %+v", hm, m)
	}
}

// TestCloseIdempotent: double Close is a no-op, and a post-Close dial is
// refused.
func TestCloseIdempotent(t *testing.T) {
	s, _, addr := startServer(t, nil, Options{})
	// One round trip first, so Serve has definitely begun accepting
	// before Close races it.
	c := dialRaw(t, addr)
	if _, err := c.Write(protocol.AppendPing(nil, 1)); err != nil {
		t.Fatal(err)
	}
	if resp := readResp(t, c, protocol.OpPing); resp.Status != protocol.StatusOK {
		t.Fatalf("ping: %+v", resp)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if c, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		c.Close()
		t.Fatal("dial after Close should fail")
	}
}
