package server

import (
	"fmt"
	"net/http"
)

// MetricsHandler serves the same JSON snapshot as the STATS opcode, so
// the wire protocol and the HTTP/expvar surface can never disagree about
// schema. cmd/unikv-server mounts it next to expvar on the debug
// listener.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(s.statsJSON())
	})
}

// HealthHandler answers 200 while the engine accepts writes and 503 once
// it is degraded (writes rejected, reads still served), with the degraded
// cause in the body — the drain signal for load balancers that only speak
// HTTP health checks. Quarantined partitions are reported in the 200 body
// (only their key ranges reject; the node as a whole keeps serving, so
// draining it would shed healthy traffic). The full detail (DegradedSince,
// counters) is in /metrics and STATS.
func (s *Server) HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m := s.db.Metrics()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if m.Degraded {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("degraded: " + m.DegradedCause + "\n"))
			return
		}
		if m.QuarantinedPartitions > 0 {
			fmt.Fprintf(w, "ok (%d partition(s) quarantined)\n", m.QuarantinedPartitions)
			return
		}
		w.Write([]byte("ok\n"))
	})
}
