package server

import "net/http"

// MetricsHandler serves the same JSON snapshot as the STATS opcode, so
// the wire protocol and the HTTP/expvar surface can never disagree about
// schema. cmd/unikv-server mounts it next to expvar on the debug
// listener.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(s.statsJSON())
	})
}
