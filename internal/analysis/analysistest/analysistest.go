// Package analysistest runs an analyzer over source fixtures and checks
// its diagnostics against `// want "regexp"` expectation comments — a
// self-contained stand-in for golang.org/x/tools/go/analysis/analysistest
// (unavailable offline) with the same fixture layout and comment syntax.
//
// Fixtures live under <testdata>/src/<importpath>/*.go. A fixture package
// may import a sibling fixture package (resolved under the same src root)
// or the standard library (type-checked from GOROOT source, so no network
// or prebuilt export data is needed). Each expected diagnostic is declared
// on its line:
//
//	os.Open("x") // want `use vfs\.FS`
//
// Multiple space-separated quoted regexps on one comment expect multiple
// diagnostics on that line. The harness fails the test for every unmatched
// expectation and every unexpected diagnostic, and — because it reuses the
// production driver — `//unikv:allow(check)` comments suppress findings in
// fixtures exactly as they do in the tree.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"unikv/internal/analysis"
)

// Run loads each fixture package under testdata/src and applies a to it,
// reporting every expectation mismatch through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	l := &loader{
		fset: token.NewFileSet(),
		root: filepath.Join(testdata, "src"),
		pkgs: map[string]*loaded{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	for _, path := range pkgpaths {
		lp := l.load(path)
		if lp.err != nil {
			t.Errorf("loading fixture %s: %v", path, lp.err)
			continue
		}
		findings, err := analysis.Run(l.fset, lp.files, lp.pkg, lp.info, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
			continue
		}
		checkExpectations(t, l.fset, lp.files, findings)
	}
}

// loaded is one parsed and type-checked fixture package.
type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	err   error
}

// loader resolves fixture-local import paths under root and everything
// else through the GOROOT source importer.
type loader struct {
	fset *token.FileSet
	root string
	pkgs map[string]*loaded
	std  types.Importer
}

func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if st, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path))); err == nil && st.IsDir() {
		lp := l.load(path)
		return lp.pkg, lp.err
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) *loaded {
	if lp, ok := l.pkgs[path]; ok {
		return lp
	}
	lp := &loaded{}
	l.pkgs[path] = lp // set before type-checking to break import cycles loudly

	dir := filepath.Join(l.root, filepath.FromSlash(path))
	ents, err := os.ReadDir(dir)
	if err != nil {
		lp.err = err
		return lp
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			lp.err = err
			return lp
		}
		lp.files = append(lp.files, f)
	}
	if len(lp.files) == 0 {
		lp.err = fmt.Errorf("no Go files in %s", dir)
		return lp
	}
	lp.info = analysis.NewInfo()
	conf := types.Config{Importer: l}
	lp.pkg, lp.err = conf.Check(path, l.fset, lp.files, lp.info)
	return lp
}

// ---------------------------------------------------------------------------
// Expectation checking.

type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

type lineKey struct {
	file string
	line int
}

var wantRe = regexp.MustCompile(`^//\s*want\s+(.*)$`)

// checkExpectations compares findings against the // want comments in
// files, failing t for every discrepancy.
func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, findings []analysis.Finding) {
	t.Helper()
	wants := map[lineKey][]*expectation{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := lineKey{pos.Filename, pos.Line}
				exps, err := parseWant(m[1])
				if err != nil {
					t.Errorf("%s: bad want comment: %v", pos, err)
					continue
				}
				wants[key] = append(wants[key], exps...)
			}
		}
	}

	for _, fd := range findings {
		key := lineKey{fd.Pos.Filename, fd.Pos.Line}
		matched := false
		for _, exp := range wants[key] {
			if !exp.matched && exp.re.MatchString(fd.Message) {
				exp.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", fd.Pos, fd.Message)
		}
	}

	var keys []lineKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, exp := range wants[k] {
			if !exp.matched {
				t.Errorf("%s:%d: no diagnostic matching %s", k.file, k.line, exp.raw)
			}
		}
	}
}

// parseWant parses the space-separated quoted regexps after "want".
func parseWant(s string) ([]*expectation, error) {
	var exps []*expectation
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return exps, nil
		}
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		q, err := strconv.QuotedPrefix(s)
		if err != nil {
			return nil, fmt.Errorf("bad quoted regexp at %q: %v", s, err)
		}
		s = s[len(q):]
		raw, err := strconv.Unquote(q)
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			return nil, fmt.Errorf("bad regexp %s: %v", q, err)
		}
		exps = append(exps, &expectation{re: re, raw: q})
	}
}
