package callgraph_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"testing"

	"unikv/internal/analysis"
	"unikv/internal/analysis/callgraph"
)

// load typechecks the given files (name -> source) as one package and
// returns a Pass plus the built graph.
func load(t *testing.T, files map[string]string) (*analysis.Pass, *callgraph.Graph) {
	t.Helper()
	fset := token.NewFileSet()
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	var asts []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, files[name], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		asts = append(asts, f)
	}
	info := analysis.NewInfo()
	pkg, err := (&types.Config{}).Check("p", fset, asts, info)
	if err != nil {
		t.Fatalf("typechecking: %v", err)
	}
	pass := &analysis.Pass{Fset: fset, Files: asts, Pkg: pkg, TypesInfo: info}
	return pass, callgraph.Build(pass)
}

func byName(t *testing.T, g *callgraph.Graph, name string) *callgraph.Func {
	t.Helper()
	for _, f := range g.Funcs {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("no function %q in graph", name)
	return nil
}

func names(fs []*callgraph.Func) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Name
	}
	sort.Strings(out)
	return out
}

func equalNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

const graphSrc = `package p

type T struct{}

func (t *T) m() { leaf() }

func a() { b(); b() } // duplicate calls: one edge
func b() { c() }
func c() {}
func leaf() {}

func lit() {
	f := func() { c() } // call inside a nested literal: edge lit -> c
	f()                 // dynamic call through a function value: no edge
}

func ping() { pong() }
func pong() { ping() }
`

func TestBuild(t *testing.T) {
	_, g := load(t, map[string]string{
		"p.go":      graphSrc,
		"p_test.go": "package p\n\nfunc fromTest() { a() }\n",
	})

	cases := []struct {
		fn      string
		callees []string
	}{
		{"m", []string{"leaf"}},
		{"a", []string{"b"}}, // deduplicated
		{"b", []string{"c"}},
		{"c", nil},
		{"lit", []string{"c"}}, // via the nested literal only
		{"ping", []string{"pong"}},
		{"pong", []string{"ping"}},
	}
	for _, tc := range cases {
		got := names(byName(t, g, tc.fn).Callees)
		if !equalNames(got, names2(tc.callees)) {
			t.Errorf("%s.Callees = %v, want %v", tc.fn, got, tc.callees)
		}
	}

	if got := names(byName(t, g, "c").Callers); !equalNames(got, []string{"b", "lit"}) {
		t.Errorf("c.Callers = %v, want [b lit]", got)
	}
	if f := byName(t, g, "fromTest"); !f.TestFile {
		t.Error("fromTest.TestFile = false, want true")
	}
	if f := byName(t, g, "a"); f.TestFile {
		t.Error("a.TestFile = true, want false")
	}
}

// names2 sorts a literal slice the same way names does (nil-safe).
func names2(s []string) []string {
	out := append([]string(nil), s...)
	sort.Strings(out)
	return out
}

func TestFixpoint(t *testing.T) {
	_, g := load(t, map[string]string{"p.go": graphSrc})

	// Summary: "transitively calls c". Mutual recursion (ping/pong) must
	// converge to false without special casing.
	sums := callgraph.Fixpoint(g,
		func(a, b bool) bool { return a == b },
		func(f *callgraph.Func, get func(*callgraph.Func) bool) bool {
			for _, callee := range f.Callees {
				if callee.Name == "c" || get(callee) {
					return true
				}
			}
			return false
		})

	want := map[string]bool{
		"a": true, "b": true, "lit": true,
		"c": false, "leaf": false, "m": false, "ping": false, "pong": false,
	}
	for name, reaches := range want {
		if got := sums[byName(t, g, name)]; got != reaches {
			t.Errorf("reaches-c[%s] = %v, want %v", name, got, reaches)
		}
	}
}

func TestReachable(t *testing.T) {
	_, g := load(t, map[string]string{"p.go": graphSrc})

	reach := callgraph.Reachable(byName(t, g, "a"))
	for _, name := range []string{"a", "b", "c"} {
		if !reach[byName(t, g, name)] {
			t.Errorf("Reachable(a) misses %s", name)
		}
	}
	for _, name := range []string{"leaf", "lit", "ping", "m"} {
		if reach[byName(t, g, name)] {
			t.Errorf("Reachable(a) wrongly includes %s", name)
		}
	}

	// Cycles terminate and include both members.
	cyc := callgraph.Reachable(byName(t, g, "ping"))
	if !cyc[byName(t, g, "ping")] || !cyc[byName(t, g, "pong")] {
		t.Error("Reachable(ping) should contain ping and pong")
	}
	if len(cyc) != 2 {
		t.Errorf("Reachable(ping) has %d members, want 2", len(cyc))
	}
}

func TestStaticCallee(t *testing.T) {
	pass, g := load(t, map[string]string{"p.go": graphSrc})
	_ = g

	// Find the two calls in lit's body: c() inside the literal (static)
	// and f() (dynamic).
	var static, dynamic *ast.CallExpr
	ast.Inspect(byName(t, g, "lit").Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			switch id.Name {
			case "c":
				static = call
			case "f":
				dynamic = call
			}
		}
		return true
	})
	if static == nil || dynamic == nil {
		t.Fatal("fixture calls not found")
	}
	if obj := callgraph.StaticCallee(pass.TypesInfo, static); obj == nil || obj.Name() != "c" {
		t.Errorf("StaticCallee(c()) = %v, want c", obj)
	}
	if obj := callgraph.StaticCallee(pass.TypesInfo, dynamic); obj != nil {
		t.Errorf("StaticCallee(f()) = %v, want nil (function value)", obj)
	}
}
