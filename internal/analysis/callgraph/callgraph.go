// Package callgraph builds the package-level static call graph the
// unikvlint checkers share, and iterates per-function effect summaries
// over it to a fixed point.
//
// PR 4's checkers each walked the function declarations themselves and
// extended their reasoning across at most ONE call edge (lockorder's
// "one-level call summaries", syncpublish's direct-callee/direct-caller
// search). That horizon is exactly one call too short for real engine
// shapes: a lock inversion buried two helpers deep, a publish whose
// SyncDir lives at the end of a three-function commit chain, a background
// job that builds its error four frames below the scheduler. This package
// replaces the per-checker walks with one shared graph and a generic
// fixed-point driver:
//
//   - Build enumerates every declared function/method of the package and
//     resolves its same-package static callees (callers are indexed too).
//   - Fixpoint computes a summary per function from its body and the
//     current summaries of its callees, re-running a function whenever a
//     callee's summary changes, until nothing changes. With a monotone
//     compute over a finite domain (all the unikvlint summaries are sets
//     that only grow), convergence is guaranteed; recursion and mutual
//     recursion need no special casing.
//   - Reachable answers "which functions can this entry point transitively
//     call" — the errclass checker's notion of "on a background-job path".
//
// The graph is intentionally intra-package (the analysis framework keeps
// no cross-package facts; see internal/analysis) and intentionally static:
// dynamic calls through function values and interface methods contribute
// no edges, so summaries under-approximate and checkers stay conservative
// in what they report, never what they assume.
package callgraph

import (
	"go/ast"
	"go/types"
	"strings"

	"unikv/internal/analysis"
)

// Func is one declared function or method of the analyzed package.
type Func struct {
	// Obj is the type-checker's object for the declaration.
	Obj *types.Func
	// Decl is the syntax; Decl.Body is non-nil (bodyless declarations are
	// not part of the graph).
	Decl *ast.FuncDecl
	// Name is the diagnostic-friendly name (method names are plain — the
	// receiver type is recoverable from Obj when needed).
	Name string
	// TestFile marks functions declared in a _test.go file.
	TestFile bool
	// Callees lists the same-package functions this body statically calls,
	// in first-call source order, deduplicated. Calls inside nested
	// function literals are included: whether the literal runs now or
	// later, its effects are attributable to this declaration's package
	// path (checkers that care about WHEN a literal runs, like lockorder's
	// event replay, walk the body themselves).
	Callees []*Func
	// Callers is the reverse index of Callees across the package.
	Callers []*Func
}

// Graph is the package-level call graph.
type Graph struct {
	// Funcs holds every declared function in file/declaration order.
	Funcs []*Func
	// ByObj maps the type-checker object back to its node.
	ByObj map[*types.Func]*Func
}

// StaticCallee resolves call to the function or method object it
// statically invokes, or nil for dynamic calls (a call through a function
// value contributes no edge; an interface-method call resolves to the
// interface method object, which no declaration in the package defines,
// so it contributes no edge either).
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// Build constructs the call graph of the package presented by pass.
func Build(pass *analysis.Pass) *Graph {
	g := &Graph{ByObj: map[*types.Func]*Func{}}

	// Node pass: one Func per declaration with a body and a resolved object.
	for _, file := range pass.Files {
		test := strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			f := &Func{Obj: obj, Decl: fd, Name: fd.Name.Name, TestFile: test}
			g.Funcs = append(g.Funcs, f)
			g.ByObj[obj] = f
		}
	}

	// Edge pass: static same-package calls, deduplicated per caller.
	for _, f := range g.Funcs {
		seen := map[*Func]bool{}
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := StaticCallee(pass.TypesInfo, call)
			if obj == nil || obj.Pkg() != pass.Pkg {
				return true
			}
			callee, ok := g.ByObj[obj]
			if !ok || seen[callee] {
				return true
			}
			seen[callee] = true
			f.Callees = append(f.Callees, callee)
			callee.Callers = append(callee.Callers, f)
			return true
		})
	}
	return g
}

// Fixpoint computes one summary of type S per function, iterating to
// convergence over the call graph. compute derives f's summary from its
// body and the CURRENT summaries of other functions via get (the zero
// value of S for functions not yet computed — compute must treat it as
// "no effects yet"). Whenever a function's summary changes, every caller
// is recomputed; the iteration ends when a full pass changes nothing.
//
// compute must be monotone (a grown callee summary may only grow the
// caller's) and S's value space finite for the iteration to converge; all
// unikvlint summaries are grow-only sets over finite domains, which
// satisfies both. As a defense against a non-monotone compute oscillating
// forever, the worklist stops after len(Funcs)*64 recomputations — far
// beyond what any monotone summary over these domains can need — and
// returns the summaries reached, which for a monotone compute are exact.
func Fixpoint[S any](g *Graph, equal func(a, b S) bool, compute func(f *Func, get func(*Func) S) S) map[*Func]S {
	sums := make(map[*Func]S, len(g.Funcs))
	get := func(f *Func) S { return sums[f] }

	queue := make([]*Func, len(g.Funcs))
	copy(queue, g.Funcs)
	queued := make(map[*Func]bool, len(g.Funcs))
	for _, f := range queue {
		queued[f] = true
	}

	budget := len(g.Funcs) * 64
	for len(queue) > 0 && budget > 0 {
		budget--
		f := queue[0]
		queue = queue[1:]
		queued[f] = false

		next := compute(f, get)
		if prev, ok := sums[f]; ok && equal(prev, next) {
			continue
		}
		sums[f] = next
		for _, caller := range f.Callers {
			if !queued[caller] {
				queued[caller] = true
				queue = append(queue, caller)
			}
		}
	}
	return sums
}

// Reachable returns the set of functions transitively callable from any
// of the roots, roots included.
func Reachable(roots ...*Func) map[*Func]bool {
	seen := map[*Func]bool{}
	stack := append([]*Func(nil), roots...)
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f == nil || seen[f] {
			continue
		}
		seen[f] = true
		stack = append(stack, f.Callees...)
	}
	return seen
}
