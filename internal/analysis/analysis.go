// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics.
//
// The repository vendors nothing and builds offline, so the real x/tools
// module is not available; this package provides just enough of its shape
// for the unikvlint checkers (cmd/unikvlint) and their fixtures-based tests
// (internal/analysis/analysistest). Two deliberate simplifications:
//
//   - No cross-package facts. Every checker works from a single package's
//     syntax and types plus a one-level call-graph summary built inside the
//     package, which is all the UniKV invariants need.
//   - Suppression is built into the driver, not the checkers: a comment
//     `//unikv:allow(check)` on — or immediately above — the offending line
//     silences that check there (see Suppressed).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one invariant checker. Name doubles as the check name in
// `//unikv:allow(<name>)` escape-hatch comments.
type Analyzer struct {
	// Name identifies the checker; lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects the package presented by pass, calling pass.Report (or
	// Reportf) for each violation. The returned value is unused today and
	// exists to keep the x/tools signature.
	Run func(pass *Pass) (any, error)
}

// A Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a Diagnostic resolved to a position and tagged with the
// analyzer that produced it — the driver-facing result type.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// A StaleAllow is a //unikv:allow comment that suppressed nothing during
// a run: either its listed checks produced no diagnostic on the covered
// lines, or it names checks that don't exist. Dead suppressions are worse
// than dead code — they read as "this line violates the invariant on
// purpose" when the violation is long gone — so the driver reports them
// (satisfying one is deleting the comment, not silencing the report:
// stale-suppression findings are themselves unsuppressable).
type StaleAllow struct {
	Pos token.Position
	// Checks are the check names the comment listed that suppressed
	// nothing; "" stands for a bare //unikv:allow covering all checks.
	Checks []string
}

func (s StaleAllow) String() string {
	list := strings.Join(s.Checks, ",")
	if list == "" {
		return fmt.Sprintf("%s: stale suppression: //unikv:allow suppressed no diagnostic", s.Pos)
	}
	return fmt.Sprintf("%s: stale suppression: //unikv:allow(%s) suppressed no diagnostic", s.Pos, list)
}

// Result is everything one analysis run produced.
type Result struct {
	Findings []Finding
	// StaleAllows lists the suppression comments that did no suppressing,
	// considering only checks among the analyzers actually run (an allow
	// for a checker excluded from this run is not judged). Sorted by
	// position.
	StaleAllows []StaleAllow
}

// Run applies each analyzer to the type-checked package (fset, files, pkg,
// info), filters out findings suppressed by //unikv:allow comments, and
// returns the survivors sorted by position. An analyzer returning an error
// aborts the run.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Finding, error) {
	res, err := RunAll(fset, files, pkg, info, analyzers)
	return res.Findings, err
}

// RunAll is Run plus the stale-suppression audit over the same pass.
func RunAll(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) (Result, error) {
	allow := collectAllows(fset, files)
	var res Result
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			pos := fset.Position(d.Pos)
			if allow.suppressed(name, pos) {
				return
			}
			res.Findings = append(res.Findings, Finding{Analyzer: name, Pos: pos, Message: d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			return Result{}, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	res.StaleAllows = allow.stale(analyzers)
	return res, nil
}

// ---------------------------------------------------------------------------
// //unikv:allow(...) suppression.

// allowRe matches the escape-hatch comment. The convention is
//
//	//unikv:allow(check1,check2) one-line justification
//
// placed on the offending line or the line directly above it. A bare
// `//unikv:allow` (no check list) suppresses every check on that line;
// prefer the explicit form.
var allowRe = regexp.MustCompile(`^//\s*unikv:allow(?:\(([^)]*)\))?`)

// allowEntry is one check name of one //unikv:allow comment, with the
// usage bit the stale audit reads back.
type allowEntry struct {
	name string // "" = all checks (bare //unikv:allow)
	pos  token.Position
	used bool
}

// allowSet maps filename -> line -> the allow entries covering that line.
type allowSet struct {
	lines   map[string]map[int][]*allowEntry
	entries []*allowEntry // comment order, for the stale audit
}

func collectAllows(fset *token.FileSet, files []*ast.File) *allowSet {
	set := &allowSet{lines: map[string]map[int][]*allowEntry{}}
	add := func(pos token.Position, name string) {
		lines := set.lines[pos.Filename]
		if lines == nil {
			lines = map[int][]*allowEntry{}
			set.lines[pos.Filename] = lines
		}
		e := &allowEntry{name: name, pos: pos}
		lines[pos.Line] = append(lines[pos.Line], e)
		set.entries = append(set.entries, e)
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				if m[1] == "" {
					add(pos, "")
					continue
				}
				for _, name := range strings.Split(m[1], ",") {
					add(pos, strings.TrimSpace(name))
				}
			}
		}
	}
	return set
}

// suppressed reports whether check is allowed at pos — an allow comment on
// the same line or the line directly above — and marks every matching
// entry used for the stale audit.
func (s *allowSet) suppressed(check string, pos token.Position) bool {
	lines := s.lines[pos.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, e := range lines[line] {
			if e.name == "" || e.name == check {
				e.used = true
				hit = true
			}
		}
	}
	return hit
}

// stale returns the allow entries that suppressed nothing, grouped back
// into one StaleAllow per comment position. Only check names among the
// analyzers run are judged — an allow for a checker not in this run may
// be load-bearing in another — except that a name matching NO known
// analyzer spelling is always stale (it can never suppress anything).
func (s *allowSet) stale(analyzers []*Analyzer) []StaleAllow {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	byPos := map[token.Position]*StaleAllow{}
	var order []token.Position
	for _, e := range s.entries {
		if e.used {
			continue
		}
		// A bare allow is judged by any run; a named allow only when its
		// checker ran (names outside the suite are judged unconditionally).
		if e.name != "" && !ran[e.name] && KnownCheck(e.name) {
			continue
		}
		sa := byPos[e.pos]
		if sa == nil {
			sa = &StaleAllow{Pos: e.pos}
			byPos[e.pos] = sa
			order = append(order, e.pos)
		}
		sa.Checks = append(sa.Checks, e.name)
	}
	out := make([]StaleAllow, 0, len(order))
	for _, pos := range order {
		out = append(out, *byPos[pos])
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}

// knownChecks is the registry of every checker name that has ever been a
// valid //unikv:allow target; the stale audit treats any other name as a
// typo and reports it even when that checker didn't run. The unikvlint
// package registers its suite at init time (a registry avoids an import
// cycle: checkers import this package).
var knownChecks = map[string]bool{}

// RegisterCheck records name as a valid suppression target.
func RegisterCheck(name string) { knownChecks[name] = true }

// KnownCheck reports whether name is a registered checker name.
func KnownCheck(name string) bool { return knownChecks[name] }

// NewInfo returns a types.Info with every map the checkers consume
// allocated. Shared by the vet driver and the test harness so the two
// always present identical passes.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
