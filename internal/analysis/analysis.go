// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics.
//
// The repository vendors nothing and builds offline, so the real x/tools
// module is not available; this package provides just enough of its shape
// for the unikvlint checkers (cmd/unikvlint) and their fixtures-based tests
// (internal/analysis/analysistest). Two deliberate simplifications:
//
//   - No cross-package facts. Every checker works from a single package's
//     syntax and types plus a one-level call-graph summary built inside the
//     package, which is all the UniKV invariants need.
//   - Suppression is built into the driver, not the checkers: a comment
//     `//unikv:allow(check)` on — or immediately above — the offending line
//     silences that check there (see Suppressed).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one invariant checker. Name doubles as the check name in
// `//unikv:allow(<name>)` escape-hatch comments.
type Analyzer struct {
	// Name identifies the checker; lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects the package presented by pass, calling pass.Report (or
	// Reportf) for each violation. The returned value is unused today and
	// exists to keep the x/tools signature.
	Run func(pass *Pass) (any, error)
}

// A Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a Diagnostic resolved to a position and tagged with the
// analyzer that produced it — the driver-facing result type.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Run applies each analyzer to the type-checked package (fset, files, pkg,
// info), filters out findings suppressed by //unikv:allow comments, and
// returns the survivors sorted by position. An analyzer returning an error
// aborts the run.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Finding, error) {
	allow := collectAllows(fset, files)
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			pos := fset.Position(d.Pos)
			if allow.suppressed(name, pos) {
				return
			}
			findings = append(findings, Finding{Analyzer: name, Pos: pos, Message: d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// ---------------------------------------------------------------------------
// //unikv:allow(...) suppression.

// allowRe matches the escape-hatch comment. The convention is
//
//	//unikv:allow(check1,check2) one-line justification
//
// placed on the offending line or the line directly above it. A bare
// `//unikv:allow` (no check list) suppresses every check on that line;
// prefer the explicit form.
var allowRe = regexp.MustCompile(`^//\s*unikv:allow(?:\(([^)]*)\))?`)

// allowSet maps filename -> line -> the check names allowed there. The
// empty string entry means "all checks".
type allowSet map[string]map[int][]string

func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	set := allowSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					set[pos.Filename] = lines
				}
				if m[1] == "" {
					lines[pos.Line] = append(lines[pos.Line], "")
					continue
				}
				for _, name := range strings.Split(m[1], ",") {
					lines[pos.Line] = append(lines[pos.Line], strings.TrimSpace(name))
				}
			}
		}
	}
	return set
}

// suppressed reports whether check is allowed at pos: an allow comment on
// the same line or the line directly above.
func (s allowSet) suppressed(check string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == "" || name == check {
				return true
			}
		}
	}
	return false
}

// NewInfo returns a types.Info with every map the checkers consume
// allocated. Shared by the vet driver and the test harness so the two
// always present identical passes.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
