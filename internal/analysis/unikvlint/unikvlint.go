// Package unikvlint bundles the UniKV invariant checkers. Each analyzer
// machine-checks an invariant that a previous PR violated (or nearly did)
// and that was, until now, enforced only by comments and stress tests:
//
//   - lockorder: the mutex hierarchy documented in internal/core/db.go
//     (PR 2 shipped a cross-partition inversion found only by -race stress).
//   - vfsonly: all storage I/O goes through vfs.FS, never package os.
//   - syncpublish: every Create/Rename reaches a SyncDir publish point
//     (PR 3 found every publish point in the tree missing one).
//   - atomiccounter: no mixed atomic/plain access to the same variable.
//   - refpair: acquired references (Reader.Ref, retainLogs, vlog Pin,
//     NewSnapshot) are released on every error path — a leaked ref
//     permanently blocks value-log GC (the PR 8 refcount fences).
//   - errclass: errors constructed on the background-job path carry their
//     class, so Classify never defaults a corruption to transient-and-retry
//     (the PR 5 taxonomy, now machine-checked).
//   - atomicpublish: copy-on-write discipline around atomic.Pointer fields
//     — complete-before-Store, never mutate a Load (the PR 8 pre-fix
//     out-of-order publish shape).
//
// Since ISSUE 9 the checkers reason interprocedurally: fixed-point effect
// summaries over the package call graph (internal/analysis/callgraph)
// replace the one-level lookahead of PR 4, so an inversion, a leak, or an
// unclassified error hidden N helpers deep is still found. See DESIGN.md
// §5f for the invariant table.
//
// cmd/unikvlint runs the suite under `go vet -vettool`; findings are
// suppressed case-by-case with `//unikv:allow(<check>) reason`, and
// suppressions that no longer suppress anything are themselves reported as
// stale.
package unikvlint

import (
	"unikv/internal/analysis"
	"unikv/internal/analysis/unikvlint/atomiccounter"
	"unikv/internal/analysis/unikvlint/atomicpublish"
	"unikv/internal/analysis/unikvlint/errclass"
	"unikv/internal/analysis/unikvlint/lockorder"
	"unikv/internal/analysis/unikvlint/refpair"
	"unikv/internal/analysis/unikvlint/syncpublish"
	"unikv/internal/analysis/unikvlint/vfsonly"
)

// Analyzers returns the full suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		lockorder.Analyzer,
		vfsonly.Analyzer,
		syncpublish.Analyzer,
		atomiccounter.Analyzer,
		refpair.Analyzer,
		errclass.Analyzer,
		atomicpublish.Analyzer,
	}
}
