// Package unikvlint bundles the UniKV invariant checkers. Each analyzer
// machine-checks an invariant that a previous PR violated (or nearly did)
// and that was, until now, enforced only by comments and stress tests:
//
//   - lockorder: the mutex hierarchy documented in internal/core/db.go
//     (PR 2 shipped a cross-partition inversion found only by -race stress).
//   - vfsonly: all storage I/O goes through vfs.FS, never package os.
//   - syncpublish: every Create/Rename reaches a SyncDir publish point
//     (PR 3 found every publish point in the tree missing one).
//   - atomiccounter: no mixed atomic/plain access to the same variable.
//
// cmd/unikvlint runs the suite under `go vet -vettool`; findings are
// suppressed case-by-case with `//unikv:allow(<check>) reason`.
package unikvlint

import (
	"unikv/internal/analysis"
	"unikv/internal/analysis/unikvlint/atomiccounter"
	"unikv/internal/analysis/unikvlint/lockorder"
	"unikv/internal/analysis/unikvlint/syncpublish"
	"unikv/internal/analysis/unikvlint/vfsonly"
)

// Analyzers returns the full suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		lockorder.Analyzer,
		vfsonly.Analyzer,
		syncpublish.Analyzer,
		atomiccounter.Analyzer,
	}
}
