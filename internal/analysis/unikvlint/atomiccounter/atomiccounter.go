// Package atomiccounter flags mixed atomic and plain access to the same
// variable. A counter touched through sync/atomic anywhere must be touched
// that way everywhere: one plain `x.n++` or `return x.n` next to
// `atomic.AddInt64(&x.n, 1)` is a data race the race detector only catches
// when the interleaving happens to occur. Fields typed atomic.Int64 (etc.)
// are immune by construction; this check exists for the hand-rolled
// int64-plus-atomic-calls pattern.
//
// Atomic access through a same-package helper counts: a fixed-point
// summary over the call graph (internal/analysis/callgraph) marks every
// pointer parameter that is forwarded — at any depth — to a sync/atomic
// function, so `bump(&x.n)` both registers x.n as an atomic variable and
// is itself a sanctioned access. PR 4's version saw only direct
// `atomic.AddInt64(&x.n, ...)` calls, so a counter touched exclusively
// through a helper was invisible to the check.
package atomiccounter

import (
	"go/ast"
	"go/token"
	"go/types"

	"unikv/internal/analysis"
	"unikv/internal/analysis/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomiccounter",
	Doc: "forbid plain reads/writes of variables that are accessed via " +
		"sync/atomic — directly or through a pointer-forwarding helper — " +
		"elsewhere in the package (use atomic.Int64-style typed atomics to " +
		"make the rule structural)",
	Run: run,
}

func init() { analysis.RegisterCheck(Analyzer.Name) }

// span is a source range whose interior accesses are sanctioned (the &x
// argument of an atomic call or of a forwarding helper call).
type span struct{ pos, end token.Pos }

// fwdSummary records which parameters of a function are forwarded to
// sync/atomic: directly (`atomic.AddInt64(p, 1)` with p a parameter) or
// through another same-package helper, iterated to a fixed point.
type fwdSummary map[int]bool // parameter index -> forwarded

func fwdEqual(a, b fwdSummary) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// paramIndex resolves expr to the index of the parameter of f it names
// (pointer parameters only — forwarding a copy cannot reach the caller's
// variable), or -1.
func paramIndex(info *types.Info, f *callgraph.Func, expr ast.Expr) int {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return -1
	}
	obj := info.Uses[id]
	if obj == nil {
		return -1
	}
	sig, ok := f.Obj.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if p != obj {
			continue
		}
		if _, isPtr := p.Type().Underlying().(*types.Pointer); isPtr {
			return i
		}
		return -1
	}
	return -1
}

func run(pass *analysis.Pass) (any, error) {
	g := callgraph.Build(pass)

	// Fixed point: which pointer parameters reach sync/atomic.
	forwards := callgraph.Fixpoint(g, fwdEqual, func(f *callgraph.Func, get func(*callgraph.Func) fwdSummary) fwdSummary {
		s := fwdSummary{}
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isAtomicFunc(pass.TypesInfo, call) && len(call.Args) > 0 {
				if i := paramIndex(pass.TypesInfo, f, call.Args[0]); i >= 0 {
					s[i] = true
				}
				return true
			}
			callee := g.ByObj[callgraph.StaticCallee(pass.TypesInfo, call)]
			if callee == nil {
				return true
			}
			for argIdx := range get(callee) {
				if argIdx < len(call.Args) {
					if i := paramIndex(pass.TypesInfo, f, call.Args[argIdx]); i >= 0 {
						s[i] = true
					}
				}
			}
			return true
		})
		return s
	})

	// atomicArg reports whether call's argument at index i lands in
	// sync/atomic: the call is an atomic function itself (index 0), or a
	// same-package helper that forwards parameter i onward.
	atomicArg := func(call *ast.CallExpr, i int) bool {
		if isAtomicFunc(pass.TypesInfo, call) {
			return i == 0
		}
		callee := g.ByObj[callgraph.StaticCallee(pass.TypesInfo, call)]
		return callee != nil && forwards[callee][i]
	}

	// Pass 1: find every object passed by address into sync/atomic —
	// directly or through a forwarding helper — and remember the
	// sanctioned &x argument ranges.
	atomicObjs := map[types.Object]token.Pos{} // object -> one atomic call site
	var sanctioned []span
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			for i, arg := range call.Args {
				if !atomicArg(call, i) {
					continue
				}
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				obj := referencedObject(pass.TypesInfo, un.X)
				if obj == nil {
					continue
				}
				if _, seen := atomicObjs[obj]; !seen {
					atomicObjs[obj] = call.Pos()
				}
				sanctioned = append(sanctioned, span{un.Pos(), un.End()})
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil, nil
	}

	// Pass 2: any other reference to those objects is a plain access.
	// Struct-literal keys are exempt — `&S{n: 0}` initializes before any
	// concurrency and is the idiomatic zeroing form.
	for _, f := range pass.Files {
		literalKeys := map[*ast.Ident]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if kv, ok := n.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					literalKeys[id] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || literalKeys[id] {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			atomicAt, hot := atomicObjs[obj]
			if !hot {
				return true
			}
			for _, s := range sanctioned {
				if id.Pos() >= s.pos && id.End() <= s.end {
					return true
				}
			}
			pass.Reportf(id.Pos(),
				"plain access to %s, which is accessed atomically at %s: use sync/atomic everywhere (or an atomic.Int64-style typed atomic)",
				obj.Name(), pass.Fset.Position(atomicAt))
			return true
		})
	}
	return nil, nil
}

// isAtomicFunc reports whether call invokes a package-level function of
// sync/atomic (AddInt64, LoadUint32, CompareAndSwapPointer, ...). Methods
// of the typed atomics also live in sync/atomic but have a receiver and are
// excluded: values of those types cannot be accessed plainly anyway.
func isAtomicFunc(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// referencedObject resolves the variable (field, package var, local) that
// expr names, or nil when it is not a plain variable reference.
func referencedObject(info *types.Info, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	// &slice[i] and friends are deliberately untracked: flagging every
	// other use of the container would drown the signal.
	return nil
}
