// Package atomiccounter flags mixed atomic and plain access to the same
// variable. A counter touched through sync/atomic anywhere must be touched
// that way everywhere: one plain `x.n++` or `return x.n` next to
// `atomic.AddInt64(&x.n, 1)` is a data race the race detector only catches
// when the interleaving happens to occur. Fields typed atomic.Int64 (etc.)
// are immune by construction; this check exists for the hand-rolled
// int64-plus-atomic-calls pattern.
package atomiccounter

import (
	"go/ast"
	"go/token"
	"go/types"

	"unikv/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomiccounter",
	Doc: "forbid plain reads/writes of variables that are accessed via " +
		"sync/atomic elsewhere in the package (use atomic.Int64-style typed " +
		"atomics to make the rule structural)",
	Run: run,
}

// span is a source range whose interior accesses are sanctioned (the &x
// argument of an atomic call).
type span struct{ pos, end token.Pos }

func run(pass *analysis.Pass) (any, error) {
	// Pass 1: find every object passed by address to a sync/atomic function
	// and remember the sanctioned &x argument ranges.
	atomicObjs := map[types.Object]token.Pos{} // object -> one atomic call site
	var sanctioned []span
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if !isAtomicFunc(pass.TypesInfo, call) {
				return true
			}
			un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			obj := referencedObject(pass.TypesInfo, un.X)
			if obj == nil {
				return true
			}
			if _, seen := atomicObjs[obj]; !seen {
				atomicObjs[obj] = call.Pos()
			}
			sanctioned = append(sanctioned, span{un.Pos(), un.End()})
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil, nil
	}

	// Pass 2: any other reference to those objects is a plain access.
	// Struct-literal keys are exempt — `&S{n: 0}` initializes before any
	// concurrency and is the idiomatic zeroing form.
	for _, f := range pass.Files {
		literalKeys := map[*ast.Ident]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if kv, ok := n.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					literalKeys[id] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || literalKeys[id] {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			atomicAt, hot := atomicObjs[obj]
			if !hot {
				return true
			}
			for _, s := range sanctioned {
				if id.Pos() >= s.pos && id.End() <= s.end {
					return true
				}
			}
			pass.Reportf(id.Pos(),
				"plain access to %s, which is accessed atomically at %s: use sync/atomic everywhere (or an atomic.Int64-style typed atomic)",
				obj.Name(), pass.Fset.Position(atomicAt))
			return true
		})
	}
	return nil, nil
}

// isAtomicFunc reports whether call invokes a package-level function of
// sync/atomic (AddInt64, LoadUint32, CompareAndSwapPointer, ...). Methods
// of the typed atomics also live in sync/atomic but have a receiver and are
// excluded: values of those types cannot be accessed plainly anyway.
func isAtomicFunc(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// referencedObject resolves the variable (field, package var, local) that
// expr names, or nil when it is not a plain variable reference.
func referencedObject(info *types.Info, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	// &slice[i] and friends are deliberately untracked: flagging every
	// other use of the container would drown the signal.
	return nil
}
