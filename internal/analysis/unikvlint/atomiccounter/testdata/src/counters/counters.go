// Fixture: hand-rolled atomic counters must not also be accessed plainly.
package counters

import "sync/atomic"

type stats struct {
	puts int64
	gets int64
	cold int64 // never touched atomically; plain access is fine
}

func (s *stats) incPut() {
	atomic.AddInt64(&s.puts, 1)
}

func (s *stats) put() int64 {
	return atomic.LoadInt64(&s.puts)
}

// Plain read of an atomically-written field: the race -race only sees when
// the interleaving happens.
func (s *stats) racyRead() int64 {
	return s.puts // want `plain access to puts`
}

// Plain write is just as bad.
func (s *stats) racyReset() {
	s.puts = 0 // want `plain access to puts`
}

func (s *stats) swapGets(v int64) int64 {
	return atomic.SwapInt64(&s.gets, v)
}

func (s *stats) racyIncrement() {
	s.gets++ // want `plain access to gets`
}

func (s *stats) coldOK() int64 {
	s.cold++
	return s.cold
}

// Struct-literal keys initialize before concurrency and stay exempt.
func newStats() *stats {
	return &stats{puts: 0, gets: 0}
}

// Package-level counters are tracked the same way.
var opsDone uint32

func markDone() {
	atomic.AddUint32(&opsDone, 1)
}

func doneRacy() uint32 {
	return opsDone // want `plain access to opsDone`
}

func doneOK() uint32 {
	return atomic.LoadUint32(&opsDone)
}

// Typed atomics are immune by construction and never flagged.
type typed struct {
	n atomic.Int64
}

func (t *typed) bump() int64 {
	t.n.Add(1)
	return t.n.Load()
}

// The hot ring shard shape: a sampled tick counter bumped atomically on
// every miss must never be consulted plainly.
type ringShard struct {
	missTick uint64
	entries  int
}

func (s *ringShard) sampleMiss() bool {
	return atomic.AddUint64(&s.missTick, 1)%8 == 0
}

func (s *ringShard) racySampleCheck() bool {
	return s.missTick%8 == 0 // want `plain access to missTick`
}

// The escape hatch: single-goroutine init phase, justified and annotated.
func (s *stats) resetBeforeServing() {
	//unikv:allow(atomiccounter) called before any goroutine starts
	s.puts = 0
}

// ---------------------------------------------------------------------------
// Interprocedural: atomic access through a pointer-forwarding helper still
// registers the variable. PR 4's checker only saw direct atomic.* calls, so
// a counter touched exclusively through bump() was invisible.

func bump(p *int64, d int64) {
	atomic.AddInt64(p, d)
}

// bumpTwice forwards two levels deep; the fixed-point summary carries the
// parameter through both edges.
func bumpTwice(p *int64) {
	bump(p, 2)
}

type deepStats struct {
	merges int64
	splits int64
}

func (d *deepStats) incMerge() {
	bump(&d.merges, 1) // sanctioned: bump forwards to sync/atomic
}

func (d *deepStats) racyMergeRead() int64 {
	return d.merges // want `plain access to merges`
}

func (d *deepStats) incSplit() {
	bumpTwice(&d.splits)
}

func (d *deepStats) racySplitReset() {
	d.splits = 0 // want `plain access to splits`
}

// A by-value parameter cannot reach the caller's variable, so a helper
// taking int64 (not *int64) registers nothing: plain access stays fine.
func observe(v int64) int64 { return v }

type plainStats struct {
	ticks int64
}

func (p *plainStats) tick() {
	p.ticks++
	observe(p.ticks)
}
