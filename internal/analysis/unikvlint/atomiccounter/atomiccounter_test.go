package atomiccounter_test

import (
	"testing"

	"unikv/internal/analysis/analysistest"
	"unikv/internal/analysis/unikvlint/atomiccounter"
)

func TestAtomicCounter(t *testing.T) {
	analysistest.Run(t, "testdata", atomiccounter.Analyzer, "counters")
}
