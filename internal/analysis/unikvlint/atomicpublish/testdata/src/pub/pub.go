// Fixture: copy-on-write discipline around atomic.Pointer fields. The bad
// shapes replay the PR 8 pre-fix bug (a snapshot state published before its
// sequence field was final) and the mutate-after-Load race.
package pub

import "sync/atomic"

type state struct {
	seq   uint64
	count int
	tick  atomic.Int64 // the sanctioned post-publish channel (hot ring freq shape)
	tags  []string
}

type box struct {
	cur   atomic.Pointer[state]
	slots []atomic.Pointer[state]
}

func source() *state { return &state{} }

// Build fully, then publish: clean.
func (b *box) publishClean(seq uint64) {
	s := &state{seq: seq, count: 1}
	s.tags = append(s.tags, "fresh")
	b.cur.Store(s)
}

// The PR 8 shape: published with a stale sequence, "fixed up" after the
// Store — a concurrent reader between the two lines observes the
// out-of-order value.
func (b *box) publishTornSeq(seq uint64) {
	s := &state{count: 1}
	b.cur.Store(s)
	s.seq = seq // want `mutation of s, published via b\.cur\.Store`
}

// Swap publishes the same way.
func (b *box) swapTorn(i int, seq uint64) {
	s := &state{}
	old := b.slots[i].Swap(s)
	s.seq = seq // want `mutation of s, published via b\.slots\[\.\.\.\]\.Swap`
	_ = old
}

// CompareAndSwap's NEW value is the published one (the degradedState shape
// — built fully before the CAS is clean).
func (b *box) casClean(s *state) bool {
	s.count = 1
	return b.cur.CompareAndSwap(nil, s)
}

func (b *box) casTorn(s *state) bool {
	ok := b.cur.CompareAndSwap(nil, s)
	s.count++ // want `mutation of s, published via b\.cur\.CompareAndSwap`
	return ok
}

// A loaded value is shared with every reader: mutating it in place races.
func (b *box) loadMutate() {
	v := b.cur.Load()
	if v == nil {
		return
	}
	v.count++ // want `mutation of v, loaded from b\.cur\.Load`
}

func (b *box) loadMutateField(seq uint64) {
	v := b.cur.Load()
	v.seq = seq // want `mutation of v, loaded from b\.cur\.Load`
}

// Reading a loaded value and calling methods on an atomic field of it are
// fine (the hot ring touches entry.freq after publish — that field is
// atomic precisely so it can be).
func (b *box) loadReadOnly() (uint64, int64) {
	v := b.cur.Load()
	if v == nil {
		return 0, 0
	}
	v.tick.Add(1)
	return v.seq, v.tick.Load()
}

// The checker is deliberately strict about rebinding: once a variable held
// a published value, mutations through it stay flagged even after a rebind
// (clearing the taint on rebind would miss aliased paths). Use a fresh
// variable for private scratch values.
func (b *box) loadRebindStrict() uint64 {
	v := b.cur.Load()
	_ = v
	v = source()
	v.seq = 1 // want `mutation of v, loaded from b\.cur\.Load`
	return v.seq
}

// ---------------------------------------------------------------------------
// Interprocedural: passing a shared value to a mutating helper is the same
// mutation, at any forwarding depth.

func scrub(s *state) {
	s.count = 0
}

func scrubDeep(s *state) {
	scrub(s)
}

func report(s *state) int { // read-only helper: no summary entry
	return s.count
}

func (b *box) loadScrub() {
	v := b.cur.Load()
	scrubDeep(v) // want `mutation of v, loaded from b\.cur\.Load`
	_ = report(v)
}

func (b *box) storeScrub() {
	s := &state{}
	b.cur.Store(s)
	scrub(s) // want `mutation of s, published via b\.cur\.Store`
}

// ---------------------------------------------------------------------------
// Rule 1: the pointer word itself is only touched atomically.

func (b *box) wordCopied() {
	tmp := b.cur // want `non-atomic access to atomic\.Pointer value b\.cur`
	_ = tmp.Load()
}

func (b *box) wordOverwritten() {
	b.cur = atomic.Pointer[state]{} // want `non-atomic access to atomic\.Pointer value b\.cur`
}

// The escape hatch: single-threaded construction, justified and annotated
// (the comment suppresses every diagnostic on the next line — here both the
// LHS overwrite and the RHS copy).
func (b *box) wordResetBeforeServing(other *box) {
	//unikv:allow(atomicpublish) called before any reader goroutine starts
	b.cur = other.cur
}

func (b *box) wordMethods(s *state) {
	b.cur.Store(s)      // fine
	_ = b.cur.Load()    // fine
	p := &b.cur         // fine: address-of preserves atomicity
	_ = p.Load()        // fine: through the pointer
	_ = b.slots[0].Load() // fine: indexed element receiver
}
