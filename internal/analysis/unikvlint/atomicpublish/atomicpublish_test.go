package atomicpublish_test

import (
	"testing"

	"unikv/internal/analysis/analysistest"
	"unikv/internal/analysis/unikvlint/atomicpublish"
)

func TestAtomicPublish(t *testing.T) {
	analysistest.Run(t, "testdata", atomicpublish.Analyzer, "pub")
}
